#include "text/inverted_index.h"

#include <algorithm>
#include <unordered_set>

#include "text/tokenizer.h"

namespace kwsdbg {

InvertedIndex InvertedIndex::Build(const Database& db) {
  InvertedIndex index;
  for (const std::string& name : db.TableNames()) {
    uint32_t tid = static_cast<uint32_t>(index.table_names_.size());
    index.table_names_.push_back(name);
    index.table_ids_.emplace(name, tid);
    const Table* table = db.FindTable(name);
    const std::vector<size_t> text_cols = table->schema().TextColumnIndices();
    if (text_cols.empty()) continue;
    for (size_t row = 0; row < table->num_rows(); ++row) {
      for (size_t col : text_cols) {
        const Value& v = table->at(row, col);
        if (v.is_null()) continue;
        for (const std::string& term : TokenizeUnique(v.AsString())) {
          Entry& e = index.entries_[term];
          e.postings.push_back(Posting{tid, static_cast<uint32_t>(row),
                                       static_cast<uint32_t>(col)});
          if (tid < 64) e.table_mask |= (1ull << tid);
        }
      }
    }
  }
  return index;
}

std::vector<std::string> InvertedIndex::TablesContaining(
    const std::string& term) const {
  std::vector<std::string> out;
  auto it = entries_.find(term);
  if (it == entries_.end()) return out;
  std::unordered_set<uint32_t> seen;
  for (const Posting& p : it->second.postings) {
    if (seen.insert(p.table_id).second) {
      out.push_back(table_names_[p.table_id]);
    }
  }
  return out;
}

const std::vector<Posting>& InvertedIndex::PostingsFor(
    const std::string& term) const {
  auto it = entries_.find(term);
  return it == entries_.end() ? empty_ : it->second.postings;
}

std::vector<const std::vector<Posting>*> InvertedIndex::PostingListsContaining(
    const std::string& infix) const {
  std::vector<const std::vector<Posting>*> out;
  if (infix.empty()) return out;
  for (const auto& [term, entry] : entries_) {
    if (term.find(infix) != std::string::npos) {
      out.push_back(&entry.postings);
    }
  }
  return out;
}

uint32_t InvertedIndex::TableIdOf(const std::string& table) const {
  auto it = table_ids_.find(table);
  return it == table_ids_.end() ? kNoTable : it->second;
}

bool InvertedIndex::Contains(const std::string& term) const {
  return entries_.count(term) > 0;
}

bool InvertedIndex::TableContains(const std::string& term,
                                  const std::string& table) const {
  auto it = entries_.find(term);
  if (it == entries_.end()) return false;
  auto tid_it = table_ids_.find(table);
  if (tid_it == table_ids_.end()) return false;
  const uint32_t tid = tid_it->second;
  if (tid < 64) return (it->second.table_mask >> tid) & 1;
  for (const Posting& p : it->second.postings) {
    if (p.table_id == tid) return true;
  }
  return false;
}

size_t InvertedIndex::RowFrequency(const std::string& term,
                                   const std::string& table) const {
  auto it = entries_.find(term);
  if (it == entries_.end()) return 0;
  auto tid_it = table_ids_.find(table);
  if (tid_it == table_ids_.end()) return 0;
  const uint32_t tid = tid_it->second;
  std::unordered_set<uint32_t> rows;
  for (const Posting& p : it->second.postings) {
    if (p.table_id == tid) rows.insert(p.row);
  }
  return rows.size();
}

std::vector<std::string> InvertedIndex::Terms() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [term, entry] : entries_) out.push_back(term);
  std::sort(out.begin(), out.end());
  return out;
}

size_t InvertedIndex::num_postings() const {
  size_t n = 0;
  for (const auto& [term, entry] : entries_) n += entry.postings.size();
  return n;
}

}  // namespace kwsdbg
