#include "text/inverted_index.h"

#include <algorithm>

#include "common/logging.h"
#include "text/tokenizer.h"

namespace kwsdbg {

namespace {
bool PostingLess(const Posting& a, const Posting& b) {
  if (a.table_id != b.table_id) return a.table_id < b.table_id;
  if (a.row != b.row) return a.row < b.row;
  return a.column < b.column;
}
}  // namespace

InvertedIndex InvertedIndex::Build(const Database& db) {
  InvertedIndex index;
  for (const std::string& name : db.TableNames()) {
    uint32_t tid = static_cast<uint32_t>(index.table_names_.size());
    index.table_names_.push_back(name);
    index.table_ids_.emplace(name, tid);
    const Table* table = db.FindTable(name);
    KWSDBG_CHECK(table != nullptr)
        << "database catalog lists unknown table '" << name << "'";
    const std::vector<size_t> text_cols = table->schema().TextColumnIndices();
    if (text_cols.empty()) continue;
    for (size_t row = 0; row < table->num_rows(); ++row) {
      for (size_t col : text_cols) {
        const Value& v = table->at(row, col);
        if (v.is_null()) continue;
        for (const std::string& term : TokenizeUnique(v.AsString())) {
          index.entries_[term].postings.push_back(
              Posting{tid, static_cast<uint32_t>(row),
                      static_cast<uint32_t>(col)});
        }
      }
    }
  }
  index.Finalize();
  return index;
}

void InvertedIndex::Finalize() {
  dict_terms_.clear();
  dict_terms_.reserve(entries_.size());
  for (const auto& [term, entry] : entries_) dict_terms_.push_back(term);
  std::sort(dict_terms_.begin(), dict_terms_.end());

  dict_blob_.clear();
  dict_starts_.clear();
  dict_starts_.reserve(dict_terms_.size());
  dict_masks_.assign(dict_terms_.size(), 0);
  profile_.assign(dict_terms_.size(), {});
  dict_postings_.assign(dict_terms_.size(), nullptr);
  num_postings_ = 0;

  for (uint32_t id = 0; id < dict_terms_.size(); ++id) {
    dict_starts_.push_back(dict_blob_.size());
    dict_blob_ += dict_terms_[id];
    dict_blob_ += '\n';

    const Entry& e = entries_.at(dict_terms_[id]);
    dict_postings_[id] = &e.postings;
    num_postings_ += e.postings.size();

    // Build attaches postings in (table, row, column) ascending order, so
    // one pass with consecutive dedupe yields exact distinct-row counts.
    auto& prof = profile_[id];
    uint32_t last_tid = kNoTable;
    uint32_t last_row = 0;
    for (const Posting& p : e.postings) {
      if (p.table_id < 64) dict_masks_[id] |= (1ull << p.table_id);
      if (p.table_id == last_tid && p.row == last_row) continue;
      if (p.table_id != last_tid) prof.push_back({p.table_id, 0});
      ++prof.back().second;
      last_tid = p.table_id;
      last_row = p.row;
    }
  }
  // Term ids may have shifted: any cache keyed by term id must refresh.
  ++version_;
}

uint32_t InvertedIndex::DictIdOf(const std::string& term) const {
  auto it = std::lower_bound(dict_terms_.begin(), dict_terms_.end(), term);
  if (it == dict_terms_.end() || *it != term) {
    return static_cast<uint32_t>(dict_terms_.size());
  }
  return static_cast<uint32_t>(it - dict_terms_.begin());
}

std::vector<std::string> InvertedIndex::TablesContaining(
    const std::string& term) const {
  std::vector<std::string> out;
  uint32_t id = DictIdOf(term);
  if (id >= dict_terms_.size()) return out;
  for (const auto& [tid, rows] : profile_[id]) {
    out.push_back(table_names_[tid]);
  }
  return out;
}

const std::vector<Posting>& InvertedIndex::PostingsFor(
    const std::string& term) const {
  if (store_ == nullptr) {
    auto it = entries_.find(term);
    return it == entries_.end() ? empty_ : it->second.postings;
  }
  uint32_t id = DictIdOf(term);
  return id >= dict_terms_.size() ? empty_ : PostingsForTermId(id);
}

std::vector<uint32_t> InvertedIndex::TermIdsContaining(
    const std::string& infix) const {
  std::vector<uint32_t> out;
  if (infix.empty()) return out;
  // Terms never contain '\n' (they are lower-cased alphanumeric runs), so a
  // needle with one can't match — and without one, a blob match can't span
  // the separator between two terms.
  if (infix.find('\n') != std::string::npos) return out;
  size_t pos = dict_blob_.find(infix);
  while (pos != std::string::npos) {
    // The matching term is the one whose start is the last <= pos.
    auto it = std::upper_bound(dict_starts_.begin(), dict_starts_.end(), pos);
    uint32_t id = static_cast<uint32_t>(it - dict_starts_.begin() - 1);
    out.push_back(id);
    // Skip to the next term: further matches inside this term are dupes.
    size_t next_start = id + 1 < dict_starts_.size()
                            ? dict_starts_[id + 1]
                            : std::string::npos;
    if (next_start == std::string::npos) break;
    pos = dict_blob_.find(infix, next_start);
  }
  return out;
}

std::vector<const std::vector<Posting>*> InvertedIndex::PostingListsContaining(
    const std::string& infix) const {
  KWSDBG_CHECK(store_ == nullptr)
      << "PostingListsContaining on a spilled index: fetched lists are not "
         "simultaneously resident; use TermIdsContaining + PostingsForTermId";
  std::vector<const std::vector<Posting>*> out;
  for (uint32_t id : TermIdsContaining(infix)) {
    out.push_back(dict_postings_[id]);
  }
  return out;
}

const std::vector<Posting>& InvertedIndex::PostingsForTermId(
    uint32_t term_id) const {
  KWSDBG_CHECK(term_id < dict_terms_.size())
      << "term id " << term_id << " out of range";
  if (store_ == nullptr) return *dict_postings_[term_id];
  const std::vector<Posting>& base = store_->Fetch(term_id);
  auto it = delta_.find(term_id);
  if (it == delta_.end()) return base;
  // Merge the live overlay into the scratch buffer: (base - removed) +
  // added, all sorted. Same lifetime contract as a raw fetch: the reference
  // is valid until the next posting fetch.
  const Delta& d = it->second;
  std::vector<Posting> diff;
  diff.reserve(base.size());
  std::set_difference(base.begin(), base.end(), d.removed.begin(),
                      d.removed.end(), std::back_inserter(diff), PostingLess);
  merged_scratch_.clear();
  merged_scratch_.reserve(diff.size() + d.added.size());
  std::merge(diff.begin(), diff.end(), d.added.begin(), d.added.end(),
             std::back_inserter(merged_scratch_), PostingLess);
  return merged_scratch_;
}

const std::string& InvertedIndex::TermOfId(uint32_t term_id) const {
  KWSDBG_CHECK(term_id < dict_terms_.size())
      << "term id " << term_id << " out of range";
  return dict_terms_[term_id];
}

size_t InvertedIndex::ProfileRowCount(uint32_t term_id,
                                      uint32_t table_id) const {
  if (term_id >= profile_.size()) return 0;
  for (const auto& [tid, rows] : profile_[term_id]) {
    if (tid == table_id) return rows;
  }
  return 0;
}

size_t InvertedIndex::EstimatedInfixRows(const std::string& infix,
                                         const std::string& table) const {
  uint32_t table_id = TableIdOf(table);
  if (table_id == kNoTable) return 0;
  size_t rows = 0;
  for (uint32_t id : TermIdsContaining(infix)) {
    rows += ProfileRowCount(id, table_id);
  }
  return rows;
}

Status InvertedIndex::SpillToDisk(const std::string& dir,
                                  size_t cache_lists) {
  if (store_ != nullptr) {
    return Status::FailedPrecondition("inverted index is already spilled");
  }
  KWSDBG_ASSIGN_OR_RETURN(store_,
                          PostingStore::Create(dir, dict_postings_,
                                               cache_lists));
  // Dictionary, masks, and profile stay; the payload goes.
  entries_.clear();
  dict_postings_.clear();
  return Status::OK();
}

PostingIoStats InvertedIndex::io_stats() const {
  return store_ == nullptr ? PostingIoStats{} : store_->stats();
}

uint32_t InvertedIndex::TableIdOf(const std::string& table) const {
  auto it = table_ids_.find(table);
  return it == table_ids_.end() ? kNoTable : it->second;
}

bool InvertedIndex::Contains(const std::string& term) const {
  uint32_t id = DictIdOf(term);
  // The profile check matters on a spilled index, where a term emptied by
  // deletes keeps its dictionary slot (the on-disk directory cannot shrink)
  // but must behave as absent — exactly what a fresh rebuild would report.
  return id < dict_terms_.size() && !profile_[id].empty();
}

bool InvertedIndex::TableContains(const std::string& term,
                                  const std::string& table) const {
  uint32_t id = DictIdOf(term);
  if (id >= dict_terms_.size()) return false;
  auto tid_it = table_ids_.find(table);
  if (tid_it == table_ids_.end()) return false;
  const uint32_t tid = tid_it->second;
  if (tid < 64) return (dict_masks_[id] >> tid) & 1;
  return ProfileRowCount(id, tid) > 0;
}

void InvertedIndex::BumpProfile(uint32_t id, uint32_t tid, int delta) {
  auto& prof = profile_[id];
  auto it = std::lower_bound(
      prof.begin(), prof.end(), tid,
      [](const std::pair<uint32_t, uint32_t>& pr, uint32_t t) {
        return pr.first < t;
      });
  if (delta > 0) {
    if (it == prof.end() || it->first != tid) {
      prof.insert(it, {tid, 1});
    } else {
      ++it->second;
    }
    if (tid < 64) dict_masks_[id] |= (uint64_t{1} << tid);
    return;
  }
  KWSDBG_CHECK(it != prof.end() && it->first == tid && it->second > 0)
      << "profile underflow for term '" << dict_terms_[id] << "' table "
      << tid;
  if (--it->second == 0) {
    prof.erase(it);
    if (tid < 64) dict_masks_[id] &= ~(uint64_t{1} << tid);
  }
}

size_t InvertedIndex::RowOccurrences(uint32_t id, uint32_t tid,
                                     uint32_t row) const {
  auto count_range = [&](const std::vector<Posting>& v) {
    auto lo = std::lower_bound(v.begin(), v.end(), Posting{tid, row, 0},
                               PostingLess);
    size_t n = 0;
    while (lo != v.end() && lo->table_id == tid && lo->row == row) {
      ++n;
      ++lo;
    }
    return n;
  };
  if (store_ == nullptr) return count_range(*dict_postings_[id]);
  size_t n = count_range(store_->Fetch(id));
  auto it = delta_.find(id);
  if (it != delta_.end()) {
    n += count_range(it->second.added);
    n -= count_range(it->second.removed);
  }
  return n;
}

Status InvertedIndex::AddOccurrence(const std::string& term, uint32_t tid,
                                    uint32_t row, uint32_t col,
                                    bool* needs_finalize) {
  const Posting p{tid, row, col};
  if (store_ == nullptr) {
    auto [it, created] = entries_.try_emplace(term);
    auto& posts = it->second.postings;
    const uint32_t id = DictIdOf(term);
    const bool new_term = id >= dict_terms_.size();
    bool first_in_row = false;
    if (!new_term) {
      auto lo = std::lower_bound(posts.begin(), posts.end(),
                                 Posting{tid, row, 0}, PostingLess);
      first_in_row = lo == posts.end() || lo->table_id != tid ||
                     lo->row != row;
    }
    auto pos = std::lower_bound(posts.begin(), posts.end(), p, PostingLess);
    if (pos != posts.end() && *pos == p) {
      return Status::FailedPrecondition("duplicate posting insert");
    }
    posts.insert(pos, p);
    ++num_postings_;
    if (new_term) {
      // Vocabulary grew: the sorted dictionary, masks, and profile must be
      // rebuilt (term ids shift). The caller batches this per mutation.
      *needs_finalize = true;
      return Status::OK();
    }
    if (first_in_row) BumpProfile(id, tid, +1);
    return Status::OK();
  }
  const uint32_t id = DictIdOf(term);
  if (id >= dict_terms_.size()) {
    return Status::FailedPrecondition(
        "insert of vocabulary-new term '" + term +
        "' on a spilled index (the on-disk directory cannot grow)");
  }
  const bool first_in_row = RowOccurrences(id, tid, row) == 0;
  Delta& d = delta_[id];
  auto rit = std::lower_bound(d.removed.begin(), d.removed.end(), p,
                              PostingLess);
  if (rit != d.removed.end() && *rit == p) {
    d.removed.erase(rit);
  } else {
    auto ait = std::lower_bound(d.added.begin(), d.added.end(), p,
                                PostingLess);
    if (ait != d.added.end() && *ait == p) {
      return Status::FailedPrecondition("duplicate posting insert");
    }
    d.added.insert(ait, p);
  }
  ++num_postings_;
  if (first_in_row) BumpProfile(id, tid, +1);
  return Status::OK();
}

void InvertedIndex::RemoveOccurrence(const std::string& term, uint32_t tid,
                                     uint32_t row, uint32_t col,
                                     bool* needs_finalize) {
  const Posting p{tid, row, col};
  if (store_ == nullptr) {
    auto it = entries_.find(term);
    KWSDBG_CHECK(it != entries_.end())
        << "remove of unindexed term '" << term << "'";
    auto& posts = it->second.postings;
    auto pos = std::lower_bound(posts.begin(), posts.end(), p, PostingLess);
    KWSDBG_CHECK(pos != posts.end() && *pos == p)
        << "remove of absent posting for term '" << term << "'";
    posts.erase(pos);
    --num_postings_;
    if (posts.empty()) {
      // The term left the vocabulary; a fresh rebuild would not have it, so
      // drop the entry and re-finalize the dictionary.
      entries_.erase(it);
      *needs_finalize = true;
      return;
    }
    auto lo = std::lower_bound(posts.begin(), posts.end(),
                               Posting{tid, row, 0}, PostingLess);
    const bool last_in_row = lo == posts.end() || lo->table_id != tid ||
                             lo->row != row;
    const uint32_t id = DictIdOf(term);
    if (last_in_row && id < dict_terms_.size()) BumpProfile(id, tid, -1);
    return;
  }
  const uint32_t id = DictIdOf(term);
  KWSDBG_CHECK(id < dict_terms_.size())
      << "remove of unindexed term '" << term << "'";
  Delta& d = delta_[id];
  auto ait = std::lower_bound(d.added.begin(), d.added.end(), p, PostingLess);
  if (ait != d.added.end() && *ait == p) {
    d.added.erase(ait);
  } else {
    auto rit = std::lower_bound(d.removed.begin(), d.removed.end(), p,
                                PostingLess);
    KWSDBG_CHECK(!(rit != d.removed.end() && *rit == p))
        << "double remove of posting for term '" << term << "'";
    const std::vector<Posting>& base = store_->Fetch(id);
    auto bit = std::lower_bound(base.begin(), base.end(), p, PostingLess);
    KWSDBG_CHECK(bit != base.end() && *bit == p)
        << "remove of absent posting for term '" << term << "'";
    d.removed.insert(rit, p);
  }
  --num_postings_;
  if (RowOccurrences(id, tid, row) == 0) BumpProfile(id, tid, -1);
}

StatusOr<size_t> InvertedIndex::ApplyRowInsert(const Table& table,
                                               uint32_t row) {
  const uint32_t tid = TableIdOf(table.name());
  if (tid == kNoTable) {
    return Status::NotFound("table '" + table.name() + "' is not indexed");
  }
  const std::vector<size_t> text_cols = table.schema().TextColumnIndices();
  if (store_ != nullptr) {
    // Pre-validate so a rejected term leaves the index untouched.
    for (size_t col : text_cols) {
      const Value v = table.at(row, col);
      if (v.is_null()) continue;
      for (const std::string& term : TokenizeUnique(v.AsString())) {
        if (DictIdOf(term) >= dict_terms_.size()) {
          return Status::FailedPrecondition(
              "insert of vocabulary-new term '" + term +
              "' on a spilled index (the on-disk directory cannot grow)");
        }
      }
    }
  }
  size_t patches = 0;
  bool needs_finalize = false;
  for (size_t col : text_cols) {
    // Copy: on a spilled table the reference points into an evictable frame.
    const Value v = table.at(row, col);
    if (v.is_null()) continue;
    for (const std::string& term : TokenizeUnique(v.AsString())) {
      KWSDBG_RETURN_NOT_OK(AddOccurrence(
          term, tid, row, static_cast<uint32_t>(col), &needs_finalize));
      ++patches;
    }
  }
  if (needs_finalize) Finalize();
  return patches;
}

StatusOr<size_t> InvertedIndex::ApplyRowDelete(const Table& table,
                                               uint32_t row) {
  const uint32_t tid = TableIdOf(table.name());
  if (tid == kNoTable) {
    return Status::NotFound("table '" + table.name() + "' is not indexed");
  }
  size_t patches = 0;
  bool needs_finalize = false;
  for (size_t col : table.schema().TextColumnIndices()) {
    const Value v = table.at(row, col);
    if (v.is_null()) continue;
    for (const std::string& term : TokenizeUnique(v.AsString())) {
      RemoveOccurrence(term, tid, row, static_cast<uint32_t>(col),
                       &needs_finalize);
      ++patches;
    }
  }
  if (needs_finalize) Finalize();
  return patches;
}

StatusOr<size_t> InvertedIndex::ApplyCellUpdate(const Table& table,
                                                uint32_t row, size_t col,
                                                const Value& old_value) {
  const uint32_t tid = TableIdOf(table.name());
  if (tid == kNoTable) {
    return Status::NotFound("table '" + table.name() + "' is not indexed");
  }
  std::vector<std::string> old_terms;
  if (!old_value.is_null()) old_terms = TokenizeUnique(old_value.AsString());
  std::vector<std::string> new_terms;
  const Value nv = table.at(row, col);
  if (!nv.is_null()) new_terms = TokenizeUnique(nv.AsString());
  std::sort(old_terms.begin(), old_terms.end());
  std::sort(new_terms.begin(), new_terms.end());
  std::vector<std::string> removed;
  std::set_difference(old_terms.begin(), old_terms.end(), new_terms.begin(),
                      new_terms.end(), std::back_inserter(removed));
  std::vector<std::string> added;
  std::set_difference(new_terms.begin(), new_terms.end(), old_terms.begin(),
                      old_terms.end(), std::back_inserter(added));
  if (store_ != nullptr) {
    for (const std::string& term : added) {
      if (DictIdOf(term) >= dict_terms_.size()) {
        return Status::FailedPrecondition(
            "update introducing vocabulary-new term '" + term +
            "' on a spilled index (the on-disk directory cannot grow)");
      }
    }
  }
  size_t patches = 0;
  bool needs_finalize = false;
  for (const std::string& term : removed) {
    RemoveOccurrence(term, tid, row, static_cast<uint32_t>(col),
                     &needs_finalize);
    ++patches;
  }
  for (const std::string& term : added) {
    KWSDBG_RETURN_NOT_OK(AddOccurrence(
        term, tid, row, static_cast<uint32_t>(col), &needs_finalize));
    ++patches;
  }
  if (needs_finalize) Finalize();
  return patches;
}

Status InvertedIndex::RemapRows(const std::string& table,
                                const std::vector<uint32_t>& remap) {
  if (store_ != nullptr) {
    return Status::FailedPrecondition(
        "RemapRows on a spilled index (compact before spilling)");
  }
  const uint32_t tid = TableIdOf(table);
  if (tid == kNoTable) {
    return Status::NotFound("table '" + table + "' is not indexed");
  }
  // Deleted rows were blanked before compaction, so no posting references a
  // kDeletedRow slot; survivors keep their relative order, so every list
  // stays sorted and the profile's distinct-row counts are unchanged.
  for (auto& [term, entry] : entries_) {
    for (Posting& p : entry.postings) {
      if (p.table_id != tid) continue;
      KWSDBG_CHECK(p.row < remap.size() && remap[p.row] != kDeletedRow)
          << "posting for term '" << term << "' references compacted row "
          << p.row << " of table '" << table << "'";
      p.row = remap[p.row];
    }
  }
  return Status::OK();
}

size_t InvertedIndex::RowFrequency(const std::string& term,
                                   const std::string& table) const {
  uint32_t id = DictIdOf(term);
  if (id >= dict_terms_.size()) return 0;
  uint32_t tid = TableIdOf(table);
  if (tid == kNoTable) return 0;
  return ProfileRowCount(id, tid);
}

}  // namespace kwsdbg
