#include "text/inverted_index.h"

#include <algorithm>

#include "common/logging.h"
#include "text/tokenizer.h"

namespace kwsdbg {

InvertedIndex InvertedIndex::Build(const Database& db) {
  InvertedIndex index;
  for (const std::string& name : db.TableNames()) {
    uint32_t tid = static_cast<uint32_t>(index.table_names_.size());
    index.table_names_.push_back(name);
    index.table_ids_.emplace(name, tid);
    const Table* table = db.FindTable(name);
    KWSDBG_CHECK(table != nullptr)
        << "database catalog lists unknown table '" << name << "'";
    const std::vector<size_t> text_cols = table->schema().TextColumnIndices();
    if (text_cols.empty()) continue;
    for (size_t row = 0; row < table->num_rows(); ++row) {
      for (size_t col : text_cols) {
        const Value& v = table->at(row, col);
        if (v.is_null()) continue;
        for (const std::string& term : TokenizeUnique(v.AsString())) {
          index.entries_[term].postings.push_back(
              Posting{tid, static_cast<uint32_t>(row),
                      static_cast<uint32_t>(col)});
        }
      }
    }
  }
  index.Finalize();
  return index;
}

void InvertedIndex::Finalize() {
  dict_terms_.reserve(entries_.size());
  for (const auto& [term, entry] : entries_) dict_terms_.push_back(term);
  std::sort(dict_terms_.begin(), dict_terms_.end());

  dict_blob_.clear();
  dict_starts_.clear();
  dict_starts_.reserve(dict_terms_.size());
  dict_masks_.assign(dict_terms_.size(), 0);
  profile_.assign(dict_terms_.size(), {});
  dict_postings_.assign(dict_terms_.size(), nullptr);
  num_postings_ = 0;

  for (uint32_t id = 0; id < dict_terms_.size(); ++id) {
    dict_starts_.push_back(dict_blob_.size());
    dict_blob_ += dict_terms_[id];
    dict_blob_ += '\n';

    const Entry& e = entries_.at(dict_terms_[id]);
    dict_postings_[id] = &e.postings;
    num_postings_ += e.postings.size();

    // Build attaches postings in (table, row, column) ascending order, so
    // one pass with consecutive dedupe yields exact distinct-row counts.
    auto& prof = profile_[id];
    uint32_t last_tid = kNoTable;
    uint32_t last_row = 0;
    for (const Posting& p : e.postings) {
      if (p.table_id < 64) dict_masks_[id] |= (1ull << p.table_id);
      if (p.table_id == last_tid && p.row == last_row) continue;
      if (p.table_id != last_tid) prof.push_back({p.table_id, 0});
      ++prof.back().second;
      last_tid = p.table_id;
      last_row = p.row;
    }
  }
}

uint32_t InvertedIndex::DictIdOf(const std::string& term) const {
  auto it = std::lower_bound(dict_terms_.begin(), dict_terms_.end(), term);
  if (it == dict_terms_.end() || *it != term) {
    return static_cast<uint32_t>(dict_terms_.size());
  }
  return static_cast<uint32_t>(it - dict_terms_.begin());
}

std::vector<std::string> InvertedIndex::TablesContaining(
    const std::string& term) const {
  std::vector<std::string> out;
  uint32_t id = DictIdOf(term);
  if (id >= dict_terms_.size()) return out;
  for (const auto& [tid, rows] : profile_[id]) {
    out.push_back(table_names_[tid]);
  }
  return out;
}

const std::vector<Posting>& InvertedIndex::PostingsFor(
    const std::string& term) const {
  if (store_ == nullptr) {
    auto it = entries_.find(term);
    return it == entries_.end() ? empty_ : it->second.postings;
  }
  uint32_t id = DictIdOf(term);
  return id >= dict_terms_.size() ? empty_ : store_->Fetch(id);
}

std::vector<uint32_t> InvertedIndex::TermIdsContaining(
    const std::string& infix) const {
  std::vector<uint32_t> out;
  if (infix.empty()) return out;
  // Terms never contain '\n' (they are lower-cased alphanumeric runs), so a
  // needle with one can't match — and without one, a blob match can't span
  // the separator between two terms.
  if (infix.find('\n') != std::string::npos) return out;
  size_t pos = dict_blob_.find(infix);
  while (pos != std::string::npos) {
    // The matching term is the one whose start is the last <= pos.
    auto it = std::upper_bound(dict_starts_.begin(), dict_starts_.end(), pos);
    uint32_t id = static_cast<uint32_t>(it - dict_starts_.begin() - 1);
    out.push_back(id);
    // Skip to the next term: further matches inside this term are dupes.
    size_t next_start = id + 1 < dict_starts_.size()
                            ? dict_starts_[id + 1]
                            : std::string::npos;
    if (next_start == std::string::npos) break;
    pos = dict_blob_.find(infix, next_start);
  }
  return out;
}

std::vector<const std::vector<Posting>*> InvertedIndex::PostingListsContaining(
    const std::string& infix) const {
  KWSDBG_CHECK(store_ == nullptr)
      << "PostingListsContaining on a spilled index: fetched lists are not "
         "simultaneously resident; use TermIdsContaining + PostingsForTermId";
  std::vector<const std::vector<Posting>*> out;
  for (uint32_t id : TermIdsContaining(infix)) {
    out.push_back(dict_postings_[id]);
  }
  return out;
}

const std::vector<Posting>& InvertedIndex::PostingsForTermId(
    uint32_t term_id) const {
  KWSDBG_CHECK(term_id < dict_terms_.size())
      << "term id " << term_id << " out of range";
  if (store_ != nullptr) return store_->Fetch(term_id);
  return *dict_postings_[term_id];
}

const std::string& InvertedIndex::TermOfId(uint32_t term_id) const {
  KWSDBG_CHECK(term_id < dict_terms_.size())
      << "term id " << term_id << " out of range";
  return dict_terms_[term_id];
}

size_t InvertedIndex::ProfileRowCount(uint32_t term_id,
                                      uint32_t table_id) const {
  if (term_id >= profile_.size()) return 0;
  for (const auto& [tid, rows] : profile_[term_id]) {
    if (tid == table_id) return rows;
  }
  return 0;
}

size_t InvertedIndex::EstimatedInfixRows(const std::string& infix,
                                         const std::string& table) const {
  uint32_t table_id = TableIdOf(table);
  if (table_id == kNoTable) return 0;
  size_t rows = 0;
  for (uint32_t id : TermIdsContaining(infix)) {
    rows += ProfileRowCount(id, table_id);
  }
  return rows;
}

Status InvertedIndex::SpillToDisk(const std::string& dir,
                                  size_t cache_lists) {
  if (store_ != nullptr) {
    return Status::FailedPrecondition("inverted index is already spilled");
  }
  KWSDBG_ASSIGN_OR_RETURN(store_,
                          PostingStore::Create(dir, dict_postings_,
                                               cache_lists));
  // Dictionary, masks, and profile stay; the payload goes.
  entries_.clear();
  dict_postings_.clear();
  return Status::OK();
}

PostingIoStats InvertedIndex::io_stats() const {
  return store_ == nullptr ? PostingIoStats{} : store_->stats();
}

uint32_t InvertedIndex::TableIdOf(const std::string& table) const {
  auto it = table_ids_.find(table);
  return it == table_ids_.end() ? kNoTable : it->second;
}

bool InvertedIndex::Contains(const std::string& term) const {
  return DictIdOf(term) < dict_terms_.size();
}

bool InvertedIndex::TableContains(const std::string& term,
                                  const std::string& table) const {
  uint32_t id = DictIdOf(term);
  if (id >= dict_terms_.size()) return false;
  auto tid_it = table_ids_.find(table);
  if (tid_it == table_ids_.end()) return false;
  const uint32_t tid = tid_it->second;
  if (tid < 64) return (dict_masks_[id] >> tid) & 1;
  return ProfileRowCount(id, tid) > 0;
}

size_t InvertedIndex::RowFrequency(const std::string& term,
                                   const std::string& table) const {
  uint32_t id = DictIdOf(term);
  if (id >= dict_terms_.size()) return 0;
  uint32_t tid = TableIdOf(table);
  if (tid == kNoTable) return 0;
  return ProfileRowCount(id, tid);
}

}  // namespace kwsdbg
