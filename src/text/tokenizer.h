// Text tokenization for indexing and keyword queries: lower-cased maximal
// runs of ASCII alphanumerics (plus digits), everything else is a separator.
// This mirrors a simple Lucene StandardAnalyzer setup without stemming.
#ifndef KWSDBG_TEXT_TOKENIZER_H_
#define KWSDBG_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace kwsdbg {

/// Splits `text` into lower-cased alphanumeric tokens.
/// "Keyword Search, 2015!" -> {"keyword", "search", "2015"}.
std::vector<std::string> Tokenize(std::string_view text);

/// Tokenizes and deduplicates, preserving first-occurrence order. Used for
/// keyword queries, where a repeated keyword is meaningless under "and"
/// semantics.
std::vector<std::string> TokenizeUnique(std::string_view text);

}  // namespace kwsdbg

#endif  // KWSDBG_TEXT_TOKENIZER_H_
