// The posting record shared by the in-memory index and the on-disk store.
#ifndef KWSDBG_TEXT_POSTING_H_
#define KWSDBG_TEXT_POSTING_H_

#include <cstdint>

namespace kwsdbg {

/// One occurrence of a term: which table, row, and text column.
struct Posting {
  uint32_t table_id;  ///< Index into InvertedIndex::table_names().
  uint32_t row;
  uint32_t column;

  bool operator==(const Posting&) const = default;
};

}  // namespace kwsdbg

#endif  // KWSDBG_TEXT_POSTING_H_
