// On-disk posting lists for a spilled InvertedIndex.
//
// The store keeps one flat file of raw `Posting` records, concatenated in
// sorted-term order, plus an in-memory directory of (offset, count) per term
// id — the ursadb split: dictionary and per-term profile stay RAM-resident,
// the heavy posting payload goes to disk. Reads go through a small LRU cache
// of decoded lists.
//
// Not thread-safe: Fetch mutates the cache. A spilled index is a
// single-session artifact; concurrent services keep the index resident.
#ifndef KWSDBG_TEXT_POSTING_STORE_H_
#define KWSDBG_TEXT_POSTING_STORE_H_

#include <cstdint>
#include <cstdio>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "text/posting.h"

namespace kwsdbg {

struct PostingIoStats {
  size_t posting_reads = 0;       ///< Lists fetched from disk.
  size_t posting_cache_hits = 0;  ///< Fetches served from the LRU cache.
};

class PostingStore {
 public:
  /// Writes `lists` (indexed by term id) to a private file under `dir` (or
  /// the system temp dir when empty). The file is unlinked in the
  /// destructor. `cache_lists` bounds the decoded-list LRU cache.
  static StatusOr<std::unique_ptr<PostingStore>> Create(
      const std::string& dir,
      const std::vector<const std::vector<Posting>*>& lists,
      size_t cache_lists);

  ~PostingStore();
  PostingStore(const PostingStore&) = delete;
  PostingStore& operator=(const PostingStore&) = delete;

  /// The posting list of `term_id`. The reference is guaranteed valid only
  /// until the next Fetch call (the LRU may evict it); callers that union
  /// several lists must consume one list before fetching the next.
  const std::vector<Posting>& Fetch(uint32_t term_id) const;

  size_t num_lists() const { return counts_.size(); }
  const PostingIoStats& stats() const { return stats_; }

 private:
  PostingStore(std::string path, std::FILE* file, size_t cache_lists)
      : path_(std::move(path)), file_(file), cache_capacity_(cache_lists) {}

  std::string path_;
  std::FILE* file_ = nullptr;
  std::vector<uint64_t> offsets_;  ///< Byte offset of each term's list.
  std::vector<uint32_t> counts_;   ///< Postings per term.
  size_t cache_capacity_;

  struct CacheEntry {
    std::vector<Posting> postings;
    std::list<uint32_t>::iterator lru_pos;
  };
  mutable std::unordered_map<uint32_t, CacheEntry> cache_;
  mutable std::list<uint32_t> lru_;  // front = least recently used
  mutable PostingIoStats stats_;
};

}  // namespace kwsdbg

#endif  // KWSDBG_TEXT_POSTING_STORE_H_
