#include "text/posting_store.h"

#include <unistd.h>

#include <filesystem>

#include "common/logging.h"

namespace kwsdbg {

StatusOr<std::unique_ptr<PostingStore>> PostingStore::Create(
    const std::string& dir,
    const std::vector<const std::vector<Posting>*>& lists,
    size_t cache_lists) {
  std::error_code ec;
  std::filesystem::path base =
      dir.empty() ? std::filesystem::temp_directory_path(ec)
                  : std::filesystem::path(dir);
  if (ec) base = ".";
  static unsigned counter = 0;
  std::string name = "kwsdbg_postings_" + std::to_string(::getpid()) + "_" +
                     std::to_string(counter++) + ".bin";
  std::string path = (base / name).string();
  std::FILE* file = std::fopen(path.c_str(), "wb+");
  if (file == nullptr) {
    return Status::Internal("cannot create posting file at " + path);
  }
  auto store = std::unique_ptr<PostingStore>(
      new PostingStore(std::move(path), file, cache_lists < 1 ? 1
                                                              : cache_lists));
  store->offsets_.reserve(lists.size());
  store->counts_.reserve(lists.size());
  uint64_t offset = 0;
  for (const std::vector<Posting>* list : lists) {
    store->offsets_.push_back(offset);
    store->counts_.push_back(static_cast<uint32_t>(list->size()));
    if (!list->empty()) {
      size_t bytes = list->size() * sizeof(Posting);
      if (std::fwrite(list->data(), 1, bytes, file) != bytes) {
        return Status::Internal("short write to posting file " +
                                store->path_);
      }
      offset += bytes;
    }
  }
  if (std::fflush(file) != 0) {
    return Status::Internal("flush failed for posting file " + store->path_);
  }
  return store;
}

PostingStore::~PostingStore() {
  if (file_ != nullptr) std::fclose(file_);
  std::error_code ec;
  std::filesystem::remove(path_, ec);  // best effort: it is our temp file
}

const std::vector<Posting>& PostingStore::Fetch(uint32_t term_id) const {
  KWSDBG_CHECK(term_id < counts_.size())
      << "posting fetch for unknown term id " << term_id;
  auto it = cache_.find(term_id);
  if (it != cache_.end()) {
    lru_.splice(lru_.end(), lru_, it->second.lru_pos);
    ++stats_.posting_cache_hits;
    return it->second.postings;
  }
  while (cache_.size() >= cache_capacity_) {
    cache_.erase(lru_.front());
    lru_.pop_front();
  }
  CacheEntry entry;
  entry.postings.resize(counts_[term_id]);
  if (!entry.postings.empty()) {
    // A read failure here is corruption of our own spill file, not a
    // recoverable condition — the accessor has no error channel by design.
    KWSDBG_CHECK(std::fseek(file_, static_cast<long>(offsets_[term_id]),
                            SEEK_SET) == 0)
        << "seek failed in posting file " << path_;
    size_t bytes = entry.postings.size() * sizeof(Posting);
    KWSDBG_CHECK(std::fread(entry.postings.data(), 1, bytes, file_) == bytes)
        << "short read in posting file " << path_;
  }
  ++stats_.posting_reads;
  lru_.push_back(term_id);
  auto [pos, inserted] = cache_.emplace(term_id, std::move(entry));
  pos->second.lru_pos = std::prev(lru_.end());
  return pos->second.postings;
}

}  // namespace kwsdbg
