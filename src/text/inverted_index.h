// Inverted index over the text attributes of a database, playing the role the
// paper assigns to Lucene: map a keyword to the relations (and tuples) that
// contain it (Sec. 2.3, Phase 1).
//
// After Build the index finalizes a sorted term dictionary (a contiguous
// '\n'-separated blob scanned once per infix lookup) and a per-term
// selectivity profile: for every (term, table), the exact number of distinct
// rows containing the term. Dictionary and profile always stay RAM-resident;
// `SpillToDisk` additionally moves the posting payload to a PostingStore so
// only an LRU cache of decoded lists stays in memory — the ursadb
// NgramProfile split. The executor uses the profile to order probes
// most-selective-first before touching any posting I/O.
#ifndef KWSDBG_TEXT_INVERTED_INDEX_H_
#define KWSDBG_TEXT_INVERTED_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/database.h"
#include "text/posting.h"
#include "text/posting_store.h"

namespace kwsdbg {

/// Immutable term -> postings map built from every kString column of every
/// table. Rebuild after data changes (the paper treats the index as a
/// periodically rebuilt artifact too); rebuilding also refreshes the
/// selectivity profile, which is how epoch bumps invalidate it.
///
/// A spilled index is NOT thread-safe (posting fetches mutate an LRU cache
/// through const methods); it is a single-session artifact. Concurrent
/// services keep their index resident.
class InvertedIndex {
 public:
  /// Sentinel returned by TableIdOf for tables absent from the index.
  static constexpr uint32_t kNoTable = 0xFFFFFFFFu;

  /// Builds the index over all tables of `db`. The Database must outlive
  /// nothing here — the index copies what it needs (table names only).
  static InvertedIndex Build(const Database& db);

  /// Names of the tables that contain `term` in some text attribute.
  /// Matching is exact on the tokenized term (lower-cased).
  std::vector<std::string> TablesContaining(const std::string& term) const;

  /// All occurrences of `term`; empty if absent. On a spilled index the
  /// reference is valid only until the next posting fetch.
  const std::vector<Posting>& PostingsFor(const std::string& term) const;

  /// Posting lists of every indexed term that contains `infix` as a
  /// substring — the dictionary scan Lucene performs for `*infix*` wildcard
  /// queries. Because terms are maximal alphanumeric runs, a row of a table
  /// matches LIKE '%infix%' (case-insensitively) iff one of these lists has
  /// a posting for it, provided `infix` itself tokenizes to a single term.
  /// The returned pointers stay valid for the life of the index. Resident
  /// indexes only — spilled callers iterate TermIdsContaining +
  /// PostingsForTermId so lists can be consumed one at a time.
  std::vector<const std::vector<Posting>*> PostingListsContaining(
      const std::string& infix) const;

  /// Ids (positions in the sorted dictionary) of every term containing
  /// `infix`, via one substring scan over the dictionary blob. Works in both
  /// modes and costs no posting I/O.
  std::vector<uint32_t> TermIdsContaining(const std::string& infix) const;

  /// The posting list of a dictionary term id. Spilled: fetched through the
  /// LRU cache, reference valid only until the next fetch.
  const std::vector<Posting>& PostingsForTermId(uint32_t term_id) const;

  /// The dictionary term with this id.
  const std::string& TermOfId(uint32_t term_id) const;

  /// Profile lookup: exact distinct-row count of term `term_id` in table
  /// `table_id` (0 if absent). No posting I/O.
  size_t ProfileRowCount(uint32_t term_id, uint32_t table_id) const;

  /// Upper bound on the rows of `table` matching LIKE '%infix%': the sum of
  /// profile counts over all terms containing `infix` (a row holding two
  /// such terms is counted twice). Exact when zero — no term, no match —
  /// which is what makes profile-driven fast-rejects safe. No posting I/O.
  size_t EstimatedInfixRows(const std::string& infix,
                            const std::string& table) const;

  /// Moves the posting payload to an on-disk PostingStore under `dir` (or
  /// the system temp dir when empty), keeping dictionary + profile
  /// resident. `cache_lists` bounds the decoded-list LRU cache.
  Status SpillToDisk(const std::string& dir = "", size_t cache_lists = 64);

  bool spilled() const { return store_ != nullptr; }

  /// Zero-initialized for a resident index.
  PostingIoStats io_stats() const;

  /// Id of `table` inside Posting::table_id space, or kNoTable.
  uint32_t TableIdOf(const std::string& table) const;

  /// True iff `term` occurs anywhere in the database.
  bool Contains(const std::string& term) const;

  /// True iff `term` occurs in the named table.
  bool TableContains(const std::string& term,
                     const std::string& table) const;

  /// Document frequency of `term` within `table` (number of rows of `table`
  /// with at least one occurrence). Used for selectivity reporting; served
  /// from the profile in O(tables-with-term).
  size_t RowFrequency(const std::string& term, const std::string& table) const;

  size_t num_terms() const { return dict_terms_.size(); }
  const std::vector<std::string>& table_names() const { return table_names_; }

  /// All indexed terms, sorted (deterministic iteration for workload
  /// generators and diagnostics).
  std::vector<std::string> Terms() const { return dict_terms_; }

  /// Total number of postings (index size indicator).
  size_t num_postings() const { return num_postings_; }

 private:
  struct Entry {
    std::vector<Posting> postings;
  };

  /// Builds the sorted dictionary, blob, masks, and selectivity profile
  /// from entries_. Called at the end of Build.
  void Finalize();

  /// Dictionary id of `term`, or kNoTable-style npos (= num_terms()) if
  /// absent. Binary search.
  uint32_t DictIdOf(const std::string& term) const;

  // Resident posting payload; cleared by SpillToDisk.
  std::unordered_map<std::string, Entry> entries_;

  // Dictionary + profile: always resident, indexed by sorted term id.
  std::vector<std::string> dict_terms_;
  std::string dict_blob_;            ///< '\n'-joined sorted terms.
  std::vector<size_t> dict_starts_;  ///< Offset of each term in the blob.
  std::vector<uint64_t> dict_masks_;  ///< Bit i set iff table i has the term
                                      ///< (tables beyond 64 use the profile).
  /// Per term: (table_id, distinct rows containing the term), table ids
  /// ascending. Exact counts, not estimates.
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> profile_;
  std::vector<const std::vector<Posting>*> dict_postings_;  ///< Resident only.
  size_t num_postings_ = 0;

  std::vector<std::string> table_names_;
  std::unordered_map<std::string, uint32_t> table_ids_;
  std::vector<Posting> empty_;

  std::unique_ptr<PostingStore> store_;  ///< Non-null once spilled.
};

}  // namespace kwsdbg

#endif  // KWSDBG_TEXT_INVERTED_INDEX_H_
