// Inverted index over the text attributes of a database, playing the role the
// paper assigns to Lucene: map a keyword to the relations (and tuples) that
// contain it (Sec. 2.3, Phase 1).
//
// After Build the index finalizes a sorted term dictionary (a contiguous
// '\n'-separated blob scanned once per infix lookup) and a per-term
// selectivity profile: for every (term, table), the exact number of distinct
// rows containing the term. Dictionary and profile always stay RAM-resident;
// `SpillToDisk` additionally moves the posting payload to a PostingStore so
// only an LRU cache of decoded lists stays in memory — the ursadb
// NgramProfile split. The executor uses the profile to order probes
// most-selective-first before touching any posting I/O.
#ifndef KWSDBG_TEXT_INVERTED_INDEX_H_
#define KWSDBG_TEXT_INVERTED_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/database.h"
#include "text/posting.h"
#include "text/posting_store.h"

namespace kwsdbg {

/// Term -> postings map built from every kString column of every table.
/// Built once, then maintainable under live writes: ApplyRowInsert /
/// ApplyRowDelete / ApplyCellUpdate patch the posting lists, the selectivity
/// profile, and the table masks in place so the index always equals a
/// from-scratch rebuild (the incremental-vs-rebuild parity oracle in
/// tests/text/incremental_index_test.cc). A full rebuild remains valid too.
///
/// A spilled index is NOT thread-safe (posting fetches mutate an LRU cache
/// through const methods); it is a single-session artifact. Concurrent
/// services keep their index resident. Incremental patches on a spilled
/// index land in a resident delta overlay merged into every fetch; only
/// vocabulary-new terms are rejected (the on-disk directory cannot grow).
class InvertedIndex {
 public:
  /// Sentinel returned by TableIdOf for tables absent from the index.
  static constexpr uint32_t kNoTable = 0xFFFFFFFFu;

  /// Builds the index over all tables of `db`. The Database must outlive
  /// nothing here — the index copies what it needs (table names only).
  static InvertedIndex Build(const Database& db);

  /// Names of the tables that contain `term` in some text attribute.
  /// Matching is exact on the tokenized term (lower-cased).
  std::vector<std::string> TablesContaining(const std::string& term) const;

  /// All occurrences of `term`; empty if absent. On a spilled index the
  /// reference is valid only until the next posting fetch.
  const std::vector<Posting>& PostingsFor(const std::string& term) const;

  /// Posting lists of every indexed term that contains `infix` as a
  /// substring — the dictionary scan Lucene performs for `*infix*` wildcard
  /// queries. Because terms are maximal alphanumeric runs, a row of a table
  /// matches LIKE '%infix%' (case-insensitively) iff one of these lists has
  /// a posting for it, provided `infix` itself tokenizes to a single term.
  /// The returned pointers stay valid for the life of the index. Resident
  /// indexes only — spilled callers iterate TermIdsContaining +
  /// PostingsForTermId so lists can be consumed one at a time.
  std::vector<const std::vector<Posting>*> PostingListsContaining(
      const std::string& infix) const;

  /// Ids (positions in the sorted dictionary) of every term containing
  /// `infix`, via one substring scan over the dictionary blob. Works in both
  /// modes and costs no posting I/O.
  std::vector<uint32_t> TermIdsContaining(const std::string& infix) const;

  /// The posting list of a dictionary term id. Spilled: fetched through the
  /// LRU cache, reference valid only until the next fetch.
  const std::vector<Posting>& PostingsForTermId(uint32_t term_id) const;

  /// The dictionary term with this id.
  const std::string& TermOfId(uint32_t term_id) const;

  /// Profile lookup: exact distinct-row count of term `term_id` in table
  /// `table_id` (0 if absent). No posting I/O.
  size_t ProfileRowCount(uint32_t term_id, uint32_t table_id) const;

  /// Upper bound on the rows of `table` matching LIKE '%infix%': the sum of
  /// profile counts over all terms containing `infix` (a row holding two
  /// such terms is counted twice). Exact when zero — no term, no match —
  /// which is what makes profile-driven fast-rejects safe. No posting I/O.
  size_t EstimatedInfixRows(const std::string& infix,
                            const std::string& table) const;

  /// Moves the posting payload to an on-disk PostingStore under `dir` (or
  /// the system temp dir when empty), keeping dictionary + profile
  /// resident. `cache_lists` bounds the decoded-list LRU cache.
  Status SpillToDisk(const std::string& dir = "", size_t cache_lists = 64);

  bool spilled() const { return store_ != nullptr; }

  /// Zero-initialized for a resident index.
  PostingIoStats io_stats() const;

  /// Id of `table` inside Posting::table_id space, or kNoTable.
  uint32_t TableIdOf(const std::string& table) const;

  /// True iff `term` occurs anywhere in the database.
  bool Contains(const std::string& term) const;

  /// True iff `term` occurs in the named table.
  bool TableContains(const std::string& term,
                     const std::string& table) const;

  /// Document frequency of `term` within `table` (number of rows of `table`
  /// with at least one occurrence). Used for selectivity reporting; served
  /// from the profile in O(tables-with-term).
  size_t RowFrequency(const std::string& term, const std::string& table) const;

  size_t num_terms() const { return dict_terms_.size(); }
  const std::vector<std::string>& table_names() const { return table_names_; }

  /// All indexed terms, sorted (deterministic iteration for workload
  /// generators and diagnostics).
  std::vector<std::string> Terms() const { return dict_terms_; }

  /// Total number of postings (index size indicator).
  size_t num_postings() const { return num_postings_; }

  // ---- Incremental maintenance (live writes) ----

  /// Patches the index after `table` gained row `row` (the row must already
  /// be readable). Returns the number of posting patches applied. On a
  /// resident index a vocabulary-new term triggers a dictionary re-finalize
  /// (term ids shift, version() bumps — no re-tokenization); on a spilled
  /// index new terms are rejected with FailedPrecondition.
  StatusOr<size_t> ApplyRowInsert(const Table& table, uint32_t row);

  /// Patches the index for a pending delete of `row`. Must be called while
  /// the row's old values are still readable (i.e. BEFORE
  /// Table::DeleteRow blanks them). Returns posting patches applied.
  StatusOr<size_t> ApplyRowDelete(const Table& table, uint32_t row);

  /// Patches the index after one cell changed: `old_value` is the
  /// pre-update value; the table already holds the new one.
  StatusOr<size_t> ApplyCellUpdate(const Table& table, uint32_t row,
                                   size_t col, const Value& old_value);

  /// Rewrites this table's posting row ids after Table::Compact, using the
  /// remap it returned (old -> new; kDeletedRow entries must have no
  /// postings left, which holds because deletes blank the row first).
  /// Survivor order is preserved, so lists stay sorted. Resident only.
  Status RemapRows(const std::string& table,
                   const std::vector<uint32_t>& remap);

  /// Bumped whenever term ids shift (dictionary re-finalize after a
  /// vocabulary change). Term-id-keyed session caches (the executor's infix
  /// cache) compare against this.
  uint64_t version() const { return version_; }

 private:
  struct Entry {
    std::vector<Posting> postings;
  };

  /// Resident overlay for one spilled term: postings added/removed since the
  /// spill, both sorted. Fetches merge (base - removed) + added.
  struct Delta {
    std::vector<Posting> added;
    std::vector<Posting> removed;
  };

  /// Builds the sorted dictionary, blob, masks, and selectivity profile
  /// from entries_. Called at the end of Build and after any vocabulary
  /// change; bumps version_.
  void Finalize();

  /// Adds/removes one occurrence, maintaining postings, profile, masks, and
  /// num_postings_. `needs_finalize` is set when the vocabulary changed
  /// (resident only). Remove on an absent posting is a checked invariant
  /// violation.
  Status AddOccurrence(const std::string& term, uint32_t tid, uint32_t row,
                       uint32_t col, bool* needs_finalize);
  void RemoveOccurrence(const std::string& term, uint32_t tid, uint32_t row,
                        uint32_t col, bool* needs_finalize);

  /// Number of effective postings of term `id` at (tid, row), counting the
  /// spill overlay. Drives the "first/last occurrence in this row" profile
  /// updates.
  size_t RowOccurrences(uint32_t id, uint32_t tid, uint32_t row) const;

  /// Profile count adjustment for (term id, tid): +1 / -1 distinct row.
  void BumpProfile(uint32_t id, uint32_t tid, int delta);

  /// Dictionary id of `term`, or kNoTable-style npos (= num_terms()) if
  /// absent. Binary search.
  uint32_t DictIdOf(const std::string& term) const;

  // Resident posting payload; cleared by SpillToDisk.
  std::unordered_map<std::string, Entry> entries_;

  // Dictionary + profile: always resident, indexed by sorted term id.
  std::vector<std::string> dict_terms_;
  std::string dict_blob_;            ///< '\n'-joined sorted terms.
  std::vector<size_t> dict_starts_;  ///< Offset of each term in the blob.
  std::vector<uint64_t> dict_masks_;  ///< Bit i set iff table i has the term
                                      ///< (tables beyond 64 use the profile).
  /// Per term: (table_id, distinct rows containing the term), table ids
  /// ascending. Exact counts, not estimates.
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> profile_;
  std::vector<const std::vector<Posting>*> dict_postings_;  ///< Resident only.
  size_t num_postings_ = 0;

  std::vector<std::string> table_names_;
  std::unordered_map<std::string, uint32_t> table_ids_;
  std::vector<Posting> empty_;
  uint64_t version_ = 0;

  std::unique_ptr<PostingStore> store_;  ///< Non-null once spilled.
  std::unordered_map<uint32_t, Delta> delta_;  ///< Spilled-mode overlay.
  mutable std::vector<Posting> merged_scratch_;  ///< Overlay merge buffer.
};

}  // namespace kwsdbg

#endif  // KWSDBG_TEXT_INVERTED_INDEX_H_
