// Inverted index over the text attributes of a database, playing the role the
// paper assigns to Lucene: map a keyword to the relations (and tuples) that
// contain it (Sec. 2.3, Phase 1).
#ifndef KWSDBG_TEXT_INVERTED_INDEX_H_
#define KWSDBG_TEXT_INVERTED_INDEX_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/database.h"

namespace kwsdbg {

/// One occurrence of a term: which table, row, and text column.
struct Posting {
  uint32_t table_id;  ///< Index into InvertedIndex::table_names().
  uint32_t row;
  uint32_t column;

  bool operator==(const Posting&) const = default;
};

/// Immutable term -> postings map built from every kString column of every
/// table. Rebuild after data changes (the paper treats the index as a
/// periodically rebuilt artifact too).
class InvertedIndex {
 public:
  /// Sentinel returned by TableIdOf for tables absent from the index.
  static constexpr uint32_t kNoTable = 0xFFFFFFFFu;

  /// Builds the index over all tables of `db`. The Database must outlive
  /// nothing here — the index copies what it needs (table names only).
  static InvertedIndex Build(const Database& db);

  /// Names of the tables that contain `term` in some text attribute.
  /// Matching is exact on the tokenized term (lower-cased).
  std::vector<std::string> TablesContaining(const std::string& term) const;

  /// All occurrences of `term`; empty if absent.
  const std::vector<Posting>& PostingsFor(const std::string& term) const;

  /// Posting lists of every indexed term that contains `infix` as a
  /// substring — the dictionary scan Lucene performs for `*infix*` wildcard
  /// queries. Because terms are maximal alphanumeric runs, a row of a table
  /// matches LIKE '%infix%' (case-insensitively) iff one of these lists has
  /// a posting for it, provided `infix` itself tokenizes to a single term.
  /// The returned pointers stay valid for the life of the index.
  std::vector<const std::vector<Posting>*> PostingListsContaining(
      const std::string& infix) const;

  /// Id of `table` inside Posting::table_id space, or kNoTable.
  uint32_t TableIdOf(const std::string& table) const;

  /// True iff `term` occurs anywhere in the database.
  bool Contains(const std::string& term) const;

  /// True iff `term` occurs in the named table.
  bool TableContains(const std::string& term,
                     const std::string& table) const;

  /// Document frequency of `term` within `table` (number of rows of `table`
  /// with at least one occurrence). Used for selectivity reporting.
  size_t RowFrequency(const std::string& term, const std::string& table) const;

  size_t num_terms() const { return entries_.size(); }
  const std::vector<std::string>& table_names() const { return table_names_; }

  /// All indexed terms, sorted (deterministic iteration for workload
  /// generators and diagnostics).
  std::vector<std::string> Terms() const;

  /// Total number of postings (index size indicator).
  size_t num_postings() const;

 private:
  struct Entry {
    std::vector<Posting> postings;
    uint64_t table_mask = 0;  ///< Bit i set iff table i has the term
                              ///< (tables beyond 64 fall back to postings).
  };

  std::unordered_map<std::string, Entry> entries_;
  std::vector<std::string> table_names_;
  std::unordered_map<std::string, uint32_t> table_ids_;
  std::vector<Posting> empty_;
};

}  // namespace kwsdbg

#endif  // KWSDBG_TEXT_INVERTED_INDEX_H_
