#include "text/tokenizer.h"

#include <cctype>
#include <unordered_set>

namespace kwsdbg {

std::vector<std::string> Tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  std::string cur;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      cur.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(c))));
    } else if (!cur.empty()) {
      tokens.push_back(std::move(cur));
      cur.clear();
    }
  }
  if (!cur.empty()) tokens.push_back(std::move(cur));
  return tokens;
}

std::vector<std::string> TokenizeUnique(std::string_view text) {
  std::vector<std::string> tokens = Tokenize(text);
  std::unordered_set<std::string> seen;
  std::vector<std::string> out;
  out.reserve(tokens.size());
  for (auto& t : tokens) {
    if (seen.insert(t).second) out.push_back(std::move(t));
  }
  return out;
}

}  // namespace kwsdbg
