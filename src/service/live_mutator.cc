#include "service/live_mutator.h"

#include "common/fault_injector.h"
#include "common/logging.h"

namespace kwsdbg {

namespace {

/// True iff the index maintains postings for this table at all (tables can
/// predate the index build or carry no text columns).
bool IndexCovers(const InvertedIndex* index, const Table& t) {
  return index != nullptr &&
         index->TableIdOf(t.name()) != InvertedIndex::kNoTable;
}

Status PoisonedStatus() {
  return Status::DataLoss(
      "mutator is poisoned: a prior WAL append failed after its "
      "in-memory apply, so memory and log have diverged");
}

}  // namespace

Status LiveMutator::PatchTextIndex(const Mutation& m, Table* t, uint32_t row,
                                   const Value& old_value, size_t* patches) {
  if (!IndexCovers(index_, *t)) return Status::OK();
  switch (m.kind) {
    case Mutation::Kind::kInsert: {
      StatusOr<size_t> n = index_->ApplyRowInsert(*t, row);
      if (!n.ok()) {
        // The row is in the table but not the index: roll it back to a
        // tombstone (blank cells are invisible to scans and rebuilds), so
        // the two stay consistent and the caller sees a clean failure.
        KWSDBG_CHECK(t->DeleteRow(row).ok());
        return n.status();
      }
      *patches += *n;
      return Status::OK();
    }
    case Mutation::Kind::kDelete: {
      // Must run before DeleteRow blanks the cells — it re-tokenizes them.
      KWSDBG_ASSIGN_OR_RETURN(size_t n, index_->ApplyRowDelete(*t, row));
      *patches += n;
      return Status::OK();
    }
    case Mutation::Kind::kUpdate: {
      if (t->schema().column(m.column).type != DataType::kString) {
        return Status::OK();  // Non-text columns carry no postings.
      }
      StatusOr<size_t> n = index_->ApplyCellUpdate(*t, row, m.column,
                                                   old_value);
      if (!n.ok()) {
        // ApplyCellUpdate validates before patching, so the index is
        // untouched; restore the cell and report the typed failure.
        KWSDBG_CHECK(t->SetValue(row, m.column, old_value).ok());
        return n.status();
      }
      *patches += *n;
      return Status::OK();
    }
  }
  return Status::Internal("unreachable mutation kind");
}

Status LiveMutator::CompactNow(Table* t) {
  KWSDBG_ASSIGN_OR_RETURN(std::vector<uint32_t> remap, t->Compact());
  if (IndexCovers(index_, *t)) {
    KWSDBG_RETURN_NOT_OK(index_->RemapRows(t->name(), remap));
  }
  // Row ids shifted wholesale: patching the flat arenas is meaningless, and
  // the stale entries would mis-probe. Drop them; the next query rebuilds.
  for (SharedFlatRowIndexManager* tier : tiers_) tier->EraseTable(t);
  stats_.compactions.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status LiveMutator::MaybeCompact(Table* t, bool logging) {
  // Replay never auto-compacts: compactions replay only where the log
  // recorded them, so recovered row ids line up with logged row ids.
  if (!logging) return Status::OK();
  if (options_.auto_compact_fraction <= 0) return Status::OK();
  if (t->deleted_fraction() <= options_.auto_compact_fraction) {
    return Status::OK();
  }
  // On-disk posting lists cannot be row-remapped in place; leave the
  // tombstones until the index is rebuilt resident.
  if (index_ != nullptr && index_->spilled()) return Status::OK();
  KWSDBG_RETURN_NOT_OK(CompactNow(t));
  if (logging && wal_ != nullptr) {
    const Status logged = wal_->AppendCompact(t->name());
    if (!logged.ok()) {
      wal_poisoned_.store(true, std::memory_order_release);
      return Status::DataLoss("WAL compact append failed after compaction: " +
                              logged.ToString());
    }
  }
  return Status::OK();
}

Status LiveMutator::Apply(const Mutation& m) {
  return ApplyInternal(m, /*logging=*/true);
}

Status LiveMutator::ApplyRecord(const WalRecord& record) {
  if (record.kind == WalRecord::Kind::kCompact) {
    Table* t = db_->FindTable(record.table);
    if (t == nullptr) {
      return Status::DataLoss("WAL compact record names unknown table " +
                              record.table);
    }
    RelationWriteGuard guard(fences_, t->catalog_index());
    return CompactNow(t);
  }
  return ApplyInternal(record.mutation, /*logging=*/false);
}

Status LiveMutator::ApplyInternal(const Mutation& m, bool logging) {
  if (wal_poisoned_.load(std::memory_order_acquire)) return PoisonedStatus();
  // Encode the WAL frame up front so an unloggable mutation (a row that
  // encodes past the frame limit) fails here, before any in-memory state
  // changes — discovering it at append time would force a poison.
  std::string wal_payload;
  if (logging && wal_ != nullptr) {
    wal_payload = EncodeWalMutation(m);
    if (wal_payload.size() > kWalMaxPayload) {
      return Status::InvalidArgument(
          "mutation encodes to " + std::to_string(wal_payload.size()) +
          " WAL bytes, over the " + std::to_string(kWalMaxPayload) +
          "-byte frame limit");
    }
  }
  // Fail-before-mutate: an injected outage at this point leaves the table,
  // the index, and every cache byte-identical to before the call — the
  // chaos layer in tests/service/differential_fuzz_test.cc relies on it.
  KWSDBG_FAULT_POINT("storage.mutation.apply");
  Table* t = db_->FindTable(m.table);
  if (t == nullptr) return Status::NotFound("no table " + m.table);

  // Exclusive fence on the mutated relation + the index gate: in-flight
  // queries over other relations keep running; queries binding this one
  // wait out exactly one table-and-index patch.
  RelationWriteGuard guard(fences_, t->catalog_index());

  // Re-check under the fence: a concurrent Apply() on another relation
  // (holding a different fence) may have poisoned the mutator between the
  // fast-path check above and this acquisition.
  if (wal_poisoned_.load(std::memory_order_acquire)) return PoisonedStatus();

  size_t patches = 0;
  uint32_t row = 0;
  Value old_value;
  Tuple old_row;
  switch (m.kind) {
    case Mutation::Kind::kInsert: {
      KWSDBG_RETURN_NOT_OK(t->AppendRow(m.row));
      row = static_cast<uint32_t>(t->num_rows() - 1);
      const Status patched = PatchTextIndex(m, t, row, old_value, &patches);
      if (!patched.ok()) {
        // PatchTextIndex tombstoned the row; the table still changed shape,
        // so stale flat indexes must notice.
        t->BumpDataEpoch();
        return patched;
      }
      break;
    }
    case Mutation::Kind::kDelete: {
      if (m.row_id >= t->num_rows()) {
        return Status::InvalidArgument("delete: row out of range");
      }
      if (t->deleted(m.row_id)) {
        return Status::InvalidArgument("delete: row already deleted");
      }
      row = static_cast<uint32_t>(m.row_id);
      old_row = t->row(row);  // copy: flat patches need pre-blank values
      KWSDBG_RETURN_NOT_OK(PatchTextIndex(m, t, row, old_value, &patches));
      KWSDBG_RETURN_NOT_OK(t->DeleteRow(row));
      break;
    }
    case Mutation::Kind::kUpdate: {
      if (m.row_id >= t->num_rows()) {
        return Status::InvalidArgument("update: row out of range");
      }
      if (t->deleted(m.row_id)) {
        return Status::InvalidArgument("update: row is deleted");
      }
      if (m.column >= t->schema().num_columns()) {
        return Status::InvalidArgument("update: column out of range");
      }
      row = static_cast<uint32_t>(m.row_id);
      old_value = t->at(row, m.column);  // copy before overwrite
      KWSDBG_RETURN_NOT_OK(t->SetValue(row, m.column, m.value));
      const Status patched = PatchTextIndex(m, t, row, old_value, &patches);
      if (!patched.ok()) return patched;  // cell already restored
      break;
    }
  }

  // Bump before the flat patches: the tiers restamp their entries to the
  // *new* epoch, so only this write's patch revalidates them.
  t->BumpDataEpoch();
  for (SharedFlatRowIndexManager* tier : tiers_) {
    switch (m.kind) {
      case Mutation::Kind::kInsert:
        patches += tier->ApplyRowInsert(t, row);
        break;
      case Mutation::Kind::kDelete:
        patches += tier->ApplyRowDelete(t, row, old_row);
        break;
      case Mutation::Kind::kUpdate:
        patches += tier->ApplyCellUpdate(t, row, m.column, old_value);
        break;
    }
  }
  // Log after the in-memory apply succeeds, before acknowledging: a write
  // the caller never saw succeed may be missing from the log, but an
  // acknowledged write never is. An append failure here means memory holds
  // a write the log does not — poison the mutator rather than let the two
  // drift further.
  if (logging && wal_ != nullptr) {
    const Status logged = wal_->AppendPayload(wal_payload);
    if (!logged.ok()) {
      wal_poisoned_.store(true, std::memory_order_release);
      return Status::DataLoss("WAL append failed after in-memory apply: " +
                              logged.ToString());
    }
  }
  KWSDBG_RETURN_NOT_OK(MaybeCompact(t, logging));

  // Partial invalidation: only verdicts whose relation mask includes this
  // table die; verdicts over disjoint relations stay warm across the write.
  const uint64_t mask = RelationFences::BitFor(t->catalog_index());
  size_t evicted = 0;
  for (VerdictCache* cache : caches_) evicted += cache->EvictRelations(mask);

  stats_.partial_evictions.fetch_add(evicted, std::memory_order_relaxed);
  stats_.index_patches.fetch_add(patches, std::memory_order_relaxed);
  stats_.mutations_applied.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

}  // namespace kwsdbg
