#include "service/debug_service.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <sstream>
#include <thread>

#include "common/hash.h"
#include "common/lru_cache.h"
#include "text/inverted_index.h"
#include "text/tokenizer.h"

namespace kwsdbg {

namespace {

/// Fingerprint of the live index for checkpoint validation: recovery
/// rebuilds the index from restored tables and compares against the stored
/// fingerprint, so a restore that silently diverged (wrong corpus, stale
/// tables) fails kDataLoss instead of serving wrong verdicts.
CheckpointIndexInfo ComputeIndexFingerprint(const InvertedIndex* index) {
  CheckpointIndexInfo info;
  if (index == nullptr) return info;
  info.present = true;
  info.num_terms = index->num_terms();
  info.num_postings = index->num_postings();
  uint64_t h = SplitMix64(0x6b777364ull);  // "kwsd"
  for (const std::string& term : index->Terms()) {
    h = SplitMix64(h ^ Checksum64(term.data(), term.size()));
  }
  info.dict_checksum = h;
  return info;
}

/// Nearest-rank percentile over a sorted sample (q in [0,1]).
double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const size_t rank = static_cast<size_t>(q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

LruCacheStats SumCacheStats(const std::vector<ShardStats>& shards) {
  LruCacheStats total;
  for (const ShardStats& s : shards) {
    total.hits += s.cache.hits;
    total.misses += s.cache.misses;
    total.insertions += s.cache.insertions;
    total.evictions += s.cache.evictions;
    total.entries += s.cache.entries;
  }
  return total;
}

}  // namespace

std::string ServiceStats::ToString() const {
  std::ostringstream out;
  out << queries << " queries in " << wall_millis << " ms ("
      << queries_per_second << " qps), " << truncated << " truncated, "
      << failed << " failed";
  if (retries + shed > 0) {
    out << " (" << retries << " retried attempt(s), " << shed << " shed)";
  }
  out << "\n";
  if (index_fallbacks + semijoin_fallbacks > 0) {
    out << "  degraded: " << index_fallbacks << " text-index fallback(s), "
        << semijoin_fallbacks << " semijoin fallback(s)\n";
  }
  if (page_hits + page_reads + posting_reads > 0) {
    out << "  storage: " << page_reads << " page read(s), " << page_hits
        << " page hit(s), " << page_evictions << " eviction(s), "
        << posting_reads << " posting-list read(s)\n";
  }
  out << "  latency ms: p50=" << p50_millis << " p95=" << p95_millis
      << " p99=" << p99_millis << " p999=" << p999_millis
      << " max=" << max_millis << ", mean queue wait=" << mean_queue_millis
      << " ms\n";
  if (num_shards > 1) {
    out << "  shards: " << num_shards << ", " << steals << " steal(s)";
    for (size_t s = 0; s < shards.size(); ++s) {
      out << (s == 0 ? " [" : " | ") << "s" << s << ": ran "
          << shards[s].executed << ", stole " << shards[s].steals
          << ", depth<=" << shards[s].max_queue_depth << ", hits "
          << shards[s].local_cache_hits << "+" << shards[s].remote_cache_hits
          << "r";
    }
    if (!shards.empty()) out << "]";
    out << "\n";
  }
  out << "  sql: " << sql_queries << " queries, verdict cache "
      << cache_hits << " hit(s) / " << cache_misses << " miss(es)"
      << "; shared tier: " << shared_cache.entries << " entries, "
      << shared_cache.hits << " hit(s), " << shared_cache.evictions
      << " eviction(s)";
  if (planner_decisions > 0) {
    out << "\n  adaptive: " << planner_decisions << " planner decision(s), "
        << planner_explored << " explored, " << pa_observations
        << " p_a observation(s)";
  }
  if (mutations_applied + partial_evictions + index_patches > 0) {
    out << "\n  writes: " << mutations_applied << " mutation(s), "
        << index_patches << " index patch(es), " << partial_evictions
        << " relation-scoped eviction(s)";
  }
  if (wal_records + checkpoints + wal_replayed + recovery_torn_bytes > 0) {
    out << "\n  durability: " << wal_records << " wal record(s), "
        << wal_fsyncs << " fsync(s), " << checkpoints << " checkpoint(s), "
        << wal_replayed << " record(s) replayed at recovery";
    if (recovery_torn_bytes > 0) {
      out << ", " << recovery_torn_bytes << " torn-tail byte(s) dropped";
    }
  }
  return out.str();
}

ServiceStats ComputeServiceStats(const std::vector<QueryResult>& results,
                                 double wall_millis) {
  ServiceStats stats;
  stats.queries = results.size();
  stats.wall_millis = wall_millis;
  std::vector<double> latencies;
  latencies.reserve(results.size());
  double queue_sum = 0;
  for (const QueryResult& r : results) {
    stats.retries += r.retries;
    if (r.stolen) ++stats.steals;
    if (r.shed) {
      // Shed queries never ran: their zero exec/queue times are admission
      // outcomes, not latencies. Folding them into the sample dragged
      // p50/p95 toward zero exactly when the service was overloaded.
      ++stats.shed;
      ++stats.failed;
      continue;
    }
    latencies.push_back(r.exec_millis);
    queue_sum += r.queue_millis;
    if (!r.status.ok()) {
      ++stats.failed;
      continue;
    }
    if (r.report.truncated) ++stats.truncated;
    const TraversalStats agg = r.report.AggregateTraversalStats();
    stats.sql_queries += agg.sql_queries;
    stats.cache_hits += agg.cache_hits;
    stats.cache_misses += agg.cache_misses;
    stats.index_fallbacks += agg.index_fallbacks;
    stats.semijoin_fallbacks += agg.semijoin_fallbacks;
    stats.flat_probes += agg.flat_probes;
    stats.prefetch_batches += agg.prefetch_batches;
    stats.page_hits += agg.page_hits;
    stats.page_reads += agg.page_reads;
    stats.page_evictions += agg.page_evictions;
    stats.posting_reads += agg.posting_reads;
    stats.planner_decisions += agg.planner_decisions;
    stats.planner_explored += agg.planner_explored;
    stats.pa_observations += agg.pa_observations;
  }
  if (stats.queries > 0) {
    // Tiny batches can finish inside the timer's microsecond resolution; a
    // zero denominator reported 0 QPS and made ">= floor" gates vacuous.
    stats.queries_per_second = static_cast<double>(stats.queries) /
                               std::max(wall_millis, 0.001) * 1000.0;
  }
  std::sort(latencies.begin(), latencies.end());
  stats.p50_millis = Percentile(latencies, 0.50);
  stats.p95_millis = Percentile(latencies, 0.95);
  stats.p99_millis = Percentile(latencies, 0.99);
  stats.p999_millis = Percentile(latencies, 0.999);
  stats.max_millis = latencies.empty() ? 0 : latencies.back();
  if (!latencies.empty()) {
    stats.mean_queue_millis = queue_sum / static_cast<double>(latencies.size());
  }
  return stats;
}

DebugService::DebugService(const Database* db, const Lattice* lattice,
                           const InvertedIndex* index, ServiceOptions options)
    : DebugService(db, lattice, index, std::move(options),
                   /*mutable_db=*/nullptr, /*mutable_index=*/nullptr) {}

DebugService::DebugService(Database* db, const Lattice* lattice,
                           InvertedIndex* index, ServiceOptions options)
    : DebugService(db, lattice, index, std::move(options),
                   /*mutable_db=*/db, /*mutable_index=*/index) {}

DebugService::DebugService(const Database* db, const Lattice* lattice,
                           const InvertedIndex* index, ServiceOptions options,
                           Database* mutable_db, InvertedIndex* mutable_index)
    : db_(db), lattice_(lattice), index_(index), options_(options) {
  if (options_.num_workers == 0) options_.num_workers = 1;
  size_t num_shards = options_.num_shards == 0 ? options_.num_workers
                                               : options_.num_shards;
  num_shards = std::min(num_shards, options_.num_workers);
  options_.num_shards = num_shards;
  if (options_.handoff_batch == 0) options_.handoff_batch = 1;
  // The total verdict budget splits across partitions so N shards cost the
  // same memory as the old single tier.
  const size_t per_shard_capacity = std::max<size_t>(
      1, std::max<size_t>(1, options_.shared_cache_capacity) / num_shards);
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(per_shard_capacity));
    if (options_.debugger.adaptive) {
      // Adaptive mode: each shard shares one p_a model + planner across its
      // workers, mirroring the verdict partition and flat-index tier.
      shards_.back()->adaptive = std::make_unique<AdaptiveState>(
          options_.debugger.adaptive_options);
    }
  }
  // The write path must exist before any worker thread starts: workers read
  // fences_ when building their evaluators.
  if (mutable_db != nullptr) {
    fences_ = std::make_unique<RelationFences>(mutable_db->num_tables());
    mutator_ = std::make_unique<LiveMutator>(mutable_db, mutable_index,
                                             fences_.get());
    for (const auto& shard : shards_) {
      mutator_->RegisterVerdictCache(&shard->cache);
      mutator_->RegisterFlatTier(&shard->flat_indexes);
    }
  }
  // Durability comes up after the mutation engine (replay goes through it)
  // and before any worker thread starts, so recovery never races a query.
  if (!options_.durability.dir.empty()) {
    if (mutable_db == nullptr) {
      durability_status_ = Status::FailedPrecondition(
          "durability requires the mutable DebugService constructor; a "
          "const database has no write path to log");
    } else {
      SetupDurability(mutable_db);
    }
  }
  workers_.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    shards_[i % num_shards]->workers.fetch_add(1, std::memory_order_relaxed);
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

void DebugService::SetupDurability(Database* mutable_db) {
  (void)mutable_db;  // Replay flows through mutator_, built over it already.
  const std::string& dir = options_.durability.dir;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // Open reports failures.
  const std::string wal_path = dir + "/wal.log";

  // 1. Checkpoint metadata: learn the covered seq and validate the caller's
  //    rebuilt index against the stored fingerprint BEFORE replay — WAL
  //    records patch the index in place, so replaying onto a wrong index
  //    would compound the divergence.
  uint64_t covered = 0;
  StatusOr<CheckpointInfo> info_or = ReadCheckpointInfo(dir);
  if (info_or.ok()) {
    const CheckpointInfo& info = info_or.value();
    covered = info.covered_seq;
    if (info.index.present) {
      const CheckpointIndexInfo now = ComputeIndexFingerprint(index_);
      if (!now.present || now.num_terms != info.index.num_terms ||
          now.num_postings != info.index.num_postings ||
          now.dict_checksum != info.index.dict_checksum) {
        durability_status_ = Status::DataLoss(
            "index fingerprint mismatch vs checkpoint in " + dir +
            ": rebuilt index has " + std::to_string(now.num_terms) +
            " terms / " + std::to_string(now.num_postings) +
            " postings, checkpoint recorded " +
            std::to_string(info.index.num_terms) + " / " +
            std::to_string(info.index.num_postings));
        return;
      }
    }
  } else if (info_or.status().code() != StatusCode::kNotFound) {
    durability_status_ = info_or.status();
    return;
  }

  // 2. Replay the WAL suffix through the mutation engine. Records at or
  //    below the covered seq are already in the snapshot; a WAL whose base
  //    exceeds the covered seq means the checkpoint that justified the
  //    truncation vanished — unrecoverable.
  StatusOr<WalReplayResult> replay_or = ReadWal(wal_path);
  if (!replay_or.ok()) {
    durability_status_ = replay_or.status();
    return;
  }
  const WalReplayResult& replay = replay_or.value();
  recovery_torn_bytes_ = replay.torn_tail_bytes;
  if (replay.exists && replay.base_seq > covered) {
    durability_status_ = Status::DataLoss(
        "WAL " + wal_path + " starts at seq " +
        std::to_string(replay.base_seq) + " but the checkpoint covers only " +
        std::to_string(covered) + "; the covering checkpoint is gone");
    return;
  }
  for (const WalRecord& rec : replay.records) {
    if (rec.seq <= covered) continue;
    const Status applied = mutator_->ApplyRecord(rec);
    if (!applied.ok()) {
      durability_status_ = Status::DataLoss(
          "WAL replay failed at seq " + std::to_string(rec.seq) + ": " +
          applied.ToString());
      return;
    }
    ++wal_replayed_;
  }

  // 3. Attach the writer (chops any torn tail so new appends start on a
  //    frame boundary). From here every acknowledged mutation is logged.
  //    Open gets the covered seq so a fresh or wholly-superseded log
  //    restarts at the checkpoint boundary — never below it, where new
  //    appends would take seqs the next recovery skips as covered.
  StatusOr<std::unique_ptr<WalWriter>> wal_or =
      WalWriter::Open(wal_path, options_.durability.wal, covered);
  if (!wal_or.ok()) {
    durability_status_ = wal_or.status();
    return;
  }
  wal_ = std::move(wal_or).value();
  mutator_->AttachWal(wal_.get());
}

Status DebugService::Checkpoint() {
  if (mutator_ == nullptr || wal_ == nullptr) {
    return Status::FailedPrecondition(
        "Checkpoint requires durability (ServiceOptions::durability.dir) on "
        "a mutable-constructed service");
  }
  KWSDBG_RETURN_NOT_OK(durability_status_);
  if (mutator_->wal_poisoned()) {
    return Status::DataLoss(
        "refusing to checkpoint: the mutator is poisoned (a WAL append "
        "failed after its in-memory apply), so a snapshot would persist a "
        "state holding a write the caller never saw acknowledged");
  }
  std::lock_guard<std::mutex> serialize(checkpoint_mu_);
  // Taking every relation fence shared blocks RelationWriteGuard writers
  // (ApplyMutation) for the duration while queries keep reading — the row
  // scan below must not race an in-place mutation. With writers quiesced
  // next_seq is stable, so the snapshot covers exactly the applied prefix.
  RelationReadGuard quiesce(fences_.get(), RelationReadGuard::kAllRelations);
  const uint64_t covered = wal_->next_seq() - 1;
  KWSDBG_RETURN_NOT_OK(WriteCheckpoint(*db_, options_.durability.dir, covered,
                                       ComputeIndexFingerprint(index_)));
  KWSDBG_RETURN_NOT_OK(wal_->Truncate(covered));
  checkpoints_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status DebugService::Drain() {
  if (mutator_ == nullptr || wal_ == nullptr) {
    return Status::FailedPrecondition(
        "Drain requires durability (ServiceOptions::durability.dir) on a "
        "mutable-constructed service");
  }
  draining_.store(true, std::memory_order_release);
  WaitIdle();
  // A batch already in flight finishes normally (new ones are rejected once
  // draining_ is set); poll rather than entangle Drain with the batch CV.
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!batch_in_flight_) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  KWSDBG_RETURN_NOT_OK(durability_status_);
  if (mutator_->wal_poisoned()) {
    return Status::DataLoss(
        "refusing to drain: the mutator is poisoned (memory and log have "
        "diverged); syncing or checkpointing would legitimize the split");
  }
  KWSDBG_RETURN_NOT_OK(wal_->Sync());
  return Checkpoint();
}

DebugService::~DebugService() {
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    stop_ = true;
  }
  idle_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

size_t DebugService::HomeShard(const std::string& query, size_t num_shards) {
  if (num_shards <= 1) return 0;
  // Canonical keyword label: sorted unique tokens. Two queries with the
  // same keyword multiset generate the same interpretations, hence the same
  // (canonical label, binding signature) verdict keys — hashing the label
  // co-locates them regardless of keyword order, case, or punctuation.
  std::vector<std::string> tokens = TokenizeUnique(query);
  std::sort(tokens.begin(), tokens.end());
  uint64_t h = 0xCBF29CE484222325ull;  // FNV-1a over label bytes.
  for (const std::string& token : tokens) {
    for (const char c : token) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001B3ull;
    }
    h ^= 0x1F;  // Unambiguous token separator.
    h *= 0x100000001B3ull;
  }
  return ShardIndexForHash(h, num_shards);
}

bool DebugService::Enqueue(Task task) {
  Shard& shard = *shards_[task.home_shard];
  shard.routed.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (options_.max_queue_depth > 0 &&
        shard.queue.size() >= options_.max_queue_depth) {
      shard.shed.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    shard.queue.push_back(std::move(task));
    shard.max_depth = std::max(shard.max_depth, shard.queue.size());
    shard.queued.fetch_add(1, std::memory_order_release);
  }
  pending_.fetch_add(1, std::memory_order_release);
  return true;
}

size_t DebugService::EnqueueGroup(size_t shard_id, std::vector<Task>* tasks,
                                  std::vector<Task>* rejected) {
  Shard& shard = *shards_[shard_id];
  shard.routed.fetch_add(tasks->size(), std::memory_order_relaxed);
  size_t accepted = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (Task& task : *tasks) {
      if (options_.max_queue_depth > 0 &&
          shard.queue.size() >= options_.max_queue_depth) {
        shard.shed.fetch_add(1, std::memory_order_relaxed);
        rejected->push_back(std::move(task));
        continue;
      }
      shard.queue.push_back(std::move(task));
      shard.max_depth = std::max(shard.max_depth, shard.queue.size());
      ++accepted;
    }
    if (accepted > 0) {
      shard.queued.fetch_add(accepted, std::memory_order_release);
    }
  }
  tasks->clear();
  if (accepted > 0) pending_.fetch_add(accepted, std::memory_order_release);
  return accepted;
}

void DebugService::NotifyWorkers(size_t tasks) {
  // Taking the idle mutex pairs the notify with the waiters' predicate
  // check, so a worker that just found every queue empty cannot miss it.
  std::lock_guard<std::mutex> lock(idle_mu_);
  if (tasks == 1) {
    idle_cv_.notify_one();
  } else {
    idle_cv_.notify_all();
  }
}

void DebugService::PopBatch(size_t shard_id, std::vector<Task>* out) {
  Shard& shard = *shards_[shard_id];
  std::lock_guard<std::mutex> lock(shard.mu);
  const size_t n = std::min(options_.handoff_batch, shard.queue.size());
  for (size_t i = 0; i < n; ++i) {
    out->push_back(std::move(shard.queue.front()));
    shard.queue.pop_front();
  }
  if (n > 0) {
    shard.queued.fetch_sub(n, std::memory_order_release);
    pending_.fetch_sub(n, std::memory_order_release);
  }
}

void DebugService::StealBatch(size_t thief, std::vector<Task>* out) {
  // Lock-free victim selection over the queue-depth mirrors, then one lock
  // on the deepest queue. Oldest-first, steal-half: the stolen tasks are
  // the ones that have waited longest, and halving the backlog in one
  // handoff drains skew faster than one-at-a-time stealing.
  size_t victim = thief;
  size_t victim_depth = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (s == thief) continue;
    const size_t depth = shards_[s]->queued.load(std::memory_order_acquire);
    if (depth > victim_depth) {
      victim_depth = depth;
      victim = s;
    }
  }
  if (victim == thief) return;
  Shard& shard = *shards_[victim];
  std::lock_guard<std::mutex> lock(shard.mu);
  const size_t n = std::min(options_.handoff_batch,
                            (shard.queue.size() + 1) / 2);
  for (size_t i = 0; i < n; ++i) {
    out->push_back(std::move(shard.queue.front()));
    shard.queue.pop_front();
  }
  if (n > 0) {
    shard.queued.fetch_sub(n, std::memory_order_release);
    pending_.fetch_sub(n, std::memory_order_release);
  }
}

bool DebugService::HasVisibleWork(size_t shard) const {
  if (shards_[shard]->queued.load(std::memory_order_acquire) > 0) return true;
  return options_.work_stealing && shards_.size() > 1 &&
         pending_.load(std::memory_order_acquire) > 0;
}

BatchResult DebugService::RunBatch(const std::vector<std::string>& queries) {
  return RunBatch(queries, options_.default_deadline_millis);
}

BatchResult DebugService::RunBatch(const std::vector<std::string>& queries,
                                   double deadline_millis) {
  Timer wall;
  BatchResult batch;
  batch.results.resize(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    batch.results[i].keyword_query = queries[i];
  }
  if (draining_.load(std::memory_order_acquire)) {
    batch.status = Status::Unavailable(
        "service is draining; no new batches admitted");
    for (QueryResult& r : batch.results) r.status = batch.status;
    batch.stats.queries = queries.size();
    batch.stats.failed = queries.size();
    return batch;
  }
  {
    // Concurrent-call guard: a second RunBatch while one is in flight used
    // to silently interleave two batches through the same completion
    // counter. Reject it wholesale with a typed batch status instead.
    std::lock_guard<std::mutex> lock(mu_);
    if (batch_in_flight_) {
      batch.status = Status::InvalidArgument(
          "RunBatch called while another batch is in flight; DebugService "
          "runs one batch at a time");
      for (QueryResult& r : batch.results) r.status = batch.status;
      batch.stats.queries = queries.size();
      batch.stats.failed = queries.size();
      return batch;
    }
    batch_in_flight_ = true;
    completed_ = 0;
  }
  ResetShardCounters();
  const size_t total = queries.size();
  if (total > 0) {
    // Route first, then hand each shard its whole group under one lock
    // (batched handoff): with S shards a batch costs S lock acquisitions,
    // not |batch|, and admission decisions for one shard are atomic across
    // the batch.
    std::vector<std::vector<Task>> groups(shards_.size());
    for (size_t i = 0; i < total; ++i) {
      QueryResult* slot = &batch.results[i];
      Task task;
      task.query = queries[i];
      task.deadline_millis = deadline_millis;
      task.home_shard = HomeShard(queries[i], shards_.size());
      slot->shard = task.home_shard;
      task.done = [this, slot, total](QueryResult&& r) {
        *slot = std::move(r);
        std::lock_guard<std::mutex> lock(mu_);
        if (++completed_ == total) done_cv_.notify_all();
      };
      groups[task.home_shard].push_back(std::move(task));
    }
    size_t enqueued = 0;
    std::vector<Task> rejected;
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (groups[s].empty()) continue;
      enqueued += EnqueueGroup(s, &groups[s], &rejected);
    }
    if (enqueued > 0) NotifyWorkers(enqueued);
    // Admission control: queries that did not fit under their home shard's
    // max_queue_depth are shed with a retryable status rather than queued
    // without bound. The caller can resubmit; nothing partial ever ran.
    for (Task& task : rejected) {
      QueryResult r;
      r.keyword_query = std::move(task.query);
      r.shard = task.home_shard;
      r.shed = true;
      r.status = Status::ResourceExhausted(
          "query shed by admission control (shard " +
          std::to_string(task.home_shard) +
          " queue full at max_queue_depth " +
          std::to_string(options_.max_queue_depth) + ")");
      task.done(std::move(r));
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock, [&] { return completed_ == total; });
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch_in_flight_ = false;
  }
  batch.stats = ComputeServiceStats(batch.results, wall.ElapsedMillis());
  batch.stats.num_shards = shards_.size();
  batch.stats.shards = ShardSnapshot();
  batch.stats.shared_cache = SumCacheStats(batch.stats.shards);
  if (mutator_ != nullptr) {
    // Lifetime write-path counters (like shared_cache): interleaved
    // ApplyMutation calls are not per-batch events, so deltas would lie.
    const MutationStats& ms = mutator_->stats();
    batch.stats.mutations_applied =
        ms.mutations_applied.load(std::memory_order_relaxed);
    batch.stats.partial_evictions =
        ms.partial_evictions.load(std::memory_order_relaxed);
    batch.stats.index_patches =
        ms.index_patches.load(std::memory_order_relaxed);
  }
  if (wal_ != nullptr) {
    // Lifetime durability counters, same contract as the write-path block.
    const WalStats ws = wal_->stats();
    batch.stats.wal_records = ws.records_appended;
    batch.stats.wal_fsyncs = ws.fsyncs;
    batch.stats.checkpoints = checkpoints_.load(std::memory_order_relaxed);
    batch.stats.wal_replayed = wal_replayed_;
    batch.stats.recovery_torn_bytes = recovery_torn_bytes_;
  }
  return batch;
}

Status DebugService::ApplyMutation(const Mutation& m) {
  if (mutator_ == nullptr) {
    return Status::FailedPrecondition(
        "live writes require the mutable DebugService constructor; this "
        "service was built over a const database");
  }
  if (draining_.load(std::memory_order_acquire)) {
    return Status::Unavailable("service is draining; no new writes admitted");
  }
  // A recovery that failed kDataLoss leaves the in-memory state unknown;
  // admitting writes on top would compound the divergence.
  KWSDBG_RETURN_NOT_OK(durability_status_);
  return mutator_->Apply(m);
}

Status DebugService::Submit(std::string query, double deadline_millis,
                            std::function<void(QueryResult)> done) {
  if (draining_.load(std::memory_order_acquire)) {
    return Status::Unavailable(
        "service is draining; no new submissions admitted");
  }
  Task task;
  task.deadline_millis = deadline_millis;
  task.home_shard = HomeShard(query, shards_.size());
  task.query = std::move(query);
  outstanding_submits_.fetch_add(1, std::memory_order_acq_rel);
  task.done = [this, done = std::move(done)](QueryResult&& r) {
    done(std::move(r));
    if (outstanding_submits_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  };
  const size_t home = task.home_shard;
  if (!Enqueue(std::move(task))) {
    outstanding_submits_.fetch_sub(1, std::memory_order_acq_rel);
    return Status::ResourceExhausted(
        "query shed by admission control (shard " + std::to_string(home) +
        " queue full at max_queue_depth " +
        std::to_string(options_.max_queue_depth) + ")");
  }
  NotifyWorkers(1);
  return Status::OK();
}

void DebugService::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] {
    return outstanding_submits_.load(std::memory_order_acquire) == 0;
  });
}

std::vector<ShardStats> DebugService::ShardSnapshot() const {
  std::vector<ShardStats> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardStats s;
    s.workers = shard->workers.load(std::memory_order_relaxed);
    s.routed = shard->routed.load(std::memory_order_relaxed);
    s.executed = shard->executed.load(std::memory_order_relaxed);
    s.steals = shard->steals.load(std::memory_order_relaxed);
    s.stolen_away = shard->stolen_away.load(std::memory_order_relaxed);
    s.shed = shard->shed.load(std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      s.max_queue_depth = shard->max_depth;
    }
    s.local_cache_hits = shard->local_cache_hits.load(std::memory_order_relaxed);
    s.remote_cache_hits =
        shard->remote_cache_hits.load(std::memory_order_relaxed);
    s.cache = shard->cache.stats();
    if (shard->adaptive != nullptr) {
      s.pa_observations = shard->adaptive->pa().observations();
    }
    out.push_back(s);
  }
  return out;
}

void DebugService::ResetShardCounters() {
  for (const auto& shard : shards_) {
    shard->routed.store(0, std::memory_order_relaxed);
    shard->executed.store(0, std::memory_order_relaxed);
    shard->steals.store(0, std::memory_order_relaxed);
    shard->stolen_away.store(0, std::memory_order_relaxed);
    shard->shed.store(0, std::memory_order_relaxed);
    shard->local_cache_hits.store(0, std::memory_order_relaxed);
    shard->remote_cache_hits.store(0, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->max_depth = shard->queue.size();
  }
}

void DebugService::ClearCaches() {
  for (const auto& shard : shards_) {
    shard->cache.Clear();
    shard->flat_indexes.Clear();
  }
}

void DebugService::WorkerLoop(size_t worker_id) {
  // The debugger (and with it the SQL session + evaluator) is built on the
  // worker thread and lives for the pool's lifetime, plugged into its home
  // shard's verdict partition and flat-index tier.
  const size_t my_shard = worker_id % shards_.size();
  Shard& home = *shards_[my_shard];
  DebuggerOptions debugger_options = options_.debugger;
  debugger_options.shared_verdict_cache = &home.cache;
  debugger_options.executor.shared_flat_indexes = &home.flat_indexes;
  debugger_options.shared_adaptive = home.adaptive.get();  // Null = static.
  debugger_options.eval.fences = fences_.get();  // Null = no write path.
  debugger_options.deadline_millis = 0;  // Armed per task below.
  NonAnswerDebugger debugger(db_, lattice_, index_, debugger_options);
  // Backoff jitter source: seeded per worker so a failing run replays the
  // exact same retry schedule (chaos tests depend on this).
  Rng backoff_rng(options_.retry_seed + worker_id * 0x9E3779B97F4A7C15ull);

  std::vector<Task> run;
  run.reserve(options_.handoff_batch);
  for (;;) {
    run.clear();
    PopBatch(my_shard, &run);
    if (run.empty() && options_.work_stealing && shards_.size() > 1) {
      StealBatch(my_shard, &run);
    }
    if (run.empty()) {
      std::unique_lock<std::mutex> lock(idle_mu_);
      if (stop_ && !HasVisibleWork(my_shard)) return;
      idle_cv_.wait(lock, [&] { return stop_ || HasVisibleWork(my_shard); });
      if (stop_ && !HasVisibleWork(my_shard)) return;
      continue;
    }
    for (Task& task : run) {
      ExecuteTask(&debugger, &backoff_rng, worker_id, my_shard,
                  std::move(task));
    }
  }
}

void DebugService::ExecuteTask(NonAnswerDebugger* debugger, Rng* backoff_rng,
                               size_t worker_id, size_t my_shard, Task task) {
  Shard& home = *shards_[task.home_shard];
  Shard& mine = *shards_[my_shard];
  QueryResult result;
  result.keyword_query = task.query;
  result.queue_millis = task.enqueued.ElapsedMillis();
  result.worker = worker_id;
  result.shard = task.home_shard;
  result.stolen = task.home_shard != my_shard;
  // A stolen query still reads/writes its home shard's verdict partition,
  // so a sub-network's verdicts stay resident where routing sends the next
  // query with the same keywords. Flat indexes stay thief-local: their
  // contents are a pure function of the database, identical on every shard.
  if (result.stolen) {
    debugger->set_verdict_cache(&home.cache);
    // Same residency argument for the adaptive tier: observations from a
    // stolen query train the model the next home-routed query will read.
    debugger->set_adaptive_state(home.adaptive.get());
  }
  Timer exec;
  debugger->set_deadline_millis(task.deadline_millis);
  StatusOr<DebugReport> report_or = debugger->Debug(task.query);
  // Retry transient failures (IsRetryable: kUnavailable /
  // kResourceExhausted) with exponential backoff + jitter, never past the
  // query's deadline. Deadline expiry is not retried: Debug() returns an
  // OK truncated report for it, and a remaining budget too small to back
  // off into is budget spent, so the last typed error stands.
  while (!report_or.ok() && report_or.status().IsRetryable() &&
         result.retries < options_.max_retries) {
    const double exp = static_cast<double>(
        uint64_t{1} << std::min<size_t>(result.retries, 20));
    double backoff_millis =
        std::min(options_.retry_backoff_base_millis * exp,
                 options_.retry_backoff_max_millis) *
        (0.5 + 0.5 * backoff_rng->NextDouble());
    if (backoff_millis < 0) backoff_millis = 0;
    double remaining = 0;  // 0 = unbounded.
    if (task.deadline_millis > 0) {
      remaining = task.deadline_millis - exec.ElapsedMillis();
      if (remaining <= backoff_millis) break;
      remaining -= backoff_millis;
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(backoff_millis));
    ++result.retries;
    debugger->set_deadline_millis(remaining);
    report_or = debugger->Debug(task.query);
  }
  result.exec_millis = exec.ElapsedMillis();
  if (result.stolen) {
    debugger->set_verdict_cache(&mine.cache);
    debugger->set_adaptive_state(mine.adaptive.get());
  }
  if (report_or.ok()) {
    result.report = std::move(report_or).value();
  } else {
    result.status = report_or.status();
  }
  mine.executed.fetch_add(1, std::memory_order_relaxed);
  if (result.stolen) {
    mine.steals.fetch_add(1, std::memory_order_relaxed);
    home.stolen_away.fetch_add(1, std::memory_order_relaxed);
  }
  if (result.status.ok()) {
    const size_t hits = result.report.AggregateTraversalStats().cache_hits;
    if (hits > 0) {
      (result.stolen ? home.remote_cache_hits : home.local_cache_hits)
          .fetch_add(hits, std::memory_order_relaxed);
    }
  }
  task.done(std::move(result));
}

}  // namespace kwsdbg
