#include "service/debug_service.h"

#include <algorithm>
#include <sstream>

namespace kwsdbg {

namespace {

/// Nearest-rank percentile over a sorted sample (q in [0,1]).
double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const size_t rank = static_cast<size_t>(q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace

std::string ServiceStats::ToString() const {
  std::ostringstream out;
  out << queries << " queries in " << wall_millis << " ms ("
      << queries_per_second << " qps), " << truncated << " truncated, "
      << failed << " failed\n";
  out << "  latency ms: p50=" << p50_millis << " p95=" << p95_millis
      << " p99=" << p99_millis << " max=" << max_millis
      << ", mean queue wait=" << mean_queue_millis << " ms\n";
  out << "  sql: " << sql_queries << " queries, verdict cache "
      << cache_hits << " hit(s) / " << cache_misses << " miss(es)"
      << "; shared tier: " << shared_cache.entries << " entries, "
      << shared_cache.hits << " hit(s), " << shared_cache.evictions
      << " eviction(s)";
  return out.str();
}

DebugService::DebugService(const Database* db, const Lattice* lattice,
                           const InvertedIndex* index, ServiceOptions options)
    : db_(db),
      lattice_(lattice),
      index_(index),
      options_(options),
      shared_cache_(std::max<size_t>(1, options.shared_cache_capacity)) {
  if (options_.num_workers == 0) options_.num_workers = 1;
  workers_.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

DebugService::~DebugService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

BatchResult DebugService::RunBatch(const std::vector<std::string>& queries) {
  return RunBatch(queries, options_.default_deadline_millis);
}

BatchResult DebugService::RunBatch(const std::vector<std::string>& queries,
                                   double deadline_millis) {
  Timer wall;
  BatchResult batch;
  batch.results.resize(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    batch.results[i].keyword_query = queries[i];
  }
  if (!queries.empty()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      batch_queries_ = &queries;
      batch_results_ = &batch.results;
      completed_ = 0;
      for (size_t i = 0; i < queries.size(); ++i) {
        Task task;
        task.index = i;
        task.deadline_millis = deadline_millis;
        queue_.push_back(std::move(task));  // Timer starts at construction.
      }
    }
    work_cv_.notify_all();
    {
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock, [&] { return completed_ == queries.size(); });
      batch_queries_ = nullptr;
      batch_results_ = nullptr;
    }
  }

  ServiceStats& stats = batch.stats;
  stats.queries = queries.size();
  stats.wall_millis = wall.ElapsedMillis();
  if (stats.wall_millis > 0) {
    stats.queries_per_second =
        static_cast<double>(stats.queries) / stats.wall_millis * 1000.0;
  }
  std::vector<double> latencies;
  latencies.reserve(batch.results.size());
  double queue_sum = 0;
  for (const QueryResult& r : batch.results) {
    latencies.push_back(r.exec_millis);
    queue_sum += r.queue_millis;
    if (!r.status.ok()) {
      ++stats.failed;
      continue;
    }
    if (r.report.truncated) ++stats.truncated;
    const TraversalStats agg = r.report.AggregateTraversalStats();
    stats.sql_queries += agg.sql_queries;
    stats.cache_hits += agg.cache_hits;
    stats.cache_misses += agg.cache_misses;
  }
  std::sort(latencies.begin(), latencies.end());
  stats.p50_millis = Percentile(latencies, 0.50);
  stats.p95_millis = Percentile(latencies, 0.95);
  stats.p99_millis = Percentile(latencies, 0.99);
  stats.max_millis = latencies.empty() ? 0 : latencies.back();
  if (!latencies.empty()) {
    stats.mean_queue_millis = queue_sum / static_cast<double>(latencies.size());
  }
  stats.shared_cache = shared_cache_.stats();
  return batch;
}

void DebugService::WorkerLoop(size_t worker_id) {
  // The debugger (and with it the SQL session + evaluator) is built on the
  // worker thread and lives for the pool's lifetime, plugged into the
  // shared verdict tier instead of a private session cache.
  DebuggerOptions debugger_options = options_.debugger;
  debugger_options.shared_verdict_cache = &shared_cache_;
  debugger_options.deadline_millis = 0;  // Armed per task below.
  NonAnswerDebugger debugger(db_, lattice_, index_, debugger_options);

  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    QueryResult& slot = (*batch_results_)[task.index];
    slot.queue_millis = task.enqueued.ElapsedMillis();
    slot.worker = worker_id;
    Timer exec;
    debugger.set_deadline_millis(task.deadline_millis);
    StatusOr<DebugReport> report_or =
        debugger.Debug((*batch_queries_)[task.index]);
    slot.exec_millis = exec.ElapsedMillis();
    if (report_or.ok()) {
      slot.report = std::move(report_or).value();
    } else {
      slot.status = report_or.status();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++completed_;
      if (completed_ == batch_results_->size()) done_cv_.notify_all();
    }
  }
}

}  // namespace kwsdbg
