#include "service/debug_service.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>

#include "common/rng.h"

namespace kwsdbg {

namespace {

/// Nearest-rank percentile over a sorted sample (q in [0,1]).
double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const size_t rank = static_cast<size_t>(q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace

std::string ServiceStats::ToString() const {
  std::ostringstream out;
  out << queries << " queries in " << wall_millis << " ms ("
      << queries_per_second << " qps), " << truncated << " truncated, "
      << failed << " failed";
  if (retries + shed > 0) {
    out << " (" << retries << " retried attempt(s), " << shed << " shed)";
  }
  out << "\n";
  if (index_fallbacks + semijoin_fallbacks > 0) {
    out << "  degraded: " << index_fallbacks << " text-index fallback(s), "
        << semijoin_fallbacks << " semijoin fallback(s)\n";
  }
  out << "  latency ms: p50=" << p50_millis << " p95=" << p95_millis
      << " p99=" << p99_millis << " max=" << max_millis
      << ", mean queue wait=" << mean_queue_millis << " ms\n";
  out << "  sql: " << sql_queries << " queries, verdict cache "
      << cache_hits << " hit(s) / " << cache_misses << " miss(es)"
      << "; shared tier: " << shared_cache.entries << " entries, "
      << shared_cache.hits << " hit(s), " << shared_cache.evictions
      << " eviction(s)";
  return out.str();
}

DebugService::DebugService(const Database* db, const Lattice* lattice,
                           const InvertedIndex* index, ServiceOptions options)
    : db_(db),
      lattice_(lattice),
      index_(index),
      options_(options),
      shared_cache_(std::max<size_t>(1, options.shared_cache_capacity)) {
  if (options_.num_workers == 0) options_.num_workers = 1;
  workers_.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

DebugService::~DebugService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

BatchResult DebugService::RunBatch(const std::vector<std::string>& queries) {
  return RunBatch(queries, options_.default_deadline_millis);
}

BatchResult DebugService::RunBatch(const std::vector<std::string>& queries,
                                   double deadline_millis) {
  Timer wall;
  BatchResult batch;
  batch.results.resize(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    batch.results[i].keyword_query = queries[i];
  }
  {
    // Concurrent-call guard: a second RunBatch while one is in flight used
    // to silently interleave two batches through the same queue/result
    // pointers. Reject it wholesale with a typed batch status instead.
    std::lock_guard<std::mutex> lock(mu_);
    if (batch_in_flight_) {
      batch.status = Status::InvalidArgument(
          "RunBatch called while another batch is in flight; DebugService "
          "runs one batch at a time");
      for (QueryResult& r : batch.results) r.status = batch.status;
      batch.stats.queries = queries.size();
      batch.stats.failed = queries.size();
      return batch;
    }
    batch_in_flight_ = true;
  }
  if (!queries.empty()) {
    size_t enqueued = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      batch_queries_ = &queries;
      batch_results_ = &batch.results;
      completed_ = 0;
      for (size_t i = 0; i < queries.size(); ++i) {
        if (options_.max_queue_depth > 0 &&
            queue_.size() >= options_.max_queue_depth) {
          // Admission control: over capacity — shed the query now with a
          // retryable status rather than queue without bound. The caller
          // can resubmit; nothing partial ever ran.
          QueryResult& slot = batch.results[i];
          slot.shed = true;
          slot.status = Status::ResourceExhausted(
              "query shed by admission control (queue depth " +
              std::to_string(queue_.size()) + " >= max_queue_depth " +
              std::to_string(options_.max_queue_depth) + ")");
          ++completed_;
          continue;
        }
        Task task;
        task.index = i;
        task.deadline_millis = deadline_millis;
        queue_.push_back(std::move(task));  // Timer starts at construction.
        ++enqueued;
      }
    }
    if (enqueued > 0) work_cv_.notify_all();
    {
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock, [&] { return completed_ == queries.size(); });
      batch_queries_ = nullptr;
      batch_results_ = nullptr;
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch_in_flight_ = false;
  }

  ServiceStats& stats = batch.stats;
  stats.queries = queries.size();
  stats.wall_millis = wall.ElapsedMillis();
  if (stats.wall_millis > 0) {
    stats.queries_per_second =
        static_cast<double>(stats.queries) / stats.wall_millis * 1000.0;
  }
  std::vector<double> latencies;
  latencies.reserve(batch.results.size());
  double queue_sum = 0;
  for (const QueryResult& r : batch.results) {
    latencies.push_back(r.exec_millis);
    queue_sum += r.queue_millis;
    stats.retries += r.retries;
    if (r.shed) ++stats.shed;
    if (!r.status.ok()) {
      ++stats.failed;
      continue;
    }
    if (r.report.truncated) ++stats.truncated;
    const TraversalStats agg = r.report.AggregateTraversalStats();
    stats.sql_queries += agg.sql_queries;
    stats.cache_hits += agg.cache_hits;
    stats.cache_misses += agg.cache_misses;
    stats.index_fallbacks += agg.index_fallbacks;
    stats.semijoin_fallbacks += agg.semijoin_fallbacks;
    stats.flat_probes += agg.flat_probes;
    stats.prefetch_batches += agg.prefetch_batches;
  }
  std::sort(latencies.begin(), latencies.end());
  stats.p50_millis = Percentile(latencies, 0.50);
  stats.p95_millis = Percentile(latencies, 0.95);
  stats.p99_millis = Percentile(latencies, 0.99);
  stats.max_millis = latencies.empty() ? 0 : latencies.back();
  if (!latencies.empty()) {
    stats.mean_queue_millis = queue_sum / static_cast<double>(latencies.size());
  }
  stats.shared_cache = shared_cache_.stats();
  return batch;
}

void DebugService::WorkerLoop(size_t worker_id) {
  // The debugger (and with it the SQL session + evaluator) is built on the
  // worker thread and lives for the pool's lifetime, plugged into the
  // shared verdict tier instead of a private session cache.
  DebuggerOptions debugger_options = options_.debugger;
  debugger_options.shared_verdict_cache = &shared_cache_;
  debugger_options.deadline_millis = 0;  // Armed per task below.
  NonAnswerDebugger debugger(db_, lattice_, index_, debugger_options);
  // Backoff jitter source: seeded per worker so a failing run replays the
  // exact same retry schedule (chaos tests depend on this).
  Rng backoff_rng(options_.retry_seed + worker_id * 0x9E3779B97F4A7C15ull);

  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    QueryResult& slot = (*batch_results_)[task.index];
    slot.queue_millis = task.enqueued.ElapsedMillis();
    slot.worker = worker_id;
    Timer exec;
    debugger.set_deadline_millis(task.deadline_millis);
    StatusOr<DebugReport> report_or =
        debugger.Debug((*batch_queries_)[task.index]);
    // Retry transient failures (IsRetryable: kUnavailable /
    // kResourceExhausted) with exponential backoff + jitter, never past the
    // query's deadline. Deadline expiry is not retried: Debug() returns an
    // OK truncated report for it, and a remaining budget too small to back
    // off into is budget spent, so the last typed error stands.
    while (!report_or.ok() && report_or.status().IsRetryable() &&
           slot.retries < options_.max_retries) {
      const double exp = static_cast<double>(
          uint64_t{1} << std::min<size_t>(slot.retries, 20));
      double backoff_millis =
          std::min(options_.retry_backoff_base_millis * exp,
                   options_.retry_backoff_max_millis) *
          (0.5 + 0.5 * backoff_rng.NextDouble());
      if (backoff_millis < 0) backoff_millis = 0;
      double remaining = 0;  // 0 = unbounded.
      if (task.deadline_millis > 0) {
        remaining = task.deadline_millis - exec.ElapsedMillis();
        if (remaining <= backoff_millis) break;
        remaining -= backoff_millis;
      }
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff_millis));
      ++slot.retries;
      debugger.set_deadline_millis(remaining);
      report_or = debugger.Debug((*batch_queries_)[task.index]);
    }
    slot.exec_millis = exec.ElapsedMillis();
    if (report_or.ok()) {
      slot.report = std::move(report_or).value();
    } else {
      slot.status = report_or.status();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++completed_;
      if (completed_ == batch_results_->size()) done_cv_.notify_all();
    }
  }
}

}  // namespace kwsdbg
