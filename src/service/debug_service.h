// DebugService: a fixed-size worker pool serving batches of keyword-query
// debugging requests over one shared immutable Lattice + Database. Each
// worker owns a private NonAnswerDebugger (its own SQL session and
// evaluator), but all workers share one process-wide verdict cache, so a
// sub-network classified by any query is free for every later query on any
// worker — the cross-query tier of the paper's reuse idea (Sec. 2.5.2),
// promoted from session scope to process scope.
//
// Per-query deadlines degrade gracefully: a query that exhausts its budget
// returns a partial report marked `truncated` containing only ground-truth
// verdicts (see common/cancellation.h), never a crash or a wrong verdict.
#ifndef KWSDBG_SERVICE_DEBUG_SERVICE_H_
#define KWSDBG_SERVICE_DEBUG_SERVICE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/timer.h"
#include "debugger/non_answer_debugger.h"
#include "traversal/verdict_cache.h"

namespace kwsdbg {

/// Service configuration.
struct ServiceOptions {
  /// Worker pool size (threads); each worker runs whole queries, so this is
  /// the inter-query parallelism. Intra-query parallelism is configured
  /// separately via `debugger.parallel` and multiplies with this.
  size_t num_workers = 4;
  /// Default per-query wall-clock budget in milliseconds (0 = unbounded);
  /// RunBatch overloads can override it per batch.
  double default_deadline_millis = 0;
  /// Capacity of the process-wide shared verdict cache.
  size_t shared_cache_capacity = VerdictCache::kDefaultCapacity;
  /// Admission control: maximum queued (not yet picked up) tasks; queries
  /// past the bound are shed at enqueue time with kResourceExhausted
  /// instead of growing the queue without limit. 0 = unbounded (default).
  size_t max_queue_depth = 0;
  /// Retry budget for queries failing with a retryable status (IsRetryable:
  /// kUnavailable / kResourceExhausted — transient dependency outages, not
  /// deadline expiry or malformed input). 0 disables retries, in which case
  /// the first transient failure surfaces as the query's typed status.
  size_t max_retries = 2;
  /// Exponential backoff between retry attempts: sleep
  /// min(base * 2^attempt, max) * jitter, jitter uniform in [0.5, 1.0),
  /// drawn from a per-worker Rng seeded from `retry_seed` (deterministic
  /// schedules per worker). Backoff never sleeps past the query deadline.
  double retry_backoff_base_millis = 1.0;
  double retry_backoff_max_millis = 50.0;
  uint64_t retry_seed = 0x5EEDu;
  /// Template for each worker's debugger. `shared_verdict_cache` and
  /// `deadline_millis` are overwritten by the service.
  DebuggerOptions debugger;
};

/// Outcome of one query in a batch.
struct QueryResult {
  std::string keyword_query;
  /// Non-OK when the pipeline failed outright (deadline expiry is NOT a
  /// failure — it yields an OK status and `report.truncated`).
  Status status = Status::OK();
  DebugReport report;        ///< Valid iff `status.ok()`.
  double queue_millis = 0;   ///< Enqueue -> worker pickup.
  double exec_millis = 0;    ///< Worker pickup -> report ready.
  size_t worker = 0;         ///< Which worker served it.
  size_t retries = 0;        ///< Retry attempts consumed (0 = first try won).
  bool shed = false;         ///< Rejected by admission control (never ran).
};

/// Aggregated batch statistics (the service-level analogue of
/// TraversalStats, exported via ServiceStatsToJson).
struct ServiceStats {
  size_t queries = 0;
  size_t truncated = 0;      ///< Queries whose report is partial.
  size_t failed = 0;         ///< Queries with a non-OK status.
  size_t retries = 0;        ///< Retry attempts across the batch.
  size_t shed = 0;           ///< Queries rejected by admission control
                             ///< (kResourceExhausted; included in failed).
  /// Degraded-mode executor fallbacks summed over the batch (nonzero only
  /// under fault injection; see common/fault_injector.h).
  size_t index_fallbacks = 0;
  size_t semijoin_fallbacks = 0;
  /// Probe-engine-v3 traffic summed over the batch (zero when the flat
  /// engine is disabled in the debugger's executor options).
  size_t flat_probes = 0;
  size_t prefetch_batches = 0;
  double wall_millis = 0;    ///< Batch submit -> last query done.
  double queries_per_second = 0;
  /// Latency distribution over per-query exec_millis.
  double p50_millis = 0;
  double p95_millis = 0;
  double p99_millis = 0;
  double max_millis = 0;
  double mean_queue_millis = 0;  ///< Average time spent waiting for a worker.
  /// SQL actually issued vs. verdicts answered from cache, summed over the
  /// batch's traversal stats (hits here include intra-query reuse).
  size_t sql_queries = 0;
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  /// Snapshot of the shared tier after the batch (its hits/misses count
  /// lookups from every worker since service construction).
  VerdictCacheStats shared_cache;

  /// One-paragraph human-readable rendering for bench/CLI output.
  std::string ToString() const;
};

/// A completed batch: per-query results in input order plus the aggregate.
struct BatchResult {
  /// Batch-level status: kInvalidArgument when RunBatch was called while
  /// another batch was already in flight (the call is rejected wholesale —
  /// no query runs); OK otherwise, even if individual queries failed.
  Status status = Status::OK();
  std::vector<QueryResult> results;
  ServiceStats stats;
};

/// Thread pool + shared cache over one immutable database/lattice pair.
/// RunBatch is synchronous; one batch runs at a time. A concurrent RunBatch
/// call is detected and rejected with a kInvalidArgument batch status
/// (previously undefined behavior — silent result corruption). The
/// referenced db/lattice/index must outlive the service and stay unmodified
/// while a batch is running — mutate + BumpEpoch() only between batches.
class DebugService {
 public:
  DebugService(const Database* db, const Lattice* lattice,
               const InvertedIndex* index, ServiceOptions options = {});
  ~DebugService();

  DebugService(const DebugService&) = delete;
  DebugService& operator=(const DebugService&) = delete;

  /// Runs every query to completion on the pool and returns results in
  /// input order, using the configured default deadline.
  BatchResult RunBatch(const std::vector<std::string>& queries);

  /// Same, with an explicit per-query deadline for this batch (0 = none).
  BatchResult RunBatch(const std::vector<std::string>& queries,
                       double deadline_millis);

  /// The process-wide verdict tier every worker consults. Exposed so tests
  /// can inspect hit rates or Clear() after a database mutation epoch.
  VerdictCache* shared_cache() { return &shared_cache_; }

  const ServiceOptions& options() const { return options_; }

 private:
  struct Task {
    size_t index = 0;                 ///< Into the batch's query vector.
    double deadline_millis = 0;
    Timer enqueued;                   ///< Started at enqueue time.
  };

  void WorkerLoop(size_t worker_id);

  const Database* db_;
  const Lattice* lattice_;
  const InvertedIndex* index_;
  ServiceOptions options_;
  VerdictCache shared_cache_;

  std::mutex mu_;
  std::condition_variable work_cv_;   ///< Signals queued tasks / shutdown.
  std::condition_variable done_cv_;   ///< Signals batch completion.
  std::deque<Task> queue_;
  const std::vector<std::string>* batch_queries_ = nullptr;  // guarded by mu_
  std::vector<QueryResult>* batch_results_ = nullptr;        // guarded by mu_
  size_t completed_ = 0;                                     // guarded by mu_
  bool stop_ = false;                                        // guarded by mu_
  bool batch_in_flight_ = false;                             // guarded by mu_
  std::vector<std::thread> workers_;
};

}  // namespace kwsdbg

#endif  // KWSDBG_SERVICE_DEBUG_SERVICE_H_
