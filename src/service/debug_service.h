// DebugService: a sharded worker pool serving keyword-query debugging
// requests over one shared immutable Lattice + Database. The engine is
// partitioned DRAMHiT-style: each shard owns a bounded task queue (batched
// handoff in and out), a verdict-cache partition, and a flat-index tier
// shared by the shard's workers — no shared lock sits on the hot path.
// Queries route to shards by canonical-keyword-label hash, so every verdict
// key a query can touch — (canonical label, binding signature, epoch) pairs
// are a pure function of its keyword multiset — lives on the shard (core)
// that computes it. Idle workers steal the oldest half of the deepest other
// queue, so a skewed routing distribution cannot idle cores; stolen queries
// still read/write their home shard's caches.
//
// Two entry points: synchronous RunBatch (results in input order plus the
// batch aggregate) and asynchronous Submit (open-loop load generation —
// callers inject at their own arrival rate and collect completions from a
// callback; see bench/service_scale_workload).
//
// Per-query deadlines degrade gracefully: a query that exhausts its budget
// returns a partial report marked `truncated` containing only ground-truth
// verdicts (see common/cancellation.h), never a crash or a wrong verdict.
#ifndef KWSDBG_SERVICE_DEBUG_SERVICE_H_
#define KWSDBG_SERVICE_DEBUG_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/timer.h"
#include "debugger/non_answer_debugger.h"
#include "service/live_mutator.h"
#include "sql/flat_row_index.h"
#include "storage/checkpoint.h"
#include "storage/relation_fences.h"
#include "storage/wal.h"
#include "traversal/verdict_cache.h"

namespace kwsdbg {

/// Durability configuration (see storage/wal.h, storage/checkpoint.h).
/// With a non-empty `dir`, a mutable-constructed service recovers on
/// construction (validates the text index against the checkpoint
/// fingerprint, replays the WAL suffix through the mutation engine, chops
/// any torn tail) and every acknowledged ApplyMutation is WAL-logged.
struct DurabilityOptions {
  std::string dir;  ///< WAL + checkpoint directory; "" = durability off.
  WalOptions wal;   ///< Fsync policy + group-commit window.
};

/// Service configuration.
struct ServiceOptions {
  /// Worker pool size (threads); each worker runs whole queries, so this is
  /// the inter-query parallelism. Intra-query parallelism is configured
  /// separately via `debugger.parallel` and multiplies with this.
  size_t num_workers = 4;
  /// Engine shards. Workers are assigned round-robin (worker i serves shard
  /// i % num_shards); each shard owns a task queue, a verdict-cache
  /// partition, and a flat-index tier shared by its workers. 1 (default)
  /// reproduces the pre-sharding single-queue, single-cache service; 0
  /// means one shard per worker. Values above num_workers are clamped to
  /// num_workers (a shard with no worker would drain only via stealing).
  size_t num_shards = 1;
  /// Cross-shard work stealing: a worker whose own queue is empty takes the
  /// oldest half of the deepest other queue (capped at handoff_batch), so
  /// skewed workloads cannot idle cores while one shard backs up.
  bool work_stealing = true;
  /// Batched handoff: the most tasks a worker drains from a queue (its own
  /// or a steal victim's) per lock acquisition.
  size_t handoff_batch = 8;
  /// Default per-query wall-clock budget in milliseconds (0 = unbounded);
  /// RunBatch overloads can override it per batch.
  double default_deadline_millis = 0;
  /// Total verdict-cache entry budget, split evenly across shards.
  size_t shared_cache_capacity = VerdictCache::kDefaultCapacity;
  /// Admission control: maximum queued (not yet picked up) tasks per shard;
  /// queries routed to a full shard are shed at enqueue time with
  /// kResourceExhausted instead of growing the queue without limit.
  /// 0 = unbounded (default). With one shard this bounds the whole queue,
  /// matching the pre-sharding behavior.
  size_t max_queue_depth = 0;
  /// Retry budget for queries failing with a retryable status (IsRetryable:
  /// kUnavailable / kResourceExhausted — transient dependency outages, not
  /// deadline expiry or malformed input). 0 disables retries, in which case
  /// the first transient failure surfaces as the query's typed status.
  size_t max_retries = 2;
  /// Exponential backoff between retry attempts: sleep
  /// min(base * 2^attempt, max) * jitter, jitter uniform in [0.5, 1.0),
  /// drawn from a per-worker Rng seeded from `retry_seed` (deterministic
  /// schedules per worker). Backoff never sleeps past the query deadline.
  double retry_backoff_base_millis = 1.0;
  double retry_backoff_max_millis = 50.0;
  uint64_t retry_seed = 0x5EEDu;
  /// Durability: WAL + checkpoint dir and fsync policy. Ignored (with a
  /// non-OK durability_status()) for const-constructed services — there is
  /// no write path to log.
  DurabilityOptions durability;
  /// Template for each worker's debugger. `shared_verdict_cache`,
  /// `executor.shared_flat_indexes`, and `deadline_millis` are overwritten
  /// by the service (wired to the worker's shard).
  DebuggerOptions debugger;
};

/// Outcome of one query.
struct QueryResult {
  std::string keyword_query;
  /// Non-OK when the pipeline failed outright (deadline expiry is NOT a
  /// failure — it yields an OK status and `report.truncated`).
  Status status = Status::OK();
  DebugReport report;        ///< Valid iff `status.ok()`.
  double queue_millis = 0;   ///< Enqueue -> worker pickup.
  double exec_millis = 0;    ///< Worker pickup -> report ready.
  size_t worker = 0;         ///< Which worker served it.
  size_t shard = 0;          ///< Home shard (canonical-label routing).
  bool stolen = false;       ///< Served by another shard's worker.
  size_t retries = 0;        ///< Retry attempts consumed (0 = first try won).
  bool shed = false;         ///< Rejected by admission control (never ran).
};

/// Per-shard telemetry (ServiceStats::shards, service_json "shards").
struct ShardStats {
  size_t workers = 0;          ///< Workers homed on this shard.
  size_t routed = 0;           ///< Queries whose label hash routed here.
  size_t executed = 0;         ///< Queries run by this shard's workers.
  size_t steals = 0;           ///< Queries this shard's workers stole.
  size_t stolen_away = 0;      ///< Home queries run by another shard.
  size_t shed = 0;             ///< Admission rejects at this shard's queue.
  size_t max_queue_depth = 0;  ///< Enqueue-time high-water mark.
  /// Verdict hits against this shard's cache partition, split by whether
  /// the probing worker was home (local) or stealing (remote).
  size_t local_cache_hits = 0;
  size_t remote_cache_hits = 0;
  VerdictCacheStats cache;     ///< This shard's verdict partition.
  /// Lifetime p_a observations held by this shard's adaptive tier (zero
  /// when the service runs without adaptive mode).
  size_t pa_observations = 0;
};

/// Aggregated batch statistics (the service-level analogue of
/// TraversalStats, exported via ServiceStatsToJson).
struct ServiceStats {
  size_t queries = 0;
  size_t truncated = 0;      ///< Queries whose report is partial.
  size_t failed = 0;         ///< Queries with a non-OK status.
  size_t retries = 0;        ///< Retry attempts across the batch.
  size_t shed = 0;           ///< Queries rejected by admission control
                             ///< (kResourceExhausted; included in failed).
  size_t steals = 0;         ///< Queries served by a non-home shard.
  /// Degraded-mode executor fallbacks summed over the batch (nonzero only
  /// under fault injection; see common/fault_injector.h).
  size_t index_fallbacks = 0;
  size_t semijoin_fallbacks = 0;
  /// Probe-engine-v3 traffic summed over the batch (zero when the flat
  /// engine is disabled in the debugger's executor options).
  size_t flat_probes = 0;
  size_t prefetch_batches = 0;
  /// Out-of-core I/O summed over the batch (zero when every table and the
  /// index are resident, the usual service configuration).
  size_t page_hits = 0;
  size_t page_reads = 0;
  size_t page_evictions = 0;
  size_t posting_reads = 0;
  /// Adaptive-traversal traffic summed over the batch (zero when the
  /// debugger template runs a static strategy).
  size_t planner_decisions = 0;
  size_t planner_explored = 0;
  size_t pa_observations = 0;
  double wall_millis = 0;    ///< Batch submit -> last query done.
  double queries_per_second = 0;
  /// Latency distribution over exec_millis of queries that actually ran
  /// (shed queries never ran and are excluded — see ComputeServiceStats).
  double p50_millis = 0;
  double p95_millis = 0;
  double p99_millis = 0;
  double p999_millis = 0;
  double max_millis = 0;
  double mean_queue_millis = 0;  ///< Average worker wait (ran queries only).
  /// SQL actually issued vs. verdicts answered from cache, summed over the
  /// batch's traversal stats (hits here include intra-query reuse).
  size_t sql_queries = 0;
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  /// Live-write counters since service construction (all zero for a service
  /// built over a const database; see LiveMutator).
  size_t mutations_applied = 0;
  size_t partial_evictions = 0;  ///< Verdicts evicted by relation masks.
  size_t index_patches = 0;      ///< Posting-list + flat-arena in-place
                                 ///< patches.
  /// Durability counters since service construction (all zero without a
  /// WAL dir; see DurabilityOptions).
  size_t wal_records = 0;        ///< WAL records appended.
  size_t wal_fsyncs = 0;
  size_t checkpoints = 0;        ///< Checkpoints written (Checkpoint/Drain).
  size_t wal_replayed = 0;       ///< Records replayed at construction.
  size_t recovery_torn_bytes = 0;  ///< Torn-tail bytes dropped at recovery.
  /// Aggregate of every shard's verdict partition after the batch (hits /
  /// misses count lookups from every worker since service construction).
  VerdictCacheStats shared_cache;
  size_t num_shards = 1;
  /// Per-shard counters for this batch (reset at batch start); the cache
  /// field inside is the partition's lifetime counters.
  std::vector<ShardStats> shards;

  /// One-paragraph human-readable rendering for bench/CLI output.
  std::string ToString() const;
};

/// Builds the aggregate over per-query results. Two correctness rules live
/// here (regression-tested in tests/service/service_stats_test.cc):
///   * Shed queries never ran — their zero exec/queue times are admission
///     outcomes, not latencies, and are excluded from the percentile sample
///     and the mean-queue-wait denominator (folding them in dragged
///     p50/p95 toward zero exactly when the service was overloaded).
///   * queries_per_second divides by a nonzero-clamped wall time, so tiny
///     batches that complete inside the timer's resolution report a finite
///     QPS instead of a vacuous 0 that slips through >= gates.
/// Shard-level fields (num_shards, shards, shared_cache) are filled by the
/// service, not here. Also used by the open-loop harness for per-sweep
/// windows.
ServiceStats ComputeServiceStats(const std::vector<QueryResult>& results,
                                 double wall_millis);

/// A completed batch: per-query results in input order plus the aggregate.
struct BatchResult {
  /// Batch-level status: kInvalidArgument when RunBatch was called while
  /// another batch was already in flight (the call is rejected wholesale —
  /// no query runs); OK otherwise, even if individual queries failed.
  Status status = Status::OK();
  std::vector<QueryResult> results;
  ServiceStats stats;
};

/// Sharded thread pool over one shared database/lattice pair. RunBatch is
/// synchronous; one batch runs at a time (a concurrent RunBatch call is
/// rejected with a kInvalidArgument batch status). Submit is asynchronous
/// and may be called from any thread; pair it with WaitIdle. The referenced
/// db/lattice/index must outlive the service.
///
/// Write contract: constructed over const pointers, the database and index
/// must stay unmodified while queries are in flight (legacy single-writer
/// deployments: mutate + BumpEpoch() only while quiescent). Constructed
/// over mutable pointers, ApplyMutation() is the thread-safe write path —
/// it fences in-flight queries per relation (storage/relation_fences.h), so
/// a write to one table waits only for the queries that bind it, patches
/// the text index and every shard's flat-index tier in place, and evicts
/// only the verdicts whose relation set the write intersects. Quiescence is
/// no longer required.
class DebugService {
 public:
  DebugService(const Database* db, const Lattice* lattice,
               const InvertedIndex* index, ServiceOptions options = {});

  /// Live-write construction: same service, plus ApplyMutation() backed by
  /// a LiveMutator over the (mutable) database and index. `index` may be
  /// null when the service runs without a text index.
  DebugService(Database* db, const Lattice* lattice, InvertedIndex* index,
               ServiceOptions options = {});

  ~DebugService();

  DebugService(const DebugService&) = delete;
  DebugService& operator=(const DebugService&) = delete;

  /// Runs every query to completion on the pool and returns results in
  /// input order, using the configured default deadline.
  BatchResult RunBatch(const std::vector<std::string>& queries);

  /// Same, with an explicit per-query deadline for this batch (0 = none).
  BatchResult RunBatch(const std::vector<std::string>& queries,
                       double deadline_millis);

  /// Asynchronous single-query submission for open-loop load generation:
  /// routes to the home shard and returns immediately. On acceptance,
  /// `done` is invoked exactly once, on the executing worker's thread, with
  /// the completed result. When the home shard's queue is at
  /// max_queue_depth the query is shed: kResourceExhausted is returned and
  /// `done` is never called. Callers must WaitIdle() (or otherwise observe
  /// every callback) before destroying the service.
  Status Submit(std::string query, double deadline_millis,
                std::function<void(QueryResult)> done);

  /// Blocks until every accepted Submit has completed. (RunBatch callers
  /// don't need this — RunBatch waits for its own batch.)
  void WaitIdle();

  /// Home shard for `query` under `num_shards`: a hash of the canonical
  /// keyword label (sorted, deduplicated tokens). Queries sharing a keyword
  /// multiset share every (canonical label, binding signature) verdict key
  /// they can generate, so label routing pins a sub-network's verdicts and
  /// the shard's flat indexes to the core that computes them. Exposed for
  /// tests and the load harness.
  static size_t HomeShard(const std::string& query, size_t num_shards);

  size_t num_shards() const { return shards_.size(); }

  /// Shard `i`'s verdict partition (tests: inspect hit rates, Clear()).
  VerdictCache* shard_cache(size_t shard) { return &shards_[shard]->cache; }

  /// Back-compat accessor: shard 0's partition — with the default single
  /// shard, the process-wide tier every worker consults.
  VerdictCache* shared_cache() { return shard_cache(0); }

  /// Shard `i`'s adaptive tier (p_a model + planner), or null when the
  /// debugger template has `adaptive` off. Shared by the shard's workers
  /// the same way they share the verdict partition and flat-index tier.
  AdaptiveState* shard_adaptive(size_t shard) {
    return shards_[shard]->adaptive.get();
  }

  /// Point-in-time per-shard counters accumulated since construction or
  /// the last ResetShardCounters()/RunBatch (RunBatch resets on entry so
  /// its aggregate reports per-batch deltas).
  std::vector<ShardStats> ShardSnapshot() const;

  /// Zeroes the per-shard routed/executed/steal/shed/depth counters
  /// (verdict-partition cache counters are lifetime and unaffected).
  void ResetShardCounters();

  /// Drops every shard's verdict partition and flat-index tier (e.g. after
  /// a database mutation epoch, to reclaim memory from dead-epoch entries).
  void ClearCaches();

  /// Applies one live write (insert/delete/update) through the mutation
  /// engine: safe to call while queries are in flight — the write fences
  /// only the mutated relation. Serialized against concurrent ApplyMutation
  /// calls by the relation fences themselves. Returns kFailedPrecondition
  /// when the service was constructed over a const database.
  Status ApplyMutation(const Mutation& m);

  /// The mutation engine, or null for a const-constructed service (tests
  /// inspect MutationStats through it).
  LiveMutator* mutator() { return mutator_.get(); }

  /// Health of the durability subsystem. OK when durability is disabled or
  /// recovery succeeded; kDataLoss when the checkpoint/WAL failed checksum
  /// or the index fingerprint did not match (the service still serves
  /// reads, but ApplyMutation is rejected so divergence cannot compound).
  Status durability_status() const { return durability_status_; }

  /// Crash-consistent snapshot of the database + index fingerprint into the
  /// durability dir, then truncates the WAL at the covered seq. Excludes
  /// writers for the duration by taking every relation fence shared (reads
  /// proceed). kFailedPrecondition when durability is off.
  Status Checkpoint();

  /// Graceful shutdown: stop admitting work (Submit/RunBatch/ApplyMutation
  /// return kUnavailable), wait for in-flight queries to finish, fsync the
  /// WAL, and checkpoint. After an OK Drain, recovery replays zero records.
  Status Drain();

  /// The mutation log, or null when durability is off (the crash harness
  /// reads durable_seq() to decide which acks the zero-loss gate covers).
  WalWriter* wal() { return wal_.get(); }

  const ServiceOptions& options() const { return options_; }

 private:
  struct Task {
    std::string query;
    double deadline_millis = 0;
    size_t home_shard = 0;
    Timer enqueued;  ///< Started at enqueue time.
    /// Completion sink: writes a batch slot or runs a Submit callback.
    std::function<void(QueryResult&&)> done;
  };

  /// One engine partition: queue + verdict cache + flat-index tier. The
  /// queue mutex is per-shard, so enqueue/dequeue on different shards never
  /// contend; counters are relaxed atomics read by ShardSnapshot.
  struct Shard {
    explicit Shard(size_t cache_capacity) : cache(cache_capacity) {}
    mutable std::mutex mu;
    std::deque<Task> queue;       // guarded by mu
    size_t max_depth = 0;         // guarded by mu
    std::atomic<size_t> queued{0};  ///< queue.size() mirror for lock-free
                                    ///< victim selection and idle checks.
    VerdictCache cache;
    SharedFlatRowIndexManager flat_indexes;
    /// Shard-shared adaptive tier; null when adaptive mode is off.
    std::unique_ptr<AdaptiveState> adaptive;
    std::atomic<size_t> workers{0};
    std::atomic<size_t> routed{0};
    std::atomic<size_t> executed{0};
    std::atomic<size_t> steals{0};
    std::atomic<size_t> stolen_away{0};
    std::atomic<size_t> shed{0};
    std::atomic<size_t> local_cache_hits{0};
    std::atomic<size_t> remote_cache_hits{0};
  };

  void WorkerLoop(size_t worker_id);
  void ExecuteTask(NonAnswerDebugger* debugger, Rng* backoff_rng,
                   size_t worker_id, size_t my_shard, Task task);
  /// Pushes one task onto its home shard's queue; false = shed (queue at
  /// max_queue_depth). Callers notify workers after a successful push.
  bool Enqueue(Task task);
  /// Batched handoff (enqueue side): pushes a whole routed group under one
  /// shard-lock acquisition. Tasks that do not fit under max_queue_depth
  /// move to `rejected` (admission order = batch order). Returns the number
  /// accepted; callers notify workers afterwards.
  size_t EnqueueGroup(size_t shard, std::vector<Task>* tasks,
                      std::vector<Task>* rejected);
  /// Drains up to handoff_batch tasks from the front of `shard`'s queue.
  void PopBatch(size_t shard, std::vector<Task>* out);
  /// Steals the oldest ceil(depth/2) tasks (capped at handoff_batch) from
  /// the deepest non-`thief` queue. Oldest-first keeps stealing a tail-
  /// latency rescue, not a LIFO cache optimization.
  void StealBatch(size_t thief, std::vector<Task>* out);
  /// True when `shard`'s worker can find work without sleeping.
  bool HasVisibleWork(size_t shard) const;
  void NotifyWorkers(size_t tasks);

  /// Shared constructor body; `mutable_db` non-null enables the write path.
  DebugService(const Database* db, const Lattice* lattice,
               const InvertedIndex* index, ServiceOptions options,
               Database* mutable_db, InvertedIndex* mutable_index);

  /// Recovery-on-construct: validates the index fingerprint against the
  /// checkpoint, replays the WAL suffix through the mutation engine, and
  /// attaches the writer. Runs before worker threads start; failures land
  /// in durability_status_ (constructors cannot return a Status).
  void SetupDurability(Database* mutable_db);

  const Database* db_;
  const Lattice* lattice_;
  const InvertedIndex* index_;
  ServiceOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Present iff constructed mutable: per-relation fences shared by every
  /// worker's evaluator and the mutation engine.
  std::unique_ptr<RelationFences> fences_;
  std::unique_ptr<LiveMutator> mutator_;

  /// Durability state (see DurabilityOptions). wal_ is created by
  /// SetupDurability before workers start and never reassigned, so workers
  /// may read it without locking; checkpoint_mu_ serializes Checkpoint and
  /// Drain against each other.
  std::unique_ptr<WalWriter> wal_;
  Status durability_status_ = Status::OK();
  std::mutex checkpoint_mu_;
  std::atomic<bool> draining_{false};
  std::atomic<size_t> checkpoints_{0};
  size_t wal_replayed_ = 0;        ///< Set once during SetupDurability.
  size_t recovery_torn_bytes_ = 0;  ///< Set once during SetupDurability.

  /// Total queued-but-not-picked-up tasks across shards (stealing workers
  /// wait on this; per-shard `queued` serves the non-stealing predicate).
  std::atomic<size_t> pending_{0};
  std::mutex idle_mu_;                ///< Guards stop_; pairs with idle_cv_.
  std::condition_variable idle_cv_;   ///< Wakes sleeping workers.
  bool stop_ = false;                 // guarded by idle_mu_

  std::mutex mu_;                     ///< Batch/Submit completion tracking.
  std::condition_variable done_cv_;
  size_t completed_ = 0;              // guarded by mu_
  bool batch_in_flight_ = false;      // guarded by mu_
  std::atomic<size_t> outstanding_submits_{0};

  std::vector<std::thread> workers_;
};

}  // namespace kwsdbg

#endif  // KWSDBG_SERVICE_DEBUG_SERVICE_H_
