// Live-data write path: one mutation = one table change + incremental
// maintenance of every derived structure, applied under the mutated
// relation's write fence (storage/relation_fences.h) so it interleaves
// safely with in-flight queries over other relations.
//
// Per Apply():
//   1. the table row is appended / tombstoned / updated in place;
//   2. the shared InvertedIndex posting lists, selectivity profile, and
//      table masks are patched (never rebuilt) — under the exclusive index
//      gate, since a term's posting vector spans tables;
//   3. every registered shard flat-index tier patches its cached arenas in
//      place and restamps them to the table's new data epoch, so worker
//      probes stay warm across the write;
//   4. every registered verdict-cache partition evicts exactly the verdicts
//      whose relation mask includes the mutated table (partial
//      invalidation — verdicts over disjoint relations survive);
//   5. once tombstones pass `auto_compact_fraction`, the table is compacted
//      and the posting lists remapped to the new row ids.
//
// The global Database::epoch() is never bumped: only the mutated table's
// data epoch moves, which is what keeps unrelated caches warm.
#ifndef KWSDBG_SERVICE_LIVE_MUTATOR_H_
#define KWSDBG_SERVICE_LIVE_MUTATOR_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "sql/flat_row_index.h"
#include "storage/database.h"
#include "storage/relation_fences.h"
#include "text/inverted_index.h"
#include "traversal/verdict_cache.h"

namespace kwsdbg {

/// One write. `row` names the payload for inserts; `row_id`/`column`/`value`
/// address updates; deletes need only `row_id`.
struct Mutation {
  enum class Kind { kInsert, kDelete, kUpdate };
  Kind kind = Kind::kInsert;
  std::string table;
  Tuple row;          ///< kInsert: the new row (schema-checked).
  size_t row_id = 0;  ///< kDelete / kUpdate: target row id.
  size_t column = 0;  ///< kUpdate: target column.
  Value value;        ///< kUpdate: the new cell value (type-checked).

  static Mutation Insert(std::string table, Tuple row) {
    Mutation m;
    m.kind = Kind::kInsert;
    m.table = std::move(table);
    m.row = std::move(row);
    return m;
  }
  static Mutation Delete(std::string table, size_t row_id) {
    Mutation m;
    m.kind = Kind::kDelete;
    m.table = std::move(table);
    m.row_id = row_id;
    return m;
  }
  static Mutation Update(std::string table, size_t row_id, size_t column,
                         Value value) {
    Mutation m;
    m.kind = Kind::kUpdate;
    m.table = std::move(table);
    m.row_id = row_id;
    m.column = column;
    m.value = std::move(value);
    return m;
  }
};

/// Write-path counters (thread-safe; exported through ServiceStats and
/// service JSON alongside the read-side counters).
struct MutationStats {
  std::atomic<uint64_t> mutations_applied{0};  ///< Successful Apply() calls.
  std::atomic<uint64_t> partial_evictions{0};  ///< Verdicts evicted by
                                               ///< relation-scoped masks.
  std::atomic<uint64_t> index_patches{0};      ///< Posting-list + flat-arena
                                               ///< patches applied in place.
  std::atomic<uint64_t> compactions{0};        ///< Tombstone compactions.
};

/// Mutator configuration.
struct MutatorOptions {
  /// Compact a table once its tombstone fraction exceeds this (0 disables).
  /// Compaction is skipped while the inverted index is spilled — on-disk
  /// posting lists cannot be remapped in place.
  double auto_compact_fraction = 0.25;
};

/// The single-writer mutation engine. Thread-safe: Apply() serializes
/// against concurrent Apply() calls and against in-flight queries through
/// the relation fences (pass the same fences into EvalOptions::fences).
/// Registered caches/tiers must outlive the mutator.
class LiveMutator {
 public:
  LiveMutator(Database* db, InvertedIndex* index, RelationFences* fences,
              MutatorOptions options = {})
      : db_(db), index_(index), fences_(fences), options_(options) {}

  /// Partial-invalidation sinks: every registered verdict cache takes an
  /// EvictRelations() per write; every flat tier is patched in place.
  void RegisterVerdictCache(VerdictCache* cache) { caches_.push_back(cache); }
  void RegisterFlatTier(SharedFlatRowIndexManager* tier) {
    tiers_.push_back(tier);
  }

  /// Applies one mutation atomically with respect to readers: either the
  /// table, the text index, and every flat tier reflect the write (and the
  /// affected verdicts are gone), or — on a validation failure or an
  /// injected `storage.mutation.apply` fault — nothing changed.
  Status Apply(const Mutation& m);

  const MutationStats& stats() const { return stats_; }
  RelationFences* fences() const { return fences_; }

 private:
  /// Patches the text index for one applied table change; counts patches.
  /// A failure here rolls the table change back before returning.
  Status PatchTextIndex(const Mutation& m, Table* t, uint32_t row,
                        const Value& old_value, size_t* patches);

  /// Compacts `t` when tombstones exceed the threshold (resident index
  /// only); remaps posting lists and drops the flat indexes over `t`.
  Status MaybeCompact(Table* t);

  Database* db_;
  InvertedIndex* index_;  ///< May be null (no text index to maintain).
  RelationFences* fences_;
  MutatorOptions options_;
  std::vector<VerdictCache*> caches_;
  std::vector<SharedFlatRowIndexManager*> tiers_;
  MutationStats stats_;
};

}  // namespace kwsdbg

#endif  // KWSDBG_SERVICE_LIVE_MUTATOR_H_
