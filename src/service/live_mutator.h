// Live-data write path: one mutation = one table change + incremental
// maintenance of every derived structure, applied under the mutated
// relation's write fence (storage/relation_fences.h) so it interleaves
// safely with in-flight queries over other relations.
//
// Per Apply():
//   1. the table row is appended / tombstoned / updated in place;
//   2. the shared InvertedIndex posting lists, selectivity profile, and
//      table masks are patched (never rebuilt) — under the exclusive index
//      gate, since a term's posting vector spans tables;
//   3. every registered shard flat-index tier patches its cached arenas in
//      place and restamps them to the table's new data epoch, so worker
//      probes stay warm across the write;
//   4. every registered verdict-cache partition evicts exactly the verdicts
//      whose relation mask includes the mutated table (partial
//      invalidation — verdicts over disjoint relations survive);
//   5. once tombstones pass `auto_compact_fraction`, the table is compacted
//      and the posting lists remapped to the new row ids.
//
// The global Database::epoch() is never bumped: only the mutated table's
// data epoch moves, which is what keeps unrelated caches warm.
#ifndef KWSDBG_SERVICE_LIVE_MUTATOR_H_
#define KWSDBG_SERVICE_LIVE_MUTATOR_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "sql/flat_row_index.h"
#include "storage/database.h"
#include "storage/relation_fences.h"
#include "storage/wal.h"  // Mutation lives with the WAL that logs it.
#include "text/inverted_index.h"
#include "traversal/verdict_cache.h"

namespace kwsdbg {

/// Write-path counters (thread-safe; exported through ServiceStats and
/// service JSON alongside the read-side counters).
struct MutationStats {
  std::atomic<uint64_t> mutations_applied{0};  ///< Successful Apply() calls.
  std::atomic<uint64_t> partial_evictions{0};  ///< Verdicts evicted by
                                               ///< relation-scoped masks.
  std::atomic<uint64_t> index_patches{0};      ///< Posting-list + flat-arena
                                               ///< patches applied in place.
  std::atomic<uint64_t> compactions{0};        ///< Tombstone compactions.
};

/// Mutator configuration.
struct MutatorOptions {
  /// Compact a table once its tombstone fraction exceeds this (0 disables).
  /// Compaction is skipped while the inverted index is spilled — on-disk
  /// posting lists cannot be remapped in place.
  double auto_compact_fraction = 0.25;
};

/// The single-writer mutation engine. Thread-safe: Apply() serializes
/// against concurrent Apply() calls and against in-flight queries through
/// the relation fences (pass the same fences into EvalOptions::fences).
/// Registered caches/tiers must outlive the mutator.
class LiveMutator {
 public:
  LiveMutator(Database* db, InvertedIndex* index, RelationFences* fences,
              MutatorOptions options = {})
      : db_(db), index_(index), fences_(fences), options_(options) {}

  /// Partial-invalidation sinks: every registered verdict cache takes an
  /// EvictRelations() per write; every flat tier is patched in place.
  void RegisterVerdictCache(VerdictCache* cache) { caches_.push_back(cache); }
  void RegisterFlatTier(SharedFlatRowIndexManager* tier) {
    tiers_.push_back(tier);
  }

  /// Durability hook: every Apply() that changes in-memory state appends a
  /// record to `wal` before acknowledging (write-ahead with respect to the
  /// caller, not the memory image — recovery replays the log over the last
  /// checkpoint). If an append fails *after* the in-memory apply, the
  /// mutator poisons itself: memory and log have diverged, and accepting
  /// more writes would make recovery silently wrong. The WAL must outlive
  /// the mutator.
  void AttachWal(WalWriter* wal) { wal_ = wal; }
  WalWriter* wal() const { return wal_; }
  bool wal_poisoned() const {
    return wal_poisoned_.load(std::memory_order_acquire);
  }

  /// Applies one mutation atomically with respect to readers: either the
  /// table, the text index, and every flat tier reflect the write (and the
  /// affected verdicts are gone), or — on a validation failure or an
  /// injected `storage.mutation.apply` fault — nothing changed.
  Status Apply(const Mutation& m);

  /// Replays one WAL record during recovery: mutations re-apply without
  /// re-logging, and compactions run exactly where the log says they ran
  /// (auto-compaction is suppressed so replay follows the original
  /// schedule record for record — Table::Compact is deterministic, so the
  /// row-id remap comes out identical).
  Status ApplyRecord(const WalRecord& record);

  const MutationStats& stats() const { return stats_; }
  RelationFences* fences() const { return fences_; }

 private:
  /// Shared body of Apply/ApplyRecord; `logging` gates both the WAL append
  /// and the auto-compaction trigger.
  Status ApplyInternal(const Mutation& m, bool logging);
  /// Patches the text index for one applied table change; counts patches.
  /// A failure here rolls the table change back before returning.
  Status PatchTextIndex(const Mutation& m, Table* t, uint32_t row,
                        const Value& old_value, size_t* patches);

  /// Compacts `t` when tombstones exceed the threshold (resident index
  /// only); remaps posting lists and drops the flat indexes over `t`.
  /// When `logging`, a kCompact record is appended so replay compacts at
  /// the same stream position.
  Status MaybeCompact(Table* t, bool logging);

  /// The compaction body shared by MaybeCompact and kCompact replay.
  Status CompactNow(Table* t);

  Database* db_;
  InvertedIndex* index_;  ///< May be null (no text index to maintain).
  RelationFences* fences_;
  MutatorOptions options_;
  std::vector<VerdictCache*> caches_;
  std::vector<SharedFlatRowIndexManager*> tiers_;
  MutationStats stats_;
  WalWriter* wal_ = nullptr;  ///< Null = run without durability.
  /// Atomic: set under one relation's write fence but read by concurrent
  /// Apply() calls on *other* relations, which hold different fences.
  std::atomic<bool> wal_poisoned_{false};
};

}  // namespace kwsdbg

#endif  // KWSDBG_SERVICE_LIVE_MUTATOR_H_
