#include "service/service_json.h"

#include <sstream>

#include "debugger/report_json.h"

namespace kwsdbg {

std::string ServiceStatsToJson(const ServiceStats& stats) {
  std::ostringstream out;
  out << "{\"queries\":" << stats.queries
      << ",\"truncated\":" << stats.truncated
      << ",\"failed\":" << stats.failed
      << ",\"retries\":" << stats.retries
      << ",\"shed\":" << stats.shed
      << ",\"index_fallbacks\":" << stats.index_fallbacks
      << ",\"semijoin_fallbacks\":" << stats.semijoin_fallbacks
      << ",\"flat_probes\":" << stats.flat_probes
      << ",\"prefetch_batches\":" << stats.prefetch_batches
      << ",\"page_hits\":" << stats.page_hits
      << ",\"page_reads\":" << stats.page_reads
      << ",\"page_evictions\":" << stats.page_evictions
      << ",\"posting_reads\":" << stats.posting_reads
      << ",\"wall_millis\":" << stats.wall_millis
      << ",\"queries_per_second\":" << stats.queries_per_second
      << ",\"p50_millis\":" << stats.p50_millis
      << ",\"p95_millis\":" << stats.p95_millis
      << ",\"p99_millis\":" << stats.p99_millis
      << ",\"p999_millis\":" << stats.p999_millis
      << ",\"max_millis\":" << stats.max_millis
      << ",\"mean_queue_millis\":" << stats.mean_queue_millis
      << ",\"sql_queries\":" << stats.sql_queries
      << ",\"cache_hits\":" << stats.cache_hits
      << ",\"cache_misses\":" << stats.cache_misses
      << ",\"mutations_applied\":" << stats.mutations_applied
      << ",\"partial_evictions\":" << stats.partial_evictions
      << ",\"index_patches\":" << stats.index_patches
      << ",\"wal_records\":" << stats.wal_records
      << ",\"wal_fsyncs\":" << stats.wal_fsyncs
      << ",\"checkpoints\":" << stats.checkpoints
      << ",\"wal_replayed\":" << stats.wal_replayed
      << ",\"recovery_torn_bytes\":" << stats.recovery_torn_bytes
      << ",\"planner_decisions\":" << stats.planner_decisions
      << ",\"planner_explored\":" << stats.planner_explored
      << ",\"pa_observations\":" << stats.pa_observations
      << ",\"steals\":" << stats.steals
      << ",\"num_shards\":" << stats.num_shards
      << ",\"shared_cache\":{\"entries\":" << stats.shared_cache.entries
      << ",\"hits\":" << stats.shared_cache.hits
      << ",\"misses\":" << stats.shared_cache.misses
      << ",\"insertions\":" << stats.shared_cache.insertions
      << ",\"evictions\":" << stats.shared_cache.evictions << "}"
      << ",\"shards\":[";
  for (size_t s = 0; s < stats.shards.size(); ++s) {
    const ShardStats& shard = stats.shards[s];
    if (s > 0) out << ',';
    out << "{\"workers\":" << shard.workers
        << ",\"routed\":" << shard.routed
        << ",\"executed\":" << shard.executed
        << ",\"steals\":" << shard.steals
        << ",\"stolen_away\":" << shard.stolen_away
        << ",\"shed\":" << shard.shed
        << ",\"max_queue_depth\":" << shard.max_queue_depth
        << ",\"local_cache_hits\":" << shard.local_cache_hits
        << ",\"remote_cache_hits\":" << shard.remote_cache_hits
        << ",\"pa_observations\":" << shard.pa_observations
        << ",\"cache\":{\"entries\":" << shard.cache.entries
        << ",\"hits\":" << shard.cache.hits
        << ",\"misses\":" << shard.cache.misses
        << ",\"insertions\":" << shard.cache.insertions
        << ",\"evictions\":" << shard.cache.evictions << "}}";
  }
  out << "]}";
  return out.str();
}

std::string BatchResultToJson(const BatchResult& batch, bool include_reports) {
  std::ostringstream out;
  out << "{\"ok\":" << (batch.status.ok() ? "true" : "false");
  if (!batch.status.ok()) {
    out << ",\"error\":\"" << JsonEscape(batch.status.ToString()) << '"';
  }
  out << ",\"stats\":" << ServiceStatsToJson(batch.stats) << ",\"queries\":[";
  for (size_t i = 0; i < batch.results.size(); ++i) {
    const QueryResult& r = batch.results[i];
    if (i > 0) out << ',';
    out << "{\"query\":\"" << JsonEscape(r.keyword_query) << '"'
        << ",\"ok\":" << (r.status.ok() ? "true" : "false");
    if (!r.status.ok()) {
      out << ",\"error\":\"" << JsonEscape(r.status.ToString()) << '"';
    }
    out << ",\"truncated\":"
        << (r.status.ok() && r.report.truncated ? "true" : "false")
        << ",\"worker\":" << r.worker
        << ",\"shard\":" << r.shard
        << ",\"stolen\":" << (r.stolen ? "true" : "false")
        << ",\"retries\":" << r.retries
        << ",\"shed\":" << (r.shed ? "true" : "false")
        << ",\"queue_millis\":" << r.queue_millis
        << ",\"exec_millis\":" << r.exec_millis;
    if (include_reports && r.status.ok()) {
      out << ",\"report\":" << DebugReportToJson(r.report);
    }
    out << '}';
  }
  out << "]}";
  return out.str();
}

}  // namespace kwsdbg
