// JSON export for service-level results, extending the debugger's report
// path (debugger/report_json.h) with batch/throughput telemetry so the same
// consumers that ingest per-query DebugReport JSON can ingest service runs.
#ifndef KWSDBG_SERVICE_SERVICE_JSON_H_
#define KWSDBG_SERVICE_SERVICE_JSON_H_

#include <string>

#include "service/debug_service.h"

namespace kwsdbg {

/// Aggregate stats as a JSON object: throughput, latency percentiles
/// (p50/p95/p99/p999), queue wait, cache hit tiers, and a `shards` array
/// with per-shard routing/steal/cache counters.
std::string ServiceStatsToJson(const ServiceStats& stats);

/// Whole batch as a JSON object: `stats` plus a `queries` array with one
/// entry per input query (status, worker, latencies, truncation). With
/// `include_reports`, each entry embeds the full DebugReportToJson payload.
std::string BatchResultToJson(const BatchResult& batch,
                              bool include_reports = false);

}  // namespace kwsdbg

#endif  // KWSDBG_SERVICE_SERVICE_JSON_H_
