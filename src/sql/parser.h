// Recursive-descent parser for the SQL subset (see ast.h for the grammar).
#ifndef KWSDBG_SQL_PARSER_H_
#define KWSDBG_SQL_PARSER_H_

#include <string>

#include "common/status.h"
#include "sql/ast.h"

namespace kwsdbg {

/// Parses one SELECT statement (optionally terminated by ';'). Errors carry
/// the byte offset of the offending token.
StatusOr<SelectStatement> ParseSql(const std::string& sql);

}  // namespace kwsdbg

#endif  // KWSDBG_SQL_PARSER_H_
