#include "sql/join_network.h"

#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"
#include "sql/like_matcher.h"

namespace kwsdbg {

StatusOr<std::string> JoinNetworkQuery::ToSql(const Database& db) const {
  KWSDBG_RETURN_NOT_OK(Validate(db));
  SelectStatement stmt;
  stmt.select_all = true;
  for (const QueryVertex& v : vertices) {
    stmt.from.push_back(FromItem{v.table, v.alias});
  }
  for (const QueryJoin& j : joins) {
    stmt.where.emplace_back(JoinPredicate{
        ColumnRef{vertices[j.left].alias, j.left_column},
        ColumnRef{vertices[j.right].alias, j.right_column}});
  }
  for (const QuerySelection& sel : selections) {
    stmt.where.emplace_back(ConstantPredicate{
        ColumnRef{vertices[sel.vertex].alias, sel.column},
        sel.value.is_string(), sel.value.ToString()});
  }
  for (const QueryLikeSelection& like : like_selections) {
    stmt.where.emplace_back(LikePredicate{
        ColumnRef{vertices[like.vertex].alias, like.column}, like.pattern});
  }
  for (const QueryVertex& v : vertices) {
    if (v.keyword.empty()) continue;
    const Table* table = db.FindTable(v.table);
    if (table == nullptr) {
      // ToSql may run on an un-Validated query (e.g. diagnostics rendering).
      return Status::NotFound("no table named '" + v.table + "'");
    }
    OrLikes ors;
    for (size_t col : table->schema().TextColumnIndices()) {
      ors.likes.push_back(
          LikePredicate{ColumnRef{v.alias, table->schema().column(col).name},
                        ContainsPattern(v.keyword)});
    }
    if (ors.likes.empty()) {
      return Status::FailedPrecondition(
          "keyword '" + v.keyword + "' bound to text-free table " + v.table);
    }
    stmt.where.emplace_back(std::move(ors));
  }
  return stmt.ToSql();
}

Status JoinNetworkQuery::Validate(const Database& db) const {
  if (vertices.empty()) {
    return Status::InvalidArgument("query has no relation instances");
  }
  std::unordered_set<std::string> aliases;
  for (const QueryVertex& v : vertices) {
    KWSDBG_ASSIGN_OR_RETURN(Table * table, db.GetTable(v.table));
    (void)table;
    if (v.alias.empty()) {
      return Status::InvalidArgument("empty alias for table " + v.table);
    }
    if (!aliases.insert(v.alias).second) {
      return Status::InvalidArgument("duplicate alias '" + v.alias + "'");
    }
  }
  for (const QueryJoin& j : joins) {
    if (j.left >= vertices.size() || j.right >= vertices.size()) {
      return Status::InvalidArgument("join references missing instance");
    }
    const Table* lt = db.FindTable(vertices[j.left].table);
    const Table* rt = db.FindTable(vertices[j.right].table);
    // Non-null: the vertex loop above GetTable-verified every vertex table.
    KWSDBG_CHECK(lt != nullptr && rt != nullptr);
    KWSDBG_CHECK_OK_OR_RETURN(lt->schema().ColumnIndex(j.left_column));
    KWSDBG_CHECK_OK_OR_RETURN(rt->schema().ColumnIndex(j.right_column));
  }
  for (const QuerySelection& sel : selections) {
    if (sel.vertex >= vertices.size()) {
      return Status::InvalidArgument("selection references missing instance");
    }
    const Table* t = db.FindTable(vertices[sel.vertex].table);
    KWSDBG_CHECK(t != nullptr);
    KWSDBG_CHECK_OK_OR_RETURN(t->schema().ColumnIndex(sel.column));
  }
  for (const QueryLikeSelection& like : like_selections) {
    if (like.vertex >= vertices.size()) {
      return Status::InvalidArgument(
          "LIKE selection references missing instance");
    }
    const Table* t = db.FindTable(vertices[like.vertex].table);
    KWSDBG_CHECK(t != nullptr);
    KWSDBG_ASSIGN_OR_RETURN(size_t col,
                            t->schema().ColumnIndex(like.column));
    if (t->schema().column(col).type != DataType::kString) {
      return Status::InvalidArgument("LIKE on non-text column '" +
                                     like.column + "'");
    }
  }
  return Status::OK();
}

StatusOr<JoinNetworkQuery> FromSelectStatement(const SelectStatement& stmt,
                                               const Database& db) {
  if (!stmt.select_all) {
    return Status::InvalidArgument(
        "join-network queries must SELECT * (the KWS-S templates do)");
  }
  JoinNetworkQuery query;
  std::unordered_map<std::string, uint16_t> alias_index;
  for (const FromItem& item : stmt.from) {
    const std::string& alias = item.EffectiveAlias();
    if (alias_index.count(alias)) {
      return Status::InvalidArgument("duplicate alias '" + alias + "'");
    }
    alias_index.emplace(alias, static_cast<uint16_t>(query.vertices.size()));
    query.vertices.push_back(QueryVertex{item.table, alias, ""});
  }
  auto resolve = [&](const ColumnRef& ref) -> StatusOr<uint16_t> {
    if (ref.alias.empty()) {
      // Unqualified column: unique owner among the FROM tables.
      int found = -1;
      for (size_t i = 0; i < query.vertices.size(); ++i) {
        const Table* t = db.FindTable(query.vertices[i].table);
        if (t != nullptr && t->schema().HasColumn(ref.column)) {
          if (found >= 0) {
            return Status::InvalidArgument("ambiguous column '" + ref.column +
                                           "'");
          }
          found = static_cast<int>(i);
        }
      }
      if (found < 0) {
        return Status::NotFound("unknown column '" + ref.column + "'");
      }
      return static_cast<uint16_t>(found);
    }
    auto it = alias_index.find(ref.alias);
    if (it == alias_index.end()) {
      return Status::NotFound("unknown alias '" + ref.alias + "'");
    }
    return it->second;
  };

  auto apply_like = [&](const LikePredicate& like) -> Status {
    KWSDBG_ASSIGN_OR_RETURN(uint16_t v, resolve(like.column));
    std::string kw = ExtractContainedKeyword(like.pattern);
    if (kw.empty()) {
      return Status::InvalidArgument(
          "LIKE pattern '" + like.pattern +
          "' is not a containment pattern '%kw%'");
    }
    QueryVertex& qv = query.vertices[v];
    if (!qv.keyword.empty() && !EqualsCaseInsensitive(qv.keyword, kw)) {
      return Status::InvalidArgument("two keywords ('" + qv.keyword +
                                     "', '" + kw + "') on alias '" +
                                     qv.alias + "'");
    }
    qv.keyword = ToLower(kw);
    return Status::OK();
  };

  for (const Conjunct& c : stmt.where) {
    if (const auto* jp = std::get_if<JoinPredicate>(&c)) {
      KWSDBG_ASSIGN_OR_RETURN(uint16_t l, resolve(jp->left));
      KWSDBG_ASSIGN_OR_RETURN(uint16_t r, resolve(jp->right));
      query.joins.push_back(
          QueryJoin{l, jp->left.column, r, jp->right.column});
    } else if (const auto* cp = std::get_if<ConstantPredicate>(&c)) {
      KWSDBG_ASSIGN_OR_RETURN(uint16_t v, resolve(cp->column));
      const Table* t = db.FindTable(query.vertices[v].table);
      if (t == nullptr) {
        // Reachable: a qualified alias resolves without checking that its
        // FROM table exists, so `SELECT * FROM nope n WHERE n.x = 3` lands
        // here with an unknown table.
        return Status::NotFound("no table named '" + query.vertices[v].table +
                                "'");
      }
      KWSDBG_ASSIGN_OR_RETURN(size_t col,
                              t->schema().ColumnIndex(cp->column.column));
      const DataType type = t->schema().column(col).type;
      Value value;
      if (cp->is_string) {
        if (type != DataType::kString) {
          return Status::InvalidArgument("string literal compared to " +
                                         std::string(DataTypeToString(type)) +
                                         " column '" + cp->column.column +
                                         "'");
        }
        value = Value(cp->text);
      } else if (type == DataType::kInt64) {
        try {
          value = Value(static_cast<int64_t>(std::stoll(cp->text)));
        } catch (...) {
          return Status::ParseError("bad integer literal '" + cp->text + "'");
        }
      } else if (type == DataType::kDouble) {
        try {
          value = Value(std::stod(cp->text));
        } catch (...) {
          return Status::ParseError("bad numeric literal '" + cp->text + "'");
        }
      } else {
        return Status::InvalidArgument("numeric literal compared to TEXT "
                                       "column '" +
                                       cp->column.column + "'");
      }
      query.selections.push_back(
          QuerySelection{v, cp->column.column, std::move(value)});
    } else if (const auto* lp = std::get_if<LikePredicate>(&c)) {
      // A bare LIKE conjunct is a column-specific selection (full pattern
      // syntax); only parenthesized OR groups carry keyword semantics.
      KWSDBG_ASSIGN_OR_RETURN(uint16_t v, resolve(lp->column));
      query.like_selections.push_back(
          QueryLikeSelection{v, lp->column.column, lp->pattern});
    } else {
      const auto& ors = std::get<OrLikes>(c);
      if (ors.likes.empty()) {
        return Status::InvalidArgument("empty OR group");
      }
      // All branches must target the same alias with the same keyword —
      // that's the "keyword over this relation's text columns" shape.
      KWSDBG_ASSIGN_OR_RETURN(uint16_t v0, resolve(ors.likes[0].column));
      std::string kw0 = ExtractContainedKeyword(ors.likes[0].pattern);
      for (const LikePredicate& like : ors.likes) {
        KWSDBG_ASSIGN_OR_RETURN(uint16_t v, resolve(like.column));
        std::string kw = ExtractContainedKeyword(like.pattern);
        if (v != v0 || !EqualsCaseInsensitive(kw, kw0)) {
          return Status::InvalidArgument(
              "OR group mixes aliases or keywords");
        }
      }
      KWSDBG_RETURN_NOT_OK(apply_like(ors.likes[0]));
    }
  }
  KWSDBG_RETURN_NOT_OK(query.Validate(db));
  return query;
}

}  // namespace kwsdbg
