// Query executor for join-network queries: index-backed backtracking join
// with keyword-containment filters, early exit for existence checks, and
// per-session caches (join-column hash indexes, keyword match sets) that
// model a warm DBMS.
//
// Evaluation pipeline (executor v2):
//   1. candidate sourcing   — keyword candidates come from the registered
//      inverted index (posting lists, Lucene-style `*kw*` dictionary scan)
//      when possible, falling back to a full LIKE scan otherwise;
//   2. semijoin reduction   — each vertex's candidate set is intersected
//      against its join neighbors' join-column value sets (via the cached
//      RowIndex hash indexes) before enumeration, so dead networks die
//      without a single backtracking step;
//   3. backtracking join    — smallest-candidate-first instance order with
//      join-column index probes;
//   4. existence mode       — IsNonEmpty stops at the first witness without
//      materializing rows or column headers.
//
// Probe engine v3 (default; see sql/flat_row_index.h): join-column probes go
// to flat open-addressing hash indexes over 64-bit key hashes with row-id
// runs in one contiguous arena, and hot probe loops run a DRAMHiT-style
// batched pipeline — hash a window of upcoming probe keys, software-prefetch
// their buckets, then drain the window in order. Result rows, their order,
// the kCancelCheckStride cancellation points, and the executor.join.probe
// fault point are all bit-identical to the v2 unordered_map path
// (`flat_index`/`batched_probe` toggles select the engine; the
// probe_engine_workload bench gates the parity).
#ifndef KWSDBG_SQL_EXECUTOR_H_
#define KWSDBG_SQL_EXECUTOR_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/cancellation.h"
#include "common/hash.h"
#include "common/status.h"
#include "sql/flat_row_index.h"
#include "sql/join_network.h"
#include "sql/row_index.h"
#include "storage/database.h"
#include "text/inverted_index.h"

namespace kwsdbg {

/// Materialized query output: alias-qualified column names plus rows that
/// concatenate the matched tuples in vertex order.
struct ResultSet {
  std::vector<std::string> columns;
  std::vector<Tuple> rows;

  bool empty() const { return rows.empty(); }
  /// Renders an ASCII table (for examples and the shell).
  std::string ToString(size_t max_rows = 20) const;
};

/// Executor v2 feature toggles (benchmarks compare the "before" scan-based
/// path against the index-backed one by flipping these off).
struct ExecutorOptions {
  /// Source keyword candidates from a registered inverted index.
  bool use_text_index = true;
  /// Run the semijoin pre-reduction pass before the backtracking join.
  bool semijoin_reduction = true;
  /// Probe engine v3: join-column probes via FlatRowIndex (open-addressing
  /// buckets + contiguous row arena) instead of the v2 unordered_map-based
  /// RowIndex. Identical results and order; different memory layout.
  bool flat_index = true;
  /// Batched probe pipeline (requires flat_index): when a probe loop's
  /// candidate set is large enough, hash a window of upcoming probe keys and
  /// software-prefetch their buckets before draining the window in order.
  bool batched_probe = true;
  /// Cooperative deadline: when set, long probes poll the token between row
  /// batches and unwind with kDeadlineExceeded once it fires. A cancelled
  /// probe produces no verdict and leaves session caches consistent (only
  /// fully built match sets / indexes are ever cached). The token must
  /// outlive the executor.
  const CancellationToken* cancellation = nullptr;
  /// Shard-shared flat-index tier (thread-safe, epoch-aware). When set,
  /// flat-index probes go through it instead of the private per-session
  /// manager, so the workers of one service shard share one set of arenas
  /// instead of each building a copy. Must outlive the executor. This
  /// tier invalidates by epoch internally; the session's ClearCaches()
  /// deliberately leaves it alone (other sessions share it).
  SharedFlatRowIndexManager* shared_flat_indexes = nullptr;
};

/// Accumulated executor counters; the traversal experiments read these.
struct ExecutorStats {
  size_t queries_executed = 0;  ///< Execute/IsNonEmpty calls (failed too).
  double exec_millis = 0;       ///< Total wall time inside the executor,
                                ///< accounted on every exit path.
  size_t keyword_scans = 0;     ///< Keyword match sets built by a full
                                ///< LIKE scan (index miss or fallback).
  size_t posting_hits = 0;      ///< Keyword match sets served from the
                                ///< inverted index's posting lists.
  size_t rows_output = 0;
  size_t rows_probed = 0;       ///< Rows pulled during backtracking joins.
  size_t rows_filtered = 0;     ///< Candidate rows removed by semijoin
                                ///< pre-reduction.
  size_t semijoin_eliminations = 0;  ///< Queries proven empty by the
                                     ///< pre-reduction pass alone.
  size_t index_builds = 0;      ///< Join-column hash indexes built.
  // Probe engine v3 (zero when flat_index is off).
  size_t flat_probes = 0;       ///< Lookups answered by a FlatRowIndex.
  size_t prefetch_batches = 0;  ///< Prefetch windows issued by the batched
                                ///< probe pipeline.
  double index_build_millis = 0; ///< Wall time building flat indexes.
  size_t arena_bytes = 0;       ///< Row-id arena bytes across flat indexes
                                ///< built by this session.
  size_t existence_probes = 0;  ///< IsNonEmpty calls (first-witness mode).
  size_t deadline_aborts = 0;   ///< Probes unwound by a fired cancellation
                                ///< token (no verdict was produced).
  // Degraded-mode fallbacks (see common/fault_injector.h): a faulted fast
  // path falls back to a slower correct one instead of failing the query.
  size_t index_fallbacks = 0;    ///< Keyword match sets that fell back from
                                 ///< posting lists to a LIKE scan because
                                 ///< the text-index path faulted.
  size_t semijoin_fallbacks = 0; ///< Queries that skipped the semijoin pass
                                 ///< (plain backtracking join) on a fault.
  // Out-of-core tier (all zero for a fully resident database + index).
  size_t page_hits = 0;       ///< Table page fetches served by the pool.
  size_t page_reads = 0;      ///< Table pages read from disk.
  size_t page_evictions = 0;  ///< Buffer-pool frames displaced.
  size_t posting_reads = 0;   ///< Posting lists fetched from disk.
};

/// One executor = one "database session". Not thread-safe.
class Executor {
 public:
  explicit Executor(const Database* db, ExecutorOptions options = {})
      : db_(db), options_(options) {}

  /// Registers the inverted index keyword candidates are sourced from. The
  /// index must be built over this executor's database and outlive the
  /// executor; pass nullptr to fall back to LIKE scans (and call
  /// ClearCaches() if match sets were already built from a previous index).
  void RegisterTextIndex(const InvertedIndex* index) { text_index_ = index; }
  const InvertedIndex* text_index() const { return text_index_; }

  const ExecutorOptions& options() const { return options_; }

  /// Runs the query; `limit` of 0 means unlimited.
  StatusOr<ResultSet> Execute(const JoinNetworkQuery& query,
                              size_t limit = 0);

  /// Existence check — how the debugger tests node aliveness (R(J) !=
  /// empty, paper Sec. 2.1). Stops at the first witness without building
  /// result rows or column headers.
  StatusOr<bool> IsNonEmpty(const JoinNetworkQuery& query);

  /// Human-readable execution plan: the chosen instance order with the
  /// estimated candidate rows per instance and the access path (keyword
  /// scan, full scan, or index probe on a join column).
  StatusOr<std::string> Explain(const JoinNetworkQuery& query);

  const ExecutorStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ExecutorStats{}; }

  /// Drops the index and keyword-match caches (cold session).
  void ClearCaches();

 private:
  /// Rows of `table` matching LIKE '%keyword%' on any text column.
  struct KeywordMatches {
    std::vector<uint8_t> bitmap;  ///< bitmap[row] != 0 iff row matches.
    std::vector<uint32_t> rows;   ///< Matching rows, ascending.
    size_t count = 0;
  };

  const KeywordMatches& GetKeywordMatches(const Table* table,
                                          const std::string& keyword);

  /// True iff the registered index can answer '%keyword%' exactly: the
  /// keyword must tokenize to itself (single alphanumeric run), so every
  /// LIKE match lies inside one indexed term.
  bool IndexServable(const std::string& keyword) const;

  /// Dictionary ids of index terms containing `keyword`, memoized (the
  /// dictionary scan is per-keyword, not per-table). Ids rather than list
  /// pointers: on a spilled index a fetched list is only valid until the
  /// next fetch, so callers resolve one id at a time via PostingsForTermId.
  const std::vector<uint32_t>& InfixTermIds(const std::string& keyword);

  /// indexes_.GetOrBuild with build accounting (v2 engine).
  const RowIndex& GetJoinIndex(const Table* table, size_t column);

  /// flat_indexes_.GetOrBuild with build accounting (v3 engine).
  const FlatRowIndex& GetFlatIndex(const Table* table, size_t column);

  /// Engine-dispatching probe: rows of (table, column) structurally equal
  /// to `v`, through whichever index the options select.
  RowSpan ProbeJoinIndex(const Table* table, size_t column, const Value& v);

  /// Shared core of Execute/IsNonEmpty. Returns whether at least one result
  /// exists; materializes rows into `out` unless it is null (existence
  /// mode, which stops at the first witness).
  StatusOr<bool> RunJoin(const JoinNetworkQuery& query, size_t limit,
                         ResultSet* out);

  const Database* db_;
  ExecutorOptions options_;
  const InvertedIndex* text_index_ = nullptr;
  RowIndexManager indexes_;
  FlatRowIndexManager flat_indexes_;
  std::unordered_map<std::pair<const Table*, std::string>, KeywordMatches,
                     PairHash>
      keyword_cache_;
  std::unordered_map<std::string, std::vector<uint32_t>> infix_cache_;
  /// Per-table data epochs the session caches were built against. RunJoin
  /// compares them for the query's tables and drops only the stale tables'
  /// keyword match sets and join indexes (relation-scoped invalidation: a
  /// write to Person leaves a warm session's Movie caches untouched).
  std::unordered_map<const Table*, uint64_t> table_cache_epochs_;
  /// InvertedIndex::version() the infix cache (term ids) was built against;
  /// a vocabulary change re-finalizes the dictionary and re-assigns ids.
  uint64_t index_version_ = 0;
  /// Set per RunJoin: any table or the index is serving from disk. Gates
  /// the reference-copy paths and selectivity-first probing so the fully
  /// resident hot path stays byte-identical to the in-memory engine.
  bool spill_mode_ = false;
  /// Database::epoch() the session caches were built against; a mismatch at
  /// query entry drops them (see RunJoin).
  uint64_t cache_epoch_ = 0;
  ExecutorStats stats_;
};

}  // namespace kwsdbg

#endif  // KWSDBG_SQL_EXECUTOR_H_
