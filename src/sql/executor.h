// Query executor for join-network queries: index-backed backtracking join
// with keyword-containment filters, early exit for existence checks, and
// per-session caches (join-column hash indexes, keyword scan bitmaps) that
// model a warm DBMS.
#ifndef KWSDBG_SQL_EXECUTOR_H_
#define KWSDBG_SQL_EXECUTOR_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/status.h"
#include "sql/join_network.h"
#include "sql/row_index.h"
#include "storage/database.h"

namespace kwsdbg {

/// Materialized query output: alias-qualified column names plus rows that
/// concatenate the matched tuples in vertex order.
struct ResultSet {
  std::vector<std::string> columns;
  std::vector<Tuple> rows;

  bool empty() const { return rows.empty(); }
  /// Renders an ASCII table (for examples and the shell).
  std::string ToString(size_t max_rows = 20) const;
};

/// Accumulated executor counters; the traversal experiments read these.
struct ExecutorStats {
  size_t queries_executed = 0;  ///< Execute/IsNonEmpty calls.
  double exec_millis = 0;       ///< Total wall time inside the executor.
  size_t keyword_scans = 0;     ///< LIKE scans not served from cache.
  size_t rows_output = 0;
};

/// One executor = one "database session". Not thread-safe.
class Executor {
 public:
  explicit Executor(const Database* db) : db_(db) {}

  /// Runs the query; `limit` of 0 means unlimited.
  StatusOr<ResultSet> Execute(const JoinNetworkQuery& query,
                              size_t limit = 0);

  /// Existence check with first-row early exit — how the debugger tests
  /// node aliveness (R(J) != empty, paper Sec. 2.1).
  StatusOr<bool> IsNonEmpty(const JoinNetworkQuery& query);

  /// Human-readable execution plan: the chosen instance order with the
  /// estimated candidate rows per instance and the access path (keyword
  /// scan, full scan, or index probe on a join column).
  StatusOr<std::string> Explain(const JoinNetworkQuery& query);

  const ExecutorStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ExecutorStats{}; }

  /// Drops the index and keyword-scan caches (cold session).
  void ClearCaches();

 private:
  /// Rows of `table` matching LIKE '%keyword%' on any text column.
  struct KeywordMatches {
    std::vector<uint8_t> bitmap;  ///< bitmap[row] != 0 iff row matches.
    size_t count = 0;
  };

  const KeywordMatches& GetKeywordMatches(const Table* table,
                                          const std::string& keyword);

  const Database* db_;
  RowIndexManager indexes_;
  std::unordered_map<std::pair<const Table*, std::string>, KeywordMatches,
                     PairHash>
      keyword_cache_;
  ExecutorStats stats_;
};

}  // namespace kwsdbg

#endif  // KWSDBG_SQL_EXECUTOR_H_
