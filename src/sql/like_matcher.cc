#include "sql/like_matcher.h"

namespace kwsdbg {

namespace {
inline char Fold(char c, bool ci) {
  return (ci && c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}
}  // namespace

bool LikeMatch(std::string_view pattern, std::string_view text,
               bool case_insensitive) {
  // Iterative wildcard matching with single-level backtracking on '%'.
  size_t p = 0, t = 0;
  size_t star_p = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' ||
         Fold(pattern[p], case_insensitive) ==
             Fold(text[t], case_insensitive))) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

std::string ContainsPattern(std::string_view keyword) {
  std::string out = "%";
  out.append(keyword);
  out += "%";
  return out;
}

std::string ExtractContainedKeyword(std::string_view pattern) {
  if (pattern.size() < 2 || pattern.front() != '%' || pattern.back() != '%') {
    return "";
  }
  std::string_view inner = pattern.substr(1, pattern.size() - 2);
  if (inner.find('%') != std::string_view::npos ||
      inner.find('_') != std::string_view::npos) {
    return "";
  }
  return std::string(inner);
}

}  // namespace kwsdbg
