#include "sql/like_matcher.h"

namespace kwsdbg {

namespace {
inline char Fold(char c, bool ci) {
  return (ci && c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}
}  // namespace

bool LikeMatch(std::string_view pattern, std::string_view text,
               bool case_insensitive) {
  // Iterative wildcard matching with single-level backtracking on '%'.
  // '\' escapes the next character (so '\%', '\_', '\\' match literally);
  // a trailing lone '\' matches a literal backslash.
  size_t p = 0, t = 0;
  size_t star_p = std::string_view::npos, star_t = 0;
  auto literal_at = [&](size_t pos, char c) {
    // pattern[pos] interpreted as a literal (resolving an escape) == c?
    char pc = pattern[pos];
    if (pc == '\\' && pos + 1 < pattern.size()) pc = pattern[pos + 1];
    return Fold(pc, case_insensitive) == Fold(c, case_insensitive);
  };
  auto is_escape = [&](size_t pos) {
    return pattern[pos] == '\\' && pos + 1 < pattern.size();
  };
  while (t < text.size()) {
    if (p < pattern.size() && pattern[p] != '%' &&
        (pattern[p] == '_' || literal_at(p, text[t]))) {
      p += is_escape(p) ? 2 : 1;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

std::string EscapeLikeLiteral(std::string_view literal) {
  std::string out;
  out.reserve(literal.size());
  for (char c : literal) {
    if (c == '%' || c == '_' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string ContainsPattern(std::string_view keyword) {
  // Escape wildcard characters so a keyword like "100%" builds a pattern
  // matching the literal text, not an over-matching prefix scan.
  std::string out = "%";
  out += EscapeLikeLiteral(keyword);
  out += "%";
  return out;
}

std::string ExtractContainedKeyword(std::string_view pattern) {
  if (pattern.size() < 2 || pattern.front() != '%' || pattern.back() != '%') {
    return "";
  }
  // An escaped closing '%' ('%ab\%' is not a containment scan) leaves a
  // dangling '\' at the end of `inner`, which the loop below rejects.
  std::string_view inner = pattern.substr(1, pattern.size() - 2);
  std::string keyword;
  keyword.reserve(inner.size());
  for (size_t i = 0; i < inner.size(); ++i) {
    const char c = inner[i];
    if (c == '%' || c == '_') return "";  // unescaped wildcard inside
    if (c == '\\') {
      if (i + 1 >= inner.size()) return "";  // dangling escape
      keyword += inner[++i];
    } else {
      keyword += c;
    }
  }
  return keyword;
}

}  // namespace kwsdbg
