#include "sql/select_runner.h"

#include <algorithm>

#include "common/string_util.h"
#include "sql/parser.h"

namespace kwsdbg {

namespace {

/// Resolves an ORDER BY column against the output columns
/// ("alias.column" each).
StatusOr<size_t> ResolveOutputColumn(const ResultSet& rs,
                                     const ColumnRef& ref) {
  if (!ref.alias.empty()) {
    const std::string want = ref.alias + "." + ref.column;
    for (size_t i = 0; i < rs.columns.size(); ++i) {
      if (rs.columns[i] == want) return i;
    }
    return Status::NotFound("no output column '" + want + "'");
  }
  int found = -1;
  const std::string suffix = "." + ref.column;
  for (size_t i = 0; i < rs.columns.size(); ++i) {
    if (rs.columns[i].size() > suffix.size() &&
        rs.columns[i].compare(rs.columns[i].size() - suffix.size(),
                              suffix.size(), suffix) == 0) {
      if (found >= 0) {
        return Status::InvalidArgument("ambiguous ORDER BY column '" +
                                       ref.column + "'");
      }
      found = static_cast<int>(i);
    }
  }
  if (found < 0) {
    return Status::NotFound("no output column '" + ref.column + "'");
  }
  return static_cast<size_t>(found);
}

}  // namespace

StatusOr<ResultSet> RunSelect(Executor* executor, const SelectStatement& stmt,
                              const Database& db) {
  KWSDBG_ASSIGN_OR_RETURN(JoinNetworkQuery query,
                          FromSelectStatement(stmt, db));
  // LIMIT can stop execution early only when no ORDER BY re-sorts rows and
  // the caller doesn't need an exact COUNT.
  const size_t exec_limit =
      (stmt.order_by.empty() && !stmt.count_star) ? stmt.limit : 0;
  KWSDBG_ASSIGN_OR_RETURN(ResultSet rs, executor->Execute(query, exec_limit));

  if (stmt.count_star) {
    ResultSet count;
    count.columns = {"count"};
    count.rows.push_back({Value(static_cast<int64_t>(rs.rows.size()))});
    return count;
  }

  if (!stmt.order_by.empty()) {
    std::vector<std::pair<size_t, bool>> keys;
    for (const OrderKey& key : stmt.order_by) {
      KWSDBG_ASSIGN_OR_RETURN(size_t idx, ResolveOutputColumn(rs, key.column));
      keys.emplace_back(idx, key.descending);
    }
    std::stable_sort(rs.rows.begin(), rs.rows.end(),
                     [&keys](const Tuple& a, const Tuple& b) {
                       for (const auto& [idx, desc] : keys) {
                         int c = a[idx].Compare(b[idx]);
                         if (c != 0) return desc ? c > 0 : c < 0;
                       }
                       return false;
                     });
  }
  if (stmt.limit > 0 && rs.rows.size() > stmt.limit) {
    rs.rows.resize(stmt.limit);
  }
  return rs;
}

StatusOr<ResultSet> RunSelect(Executor* executor, const std::string& sql,
                              const Database& db) {
  KWSDBG_ASSIGN_OR_RETURN(SelectStatement stmt, ParseSql(sql));
  return RunSelect(executor, stmt, db);
}

}  // namespace kwsdbg
