#include "sql/lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace kwsdbg {

namespace {
bool IsKeyword(const std::string& upper) {
  return upper == "SELECT" || upper == "FROM" || upper == "WHERE" ||
         upper == "AND" || upper == "OR" || upper == "LIKE" ||
         upper == "AS" || upper == "COUNT" || upper == "ORDER" ||
         upper == "BY" || upper == "ASC" || upper == "DESC" ||
         upper == "LIMIT";
}

std::string ToUpper(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    out.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
  }
  return out;
}
}  // namespace

StatusOr<std::vector<SqlToken>> LexSql(const std::string& sql) {
  std::vector<SqlToken> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const size_t start = i;
    if (c == '\'') {
      std::string text;
      ++i;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {
            text += '\'';
            i += 2;
          } else {
            ++i;
            closed = true;
            break;
          }
        } else {
          text += sql[i++];
        }
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      tokens.push_back({SqlTokenType::kString, std::move(text), start});
    } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(sql[j])) ||
                       sql[j] == '_')) {
        ++j;
      }
      std::string word = sql.substr(i, j - i);
      std::string upper = ToUpper(word);
      if (IsKeyword(upper)) {
        tokens.push_back({SqlTokenType::kKeyword, std::move(upper), start});
      } else {
        tokens.push_back({SqlTokenType::kIdentifier, std::move(word), start});
      }
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      bool seen_dot = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(sql[j])) ||
                       (sql[j] == '.' && !seen_dot))) {
        if (sql[j] == '.') seen_dot = true;
        ++j;
      }
      tokens.push_back({SqlTokenType::kNumber, sql.substr(i, j - i), start});
      i = j;
    } else {
      SqlTokenType type;
      switch (c) {
        case '*': type = SqlTokenType::kStar; break;
        case ',': type = SqlTokenType::kComma; break;
        case '.': type = SqlTokenType::kDot; break;
        case '=': type = SqlTokenType::kEquals; break;
        case '(': type = SqlTokenType::kLParen; break;
        case ')': type = SqlTokenType::kRParen; break;
        case ';': type = SqlTokenType::kSemicolon; break;
        default:
          return Status::ParseError("unexpected character '" +
                                    std::string(1, c) + "' at offset " +
                                    std::to_string(i));
      }
      tokens.push_back({type, std::string(1, c), start});
      ++i;
    }
  }
  tokens.push_back({SqlTokenType::kEnd, "", n});
  return tokens;
}

}  // namespace kwsdbg
