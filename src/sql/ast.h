// AST for the SQL subset the KWS-S system generates and the shell accepts:
//
//   SELECT (* | col_ref [, col_ref]*)
//   FROM table [AS alias] [, table [AS alias]]*
//   [WHERE conjunct [AND conjunct]*]
//
//   conjunct := col_ref = col_ref
//             | col_ref LIKE 'pattern'
//             | '(' like_pred [OR like_pred]* ')'
//
// exactly the query class of the paper: equi-joins over key-FK columns plus
// per-relation keyword containment (an OR over the relation's text columns).
#ifndef KWSDBG_SQL_AST_H_
#define KWSDBG_SQL_AST_H_

#include <string>
#include <variant>
#include <vector>

namespace kwsdbg {

/// "alias.column" (alias may be empty when unqualified).
struct ColumnRef {
  std::string alias;
  std::string column;

  std::string ToString() const {
    return alias.empty() ? column : alias + "." + column;
  }
  bool operator==(const ColumnRef&) const = default;
};

/// col LIKE 'pattern'.
struct LikePredicate {
  ColumnRef column;
  std::string pattern;

  bool operator==(const LikePredicate&) const = default;
};

/// left = right equi-join.
struct JoinPredicate {
  ColumnRef left;
  ColumnRef right;

  bool operator==(const JoinPredicate&) const = default;
};

/// col = <literal> selection (string or numeric constant).
struct ConstantPredicate {
  ColumnRef column;
  bool is_string = false;   ///< Render with quotes.
  std::string text;         ///< Literal text as written (numbers unparsed).

  bool operator==(const ConstantPredicate&) const = default;
};

/// (like OR like OR ...) — a keyword matched against several text columns.
struct OrLikes {
  std::vector<LikePredicate> likes;

  bool operator==(const OrLikes&) const = default;
};

/// One WHERE conjunct.
using Conjunct =
    std::variant<JoinPredicate, LikePredicate, OrLikes, ConstantPredicate>;

/// FROM item: physical table plus optional alias.
struct FromItem {
  std::string table;
  std::string alias;  ///< Empty = table name itself.

  const std::string& EffectiveAlias() const {
    return alias.empty() ? table : alias;
  }
  bool operator==(const FromItem&) const = default;
};

/// ORDER BY key.
struct OrderKey {
  ColumnRef column;
  bool descending = false;

  bool operator==(const OrderKey&) const = default;
};

/// A parsed SELECT statement.
struct SelectStatement {
  bool select_all = true;
  bool count_star = false;            ///< SELECT COUNT(*).
  std::vector<ColumnRef> select_list;  ///< Used when !select_all.
  std::vector<FromItem> from;
  std::vector<Conjunct> where;
  std::vector<OrderKey> order_by;
  size_t limit = 0;  ///< 0 = no LIMIT clause.

  /// Renders back to SQL text (normalized whitespace and quoting).
  std::string ToSql() const;
};

}  // namespace kwsdbg

#endif  // KWSDBG_SQL_AST_H_
