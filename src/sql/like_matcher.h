// SQL LIKE pattern matching: '%' matches any sequence, '_' any single
// character, and '\' escapes the next character (so '\%' is a literal
// percent). Case-insensitive by default, matching the paper's use of LIKE
// for keyword containment.
#ifndef KWSDBG_SQL_LIKE_MATCHER_H_
#define KWSDBG_SQL_LIKE_MATCHER_H_

#include <string>
#include <string_view>

namespace kwsdbg {

/// True iff `text` matches the LIKE `pattern`.
bool LikeMatch(std::string_view pattern, std::string_view text,
               bool case_insensitive = true);

/// Escapes '%', '_' and '\' in `literal` so it matches itself (and nothing
/// else) when embedded in a LIKE pattern.
std::string EscapeLikeLiteral(std::string_view literal);

/// Builds the containment pattern '%keyword%' used by generated queries.
/// Wildcard characters in `keyword` are escaped, so a keyword like "100%"
/// matches only texts containing the literal string.
std::string ContainsPattern(std::string_view keyword);

/// If `pattern` has the form '%kw%' with no unescaped wildcards inside kw,
/// returns kw with escapes removed; otherwise an empty string. Inverse of
/// ContainsPattern, used to map parsed SQL back to keywords.
std::string ExtractContainedKeyword(std::string_view pattern);

}  // namespace kwsdbg

#endif  // KWSDBG_SQL_LIKE_MATCHER_H_
