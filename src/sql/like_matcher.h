// SQL LIKE pattern matching: '%' matches any sequence, '_' any single
// character. Case-insensitive by default, matching the paper's use of LIKE
// for keyword containment.
#ifndef KWSDBG_SQL_LIKE_MATCHER_H_
#define KWSDBG_SQL_LIKE_MATCHER_H_

#include <string>
#include <string_view>

namespace kwsdbg {

/// True iff `text` matches the LIKE `pattern`.
bool LikeMatch(std::string_view pattern, std::string_view text,
               bool case_insensitive = true);

/// Builds the containment pattern '%keyword%' used by generated queries.
std::string ContainsPattern(std::string_view keyword);

/// If `pattern` has the form '%kw%' with no wildcards inside kw, returns kw;
/// otherwise an empty string. Used to map parsed SQL back to keywords.
std::string ExtractContainedKeyword(std::string_view pattern);

}  // namespace kwsdbg

#endif  // KWSDBG_SQL_LIKE_MATCHER_H_
