// Tokenizer for the SQL subset.
#ifndef KWSDBG_SQL_LEXER_H_
#define KWSDBG_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace kwsdbg {

enum class SqlTokenType {
  kIdentifier,   // table / column / alias names
  kKeyword,      // SELECT FROM WHERE AND OR LIKE AS COUNT ORDER BY ASC DESC
                 // LIMIT (upper-cased in `text`)
  kString,       // 'literal' (unescaped in `text`)
  kNumber,       // integer or decimal literal
  kStar,         // *
  kComma,        // ,
  kDot,          // .
  kEquals,       // =
  kLParen,       // (
  kRParen,       // )
  kSemicolon,    // ;
  kEnd,          // end of input
};

struct SqlToken {
  SqlTokenType type;
  std::string text;
  size_t offset;  ///< Byte offset in the input, for error messages.
};

/// Tokenizes `sql`. The final token is always kEnd. Errors on unterminated
/// strings or unexpected characters.
StatusOr<std::vector<SqlToken>> LexSql(const std::string& sql);

}  // namespace kwsdbg

#endif  // KWSDBG_SQL_LEXER_H_
