#include "sql/parser.h"

#include "sql/lexer.h"

namespace kwsdbg {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<SqlToken> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<SelectStatement> Parse() {
    SelectStatement stmt;
    KWSDBG_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    KWSDBG_RETURN_NOT_OK(ParseSelectList(&stmt));
    KWSDBG_RETURN_NOT_OK(ExpectKeyword("FROM"));
    KWSDBG_RETURN_NOT_OK(ParseFromList(&stmt));
    if (PeekKeyword("WHERE")) {
      Advance();
      KWSDBG_RETURN_NOT_OK(ParseWhere(&stmt));
    }
    if (PeekKeyword("ORDER")) {
      Advance();
      KWSDBG_RETURN_NOT_OK(ExpectKeyword("BY"));
      while (true) {
        OrderKey key;
        KWSDBG_ASSIGN_OR_RETURN(key.column, ParseColumnRef());
        if (PeekKeyword("ASC")) {
          Advance();
        } else if (PeekKeyword("DESC")) {
          Advance();
          key.descending = true;
        }
        stmt.order_by.push_back(std::move(key));
        if (Peek().type != SqlTokenType::kComma) break;
        Advance();
      }
    }
    if (PeekKeyword("LIMIT")) {
      Advance();
      if (Peek().type != SqlTokenType::kNumber) {
        return Err("expected row count after LIMIT");
      }
      try {
        long long v = std::stoll(Peek().text);
        if (v <= 0) return Err("LIMIT must be positive");
        stmt.limit = static_cast<size_t>(v);
      } catch (...) {
        return Err("bad LIMIT value");
      }
      Advance();
    }
    if (Peek().type == SqlTokenType::kSemicolon) Advance();
    if (Peek().type != SqlTokenType::kEnd) {
      return Err("trailing input");
    }
    return stmt;
  }

 private:
  const SqlToken& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  void Advance() { ++pos_; }

  bool PeekKeyword(const std::string& kw) const {
    return Peek().type == SqlTokenType::kKeyword && Peek().text == kw;
  }

  Status Err(const std::string& msg) const {
    return Status::ParseError(msg + " at offset " +
                              std::to_string(Peek().offset) + " (near '" +
                              Peek().text + "')");
  }

  Status ExpectKeyword(const std::string& kw) {
    if (!PeekKeyword(kw)) return Err("expected " + kw);
    Advance();
    return Status::OK();
  }

  Status Expect(SqlTokenType type, const std::string& what) {
    if (Peek().type != type) return Err("expected " + what);
    Advance();
    return Status::OK();
  }

  StatusOr<std::string> ExpectIdentifier(const std::string& what) {
    if (Peek().type != SqlTokenType::kIdentifier) {
      return Err("expected " + what);
    }
    std::string text = Peek().text;
    Advance();
    return text;
  }

  /// col_ref := ident | ident '.' (ident | '*'-less)
  StatusOr<ColumnRef> ParseColumnRef() {
    KWSDBG_ASSIGN_OR_RETURN(std::string first, ExpectIdentifier("column"));
    if (Peek().type == SqlTokenType::kDot) {
      Advance();
      KWSDBG_ASSIGN_OR_RETURN(std::string second,
                              ExpectIdentifier("column after '.'"));
      return ColumnRef{std::move(first), std::move(second)};
    }
    return ColumnRef{"", std::move(first)};
  }

  Status ParseSelectList(SelectStatement* stmt) {
    if (Peek().type == SqlTokenType::kStar) {
      Advance();
      stmt->select_all = true;
      return Status::OK();
    }
    if (PeekKeyword("COUNT")) {
      Advance();
      KWSDBG_RETURN_NOT_OK(Expect(SqlTokenType::kLParen, "'('"));
      KWSDBG_RETURN_NOT_OK(Expect(SqlTokenType::kStar, "'*'"));
      KWSDBG_RETURN_NOT_OK(Expect(SqlTokenType::kRParen, "')'"));
      stmt->select_all = true;
      stmt->count_star = true;
      return Status::OK();
    }
    stmt->select_all = false;
    while (true) {
      KWSDBG_ASSIGN_OR_RETURN(ColumnRef ref, ParseColumnRef());
      stmt->select_list.push_back(std::move(ref));
      if (Peek().type != SqlTokenType::kComma) break;
      Advance();
    }
    return Status::OK();
  }

  Status ParseFromList(SelectStatement* stmt) {
    while (true) {
      FromItem item;
      KWSDBG_ASSIGN_OR_RETURN(item.table, ExpectIdentifier("table name"));
      if (PeekKeyword("AS")) {
        Advance();
        KWSDBG_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier("alias"));
      } else if (Peek().type == SqlTokenType::kIdentifier) {
        item.alias = Peek().text;
        Advance();
      }
      stmt->from.push_back(std::move(item));
      if (Peek().type != SqlTokenType::kComma) break;
      Advance();
    }
    return Status::OK();
  }

  /// like_pred := col_ref LIKE 'pattern'
  StatusOr<LikePredicate> ParseLikeTail(ColumnRef col) {
    KWSDBG_RETURN_NOT_OK(ExpectKeyword("LIKE"));
    if (Peek().type != SqlTokenType::kString) {
      return Err("expected string literal after LIKE");
    }
    LikePredicate like{std::move(col), Peek().text};
    Advance();
    return like;
  }

  Status ParseWhere(SelectStatement* stmt) {
    while (true) {
      if (Peek().type == SqlTokenType::kLParen) {
        Advance();
        OrLikes ors;
        while (true) {
          KWSDBG_ASSIGN_OR_RETURN(ColumnRef col, ParseColumnRef());
          KWSDBG_ASSIGN_OR_RETURN(LikePredicate like,
                                  ParseLikeTail(std::move(col)));
          ors.likes.push_back(std::move(like));
          if (PeekKeyword("OR")) {
            Advance();
            continue;
          }
          break;
        }
        KWSDBG_RETURN_NOT_OK(Expect(SqlTokenType::kRParen, "')'"));
        stmt->where.emplace_back(std::move(ors));
      } else {
        KWSDBG_ASSIGN_OR_RETURN(ColumnRef left, ParseColumnRef());
        if (PeekKeyword("LIKE")) {
          KWSDBG_ASSIGN_OR_RETURN(LikePredicate like,
                                  ParseLikeTail(std::move(left)));
          stmt->where.emplace_back(std::move(like));
        } else {
          KWSDBG_RETURN_NOT_OK(Expect(SqlTokenType::kEquals, "'='"));
          if (Peek().type == SqlTokenType::kString) {
            stmt->where.emplace_back(
                ConstantPredicate{std::move(left), true, Peek().text});
            Advance();
          } else if (Peek().type == SqlTokenType::kNumber) {
            stmt->where.emplace_back(
                ConstantPredicate{std::move(left), false, Peek().text});
            Advance();
          } else {
            KWSDBG_ASSIGN_OR_RETURN(ColumnRef right, ParseColumnRef());
            stmt->where.emplace_back(
                JoinPredicate{std::move(left), std::move(right)});
          }
        }
      }
      if (PeekKeyword("AND")) {
        Advance();
        continue;
      }
      break;
    }
    return Status::OK();
  }

  std::vector<SqlToken> tokens_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<SelectStatement> ParseSql(const std::string& sql) {
  KWSDBG_ASSIGN_OR_RETURN(std::vector<SqlToken> tokens, LexSql(sql));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace kwsdbg
