// Probe engine v3: cache-conscious join-column indexes.
//
// `FlatRowIndex` replaces the v2 `RowIndex`
// (std::unordered_map<Value, std::vector<uint32_t>>) with an open-addressing,
// power-of-two, linear-probing hash table over 64-bit type-tagged key hashes
// (storage/value.h Hash64). Row ids live in one contiguous uint32_t arena —
// one run per distinct key, rows ascending — instead of per-key vectors, so a
// probe is: one bucket cache line, one verification cell, one arena run.
// Hash collisions are resolved DRAMHiT-style by verifying the probe value
// against the indexed column itself (the run's first row is the
// representative), which keeps buckets at 16 bytes with no stored keys and
// makes lookups exact for every value type, including strings.
//
// The bucket array and the arena are the only allocations, both contiguous,
// so callers can hide DRAM latency with software prefetching: hash a window
// of upcoming probe keys, PrefetchBucket() each, then drain the window in
// order (see Executor::RunJoin's batched probe pipeline).
//
// Live writes patch an index in place instead of discarding it: ApplyInsert
// extends or relocates one run (bucket tombstones keep probe chains intact,
// relocated runs leave arena garbage that CompactArena reclaims past a 25%
// threshold), ApplyDelete removes a row by hash-probe + in-run binary search
// (membership is definitive — a row has one value per column — so it works
// even after the cell was blanked). Lookup results always equal a
// from-scratch rebuild; only the internal layout differs.
#ifndef KWSDBG_SQL_FLAT_ROW_INDEX_H_
#define KWSDBG_SQL_FLAT_ROW_INDEX_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "storage/table.h"

namespace kwsdbg {

/// A borrowed, immutable run of row ids (a view into the index arena or any
/// other contiguous row-id storage). Never owns; valid while the owner lives.
struct RowSpan {
  const uint32_t* data = nullptr;
  uint32_t count = 0;

  const uint32_t* begin() const { return data; }
  const uint32_t* end() const { return data + count; }
  uint32_t operator[](size_t i) const { return data[i]; }
  size_t size() const { return count; }
  bool empty() const { return count == 0; }

  static RowSpan Of(const std::vector<uint32_t>& v) {
    return RowSpan{v.data(), static_cast<uint32_t>(v.size())};
  }
};

/// Per-index build/shape statistics (ursadb-profile-style cheap metadata:
/// knowing the worst run and the key count up front lets callers order and
/// batch probes without touching the table).
struct FlatIndexStats {
  double build_millis = 0;   ///< Wall time of Build().
  size_t distinct_keys = 0;  ///< Occupied buckets (= live arena runs).
  size_t max_run_length = 0; ///< Longest row run seen (high-water mark).
  size_t arena_bytes = 0;    ///< Row-id arena allocation.
  size_t bucket_bytes = 0;   ///< Bucket-array allocation.
};

/// value -> row-id run for one (table, column). NULL cells are not indexed
/// (SQL equality never matches NULL). Lookup uses structural equality
/// (Value::operator==), exactly like the v2 RowIndex.
class FlatRowIndex {
 public:
  /// Hash of one bucket slot: 64-bit key hash + [run_begin, run_begin+len)
  /// into the arena. len == 0 marks an empty slot (a real run has >= 1 row):
  /// run_begin == kTombstoneSlot distinguishes a deleted bucket (probe
  /// chains continue through it) from a never-used one (probes stop).
  struct Bucket {
    uint64_t hash = 0;
    uint32_t run_begin = 0;
    uint32_t run_len = 0;
  };
  static_assert(sizeof(Bucket) == 16, "bucket must stay two per cache line");

  static constexpr uint32_t kTombstoneSlot = 0xFFFFFFFFu;

  static FlatRowIndex Build(const Table& table, size_t column);

  /// Rows whose column structurally equals `v`, ascending. NULL probes and
  /// misses return an empty span.
  RowSpan Lookup(const Value& v) const {
    if (v.is_null() || buckets_.empty()) return RowSpan{};
    return LookupHashed(v.Hash64(), v);
  }

  /// Lookup with the key hash already computed (batched pipelines hash a
  /// window ahead of the drain). `hash` must equal `v.Hash64()`.
  RowSpan LookupHashed(uint64_t hash, const Value& v) const;

  /// Prefetches the bucket cache line a probe for `hash` starts at. The
  /// DRAMHiT trick: issued a window ahead, the dependent load in
  /// LookupHashed hits L1/L2 instead of DRAM.
  void PrefetchBucket(uint64_t hash) const {
    if (!buckets_.empty()) {
      __builtin_prefetch(&buckets_[hash & mask_], /*rw=*/0, /*locality=*/1);
    }
  }

  /// Prefetches the head of a run returned by a bucket hit, for pipelines
  /// that resolve buckets one window before consuming row ids.
  void PrefetchRun(const RowSpan& run) const {
    if (!run.empty()) __builtin_prefetch(run.data, /*rw=*/0, /*locality=*/1);
  }

  /// Patches the index after `row` gained value `v` in the indexed column
  /// (append, or the new value of an update). The table must already hold
  /// `v` at (row, column) — run verification reads it. NULL is a no-op.
  /// Invalidates previously returned RowSpans (the arena may reallocate).
  void ApplyInsert(uint32_t row, const Value& v);

  /// Removes `row` from the run of `old_value` (the pre-mutation cell
  /// value). Works before or after the cell is blanked/overwritten: the row
  /// is located by hash + in-run binary search, never by reading the cell.
  /// Returns false when (old_value, row) was not indexed (NULL cells).
  /// Invalidates previously returned RowSpans.
  bool ApplyDelete(uint32_t row, const Value& old_value);

  const FlatIndexStats& stats() const { return stats_; }
  size_t num_keys() const { return stats_.distinct_keys; }
  size_t capacity() const { return buckets_.size(); }
  size_t arena_garbage() const { return garbage_; }

 private:
  /// Rebuilds the bucket array at `new_capacity` from the live buckets
  /// (hash-only re-placement; the arena is untouched). Drops tombstones.
  void Rehash(uint64_t new_capacity);

  /// Rewrites the arena without garbage slots once they exceed 25% of it.
  void MaybeCompactArena();

  const Table* table_ = nullptr;
  size_t column_ = 0;
  uint64_t mask_ = 0;               ///< buckets_.size() - 1 (power of two).
  std::vector<Bucket> buckets_;
  std::vector<uint32_t> arena_;     ///< All runs, back to back.
  size_t garbage_ = 0;              ///< Dead arena slots (relocated runs).
  size_t tombstones_ = 0;           ///< Deleted buckets still in chains.
  FlatIndexStats stats_;
};

/// Lazy cache of FlatRowIndex instances keyed by (table, column), with
/// accumulated build-cost stats across every index it owns.
class FlatRowIndexManager {
 public:
  const FlatRowIndex& GetOrBuild(const Table* table, size_t column);

  void Clear() { cache_.clear(); }

  /// Drops only the indexes over `table` (relation-scoped invalidation
  /// after a write); returns how many were dropped.
  size_t EraseTable(const Table* table);

  size_t num_indexes() const { return cache_.size(); }

  /// Sum of per-index stats over everything built so far (survives Clear()
  /// is NOT required — counters are harvested into ExecutorStats on build).
  const FlatIndexStats& totals() const { return totals_; }

 private:
  std::unordered_map<std::pair<const Table*, size_t>,
                     std::unique_ptr<FlatRowIndex>, PairHash>
      cache_;
  FlatIndexStats totals_;
};

/// Thread-safe, epoch-aware flat-index tier shared by the workers of one
/// service shard (see service/debug_service.h): one shard = one manager, so
/// arenas are partitioned per shard and no lock is global. Indexes are held
/// behind stable pointers, so the returned reference outlives the lock; the
/// mutex only serializes the map lookup and the (rare) build or patch.
///
/// Invalidation is two-level. The database epoch still clears everything
/// lazily (legacy BumpEpoch between batches). Independently, every entry is
/// stamped with its table's data epoch: LiveMutator patches cached indexes
/// in place under the relation write fence and restamps them, so worker
/// probes stay warm across writes; an entry whose stamp mismatches (a
/// compaction, or a mutation that could not be patched) is rebuilt on the
/// next GetOrBuild. Safe without quiescence because mutating calls run under
/// the exclusive index gate (storage/relation_fences.h) while every probe
/// holds it shared — references never dangle mid-evaluation.
class SharedFlatRowIndexManager {
 public:
  /// The index for (table, column), built on first use. `built` (optional)
  /// is set to whether *this call* built it, so only the building session
  /// accounts the build cost into its ExecutorStats.
  const FlatRowIndex& GetOrBuild(const Table* table, size_t column,
                                 uint64_t epoch, bool* built = nullptr);

  /// In-place patches of every cached index over `table` after one
  /// mutation, restamping them to the table's (already bumped) data epoch.
  /// `old_row` / `old_value` carry pre-mutation values. Return the number
  /// of index patches applied.
  size_t ApplyRowInsert(const Table* table, uint32_t row);
  size_t ApplyRowDelete(const Table* table, uint32_t row,
                        const Tuple& old_row);
  size_t ApplyCellUpdate(const Table* table, uint32_t row, size_t column,
                         const Value& old_value);

  /// Drops the indexes over `table` (used after compaction, where row ids
  /// shift and patching is meaningless); returns how many were dropped.
  size_t EraseTable(const Table* table);

  void Clear();
  size_t num_indexes() const;
  /// Accumulated build-cost stats over every index built (any epoch).
  FlatIndexStats totals() const;

 private:
  struct Entry {
    std::unique_ptr<FlatRowIndex> index;
    uint64_t table_epoch = 0;
  };

  const FlatRowIndex& GetOrBuildLocked(const Table* table, size_t column,
                                       bool* built);

  mutable std::mutex mu_;
  uint64_t epoch_ = 0;  // guarded by mu_
  std::unordered_map<std::pair<const Table*, size_t>, Entry, PairHash>
      cache_;                // guarded by mu_
  FlatIndexStats totals_;    // guarded by mu_; survives epoch clears
};

}  // namespace kwsdbg

#endif  // KWSDBG_SQL_FLAT_ROW_INDEX_H_
