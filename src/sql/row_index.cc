#include "sql/row_index.h"

namespace kwsdbg {

RowIndex RowIndex::Build(const Table& table, size_t column) {
  RowIndex index;
  for (size_t row = 0; row < table.num_rows(); ++row) {
    const Value& v = table.at(row, column);
    if (v.is_null()) continue;
    index.map_[v].push_back(static_cast<uint32_t>(row));
  }
  return index;
}

const std::vector<uint32_t>& RowIndex::Lookup(const Value& v) const {
  if (v.is_null()) return empty_;
  auto it = map_.find(v);
  return it == map_.end() ? empty_ : it->second;
}

const RowIndex& RowIndexManager::GetOrBuild(const Table* table,
                                            size_t column) {
  auto key = std::make_pair(table, column);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    it = cache_
             .emplace(key, std::make_unique<RowIndex>(
                               RowIndex::Build(*table, column)))
             .first;
  }
  return *it->second;
}

}  // namespace kwsdbg
