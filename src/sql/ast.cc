#include "sql/ast.h"

namespace kwsdbg {

namespace {
std::string QuoteSqlString(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') out += "''";
    else out += c;
  }
  out += "'";
  return out;
}

std::string ConjunctToSql(const Conjunct& c) {
  if (const auto* jp = std::get_if<JoinPredicate>(&c)) {
    return jp->left.ToString() + " = " + jp->right.ToString();
  }
  if (const auto* lp = std::get_if<LikePredicate>(&c)) {
    return lp->column.ToString() + " LIKE " + QuoteSqlString(lp->pattern);
  }
  if (const auto* cp = std::get_if<ConstantPredicate>(&c)) {
    return cp->column.ToString() + " = " +
           (cp->is_string ? QuoteSqlString(cp->text) : cp->text);
  }
  const auto& ors = std::get<OrLikes>(c);
  std::string out = "(";
  for (size_t i = 0; i < ors.likes.size(); ++i) {
    if (i > 0) out += " OR ";
    out += ors.likes[i].column.ToString() + " LIKE " +
           QuoteSqlString(ors.likes[i].pattern);
  }
  out += ")";
  return out;
}
}  // namespace

std::string SelectStatement::ToSql() const {
  std::string out = "SELECT ";
  if (count_star) {
    out += "COUNT(*)";
  } else if (select_all) {
    out += "*";
  } else {
    for (size_t i = 0; i < select_list.size(); ++i) {
      if (i > 0) out += ", ";
      out += select_list[i].ToString();
    }
  }
  out += " FROM ";
  for (size_t i = 0; i < from.size(); ++i) {
    if (i > 0) out += ", ";
    out += from[i].table;
    if (!from[i].alias.empty() && from[i].alias != from[i].table) {
      out += " AS " + from[i].alias;
    }
  }
  if (!where.empty()) {
    out += " WHERE ";
    for (size_t i = 0; i < where.size(); ++i) {
      if (i > 0) out += " AND ";
      out += ConjunctToSql(where[i]);
    }
  }
  if (!order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += order_by[i].column.ToString();
      if (order_by[i].descending) out += " DESC";
    }
  }
  if (limit > 0) {
    out += " LIMIT " + std::to_string(limit);
  }
  return out;
}

}  // namespace kwsdbg
