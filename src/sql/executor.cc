#include "sql/executor.h"

#include <algorithm>
#include <functional>

#include "common/fault_injector.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "sql/like_matcher.h"
#include "text/tokenizer.h"

namespace kwsdbg {

namespace {

/// Per-query execution state prepared from the query + database.
struct PreparedVertex {
  const Table* table = nullptr;
  bool has_keyword = false;
  std::string keyword;      // lower-cased
  size_t candidate_count = 0;
};

/// A join constraint from the perspective of one vertex.
struct VertexConstraint {
  uint16_t other;          // the other vertex
  size_t own_column;       // column index in this vertex's table
  size_t other_column;     // column index in the other vertex's table
};

/// Everything Execute/Explain need, resolved once per query.
struct PreparedQuery {
  std::vector<PreparedVertex> vertices;
  std::vector<std::vector<VertexConstraint>> constraints;
  std::vector<std::vector<std::pair<size_t, const Value*>>> selections;
  std::vector<std::vector<std::pair<size_t, const std::string*>>> likes;
  std::vector<uint16_t> order;
  std::vector<bool> order_connected;  // order[i] joined to a prior instance?
};

/// Per-vertex candidate rows for one query. A vertex with no keyword and no
/// selections starts "full" (every row passes trivially) and is only
/// materialized if a semijoin pass reduces it.
struct VertexCandidates {
  bool materialized = false;
  std::vector<uint32_t> rows;   // ascending
  std::vector<uint8_t> bitmap;  // sized num_rows; valid iff materialized
};

/// Adds exec_millis on every exit path, including error returns — the
/// counters must not drift on invalid queries.
struct ExecTimeGuard {
  Timer timer;
  double* acc;
  explicit ExecTimeGuard(double* a) : acc(a) {}
  ~ExecTimeGuard() { *acc += timer.ElapsedMillis(); }
};

/// Harvests the out-of-core I/O this query caused as deltas of the global
/// storage/index counters, on every exit path (like ExecTimeGuard).
struct StorageIoGuard {
  const Database* db;
  const InvertedIndex* index;
  ExecutorStats* stats;
  StorageStats before;
  PostingIoStats posting_before;
  StorageIoGuard(const Database* d, const InvertedIndex* i, ExecutorStats* s)
      : db(d), index(i), stats(s), before(d->storage_stats()),
        posting_before(i != nullptr ? i->io_stats() : PostingIoStats{}) {}
  ~StorageIoGuard() {
    const StorageStats now = db->storage_stats();
    stats->page_hits += now.page_hits - before.page_hits;
    stats->page_reads += now.page_reads - before.page_reads;
    stats->page_evictions += now.page_evictions - before.page_evictions;
    if (index != nullptr) {
      stats->posting_reads +=
          index->io_stats().posting_reads - posting_before.posting_reads;
    }
  }
};

}  // namespace

std::string ResultSet::ToString(size_t max_rows) const {
  std::string out;
  size_t header_width = 0;
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) {
      out += " | ";
      header_width += 3;
    }
    out += columns[i];
    header_width += columns[i].size();
  }
  out += "\n";
  out += std::string(std::min<size_t>(header_width, 120), '-');
  out += "\n";
  size_t shown = 0;
  for (const Tuple& row : rows) {
    if (max_rows != 0 && shown++ >= max_rows) {
      out += "... (" + std::to_string(rows.size() - max_rows) +
             " more rows)\n";
      break;
    }
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += " | ";
      out += row[i].ToString();
    }
    out += "\n";
  }
  out += "(" + std::to_string(rows.size()) + " rows)\n";
  return out;
}

bool Executor::IndexServable(const std::string& keyword) const {
  if (text_index_ == nullptr || !options_.use_text_index) return false;
  // Exactness requires the keyword to be one maximal alphanumeric run: then
  // any case-insensitive '%keyword%' hit lies inside a single token, and
  // the dictionary scan over indexed terms finds exactly those rows.
  const std::vector<std::string> tokens = Tokenize(keyword);
  return tokens.size() == 1 && tokens[0] == keyword;
}

const std::vector<uint32_t>& Executor::InfixTermIds(
    const std::string& keyword) {
  auto it = infix_cache_.find(keyword);
  if (it != infix_cache_.end()) return it->second;
  return infix_cache_
      .emplace(keyword, text_index_->TermIdsContaining(keyword))
      .first->second;
}

const Executor::KeywordMatches& Executor::GetKeywordMatches(
    const Table* table, const std::string& keyword) {
  auto key = std::make_pair(table, keyword);
  auto it = keyword_cache_.find(key);
  if (it != keyword_cache_.end()) return it->second;
  KeywordMatches matches;
  matches.bitmap.assign(table->num_rows(), 0);
  uint32_t tid = IndexServable(keyword) ? text_index_->TableIdOf(table->name())
                                        : InvertedIndex::kNoTable;
  // Degraded mode: a text-index fault (injected, or a future real lookup
  // failure) falls back to the LIKE scan — same rows, more work, no error.
  if (tid != InvertedIndex::kNoTable &&
      FaultPointFires("executor.text_index")) {
    tid = InvertedIndex::kNoTable;
    ++stats_.index_fallbacks;
  }
  if (tid != InvertedIndex::kNoTable) {
    // Posting-list path: union the lists of every term containing the
    // keyword, restricted to this table. Lists are resolved one term id at
    // a time and fully consumed before the next fetch — the contract that
    // keeps references valid when the index serves them from disk.
    ++stats_.posting_hits;
    for (uint32_t term_id : InfixTermIds(keyword)) {
      // Profile-guided skip: the term has no postings in this table, so the
      // fetch (a disk read when spilled) would contribute nothing.
      if (text_index_->ProfileRowCount(term_id, tid) == 0) continue;
      for (const Posting& p : text_index_->PostingsForTermId(term_id)) {
        if (p.table_id != tid) continue;
        if (!matches.bitmap[p.row]) {
          matches.bitmap[p.row] = 1;
          ++matches.count;
        }
      }
    }
  } else {
    // Scan fallback: LIKE '%keyword%' over every text column.
    ++stats_.keyword_scans;
    const std::vector<size_t> text_cols = table->schema().TextColumnIndices();
    for (size_t row = 0; row < table->num_rows(); ++row) {
      for (size_t col : text_cols) {
        const Value& v = table->at(row, col);
        if (v.is_null()) continue;
        if (ContainsCaseInsensitive(v.AsString(), keyword)) {
          matches.bitmap[row] = 1;
          ++matches.count;
          break;
        }
      }
    }
  }
  matches.rows.reserve(matches.count);
  for (size_t row = 0; row < matches.bitmap.size(); ++row) {
    if (matches.bitmap[row]) matches.rows.push_back(static_cast<uint32_t>(row));
  }
  return keyword_cache_.emplace(std::move(key), std::move(matches))
      .first->second;
}

const RowIndex& Executor::GetJoinIndex(const Table* table, size_t column) {
  const size_t before = indexes_.num_indexes();
  const RowIndex& index = indexes_.GetOrBuild(table, column);
  stats_.index_builds += indexes_.num_indexes() - before;
  return index;
}

const FlatRowIndex& Executor::GetFlatIndex(const Table* table,
                                           size_t column) {
  if (options_.shared_flat_indexes != nullptr) {
    // Shard-shared tier: the build cost is charged to whichever session
    // triggered the build; every other session on the shard probes for free.
    bool built = false;
    const FlatRowIndex& index = options_.shared_flat_indexes->GetOrBuild(
        table, column, cache_epoch_, &built);
    if (built) {
      ++stats_.index_builds;
      stats_.index_build_millis += index.stats().build_millis;
      stats_.arena_bytes += index.stats().arena_bytes;
    }
    return index;
  }
  const size_t before = flat_indexes_.num_indexes();
  const FlatRowIndex& index = flat_indexes_.GetOrBuild(table, column);
  if (flat_indexes_.num_indexes() != before) {
    ++stats_.index_builds;
    stats_.index_build_millis += index.stats().build_millis;
    stats_.arena_bytes += index.stats().arena_bytes;
  }
  return index;
}

RowSpan Executor::ProbeJoinIndex(const Table* table, size_t column,
                                 const Value& v) {
  if (options_.flat_index) {
    ++stats_.flat_probes;
    return GetFlatIndex(table, column).Lookup(v);
  }
  return RowSpan::Of(GetJoinIndex(table, column).Lookup(v));
}

void Executor::ClearCaches() {
  indexes_.Clear();
  flat_indexes_.Clear();
  keyword_cache_.clear();
  infix_cache_.clear();
  table_cache_epochs_.clear();
}

namespace {

/// Chooses the instance order: start at the smallest candidate set, then
/// repeatedly take the connected unplaced instance with the fewest
/// candidates (disconnected queries fall back to the globally smallest —
/// a cross product, which the KWS-S system never generates but the shell
/// may).
void ChooseOrder(PreparedQuery* pq) {
  const size_t n = pq->vertices.size();
  std::vector<bool> placed(n, false);
  size_t first = 0;
  for (size_t i = 1; i < n; ++i) {
    if (pq->vertices[i].candidate_count <
        pq->vertices[first].candidate_count) {
      first = i;
    }
  }
  pq->order.push_back(static_cast<uint16_t>(first));
  pq->order_connected.push_back(false);
  placed[first] = true;
  while (pq->order.size() < n) {
    int best = -1;
    bool best_connected = false;
    for (size_t i = 0; i < n; ++i) {
      if (placed[i]) continue;
      bool connected = false;
      for (const VertexConstraint& vc : pq->constraints[i]) {
        if (placed[vc.other]) {
          connected = true;
          break;
        }
      }
      const bool better =
          best < 0 || (connected && !best_connected) ||
          (connected == best_connected &&
           pq->vertices[i].candidate_count <
               pq->vertices[best].candidate_count);
      if (better) {
        best = static_cast<int>(i);
        best_connected = connected;
      }
    }
    pq->order.push_back(static_cast<uint16_t>(best));
    pq->order_connected.push_back(best_connected);
    placed[best] = true;
  }
}

/// Resolves names to indexes, computes candidate counts, and picks the
/// instance order. `keyword_count` reports how many rows of a table match a
/// keyword (backed by the executor's match-set cache).
StatusOr<PreparedQuery> PrepareQuery(
    const JoinNetworkQuery& query, const Database& db,
    const std::function<size_t(const Table*, const std::string&)>&
        keyword_count) {
  KWSDBG_RETURN_NOT_OK(query.Validate(db));
  const size_t n = query.vertices.size();
  PreparedQuery pq;
  pq.vertices.resize(n);
  pq.constraints.resize(n);
  pq.selections.resize(n);
  pq.likes.resize(n);
  for (size_t i = 0; i < n; ++i) {
    PreparedVertex& pv = pq.vertices[i];
    pv.table = db.FindTable(query.vertices[i].table);
    // Non-null: Validate() above resolved every vertex table via GetTable.
    KWSDBG_CHECK(pv.table != nullptr);

    if (!query.vertices[i].keyword.empty()) {
      pv.has_keyword = true;
      pv.keyword = ToLower(query.vertices[i].keyword);
      pv.candidate_count = keyword_count(pv.table, pv.keyword);
    } else {
      pv.candidate_count = pv.table->num_rows();
    }
  }
  for (const QueryJoin& j : query.joins) {
    KWSDBG_ASSIGN_OR_RETURN(
        size_t lcol,
        pq.vertices[j.left].table->schema().ColumnIndex(j.left_column));
    KWSDBG_ASSIGN_OR_RETURN(
        size_t rcol,
        pq.vertices[j.right].table->schema().ColumnIndex(j.right_column));
    pq.constraints[j.left].push_back(VertexConstraint{j.right, lcol, rcol});
    pq.constraints[j.right].push_back(VertexConstraint{j.left, rcol, lcol});
  }
  for (const QuerySelection& sel : query.selections) {
    KWSDBG_ASSIGN_OR_RETURN(
        size_t col,
        pq.vertices[sel.vertex].table->schema().ColumnIndex(sel.column));
    pq.selections[sel.vertex].emplace_back(col, &sel.value);
  }
  for (const QueryLikeSelection& like : query.like_selections) {
    KWSDBG_ASSIGN_OR_RETURN(
        size_t col,
        pq.vertices[like.vertex].table->schema().ColumnIndex(like.column));
    pq.likes[like.vertex].emplace_back(col, &like.pattern);
  }
  ChooseOrder(&pq);
  return pq;
}

}  // namespace

StatusOr<bool> Executor::RunJoin(const JoinNetworkQuery& query, size_t limit,
                                 ResultSet* out) {
  ++stats_.queries_executed;
  ExecTimeGuard time_guard(&stats_.exec_millis);
  StorageIoGuard io_guard(db_, text_index_, &stats_);
  // Out-of-core mode: some table (or the index) serves from disk. Two
  // behavioral changes hang off this flag — `const Value&` references that
  // straddle an unbounded index build are copied, and candidate sourcing
  // runs most-selective-first — both no-ops for resident databases, keeping
  // the in-memory hot path byte-identical to the previous engine.
  spill_mode_ =
      db_->AnySpilled() || (text_index_ != nullptr && text_index_->spilled());
  // Session caches (join indexes, keyword match sets) describe one database
  // state; a mutation + BumpEpoch() between queries makes them stale, so a
  // long-lived session (e.g. a service worker) drops them here instead of
  // serving rows that no longer exist.
  if (db_->epoch() != cache_epoch_) {
    ClearCaches();
    cache_epoch_ = db_->epoch();
  }
  // Relation-scoped invalidation (live writes): a LiveMutator bumps only the
  // written table's data epoch, so drop only that table's match sets and
  // join indexes — every other table's caches stay warm. Must run before
  // PrepareQuery, whose candidate counting already reads the caches.
  if (text_index_ != nullptr && text_index_->version() != index_version_) {
    // A vocabulary change re-finalized the dictionary: cached term ids are
    // meaningless (row match sets keyed by table stay valid — the mutated
    // table's are dropped below via its data epoch).
    infix_cache_.clear();
    index_version_ = text_index_->version();
  }
  for (const QueryVertex& qv : query.vertices) {
    const Table* t = db_->FindTable(qv.table);
    if (t == nullptr) continue;  // Validate() in PrepareQuery reports it.
    auto [it, inserted] = table_cache_epochs_.try_emplace(t, t->data_epoch());
    if (!inserted && it->second != t->data_epoch()) {
      for (auto kit = keyword_cache_.begin(); kit != keyword_cache_.end();) {
        if (kit->first.first == t) {
          kit = keyword_cache_.erase(kit);
        } else {
          ++kit;
        }
      }
      indexes_.EraseTable(t);
      flat_indexes_.EraseTable(t);
      it->second = t->data_epoch();
    }
  }
  // Deadline polling: once at entry (cheap rejection of work already past
  // its budget) and every kCancelCheckStride probed rows inside the
  // backtracking loop — the only place a single query's work is unbounded.
  constexpr size_t kCancelCheckStride = 1024;
  // Batched probe pipeline (engine v3): windows of kPrefetchWindow probe
  // keys are hashed and their buckets prefetched before the window drains,
  // engaged only on loops with at least kBatchMinProbes candidates —
  // below that the window never leaves L1 anyway.
  constexpr size_t kPrefetchWindow = 16;
  constexpr size_t kBatchMinProbes = 32;
  auto deadline_fired = [this] {
    if (options_.cancellation == nullptr || !options_.cancellation->Expired())
      return false;
    ++stats_.deadline_aborts;
    return true;
  };
  if (deadline_fired()) {
    return Status::DeadlineExceeded("query cancelled before execution");
  }
  auto keyword_count = [this](const Table* table,
                              const std::string& kw) -> size_t {
    // Spilled index: plan from the RAM-resident selectivity profile instead
    // of materializing the match set (which costs posting I/O). The profile
    // sum is an upper bound — exact when zero, which is what the fast-reject
    // below relies on; the true set is only materialized for the vertices
    // that survive, cheapest first.
    if (spill_mode_ && text_index_ != nullptr && text_index_->spilled() &&
        options_.use_text_index && IndexServable(kw)) {
      return text_index_->EstimatedInfixRows(kw, table->name());
    }
    return GetKeywordMatches(table, kw).count;
  };
  KWSDBG_ASSIGN_OR_RETURN(PreparedQuery pq,
                          PrepareQuery(query, *db_, keyword_count));
  const size_t n = pq.vertices.size();

  if (out != nullptr) {
    for (size_t i = 0; i < n; ++i) {
      for (const Column& col : pq.vertices[i].table->schema().columns()) {
        out->columns.push_back(query.vertices[i].alias + "." + col.name);
      }
    }
  }

  // Fast reject: a bound instance with zero matching rows.
  for (const PreparedVertex& pv : pq.vertices) {
    if (pv.candidate_count == 0) return false;
  }

  // --- Stage 1: candidate sourcing ---------------------------------------
  // Materialize the candidate rows of every vertex with any per-row filter
  // (keyword containment, constant selections, column LIKEs); unfiltered
  // vertices stay "full" until a semijoin pass touches them.
  std::vector<VertexCandidates> cand(n);
  // Selectivity-first sourcing: under spill, materialize the cheapest
  // vertex (by profile estimate) first, so a network killed by an empty
  // filter dies on the least posting/page I/O. Resident databases keep
  // vertex order — their match sets were already built during planning, so
  // reordering would change nothing but is kept off to leave the in-memory
  // engine untouched.
  std::vector<uint16_t> source_order(n);
  for (size_t v = 0; v < n; ++v) source_order[v] = static_cast<uint16_t>(v);
  if (spill_mode_) {
    std::stable_sort(source_order.begin(), source_order.end(),
                     [&](uint16_t a, uint16_t b) {
                       return pq.vertices[a].candidate_count <
                              pq.vertices[b].candidate_count;
                     });
  }
  for (uint16_t v : source_order) {
    const PreparedVertex& pv = pq.vertices[v];
    const bool filtered =
        pv.has_keyword || !pq.selections[v].empty() || !pq.likes[v].empty();
    if (!filtered) continue;
    // Table/row access is about to scan this vertex's table.
    KWSDBG_FAULT_POINT("storage.table.read");
    VertexCandidates& c = cand[v];
    c.materialized = true;
    c.bitmap.assign(pv.table->num_rows(), 0);
    auto residual_ok = [&](uint32_t row) {
      for (const auto& [col, value] : pq.selections[v]) {
        if (!pv.table->at(row, col).SqlEquals(*value)) return false;
      }
      for (const auto& [col, pattern] : pq.likes[v]) {
        const Value& cell = pv.table->at(row, col);
        if (cell.is_null() || !LikeMatch(*pattern, cell.AsString())) {
          return false;
        }
      }
      return true;
    };
    if (pv.has_keyword) {
      for (uint32_t row : GetKeywordMatches(pv.table, pv.keyword).rows) {
        if (!residual_ok(row)) continue;
        c.bitmap[row] = 1;
        c.rows.push_back(row);
      }
    } else {
      const uint32_t num_rows = static_cast<uint32_t>(pv.table->num_rows());
      for (uint32_t row = 0; row < num_rows; ++row) {
        if (pv.table->deleted(row)) continue;  // tombstoned rows are gone
        if (!residual_ok(row)) continue;
        c.bitmap[row] = 1;
        c.rows.push_back(row);
      }
    }
    if (c.rows.empty()) return false;  // a filter matched nothing
  }

  // --- Stage 2: semijoin pre-reduction -----------------------------------
  // Intersect each vertex's candidates against its neighbors' join-column
  // value sets. Only removes rows that can never appear in a result, so
  // emitted rows and their order are untouched; a set running empty proves
  // the whole network dead without enumerating a single join path.
  // Degraded mode: a semijoin fault skips the pre-reduction pass and runs
  // the plain backtracking join — the pass only removes rows that can never
  // appear in a result, so skipping it changes cost, never the outcome.
  bool semijoin_enabled = options_.semijoin_reduction && n > 1;
  if (semijoin_enabled && FaultPointFires("executor.semijoin")) {
    semijoin_enabled = false;
    ++stats_.semijoin_fallbacks;
  }
  if (semijoin_enabled) {
    // Filtering costs one hash lookup per candidate row per constraint, and
    // a large set almost never runs empty — the payoff of the pass. Capping
    // the filtered-set size keeps nearly all eliminations at a fraction of
    // the lookups.
    constexpr size_t kSemijoinFilterCap = 1024;
    // Unions over a neighbor's values pay one hash lookup per neighbor row;
    // the sets that go on to kill a network are far smaller than this.
    constexpr size_t kSemijoinUnionCap = 64;
    auto same_type = [&](const VertexConstraint& vc, size_t v) {
      return pq.vertices[v].table->schema().columns()[vc.own_column].type ==
             pq.vertices[vc.other]
                 .table->schema()
                 .columns()[vc.other_column]
                 .type;
    };
    bool changed = true;
    for (int pass = 0; pass < 2 && changed; ++pass) {
      changed = false;
      for (size_t v = 0; v < n; ++v) {
        for (const VertexConstraint& vc : pq.constraints[v]) {
          // RowIndex lookups use structural equality; restrict the pass to
          // same-type column pairs so SqlEquals semantics (int==double)
          // are never narrowed.
          if (!same_type(vc, v)) continue;
          VertexCandidates& cu = cand[v];
          const VertexCandidates& cv = cand[vc.other];
          const PreparedVertex& pu = pq.vertices[v];
          const PreparedVertex& pw = pq.vertices[vc.other];
          if (!cu.materialized && !cv.materialized) continue;
          if (!cu.materialized) {
            // Full vertex reduced by a materialized neighbor: its surviving
            // rows are the union of index lookups on the neighbor's values.
            // Only pay for this when the neighbor is small and selective —
            // the union is then a handful of lookups, and the work stays
            // proportional to the hits, never to the table.
            if (cv.rows.size() > kSemijoinUnionCap ||
                cv.rows.size() * 4 >= pu.table->num_rows()) {
              continue;
            }
            KWSDBG_FAULT_POINT("executor.index.build");
            std::vector<uint32_t> hits;
            for (uint32_t nrow : cv.rows) {
              RowSpan matched;
              if (spill_mode_) {
                // The probe may lazily build an index over pu.table — an
                // unbounded scan that can evict the page frame a reference
                // into pw.table points at. Copy the key first.
                const Value val = pw.table->at(nrow, vc.other_column);
                matched = ProbeJoinIndex(pu.table, vc.own_column, val);
              } else {
                const Value& val = pw.table->at(nrow, vc.other_column);
                matched = ProbeJoinIndex(pu.table, vc.own_column, val);
              }
              hits.insert(hits.end(), matched.begin(), matched.end());
            }
            std::sort(hits.begin(), hits.end());
            hits.erase(std::unique(hits.begin(), hits.end()), hits.end());
            cu.bitmap.assign(pu.table->num_rows(), 0);
            for (uint32_t row : hits) cu.bitmap[row] = 1;
            cu.rows = std::move(hits);
            cu.materialized = true;
            stats_.rows_filtered += pu.table->num_rows() - cu.rows.size();
            changed = true;
          } else {
            // Filtering against a full neighbor only catches dangling join
            // keys — one hash lookup per row for a near-certain match — so
            // reduce only against materialized (already selective) ones.
            if (!cv.materialized) continue;
            if (cu.rows.size() > kSemijoinFilterCap) continue;
            KWSDBG_FAULT_POINT("executor.index.build");
            std::vector<uint32_t> kept;
            kept.reserve(cu.rows.size());
            // One probe per candidate row — the batched pipeline's home
            // turf. Windows are drained strictly in order, so `kept` (and
            // every downstream verdict) is byte-identical with batching
            // off; the prefetches only warm the cache.
            const FlatRowIndex* flat =
                options_.flat_index ? &GetFlatIndex(pw.table, vc.other_column)
                                    : nullptr;
            const RowIndex* legacy =
                options_.flat_index ? nullptr
                                    : &GetJoinIndex(pw.table, vc.other_column);
            const bool batched = flat != nullptr && options_.batched_probe &&
                                 cu.rows.size() >= kBatchMinProbes;
            uint64_t win_hash[kPrefetchWindow];
            for (size_t base = 0; base < cu.rows.size();
                 base += kPrefetchWindow) {
              const size_t w =
                  std::min(kPrefetchWindow, cu.rows.size() - base);
              if (batched) {
                ++stats_.prefetch_batches;
                for (size_t j = 0; j < w; ++j) {
                  const Value& val =
                      pu.table->at(cu.rows[base + j], vc.own_column);
                  if (val.is_null()) continue;
                  win_hash[j] = val.Hash64();
                  flat->PrefetchBucket(win_hash[j]);
                }
              }
              for (size_t j = 0; j < w; ++j) {
                const uint32_t row = cu.rows[base + j];
                const Value& val = pu.table->at(row, vc.own_column);
                RowSpan matched;
                if (flat != nullptr) {
                  ++stats_.flat_probes;
                  if (!val.is_null()) {
                    matched = batched ? flat->LookupHashed(win_hash[j], val)
                                      : flat->Lookup(val);
                  }
                } else {
                  matched = RowSpan::Of(legacy->Lookup(val));
                }
                bool match = false;
                for (uint32_t nrow : matched) {
                  if (cv.bitmap[nrow]) {
                    match = true;
                    break;
                  }
                }
                if (match) {
                  kept.push_back(row);
                } else {
                  cu.bitmap[row] = 0;
                }
              }
            }
            if (kept.size() != cu.rows.size()) {
              stats_.rows_filtered += cu.rows.size() - kept.size();
              cu.rows = std::move(kept);
              changed = true;
            }
          }
          if (cu.rows.empty()) {
            ++stats_.semijoin_eliminations;
            return false;
          }
        }
      }
    }
  }

  if (deadline_fired()) {
    return Status::DeadlineExceeded("query cancelled after pre-reduction");
  }
  KWSDBG_FAULT_POINT("executor.join.probe");

  // --- Stage 3: backtracking join over the chosen order ------------------
  std::vector<uint32_t> assignment(n, 0);
  std::vector<bool> assigned(n, false);
  bool found = false;

  auto emit = [&]() {
    Tuple row;
    for (size_t i = 0; i < n; ++i) {
      const Tuple& src = pq.vertices[i].table->row(assignment[i]);
      row.insert(row.end(), src.begin(), src.end());
    }
    out->rows.push_back(std::move(row));
    ++stats_.rows_output;
  };

  // Checks all constraints of `v` against already-assigned vertices except
  // the specific one used for the index probe (`skip_constraint` is an
  // index into pq.constraints[v], or -1). Skipping by constraint — not by
  // the probed vertex — keeps every predicate of a composite or parallel
  // edge enforced.
  auto check_constraints = [&](size_t v, uint32_t row, int skip_constraint) {
    const std::vector<VertexConstraint>& vcs = pq.constraints[v];
    for (size_t ci = 0; ci < vcs.size(); ++ci) {
      if (static_cast<int>(ci) == skip_constraint) continue;
      const VertexConstraint& vc = vcs[ci];
      if (!assigned[vc.other]) continue;
      const Value& own = pq.vertices[v].table->at(row, vc.own_column);
      const Value& other = pq.vertices[vc.other].table->at(
          assignment[vc.other], vc.other_column);
      if (!own.SqlEquals(other)) return false;
    }
    return true;
  };

  // Iterative depth-first search to avoid recursion-depth concerns and to
  // allow clean early exit on `limit` / the first existence witness.
  struct Frame {
    RowSpan candidates;           // probe/candidate rows (use_candidates)
    bool use_candidates = false;  // false: enumerate the whole table
    uint32_t next_pos = 0;        // position in candidates/rows
    // Batched child-probe prefetch: set when the next depth will index-probe
    // on a key column of this frame's table, so every candidate row here
    // determines one upcoming bucket — prefetched a window ahead.
    const FlatRowIndex* child_index = nullptr;
    size_t child_key_col = 0;
    uint32_t prefetch_pos = 0;
  };
  std::vector<Frame> stack(n);
  // Index into pq.constraints[v] of the constraint the frame's index probe
  // satisfied (-1 = no probe).
  std::vector<int> probe_constraint(n, -1);
  size_t depth = 0;
  bool done = false;

  auto init_frame = [&](size_t d) {
    const uint16_t v = pq.order[d];
    Frame& f = stack[d];
    f.next_pos = 0;
    f.candidates = RowSpan{};
    f.use_candidates = false;
    f.child_index = nullptr;
    f.prefetch_pos = 0;
    probe_constraint[d] = -1;
    // Prefer an index probe on a constraint to an assigned vertex.
    const std::vector<VertexConstraint>& vcs = pq.constraints[v];
    for (size_t ci = 0; ci < vcs.size(); ++ci) {
      const VertexConstraint& vc = vcs[ci];
      if (!assigned[vc.other]) continue;
      if (spill_mode_) {
        // Same copy rule as the semijoin union: the probe may trigger an
        // index build over this vertex's table, invalidating a page-frame
        // reference into the neighbor's.
        const Value probe = pq.vertices[vc.other].table->at(
            assignment[vc.other], vc.other_column);
        f.candidates = ProbeJoinIndex(pq.vertices[v].table, vc.own_column,
                                      probe);
      } else {
        const Value& probe = pq.vertices[vc.other].table->at(
            assignment[vc.other], vc.other_column);
        f.candidates = ProbeJoinIndex(pq.vertices[v].table, vc.own_column,
                                      probe);
      }
      f.use_candidates = true;
      probe_constraint[d] = static_cast<int>(ci);
      break;
    }
    // No assigned neighbor (root or disconnected component): enumerate the
    // materialized candidate list instead of scanning the table.
    if (!f.use_candidates && cand[v].materialized) {
      f.candidates = RowSpan::Of(cand[v].rows);
      f.use_candidates = true;
    }
    const size_t count = f.use_candidates
                             ? f.candidates.size()
                             : pq.vertices[v].table->num_rows();
    if (options_.flat_index && options_.batched_probe && d + 1 < n &&
        count >= kBatchMinProbes) {
      // The next depth's probe constraint is deterministic: init_frame(d+1)
      // picks the first constraint of order[d+1] whose other side lies in
      // the prefix order[0..d]. When that other side is *this* vertex, each
      // candidate row here keys the child's index probe, so its bucket can
      // be prefetched a window ahead. (When it is an earlier vertex the key
      // is constant across this frame — nothing to pipeline.)
      const uint16_t child = pq.order[d + 1];
      for (const VertexConstraint& vc : pq.constraints[child]) {
        bool in_prefix = false;
        for (size_t k = 0; k <= d && !in_prefix; ++k) {
          in_prefix = pq.order[k] == vc.other;
        }
        if (!in_prefix) continue;
        if (vc.other == v) {
          f.child_index =
              &GetFlatIndex(pq.vertices[child].table, vc.own_column);
          f.child_key_col = vc.other_column;
        }
        break;  // first in-prefix constraint is the probe; done either way
      }
    }
  };

  init_frame(0);

  while (!done) {
    const uint16_t v = pq.order[depth];
    Frame& f = stack[depth];
    bool advanced = false;
    const size_t table_rows = pq.vertices[v].table->num_rows();
    const size_t frame_rows =
        f.use_candidates ? f.candidates.size() : table_rows;
    while (true) {
      if (f.next_pos >= frame_rows) break;
      const uint32_t row =
          f.use_candidates ? f.candidates[f.next_pos++] : f.next_pos++;
      if (f.child_index != nullptr) {
        // Keep the child-probe window kPrefetchWindow keys ahead of the
        // cursor: hash the join key of upcoming candidates and prefetch the
        // child bucket each will probe on descent.
        const bool window_open = f.prefetch_pos == 0;
        const size_t horizon =
            std::min(frame_rows, f.next_pos + kPrefetchWindow);
        while (f.prefetch_pos < horizon) {
          const uint32_t pr = f.use_candidates ? f.candidates[f.prefetch_pos]
                                               : f.prefetch_pos;
          ++f.prefetch_pos;
          const Value& key =
              pq.vertices[v].table->at(pr, f.child_key_col);
          if (!key.is_null()) f.child_index->PrefetchBucket(key.Hash64());
        }
        if (window_open) ++stats_.prefetch_batches;
      }
      ++stats_.rows_probed;
      if (stats_.rows_probed % kCancelCheckStride == 0) {
        if (deadline_fired()) {
          return Status::DeadlineExceeded("query cancelled mid-probe");
        }
        KWSDBG_FAULT_POINT("executor.join.probe");
      }
      if (cand[v].materialized && !cand[v].bitmap[row]) continue;
      // Full-table enumeration sees tombstoned rows; every other source
      // (match sets, candidate lists, patched join indexes) excludes them.
      if (!f.use_candidates && pq.vertices[v].table->deleted(row)) continue;
      if (!check_constraints(v, row, probe_constraint[depth])) continue;
      assignment[v] = row;
      assigned[v] = true;
      if (depth + 1 == n) {
        found = true;
        if (out == nullptr) {  // existence mode: first witness suffices
          done = true;
          break;
        }
        emit();
        assigned[v] = false;
        if (limit != 0 && out->rows.size() >= limit) {
          done = true;
        }
        if (done) break;
        continue;  // try next candidate at this depth
      }
      ++depth;
      init_frame(depth);
      advanced = true;
      break;
    }
    if (done) break;
    if (!advanced) {
      if (depth == 0) break;
      --depth;
      assigned[pq.order[depth]] = false;
    }
  }

  return found;
}

StatusOr<ResultSet> Executor::Execute(const JoinNetworkQuery& query,
                                      size_t limit) {
  ResultSet result;
  KWSDBG_RETURN_NOT_OK(RunJoin(query, limit, &result).status());
  return result;
}

StatusOr<bool> Executor::IsNonEmpty(const JoinNetworkQuery& query) {
  ++stats_.existence_probes;
  return RunJoin(query, /*limit=*/1, /*out=*/nullptr);
}

StatusOr<std::string> Executor::Explain(const JoinNetworkQuery& query) {
  auto keyword_count = [this](const Table* table, const std::string& kw) {
    return GetKeywordMatches(table, kw).count;
  };
  KWSDBG_ASSIGN_OR_RETURN(PreparedQuery pq,
                          PrepareQuery(query, *db_, keyword_count));
  std::string out = "plan:\n";
  for (size_t d = 0; d < pq.order.size(); ++d) {
    const uint16_t v = pq.order[d];
    const PreparedVertex& pv = pq.vertices[v];
    out += "  " + std::to_string(d + 1) + ". " + query.vertices[v].alias +
           " (" + query.vertices[v].table + ", ~" +
           std::to_string(pv.candidate_count) + " candidate rows)";
    if (d == 0) {
      if (!pv.has_keyword) {
        out += " via full scan";
      } else if (IndexServable(pv.keyword)) {
        out += " via posting lists for '" + pv.keyword + "'";
      } else {
        out += " via keyword scan '" + pv.keyword + "'";
      }
    } else if (pq.order_connected[d]) {
      out += " via index probe on a join column";
    } else {
      out += " via cross product (no join to prior instances)";
    }
    if (!pq.selections[v].empty() || !pq.likes[v].empty()) {
      out += ", +" +
             std::to_string(pq.selections[v].size() + pq.likes[v].size()) +
             " residual filter(s)";
    }
    if (d > 0 && pv.has_keyword) {
      out += ", keyword filter '" + pv.keyword + "'";
    }
    out += "\n";
  }
  return out;
}

}  // namespace kwsdbg
