#include "sql/executor.h"

#include <algorithm>
#include <functional>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "sql/like_matcher.h"

namespace kwsdbg {

namespace {

/// Per-query execution state prepared from the query + database.
struct PreparedVertex {
  const Table* table = nullptr;
  bool has_keyword = false;
  std::string keyword;      // lower-cased
  size_t candidate_count = 0;
};

/// A join constraint from the perspective of one vertex.
struct VertexConstraint {
  uint16_t other;          // the other vertex
  size_t own_column;       // column index in this vertex's table
  size_t other_column;     // column index in the other vertex's table
};

/// Everything Execute/Explain need, resolved once per query.
struct PreparedQuery {
  std::vector<PreparedVertex> vertices;
  std::vector<std::vector<VertexConstraint>> constraints;
  std::vector<std::vector<std::pair<size_t, const Value*>>> selections;
  std::vector<std::vector<std::pair<size_t, const std::string*>>> likes;
  std::vector<uint16_t> order;
  std::vector<bool> order_connected;  // order[i] joined to a prior instance?
};

}  // namespace

std::string ResultSet::ToString(size_t max_rows) const {
  std::string out;
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out += " | ";
    out += columns[i];
  }
  out += "\n";
  out += std::string(std::min<size_t>(out.size(), 120), '-');
  out += "\n";
  size_t shown = 0;
  for (const Tuple& row : rows) {
    if (max_rows != 0 && shown++ >= max_rows) {
      out += "... (" + std::to_string(rows.size() - max_rows) +
             " more rows)\n";
      break;
    }
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += " | ";
      out += row[i].ToString();
    }
    out += "\n";
  }
  out += "(" + std::to_string(rows.size()) + " rows)\n";
  return out;
}

const Executor::KeywordMatches& Executor::GetKeywordMatches(
    const Table* table, const std::string& keyword) {
  auto key = std::make_pair(table, keyword);
  auto it = keyword_cache_.find(key);
  if (it != keyword_cache_.end()) return it->second;
  ++stats_.keyword_scans;
  KeywordMatches matches;
  matches.bitmap.assign(table->num_rows(), 0);
  const std::vector<size_t> text_cols = table->schema().TextColumnIndices();
  for (size_t row = 0; row < table->num_rows(); ++row) {
    for (size_t col : text_cols) {
      const Value& v = table->at(row, col);
      if (v.is_null()) continue;
      if (ContainsCaseInsensitive(v.AsString(), keyword)) {
        matches.bitmap[row] = 1;
        ++matches.count;
        break;
      }
    }
  }
  return keyword_cache_.emplace(std::move(key), std::move(matches))
      .first->second;
}

void Executor::ClearCaches() {
  indexes_.Clear();
  keyword_cache_.clear();
}

namespace {

/// Chooses the instance order: start at the smallest candidate set, then
/// repeatedly take the connected unplaced instance with the fewest
/// candidates (disconnected queries fall back to the globally smallest —
/// a cross product, which the KWS-S system never generates but the shell
/// may).
void ChooseOrder(PreparedQuery* pq) {
  const size_t n = pq->vertices.size();
  std::vector<bool> placed(n, false);
  size_t first = 0;
  for (size_t i = 1; i < n; ++i) {
    if (pq->vertices[i].candidate_count <
        pq->vertices[first].candidate_count) {
      first = i;
    }
  }
  pq->order.push_back(static_cast<uint16_t>(first));
  pq->order_connected.push_back(false);
  placed[first] = true;
  while (pq->order.size() < n) {
    int best = -1;
    bool best_connected = false;
    for (size_t i = 0; i < n; ++i) {
      if (placed[i]) continue;
      bool connected = false;
      for (const VertexConstraint& vc : pq->constraints[i]) {
        if (placed[vc.other]) {
          connected = true;
          break;
        }
      }
      const bool better =
          best < 0 || (connected && !best_connected) ||
          (connected == best_connected &&
           pq->vertices[i].candidate_count <
               pq->vertices[best].candidate_count);
      if (better) {
        best = static_cast<int>(i);
        best_connected = connected;
      }
    }
    pq->order.push_back(static_cast<uint16_t>(best));
    pq->order_connected.push_back(best_connected);
    placed[best] = true;
  }
}

/// Resolves names to indexes, computes candidate counts, and picks the
/// instance order. `keyword_count` reports how many rows of a table match a
/// keyword (backed by the executor's scan cache).
StatusOr<PreparedQuery> PrepareQuery(
    const JoinNetworkQuery& query, const Database& db,
    const std::function<size_t(const Table*, const std::string&)>&
        keyword_count) {
  KWSDBG_RETURN_NOT_OK(query.Validate(db));
  const size_t n = query.vertices.size();
  PreparedQuery pq;
  pq.vertices.resize(n);
  pq.constraints.resize(n);
  pq.selections.resize(n);
  pq.likes.resize(n);
  for (size_t i = 0; i < n; ++i) {
    PreparedVertex& pv = pq.vertices[i];
    pv.table = db.FindTable(query.vertices[i].table);

    if (!query.vertices[i].keyword.empty()) {
      pv.has_keyword = true;
      pv.keyword = ToLower(query.vertices[i].keyword);
      pv.candidate_count = keyword_count(pv.table, pv.keyword);
    } else {
      pv.candidate_count = pv.table->num_rows();
    }
  }
  for (const QueryJoin& j : query.joins) {
    KWSDBG_ASSIGN_OR_RETURN(
        size_t lcol,
        pq.vertices[j.left].table->schema().ColumnIndex(j.left_column));
    KWSDBG_ASSIGN_OR_RETURN(
        size_t rcol,
        pq.vertices[j.right].table->schema().ColumnIndex(j.right_column));
    pq.constraints[j.left].push_back(VertexConstraint{j.right, lcol, rcol});
    pq.constraints[j.right].push_back(VertexConstraint{j.left, rcol, lcol});
  }
  for (const QuerySelection& sel : query.selections) {
    KWSDBG_ASSIGN_OR_RETURN(
        size_t col,
        pq.vertices[sel.vertex].table->schema().ColumnIndex(sel.column));
    pq.selections[sel.vertex].emplace_back(col, &sel.value);
  }
  for (const QueryLikeSelection& like : query.like_selections) {
    KWSDBG_ASSIGN_OR_RETURN(
        size_t col,
        pq.vertices[like.vertex].table->schema().ColumnIndex(like.column));
    pq.likes[like.vertex].emplace_back(col, &like.pattern);
  }
  ChooseOrder(&pq);
  return pq;
}

}  // namespace

StatusOr<ResultSet> Executor::Execute(const JoinNetworkQuery& query,
                                      size_t limit) {
  Timer timer;
  ++stats_.queries_executed;
  auto keyword_count = [this](const Table* table, const std::string& kw) {
    return GetKeywordMatches(table, kw).count;
  };
  KWSDBG_ASSIGN_OR_RETURN(PreparedQuery pq,
                          PrepareQuery(query, *db_, keyword_count));
  const size_t n = pq.vertices.size();

  ResultSet result;
  for (size_t i = 0; i < n; ++i) {
    for (const Column& col : pq.vertices[i].table->schema().columns()) {
      result.columns.push_back(query.vertices[i].alias + "." + col.name);
    }
  }

  // Fast reject: a bound instance with zero matching rows.
  for (const PreparedVertex& pv : pq.vertices) {
    if (pv.candidate_count == 0) {
      stats_.exec_millis += timer.ElapsedMillis();
      return result;
    }
  }

  // Backtracking join over the chosen order.
  std::vector<uint32_t> assignment(n, 0);
  std::vector<bool> assigned(n, false);

  auto emit = [&]() {
    Tuple row;
    for (size_t i = 0; i < n; ++i) {
      const Tuple& src = pq.vertices[i].table->row(assignment[i]);
      row.insert(row.end(), src.begin(), src.end());
    }
    result.rows.push_back(std::move(row));
    ++stats_.rows_output;
  };

  // Checks all constraints of `v` against already-assigned vertices except
  // the one used for the index probe (`skip_other`, or -1).
  auto check_constraints = [&](size_t v, uint32_t row, int skip_other) {
    for (const VertexConstraint& vc : pq.constraints[v]) {
      if (!assigned[vc.other]) continue;
      if (skip_other >= 0 && vc.other == static_cast<uint16_t>(skip_other)) {
        continue;
      }
      const Value& own = pq.vertices[v].table->at(row, vc.own_column);
      const Value& other = pq.vertices[vc.other].table->at(
          assignment[vc.other], vc.other_column);
      if (!own.SqlEquals(other)) return false;
    }
    return true;
  };

  auto row_ok = [&](size_t v, uint32_t row) {
    if (pq.vertices[v].has_keyword &&
        GetKeywordMatches(pq.vertices[v].table, pq.vertices[v].keyword)
                .bitmap[row] == 0) {
      return false;
    }
    for (const auto& [col, value] : pq.selections[v]) {
      if (!pq.vertices[v].table->at(row, col).SqlEquals(*value)) return false;
    }
    for (const auto& [col, pattern] : pq.likes[v]) {
      const Value& cell = pq.vertices[v].table->at(row, col);
      if (cell.is_null() || !LikeMatch(*pattern, cell.AsString())) {
        return false;
      }
    }
    return true;
  };

  // Iterative depth-first search to avoid recursion-depth concerns and to
  // allow clean early exit on `limit`.
  struct Frame {
    const std::vector<uint32_t>* candidates;  // index-probe result, or null
    uint32_t next_pos = 0;                    // position in candidates/rows
  };
  std::vector<Frame> stack(n);
  std::vector<int> probe_other(n, -1);  // vertex the index probe satisfied
  size_t depth = 0;
  bool done = false;

  auto init_frame = [&](size_t d) {
    const uint16_t v = pq.order[d];
    Frame& f = stack[d];
    f.next_pos = 0;
    f.candidates = nullptr;
    probe_other[d] = -1;
    // Prefer an index probe on a constraint to an assigned vertex.
    for (const VertexConstraint& vc : pq.constraints[v]) {
      if (!assigned[vc.other]) continue;
      const Value& probe = pq.vertices[vc.other].table->at(
          assignment[vc.other], vc.other_column);
      const RowIndex& index =
          indexes_.GetOrBuild(pq.vertices[v].table, vc.own_column);
      f.candidates = &index.Lookup(probe);
      probe_other[d] = vc.other;
      return;
    }
  };

  init_frame(0);

  while (!done) {
    const uint16_t v = pq.order[depth];
    Frame& f = stack[depth];
    bool advanced = false;
    const size_t table_rows = pq.vertices[v].table->num_rows();
    while (true) {
      uint32_t row;
      if (f.candidates != nullptr) {
        if (f.next_pos >= f.candidates->size()) break;
        row = (*f.candidates)[f.next_pos++];
      } else {
        if (f.next_pos >= table_rows) break;
        row = f.next_pos++;
      }
      if (!row_ok(v, row)) continue;
      if (!check_constraints(v, row, probe_other[depth])) continue;
      assignment[v] = row;
      assigned[v] = true;
      if (depth + 1 == n) {
        emit();
        assigned[v] = false;
        if (limit != 0 && result.rows.size() >= limit) {
          done = true;
        }
        if (done) break;
        continue;  // try next candidate at this depth
      }
      ++depth;
      init_frame(depth);
      advanced = true;
      break;
    }
    if (done) break;
    if (!advanced) {
      if (depth == 0) break;
      --depth;
      assigned[pq.order[depth]] = false;
    }
  }

  stats_.exec_millis += timer.ElapsedMillis();
  return result;
}

StatusOr<bool> Executor::IsNonEmpty(const JoinNetworkQuery& query) {
  KWSDBG_ASSIGN_OR_RETURN(ResultSet rs, Execute(query, /*limit=*/1));
  return !rs.rows.empty();
}

StatusOr<std::string> Executor::Explain(const JoinNetworkQuery& query) {
  auto keyword_count = [this](const Table* table, const std::string& kw) {
    return GetKeywordMatches(table, kw).count;
  };
  KWSDBG_ASSIGN_OR_RETURN(PreparedQuery pq,
                          PrepareQuery(query, *db_, keyword_count));
  std::string out = "plan:\n";
  for (size_t d = 0; d < pq.order.size(); ++d) {
    const uint16_t v = pq.order[d];
    const PreparedVertex& pv = pq.vertices[v];
    out += "  " + std::to_string(d + 1) + ". " + query.vertices[v].alias +
           " (" + query.vertices[v].table + ", ~" +
           std::to_string(pv.candidate_count) + " candidate rows)";
    if (d == 0) {
      out += pv.has_keyword ? " via keyword scan '" + pv.keyword + "'"
                            : " via full scan";
    } else if (pq.order_connected[d]) {
      out += " via index probe on a join column";
    } else {
      out += " via cross product (no join to prior instances)";
    }
    if (!pq.selections[v].empty() || !pq.likes[v].empty()) {
      out += ", +" +
             std::to_string(pq.selections[v].size() + pq.likes[v].size()) +
             " residual filter(s)";
    }
    if (d > 0 && pv.has_keyword) {
      out += ", keyword filter '" + pv.keyword + "'";
    }
    out += "\n";
  }
  return out;
}

}  // namespace kwsdbg
