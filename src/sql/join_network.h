// JoinNetworkQuery: the executable form of one lattice node's SQL template
// after keyword instantiation — a set of aliased relation instances, a
// conjunction of equi-joins, and at most one keyword per instance (applied as
// an OR of LIKE '%kw%' over the instance's text columns).
#ifndef KWSDBG_SQL_JOIN_NETWORK_H_
#define KWSDBG_SQL_JOIN_NETWORK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"
#include "storage/database.h"

namespace kwsdbg {

/// One relation instance in the query.
struct QueryVertex {
  std::string table;    ///< Physical table name.
  std::string alias;    ///< Unique within the query.
  std::string keyword;  ///< Empty = free instance (no predicate).
};

/// One equi-join between two instances.
struct QueryJoin {
  uint16_t left;  ///< Index into vertices.
  std::string left_column;
  uint16_t right;
  std::string right_column;
};

/// A constant selection `vertex.column = value`.
struct QuerySelection {
  uint16_t vertex;
  std::string column;
  Value value;
};

/// A column-specific LIKE selection `vertex.column LIKE pattern` (full LIKE
/// pattern syntax, % and _). Distinct from QueryVertex::keyword, which is
/// containment over *all* text columns of the instance — the form the KWS-S
/// templates generate.
struct QueryLikeSelection {
  uint16_t vertex;
  std::string column;
  std::string pattern;
};

/// The query. `joins` may form any connected shape; the KWS-S system only
/// ever produces trees, but the executor handles cycles too. `selections`
/// are constant filters the shell's SQL subset supports on top of the
/// KWS-S-generated class.
struct JoinNetworkQuery {
  std::vector<QueryVertex> vertices;
  std::vector<QueryJoin> joins;
  std::vector<QuerySelection> selections;
  std::vector<QueryLikeSelection> like_selections;

  /// Renders SELECT * SQL with per-keyword OR-of-LIKE predicates over the
  /// text columns of each bound instance, as in the paper's templates.
  /// Needs the database to know each table's text columns.
  StatusOr<std::string> ToSql(const Database& db) const;

  /// Checks tables, columns and alias uniqueness against `db`.
  Status Validate(const Database& db) const;
};

/// Reconstructs a JoinNetworkQuery from a parsed SELECT statement. Mapping
/// of LIKE forms: a parenthesized OR group of LIKEs becomes the instance's
/// keyword (all branches must target one alias with one '%kw%' pattern — the
/// KWS-S template shape); a bare `col LIKE 'pattern'` conjunct becomes a
/// column-specific QueryLikeSelection with full pattern syntax. Errors on a
/// non-star select list, an OR group mixing aliases/keywords, or two
/// different keywords on one alias.
StatusOr<JoinNetworkQuery> FromSelectStatement(const SelectStatement& stmt,
                                               const Database& db);

}  // namespace kwsdbg

#endif  // KWSDBG_SQL_JOIN_NETWORK_H_
