// Hash indexes on join columns, built lazily and cached — the moral
// equivalent of the key/foreign-key indexes a production DBMS would have on
// these columns.
#ifndef KWSDBG_SQL_ROW_INDEX_H_
#define KWSDBG_SQL_ROW_INDEX_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "storage/table.h"

namespace kwsdbg {

/// value -> row ids for one (table, column). NULL cells are not indexed
/// (SQL equality never matches NULL).
class RowIndex {
 public:
  static RowIndex Build(const Table& table, size_t column);

  /// Rows whose column equals `v` (structural, same-type equality; the
  /// engine only joins columns of identical type). NULL probes return empty.
  const std::vector<uint32_t>& Lookup(const Value& v) const;

  size_t num_keys() const { return map_.size(); }

 private:
  struct ValueHash {
    size_t operator()(const Value& v) const { return v.Hash(); }
  };
  std::unordered_map<Value, std::vector<uint32_t>, ValueHash> map_;
  std::vector<uint32_t> empty_;
};

/// Lazy cache of RowIndex instances keyed by (table, column).
class RowIndexManager {
 public:
  /// Returns the index for (table, column), building it on first use.
  const RowIndex& GetOrBuild(const Table* table, size_t column);

  void Clear() { cache_.clear(); }

  /// Drops only the indexes over `table` (relation-scoped invalidation
  /// after a write); returns how many were dropped.
  size_t EraseTable(const Table* table) {
    size_t erased = 0;
    for (auto it = cache_.begin(); it != cache_.end();) {
      if (it->first.first == table) {
        it = cache_.erase(it);
        ++erased;
      } else {
        ++it;
      }
    }
    return erased;
  }

  size_t num_indexes() const { return cache_.size(); }

 private:
  std::unordered_map<std::pair<const Table*, size_t>,
                     std::unique_ptr<RowIndex>, PairHash>
      cache_;
};

}  // namespace kwsdbg

#endif  // KWSDBG_SQL_ROW_INDEX_H_
