#include "sql/flat_row_index.h"

#include <algorithm>

#include "common/timer.h"

namespace kwsdbg {

namespace {

/// Smallest power of two >= v (and >= 16).
uint64_t NextPow2(uint64_t v) {
  uint64_t c = 16;
  while (c < v) c <<= 1;
  return c;
}

}  // namespace

FlatRowIndex FlatRowIndex::Build(const Table& table, size_t column) {
  Timer timer;
  FlatRowIndex index;
  index.table_ = &table;
  index.column_ = column;

  // Hash every non-NULL cell once up front; the two placement passes below
  // re-use these instead of touching Value again.
  const size_t num_rows = table.num_rows();
  std::vector<uint64_t> hashes;
  std::vector<uint32_t> rows;
  hashes.reserve(num_rows);
  rows.reserve(num_rows);
  for (size_t row = 0; row < num_rows; ++row) {
    const Value& v = table.at(row, column);
    if (v.is_null()) continue;
    hashes.push_back(v.Hash64());
    rows.push_back(static_cast<uint32_t>(row));
  }

  // Load factor <= 0.5 even if every key is distinct; linear probing stays
  // short and a probe window prefetching one line per key almost never
  // walks past it.
  const uint64_t capacity = NextPow2(rows.size() * 2);
  index.mask_ = capacity - 1;
  index.buckets_.assign(capacity, Bucket{});

  // Pass A: find-or-claim a bucket per row, counting run lengths. During
  // this pass run_begin temporarily holds the run's representative row id
  // (needed to verify hash-colliding keys against the column).
  auto& buckets = index.buckets_;
  for (size_t i = 0; i < rows.size(); ++i) {
    const uint64_t h = hashes[i];
    uint64_t slot = h & index.mask_;
    while (true) {
      Bucket& b = buckets[slot];
      if (b.run_len == 0) {
        b.hash = h;
        b.run_begin = rows[i];  // representative row
        b.run_len = 1;
        break;
      }
      if (b.hash == h &&
          table.at(b.run_begin, column) == table.at(rows[i], column)) {
        ++b.run_len;
        break;
      }
      slot = (slot + 1) & index.mask_;
    }
  }

  // Prefix sums: assign each occupied bucket its arena run, remembering the
  // representative row for pass B's verification.
  uint32_t offset = 0;
  std::vector<uint32_t> rep_rows(capacity, 0);
  std::vector<uint32_t> cursors(capacity, 0);
  for (uint64_t slot = 0; slot < capacity; ++slot) {
    Bucket& b = buckets[slot];
    if (b.run_len == 0) continue;
    ++index.stats_.distinct_keys;
    index.stats_.max_run_length =
        std::max<size_t>(index.stats_.max_run_length, b.run_len);
    rep_rows[slot] = b.run_begin;
    b.run_begin = offset;
    cursors[slot] = offset;
    offset += b.run_len;
  }
  index.arena_.resize(offset);

  // Pass B: re-probe each row (same probe sequence, so it lands on the same
  // bucket) and append it to the run. Rows are visited in ascending order,
  // so every run ends up ascending — exactly the order the v2 per-key
  // vectors accumulated, which the parity gates depend on.
  for (size_t i = 0; i < rows.size(); ++i) {
    const uint64_t h = hashes[i];
    uint64_t slot = h & index.mask_;
    while (true) {
      const Bucket& b = buckets[slot];
      if (b.hash == h && b.run_len != 0 &&
          table.at(rep_rows[slot], column) == table.at(rows[i], column)) {
        index.arena_[cursors[slot]++] = rows[i];
        break;
      }
      slot = (slot + 1) & index.mask_;
    }
  }

  index.stats_.arena_bytes = index.arena_.size() * sizeof(uint32_t);
  index.stats_.bucket_bytes = capacity * sizeof(Bucket);
  index.stats_.build_millis = timer.ElapsedMillis();
  return index;
}

RowSpan FlatRowIndex::LookupHashed(uint64_t hash, const Value& v) const {
  uint64_t slot = hash & mask_;
  while (true) {
    const Bucket& b = buckets_[slot];
    if (b.run_len == 0) return RowSpan{};  // empty slot: key absent
    if (b.hash == hash &&
        table_->at(arena_[b.run_begin], column_) == v) {
      return RowSpan{arena_.data() + b.run_begin, b.run_len};
    }
    slot = (slot + 1) & mask_;
  }
}

const FlatRowIndex& FlatRowIndexManager::GetOrBuild(const Table* table,
                                                    size_t column) {
  auto key = std::make_pair(table, column);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    it = cache_
             .emplace(key, std::make_unique<FlatRowIndex>(
                               FlatRowIndex::Build(*table, column)))
             .first;
    const FlatIndexStats& s = it->second->stats();
    totals_.build_millis += s.build_millis;
    totals_.distinct_keys += s.distinct_keys;
    totals_.max_run_length =
        std::max(totals_.max_run_length, s.max_run_length);
    totals_.arena_bytes += s.arena_bytes;
    totals_.bucket_bytes += s.bucket_bytes;
  }
  return *it->second;
}

const FlatRowIndex& SharedFlatRowIndexManager::GetOrBuild(const Table* table,
                                                          size_t column,
                                                          uint64_t epoch,
                                                          bool* built) {
  std::lock_guard<std::mutex> lock(mu_);
  if (epoch != epoch_) {
    // Lazy epoch invalidation: the first probe against a mutated database
    // drops every index built against the old state. Safe because epochs
    // only move while the shard is quiescent (no concurrent probes).
    manager_.Clear();
    epoch_ = epoch;
  }
  const size_t before = manager_.num_indexes();
  const FlatRowIndex& index = manager_.GetOrBuild(table, column);
  const bool did_build = manager_.num_indexes() != before;
  if (did_build) {
    const FlatIndexStats& s = index.stats();
    totals_.build_millis += s.build_millis;
    totals_.distinct_keys += s.distinct_keys;
    totals_.max_run_length = std::max(totals_.max_run_length, s.max_run_length);
    totals_.arena_bytes += s.arena_bytes;
    totals_.bucket_bytes += s.bucket_bytes;
  }
  if (built != nullptr) *built = did_build;
  return index;
}

void SharedFlatRowIndexManager::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  manager_.Clear();
}

size_t SharedFlatRowIndexManager::num_indexes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return manager_.num_indexes();
}

FlatIndexStats SharedFlatRowIndexManager::totals() const {
  std::lock_guard<std::mutex> lock(mu_);
  return totals_;
}

}  // namespace kwsdbg
