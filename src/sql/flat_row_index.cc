#include "sql/flat_row_index.h"

#include <algorithm>

#include "common/timer.h"

namespace kwsdbg {

namespace {

/// Smallest power of two >= v (and >= 16).
uint64_t NextPow2(uint64_t v) {
  uint64_t c = 16;
  while (c < v) c <<= 1;
  return c;
}

constexpr uint64_t kNoClaim = ~uint64_t{0};

}  // namespace

FlatRowIndex FlatRowIndex::Build(const Table& table, size_t column) {
  Timer timer;
  FlatRowIndex index;
  index.table_ = &table;
  index.column_ = column;

  // Hash every non-NULL cell once up front; the two placement passes below
  // re-use these instead of touching Value again.
  const size_t num_rows = table.num_rows();
  std::vector<uint64_t> hashes;
  std::vector<uint32_t> rows;
  hashes.reserve(num_rows);
  rows.reserve(num_rows);
  for (size_t row = 0; row < num_rows; ++row) {
    const Value& v = table.at(row, column);
    if (v.is_null()) continue;
    hashes.push_back(v.Hash64());
    rows.push_back(static_cast<uint32_t>(row));
  }

  // Load factor <= 0.5 even if every key is distinct; linear probing stays
  // short and a probe window prefetching one line per key almost never
  // walks past it.
  const uint64_t capacity = NextPow2(rows.size() * 2);
  index.mask_ = capacity - 1;
  index.buckets_.assign(capacity, Bucket{});

  // Pass A: find-or-claim a bucket per row, counting run lengths. During
  // this pass run_begin temporarily holds the run's representative row id
  // (needed to verify hash-colliding keys against the column).
  auto& buckets = index.buckets_;
  for (size_t i = 0; i < rows.size(); ++i) {
    const uint64_t h = hashes[i];
    uint64_t slot = h & index.mask_;
    while (true) {
      Bucket& b = buckets[slot];
      if (b.run_len == 0) {
        b.hash = h;
        b.run_begin = rows[i];  // representative row
        b.run_len = 1;
        break;
      }
      if (b.hash == h &&
          table.at(b.run_begin, column) == table.at(rows[i], column)) {
        ++b.run_len;
        break;
      }
      slot = (slot + 1) & index.mask_;
    }
  }

  // Prefix sums: assign each occupied bucket its arena run, remembering the
  // representative row for pass B's verification.
  uint32_t offset = 0;
  std::vector<uint32_t> rep_rows(capacity, 0);
  std::vector<uint32_t> cursors(capacity, 0);
  for (uint64_t slot = 0; slot < capacity; ++slot) {
    Bucket& b = buckets[slot];
    if (b.run_len == 0) continue;
    ++index.stats_.distinct_keys;
    index.stats_.max_run_length =
        std::max<size_t>(index.stats_.max_run_length, b.run_len);
    rep_rows[slot] = b.run_begin;
    b.run_begin = offset;
    cursors[slot] = offset;
    offset += b.run_len;
  }
  index.arena_.resize(offset);

  // Pass B: re-probe each row (same probe sequence, so it lands on the same
  // bucket) and append it to the run. Rows are visited in ascending order,
  // so every run ends up ascending — exactly the order the v2 per-key
  // vectors accumulated, which the parity gates depend on.
  for (size_t i = 0; i < rows.size(); ++i) {
    const uint64_t h = hashes[i];
    uint64_t slot = h & index.mask_;
    while (true) {
      const Bucket& b = buckets[slot];
      if (b.hash == h && b.run_len != 0 &&
          table.at(rep_rows[slot], column) == table.at(rows[i], column)) {
        index.arena_[cursors[slot]++] = rows[i];
        break;
      }
      slot = (slot + 1) & index.mask_;
    }
  }

  index.stats_.arena_bytes = index.arena_.size() * sizeof(uint32_t);
  index.stats_.bucket_bytes = capacity * sizeof(Bucket);
  index.stats_.build_millis = timer.ElapsedMillis();
  return index;
}

RowSpan FlatRowIndex::LookupHashed(uint64_t hash, const Value& v) const {
  uint64_t slot = hash & mask_;
  while (true) {
    const Bucket& b = buckets_[slot];
    if (b.run_len == 0) {
      // Never-used slot: key absent. A tombstone (deleted bucket) keeps the
      // probe chain alive for keys placed past it.
      if (b.run_begin != kTombstoneSlot) return RowSpan{};
    } else if (b.hash == hash &&
               table_->at(arena_[b.run_begin], column_) == v) {
      return RowSpan{arena_.data() + b.run_begin, b.run_len};
    }
    slot = (slot + 1) & mask_;
  }
}

void FlatRowIndex::ApplyInsert(uint32_t row, const Value& v) {
  if (v.is_null()) return;
  if (buckets_.empty()) {
    // Index built over an empty or all-NULL column: bootstrap a table.
    buckets_.assign(16, Bucket{});
    mask_ = 15;
  }
  // Keep load factor (live + tombstones) <= 0.5, counting the key this
  // insert may claim.
  if ((stats_.distinct_keys + tombstones_ + 1) * 2 > buckets_.size()) {
    Rehash(NextPow2((stats_.distinct_keys + 1) * 4));
  }
  const uint64_t h = v.Hash64();
  uint64_t slot = h & mask_;
  uint64_t claim = kNoClaim;
  while (true) {
    Bucket& b = buckets_[slot];
    if (b.run_len == 0) {
      if (b.run_begin == kTombstoneSlot) {
        if (claim == kNoClaim) claim = slot;  // reuse the first tombstone
        slot = (slot + 1) & mask_;
        continue;
      }
      // Key absent: claim a bucket with a fresh single-row run at the tail.
      Bucket& target = buckets_[claim == kNoClaim ? slot : claim];
      if (claim != kNoClaim) --tombstones_;
      target.hash = h;
      target.run_begin = static_cast<uint32_t>(arena_.size());
      target.run_len = 1;
      arena_.push_back(row);
      ++stats_.distinct_keys;
      stats_.max_run_length = std::max<size_t>(stats_.max_run_length, 1);
      break;
    }
    if (b.hash == h && table_->at(arena_[b.run_begin], column_) == v) {
      const size_t end = b.run_begin + b.run_len;
      if (end == arena_.size() && row > arena_[end - 1]) {
        // Run already at the arena tail and the row extends it in order
        // (the append-row fast path): grow in place.
        arena_.push_back(row);
        ++b.run_len;
      } else {
        // Relocate the run to the tail with `row` merged at its sorted
        // position; the old slots become garbage.
        const uint32_t new_begin = static_cast<uint32_t>(arena_.size());
        bool placed = false;
        for (uint32_t i = 0; i < b.run_len; ++i) {
          const uint32_t r = arena_[b.run_begin + i];
          if (!placed && row < r) {
            arena_.push_back(row);
            placed = true;
          }
          arena_.push_back(r);
        }
        if (!placed) arena_.push_back(row);
        garbage_ += b.run_len;
        b.run_begin = new_begin;
        ++b.run_len;
      }
      stats_.max_run_length =
          std::max<size_t>(stats_.max_run_length, b.run_len);
      break;
    }
    slot = (slot + 1) & mask_;
  }
  MaybeCompactArena();
  stats_.arena_bytes = arena_.capacity() * sizeof(uint32_t);
  stats_.bucket_bytes = buckets_.size() * sizeof(Bucket);
}

bool FlatRowIndex::ApplyDelete(uint32_t row, const Value& old_value) {
  if (old_value.is_null() || buckets_.empty()) return false;
  const uint64_t h = old_value.Hash64();
  uint64_t slot = h & mask_;
  while (true) {
    Bucket& b = buckets_[slot];
    if (b.run_len == 0) {
      if (b.run_begin != kTombstoneSlot) return false;  // key absent
    } else if (b.hash == h) {
      // Membership check instead of representative verification: the
      // representative may be `row` itself, or the cell may already be
      // blanked. A row id appears in at most one run per column, so finding
      // it here is definitive even across hash collisions.
      uint32_t* begin = arena_.data() + b.run_begin;
      uint32_t* end = begin + b.run_len;
      uint32_t* pos = std::lower_bound(begin, end, row);
      if (pos != end && *pos == row) {
        std::copy(pos + 1, end, pos);
        --b.run_len;
        ++garbage_;
        if (b.run_len == 0) {
          // Emptied key: tombstone the bucket so chains probing past it
          // stay reachable.
          b.hash = 0;
          b.run_begin = kTombstoneSlot;
          ++tombstones_;
          --stats_.distinct_keys;
        }
        MaybeCompactArena();
        return true;
      }
    }
    slot = (slot + 1) & mask_;
  }
}

void FlatRowIndex::Rehash(uint64_t new_capacity) {
  std::vector<Bucket> old = std::move(buckets_);
  mask_ = new_capacity - 1;
  buckets_.assign(new_capacity, Bucket{});
  tombstones_ = 0;
  // Hash-only re-placement: distinct values colliding on the full 64-bit
  // hash land in distinct buckets in any probe order, and lookups verify
  // against the representative row, so no table access is needed here.
  for (const Bucket& b : old) {
    if (b.run_len == 0) continue;
    uint64_t slot = b.hash & mask_;
    while (buckets_[slot].run_len != 0) slot = (slot + 1) & mask_;
    buckets_[slot] = b;
  }
}

void FlatRowIndex::MaybeCompactArena() {
  if (garbage_ * 4 <= arena_.size() || arena_.size() < 64) return;
  std::vector<uint32_t> fresh;
  fresh.reserve(arena_.size() - garbage_);
  for (Bucket& b : buckets_) {
    if (b.run_len == 0) continue;
    const uint32_t new_begin = static_cast<uint32_t>(fresh.size());
    fresh.insert(fresh.end(), arena_.begin() + b.run_begin,
                 arena_.begin() + b.run_begin + b.run_len);
    b.run_begin = new_begin;
  }
  arena_ = std::move(fresh);
  garbage_ = 0;
}

const FlatRowIndex& FlatRowIndexManager::GetOrBuild(const Table* table,
                                                    size_t column) {
  auto key = std::make_pair(table, column);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    it = cache_
             .emplace(key, std::make_unique<FlatRowIndex>(
                               FlatRowIndex::Build(*table, column)))
             .first;
    const FlatIndexStats& s = it->second->stats();
    totals_.build_millis += s.build_millis;
    totals_.distinct_keys += s.distinct_keys;
    totals_.max_run_length =
        std::max(totals_.max_run_length, s.max_run_length);
    totals_.arena_bytes += s.arena_bytes;
    totals_.bucket_bytes += s.bucket_bytes;
  }
  return *it->second;
}

size_t FlatRowIndexManager::EraseTable(const Table* table) {
  size_t erased = 0;
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (it->first.first == table) {
      it = cache_.erase(it);
      ++erased;
    } else {
      ++it;
    }
  }
  return erased;
}

const FlatRowIndex& SharedFlatRowIndexManager::GetOrBuildLocked(
    const Table* table, size_t column, bool* built) {
  auto key = std::make_pair(table, column);
  auto it = cache_.find(key);
  // A mismatched stamp means the table mutated in a way the mutator did not
  // patch (compaction, or no mutator wired): rebuild. The erase is safe
  // without quiescence because every probe holds the index gate shared
  // while this caller holds it exclusively or the entry was evicted under
  // the writer's exclusive hold — see the class comment.
  if (it != cache_.end() && it->second.table_epoch != table->data_epoch()) {
    cache_.erase(it);
    it = cache_.end();
  }
  bool did_build = false;
  if (it == cache_.end()) {
    Entry e;
    e.index = std::make_unique<FlatRowIndex>(FlatRowIndex::Build(*table,
                                                                 column));
    e.table_epoch = table->data_epoch();
    it = cache_.emplace(key, std::move(e)).first;
    did_build = true;
    const FlatIndexStats& s = it->second.index->stats();
    totals_.build_millis += s.build_millis;
    totals_.distinct_keys += s.distinct_keys;
    totals_.max_run_length = std::max(totals_.max_run_length,
                                      s.max_run_length);
    totals_.arena_bytes += s.arena_bytes;
    totals_.bucket_bytes += s.bucket_bytes;
  }
  if (built != nullptr) *built = did_build;
  return *it->second.index;
}

const FlatRowIndex& SharedFlatRowIndexManager::GetOrBuild(const Table* table,
                                                          size_t column,
                                                          uint64_t epoch,
                                                          bool* built) {
  std::lock_guard<std::mutex> lock(mu_);
  if (epoch != epoch_) {
    // Lazy whole-epoch invalidation (legacy BumpEpoch between batches): the
    // first probe against the new epoch drops every index.
    cache_.clear();
    epoch_ = epoch;
  }
  return GetOrBuildLocked(table, column, built);
}

size_t SharedFlatRowIndexManager::ApplyRowInsert(const Table* table,
                                                 uint32_t row) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t patches = 0;
  for (auto& [key, entry] : cache_) {
    if (key.first != table) continue;
    entry.index->ApplyInsert(row, table->at(row, key.second));
    entry.table_epoch = table->data_epoch();
    ++patches;
  }
  return patches;
}

size_t SharedFlatRowIndexManager::ApplyRowDelete(const Table* table,
                                                 uint32_t row,
                                                 const Tuple& old_row) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t patches = 0;
  for (auto& [key, entry] : cache_) {
    if (key.first != table) continue;
    entry.index->ApplyDelete(row, old_row[key.second]);
    entry.table_epoch = table->data_epoch();
    ++patches;
  }
  return patches;
}

size_t SharedFlatRowIndexManager::ApplyCellUpdate(const Table* table,
                                                  uint32_t row, size_t column,
                                                  const Value& old_value) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t patches = 0;
  for (auto& [key, entry] : cache_) {
    if (key.first != table) continue;
    if (key.second == column) {
      entry.index->ApplyDelete(row, old_value);
      entry.index->ApplyInsert(row, table->at(row, column));
      ++patches;
    }
    // Indexes over other columns are unaffected, but restamp them so the
    // epoch check keeps them warm.
    entry.table_epoch = table->data_epoch();
  }
  return patches;
}

size_t SharedFlatRowIndexManager::EraseTable(const Table* table) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t erased = 0;
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (it->first.first == table) {
      it = cache_.erase(it);
      ++erased;
    } else {
      ++it;
    }
  }
  return erased;
}

void SharedFlatRowIndexManager::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
}

size_t SharedFlatRowIndexManager::num_indexes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

FlatIndexStats SharedFlatRowIndexManager::totals() const {
  std::lock_guard<std::mutex> lock(mu_);
  return totals_;
}

}  // namespace kwsdbg
