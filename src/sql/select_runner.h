// End-to-end execution of a parsed SELECT statement: conversion to a
// join-network query, execution, then the presentation clauses the executor
// itself does not know about — ORDER BY, LIMIT, and COUNT(*).
#ifndef KWSDBG_SQL_SELECT_RUNNER_H_
#define KWSDBG_SQL_SELECT_RUNNER_H_

#include "common/status.h"
#include "sql/ast.h"
#include "sql/executor.h"

namespace kwsdbg {

/// Runs `stmt` through `executor`. Semantics:
/// * COUNT(*): returns a single-row, single-column ("count") result.
/// * ORDER BY: stable sort on the named output columns (qualified
///   "alias.column" or unqualified "column" if unambiguous); NULLs first.
/// * LIMIT: applied after ORDER BY; pushed into the executor when there is
///   no ORDER BY (early exit).
StatusOr<ResultSet> RunSelect(Executor* executor, const SelectStatement& stmt,
                              const Database& db);

/// Convenience: parse + run.
StatusOr<ResultSet> RunSelect(Executor* executor, const std::string& sql,
                              const Database& db);

}  // namespace kwsdbg

#endif  // KWSDBG_SQL_SELECT_RUNNER_H_
