#include "baselines/return_nothing.h"

#include "common/string_util.h"
#include "common/timer.h"
#include "kws/pruned_lattice.h"
#include "kws/query_builder.h"
#include "text/tokenizer.h"

namespace kwsdbg {

ReturnNothingBaseline::ReturnNothingBaseline(const Database* db,
                                             const Lattice* lattice,
                                             const InvertedIndex* index,
                                             RnOptions options)
    : db_(db),
      lattice_(lattice),
      index_(index),
      options_(options),
      executor_(db) {}

StatusOr<RnResult> ReturnNothingBaseline::Run(
    const std::string& keyword_query) {
  Timer total;
  RnResult result;
  const std::vector<std::string> keywords = TokenizeUnique(keyword_query);
  if (keywords.empty() || keywords.size() > 63) {
    return Status::InvalidArgument("unsupported keyword count");
  }
  KeywordBinder binder(&lattice_->schema(), index_,
                       lattice_->config().EffectiveKeywordCopies());

  const size_t sql_before = executor_.stats().queries_executed;
  const double ms_before = executor_.stats().exec_millis;

  // Every non-empty subset, largest first (the developer starts from the
  // original query and drops keywords).
  const uint64_t full = (1ull << keywords.size()) - 1;
  std::vector<uint64_t> subsets;
  for (uint64_t s = 1; s <= full; ++s) subsets.push_back(s);
  std::sort(subsets.begin(), subsets.end(),
            [](uint64_t a, uint64_t b) {
              int pa = __builtin_popcountll(a), pb = __builtin_popcountll(b);
              return pa != pb ? pa > pb : a < b;
            });

  for (uint64_t subset : subsets) {
    std::string sub_query;
    for (size_t i = 0; i < keywords.size(); ++i) {
      if ((subset >> i) & 1) {
        if (!sub_query.empty()) sub_query += " ";
        sub_query += keywords[i];
      }
    }
    ++result.submissions;
    BindingResult binding_result = binder.Bind(sub_query);
    if (!binding_result.missing_keywords.empty()) continue;
    for (const KeywordBinding& binding : binding_result.interpretations) {
      // A standard KWS-S system computes the CNs for this submission and
      // executes each one *fully* — the result tuples are what it shows the
      // user. Nothing carries over between submissions.
      PrunedLattice pl = PrunedLattice::Build(*lattice_, binding);
      for (NodeId mtn : pl.mtns()) {
        ++result.cns_evaluated;
        KWSDBG_ASSIGN_OR_RETURN(
            JoinNetworkQuery query,
            BuildNodeQuery(*lattice_, mtn, binding));
        KWSDBG_ASSIGN_OR_RETURN(
            ResultSet rs, executor_.Execute(query, options_.result_limit));
        result.rows_retrieved += rs.rows.size();
        if (!rs.rows.empty()) ++result.alive_cns;
      }
    }
  }
  result.sql_queries = executor_.stats().queries_executed - sql_before;
  result.sql_millis = executor_.stats().exec_millis - ms_before;
  result.total_millis = total.ElapsedMillis();
  return result;
}

}  // namespace kwsdbg
