// Parallel evaluate-everything classification: the RE baseline's work is
// embarrassingly parallel (every retained node's aliveness is independent),
// and tables are immutable during a query, so N worker threads with
// per-thread executors scale it near-linearly. Useful as a fast oracle for
// very large search spaces and as a demonstration that the substrate is
// read-parallel safe.
#ifndef KWSDBG_BASELINES_PARALLEL_ORACLE_H_
#define KWSDBG_BASELINES_PARALLEL_ORACLE_H_

#include <cstddef>

#include "kws/pruned_lattice.h"
#include "text/inverted_index.h"
#include "traversal/strategy.h"

namespace kwsdbg {

/// Classifies every retained node of `pl` using `num_threads` workers (0 =
/// hardware concurrency) and returns per-MTN outcomes identical to the
/// serial strategies'. Each worker owns an Executor (indexes and keyword
/// scans are built per worker). Stats: sql_queries counts all SQL issued
/// across workers; sql_millis sums per-worker execution time (CPU-like, can
/// exceed wall time); total_millis is wall time.
StatusOr<TraversalResult> ClassifyAllParallel(const PrunedLattice& pl,
                                              const Database& db,
                                              const InvertedIndex& index,
                                              size_t num_threads = 0,
                                              EvalOptions eval = {});

}  // namespace kwsdbg

#endif  // KWSDBG_BASELINES_PARALLEL_ORACLE_H_
