#include "baselines/parallel_oracle.h"

#include <atomic>
#include <thread>

#include "common/timer.h"
#include "sql/executor.h"
#include "traversal/evaluator.h"

namespace kwsdbg {

StatusOr<TraversalResult> ClassifyAllParallel(const PrunedLattice& pl,
                                              const Database& db,
                                              const InvertedIndex& index,
                                              size_t num_threads,
                                              EvalOptions eval) {
  Timer total;
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  const std::vector<NodeId>& nodes = pl.retained();
  num_threads = std::min(num_threads, std::max<size_t>(1, nodes.size()));

  // Pre-warm the memoized closure caches: they are lazily filled under the
  // hood and not synchronized, so materialize everything the workers and
  // the outcome builder will touch before threads start.
  for (NodeId m : pl.mtns()) pl.RetainedDescendants(m);

  std::vector<uint8_t> alive(pl.lattice().num_nodes(), 0);
  std::atomic<size_t> next{0};
  std::atomic<size_t> total_sql{0};
  std::vector<double> worker_millis(num_threads, 0.0);
  std::vector<Status> worker_status(num_threads, Status::OK());

  auto worker = [&](size_t wid) {
    Executor executor(&db);
    QueryEvaluator evaluator(&db, &executor, &pl, &index, eval);
    while (true) {
      const size_t i = next.fetch_add(1);
      if (i >= nodes.size()) break;
      auto result = evaluator.IsAlive(nodes[i]);
      if (!result.ok()) {
        worker_status[wid] = result.status();
        break;
      }
      alive[nodes[i]] = *result ? 1 : 0;
    }
    total_sql.fetch_add(evaluator.sql_executed());
    worker_millis[wid] = evaluator.sql_millis();
  };

  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (size_t w = 0; w < num_threads; ++w) threads.emplace_back(worker, w);
  for (std::thread& t : threads) t.join();
  for (const Status& s : worker_status) {
    KWSDBG_RETURN_NOT_OK(s);
  }

  NodeStatusMap status(pl.lattice().num_nodes());
  for (NodeId n : nodes) {
    status.Set(n, alive[n] ? NodeStatus::kAlive : NodeStatus::kDead);
  }
  KWSDBG_ASSIGN_OR_RETURN(TraversalResult result,
                          internal::BuildOutcomes(pl, status));
  result.stats.sql_queries = total_sql.load();
  for (double ms : worker_millis) result.stats.sql_millis += ms;
  result.stats.total_millis = total.ElapsedMillis();
  return result;
}

}  // namespace kwsdbg
