// RE baseline (paper Sec. 3.8): skip the lattice's inference rules entirely —
// issue one SQL query per retained node. Complete (same MPANs as the lattice
// approach, which tests exploit by using RE as the oracle) but redundant.
#include <algorithm>

#include "baselines/return_everything.h"
#include "common/timer.h"

namespace kwsdbg {

namespace {

class ReturnEverythingStrategy : public TraversalStrategy {
 public:
  std::string_view name() const override { return "RE"; }

  StatusOr<TraversalResult> Run(const PrunedLattice& pl,
                                QueryEvaluator* evaluator) override {
    Timer total;
    const size_t sql_before = evaluator->sql_executed();
    const double ms_before = evaluator->sql_millis();
    NodeStatusMap status(pl.lattice().num_nodes());
    std::vector<NodeId> nodes = pl.retained();
    std::sort(nodes.begin(), nodes.end());
    for (NodeId n : nodes) {
      KWSDBG_ASSIGN_OR_RETURN(bool alive, evaluator->IsAlive(n));
      status.Set(n, alive ? NodeStatus::kAlive : NodeStatus::kDead);
    }
    KWSDBG_ASSIGN_OR_RETURN(TraversalResult result,
                            internal::BuildOutcomes(pl, status));
    result.stats.sql_queries = evaluator->sql_executed() - sql_before;
    result.stats.sql_millis = evaluator->sql_millis() - ms_before;
    result.stats.total_millis = total.ElapsedMillis();
    return result;
  }
};

}  // namespace

std::unique_ptr<TraversalStrategy> MakeReturnEverything() {
  return std::make_unique<ReturnEverythingStrategy>();
}

}  // namespace kwsdbg
