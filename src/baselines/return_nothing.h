// RN baseline (paper Sec. 3.8): the standard KWS-S behaviour — the system
// returns nothing for a non-answer, so a developer debugging it re-submits
// every keyword-subset query ("k1 k2", "k1 k3", ..., "k1", ...) and the
// system evaluates every candidate network of every submission, with no
// state shared between submissions.
#ifndef KWSDBG_BASELINES_RETURN_NOTHING_H_
#define KWSDBG_BASELINES_RETURN_NOTHING_H_

#include <string>

#include "kws/keyword_binding.h"
#include "lattice/lattice.h"
#include "sql/executor.h"
#include "storage/database.h"
#include "text/inverted_index.h"
#include "sql/join_network.h"

namespace kwsdbg {

/// Cost and outcome summary of the RN debugging session.
struct RnResult {
  size_t submissions = 0;       ///< Keyword queries the developer submitted.
  size_t cns_evaluated = 0;     ///< Candidate networks across submissions.
  size_t sql_queries = 0;       ///< Actual SQL executions.
  double sql_millis = 0;
  double total_millis = 0;
  size_t alive_cns = 0;         ///< CNs that returned results.
  size_t rows_retrieved = 0;    ///< Result tuples materialized for display.
};

/// RN knobs.
struct RnOptions {
  /// Rows a submission materializes per CN (0 = all — what DISCOVER-style
  /// systems do before ranking). The lattice approach only needs existence
  /// checks; RN pays for real result sets, which is where the paper's
  /// response-time gap comes from.
  size_t result_limit = 0;
};

/// Simulates the RN debugging session over the same lattice/index substrate
/// (the lattice is only used to enumerate each submission's CNs, which a
/// standard KWS-S system computes anyway; no aliveness is inferred from it).
class ReturnNothingBaseline {
 public:
  ReturnNothingBaseline(const Database* db, const Lattice* lattice,
                        const InvertedIndex* index, RnOptions options = {});

  /// Runs the original query plus every proper non-empty keyword subset.
  StatusOr<RnResult> Run(const std::string& keyword_query);

  Executor* executor() { return &executor_; }

 private:
  const Database* db_;
  const Lattice* lattice_;
  const InvertedIndex* index_;
  RnOptions options_;
  Executor executor_;
};

}  // namespace kwsdbg

#endif  // KWSDBG_BASELINES_RETURN_NOTHING_H_
