// RE baseline: evaluate every retained node with SQL, no lattice inference.
#ifndef KWSDBG_BASELINES_RETURN_EVERYTHING_H_
#define KWSDBG_BASELINES_RETURN_EVERYTHING_H_

#include <memory>

#include "traversal/strategy.h"

namespace kwsdbg {

/// Builds the RE baseline as a TraversalStrategy (name() == "RE"). It
/// produces exactly the same outcomes/MPANs as the lattice strategies — the
/// test suite uses it as the correctness oracle — at the cost of one SQL
/// query per retained node.
std::unique_ptr<TraversalStrategy> MakeReturnEverything();

}  // namespace kwsdbg

#endif  // KWSDBG_BASELINES_RETURN_EVERYTHING_H_
