#include "graph/schema_graph.h"

#include "common/logging.h"

namespace kwsdbg {

StatusOr<RelationId> SchemaGraph::AddRelation(const std::string& name,
                                              bool has_text) {
  if (by_name_.count(name)) {
    return Status::AlreadyExists("relation '" + name + "' already exists");
  }
  RelationId id = static_cast<RelationId>(relations_.size());
  relations_.push_back(RelationInfo{id, name, has_text});
  by_name_.emplace(name, id);
  incident_.emplace_back();
  return id;
}

StatusOr<EdgeId> SchemaGraph::AddJoin(const std::string& from_table,
                                      const std::string& from_column,
                                      const std::string& to_table,
                                      const std::string& to_column) {
  KWSDBG_ASSIGN_OR_RETURN(RelationId from, RelationIdByName(from_table));
  KWSDBG_ASSIGN_OR_RETURN(RelationId to, RelationIdByName(to_table));
  EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(JoinEdge{id, from, from_column, to, to_column});
  incident_[from].push_back(id);
  if (to != from) incident_[to].push_back(id);
  return id;
}

Status SchemaGraph::ValidateAgainst(const Database& db) const {
  for (const RelationInfo& rel : relations_) {
    KWSDBG_ASSIGN_OR_RETURN(Table * table, db.GetTable(rel.name));
    const bool schema_has_text = !table->schema().TextColumnIndices().empty();
    if (schema_has_text != rel.has_text) {
      return Status::FailedPrecondition(
          "relation '" + rel.name + "' has_text flag (" +
          (rel.has_text ? "true" : "false") + ") disagrees with schema");
    }
  }
  for (const JoinEdge& e : edges_) {
    KWSDBG_ASSIGN_OR_RETURN(Table * from_table,
                            db.GetTable(relations_[e.from].name));
    KWSDBG_ASSIGN_OR_RETURN(Table * to_table,
                            db.GetTable(relations_[e.to].name));
    KWSDBG_ASSIGN_OR_RETURN(size_t from_idx,
                            from_table->schema().ColumnIndex(e.from_column));
    KWSDBG_ASSIGN_OR_RETURN(size_t to_idx,
                            to_table->schema().ColumnIndex(e.to_column));
    const DataType ft = from_table->schema().column(from_idx).type;
    const DataType tt = to_table->schema().column(to_idx).type;
    const bool joinable =
        ft == tt || (ft != DataType::kString && tt != DataType::kString);
    if (!joinable) {
      return Status::FailedPrecondition(
          "join columns " + relations_[e.from].name + "." + e.from_column +
          " and " + relations_[e.to].name + "." + e.to_column +
          " have incompatible types");
    }
  }
  return Status::OK();
}

StatusOr<RelationId> SchemaGraph::RelationIdByName(
    const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no relation named '" + name + "'");
  }
  return it->second;
}

const std::vector<EdgeId>& SchemaGraph::IncidentEdges(RelationId rel) const {
  KWSDBG_DCHECK(rel < incident_.size());
  return incident_[rel];
}

RelationId SchemaGraph::OtherEndpoint(const JoinEdge& edge,
                                      RelationId rel) const {
  KWSDBG_DCHECK(edge.from == rel || edge.to == rel);
  return edge.from == rel ? edge.to : edge.from;
}

std::string SchemaGraph::ToDot() const {
  std::string out = "graph schema {\n";
  for (const RelationInfo& r : relations_) {
    out += "  " + r.name;
    if (r.has_text) out += " [style=filled]";
    out += ";\n";
  }
  for (const JoinEdge& e : edges_) {
    out += "  " + relations_[e.from].name + " -- " + relations_[e.to].name +
           " [label=\"" + e.from_column + "=" + e.to_column + "\"];\n";
  }
  out += "}\n";
  return out;
}

}  // namespace kwsdbg
