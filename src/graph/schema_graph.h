// The schema graph: relations as vertices, key-foreign-key associations as
// (undirected, for join purposes) edges. This is the structure Phase 0 walks
// to enumerate join networks (paper Sec. 2.2).
#ifndef KWSDBG_GRAPH_SCHEMA_GRAPH_H_
#define KWSDBG_GRAPH_SCHEMA_GRAPH_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/database.h"

namespace kwsdbg {

/// Stable integer id of a relation within a SchemaGraph.
using RelationId = uint32_t;
/// Stable integer id of a join edge within a SchemaGraph.
using EdgeId = uint32_t;

/// A key-foreign-key association `from.from_column = to.to_column`.
struct JoinEdge {
  EdgeId id;
  RelationId from;
  std::string from_column;
  RelationId to;
  std::string to_column;
};

/// Metadata for one relation vertex.
struct RelationInfo {
  RelationId id;
  std::string name;
  bool has_text;  ///< True iff the relation has at least one TEXT column;
                  ///< only such relations can be bound to keywords.
};

/// Immutable-after-build schema graph with adjacency lists.
class SchemaGraph {
 public:
  /// Adds a relation vertex. `has_text` marks whether keywords can bind to
  /// it. Errors on duplicate name.
  StatusOr<RelationId> AddRelation(const std::string& name, bool has_text);

  /// Adds an undirected key-FK edge. Both relations must exist.
  StatusOr<EdgeId> AddJoin(const std::string& from_table,
                           const std::string& from_column,
                           const std::string& to_table,
                           const std::string& to_column);

  /// Checks the graph against a database: every relation is a table, every
  /// join column exists with a joinable type, and `has_text` flags agree with
  /// the schema.
  Status ValidateAgainst(const Database& db) const;

  size_t num_relations() const { return relations_.size(); }
  size_t num_edges() const { return edges_.size(); }

  const RelationInfo& relation(RelationId id) const { return relations_[id]; }
  const JoinEdge& edge(EdgeId id) const { return edges_[id]; }
  const std::vector<RelationInfo>& relations() const { return relations_; }
  const std::vector<JoinEdge>& edges() const { return edges_; }

  /// Relation id by name; errors if absent.
  StatusOr<RelationId> RelationIdByName(const std::string& name) const;

  /// Ids of edges incident to `rel` (either endpoint).
  const std::vector<EdgeId>& IncidentEdges(RelationId rel) const;

  /// The endpoint of `edge` that is not `rel`. Precondition: `rel` is an
  /// endpoint of `edge`. Self-loop edges return `rel` itself.
  RelationId OtherEndpoint(const JoinEdge& edge, RelationId rel) const;

  /// GraphViz dot rendering for documentation / debugging.
  std::string ToDot() const;

 private:
  std::vector<RelationInfo> relations_;
  std::vector<JoinEdge> edges_;
  std::unordered_map<std::string, RelationId> by_name_;
  std::vector<std::vector<EdgeId>> incident_;
};

}  // namespace kwsdbg

#endif  // KWSDBG_GRAPH_SCHEMA_GRAPH_H_
