#include "datasets/dblife.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "common/rng.h"

namespace kwsdbg {

namespace {

// ---------------------------------------------------------------------------
// Vocabulary pools. The workload surnames (Table 2) come first so that they
// are always present regardless of scale; Zipf sampling makes them and the
// other early names the most connected entities, which matches DBLife's
// star-around-famous-researchers character.
// ---------------------------------------------------------------------------

const char* const kSurnames[] = {
    // Table 2 workload names.
    "Widom", "Hristidis", "Agrawal", "Chaudhuri", "Das", "DeRose", "Gray",
    "DeWitt", "Washington",
    // Ambient researcher surnames.
    "Naughton", "Doan", "Halevy", "Stonebraker", "Ullman", "Garcia-Molina",
    "Abiteboul", "Bernstein", "Carey", "Ceri", "Chamberlin", "Codd",
    "Dayal", "Delis", "Faloutsos", "Franklin", "Gehrke", "Gravano",
    "Haas", "Hellerstein", "Ioannidis", "Jagadish", "Kanne", "Keller",
    "Kossmann", "Lenzerini", "Libkin", "Lomet", "Maier", "Mendelzon",
    "Mohan", "Motwani", "Papadias", "Papakonstantinou", "Ramakrishnan",
    "Reiter", "Ross", "Sellis", "Silberschatz", "Snodgrass", "Srivastava",
    "Suciu", "Sudarshan", "Tan", "Vianu", "Weikum", "Wong", "Yu", "Zaniolo",
    "Zhang", "Zhou", "Miller", "Koudas", "Markl", "Neumann", "Kemper",
    "Boncz", "Manegold", "Ailamaki", "Pavlo", "Abadi", "Madden", "Bailis",
    "Li", "Wang", "Chen", "Liu", "Kumar", "Patel", "Olston", "Dean"};

const char* const kFirstNames[] = {
    "Jennifer", "Vagelis", "Rakesh",  "Surajit", "Gautam", "Pedro",
    "Jim",      "David",   "George",  "Jeffrey", "AnHai",  "Alon",
    "Michael",  "Serge",   "Philip",  "Donald",  "Stefano", "Edgar",
    "Umeshwar", "Christos", "Luis",    "Johannes", "Laura",  "Joseph",
    "Yannis",   "Hosagrahar", "Carl",  "Arthur",  "Donovan", "Maurizio",
    "Leonid",   "Alberto",  "Renee",   "Rajeev",  "Dimitris", "Yannis",
    "Raghu",    "Kenneth",  "Timos",   "Abraham", "Richard", "Divesh",
    "Dan",      "S",        "Victor",  "Gerhard", "Eugene",  "Clement",
    "Carlo",    "Xin",      "Wei",     "Anastasia", "Andrew", "Samuel"};

// Title vocabulary. The workload terms (probabilistic, data, washington,
// tutorial, trio, sigmod-adjacent topics, stream, histograms, xml, keyword,
// search) are seeded with enough mass to make the Table 2 queries
// interesting at every lattice level.
const char* const kTitleSubjects[] = {
    "Probabilistic Data",       "Keyword Search",
    "Data Streams",             "XML Query Processing",
    "Histograms",               "Query Optimization",
    "Data Integration",         "Web Search",
    "Stream Processing",        "Uncertain Databases",
    "the Trio System",          "Provenance Tracking",
    "Sensor Data",              "Information Extraction",
    "Schema Matching",          "Top-k Ranking",
    "Skyline Queries",          "Spatial Indexing",
    "Column Stores",            "Transaction Processing",
    "View Maintenance",         "Deductive Databases",
    "Data Cleaning",            "Entity Resolution",
    "Approximate Counting",     "Selectivity Estimation",
    "Parallel Joins",           "Adaptive Indexing",
    "Workload Forecasting",     "Graph Reachability"};

const char* const kTitlePrefixes[] = {
    "On",          "Towards",   "Efficient",  "Scalable", "A Survey of",
    "Rethinking",  "Optimizing", "Debugging",  "Indexing", "Revisiting",
    "A Tutorial on", "Foundations of", "Adaptive", "Incremental",
    "Distributed"};

const char* const kTitleSuffixes[] = {
    "in Relational Databases", "over Data Streams",   "at Scale",
    "for the Web",             "with Histograms",     "using XML",
    "in Practice",             "for Probabilistic Data", "Revisited",
    "at the University of Washington", "in Sensor Networks",
    "with Provenance",         "under Uncertainty",   "for Keyword Search",
    "in Main Memory"};

const char* const kConferences[] = {
    "VLDB",  "SIGMOD Conference", "ICDE",  "EDBT",  "CIKM",
    "PODS",  "WWW",               "KDD",   "WSDM",  "ICDT"};

const char* const kWorkshopTopics[] = {
    "Probabilistic Data", "Keyword Search",  "Data Streams", "XML",
    "Web Data",           "Provenance",      "Histograms",   "Data Cleaning",
    "Uncertain Data",     "Information Extraction"};

const char* const kOrganizations[] = {
    "University of Washington",        "University of Wisconsin-Madison",
    "Stanford University",             "Microsoft Research",
    "IBM Almaden Research Center",     "Google",
    "AT&T Labs",                       "University of California Berkeley",
    "Massachusetts Institute of Technology", "Carnegie Mellon University",
    "ETH Zurich",                      "Max Planck Institute",
    "Bell Laboratories",               "Yahoo Research",
    "Oracle",                          "Hewlett-Packard Laboratories"};

const char* const kOrgSuffixes[] = {"University", "Institute", "Laboratories",
                                    "Research Center", "College"};

const char* const kOrgStems[] = {
    "Midwestern", "Lakeside", "Northern",  "Pacific",   "Atlantic",
    "Central",    "Highland", "Riverside", "Mountain",  "Coastal",
    "Prairie",    "Summit",   "Harbor",    "Evergreen", "Redwood"};

const char* const kTopics[] = {
    "Keyword Search",        "Probabilistic Data",   "Data Streams",
    "XML Processing",        "Histograms",           "Query Optimization",
    "Data Integration",      "Web Search",           "Stream Processing",
    "the Trio System",       "Provenance",           "Information Extraction",
    "Schema Matching",       "Top-k Ranking",        "Skyline Queries",
    "Spatial Data",          "Column Stores",        "Transactions",
    "View Maintenance",      "Data Cleaning",        "Entity Resolution",
    "Selectivity Estimation", "Parallel Databases",  "Indexing",
    "Sensor Networks",       "Graph Data",           "Text Mining",
    "Crowdsourcing",         "Map Reduce",           "Temporal Data"};

template <size_t N>
const char* Pick(const char* const (&pool)[N], Rng* rng) {
  return pool[rng->Uniform(N)];
}

template <size_t N>
constexpr size_t PoolSize(const char* const (&)[N]) {
  return N;
}

Status AddEntityTable(Database* db, const std::string& name,
                      const std::string& text_column,
                      const std::vector<std::string>& values) {
  KWSDBG_ASSIGN_OR_RETURN(
      Table * t, db->CreateTable(name, Schema({{"id", DataType::kInt64},
                                               {text_column,
                                                DataType::kString}})));
  for (size_t i = 0; i < values.size(); ++i) {
    KWSDBG_RETURN_NOT_OK(t->AppendRow(
        {Value(static_cast<int64_t>(i + 1)), Value(values[i])}));
  }
  return Status::OK();
}

/// Adds a relationship table with `count` edges sampled by the two samplers.
/// Edges are deduplicated so relationship multiplicity stays 0/1.
Status AddRelationshipTable(Database* db, Rng* rng, const std::string& name,
                            const std::string& left_fk, size_t left_n,
                            const ZipfSampler& left_sampler,
                            const std::string& right_fk, size_t right_n,
                            const ZipfSampler& right_sampler, size_t count,
                            bool forbid_self = false) {
  KWSDBG_ASSIGN_OR_RETURN(
      Table * t,
      db->CreateTable(name, Schema({{"id", DataType::kInt64},
                                    {left_fk, DataType::kInt64},
                                    {right_fk, DataType::kInt64}})));
  if (left_n == 0 || right_n == 0) return Status::OK();
  std::vector<std::pair<int64_t, int64_t>> edges;
  edges.reserve(count);
  std::unordered_map<int64_t, char> seen;
  size_t attempts = 0;
  while (edges.size() < count && attempts < count * 4) {
    ++attempts;
    int64_t l = static_cast<int64_t>(left_sampler.Sample(rng)) + 1;
    int64_t r = static_cast<int64_t>(right_sampler.Sample(rng)) + 1;
    if (forbid_self && l == r) continue;
    int64_t key = l * static_cast<int64_t>(right_n + 1) + r;
    if (seen.emplace(key, 1).second) edges.emplace_back(l, r);
  }
  int64_t id = 1;
  for (const auto& [l, r] : edges) {
    KWSDBG_RETURN_NOT_OK(
        t->AppendRow({Value(id++), Value(l), Value(r)}));
  }
  return Status::OK();
}

}  // namespace

DblifeConfig DblifeConfig::Scaled(double factor) const {
  DblifeConfig out = *this;
  auto scale = [factor](size_t n) {
    return static_cast<size_t>(static_cast<double>(n) * factor) + 1;
  };
  out.num_persons = scale(num_persons);
  out.num_publications = scale(num_publications);
  out.num_conferences = scale(num_conferences);
  out.num_organizations = scale(num_organizations);
  out.num_topics = scale(num_topics);
  out.relationship_scale = relationship_scale * factor;
  return out;
}

StatusOr<DblifeDataset> GenerateDblife(const DblifeConfig& config) {
  DblifeDataset ds;
  ds.db = std::make_unique<Database>();
  Rng rng(config.seed);

  // ---- Person: every surname in the pool appears at least once (workload
  // names are at the front of the pool, so they always exist).
  std::vector<std::string> persons;
  persons.reserve(config.num_persons);
  for (size_t i = 0; i < config.num_persons; ++i) {
    const char* surname = i < PoolSize(kSurnames)
                              ? kSurnames[i]
                              : Pick(kSurnames, &rng);
    persons.push_back(std::string(Pick(kFirstNames, &rng)) + " " + surname);
  }
  KWSDBG_RETURN_NOT_OK(AddEntityTable(ds.db.get(), "Person", "name", persons));

  // ---- Publication: Prefix + Subject + (sometimes) Suffix. Subjects are
  // Zipf-skewed so frequent terms ("data", "probabilistic") are common and
  // rarer ones ("histograms", "trio") stay niche.
  ZipfSampler subject_sampler(PoolSize(kTitleSubjects), 0.6);
  std::vector<std::string> pubs;
  pubs.reserve(config.num_publications);
  for (size_t i = 0; i < config.num_publications; ++i) {
    std::string title = std::string(Pick(kTitlePrefixes, &rng)) + " " +
                        kTitleSubjects[subject_sampler.Sample(&rng)];
    if (rng.Bernoulli(0.6)) {
      title += std::string(" ") + Pick(kTitleSuffixes, &rng);
    }
    pubs.push_back(std::move(title));
  }
  KWSDBG_RETURN_NOT_OK(
      AddEntityTable(ds.db.get(), "Publication", "title", pubs));

  // ---- Conference: the real venues plus synthetic workshops.
  std::vector<std::string> confs;
  confs.reserve(config.num_conferences);
  for (size_t i = 0; i < config.num_conferences; ++i) {
    if (i < PoolSize(kConferences)) {
      confs.push_back(kConferences[i]);
    } else {
      confs.push_back(std::string("Workshop on ") +
                      Pick(kWorkshopTopics, &rng) + " " +
                      std::to_string(2000 + rng.Uniform(15)));
    }
  }
  KWSDBG_RETURN_NOT_OK(
      AddEntityTable(ds.db.get(), "Conference", "name", confs));

  // ---- Organization.
  std::vector<std::string> orgs;
  orgs.reserve(config.num_organizations);
  for (size_t i = 0; i < config.num_organizations; ++i) {
    if (i < PoolSize(kOrganizations)) {
      orgs.push_back(kOrganizations[i]);
    } else {
      orgs.push_back(std::string(Pick(kOrgStems, &rng)) + " " +
                     Pick(kOrgSuffixes, &rng) + " " +
                     std::to_string(i));
    }
  }
  KWSDBG_RETURN_NOT_OK(
      AddEntityTable(ds.db.get(), "Organization", "name", orgs));

  // ---- Topic.
  std::vector<std::string> topics;
  topics.reserve(config.num_topics);
  for (size_t i = 0; i < config.num_topics; ++i) {
    if (i < PoolSize(kTopics)) {
      topics.push_back(kTopics[i]);
    } else {
      topics.push_back(std::string(kTopics[rng.Uniform(PoolSize(kTopics))]) +
                       " Subarea " + std::to_string(i));
    }
  }
  KWSDBG_RETURN_NOT_OK(AddEntityTable(ds.db.get(), "Topic", "name", topics));

  // ---- Relationship tables. Zipf samplers skew attachment toward the
  // low-id (famous) entities.
  const double theta = config.zipf_theta;
  ZipfSampler person_z(config.num_persons, theta);
  ZipfSampler pub_z(config.num_publications, 0.2);
  ZipfSampler conf_z(config.num_conferences, theta);
  ZipfSampler org_z(config.num_organizations, theta);
  ZipfSampler topic_z(config.num_topics, theta);
  auto scaled = [&](double base) {
    return static_cast<size_t>(base * config.relationship_scale);
  };

  // Like the real DBLife, several relationship *types* connect the same
  // entity pair (co-author and co-PC-member between persons; serves-on and
  // gave-talk between person and conference). This is what lets candidate
  // networks chain multiple relationships of the same shape — e.g. Q3's
  // Person-Person-Person networks — within the paper's one-free-copy model.
  KWSDBG_RETURN_NOT_OK(AddRelationshipTable(
      ds.db.get(), &rng, "writes", "person_id", config.num_persons, person_z,
      "publication_id", config.num_publications, pub_z,
      scaled(2.5 * static_cast<double>(config.num_publications))));
  KWSDBG_RETURN_NOT_OK(AddRelationshipTable(
      ds.db.get(), &rng, "coauthor_of", "person1_id", config.num_persons,
      person_z, "person2_id", config.num_persons, person_z,
      scaled(2.0 * static_cast<double>(config.num_persons)),
      /*forbid_self=*/true));
  KWSDBG_RETURN_NOT_OK(AddRelationshipTable(
      ds.db.get(), &rng, "co_pc_member", "person1_id", config.num_persons,
      person_z, "person2_id", config.num_persons, person_z,
      scaled(1.0 * static_cast<double>(config.num_persons)),
      /*forbid_self=*/true));
  KWSDBG_RETURN_NOT_OK(AddRelationshipTable(
      ds.db.get(), &rng, "serves_on", "person_id", config.num_persons,
      person_z, "conference_id", config.num_conferences, conf_z,
      scaled(12.0 * static_cast<double>(config.num_conferences))));
  KWSDBG_RETURN_NOT_OK(AddRelationshipTable(
      ds.db.get(), &rng, "gave_talk", "person_id", config.num_persons,
      person_z, "conference_id", config.num_conferences, conf_z,
      scaled(6.0 * static_cast<double>(config.num_conferences))));
  KWSDBG_RETURN_NOT_OK(AddRelationshipTable(
      ds.db.get(), &rng, "affiliated_with", "person_id", config.num_persons,
      person_z, "organization_id", config.num_organizations, org_z,
      scaled(1.1 * static_cast<double>(config.num_persons))));
  KWSDBG_RETURN_NOT_OK(AddRelationshipTable(
      ds.db.get(), &rng, "interested_in", "person_id", config.num_persons,
      person_z, "topic_id", config.num_topics, topic_z,
      scaled(1.5 * static_cast<double>(config.num_persons))));
  KWSDBG_RETURN_NOT_OK(AddRelationshipTable(
      ds.db.get(), &rng, "published_in", "publication_id",
      config.num_publications, pub_z, "conference_id", config.num_conferences,
      conf_z, scaled(0.9 * static_cast<double>(config.num_publications))));
  KWSDBG_RETURN_NOT_OK(AddRelationshipTable(
      ds.db.get(), &rng, "about_topic", "publication_id",
      config.num_publications, pub_z, "topic_id", config.num_topics, topic_z,
      scaled(1.4 * static_cast<double>(config.num_publications))));

  // ---- Schema graph (Fig. 8 shape).
  for (const char* entity :
       {"Person", "Publication", "Conference", "Organization", "Topic"}) {
    KWSDBG_CHECK_OK_OR_RETURN(ds.schema.AddRelation(entity, /*has_text=*/true));
  }
  for (const char* rel :
       {"writes", "coauthor_of", "co_pc_member", "serves_on", "gave_talk",
        "affiliated_with", "interested_in", "published_in", "about_topic"}) {
    KWSDBG_CHECK_OK_OR_RETURN(ds.schema.AddRelation(rel, /*has_text=*/false));
  }
  struct Fk {
    const char* table;
    const char* column;
    const char* target;
  };
  const Fk fks[] = {
      {"writes", "person_id", "Person"},
      {"writes", "publication_id", "Publication"},
      {"coauthor_of", "person1_id", "Person"},
      {"coauthor_of", "person2_id", "Person"},
      {"co_pc_member", "person1_id", "Person"},
      {"co_pc_member", "person2_id", "Person"},
      {"serves_on", "person_id", "Person"},
      {"serves_on", "conference_id", "Conference"},
      {"gave_talk", "person_id", "Person"},
      {"gave_talk", "conference_id", "Conference"},
      {"affiliated_with", "person_id", "Person"},
      {"affiliated_with", "organization_id", "Organization"},
      {"interested_in", "person_id", "Person"},
      {"interested_in", "topic_id", "Topic"},
      {"published_in", "publication_id", "Publication"},
      {"published_in", "conference_id", "Conference"},
      {"about_topic", "publication_id", "Publication"},
      {"about_topic", "topic_id", "Topic"},
  };
  for (const Fk& fk : fks) {
    KWSDBG_CHECK_OK_OR_RETURN(
        ds.schema.AddJoin(fk.table, fk.column, fk.target, "id"));
  }
  KWSDBG_RETURN_NOT_OK(ds.schema.ValidateAgainst(*ds.db));
  // Opt-in out-of-core mode: spill under KWSDBG_MEMORY_BUDGET if set.
  KWSDBG_RETURN_NOT_OK(ds.db->ApplyEnvMemoryBudget());
  return ds;
}

}  // namespace kwsdbg
