// The ten keyword queries of the paper's Table 2, used by every runtime
// experiment (Figs. 10-15, Tables 3-4).
#ifndef KWSDBG_DATASETS_WORKLOAD_H_
#define KWSDBG_DATASETS_WORKLOAD_H_

#include <string>
#include <vector>

namespace kwsdbg {

/// One workload entry.
struct WorkloadQuery {
  std::string id;    ///< "Q1" .. "Q10".
  std::string text;  ///< The keyword query.
};

/// Q1..Q10 verbatim from Table 2.
const std::vector<WorkloadQuery>& PaperWorkload();

}  // namespace kwsdbg

#endif  // KWSDBG_DATASETS_WORKLOAD_H_
