// The toy product database of the paper's Fig. 2: Items (I), Product Type
// (P), Color (C), and Attribute (A), with the exact tuples shown there.
// Used by the quickstart example and by tests asserting the paper's worked
// Example 1 (queries q1, q2 and their maximal alive sub-queries).
#ifndef KWSDBG_DATASETS_TOY_PRODUCT_DB_H_
#define KWSDBG_DATASETS_TOY_PRODUCT_DB_H_

#include <memory>

#include "common/status.h"
#include "graph/schema_graph.h"
#include "storage/database.h"

namespace kwsdbg {

/// A database plus the schema graph describing its key-FK joins.
struct ToyDataset {
  std::unique_ptr<Database> db;
  SchemaGraph schema;
};

/// Builds Fig. 2 verbatim. Joins: Item.p_type -> ProductType.id,
/// Item.color -> Color.id, Item.attr -> Attribute.id.
StatusOr<ToyDataset> BuildToyProductDatabase();

}  // namespace kwsdbg

#endif  // KWSDBG_DATASETS_TOY_PRODUCT_DB_H_
