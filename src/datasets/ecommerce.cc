#include "datasets/ecommerce.h"

#include <cstdint>

#include "common/rng.h"
#include "common/string_util.h"

namespace kwsdbg {

namespace {

struct ColorSpec {
  const char* name;
  const char* synonyms;
};

// "saffron" is deliberately absent from every synonym list: queries for
// saffron products only match items whose own text mentions it.
const ColorSpec kColors[] = {
    {"red", "crimson, scarlet"},      {"yellow", "golden, lemon"},
    {"pink", "peach, salmon"},        {"blue", "navy, azure"},
    {"green", "emerald, olive"},      {"white", "ivory, cream"},
    {"black", "onyx, charcoal"},      {"purple", "violet, lavender"},
    {"orange", "amber, tangerine"},   {"brown", "chocolate, walnut"},
};

const char* const kProductTypes[] = {"oil",     "candle", "incense",
                                     "diffuser", "soap",   "lotion",
                                     "shampoo",  "spray"};

struct AttributeSpec {
  const char* property;
  const char* value;
};

const AttributeSpec kAttributes[] = {
    {"scent", "saffron"},   {"scent", "vanilla"},  {"scent", "rose"},
    {"scent", "lavender"},  {"scent", "sandalwood"}, {"scent", "jasmine"},
    {"pattern", "floral"},  {"pattern", "checkered"}, {"pattern", "striped"},
    {"pattern", "plain"},   {"finish", "matte"},    {"finish", "glossy"},
};

const char* const kAdjectives[] = {"handmade", "organic", "premium",
                                   "classic",  "luxury",  "artisanal",
                                   "natural",  "vintage"};

const char* const kDescriptions[] = {
    "burns without fumes",        "burn time 50 hrs",
    "made from essential oils",   "gift boxed",
    "small batch",                "imported",
    "hypoallergenic",             "long lasting",
    "eco friendly packaging",     "best seller"};

}  // namespace

StatusOr<EcommerceDataset> GenerateEcommerce(const EcommerceConfig& config) {
  EcommerceDataset ds;
  ds.db = std::make_unique<Database>();
  Rng rng(config.seed);

  KWSDBG_ASSIGN_OR_RETURN(
      Table * ptype,
      ds.db->CreateTable("ProductType",
                         Schema({{"id", DataType::kInt64},
                                 {"product_type", DataType::kString}})));
  for (size_t i = 0; i < std::size(kProductTypes); ++i) {
    KWSDBG_RETURN_NOT_OK(ptype->AppendRow(
        {Value(static_cast<int64_t>(i + 1)), Value(kProductTypes[i])}));
  }

  KWSDBG_ASSIGN_OR_RETURN(
      Table * color,
      ds.db->CreateTable("Color", Schema({{"id", DataType::kInt64},
                                          {"color", DataType::kString},
                                          {"synonyms", DataType::kString}})));
  for (size_t i = 0; i < std::size(kColors); ++i) {
    KWSDBG_RETURN_NOT_OK(
        color->AppendRow({Value(static_cast<int64_t>(i + 1)),
                          Value(kColors[i].name), Value(kColors[i].synonyms)}));
  }

  KWSDBG_ASSIGN_OR_RETURN(
      Table * attr,
      ds.db->CreateTable("Attribute",
                         Schema({{"id", DataType::kInt64},
                                 {"property", DataType::kString},
                                 {"value", DataType::kString}})));
  for (size_t i = 0; i < std::size(kAttributes); ++i) {
    KWSDBG_RETURN_NOT_OK(attr->AppendRow({Value(static_cast<int64_t>(i + 1)),
                                          Value(kAttributes[i].property),
                                          Value(kAttributes[i].value)}));
  }

  KWSDBG_ASSIGN_OR_RETURN(
      Table * item,
      ds.db->CreateTable("Item", Schema({{"id", DataType::kInt64},
                                         {"name", DataType::kString},
                                         {"p_type", DataType::kInt64},
                                         {"color", DataType::kInt64},
                                         {"attr", DataType::kInt64},
                                         {"cost", DataType::kDouble},
                                         {"description", DataType::kString}})));
  for (size_t i = 0; i < config.num_items; ++i) {
    const size_t type_idx = rng.Uniform(std::size(kProductTypes));
    const size_t attr_idx = rng.Uniform(std::size(kAttributes));
    const bool null_color = rng.Bernoulli(config.null_color_rate);
    const size_t color_idx = rng.Uniform(std::size(kColors));
    std::string name = std::string(kAdjectives[rng.Uniform(
                           std::size(kAdjectives))]) +
                       " ";
    if (!null_color) {
      name += std::string(kColors[color_idx].name) + " ";
    }
    // Scented items mention the scent in the name ("vanilla scented candle").
    const AttributeSpec& a = kAttributes[attr_idx];
    if (std::string(a.property) == "scent") {
      name += std::string(a.value) + " scented ";
    }
    name += kProductTypes[type_idx];
    std::string description =
        std::string(kDescriptions[rng.Uniform(std::size(kDescriptions))]) +
        ". " + kDescriptions[rng.Uniform(std::size(kDescriptions))] + ".";
    KWSDBG_RETURN_NOT_OK(item->AppendRow(
        {Value(static_cast<int64_t>(i + 1)), Value(name),
         Value(static_cast<int64_t>(type_idx + 1)),
         null_color ? Value::Null()
                    : Value(static_cast<int64_t>(color_idx + 1)),
         Value(static_cast<int64_t>(attr_idx + 1)),
         Value(1.99 + static_cast<double>(rng.Uniform(4000)) / 100.0),
         Value(description)}));
  }

  KWSDBG_CHECK_OK_OR_RETURN(ds.schema.AddRelation("ProductType", true));
  KWSDBG_CHECK_OK_OR_RETURN(ds.schema.AddRelation("Color", true));
  KWSDBG_CHECK_OK_OR_RETURN(ds.schema.AddRelation("Attribute", true));
  KWSDBG_CHECK_OK_OR_RETURN(ds.schema.AddRelation("Item", true));
  KWSDBG_CHECK_OK_OR_RETURN(
      ds.schema.AddJoin("Item", "p_type", "ProductType", "id"));
  KWSDBG_CHECK_OK_OR_RETURN(ds.schema.AddJoin("Item", "color", "Color", "id"));
  KWSDBG_CHECK_OK_OR_RETURN(
      ds.schema.AddJoin("Item", "attr", "Attribute", "id"));
  KWSDBG_RETURN_NOT_OK(ds.schema.ValidateAgainst(*ds.db));
  // Opt-in out-of-core mode: spill under KWSDBG_MEMORY_BUDGET if set.
  KWSDBG_RETURN_NOT_OK(ds.db->ApplyEnvMemoryBudget());
  return ds;
}

StatusOr<bool> AddColorSynonym(Database* db, const std::string& color,
                               const std::string& synonym) {
  KWSDBG_ASSIGN_OR_RETURN(Table * table, db->GetTable("Color"));
  KWSDBG_ASSIGN_OR_RETURN(size_t name_col,
                          table->schema().ColumnIndex("color"));
  KWSDBG_ASSIGN_OR_RETURN(size_t syn_col,
                          table->schema().ColumnIndex("synonyms"));
  for (size_t row = 0; row < table->num_rows(); ++row) {
    const Value& v = table->at(row, name_col);
    if (!v.is_null() && EqualsCaseInsensitive(v.AsString(), color)) {
      const Value& old = table->at(row, syn_col);
      std::string updated =
          old.is_null() ? synonym : old.AsString() + ", " + synonym;
      KWSDBG_RETURN_NOT_OK(table->SetValue(row, syn_col, Value(updated)));
      return true;
    }
  }
  return false;
}

}  // namespace kwsdbg
