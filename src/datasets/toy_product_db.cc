#include "datasets/toy_product_db.h"

#include <cstdint>

namespace kwsdbg {

StatusOr<ToyDataset> BuildToyProductDatabase() {
  ToyDataset ds;
  ds.db = std::make_unique<Database>();

  // Product Type (P).
  KWSDBG_ASSIGN_OR_RETURN(
      Table * p,
      ds.db->CreateTable("ProductType",
                         Schema({{"id", DataType::kInt64},
                                 {"product_type", DataType::kString}})));
  KWSDBG_RETURN_NOT_OK(p->AppendRow({Value(int64_t{1}), Value("oil")}));
  KWSDBG_RETURN_NOT_OK(p->AppendRow({Value(int64_t{2}), Value("candle")}));
  KWSDBG_RETURN_NOT_OK(p->AppendRow({Value(int64_t{3}), Value("incense")}));

  // Color (C).
  KWSDBG_ASSIGN_OR_RETURN(
      Table * c, ds.db->CreateTable("Color",
                                    Schema({{"id", DataType::kInt64},
                                            {"color", DataType::kString},
                                            {"synonyms", DataType::kString}})));
  KWSDBG_RETURN_NOT_OK(
      c->AppendRow({Value(int64_t{1}), Value("red"), Value("crimson, orange")}));
  KWSDBG_RETURN_NOT_OK(c->AppendRow(
      {Value(int64_t{2}), Value("yellow"), Value("golden, lemon")}));
  KWSDBG_RETURN_NOT_OK(
      c->AppendRow({Value(int64_t{3}), Value("pink"), Value("peach, salmon")}));
  KWSDBG_RETURN_NOT_OK(c->AppendRow(
      {Value(int64_t{4}), Value("saffron"), Value("yellow, orange")}));

  // Attribute (A).
  KWSDBG_ASSIGN_OR_RETURN(
      Table * a, ds.db->CreateTable("Attribute",
                                    Schema({{"id", DataType::kInt64},
                                            {"property", DataType::kString},
                                            {"value", DataType::kString}})));
  KWSDBG_RETURN_NOT_OK(
      a->AppendRow({Value(int64_t{1}), Value("scent"), Value("saffron")}));
  KWSDBG_RETURN_NOT_OK(
      a->AppendRow({Value(int64_t{2}), Value("scent"), Value("vanilla")}));
  KWSDBG_RETURN_NOT_OK(
      a->AppendRow({Value(int64_t{3}), Value("pattern"), Value("floral")}));
  KWSDBG_RETURN_NOT_OK(
      a->AppendRow({Value(int64_t{4}), Value("pattern"), Value("checkered")}));

  // Item (I).
  KWSDBG_ASSIGN_OR_RETURN(
      Table * i,
      ds.db->CreateTable("Item", Schema({{"id", DataType::kInt64},
                                         {"name", DataType::kString},
                                         {"p_type", DataType::kInt64},
                                         {"color", DataType::kInt64},
                                         {"attr", DataType::kInt64},
                                         {"cost", DataType::kDouble},
                                         {"description", DataType::kString}})));
  KWSDBG_RETURN_NOT_OK(i->AppendRow(
      {Value(int64_t{1}), Value("saffron scented oil"), Value(int64_t{1}),
       Value::Null(), Value(int64_t{1}), Value(4.99),
       Value("3.4 oz. burns without fumes.")}));
  KWSDBG_RETURN_NOT_OK(i->AppendRow(
      {Value(int64_t{2}), Value("vanilla scented candle"), Value(int64_t{2}),
       Value(int64_t{2}), Value(int64_t{2}), Value(5.99),
       Value("burn time 50 hrs. 6.4 oz. 2pck.")}));
  KWSDBG_RETURN_NOT_OK(i->AppendRow(
      {Value(int64_t{3}), Value("crimson scented candle"), Value(int64_t{2}),
       Value(int64_t{1}), Value(int64_t{3}), Value(3.99),
       Value("hand-made. saffron scented. 2pck.")}));
  KWSDBG_RETURN_NOT_OK(i->AppendRow(
      {Value(int64_t{4}), Value("red checkered candle"), Value(int64_t{2}),
       Value(int64_t{1}), Value(int64_t{4}), Value(3.99),
       Value("rose scented. made from essential oils.")}));

  // Schema graph: the key-foreign-key arrows of Fig. 2.
  KWSDBG_CHECK_OK_OR_RETURN(ds.schema.AddRelation("ProductType", true));
  KWSDBG_CHECK_OK_OR_RETURN(ds.schema.AddRelation("Color", true));
  KWSDBG_CHECK_OK_OR_RETURN(ds.schema.AddRelation("Attribute", true));
  KWSDBG_CHECK_OK_OR_RETURN(ds.schema.AddRelation("Item", true));
  KWSDBG_CHECK_OK_OR_RETURN(
      ds.schema.AddJoin("Item", "p_type", "ProductType", "id"));
  KWSDBG_CHECK_OK_OR_RETURN(ds.schema.AddJoin("Item", "color", "Color", "id"));
  KWSDBG_CHECK_OK_OR_RETURN(
      ds.schema.AddJoin("Item", "attr", "Attribute", "id"));
  KWSDBG_RETURN_NOT_OK(ds.schema.ValidateAgainst(*ds.db));
  // Opt-in out-of-core mode: spill under KWSDBG_MEMORY_BUDGET if set.
  KWSDBG_RETURN_NOT_OK(ds.db->ApplyEnvMemoryBudget());
  return ds;
}

}  // namespace kwsdbg
