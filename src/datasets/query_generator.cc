#include "datasets/query_generator.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"

namespace kwsdbg {

RandomQueryGenerator::RandomQueryGenerator(const InvertedIndex* index,
                                           QueryGeneratorConfig config)
    : config_(config),
      rng_(config.seed),
      sampler_(1, 0.0) /* replaced below */ {
  std::vector<std::pair<size_t, std::string>> ranked;
  for (const std::string& term : index->Terms()) {
    if (term.size() < config_.min_term_length) continue;
    ranked.emplace_back(index->PostingsFor(term).size(), term);
  }
  // Most popular first; name as tiebreak for determinism.
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              return a.first != b.first ? a.first > b.first
                                        : a.second < b.second;
            });
  vocabulary_.reserve(ranked.size());
  for (auto& [count, term] : ranked) vocabulary_.push_back(std::move(term));
  KWSDBG_CHECK(!vocabulary_.empty()) << "index vocabulary is empty";
  sampler_ = ZipfSampler(vocabulary_.size(), config_.popularity_theta);
}

std::string RandomQueryGenerator::Next() {
  const size_t k =
      config_.min_keywords +
      rng_.Uniform(config_.max_keywords - config_.min_keywords + 1);
  std::unordered_set<std::string> used;
  std::string query;
  size_t guard = 0;
  while (used.size() < k && guard++ < 1000) {
    const std::string& term = vocabulary_[sampler_.Sample(&rng_)];
    if (!used.insert(term).second) continue;
    if (!query.empty()) query += " ";
    query += term;
  }
  return query;
}

std::vector<std::string> RandomQueryGenerator::Batch(size_t n) {
  std::vector<std::string> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(Next());
  return out;
}

}  // namespace kwsdbg
