// Synthetic DBLife dataset generator (substitute for the paper's 40 MB,
// 801,189-tuple DBLife snapshot, Fig. 8): a star schema of 5 text-bearing
// entity tables — Person, Publication, Conference, Organization, Topic — and
// 9 text-free relationship tables connecting them. Deterministic given the
// seed; guarantees the Table 2 workload terms occur in the tables the paper
// says they occur in (e.g. "Washington" in Person, Publication, and
// Organization).
#ifndef KWSDBG_DATASETS_DBLIFE_H_
#define KWSDBG_DATASETS_DBLIFE_H_

#include <cstdint>
#include <memory>

#include "common/status.h"
#include "graph/schema_graph.h"
#include "storage/database.h"

namespace kwsdbg {

/// Scale and skew knobs. Defaults produce roughly 100k tuples; multiply
/// every count by ~8 to approach the paper's snapshot.
struct DblifeConfig {
  uint64_t seed = 42;
  size_t num_persons = 2000;
  size_t num_publications = 6000;
  size_t num_conferences = 60;
  size_t num_organizations = 300;
  size_t num_topics = 150;
  /// Multiplies the relationship-table cardinalities.
  double relationship_scale = 1.0;
  /// Zipf exponent for popularity-skewed attachment (authorship, interest).
  double zipf_theta = 0.8;

  /// A config scaled uniformly by `factor` (relationship scale included).
  DblifeConfig Scaled(double factor) const;
};

/// The generated database and its schema graph.
struct DblifeDataset {
  std::unique_ptr<Database> db;
  SchemaGraph schema;
};

/// Generates the dataset. Entity tables: Person(id, name),
/// Publication(id, title), Conference(id, name), Organization(id, name),
/// Topic(id, name). Relationship tables (id + two FKs each): writes,
/// coauthor_of, co_pc_member, serves_on, gave_talk, affiliated_with,
/// interested_in, published_in, about_topic. As in the real DBLife, some
/// entity pairs are connected by more than one relationship type — that is
/// what lets candidate networks chain several same-shape relationships
/// (e.g. three Person keywords at lattice level 5).
StatusOr<DblifeDataset> GenerateDblife(const DblifeConfig& config = {});

}  // namespace kwsdbg

#endif  // KWSDBG_DATASETS_DBLIFE_H_
