// Random keyword-query generation from a database's actual vocabulary, for
// robustness sweeps beyond the paper's ten hand-picked queries. Terms are
// drawn from the inverted index (so every generated keyword binds to at
// least one relation), optionally popularity-weighted so workloads mix
// frequent and rare terms the way real query logs do.
#ifndef KWSDBG_DATASETS_QUERY_GENERATOR_H_
#define KWSDBG_DATASETS_QUERY_GENERATOR_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "text/inverted_index.h"

namespace kwsdbg {

/// Generation knobs.
struct QueryGeneratorConfig {
  uint64_t seed = 1;
  size_t min_keywords = 1;
  size_t max_keywords = 3;
  /// Skip terms shorter than this (drops ids, initials, numbers).
  size_t min_term_length = 3;
  /// Zipf exponent over the popularity-ranked vocabulary (0 = uniform).
  double popularity_theta = 0.6;
};

/// Deterministic generator over one index's vocabulary.
class RandomQueryGenerator {
 public:
  RandomQueryGenerator(const InvertedIndex* index,
                       QueryGeneratorConfig config = {});

  /// Next query: 1..max distinct keywords joined by spaces. The vocabulary
  /// must be non-empty (CHECK).
  std::string Next();

  /// Convenience: a batch of `n` queries.
  std::vector<std::string> Batch(size_t n);

  size_t vocabulary_size() const { return vocabulary_.size(); }

 private:
  QueryGeneratorConfig config_;
  std::vector<std::string> vocabulary_;  // popularity-ranked, most first
  Rng rng_;
  ZipfSampler sampler_;
};

}  // namespace kwsdbg

#endif  // KWSDBG_DATASETS_QUERY_GENERATOR_H_
