#include "datasets/workload.h"

namespace kwsdbg {

const std::vector<WorkloadQuery>& PaperWorkload() {
  static const std::vector<WorkloadQuery> kWorkload = {
      {"Q1", "Widom Trio"},
      {"Q2", "Hristidis Keyword Search"},
      {"Q3", "Agrawal Chaudhuri Das"},
      {"Q4", "DeRose VLDB"},
      {"Q5", "Gray SIGMOD"},
      {"Q6", "DeWitt tutorial"},
      {"Q7", "Probabilistic Data"},
      {"Q8", "Probabilistic Data Washington"},
      {"Q9", "SIGMOD XML"},
      {"Q10", "Stream data histograms"},
  };
  return kWorkload;
}

}  // namespace kwsdbg
