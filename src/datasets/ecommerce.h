// Synthetic e-commerce catalog in the Fig. 2 schema shape (Items, product
// types, colors with synonym lists, attributes), scaled up and seeded. Used
// by the ecommerce_debugging example to demonstrate the paper's motivating
// loop: a keyword query returns nothing, the debugger surfaces the frontier
// cause, the merchandiser patches the vocabulary, and the query starts
// returning results.
#ifndef KWSDBG_DATASETS_ECOMMERCE_H_
#define KWSDBG_DATASETS_ECOMMERCE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "graph/schema_graph.h"
#include "storage/database.h"

namespace kwsdbg {

/// Catalog scale knobs.
struct EcommerceConfig {
  uint64_t seed = 7;
  size_t num_items = 500;
  /// Fraction of items with a NULL color (accessories etc.).
  double null_color_rate = 0.1;
};

struct EcommerceDataset {
  std::unique_ptr<Database> db;
  SchemaGraph schema;
};

/// Generates the catalog. Tables: Item(id, name, p_type, color, attr, cost,
/// description), ProductType(id, product_type), Color(id, color, synonyms),
/// Attribute(id, property, value). By construction the color vocabulary
/// does NOT list "saffron" as a synonym of yellow, so "saffron <type>"
/// queries for types that only exist in yellow are non-answers — the
/// situation Example 1 of the paper debugs.
StatusOr<EcommerceDataset> GenerateEcommerce(const EcommerceConfig& config = {});

/// Appends `synonym` to the synonyms list of the named color and returns
/// true if the color exists. The inverted index must be rebuilt afterwards
/// (as in production, where vocabulary edits trigger reindexing).
StatusOr<bool> AddColorSynonym(Database* db, const std::string& color,
                               const std::string& synonym);

}  // namespace kwsdbg

#endif  // KWSDBG_DATASETS_ECOMMERCE_H_
