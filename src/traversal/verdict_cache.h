// Cross-query verdict cache for node aliveness (the system-level extension
// of the paper's intra-query reuse, rules R1/R2): the truth of "does this
// join network return a tuple?" depends only on the network's shape, the
// keywords bound to its copies, and the database contents. Keying verdicts
// by (canonical node label, keyword-binding signature, database epoch, and a
// relation-set fingerprint over the per-table data epochs of the relations
// the network binds) lets a session skip the SQL entirely when the same
// sub-query recurs — across interpretations of one query, across repeated
// queries, and across concurrent frontier workers — while a live write to
// one table invalidates only the verdicts that bound it: unrelated verdicts
// keep matching because their fingerprint omits the mutated table's epoch.
// Thread-safe (sharded LRU inside).
#ifndef KWSDBG_TRAVERSAL_VERDICT_CACHE_H_
#define KWSDBG_TRAVERSAL_VERDICT_CACHE_H_

#include <cstdint>
#include <optional>
#include <string>

#include "common/hash.h"
#include "common/lru_cache.h"

namespace kwsdbg {

/// Composite cache key. The canonical label (Algorithm 2) identifies the
/// join network up to isomorphism; the binding signature pins which keyword
/// each copy carries; the epoch invalidates verdicts on catalog-level
/// mutation; the relation-set fingerprint (a hash over the bound tables'
/// (catalog index, data epoch) pairs) invalidates them on per-table writes.
struct VerdictKey {
  std::string canonical;    ///< CanonicalLabel of the node's join tree.
  std::string binding_sig;  ///< KeywordBinding::Signature().
  uint64_t epoch = 0;       ///< Database::epoch() at evaluation time.
  uint64_t relset = 0;      ///< Fingerprint of the bound tables' data epochs.

  bool operator==(const VerdictKey&) const = default;
};

struct VerdictKeyHash {
  size_t operator()(const VerdictKey& k) const {
    size_t seed = std::hash<std::string>{}(k.canonical);
    HashCombine(&seed, std::hash<std::string>{}(k.binding_sig));
    HashCombine(&seed, std::hash<uint64_t>{}(k.epoch));
    HashCombine(&seed, std::hash<uint64_t>{}(k.relset));
    return seed;
  }
};

/// Cached payload: the verdict plus the relation mask (bit = catalog index,
/// >= 63 collapse onto bit 63) of the tables it depends on, so
/// EvictRelations can drop exactly the entries a write touches.
struct VerdictValue {
  bool alive = false;
  uint64_t rel_mask = 0;
};

/// Point-in-time counters (see LruCacheStats for field semantics).
using VerdictCacheStats = LruCacheStats;

/// Session-scoped aliveness memo shared by evaluators and frontier workers.
class VerdictCache {
 public:
  /// `capacity` bounds resident verdicts; entries are ~100 bytes each.
  explicit VerdictCache(size_t capacity = kDefaultCapacity,
                        size_t num_shards = 8);

  /// The verdict recorded for this (node, binding, epoch, relation
  /// fingerprint), if any. A stale fingerprint simply misses: the entry it
  /// would have matched dies by EvictRelations or LRU aging.
  std::optional<bool> Lookup(const std::string& canonical,
                             const std::string& binding_sig, uint64_t epoch,
                             uint64_t relset = 0);

  /// Records a verdict computed by SQL evaluation. `rel_mask` names the
  /// relations the verdict's join network binds (RelationFences::BitFor
  /// bits); 0 means "unknown", which EvictRelations treats as matching
  /// every write (safe, never stale).
  void Insert(const std::string& canonical, const std::string& binding_sig,
              uint64_t epoch, uint64_t relset, bool alive,
              uint64_t rel_mask);

  /// Legacy signature (no relation tracking): relset 0, rel_mask 0.
  void Insert(const std::string& canonical, const std::string& binding_sig,
              uint64_t epoch, bool alive) {
    Insert(canonical, binding_sig, epoch, /*relset=*/0, alive,
           /*rel_mask=*/0);
  }

  /// Partial invalidation: drops every verdict whose relation mask
  /// intersects `rel_mask` (entries inserted with mask 0 always match).
  /// Returns the number evicted.
  size_t EvictRelations(uint64_t rel_mask);

  /// Drops all entries (e.g. on explicit session reset).
  void Clear();

  VerdictCacheStats stats() const;

  static constexpr size_t kDefaultCapacity = 1 << 16;

 private:
  ShardedLruCache<VerdictKey, VerdictValue, VerdictKeyHash> cache_;
};

}  // namespace kwsdbg

#endif  // KWSDBG_TRAVERSAL_VERDICT_CACHE_H_
