// Cross-query verdict cache for node aliveness (the system-level extension
// of the paper's intra-query reuse, rules R1/R2): the truth of "does this
// join network return a tuple?" depends only on the network's shape, the
// keywords bound to its copies, and the database contents. Keying verdicts
// by (canonical node label, keyword-binding signature, database epoch)
// therefore lets a session skip the SQL entirely when the same sub-query
// recurs — across interpretations of one query, across repeated queries,
// and across concurrent frontier workers. Thread-safe (sharded LRU inside).
#ifndef KWSDBG_TRAVERSAL_VERDICT_CACHE_H_
#define KWSDBG_TRAVERSAL_VERDICT_CACHE_H_

#include <cstdint>
#include <optional>
#include <string>

#include "common/hash.h"
#include "common/lru_cache.h"

namespace kwsdbg {

/// Composite cache key. The canonical label (Algorithm 2) identifies the
/// join network up to isomorphism; the binding signature pins which keyword
/// each copy carries; the epoch invalidates verdicts on database mutation.
struct VerdictKey {
  std::string canonical;    ///< CanonicalLabel of the node's join tree.
  std::string binding_sig;  ///< KeywordBinding::Signature().
  uint64_t epoch = 0;       ///< Database::epoch() at evaluation time.

  bool operator==(const VerdictKey&) const = default;
};

struct VerdictKeyHash {
  size_t operator()(const VerdictKey& k) const {
    size_t seed = std::hash<std::string>{}(k.canonical);
    HashCombine(&seed, std::hash<std::string>{}(k.binding_sig));
    HashCombine(&seed, std::hash<uint64_t>{}(k.epoch));
    return seed;
  }
};

/// Point-in-time counters (see LruCacheStats for field semantics).
using VerdictCacheStats = LruCacheStats;

/// Session-scoped aliveness memo shared by evaluators and frontier workers.
class VerdictCache {
 public:
  /// `capacity` bounds resident verdicts; entries are ~100 bytes each.
  explicit VerdictCache(size_t capacity = kDefaultCapacity,
                        size_t num_shards = 8);

  /// The verdict recorded for this (node, binding, epoch), if any.
  std::optional<bool> Lookup(const std::string& canonical,
                             const std::string& binding_sig, uint64_t epoch);

  /// Records a verdict computed by SQL evaluation.
  void Insert(const std::string& canonical, const std::string& binding_sig,
              uint64_t epoch, bool alive);

  /// Drops all entries (e.g. on explicit session reset).
  void Clear();

  VerdictCacheStats stats() const;

  static constexpr size_t kDefaultCapacity = 1 << 16;

 private:
  ShardedLruCache<VerdictKey, bool, VerdictKeyHash> cache_;
};

}  // namespace kwsdbg

#endif  // KWSDBG_TRAVERSAL_VERDICT_CACHE_H_
