// Concrete strategy constructors (used by the MakeStrategy factory and by
// tests that need a specific strategy type).
#ifndef KWSDBG_TRAVERSAL_STRATEGIES_H_
#define KWSDBG_TRAVERSAL_STRATEGIES_H_

#include <memory>

#include "traversal/strategy.h"

namespace kwsdbg {

/// BU (Sec. 2.5.1): per MTN, sweep its sub-lattice bottom-up; R2 propagates
/// deadness upward. No sharing across MTNs.
std::unique_ptr<TraversalStrategy> MakeBottomUp(ParallelOptions parallel = {});

/// TD (Sec. 2.5.1): per MTN, sweep its sub-lattice top-down; R1 propagates
/// aliveness downward. No sharing across MTNs.
std::unique_ptr<TraversalStrategy> MakeTopDown(ParallelOptions parallel = {});

/// BUWR (Sec. 2.5.2, Algorithm 3): one global bottom-up sweep over all MTNs'
/// sub-lattices, sharing every common descendant's classification.
std::unique_ptr<TraversalStrategy> MakeBottomUpWithReuse(
    ParallelOptions parallel = {});

/// TDWR (Sec. 2.5.2): the top-down twin of BUWR.
std::unique_ptr<TraversalStrategy> MakeTopDownWithReuse(
    ParallelOptions parallel = {});

/// SBH (Sec. 2.5.3): greedy selection of the node whose evaluation minimizes
/// the expected remaining search space (Eq. 1) with alive-probability p_a.
std::unique_ptr<TraversalStrategy> MakeScoreBased(SbhOptions options,
                                                  ParallelOptions parallel = {});

}  // namespace kwsdbg

#endif  // KWSDBG_TRAVERSAL_STRATEGIES_H_
