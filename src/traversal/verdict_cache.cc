#include "traversal/verdict_cache.h"

namespace kwsdbg {

VerdictCache::VerdictCache(size_t capacity, size_t num_shards)
    : cache_(capacity, num_shards) {}

std::optional<bool> VerdictCache::Lookup(const std::string& canonical,
                                         const std::string& binding_sig,
                                         uint64_t epoch) {
  return cache_.Get(VerdictKey{canonical, binding_sig, epoch});
}

void VerdictCache::Insert(const std::string& canonical,
                          const std::string& binding_sig, uint64_t epoch,
                          bool alive) {
  cache_.Put(VerdictKey{canonical, binding_sig, epoch}, alive);
}

void VerdictCache::Clear() { cache_.Clear(); }

VerdictCacheStats VerdictCache::stats() const { return cache_.stats(); }

}  // namespace kwsdbg
