#include "traversal/verdict_cache.h"

namespace kwsdbg {

VerdictCache::VerdictCache(size_t capacity, size_t num_shards)
    : cache_(capacity, num_shards) {}

std::optional<bool> VerdictCache::Lookup(const std::string& canonical,
                                         const std::string& binding_sig,
                                         uint64_t epoch, uint64_t relset) {
  std::optional<VerdictValue> v =
      cache_.Get(VerdictKey{canonical, binding_sig, epoch, relset});
  if (!v.has_value()) return std::nullopt;
  return v->alive;
}

void VerdictCache::Insert(const std::string& canonical,
                          const std::string& binding_sig, uint64_t epoch,
                          uint64_t relset, bool alive, uint64_t rel_mask) {
  cache_.Put(VerdictKey{canonical, binding_sig, epoch, relset},
             VerdictValue{alive, rel_mask});
}

size_t VerdictCache::EvictRelations(uint64_t rel_mask) {
  return cache_.EraseIf([rel_mask](const VerdictKey&, const VerdictValue& v) {
    // Mask 0 = inserted without relation tracking: must not survive any
    // write (we cannot prove it independent of the mutated table).
    return v.rel_mask == 0 || (v.rel_mask & rel_mask) != 0;
  });
}

void VerdictCache::Clear() { cache_.Clear(); }

VerdictCacheStats VerdictCache::stats() const { return cache_.stats(); }

}  // namespace kwsdbg
