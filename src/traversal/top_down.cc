// TD (paper Sec. 2.5.1): classify one MTN at a time, sweeping its sub-lattice
// from the MTN down to the single-table level; R1 propagates aliveness to all
// descendants. No sharing across MTNs.
//
// Frontier batching: same-level nodes are independent (R1 only reaches
// strictly lower levels), so each level's unknown nodes are evaluated as one
// parallel batch and folded in serially — bit-identical to the serial sweep.
#include <algorithm>
#include <map>

#include "common/timer.h"
#include "traversal/parallel_frontier.h"
#include "traversal/strategies.h"

namespace kwsdbg {

namespace {

class TopDownStrategy : public TraversalStrategy {
 public:
  explicit TopDownStrategy(ParallelOptions parallel) : parallel_(parallel) {}

  std::string_view name() const override { return "TD"; }

  StatusOr<TraversalResult> Run(const PrunedLattice& pl,
                                QueryEvaluator* evaluator) override {
    Timer total;
    TraversalResult result;
    FrontierEvaluator frontier(evaluator, parallel_);
    std::vector<NodeId> batch;
    std::vector<char> alive;
    for (NodeId m : pl.mtns()) {
      NodeStatusMap status(pl.lattice().num_nodes());
      std::map<size_t, std::vector<NodeId>, std::greater<size_t>> by_level;
      by_level[pl.lattice().node(m).level].push_back(m);
      for (NodeId d : pl.RetainedDescendants(m)) {
        by_level[pl.lattice().node(d).level].push_back(d);
      }
      for (auto& [level, nodes] : by_level) {
        std::sort(nodes.begin(), nodes.end());
        batch.clear();
        for (NodeId n : nodes) {
          if (!status.IsKnown(n)) batch.push_back(n);  // not inferred via R1
        }
        Status st = frontier.cancelled()
                        ? Status::DeadlineExceeded("traversal cancelled")
                        : frontier.EvaluateBatch(batch, &alive);
        if (internal::IsDeadlineExceeded(st)) {
          internal::AppendOutcomeIfKnown(pl, status, m, &result);
          result.truncated = true;
          frontier.FillStats(&result.stats);
          result.stats.total_millis = total.ElapsedMillis();
          return result;
        }
        KWSDBG_RETURN_NOT_OK(st);
        for (size_t i = 0; i < batch.size(); ++i) {
          if (alive[i]) {
            status.MarkAliveWithDescendants(batch[i], pl);
          } else {
            status.Set(batch[i], NodeStatus::kDead);
          }
        }
      }
      MtnOutcome outcome;
      outcome.mtn = m;
      outcome.alive = status.IsAlive(m);
      if (!outcome.alive) {
        outcome.mpans = internal::ExtractMpans(pl, status, m);
        outcome.culprits = internal::ExtractMinimalDead(pl, status, m);
      }
      result.outcomes.push_back(std::move(outcome));
    }
    frontier.FillStats(&result.stats);
    result.stats.total_millis = total.ElapsedMillis();
    return result;
  }

 private:
  ParallelOptions parallel_;
};

}  // namespace

std::unique_ptr<TraversalStrategy> MakeTopDown(ParallelOptions parallel) {
  return std::make_unique<TopDownStrategy>(parallel);
}

}  // namespace kwsdbg
