// TD (paper Sec. 2.5.1): classify one MTN at a time, sweeping its sub-lattice
// from the MTN down to the single-table level; R1 propagates aliveness to all
// descendants. No sharing across MTNs.
#include <algorithm>
#include <map>

#include "common/timer.h"
#include "traversal/strategies.h"

namespace kwsdbg {

namespace {

class TopDownStrategy : public TraversalStrategy {
 public:
  std::string_view name() const override { return "TD"; }

  StatusOr<TraversalResult> Run(const PrunedLattice& pl,
                                QueryEvaluator* evaluator) override {
    Timer total;
    const size_t sql_before = evaluator->sql_executed();
    const double ms_before = evaluator->sql_millis();
    TraversalResult result;
    for (NodeId m : pl.mtns()) {
      NodeStatusMap status(pl.lattice().num_nodes());
      std::map<size_t, std::vector<NodeId>, std::greater<size_t>> by_level;
      by_level[pl.lattice().node(m).level].push_back(m);
      for (NodeId d : pl.RetainedDescendants(m)) {
        by_level[pl.lattice().node(d).level].push_back(d);
      }
      for (auto& [level, nodes] : by_level) {
        std::sort(nodes.begin(), nodes.end());
        for (NodeId n : nodes) {
          if (status.IsKnown(n)) continue;  // inferred alive via R1
          KWSDBG_ASSIGN_OR_RETURN(bool alive, evaluator->IsAlive(n));
          if (alive) {
            status.MarkAliveWithDescendants(n, pl);
          } else {
            status.Set(n, NodeStatus::kDead);
          }
        }
      }
      MtnOutcome outcome;
      outcome.mtn = m;
      outcome.alive = status.IsAlive(m);
      if (!outcome.alive) {
        outcome.mpans = internal::ExtractMpans(pl, status, m);
        outcome.culprits = internal::ExtractMinimalDead(pl, status, m);
      }
      result.outcomes.push_back(std::move(outcome));
    }
    result.stats.sql_queries = evaluator->sql_executed() - sql_before;
    result.stats.sql_millis = evaluator->sql_millis() - ms_before;
    result.stats.total_millis = total.ElapsedMillis();
    return result;
  }
};

}  // namespace

std::unique_ptr<TraversalStrategy> MakeTopDown() {
  return std::make_unique<TopDownStrategy>();
}

}  // namespace kwsdbg
