#include "traversal/pa_model.h"

#include <algorithm>
#include <bit>

#include "common/hash.h"
#include "kws/keyword_binding.h"
#include "kws/pruned_lattice.h"
#include "storage/database.h"
#include "text/inverted_index.h"

namespace kwsdbg {

namespace {

constexpr uint64_t kAliveUnit = uint64_t{1} << 32;

uint64_t AliveOf(uint64_t packed) { return packed >> 32; }
uint64_t TotalOf(uint64_t packed) { return packed & 0xffffffffull; }

}  // namespace

PaModel::PaModel(PaModelOptions options) : options_(options) {}

size_t PaModel::LevelIndex(size_t level) {
  if (level == 0) return 0;
  return std::min(level, kMaxLevelBuckets) - 1;
}

size_t PaModel::IndexOf(size_t level, size_t sel_bucket) {
  return LevelIndex(level) * kSelBuckets + std::min(sel_bucket, kSelBuckets - 1);
}

void PaModel::Observe(size_t level, size_t sel_bucket, bool alive) {
  if (frozen()) return;
  counts_[IndexOf(level, sel_bucket)].fetch_add(
      (alive ? kAliveUnit : 0) + 1, std::memory_order_relaxed);
}

double PaModel::Estimate(size_t level, size_t sel_bucket) const {
  const uint64_t packed =
      counts_[IndexOf(level, sel_bucket)].load(std::memory_order_relaxed);
  const double total = static_cast<double>(TotalOf(packed));
  if (total < static_cast<double>(options_.min_observations)) {
    return options_.prior;
  }
  const double alive = static_cast<double>(AliveOf(packed));
  const double p = (alive + options_.prior * options_.prior_strength) /
                   (total + options_.prior_strength);
  return std::clamp(p, options_.clamp_lo, options_.clamp_hi);
}

void PaModel::SyncDataVersion(uint64_t version) {
  if (version == 0 || frozen()) return;
  if (data_version_.load(std::memory_order_acquire) == version) return;
  std::lock_guard<std::mutex> lock(decay_mu_);
  const uint64_t previous = data_version_.load(std::memory_order_relaxed);
  if (previous == version) return;
  if (previous != 0) {
    // The data drifted under the model: halve every bucket so old evidence
    // fades in a couple of drifts instead of outvoting fresh verdicts. CAS
    // per bucket — a concurrent Observe either lands before the halving or
    // retries us, never corrupts the packed pair.
    for (auto& cell : counts_) {
      uint64_t cur = cell.load(std::memory_order_relaxed);
      uint64_t halved;
      do {
        halved = ((AliveOf(cur) >> 1) << 32) | (TotalOf(cur) >> 1);
      } while (!cell.compare_exchange_weak(cur, halved,
                                           std::memory_order_relaxed));
    }
  }
  data_version_.store(version, std::memory_order_release);
}

size_t PaModel::observations() const {
  uint64_t total = 0;
  for (const auto& cell : counts_) {
    total += TotalOf(cell.load(std::memory_order_relaxed));
  }
  return static_cast<size_t>(total);
}

std::vector<PaBucketSnapshot> PaModel::Snapshot() const {
  std::vector<PaBucketSnapshot> out;
  for (size_t level = 1; level <= kMaxLevelBuckets; ++level) {
    for (size_t sel = 0; sel < kSelBuckets; ++sel) {
      const uint64_t packed =
          counts_[IndexOf(level, sel)].load(std::memory_order_relaxed);
      if (TotalOf(packed) == 0) continue;
      PaBucketSnapshot snap;
      snap.level = static_cast<uint32_t>(level);
      snap.sel_bucket = static_cast<uint32_t>(sel);
      snap.alive = AliveOf(packed);
      snap.total = TotalOf(packed);
      snap.pa = Estimate(level, sel);
      out.push_back(snap);
    }
  }
  return out;
}

std::vector<PaBucketSnapshot> PaModel::SnapshotFor(size_t sel_bucket) const {
  const size_t sel = std::min(sel_bucket, kSelBuckets - 1);
  std::vector<PaBucketSnapshot> out;
  for (size_t level = 1; level <= kMaxLevelBuckets; ++level) {
    const uint64_t packed =
        counts_[IndexOf(level, sel)].load(std::memory_order_relaxed);
    if (TotalOf(packed) == 0) continue;
    PaBucketSnapshot snap;
    snap.level = static_cast<uint32_t>(level);
    snap.sel_bucket = static_cast<uint32_t>(sel);
    snap.alive = AliveOf(packed);
    snap.total = TotalOf(packed);
    snap.pa = Estimate(level, sel);
    out.push_back(snap);
  }
  return out;
}

size_t SelectivityBucketOf(size_t row_frequency) {
  if (row_frequency == 0) return 0;
  // log4 steps: 1-3 -> 1, 4-15 -> 2, 16-63 -> 3, ... capped at the top.
  const size_t log2 = static_cast<size_t>(std::bit_width(row_frequency)) - 1;
  return std::min(size_t{1} + log2 / 2, PaModel::kSelBuckets - 1);
}

size_t MinBoundRowFrequency(const KeywordBinding& binding,
                            const SchemaGraph& schema,
                            const InvertedIndex* index) {
  if (index == nullptr || binding.assignments().empty()) return 0;
  size_t min_rows = SIZE_MAX;
  for (const KeywordAssignment& a : binding.assignments()) {
    const std::string& table = schema.relation(a.vertex.relation).name;
    min_rows = std::min(min_rows, index->RowFrequency(a.keyword, table));
  }
  return min_rows == SIZE_MAX ? 0 : min_rows;
}

size_t SelectivityBucketFor(const PrunedLattice& pl,
                            const InvertedIndex* index) {
  return SelectivityBucketOf(
      MinBoundRowFrequency(pl.binding(), pl.lattice().schema(), index));
}

uint64_t DataVersionOf(const Database& db) {
  uint64_t h = SplitMix64(0xada9717eull ^ db.epoch());
  for (const std::string& name : db.TableNames()) {
    const Table* t = db.FindTable(name);
    if (t != nullptr) h = SplitMix64(h ^ t->data_epoch());
  }
  return h == 0 ? 1 : h;
}

}  // namespace kwsdbg
