// BUWR (paper Sec. 2.5.2, Algorithm 3): one global bottom-up sweep over the
// union of all MTNs' sub-lattices with a shared status map, so each common
// descendant is evaluated at most once.
//
// Frontier batching: R2 from a node only reaches strictly higher levels, so
// the unknown nodes of one level are mutually independent — evaluated as one
// parallel batch, then folded in serially (bit-identical to the serial sweep,
// including which nodes get evaluated).
#include <algorithm>

#include "common/timer.h"
#include "traversal/parallel_frontier.h"
#include "traversal/strategies.h"

namespace kwsdbg {

namespace {

class BottomUpWithReuseStrategy : public TraversalStrategy {
 public:
  explicit BottomUpWithReuseStrategy(ParallelOptions parallel)
      : parallel_(parallel) {}

  std::string_view name() const override { return "BUWR"; }

  StatusOr<TraversalResult> Run(const PrunedLattice& pl,
                                QueryEvaluator* evaluator) override {
    Timer total;
    NodeStatusMap status(pl.lattice().num_nodes());
    FrontierEvaluator frontier(evaluator, parallel_);
    std::vector<NodeId> batch;
    std::vector<char> alive;
    for (size_t level = 1; level <= pl.MaxRetainedLevel(); ++level) {
      std::vector<NodeId> nodes = pl.RetainedAtLevel(level);
      std::sort(nodes.begin(), nodes.end());
      batch.clear();
      for (NodeId n : nodes) {
        if (!status.IsKnown(n)) batch.push_back(n);  // shared or inferred
      }
      Status st = frontier.cancelled()
                      ? Status::DeadlineExceeded("traversal cancelled")
                      : frontier.EvaluateBatch(batch, &alive);
      if (internal::IsDeadlineExceeded(st)) {
        TraversalResult partial = internal::BuildTruncatedOutcomes(pl, status);
        frontier.FillStats(&partial.stats);
        partial.stats.total_millis = total.ElapsedMillis();
        return partial;
      }
      KWSDBG_RETURN_NOT_OK(st);
      for (size_t i = 0; i < batch.size(); ++i) {
        if (alive[i]) {
          status.Set(batch[i], NodeStatus::kAlive);
        } else {
          status.MarkDeadWithAncestors(batch[i], pl);  // R2 (Alg. 3 line 36)
        }
      }
    }
    KWSDBG_ASSIGN_OR_RETURN(TraversalResult result,
                            internal::BuildOutcomes(pl, status));
    frontier.FillStats(&result.stats);
    result.stats.total_millis = total.ElapsedMillis();
    return result;
  }

 private:
  ParallelOptions parallel_;
};

}  // namespace

std::unique_ptr<TraversalStrategy> MakeBottomUpWithReuse(
    ParallelOptions parallel) {
  return std::make_unique<BottomUpWithReuseStrategy>(parallel);
}

}  // namespace kwsdbg
