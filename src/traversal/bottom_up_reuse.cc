// BUWR (paper Sec. 2.5.2, Algorithm 3): one global bottom-up sweep over the
// union of all MTNs' sub-lattices with a shared status map, so each common
// descendant is evaluated at most once.
#include <algorithm>

#include "common/timer.h"
#include "traversal/strategies.h"

namespace kwsdbg {

namespace {

class BottomUpWithReuseStrategy : public TraversalStrategy {
 public:
  std::string_view name() const override { return "BUWR"; }

  StatusOr<TraversalResult> Run(const PrunedLattice& pl,
                                QueryEvaluator* evaluator) override {
    Timer total;
    const size_t sql_before = evaluator->sql_executed();
    const double ms_before = evaluator->sql_millis();
    NodeStatusMap status(pl.lattice().num_nodes());
    for (size_t level = 1; level <= pl.MaxRetainedLevel(); ++level) {
      std::vector<NodeId> nodes = pl.RetainedAtLevel(level);
      std::sort(nodes.begin(), nodes.end());
      for (NodeId n : nodes) {
        if (status.IsKnown(n)) continue;  // shared result or inferred dead
        KWSDBG_ASSIGN_OR_RETURN(bool alive, evaluator->IsAlive(n));
        if (alive) {
          status.Set(n, NodeStatus::kAlive);
        } else {
          status.MarkDeadWithAncestors(n, pl);  // R2 (Alg. 3 line 36)
        }
      }
    }
    KWSDBG_ASSIGN_OR_RETURN(TraversalResult result,
                            internal::BuildOutcomes(pl, status));
    result.stats.sql_queries = evaluator->sql_executed() - sql_before;
    result.stats.sql_millis = evaluator->sql_millis() - ms_before;
    result.stats.total_millis = total.ElapsedMillis();
    return result;
  }
};

}  // namespace

std::unique_ptr<TraversalStrategy> MakeBottomUpWithReuse() {
  return std::make_unique<BottomUpWithReuseStrategy>();
}

}  // namespace kwsdbg
