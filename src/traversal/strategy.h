// Phase 3 lattice traversal strategies (paper Sec. 2.5): classify every MTN
// as answer (alive) or non-answer (dead) and report the MPANs — maximal
// partially alive nodes — of each dead MTN.
#ifndef KWSDBG_TRAVERSAL_STRATEGY_H_
#define KWSDBG_TRAVERSAL_STRATEGY_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "traversal/evaluator.h"
#include "traversal/node_status.h"
#include "traversal/pa_model.h"

namespace kwsdbg {

/// Outcome for one MTN.
struct MtnOutcome {
  NodeId mtn = kInvalidNode;
  bool alive = false;
  std::vector<NodeId> mpans;     ///< Maximal alive sub-networks; sorted;
                                 ///< empty when alive.
  std::vector<NodeId> culprits;  ///< Minimal dead sub-networks — the
                                 ///< smallest joins that already return
                                 ///< nothing (every proper sub-network of a
                                 ///< culprit is alive); sorted; empty when
                                 ///< alive. The dual frontier of the MPANs.
  /// False only in truncated runs, for a dead MTN whose sub-lattice was not
  /// fully classified when the deadline fired: the aliveness verdict is
  /// still ground truth, but mpans/culprits are left empty because a
  /// partially classified frontier could report wrong maximality.
  bool frontier_complete = true;
};

/// Work counters for one strategy run.
struct TraversalStats {
  size_t sql_queries = 0;   ///< SQL executions (Fig. 11 / Table 4), summed
                            ///< across the main evaluator and any workers.
  double sql_millis = 0;    ///< Time inside SQL execution (Fig. 12); with
                            ///< workers this is CPU-like (can exceed wall).
  double total_millis = 0;  ///< End-to-end traversal time.
  // Verdict-cache traffic (zero when no cache is attached to the evaluator).
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  size_t cache_evictions = 0;  ///< Evictions during this run (cache-wide).
  // Parallel frontier evaluation (zero when running serially).
  size_t parallel_rounds = 0;  ///< Batches dispatched to the worker pool.
  size_t parallel_nodes = 0;   ///< Nodes evaluated by the pool.
  size_t max_batch = 0;        ///< Largest single batch.
  // Executor v2 probe-path counters for this run (deltas summed over the
  // main evaluator's executor and any worker executors).
  size_t posting_hits = 0;     ///< Keyword match sets from posting lists.
  size_t scan_fallbacks = 0;   ///< Keyword match sets from full LIKE scans.
  size_t semijoin_eliminations = 0;  ///< Probes killed before enumeration.
  size_t rows_probed = 0;      ///< Rows pulled during backtracking joins.
  size_t rows_filtered = 0;    ///< Candidate rows removed by semijoins.
  size_t index_builds = 0;     ///< Join-column hash indexes built.
  // Probe engine v3 counters (zero when the flat engine is off).
  size_t flat_probes = 0;       ///< Lookups served by flat indexes.
  size_t prefetch_batches = 0;  ///< Prefetch windows issued by the batched
                                ///< probe pipeline.
  double index_build_millis = 0;  ///< Wall time building flat indexes.
  size_t arena_bytes = 0;       ///< Flat-index row-arena bytes built.
  // Degraded-mode fallbacks taken under fault injection (zero otherwise).
  size_t index_fallbacks = 0;     ///< Posting lists -> LIKE scan fallbacks.
  size_t semijoin_fallbacks = 0;  ///< Semijoin pass skipped (plain join).
  // Out-of-core tier counters (zero for resident databases/indexes).
  size_t page_hits = 0;       ///< Table page fetches served by the pool.
  size_t page_reads = 0;      ///< Table pages read from disk.
  size_t page_evictions = 0;  ///< Buffer-pool frames displaced.
  size_t posting_reads = 0;   ///< Posting lists fetched from disk.
  // Adaptive traversal (zero/empty without a planner or model attached).
  size_t planner_decisions = 0;  ///< 1 when a StrategyPlanner picked the arm.
  size_t planner_explored = 0;   ///< 1 when that pick was an exploration.
  size_t pa_observations = 0;    ///< Verdicts fed to the PaModel by this run.
  size_t pa_sample_sql = 0;      ///< SQL spent by the legacy estimate_pa
                                 ///< sampling pass (already included in
                                 ///< sql_queries; surfaced so the sampling
                                 ///< cost is visible on its own).
  std::string planned_strategy;  ///< Planner arm label; empty otherwise.
  std::vector<PaBucketSnapshot> pa_buckets;  ///< Post-run model slice for the
                                             ///< query's selectivity bucket.
};

/// Frontier-evaluation parallelism knobs (see parallel_frontier.h). The
/// default is strictly serial, preserving the paper's single-session model.
struct ParallelOptions {
  /// Worker threads for batched frontier evaluation; 0 = hardware
  /// concurrency, 1 = serial (default).
  size_t num_threads = 1;
  /// Batches smaller than this run on the calling thread — thread wake-up
  /// costs more than a couple of first-row-exit probes.
  size_t min_batch = 2;
};

/// Result of one strategy run over one interpretation.
struct TraversalResult {
  std::vector<MtnOutcome> outcomes;  ///< In PrunedLattice::mtns() order.
                                     ///< Truncated runs omit MTNs whose
                                     ///< status was still unknown.
  TraversalStats stats;
  /// Set when a cooperative deadline fired mid-run: `outcomes` then covers
  /// only the MTNs classified before cancellation (every reported verdict
  /// is still ground truth — truncation never fabricates one).
  bool truncated = false;
};

/// The five strategies of Sec. 2.5 (+ Table 4 / Figs. 11-12 labels).
enum class TraversalKind {
  kBottomUp,            // BU
  kTopDown,             // TD
  kBottomUpWithReuse,   // BUWR (Algorithm 3)
  kTopDownWithReuse,    // TDWR
  kScoreBased,          // SBH (Sec. 2.5.3)
};

/// Short paper label ("BU", "TDWR", ...).
std::string_view TraversalKindName(TraversalKind kind);

/// All five kinds, in the paper's reporting order.
const std::vector<TraversalKind>& AllTraversalKinds();

/// Strategy interface. Implementations are stateless across runs.
class TraversalStrategy {
 public:
  virtual ~TraversalStrategy() = default;
  virtual std::string_view name() const = 0;

  /// Classifies all MTNs of `pl` and finds MPANs for the dead ones.
  virtual StatusOr<TraversalResult> Run(const PrunedLattice& pl,
                                        QueryEvaluator* evaluator) = 0;
};

/// SBH parameters (paper uses p_a = 0.5).
struct SbhOptions {
  double alive_probability = 0.5;
  /// When true, estimate p_a by sampling a few retained nodes before the
  /// greedy loop (the paper's future-work suggestion). Sampled outcomes are
  /// recorded in the run's status map, so the SQL spent on sampling also
  /// classifies part of the space (that SQL is counted in sql_queries and
  /// surfaced separately as pa_sample_sql). `alive_probability` is ignored.
  /// Superseded by `pa_model`, which costs no SQL at all.
  bool estimate_pa = false;
  /// Nodes to sample when estimate_pa is set.
  size_t estimator_sample_size = 16;
  uint64_t estimator_seed = 1;
  /// Online p_a model (see traversal/pa_model.h). When set, SBH reads a
  /// per-level estimate for the query's selectivity bucket — snapshotted at
  /// run start, so the schedule is deterministic given the model state —
  /// and the estimate_pa sampling pass is skipped. A cold model yields the
  /// 0.5 prior everywhere, reproducing static SBH @ 0.5 bit for bit.
  const PaModel* pa_model = nullptr;
};

/// Factory. `parallel` configures batched frontier evaluation for every
/// strategy kind; the default is serial.
std::unique_ptr<TraversalStrategy> MakeStrategy(TraversalKind kind,
                                                SbhOptions sbh = {},
                                                ParallelOptions parallel = {});

namespace internal {

/// Extracts the MPANs of dead MTN `m` from a fully classified status map:
/// alive nodes in Desc(m) none of whose parents inside Desc+(m) is alive
/// (the parent `m` itself is dead here, so immediate parents suffice).
std::vector<NodeId> ExtractMpans(const PrunedLattice& pl,
                                 const NodeStatusMap& status, NodeId m);

/// Extracts the minimal dead sub-networks ("culprits") of dead MTN `m`:
/// dead nodes in Desc+(m) all of whose retained children are alive. The
/// topmost join of a culprit is exactly where the results vanish.
std::vector<NodeId> ExtractMinimalDead(const PrunedLattice& pl,
                                       const NodeStatusMap& status, NodeId m);

/// Builds per-MTN outcomes from a fully classified global status map.
StatusOr<TraversalResult> BuildOutcomes(const PrunedLattice& pl,
                                        const NodeStatusMap& status);

/// True for the status a fired cancellation token propagates; the
/// strategies translate it into a truncated partial result instead of an
/// error.
bool IsDeadlineExceeded(const Status& status);

/// Appends the outcome for MTN `m` to `result` if `status` classifies it
/// (no-op otherwise). For a dead MTN, MPANs/culprits are extracted only
/// when the MTN's whole retained sub-lattice is classified — a partial
/// frontier could be wrong, so it is omitted and `frontier_complete`
/// cleared instead.
void AppendOutcomeIfKnown(const PrunedLattice& pl, const NodeStatusMap& status,
                          NodeId m, TraversalResult* result);

/// Builds a truncated result from a partially classified global status map:
/// outcomes for every classified MTN (via AppendOutcomeIfKnown), with
/// `truncated` set.
TraversalResult BuildTruncatedOutcomes(const PrunedLattice& pl,
                                       const NodeStatusMap& status);

}  // namespace internal

}  // namespace kwsdbg

#endif  // KWSDBG_TRAVERSAL_STRATEGY_H_
