// Node classification state (paper Sec. 2.4: possibly-alive / alive / dead)
// plus the two inference rules R1 and R2 (Sec. 2.5).
#ifndef KWSDBG_TRAVERSAL_NODE_STATUS_H_
#define KWSDBG_TRAVERSAL_NODE_STATUS_H_

#include <cstddef>
#include <vector>

#include "kws/pruned_lattice.h"

namespace kwsdbg {

enum class NodeStatus : uint8_t {
  kPossiblyAlive = 0,  ///< Not yet classified.
  kAlive,
  kDead,
};

/// Status per lattice node, with R1/R2 propagation helpers. A strategy owns
/// one map per scope (per MTN for the no-reuse variants, global otherwise).
class NodeStatusMap {
 public:
  explicit NodeStatusMap(size_t num_nodes)
      : status_(num_nodes, NodeStatus::kPossiblyAlive) {}

  NodeStatus Get(NodeId id) const { return status_[id]; }
  bool IsKnown(NodeId id) const {
    return status_[id] != NodeStatus::kPossiblyAlive;
  }
  bool IsAlive(NodeId id) const { return status_[id] == NodeStatus::kAlive; }
  bool IsDead(NodeId id) const { return status_[id] == NodeStatus::kDead; }

  void Set(NodeId id, NodeStatus s) { status_[id] = s; }

  /// R1: node alive => every retained descendant alive. Returns the number
  /// of nodes newly classified (excluding `id` itself).
  size_t MarkAliveWithDescendants(NodeId id, const PrunedLattice& pl);

  /// R2: node dead => every retained ancestor dead. Returns the number of
  /// nodes newly classified (excluding `id` itself).
  size_t MarkDeadWithAncestors(NodeId id, const PrunedLattice& pl);

  size_t num_unknown() const;

 private:
  std::vector<NodeStatus> status_;
};

}  // namespace kwsdbg

#endif  // KWSDBG_TRAVERSAL_NODE_STATUS_H_
