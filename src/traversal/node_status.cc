#include "traversal/node_status.h"

namespace kwsdbg {

size_t NodeStatusMap::MarkAliveWithDescendants(NodeId id,
                                               const PrunedLattice& pl) {
  status_[id] = NodeStatus::kAlive;
  size_t newly = 0;
  for (NodeId d : pl.RetainedDescendants(id)) {
    if (status_[d] == NodeStatus::kPossiblyAlive) {
      status_[d] = NodeStatus::kAlive;
      ++newly;
    }
  }
  return newly;
}

size_t NodeStatusMap::MarkDeadWithAncestors(NodeId id,
                                            const PrunedLattice& pl) {
  status_[id] = NodeStatus::kDead;
  size_t newly = 0;
  for (NodeId a : pl.RetainedAncestors(id)) {
    if (status_[a] == NodeStatus::kPossiblyAlive) {
      status_[a] = NodeStatus::kDead;
      ++newly;
    }
  }
  return newly;
}

size_t NodeStatusMap::num_unknown() const {
  size_t n = 0;
  for (NodeStatus s : status_) {
    if (s == NodeStatus::kPossiblyAlive) ++n;
  }
  return n;
}

}  // namespace kwsdbg
