// Per-query traversal-strategy selection (ROADMAP item 2, paper Sec. 2.5's
// open question of which traversal order to run): an epsilon-greedy bandit
// over the five static strategies plus model-fed SBH, keyed by a bucket of
// features that are all available before traversal starts — lattice shape
// from PrunedLattice, keyword selectivity from InvertedIndex. Costs are
// observed per (bucket, arm) as (SQL queries, wall millis); exploitation
// picks the arm with the lowest mean SQL (millis breaks ties), exploration
// keeps an epsilon floor of least-tried arms so the model keeps learning
// under drift. A cold bucket falls back to model-fed SBH, which with a cold
// PaModel is exactly the paper's SBH @ 0.5 — cold-start never changes
// behaviour, only warm evidence does.
#ifndef KWSDBG_TRAVERSAL_STRATEGY_PLANNER_H_
#define KWSDBG_TRAVERSAL_STRATEGY_PLANNER_H_

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "traversal/pa_model.h"
#include "traversal/strategy.h"

namespace kwsdbg {

/// The planner's arms: the five paper strategies, with SBH split into the
/// fixed-p_a variant and the PaModel-fed variant.
enum class PlannerArm : uint8_t {
  kBottomUp = 0,
  kTopDown,
  kBottomUpReuse,
  kTopDownReuse,
  kSbhFixed,
  kSbhAdaptive,
};
inline constexpr size_t kNumPlannerArms = 6;

/// Arm label for reports ("BU", "TDWR", "SBH", "SBH+pa", ...).
std::string_view PlannerArmName(PlannerArm arm);

/// The TraversalKind an arm runs (both SBH arms map to kScoreBased).
TraversalKind ArmTraversalKind(PlannerArm arm);

/// All arms, in enum order.
const std::vector<PlannerArm>& AllPlannerArms();

/// Pre-traversal features of one interpretation.
struct PlannerFeatures {
  size_t retained_nodes = 0;  ///< Pruned search-space size.
  size_t num_mtns = 0;
  size_t max_level = 0;       ///< Deepest retained level.
  size_t base_nodes = 0;      ///< Retained width at level 1.
  size_t top_nodes = 0;       ///< Retained width at the deepest level.
  size_t min_keyword_rows = 0;  ///< Rarest bound keyword's row frequency.
  size_t sel_bucket = 0;        ///< SelectivityBucketOf(min_keyword_rows).
};

PlannerFeatures ComputePlannerFeatures(const PrunedLattice& pl,
                                       const InvertedIndex* index);

/// What Decide() picked, echoed back to Observe() so the cost lands in the
/// same feature bucket the decision was made from.
struct PlannerDecision {
  PlannerArm arm = PlannerArm::kSbhAdaptive;
  bool explored = false;
  uint64_t feature_bucket = 0;
};

struct StrategyPlannerOptions {
  /// Exploration floor: probability a decision tries the least-run arm
  /// instead of exploiting. 0 disables exploration.
  double explore_eps = 0.05;
  uint64_t seed = 0xada9717eull;
  /// Reads KWSDBG_EXPLORE_EPS / KWSDBG_ADAPTIVE_SEED over the defaults, so
  /// bench regressions reproduce from the printed values.
  static StrategyPlannerOptions FromEnv();
};

/// Thread-safe epsilon-greedy planner. One mutex guards the bucket table and
/// the RNG — decisions are rare (one per interpretation) next to verdicts.
class StrategyPlanner {
 public:
  explicit StrategyPlanner(StrategyPlannerOptions options = {});

  PlannerDecision Decide(const PlannerFeatures& features);

  /// Records the measured cost of running the decided arm. Skipped for
  /// truncated runs — a deadline-clipped cost would look artificially cheap.
  void Observe(const PlannerDecision& decision, size_t sql_queries,
               double total_millis);

  /// Records a cost for an arm the planner did not itself pick (benches use
  /// this to pre-train every arm on a workload).
  void ObserveArm(const PlannerFeatures& features, PlannerArm arm,
                  size_t sql_queries, double total_millis);

  /// Mirrors PaModel::SyncDataVersion: on a data-version change, halves all
  /// per-bucket run counts so pre-drift costs decay.
  void SyncDataVersion(uint64_t version);

  /// Stops exploration, observation, and decay (Decide still exploits).
  void Freeze() { frozen_ = true; }
  bool frozen() const { return frozen_; }

  size_t decisions() const;
  size_t explored() const;
  size_t buckets() const;
  const StrategyPlannerOptions& options() const { return options_; }

  /// Feature-bucket key: quantized (max level, log2 retained nodes,
  /// log2 MTNs, selectivity bucket).
  static uint64_t FeatureBucket(const PlannerFeatures& features);

 private:
  struct ArmStats {
    double runs = 0;
    double sql = 0;
    double millis = 0;
  };
  using BucketArms = std::array<ArmStats, kNumPlannerArms>;

  void ObserveKey(uint64_t bucket, PlannerArm arm, size_t sql_queries,
                  double total_millis);

  StrategyPlannerOptions options_;
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, BucketArms> buckets_;
  Rng rng_;
  uint64_t data_version_ = 0;
  bool frozen_ = false;
  size_t decisions_ = 0;
  size_t explored_ = 0;
};

/// Bundled adaptive tier: one PaModel plus one StrategyPlanner, shared the
/// way a DebugService shard shares its verdict cache and flat-index tier.
struct AdaptiveOptions {
  PaModelOptions pa;
  StrategyPlannerOptions planner;
  static AdaptiveOptions FromEnv();
};

class AdaptiveState {
 public:
  explicit AdaptiveState(AdaptiveOptions options = {})
      : pa_(options.pa), planner_(options.planner) {}

  PaModel& pa() { return pa_; }
  const PaModel& pa() const { return pa_; }
  StrategyPlanner& planner() { return planner_; }
  const StrategyPlanner& planner() const { return planner_; }

  void SyncDataVersion(uint64_t version) {
    pa_.SyncDataVersion(version);
    planner_.SyncDataVersion(version);
  }
  void Freeze() {
    pa_.Freeze();
    planner_.Freeze();
  }

 private:
  PaModel pa_;
  StrategyPlanner planner_;
};

/// Builds the strategy an arm denotes. `pa_model` is wired into SBH for the
/// kSbhAdaptive arm (which also disables the legacy sampling pass); the
/// other arms ignore it.
std::unique_ptr<TraversalStrategy> MakeArmStrategy(PlannerArm arm,
                                                   SbhOptions sbh,
                                                   ParallelOptions parallel,
                                                   const PaModel* pa_model);

}  // namespace kwsdbg

#endif  // KWSDBG_TRAVERSAL_STRATEGY_PLANNER_H_
