#include "traversal/strategy.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "traversal/strategies.h"

namespace kwsdbg {

std::unique_ptr<TraversalStrategy> MakeStrategy(TraversalKind kind,
                                                SbhOptions sbh,
                                                ParallelOptions parallel) {
  switch (kind) {
    case TraversalKind::kBottomUp:
      return MakeBottomUp(parallel);
    case TraversalKind::kTopDown:
      return MakeTopDown(parallel);
    case TraversalKind::kBottomUpWithReuse:
      return MakeBottomUpWithReuse(parallel);
    case TraversalKind::kTopDownWithReuse:
      return MakeTopDownWithReuse(parallel);
    case TraversalKind::kScoreBased:
      return MakeScoreBased(sbh, parallel);
  }
  return nullptr;
}

std::string_view TraversalKindName(TraversalKind kind) {
  switch (kind) {
    case TraversalKind::kBottomUp:
      return "BU";
    case TraversalKind::kTopDown:
      return "TD";
    case TraversalKind::kBottomUpWithReuse:
      return "BUWR";
    case TraversalKind::kTopDownWithReuse:
      return "TDWR";
    case TraversalKind::kScoreBased:
      return "SBH";
  }
  return "?";
}

const std::vector<TraversalKind>& AllTraversalKinds() {
  static const std::vector<TraversalKind> kAll = {
      TraversalKind::kBottomUp, TraversalKind::kBottomUpWithReuse,
      TraversalKind::kTopDown, TraversalKind::kTopDownWithReuse,
      TraversalKind::kScoreBased};
  return kAll;
}

namespace internal {

std::vector<NodeId> ExtractMpans(const PrunedLattice& pl,
                                 const NodeStatusMap& status, NodeId m) {
  KWSDBG_DCHECK(status.IsDead(m));
  const std::vector<NodeId>& desc = pl.RetainedDescendants(m);
  std::unordered_set<NodeId> in_sub(desc.begin(), desc.end());
  in_sub.insert(m);
  std::vector<NodeId> mpans;
  for (NodeId n : desc) {
    if (!status.IsAlive(n)) continue;
    bool maximal = true;
    for (NodeId p : pl.lattice().node(n).parents) {
      if (in_sub.count(p) && status.IsAlive(p)) {
        maximal = false;
        break;
      }
    }
    if (maximal) mpans.push_back(n);
  }
  std::sort(mpans.begin(), mpans.end());
  return mpans;
}

std::vector<NodeId> ExtractMinimalDead(const PrunedLattice& pl,
                                       const NodeStatusMap& status,
                                       NodeId m) {
  KWSDBG_DCHECK(status.IsDead(m));
  std::vector<NodeId> out;
  std::vector<NodeId> sub = pl.RetainedDescendants(m);
  sub.push_back(m);
  for (NodeId n : sub) {
    if (!status.IsDead(n)) continue;
    bool minimal = true;
    for (NodeId c : pl.RetainedChildren(n)) {
      if (!status.IsAlive(c)) {
        minimal = false;
        break;
      }
    }
    if (minimal) out.push_back(n);
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool IsDeadlineExceeded(const Status& status) {
  return status.code() == StatusCode::kDeadlineExceeded;
}

void AppendOutcomeIfKnown(const PrunedLattice& pl, const NodeStatusMap& status,
                          NodeId m, TraversalResult* result) {
  if (!status.IsKnown(m)) return;
  MtnOutcome outcome;
  outcome.mtn = m;
  outcome.alive = status.IsAlive(m);
  if (!outcome.alive) {
    bool complete = true;
    for (NodeId d : pl.RetainedDescendants(m)) {
      if (!status.IsKnown(d)) {
        complete = false;
        break;
      }
    }
    if (complete) {
      outcome.mpans = ExtractMpans(pl, status, m);
      outcome.culprits = ExtractMinimalDead(pl, status, m);
    } else {
      outcome.frontier_complete = false;
    }
  }
  result->outcomes.push_back(std::move(outcome));
}

TraversalResult BuildTruncatedOutcomes(const PrunedLattice& pl,
                                       const NodeStatusMap& status) {
  TraversalResult result;
  result.truncated = true;
  for (NodeId m : pl.mtns()) AppendOutcomeIfKnown(pl, status, m, &result);
  return result;
}

StatusOr<TraversalResult> BuildOutcomes(const PrunedLattice& pl,
                                        const NodeStatusMap& status) {
  TraversalResult result;
  for (NodeId m : pl.mtns()) {
    if (!status.IsKnown(m)) {
      return Status::Internal("MTN " + std::to_string(m) +
                              " left unclassified by traversal");
    }
    MtnOutcome outcome;
    outcome.mtn = m;
    outcome.alive = status.IsAlive(m);
    if (!outcome.alive) {
      outcome.mpans = ExtractMpans(pl, status, m);
      outcome.culprits = ExtractMinimalDead(pl, status, m);
    }
    result.outcomes.push_back(std::move(outcome));
  }
  return result;
}

}  // namespace internal
}  // namespace kwsdbg
