// TDWR (paper Sec. 2.5.2): the top-down twin of BUWR — one global top-down
// sweep with a shared status map; R1 propagates aliveness downward across
// all MTNs' sub-lattices at once.
//
// Frontier batching: R1 from a node only reaches strictly lower levels, so
// each level's unknown nodes form an independent parallel batch; serial
// fold-in keeps the classification bit-identical to the serial sweep.
#include <algorithm>

#include "common/timer.h"
#include "traversal/parallel_frontier.h"
#include "traversal/strategies.h"

namespace kwsdbg {

namespace {

class TopDownWithReuseStrategy : public TraversalStrategy {
 public:
  explicit TopDownWithReuseStrategy(ParallelOptions parallel)
      : parallel_(parallel) {}

  std::string_view name() const override { return "TDWR"; }

  StatusOr<TraversalResult> Run(const PrunedLattice& pl,
                                QueryEvaluator* evaluator) override {
    Timer total;
    NodeStatusMap status(pl.lattice().num_nodes());
    FrontierEvaluator frontier(evaluator, parallel_);
    std::vector<NodeId> batch;
    std::vector<char> alive;
    for (size_t level = pl.MaxRetainedLevel(); level >= 1; --level) {
      std::vector<NodeId> nodes = pl.RetainedAtLevel(level);
      std::sort(nodes.begin(), nodes.end());
      batch.clear();
      for (NodeId n : nodes) {
        if (!status.IsKnown(n)) batch.push_back(n);  // shared or inferred
      }
      Status st = frontier.cancelled()
                      ? Status::DeadlineExceeded("traversal cancelled")
                      : frontier.EvaluateBatch(batch, &alive);
      if (internal::IsDeadlineExceeded(st)) {
        TraversalResult partial = internal::BuildTruncatedOutcomes(pl, status);
        frontier.FillStats(&partial.stats);
        partial.stats.total_millis = total.ElapsedMillis();
        return partial;
      }
      KWSDBG_RETURN_NOT_OK(st);
      for (size_t i = 0; i < batch.size(); ++i) {
        if (alive[i]) {
          status.MarkAliveWithDescendants(batch[i], pl);  // R1
        } else {
          status.Set(batch[i], NodeStatus::kDead);
        }
      }
    }
    KWSDBG_ASSIGN_OR_RETURN(TraversalResult result,
                            internal::BuildOutcomes(pl, status));
    frontier.FillStats(&result.stats);
    result.stats.total_millis = total.ElapsedMillis();
    return result;
  }

 private:
  ParallelOptions parallel_;
};

}  // namespace

std::unique_ptr<TraversalStrategy> MakeTopDownWithReuse(
    ParallelOptions parallel) {
  return std::make_unique<TopDownWithReuseStrategy>(parallel);
}

}  // namespace kwsdbg
