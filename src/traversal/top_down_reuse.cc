// TDWR (paper Sec. 2.5.2): the top-down twin of BUWR — one global top-down
// sweep with a shared status map; R1 propagates aliveness downward across
// all MTNs' sub-lattices at once.
#include <algorithm>

#include "common/timer.h"
#include "traversal/strategies.h"

namespace kwsdbg {

namespace {

class TopDownWithReuseStrategy : public TraversalStrategy {
 public:
  std::string_view name() const override { return "TDWR"; }

  StatusOr<TraversalResult> Run(const PrunedLattice& pl,
                                QueryEvaluator* evaluator) override {
    Timer total;
    const size_t sql_before = evaluator->sql_executed();
    const double ms_before = evaluator->sql_millis();
    NodeStatusMap status(pl.lattice().num_nodes());
    for (size_t level = pl.MaxRetainedLevel(); level >= 1; --level) {
      std::vector<NodeId> nodes = pl.RetainedAtLevel(level);
      std::sort(nodes.begin(), nodes.end());
      for (NodeId n : nodes) {
        if (status.IsKnown(n)) continue;  // shared result or inferred alive
        KWSDBG_ASSIGN_OR_RETURN(bool alive, evaluator->IsAlive(n));
        if (alive) {
          status.MarkAliveWithDescendants(n, pl);  // R1
        } else {
          status.Set(n, NodeStatus::kDead);
        }
      }
    }
    KWSDBG_ASSIGN_OR_RETURN(TraversalResult result,
                            internal::BuildOutcomes(pl, status));
    result.stats.sql_queries = evaluator->sql_executed() - sql_before;
    result.stats.sql_millis = evaluator->sql_millis() - ms_before;
    result.stats.total_millis = total.ElapsedMillis();
    return result;
  }
};

}  // namespace

std::unique_ptr<TraversalStrategy> MakeTopDownWithReuse() {
  return std::make_unique<TopDownWithReuseStrategy>();
}

}  // namespace kwsdbg
