#include "traversal/parallel_frontier.h"

#include <algorithm>

namespace kwsdbg {

FrontierEvaluator::FrontierEvaluator(QueryEvaluator* main,
                                     ParallelOptions options)
    : main_(main),
      options_(options),
      main_sql_before_(main->sql_executed()),
      main_ms_before_(main->sql_millis()),
      main_hits_before_(main->cache_hits()),
      main_misses_before_(main->cache_misses()),
      exec_before_(main->executor()->stats()) {
  if (options_.num_threads == 0) {
    options_.num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  if (options_.min_batch < 1) options_.min_batch = 1;
  if (main_->cache() != nullptr) {
    cache_evictions_before_ = main_->cache()->stats().evictions;
  }
}

FrontierEvaluator::~FrontierEvaluator() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

void FrontierEvaluator::StartWorkers() {
  workers_.reserve(options_.num_threads);
  for (size_t i = 0; i < options_.num_threads; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->executor = std::make_unique<Executor>(
        main_->db(), main_->executor()->options());
    worker->executor->RegisterTextIndex(main_->executor()->text_index());
    worker->evaluator = std::make_unique<QueryEvaluator>(
        main_->db(), worker->executor.get(), main_->pruned_lattice(),
        main_->index(), main_->options(), main_->cache());
    worker->thread = std::thread(&FrontierEvaluator::WorkerLoop, this,
                                 worker.get());
    workers_.push_back(std::move(worker));
  }
}

void FrontierEvaluator::WorkerLoop(Worker* worker) {
  uint64_t seen_generation = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
    }
    Status status = Status::OK();
    while (true) {
      const size_t i = next_.fetch_add(1);
      if (i >= batch_->size()) break;
      StatusOr<bool> verdict = worker->evaluator->IsAlive((*batch_)[i]);
      if (!verdict.ok()) {
        status = verdict.status();
        break;
      }
      (*results_)[i] = *verdict ? 1 : 0;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!status.ok() && batch_status_.ok()) batch_status_ = status;
      if (--pending_ == 0) done_cv_.notify_one();
    }
  }
}

Status FrontierEvaluator::EvaluateBatch(const std::vector<NodeId>& nodes,
                                        std::vector<char>* alive) {
  alive->assign(nodes.size(), 0);
  if (nodes.empty()) return Status::OK();
  if (options_.num_threads <= 1 || nodes.size() < options_.min_batch) {
    for (size_t i = 0; i < nodes.size(); ++i) {
      KWSDBG_ASSIGN_OR_RETURN(bool v, main_->IsAlive(nodes[i]));
      (*alive)[i] = v ? 1 : 0;
    }
    return Status::OK();
  }
  if (workers_.empty()) StartWorkers();
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch_ = &nodes;
    results_ = alive;
    next_.store(0);
    pending_ = workers_.size();
    batch_status_ = Status::OK();
    ++generation_;
  }
  work_cv_.notify_all();
  Status status;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return pending_ == 0; });
    status = batch_status_;
  }
  ++parallel_rounds_;
  parallel_nodes_ += nodes.size();
  max_batch_ = std::max(max_batch_, nodes.size());
  return status;
}

void FrontierEvaluator::FillStats(TraversalStats* stats) const {
  stats->sql_queries += main_->sql_executed() - main_sql_before_;
  stats->sql_millis += main_->sql_millis() - main_ms_before_;
  stats->cache_hits += main_->cache_hits() - main_hits_before_;
  stats->cache_misses += main_->cache_misses() - main_misses_before_;
  auto add_exec = [stats](const ExecutorStats& now,
                          const ExecutorStats& before) {
    stats->posting_hits += now.posting_hits - before.posting_hits;
    stats->scan_fallbacks += now.keyword_scans - before.keyword_scans;
    stats->semijoin_eliminations +=
        now.semijoin_eliminations - before.semijoin_eliminations;
    stats->rows_probed += now.rows_probed - before.rows_probed;
    stats->rows_filtered += now.rows_filtered - before.rows_filtered;
    stats->index_builds += now.index_builds - before.index_builds;
    stats->flat_probes += now.flat_probes - before.flat_probes;
    stats->prefetch_batches += now.prefetch_batches - before.prefetch_batches;
    stats->index_build_millis +=
        now.index_build_millis - before.index_build_millis;
    stats->arena_bytes += now.arena_bytes - before.arena_bytes;
    stats->index_fallbacks += now.index_fallbacks - before.index_fallbacks;
    stats->semijoin_fallbacks +=
        now.semijoin_fallbacks - before.semijoin_fallbacks;
    stats->page_hits += now.page_hits - before.page_hits;
    stats->page_reads += now.page_reads - before.page_reads;
    stats->page_evictions += now.page_evictions - before.page_evictions;
    stats->posting_reads += now.posting_reads - before.posting_reads;
  };
  add_exec(main_->executor()->stats(), exec_before_);
  for (const auto& worker : workers_) {
    stats->sql_queries += worker->evaluator->sql_executed();
    stats->sql_millis += worker->evaluator->sql_millis();
    stats->cache_hits += worker->evaluator->cache_hits();
    stats->cache_misses += worker->evaluator->cache_misses();
    add_exec(worker->executor->stats(), ExecutorStats{});
  }
  if (main_->cache() != nullptr) {
    stats->cache_evictions +=
        main_->cache()->stats().evictions - cache_evictions_before_;
  }
  stats->parallel_rounds += parallel_rounds_;
  stats->parallel_nodes += parallel_nodes_;
  stats->max_batch = std::max(stats->max_batch, max_batch_);
}

}  // namespace kwsdbg
