// Online estimation of SBH's alive probability p_a (paper Sec. 2.5.3 names
// it as future work). The model buckets observations by (lattice level,
// keyword-selectivity bucket): every fresh SQL verdict and every level-1
// shortcut verdict is a free labeled sample, so the debugger feeds them in
// through EvalOptions::pa_model and later SBH runs read a per-level estimate
// instead of the fixed 0.5 or the SQL-spending pa_estimator sampling pass.
//
// Counters are packed (alive << 32 | total) in one atomic per bucket, so the
// observe/estimate hot path is a single relaxed fetch_add/load — cheap enough
// to share one model across every worker of a DebugService shard, the same
// way the shards share the flat-index tier. Live mutations bump data epochs;
// SyncDataVersion folds them into a model version and halves all counts on a
// change, so stale evidence decays instead of being trusted forever.
#ifndef KWSDBG_TRAVERSAL_PA_MODEL_H_
#define KWSDBG_TRAVERSAL_PA_MODEL_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace kwsdbg {

class Database;
class InvertedIndex;
class KeywordBinding;
class PrunedLattice;
class SchemaGraph;

/// Model knobs. Defaults keep cold buckets at the paper's 0.5 prior, so an
/// empty model reproduces static SBH @ 0.5 bit for bit.
struct PaModelOptions {
  /// Buckets with fewer observations than this return the prior untouched.
  size_t min_observations = 4;
  double prior = 0.5;
  /// Pseudo-count weight of the prior (Laplace-style smoothing).
  double prior_strength = 2.0;
  /// Clamp estimates into [lo, hi] — an all-alive or all-dead bucket must
  /// not collapse SBH into pure TD/BU behaviour (mirrors PaEstimatorOptions).
  double clamp_lo = 0.1;
  double clamp_hi = 0.9;
};

/// One non-empty model bucket, for stats plumbing and report JSON.
struct PaBucketSnapshot {
  uint32_t level = 0;       ///< Lattice level (clamped to kMaxLevelBuckets).
  uint32_t sel_bucket = 0;  ///< Keyword-selectivity bucket.
  uint64_t alive = 0;
  uint64_t total = 0;
  double pa = 0.5;          ///< The estimate the bucket currently yields.
};

/// Thread-safe online p_a model. Observe/Estimate are lock-free; the rare
/// decay on a data-version change takes a mutex but never blocks observers.
class PaModel {
 public:
  /// Lattice levels above this clamp onto the last level bucket.
  static constexpr size_t kMaxLevelBuckets = 8;
  /// Selectivity buckets (log4 of the rarest bound keyword's row count).
  static constexpr size_t kSelBuckets = 8;

  explicit PaModel(PaModelOptions options = {});

  /// Records one verdict. No-op once frozen.
  void Observe(size_t level, size_t sel_bucket, bool alive);

  /// Current estimate for a bucket: the prior while the bucket is cold,
  /// else the smoothed, clamped alive fraction.
  double Estimate(size_t level, size_t sel_bucket) const;

  /// Folds the data version (see DataVersionOf) into the model: on a change
  /// every bucket's counts are halved, so evidence gathered against old data
  /// decays instead of dominating fresh observations. No-op when the version
  /// is unchanged or the model is frozen.
  void SyncDataVersion(uint64_t version);
  uint64_t data_version() const {
    return data_version_.load(std::memory_order_relaxed);
  }

  /// Stops Observe and SyncDataVersion: benches freeze the model so the
  /// measured pass is deterministic given the trained state.
  void Freeze() { frozen_.store(true, std::memory_order_relaxed); }
  bool frozen() const { return frozen_.load(std::memory_order_relaxed); }

  /// Total observations across all buckets (post-decay).
  size_t observations() const;

  /// All non-empty buckets.
  std::vector<PaBucketSnapshot> Snapshot() const;
  /// Non-empty buckets of one selectivity column (the slice a query reads).
  std::vector<PaBucketSnapshot> SnapshotFor(size_t sel_bucket) const;

  const PaModelOptions& options() const { return options_; }

 private:
  static size_t LevelIndex(size_t level);
  static size_t IndexOf(size_t level, size_t sel_bucket);

  PaModelOptions options_;
  /// alive << 32 | total, so one fetch_add keeps the pair consistent.
  std::array<std::atomic<uint64_t>, kMaxLevelBuckets * kSelBuckets> counts_{};
  std::atomic<uint64_t> data_version_{0};  ///< 0 = never synced.
  std::atomic<bool> frozen_{false};
  mutable std::mutex decay_mu_;
};

/// Maps a row frequency to a selectivity bucket: 0 for absent keywords, then
/// log4 steps (1-3, 4-15, ..., >= 4096) capped at kSelBuckets - 1.
size_t SelectivityBucketOf(size_t row_frequency);

/// Row frequency of the rarest bound keyword across its assigned relation
/// (the binding's tightest posting list — the dominant cost driver). Returns
/// 0 with no index or no assignments.
size_t MinBoundRowFrequency(const KeywordBinding& binding,
                            const SchemaGraph& schema,
                            const InvertedIndex* index);

/// Convenience: the selectivity bucket of an interpretation.
size_t SelectivityBucketFor(const PrunedLattice& pl,
                            const InvertedIndex* index);

/// Folds the database epoch and every table's data epoch into one version
/// (never 0, so 0 can mean "unset"). Live mutations bump these epochs; the
/// debugger calls this per query and hands it to PaModel/StrategyPlanner so
/// model state tracks data drift.
uint64_t DataVersionOf(const Database& db);

}  // namespace kwsdbg

#endif  // KWSDBG_TRAVERSAL_PA_MODEL_H_
