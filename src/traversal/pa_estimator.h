// Lightweight estimation of the alive probability p_a used by SBH — the
// paper fixes p_a = 0.5 and names estimation as future work (Sec. 2.5.3:
// "it is still interesting future work to explore lightweight estimation
// approaches for p_a"). This estimator samples a few retained nodes,
// evaluates them, and returns the observed alive fraction; the sampled
// outcomes are genuine classifications, so a caller-supplied status map can
// absorb them and the sampling cost is partially recouped.
#ifndef KWSDBG_TRAVERSAL_PA_ESTIMATOR_H_
#define KWSDBG_TRAVERSAL_PA_ESTIMATOR_H_

#include "common/rng.h"
#include "traversal/evaluator.h"
#include "traversal/node_status.h"

namespace kwsdbg {

/// Estimation knobs.
struct PaEstimatorOptions {
  size_t sample_size = 16;  ///< Nodes to evaluate (capped by |retained|).
  uint64_t seed = 1;        ///< Sampling is deterministic given the seed.
  /// Clamp the estimate into [lo, hi]: an all-alive or all-dead sample must
  /// not collapse the score into pure TD/BU behaviour.
  double clamp_lo = 0.1;
  double clamp_hi = 0.9;
};

/// Result of an estimation run.
struct PaEstimate {
  double alive_probability = 0.5;
  size_t sampled = 0;
  size_t alive = 0;
  size_t sql_executed = 0;  ///< SQL spent on sampling.
};

/// Samples uniformly (without replacement) from the retained nodes,
/// evaluates each, optionally records the outcomes into `status` (with
/// R1/R2 propagation) so a following traversal reuses them, and returns the
/// clamped alive fraction. With an empty search space returns the 0.5 prior.
StatusOr<PaEstimate> EstimateAliveProbability(
    const PrunedLattice& pl, QueryEvaluator* evaluator,
    const PaEstimatorOptions& options = {}, NodeStatusMap* status = nullptr);

}  // namespace kwsdbg

#endif  // KWSDBG_TRAVERSAL_PA_ESTIMATOR_H_
