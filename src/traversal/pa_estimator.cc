#include "traversal/pa_estimator.h"

#include <algorithm>

namespace kwsdbg {

StatusOr<PaEstimate> EstimateAliveProbability(const PrunedLattice& pl,
                                              QueryEvaluator* evaluator,
                                              const PaEstimatorOptions& options,
                                              NodeStatusMap* status) {
  PaEstimate estimate;
  std::vector<NodeId> pool = pl.retained();
  if (pool.empty()) return estimate;

  Rng rng(options.seed);
  rng.Shuffle(&pool);
  const size_t sample = std::min(options.sample_size, pool.size());
  const size_t sql_before = evaluator->sql_executed();
  for (size_t i = 0; i < sample; ++i) {
    const NodeId n = pool[i];
    bool alive;
    if (status != nullptr && status->IsKnown(n)) {
      alive = status->IsAlive(n);  // inferred for free by earlier samples
    } else {
      KWSDBG_ASSIGN_OR_RETURN(alive, evaluator->IsAlive(n));
      if (status != nullptr) {
        if (alive) {
          status->MarkAliveWithDescendants(n, pl);
        } else {
          status->MarkDeadWithAncestors(n, pl);
        }
      }
    }
    ++estimate.sampled;
    if (alive) ++estimate.alive;
  }
  estimate.sql_executed = evaluator->sql_executed() - sql_before;
  if (estimate.sampled == 0) {
    // sample_size == 0: no evidence — keep the 0.5 prior instead of
    // computing 0/0 (NaN would poison every SBH score downstream).
    return estimate;
  }
  const double raw = static_cast<double>(estimate.alive) /
                     static_cast<double>(estimate.sampled);
  estimate.alive_probability =
      std::clamp(raw, options.clamp_lo, options.clamp_hi);
  return estimate;
}

}  // namespace kwsdbg
