#include "traversal/evaluator.h"

#include <algorithm>

#include "common/fault_injector.h"
#include "common/timer.h"
#include "lattice/canonical_label.h"
#include "traversal/pa_model.h"

namespace kwsdbg {

QueryEvaluator::QueryEvaluator(const Database* db, Executor* executor,
                               const PrunedLattice* pl,
                               const InvertedIndex* index, EvalOptions options,
                               VerdictCache* cache)
    : db_(db),
      executor_(executor),
      pl_(pl),
      index_(index),
      options_(options),
      cache_(cache) {
  if (cache_ != nullptr) {
    binding_sig_ = pl_->binding().Signature();
    canonical_memo_.resize(pl_->lattice().num_nodes());
  }
  if (cache_ != nullptr || options_.fences != nullptr) {
    relations_memo_.resize(pl_->lattice().num_nodes());
  }
  if (options_.pa_model != nullptr) {
    pa_bucket_ = SelectivityBucketFor(*pl_, index_);
  }
}

const std::string& QueryEvaluator::CanonicalFor(NodeId id) {
  std::string& memo = canonical_memo_[id];
  if (memo.empty()) memo = CanonicalLabel(pl_->lattice().node(id).tree);
  return memo;
}

const QueryEvaluator::NodeRelations& QueryEvaluator::RelationsFor(NodeId id) {
  NodeRelations& memo = relations_memo_[id];
  if (memo.filled) return memo;
  const JoinTree& tree = pl_->lattice().node(id).tree;
  for (const RelationCopy& v : tree.vertices()) {
    const std::string& name = pl_->lattice().schema().relation(v.relation).name;
    const Table* t = db_->FindTable(name);
    if (t == nullptr) continue;  // IsAlive reports the missing table itself.
    memo.rel_mask |= RelationFences::BitFor(t->catalog_index());
    memo.tables.push_back(t);
  }
  std::sort(memo.tables.begin(), memo.tables.end(),
            [](const Table* a, const Table* b) {
              return a->catalog_index() < b->catalog_index();
            });
  memo.tables.erase(std::unique(memo.tables.begin(), memo.tables.end()),
                    memo.tables.end());
  memo.filled = true;
  return memo;
}

uint64_t QueryEvaluator::RelsetVersion(const NodeRelations& rels) {
  size_t seed = 0x9e3779b97f4a7c15ull;
  for (const Table* t : rels.tables) {
    HashCombine(&seed, std::hash<uint64_t>{}(t->catalog_index()));
    HashCombine(&seed, std::hash<uint64_t>{}(t->data_epoch()));
  }
  return seed;
}

StatusOr<bool> QueryEvaluator::IsAlive(NodeId id) {
  const LatticeNode& node = pl_->lattice().node(id);
  // Fence the relations this node binds (shared) for the whole evaluation —
  // including the level-1 shortcuts, which read live_rows() / the inverted
  // index — so a concurrent LiveMutator::Apply to any of them waits or
  // happens entirely before/after this verdict, never halfway through it.
  uint64_t rel_mask = 0;
  const NodeRelations* rels = nullptr;
  if (cache_ != nullptr || options_.fences != nullptr) {
    rels = &RelationsFor(id);
    rel_mask = rels->rel_mask;
  }
  RelationReadGuard fence_guard(options_.fences, rel_mask);
  if (options_.base_nodes_via_index && node.level == 1) {
    const RelationCopy v = node.tree.vertex(0);
    const std::string& table = pl_->lattice().schema().relation(v.relation).name;
    if (v.copy == 0) {
      // Free copy: SELECT * FROM R — alive iff the table has live rows
      // (tombstoned rows are invisible to every scan).
      const Table* t = db_->FindTable(table);
      if (t == nullptr) return Status::NotFound("no table " + table);
      const bool alive = t->live_rows() > 0;
      if (options_.pa_model != nullptr) {
        options_.pa_model->Observe(node.level, pa_bucket_, alive);
      }
      return alive;
    }
    const std::string* kw = pl_->binding().KeywordFor(v);
    if (kw != nullptr) {
      // The inverted index told Phase 1 the keyword occurs in this table; a
      // token occurrence implies the LIKE '%kw%' scan matches too.
      const bool alive = index_->TableContains(*kw, table);
      if (options_.pa_model != nullptr) {
        options_.pa_model->Observe(node.level, pa_bucket_, alive);
      }
      return alive;
    }
    // Unbound keyword copy should have been pruned; fall through to SQL.
  }
  // Capture the epoch and the relation-set fingerprint once, before
  // evaluation: a verdict must be keyed under the versions whose data
  // produced it. Re-reading them at insert time would mis-key a verdict as
  // current when a mutation landed between the SQL run and the insert — a
  // stale verdict that every later reader would then trust. (Under fences
  // the race cannot happen within one evaluation, but the capture-once rule
  // also covers fence-less single-writer deployments.)
  const uint64_t epoch = db_->epoch();
  const uint64_t relset = rels != nullptr ? RelsetVersion(*rels) : 0;
  // Verdict-tier fault point: sits before both the lookup and the SQL, so
  // an injected outage fails the evaluation with a typed retryable status
  // instead of risking a verdict the (faulted) tier could not record.
  KWSDBG_FAULT_POINT("cache.verdict.lookup");
  if (cache_ != nullptr) {
    std::optional<bool> verdict =
        cache_->Lookup(CanonicalFor(id), binding_sig_, epoch, relset);
    if (verdict.has_value()) {
      ++cache_hits_;
      return *verdict;
    }
    ++cache_misses_;
  }
  if (cancelled()) {
    return Status::DeadlineExceeded("node evaluation cancelled");
  }
  KWSDBG_ASSIGN_OR_RETURN(
      JoinNetworkQuery query,
      BuildNodeQuery(pl_->lattice(), id, pl_->binding()));
  Timer timer;
  KWSDBG_ASSIGN_OR_RETURN(bool alive, executor_->IsNonEmpty(query));
  ++sql_executed_;
  sql_millis_ += timer.ElapsedMillis();
  // A fresh SQL verdict is a free labeled p_a sample (cache hits above are
  // not re-observed — they were sampled when first evaluated).
  if (options_.pa_model != nullptr) {
    options_.pa_model->Observe(node.level, pa_bucket_, alive);
  }
  if (cache_ != nullptr) {
    cache_->Insert(CanonicalFor(id), binding_sig_, epoch, relset, alive,
                   rel_mask);
  }
  return alive;
}

}  // namespace kwsdbg
