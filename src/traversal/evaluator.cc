#include "traversal/evaluator.h"

#include "common/fault_injector.h"
#include "common/timer.h"
#include "lattice/canonical_label.h"

namespace kwsdbg {

QueryEvaluator::QueryEvaluator(const Database* db, Executor* executor,
                               const PrunedLattice* pl,
                               const InvertedIndex* index, EvalOptions options,
                               VerdictCache* cache)
    : db_(db),
      executor_(executor),
      pl_(pl),
      index_(index),
      options_(options),
      cache_(cache) {
  if (cache_ != nullptr) {
    binding_sig_ = pl_->binding().Signature();
    canonical_memo_.resize(pl_->lattice().num_nodes());
  }
}

const std::string& QueryEvaluator::CanonicalFor(NodeId id) {
  std::string& memo = canonical_memo_[id];
  if (memo.empty()) memo = CanonicalLabel(pl_->lattice().node(id).tree);
  return memo;
}

StatusOr<bool> QueryEvaluator::IsAlive(NodeId id) {
  const LatticeNode& node = pl_->lattice().node(id);
  if (options_.base_nodes_via_index && node.level == 1) {
    const RelationCopy v = node.tree.vertex(0);
    const std::string& table = pl_->lattice().schema().relation(v.relation).name;
    if (v.copy == 0) {
      // Free copy: SELECT * FROM R — alive iff the table has rows.
      const Table* t = db_->FindTable(table);
      if (t == nullptr) return Status::NotFound("no table " + table);
      return t->num_rows() > 0;
    }
    const std::string* kw = pl_->binding().KeywordFor(v);
    if (kw != nullptr) {
      // The inverted index told Phase 1 the keyword occurs in this table; a
      // token occurrence implies the LIKE '%kw%' scan matches too.
      return index_->TableContains(*kw, table);
    }
    // Unbound keyword copy should have been pruned; fall through to SQL.
  }
  // Capture the epoch once, before evaluation: a verdict must be keyed
  // under the epoch whose data produced it. Re-reading the epoch at insert
  // time would mis-key a verdict as current when a mutation + BumpEpoch
  // landed between the SQL run and the insert — a stale verdict that every
  // later reader of the new epoch would then trust.
  const uint64_t epoch = db_->epoch();
  // Verdict-tier fault point: sits before both the lookup and the SQL, so
  // an injected outage fails the evaluation with a typed retryable status
  // instead of risking a verdict the (faulted) tier could not record.
  KWSDBG_FAULT_POINT("cache.verdict.lookup");
  if (cache_ != nullptr) {
    std::optional<bool> verdict =
        cache_->Lookup(CanonicalFor(id), binding_sig_, epoch);
    if (verdict.has_value()) {
      ++cache_hits_;
      return *verdict;
    }
    ++cache_misses_;
  }
  if (cancelled()) {
    return Status::DeadlineExceeded("node evaluation cancelled");
  }
  KWSDBG_ASSIGN_OR_RETURN(
      JoinNetworkQuery query,
      BuildNodeQuery(pl_->lattice(), id, pl_->binding()));
  Timer timer;
  KWSDBG_ASSIGN_OR_RETURN(bool alive, executor_->IsNonEmpty(query));
  ++sql_executed_;
  sql_millis_ += timer.ElapsedMillis();
  if (cache_ != nullptr) {
    cache_->Insert(CanonicalFor(id), binding_sig_, epoch, alive);
  }
  return alive;
}

}  // namespace kwsdbg
