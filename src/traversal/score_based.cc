// SBH (paper Sec. 2.5.3): greedily evaluate the node with the minimum
// expected remaining search space (Eq. 1).
//
// With S(m_i) = the unknown-status nodes in Desc+(m_i) and
// W(n) = |{ m_i : n in Desc+(m_i) }| for unknown n (0 once classified),
// Eq. 1 decomposes (see the paper's three-summand form) into
//
//   Score(n_j) = TotalW - W(n_j) - (1 - p_a) * A(n_j) - p_a * D(n_j)
//
// where A(n_j) / D(n_j) sum W over n_j's unknown retained ancestors /
// descendants. Minimizing Score is maximizing
// W(n_j) + (1-p_a) A(n_j) + p_a D(n_j), which this implementation maintains
// incrementally: classifying node u subtracts its old W from the D of its
// ancestors and the A of its descendants.
//
// Parallel mode prefetches verdicts speculatively: the top-K nodes by gain
// are evaluated as one batch, but verdicts are *applied* one at a time at
// the exact argmax the serial greedy would pick (a verdict is ground truth,
// so applying it at the serial selection point reproduces the serial status
// evolution bit for bit). Prefetched verdicts whose node the greedy never
// reselects cost extra SQL — that SQL still populates the shared verdict
// cache, so it is recouped across interpretations and repeated queries.
#include <algorithm>

#include "common/logging.h"
#include "common/timer.h"
#include "traversal/pa_estimator.h"
#include "traversal/parallel_frontier.h"
#include "traversal/strategies.h"

namespace kwsdbg {

namespace {

class ScoreBasedStrategy : public TraversalStrategy {
 public:
  ScoreBasedStrategy(SbhOptions options, ParallelOptions parallel)
      : options_(options), parallel_(parallel) {}

  std::string_view name() const override { return "SBH"; }

  StatusOr<TraversalResult> Run(const PrunedLattice& pl,
                                QueryEvaluator* evaluator) override {
    Timer total;
    FrontierEvaluator frontier(evaluator, parallel_);
    const size_t num_nodes = pl.lattice().num_nodes();
    NodeStatusMap status(num_nodes);
    double pa = options_.alive_probability;
    size_t pa_sample_sql = 0;

    // Per-level p_a from the adaptive model, snapshotted at run start: the
    // verdicts this run produces feed the model for *later* queries, never
    // the schedule in flight, so the run is deterministic given the model
    // state. A cold model yields the 0.5 prior at every level — the
    // schedule is then bit-identical to static SBH @ 0.5.
    std::vector<double> level_pa;
    if (options_.pa_model != nullptr) {
      const size_t bucket = SelectivityBucketFor(pl, evaluator->index());
      const size_t max_level = pl.MaxRetainedLevel();
      level_pa.resize(max_level + 1, options_.pa_model->options().prior);
      for (size_t level = 1; level <= max_level; ++level) {
        level_pa[level] = options_.pa_model->Estimate(level, bucket);
      }
    }

    // W: how many MTN search spaces each node belongs to.
    std::vector<int64_t> w(num_nodes, 0);
    for (NodeId m : pl.mtns()) {
      ++w[m];
      for (NodeId d : pl.RetainedDescendants(m)) ++w[d];
    }
    // A/D: sums of W over unknown retained ancestors / descendants.
    std::vector<int64_t> a_sum(num_nodes, 0), d_sum(num_nodes, 0);
    for (NodeId n : pl.retained()) {
      for (NodeId anc : pl.RetainedAncestors(n)) a_sum[n] += w[anc];
      for (NodeId desc : pl.RetainedDescendants(n)) d_sum[n] += w[desc];
    }

    // Classifying u zeroes its W and shrinks the A/D of its closure.
    auto on_classified = [&](NodeId u) {
      const int64_t delta = w[u];
      if (delta == 0) return;
      w[u] = 0;
      for (NodeId anc : pl.RetainedAncestors(u)) d_sum[anc] -= delta;
      for (NodeId desc : pl.RetainedDescendants(u)) a_sum[desc] -= delta;
    };

    // Cancellation exit shared by every deadline check below: classified
    // statuses are all ground truth, so the partial result is safe.
    auto truncated_result = [&]() -> TraversalResult {
      TraversalResult partial = internal::BuildTruncatedOutcomes(pl, status);
      frontier.FillStats(&partial.stats);
      partial.stats.total_millis = total.ElapsedMillis();
      partial.stats.pa_sample_sql = pa_sample_sql;
      return partial;
    };

    // The sampling pass is retired when an observation-fed model is
    // attached: the model's estimates cost no SQL at all.
    if (options_.estimate_pa && options_.pa_model == nullptr) {
      PaEstimatorOptions est_options;
      est_options.sample_size = options_.estimator_sample_size;
      est_options.seed = options_.estimator_seed;
      StatusOr<PaEstimate> estimate_or =
          EstimateAliveProbability(pl, evaluator, est_options, &status);
      if (internal::IsDeadlineExceeded(estimate_or.status())) {
        return truncated_result();
      }
      KWSDBG_ASSIGN_OR_RETURN(PaEstimate estimate, std::move(estimate_or));
      pa = estimate.alive_probability;
      pa_sample_sql = estimate.sql_executed;
      // Fold the sampled classifications into the W/A/D accounting.
      for (NodeId n : pl.retained()) {
        if (status.IsKnown(n)) on_classified(n);
      }
    }

    auto gain_of = [&](NodeId n) {
      const double p =
          level_pa.empty() ? pa : level_pa[pl.lattice().node(n).level];
      return static_cast<double>(w[n]) +
             (1.0 - p) * static_cast<double>(a_sum[n]) +
             p * static_cast<double>(d_sum[n]);
    };
    // The speculation depth: enough to keep every worker busy without
    // evaluating far down a ranking the inference rules may invalidate.
    const size_t prefetch_depth =
        parallel_.num_threads > 1 ? 2 * parallel_.num_threads : 0;

    std::vector<NodeId> unknown = pl.retained();
    std::sort(unknown.begin(), unknown.end());
    // Prefetched verdicts keyed by batch position: `batch` holds the
    // speculated nodes, `batch_alive` their verdicts, `batch_consumed`
    // marks entries already applied. The batch is at most
    // 2 * num_threads entries, so a linear scan beats a hash map (and
    // allocates nothing per round).
    std::vector<std::pair<double, NodeId>> cands;
    std::vector<NodeId> batch;
    std::vector<char> batch_alive;
    std::vector<char> batch_consumed;
    auto take_prefetched = [&](NodeId n, bool* alive) {
      for (size_t i = 0; i < batch.size(); ++i) {
        if (batch[i] == n && !batch_consumed[i]) {
          batch_consumed[i] = 1;
          *alive = batch_alive[i] != 0;
          return true;
        }
      }
      return false;
    };
    while (!unknown.empty()) {
      // Compact out classified nodes and rank the survivors by gain. The
      // serial argmax is the highest gain, first (= lowest node id) wins
      // ties — `cands` is built in ascending id order, so strict `>` below
      // reproduces that tie-break exactly.
      size_t keep = 0;
      cands.clear();
      for (size_t i = 0; i < unknown.size(); ++i) {
        const NodeId n = unknown[i];
        if (status.IsKnown(n)) continue;
        unknown[keep++] = n;
        cands.emplace_back(gain_of(n), n);
      }
      unknown.resize(keep);
      if (unknown.empty()) break;
      size_t best = 0;
      for (size_t i = 1; i < cands.size(); ++i) {
        if (cands[i].first > cands[best].first) best = i;
      }
      const NodeId n = cands[best].second;

      if (frontier.cancelled()) return truncated_result();

      bool alive;
      if (take_prefetched(n, &alive)) {
        // Speculated verdict from an earlier batch — apply it here, at the
        // exact serial selection point.
      } else if (prefetch_depth == 0) {
        StatusOr<bool> alive_or = frontier.EvaluateOne(n);
        if (internal::IsDeadlineExceeded(alive_or.status())) {
          return truncated_result();
        }
        KWSDBG_ASSIGN_OR_RETURN(alive, std::move(alive_or));
      } else {
        // Speculate: batch the current top-K by (gain desc, id asc); the
        // argmax is first, so its verdict is always available below.
        const size_t k = std::min(prefetch_depth, cands.size());
        std::partial_sort(cands.begin(), cands.begin() + k, cands.end(),
                          [](const auto& a, const auto& b) {
                            return a.first != b.first ? a.first > b.first
                                                      : a.second < b.second;
                          });
        batch.clear();
        for (size_t i = 0; i < k; ++i) batch.push_back(cands[i].second);
        Status st = frontier.EvaluateBatch(batch, &batch_alive);
        if (internal::IsDeadlineExceeded(st)) return truncated_result();
        KWSDBG_RETURN_NOT_OK(st);
        batch_consumed.assign(batch.size(), 0);
        const bool hit = take_prefetched(n, &alive);
        KWSDBG_CHECK(hit) << "argmax missing from its own batch";
      }

      if (alive) {
        // R1: n and its unknown descendants become alive.
        std::vector<NodeId> newly = {n};
        for (NodeId d : pl.RetainedDescendants(n)) {
          if (!status.IsKnown(d)) newly.push_back(d);
        }
        status.MarkAliveWithDescendants(n, pl);
        for (NodeId u : newly) on_classified(u);
      } else {
        // R2: n and its unknown ancestors become dead.
        std::vector<NodeId> newly = {n};
        for (NodeId anc : pl.RetainedAncestors(n)) {
          if (!status.IsKnown(anc)) newly.push_back(anc);
        }
        status.MarkDeadWithAncestors(n, pl);
        for (NodeId u : newly) on_classified(u);
      }
    }

    KWSDBG_ASSIGN_OR_RETURN(TraversalResult result,
                            internal::BuildOutcomes(pl, status));
    frontier.FillStats(&result.stats);
    result.stats.total_millis = total.ElapsedMillis();
    result.stats.pa_sample_sql = pa_sample_sql;
    return result;
  }

 private:
  SbhOptions options_;
  ParallelOptions parallel_;
};

}  // namespace

std::unique_ptr<TraversalStrategy> MakeScoreBased(SbhOptions options,
                                                  ParallelOptions parallel) {
  return std::make_unique<ScoreBasedStrategy>(options, parallel);
}

}  // namespace kwsdbg
