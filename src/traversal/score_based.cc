// SBH (paper Sec. 2.5.3): greedily evaluate the node with the minimum
// expected remaining search space (Eq. 1).
//
// With S(m_i) = the unknown-status nodes in Desc+(m_i) and
// W(n) = |{ m_i : n in Desc+(m_i) }| for unknown n (0 once classified),
// Eq. 1 decomposes (see the paper's three-summand form) into
//
//   Score(n_j) = TotalW - W(n_j) - (1 - p_a) * A(n_j) - p_a * D(n_j)
//
// where A(n_j) / D(n_j) sum W over n_j's unknown retained ancestors /
// descendants. Minimizing Score is maximizing
// W(n_j) + (1-p_a) A(n_j) + p_a D(n_j), which this implementation maintains
// incrementally: classifying node u subtracts its old W from the D of its
// ancestors and the A of its descendants.
#include <algorithm>

#include "common/logging.h"
#include "common/timer.h"
#include "traversal/pa_estimator.h"
#include "traversal/strategies.h"

namespace kwsdbg {

namespace {

class ScoreBasedStrategy : public TraversalStrategy {
 public:
  explicit ScoreBasedStrategy(SbhOptions options) : options_(options) {}

  std::string_view name() const override { return "SBH"; }

  StatusOr<TraversalResult> Run(const PrunedLattice& pl,
                                QueryEvaluator* evaluator) override {
    Timer total;
    const size_t sql_before = evaluator->sql_executed();
    const double ms_before = evaluator->sql_millis();
    const size_t num_nodes = pl.lattice().num_nodes();
    NodeStatusMap status(num_nodes);
    double pa = options_.alive_probability;

    // W: how many MTN search spaces each node belongs to.
    std::vector<int64_t> w(num_nodes, 0);
    for (NodeId m : pl.mtns()) {
      ++w[m];
      for (NodeId d : pl.RetainedDescendants(m)) ++w[d];
    }
    // A/D: sums of W over unknown retained ancestors / descendants.
    std::vector<int64_t> a_sum(num_nodes, 0), d_sum(num_nodes, 0);
    for (NodeId n : pl.retained()) {
      for (NodeId anc : pl.RetainedAncestors(n)) a_sum[n] += w[anc];
      for (NodeId desc : pl.RetainedDescendants(n)) d_sum[n] += w[desc];
    }

    // Classifying u zeroes its W and shrinks the A/D of its closure.
    auto on_classified = [&](NodeId u) {
      const int64_t delta = w[u];
      if (delta == 0) return;
      w[u] = 0;
      for (NodeId anc : pl.RetainedAncestors(u)) d_sum[anc] -= delta;
      for (NodeId desc : pl.RetainedDescendants(u)) a_sum[desc] -= delta;
    };

    if (options_.estimate_pa) {
      PaEstimatorOptions est_options;
      est_options.sample_size = options_.estimator_sample_size;
      est_options.seed = options_.estimator_seed;
      KWSDBG_ASSIGN_OR_RETURN(
          PaEstimate estimate,
          EstimateAliveProbability(pl, evaluator, est_options, &status));
      pa = estimate.alive_probability;
      // Fold the sampled classifications into the W/A/D accounting.
      for (NodeId n : pl.retained()) {
        if (status.IsKnown(n)) on_classified(n);
      }
    }

    std::vector<NodeId> unknown = pl.retained();
    std::sort(unknown.begin(), unknown.end());
    while (!unknown.empty()) {
      // Compact out classified nodes and pick the best candidate in one scan.
      size_t keep = 0;
      int best = -1;
      double best_gain = -1.0;
      for (size_t i = 0; i < unknown.size(); ++i) {
        const NodeId n = unknown[i];
        if (status.IsKnown(n)) continue;
        unknown[keep++] = n;
        const double gain = static_cast<double>(w[n]) +
                            (1.0 - pa) * static_cast<double>(a_sum[n]) +
                            pa * static_cast<double>(d_sum[n]);
        if (gain > best_gain) {
          best_gain = gain;
          best = static_cast<int>(keep - 1);
        }
      }
      unknown.resize(keep);
      if (unknown.empty()) break;
      const NodeId n = unknown[static_cast<size_t>(best)];

      KWSDBG_ASSIGN_OR_RETURN(bool alive, evaluator->IsAlive(n));
      if (alive) {
        // R1: n and its unknown descendants become alive.
        std::vector<NodeId> newly = {n};
        for (NodeId d : pl.RetainedDescendants(n)) {
          if (!status.IsKnown(d)) newly.push_back(d);
        }
        status.MarkAliveWithDescendants(n, pl);
        for (NodeId u : newly) on_classified(u);
      } else {
        // R2: n and its unknown ancestors become dead.
        std::vector<NodeId> newly = {n};
        for (NodeId anc : pl.RetainedAncestors(n)) {
          if (!status.IsKnown(anc)) newly.push_back(anc);
        }
        status.MarkDeadWithAncestors(n, pl);
        for (NodeId u : newly) on_classified(u);
      }
    }

    KWSDBG_ASSIGN_OR_RETURN(TraversalResult result,
                            internal::BuildOutcomes(pl, status));
    result.stats.sql_queries = evaluator->sql_executed() - sql_before;
    result.stats.sql_millis = evaluator->sql_millis() - ms_before;
    result.stats.total_millis = total.ElapsedMillis();
    return result;
  }

 private:
  SbhOptions options_;
};

}  // namespace

std::unique_ptr<TraversalStrategy> MakeScoreBased(SbhOptions options) {
  return std::make_unique<ScoreBasedStrategy>(options);
}

}  // namespace kwsdbg
