// BU (paper Sec. 2.5.1): classify one MTN at a time, sweeping the MTN's
// sub-lattice from the single-table level upward. Shares nothing across
// MTNs — common descendants are re-evaluated (the contrast with BUWR).
//
// Frontier batching: nodes of one level are never ancestor/descendant of one
// another, so the unknown nodes of a level form an independent batch whose
// verdicts are evaluated in parallel and then folded in serially via R2 —
// the classification is bit-identical to the serial sweep.
#include <algorithm>
#include <map>

#include "common/timer.h"
#include "traversal/parallel_frontier.h"
#include "traversal/strategies.h"

namespace kwsdbg {

namespace {

class BottomUpStrategy : public TraversalStrategy {
 public:
  explicit BottomUpStrategy(ParallelOptions parallel) : parallel_(parallel) {}

  std::string_view name() const override { return "BU"; }

  StatusOr<TraversalResult> Run(const PrunedLattice& pl,
                                QueryEvaluator* evaluator) override {
    Timer total;
    TraversalResult result;
    FrontierEvaluator frontier(evaluator, parallel_);
    std::vector<NodeId> batch;
    std::vector<char> alive;
    for (NodeId m : pl.mtns()) {
      NodeStatusMap status(pl.lattice().num_nodes());
      // The MTN's sub-lattice, grouped by level.
      std::map<size_t, std::vector<NodeId>> by_level;
      by_level[pl.lattice().node(m).level].push_back(m);
      for (NodeId d : pl.RetainedDescendants(m)) {
        by_level[pl.lattice().node(d).level].push_back(d);
      }
      for (auto& [level, nodes] : by_level) {
        std::sort(nodes.begin(), nodes.end());
        batch.clear();
        for (NodeId n : nodes) {
          if (!status.IsKnown(n)) batch.push_back(n);  // not inferred via R2
        }
        Status st = frontier.cancelled()
                        ? Status::DeadlineExceeded("traversal cancelled")
                        : frontier.EvaluateBatch(batch, &alive);
        if (internal::IsDeadlineExceeded(st)) {
          // Completed MTNs stay in `result`; the current one is kept only
          // if its sweep already classified it.
          internal::AppendOutcomeIfKnown(pl, status, m, &result);
          result.truncated = true;
          frontier.FillStats(&result.stats);
          result.stats.total_millis = total.ElapsedMillis();
          return result;
        }
        KWSDBG_RETURN_NOT_OK(st);
        for (size_t i = 0; i < batch.size(); ++i) {
          if (alive[i]) {
            status.Set(batch[i], NodeStatus::kAlive);
          } else {
            status.MarkDeadWithAncestors(batch[i], pl);
          }
        }
      }
      MtnOutcome outcome;
      outcome.mtn = m;
      outcome.alive = status.IsAlive(m);
      if (!outcome.alive) {
        outcome.mpans = internal::ExtractMpans(pl, status, m);
        outcome.culprits = internal::ExtractMinimalDead(pl, status, m);
      }
      result.outcomes.push_back(std::move(outcome));
    }
    frontier.FillStats(&result.stats);
    result.stats.total_millis = total.ElapsedMillis();
    return result;
  }

 private:
  ParallelOptions parallel_;
};

}  // namespace

std::unique_ptr<TraversalStrategy> MakeBottomUp(ParallelOptions parallel) {
  return std::make_unique<BottomUpStrategy>(parallel);
}

}  // namespace kwsdbg
