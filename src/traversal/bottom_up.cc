// BU (paper Sec. 2.5.1): classify one MTN at a time, sweeping the MTN's
// sub-lattice from the single-table level upward. Shares nothing across
// MTNs — common descendants are re-evaluated (the contrast with BUWR).
#include <algorithm>
#include <map>

#include "common/timer.h"
#include "traversal/strategies.h"

namespace kwsdbg {

namespace {

class BottomUpStrategy : public TraversalStrategy {
 public:
  std::string_view name() const override { return "BU"; }

  StatusOr<TraversalResult> Run(const PrunedLattice& pl,
                                QueryEvaluator* evaluator) override {
    Timer total;
    const size_t sql_before = evaluator->sql_executed();
    const double ms_before = evaluator->sql_millis();
    TraversalResult result;
    for (NodeId m : pl.mtns()) {
      NodeStatusMap status(pl.lattice().num_nodes());
      // The MTN's sub-lattice, grouped by level.
      std::map<size_t, std::vector<NodeId>> by_level;
      by_level[pl.lattice().node(m).level].push_back(m);
      for (NodeId d : pl.RetainedDescendants(m)) {
        by_level[pl.lattice().node(d).level].push_back(d);
      }
      for (auto& [level, nodes] : by_level) {
        std::sort(nodes.begin(), nodes.end());
        for (NodeId n : nodes) {
          if (status.IsKnown(n)) continue;  // inferred dead via R2
          KWSDBG_ASSIGN_OR_RETURN(bool alive, evaluator->IsAlive(n));
          if (alive) {
            status.Set(n, NodeStatus::kAlive);
          } else {
            status.MarkDeadWithAncestors(n, pl);
          }
        }
      }
      MtnOutcome outcome;
      outcome.mtn = m;
      outcome.alive = status.IsAlive(m);
      if (!outcome.alive) {
        outcome.mpans = internal::ExtractMpans(pl, status, m);
        outcome.culprits = internal::ExtractMinimalDead(pl, status, m);
      }
      result.outcomes.push_back(std::move(outcome));
    }
    result.stats.sql_queries = evaluator->sql_executed() - sql_before;
    result.stats.sql_millis = evaluator->sql_millis() - ms_before;
    result.stats.total_millis = total.ElapsedMillis();
    return result;
  }
};

}  // namespace

std::unique_ptr<TraversalStrategy> MakeBottomUp() {
  return std::make_unique<BottomUpStrategy>();
}

}  // namespace kwsdbg
