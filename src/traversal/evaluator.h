// Node aliveness evaluation: executes the node's instantiated SQL query with
// first-row early exit, with the paper's base-level shortcuts (bound
// single-table nodes are known alive from the inverted index — Alg. 3
// GetBaseNodes; free single-table nodes from the catalog), and an optional
// session-level verdict cache consulted before any SQL is issued.
#ifndef KWSDBG_TRAVERSAL_EVALUATOR_H_
#define KWSDBG_TRAVERSAL_EVALUATOR_H_

#include <string>
#include <vector>

#include "common/cancellation.h"
#include "kws/pruned_lattice.h"
#include "kws/query_builder.h"
#include "sql/executor.h"
#include "text/inverted_index.h"
#include "traversal/verdict_cache.h"

namespace kwsdbg {

/// Evaluation knobs.
struct EvalOptions {
  /// Resolve level-1 nodes from the inverted index / catalog without SQL.
  bool base_nodes_via_index = true;
  /// Cooperative per-query deadline, shared with the executor and every
  /// frontier worker (worker evaluators copy these options, so the same
  /// token reaches all of them). IsAlive polls it before issuing SQL and
  /// returns kDeadlineExceeded once it fires — never a fabricated verdict.
  const CancellationToken* cancellation = nullptr;
};

/// Evaluates node aliveness for one interpretation. Not thread-safe itself
/// (one evaluator per thread; see FrontierEvaluator), but the optional
/// VerdictCache it consults is shared and thread-safe. Memoization of
/// outcomes within a traversal belongs to the strategy (the no-reuse
/// variants deliberately re-execute); the verdict cache adds the *session*
/// dimension: verdicts persist across interpretations and repeated queries
/// until the database epoch changes.
class QueryEvaluator {
 public:
  QueryEvaluator(const Database* db, Executor* executor,
                 const PrunedLattice* pl, const InvertedIndex* index,
                 EvalOptions options = {}, VerdictCache* cache = nullptr);

  /// True iff the node's query returns at least one tuple.
  StatusOr<bool> IsAlive(NodeId id);

  /// True once the attached cancellation token (if any) has fired. The
  /// strategies poll this at frontier boundaries to degrade to a truncated
  /// partial result instead of starting work they cannot finish.
  bool cancelled() const {
    return options_.cancellation != nullptr && options_.cancellation->Expired();
  }

  /// SQL executions performed through this evaluator (base-level shortcut
  /// evaluations and cache hits do not count, matching the paper's query
  /// counting).
  size_t sql_executed() const { return sql_executed_; }
  double sql_millis() const { return sql_millis_; }

  /// Verdict-cache traffic from this evaluator (zero when no cache is
  /// attached; base-level shortcuts bypass the cache entirely).
  size_t cache_hits() const { return cache_hits_; }
  size_t cache_misses() const { return cache_misses_; }

  const Executor* executor() const { return executor_; }
  const Database* db() const { return db_; }
  const PrunedLattice* pruned_lattice() const { return pl_; }
  const InvertedIndex* index() const { return index_; }
  const EvalOptions& options() const { return options_; }
  VerdictCache* cache() const { return cache_; }

 private:
  /// Memoized canonical label of the node's join tree.
  const std::string& CanonicalFor(NodeId id);

  const Database* db_;
  Executor* executor_;
  const PrunedLattice* pl_;
  const InvertedIndex* index_;
  EvalOptions options_;
  VerdictCache* cache_;
  std::string binding_sig_;  ///< Computed once from pl_->binding().
  std::vector<std::string> canonical_memo_;  ///< Lazily filled per node.
  size_t sql_executed_ = 0;
  double sql_millis_ = 0;
  size_t cache_hits_ = 0;
  size_t cache_misses_ = 0;
};

}  // namespace kwsdbg

#endif  // KWSDBG_TRAVERSAL_EVALUATOR_H_
