// Node aliveness evaluation: executes the node's instantiated SQL query with
// first-row early exit, with the paper's base-level shortcuts (bound
// single-table nodes are known alive from the inverted index — Alg. 3
// GetBaseNodes; free single-table nodes from the catalog).
#ifndef KWSDBG_TRAVERSAL_EVALUATOR_H_
#define KWSDBG_TRAVERSAL_EVALUATOR_H_

#include "kws/pruned_lattice.h"
#include "kws/query_builder.h"
#include "sql/executor.h"
#include "text/inverted_index.h"

namespace kwsdbg {

/// Evaluation knobs.
struct EvalOptions {
  /// Resolve level-1 nodes from the inverted index / catalog without SQL.
  bool base_nodes_via_index = true;
};

/// Evaluates node aliveness for one interpretation. Stateless apart from the
/// executor's caches; memoization of outcomes belongs to the traversal
/// strategy (the no-reuse variants deliberately re-execute).
class QueryEvaluator {
 public:
  QueryEvaluator(const Database* db, Executor* executor,
                 const PrunedLattice* pl, const InvertedIndex* index,
                 EvalOptions options = {})
      : db_(db),
        executor_(executor),
        pl_(pl),
        index_(index),
        options_(options) {}

  /// True iff the node's query returns at least one tuple.
  StatusOr<bool> IsAlive(NodeId id);

  /// SQL executions performed through this evaluator (base-level shortcut
  /// evaluations do not count, matching the paper's query counting).
  size_t sql_executed() const { return sql_executed_; }
  double sql_millis() const { return sql_millis_; }

  const Executor* executor() const { return executor_; }

 private:
  const Database* db_;
  Executor* executor_;
  const PrunedLattice* pl_;
  const InvertedIndex* index_;
  EvalOptions options_;
  size_t sql_executed_ = 0;
  double sql_millis_ = 0;
};

}  // namespace kwsdbg

#endif  // KWSDBG_TRAVERSAL_EVALUATOR_H_
