// Node aliveness evaluation: executes the node's instantiated SQL query with
// first-row early exit, with the paper's base-level shortcuts (bound
// single-table nodes are known alive from the inverted index — Alg. 3
// GetBaseNodes; free single-table nodes from the catalog), and an optional
// session-level verdict cache consulted before any SQL is issued.
#ifndef KWSDBG_TRAVERSAL_EVALUATOR_H_
#define KWSDBG_TRAVERSAL_EVALUATOR_H_

#include <string>
#include <vector>

#include "common/cancellation.h"
#include "kws/pruned_lattice.h"
#include "kws/query_builder.h"
#include "sql/executor.h"
#include "storage/relation_fences.h"
#include "text/inverted_index.h"
#include "traversal/verdict_cache.h"

namespace kwsdbg {

class PaModel;

/// Evaluation knobs.
struct EvalOptions {
  /// Resolve level-1 nodes from the inverted index / catalog without SQL.
  bool base_nodes_via_index = true;
  /// Cooperative per-query deadline, shared with the executor and every
  /// frontier worker (worker evaluators copy these options, so the same
  /// token reaches all of them). IsAlive polls it before issuing SQL and
  /// returns kDeadlineExceeded once it fires — never a fabricated verdict.
  const CancellationToken* cancellation = nullptr;
  /// Relation fences shared with LiveMutator (see
  /// storage/relation_fences.h). When set, IsAlive holds the fences of the
  /// node's bound relations (plus the index gate) shared for the whole
  /// evaluation, so a concurrent ApplyMutation cannot change the rows or
  /// indexes it reads mid-verdict. Null = single-writer deployment, no
  /// locking.
  RelationFences* fences = nullptr;
  /// Online p_a model fed by this evaluator's verdicts (see
  /// traversal/pa_model.h): fresh SQL verdicts and level-1 shortcut verdicts
  /// are observed; cache hits and R1/R2-inferred statuses are not — each
  /// verdict must be sampled exactly once. The model is thread-safe and
  /// shared (frontier workers copy these options, so the same model sees
  /// their verdicts too). Null = no observation.
  PaModel* pa_model = nullptr;
};

/// Evaluates node aliveness for one interpretation. Not thread-safe itself
/// (one evaluator per thread; see FrontierEvaluator), but the optional
/// VerdictCache it consults is shared and thread-safe. Memoization of
/// outcomes within a traversal belongs to the strategy (the no-reuse
/// variants deliberately re-execute); the verdict cache adds the *session*
/// dimension: verdicts persist across interpretations and repeated queries
/// until the database epoch changes.
class QueryEvaluator {
 public:
  QueryEvaluator(const Database* db, Executor* executor,
                 const PrunedLattice* pl, const InvertedIndex* index,
                 EvalOptions options = {}, VerdictCache* cache = nullptr);

  /// True iff the node's query returns at least one tuple.
  StatusOr<bool> IsAlive(NodeId id);

  /// True once the attached cancellation token (if any) has fired. The
  /// strategies poll this at frontier boundaries to degrade to a truncated
  /// partial result instead of starting work they cannot finish.
  bool cancelled() const {
    return options_.cancellation != nullptr && options_.cancellation->Expired();
  }

  /// SQL executions performed through this evaluator (base-level shortcut
  /// evaluations and cache hits do not count, matching the paper's query
  /// counting).
  size_t sql_executed() const { return sql_executed_; }
  double sql_millis() const { return sql_millis_; }

  /// Verdict-cache traffic from this evaluator (zero when no cache is
  /// attached; base-level shortcuts bypass the cache entirely).
  size_t cache_hits() const { return cache_hits_; }
  size_t cache_misses() const { return cache_misses_; }

  const Executor* executor() const { return executor_; }
  const Database* db() const { return db_; }
  const PrunedLattice* pruned_lattice() const { return pl_; }
  const InvertedIndex* index() const { return index_; }
  const EvalOptions& options() const { return options_; }
  VerdictCache* cache() const { return cache_; }

 private:
  /// Memoized canonical label of the node's join tree.
  const std::string& CanonicalFor(NodeId id);

  /// The distinct tables a node's join tree binds, plus their relation mask
  /// (RelationFences::BitFor bits). Tables are sorted by catalog index so
  /// isomorphic nodes (same canonical label, different vertex order) produce
  /// the same relation-set fingerprint and share cache entries.
  struct NodeRelations {
    bool filled = false;
    uint64_t rel_mask = 0;
    std::vector<const Table*> tables;
  };
  const NodeRelations& RelationsFor(NodeId id);

  /// Fingerprint over the bound tables' (catalog index, data epoch) pairs:
  /// changes exactly when one of those tables takes a write, so verdicts
  /// keyed by it go unreachable (and are then reaped by EvictRelations or
  /// LRU aging) without touching verdicts over other relations.
  static uint64_t RelsetVersion(const NodeRelations& rels);

  const Database* db_;
  Executor* executor_;
  const PrunedLattice* pl_;
  const InvertedIndex* index_;
  EvalOptions options_;
  VerdictCache* cache_;
  std::string binding_sig_;  ///< Computed once from pl_->binding().
  std::vector<std::string> canonical_memo_;  ///< Lazily filled per node.
  std::vector<NodeRelations> relations_memo_;  ///< Lazily filled per node.
  size_t sql_executed_ = 0;
  double sql_millis_ = 0;
  size_t cache_hits_ = 0;
  size_t cache_misses_ = 0;
  size_t pa_bucket_ = 0;  ///< Selectivity bucket of pl_'s binding (only
                          ///< computed when a pa_model is attached).
};

}  // namespace kwsdbg

#endif  // KWSDBG_TRAVERSAL_EVALUATOR_H_
