#include "traversal/strategy_planner.h"

#include <algorithm>
#include <bit>
#include <cstdlib>

#include "kws/pruned_lattice.h"
#include "text/inverted_index.h"
#include "traversal/strategies.h"

namespace kwsdbg {

std::string_view PlannerArmName(PlannerArm arm) {
  switch (arm) {
    case PlannerArm::kBottomUp:
      return "BU";
    case PlannerArm::kTopDown:
      return "TD";
    case PlannerArm::kBottomUpReuse:
      return "BUWR";
    case PlannerArm::kTopDownReuse:
      return "TDWR";
    case PlannerArm::kSbhFixed:
      return "SBH";
    case PlannerArm::kSbhAdaptive:
      return "SBH+pa";
  }
  return "?";
}

TraversalKind ArmTraversalKind(PlannerArm arm) {
  switch (arm) {
    case PlannerArm::kBottomUp:
      return TraversalKind::kBottomUp;
    case PlannerArm::kTopDown:
      return TraversalKind::kTopDown;
    case PlannerArm::kBottomUpReuse:
      return TraversalKind::kBottomUpWithReuse;
    case PlannerArm::kTopDownReuse:
      return TraversalKind::kTopDownWithReuse;
    case PlannerArm::kSbhFixed:
    case PlannerArm::kSbhAdaptive:
      return TraversalKind::kScoreBased;
  }
  return TraversalKind::kScoreBased;
}

const std::vector<PlannerArm>& AllPlannerArms() {
  static const std::vector<PlannerArm> kArms = {
      PlannerArm::kBottomUp,     PlannerArm::kTopDown,
      PlannerArm::kBottomUpReuse, PlannerArm::kTopDownReuse,
      PlannerArm::kSbhFixed,     PlannerArm::kSbhAdaptive,
  };
  return kArms;
}

PlannerFeatures ComputePlannerFeatures(const PrunedLattice& pl,
                                       const InvertedIndex* index) {
  PlannerFeatures f;
  f.retained_nodes = pl.retained().size();
  f.num_mtns = pl.mtns().size();
  f.max_level = pl.MaxRetainedLevel();
  f.base_nodes = pl.RetainedAtLevel(1).size();
  f.top_nodes = f.max_level > 0 ? pl.RetainedAtLevel(f.max_level).size() : 0;
  f.min_keyword_rows =
      MinBoundRowFrequency(pl.binding(), pl.lattice().schema(), index);
  f.sel_bucket = SelectivityBucketOf(f.min_keyword_rows);
  return f;
}

StrategyPlannerOptions StrategyPlannerOptions::FromEnv() {
  StrategyPlannerOptions options;
  if (const char* eps = std::getenv("KWSDBG_EXPLORE_EPS")) {
    options.explore_eps = std::clamp(std::strtod(eps, nullptr), 0.0, 1.0);
  }
  if (const char* seed = std::getenv("KWSDBG_ADAPTIVE_SEED")) {
    options.seed = std::strtoull(seed, nullptr, 10);
  }
  return options;
}

AdaptiveOptions AdaptiveOptions::FromEnv() {
  AdaptiveOptions options;
  options.planner = StrategyPlannerOptions::FromEnv();
  return options;
}

StrategyPlanner::StrategyPlanner(StrategyPlannerOptions options)
    : options_(options), rng_(options.seed) {}

uint64_t StrategyPlanner::FeatureBucket(const PlannerFeatures& features) {
  auto log2b = [](size_t v) -> uint64_t {
    return static_cast<uint64_t>(std::bit_width(v));  // 0 -> 0, 1 -> 1, ...
  };
  const uint64_t level = std::min<uint64_t>(features.max_level, 15);
  return level | (log2b(features.retained_nodes) & 0x3f) << 8 |
         (log2b(features.num_mtns) & 0x3f) << 16 |
         (static_cast<uint64_t>(features.sel_bucket) & 0x0f) << 24;
}

PlannerDecision StrategyPlanner::Decide(const PlannerFeatures& features) {
  std::lock_guard<std::mutex> lock(mu_);
  PlannerDecision decision;
  decision.feature_bucket = FeatureBucket(features);
  ++decisions_;
  BucketArms& arms = buckets_[decision.feature_bucket];

  if (!frozen_ && options_.explore_eps > 0 &&
      rng_.Bernoulli(options_.explore_eps)) {
    // Explore the least-run arm; break ties uniformly so repeated cold
    // decisions fan out over all arms instead of always retrying arm 0.
    double min_runs = arms[0].runs;
    for (const ArmStats& a : arms) min_runs = std::min(min_runs, a.runs);
    size_t ties = 0;
    for (const ArmStats& a : arms) ties += a.runs == min_runs ? 1 : 0;
    size_t pick = rng_.Uniform(ties);
    for (size_t i = 0; i < arms.size(); ++i) {
      if (arms[i].runs != min_runs) continue;
      if (pick-- == 0) {
        decision.arm = static_cast<PlannerArm>(i);
        break;
      }
    }
    decision.explored = true;
    ++explored_;
    return decision;
  }

  // Exploit: lowest mean SQL among observed arms, mean millis breaks ties.
  // A cold bucket has no observed arm — fall back to model-fed SBH, which
  // with a cold PaModel is exactly the paper's SBH @ 0.5.
  bool found = false;
  double best_sql = 0, best_millis = 0;
  for (size_t i = 0; i < arms.size(); ++i) {
    const ArmStats& a = arms[i];
    if (a.runs == 0) continue;
    const double mean_sql = a.sql / a.runs;
    const double mean_millis = a.millis / a.runs;
    if (!found || mean_sql < best_sql ||
        (mean_sql == best_sql && mean_millis < best_millis)) {
      found = true;
      best_sql = mean_sql;
      best_millis = mean_millis;
      decision.arm = static_cast<PlannerArm>(i);
    }
  }
  if (!found) decision.arm = PlannerArm::kSbhAdaptive;
  return decision;
}

void StrategyPlanner::ObserveKey(uint64_t bucket, PlannerArm arm,
                                 size_t sql_queries, double total_millis) {
  std::lock_guard<std::mutex> lock(mu_);
  if (frozen_) return;
  ArmStats& stats = buckets_[bucket][static_cast<size_t>(arm)];
  stats.runs += 1;
  stats.sql += static_cast<double>(sql_queries);
  stats.millis += total_millis;
}

void StrategyPlanner::Observe(const PlannerDecision& decision,
                              size_t sql_queries, double total_millis) {
  ObserveKey(decision.feature_bucket, decision.arm, sql_queries, total_millis);
}

void StrategyPlanner::ObserveArm(const PlannerFeatures& features,
                                 PlannerArm arm, size_t sql_queries,
                                 double total_millis) {
  ObserveKey(FeatureBucket(features), arm, sql_queries, total_millis);
}

void StrategyPlanner::SyncDataVersion(uint64_t version) {
  if (version == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (frozen_ || data_version_ == version) return;
  if (data_version_ != 0) {
    for (auto& [bucket, arms] : buckets_) {
      for (ArmStats& a : arms) {
        a.runs /= 2;
        a.sql /= 2;
        a.millis /= 2;
      }
    }
  }
  data_version_ = version;
}

size_t StrategyPlanner::decisions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return decisions_;
}

size_t StrategyPlanner::explored() const {
  std::lock_guard<std::mutex> lock(mu_);
  return explored_;
}

size_t StrategyPlanner::buckets() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buckets_.size();
}

std::unique_ptr<TraversalStrategy> MakeArmStrategy(PlannerArm arm,
                                                   SbhOptions sbh,
                                                   ParallelOptions parallel,
                                                   const PaModel* pa_model) {
  switch (arm) {
    case PlannerArm::kBottomUp:
      return MakeBottomUp(parallel);
    case PlannerArm::kTopDown:
      return MakeTopDown(parallel);
    case PlannerArm::kBottomUpReuse:
      return MakeBottomUpWithReuse(parallel);
    case PlannerArm::kTopDownReuse:
      return MakeTopDownWithReuse(parallel);
    case PlannerArm::kSbhFixed:
      sbh.pa_model = nullptr;
      return MakeScoreBased(sbh, parallel);
    case PlannerArm::kSbhAdaptive:
      sbh.pa_model = pa_model;
      return MakeScoreBased(sbh, parallel);
  }
  return MakeScoreBased(sbh, parallel);
}

}  // namespace kwsdbg
