// Batched parallel frontier evaluation for the traversal strategies. Each
// traversal round collects the independent nodes it is about to evaluate
// (nodes of one lattice level are never ancestor/descendant of one another,
// so their verdicts cannot infer each other via R1/R2) and fans them out
// over a small pool of workers, each owning its own Executor + evaluator —
// the per-thread-executor pattern from baselines/parallel_oracle.cc. R1/R2
// inference is then applied serially by the caller, in the same order as the
// serial strategies, so classification results stay bit-identical.
#ifndef KWSDBG_TRAVERSAL_PARALLEL_FRONTIER_H_
#define KWSDBG_TRAVERSAL_PARALLEL_FRONTIER_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "traversal/evaluator.h"
#include "traversal/strategy.h"

namespace kwsdbg {

/// Evaluates traversal frontiers, serially or in parallel, and accounts for
/// all SQL / cache traffic across the main evaluator and the workers. The
/// pool is lazy: threads start on the first batch that meets `min_batch`.
/// Not thread-safe itself — one FrontierEvaluator per strategy run, used
/// from the strategy's (single) thread.
class FrontierEvaluator {
 public:
  /// `main` must outlive this object; its db/index/options/cache seed the
  /// per-worker evaluators.
  FrontierEvaluator(QueryEvaluator* main, ParallelOptions options);
  ~FrontierEvaluator();

  FrontierEvaluator(const FrontierEvaluator&) = delete;
  FrontierEvaluator& operator=(const FrontierEvaluator&) = delete;

  /// Evaluates every node of `nodes`; on success `(*alive)[i]` is the
  /// verdict for `nodes[i]`. Runs on the calling thread when parallelism is
  /// off or the batch is below `min_batch`.
  Status EvaluateBatch(const std::vector<NodeId>& nodes,
                       std::vector<char>* alive);

  /// Single-node evaluation on the calling thread (main evaluator).
  StatusOr<bool> EvaluateOne(NodeId id) { return main_->IsAlive(id); }

  /// Cancellation hook polled by the strategies at frontier boundaries
  /// (the shared token also reaches every worker through its evaluator, so
  /// in-flight batches unwind on their own).
  bool cancelled() const { return main_->cancelled(); }

  /// Adds this run's SQL, cache, and parallelism counters (main evaluator
  /// deltas since construction + all workers) into `stats`. Call once, after
  /// the last batch.
  void FillStats(TraversalStats* stats) const;

 private:
  struct Worker {
    std::unique_ptr<Executor> executor;
    std::unique_ptr<QueryEvaluator> evaluator;
    std::thread thread;
  };

  void StartWorkers();
  void WorkerLoop(Worker* worker);

  QueryEvaluator* main_;
  ParallelOptions options_;

  // Baselines for delta accounting on the main evaluator / shared cache.
  size_t main_sql_before_;
  double main_ms_before_;
  size_t main_hits_before_;
  size_t main_misses_before_;
  size_t cache_evictions_before_ = 0;
  ExecutorStats exec_before_;  ///< Main executor's counters at construction.

  // Round-trip state guarded by mu_ (next_ is the only hot-path shared
  // variable; it is atomic so workers claim indices lock-free).
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::vector<NodeId>* batch_ = nullptr;
  std::vector<char>* results_ = nullptr;
  std::atomic<size_t> next_{0};
  size_t pending_ = 0;
  uint64_t generation_ = 0;
  bool shutdown_ = false;
  Status batch_status_ = Status::OK();

  std::vector<std::unique_ptr<Worker>> workers_;

  // Parallelism counters (main thread only).
  size_t parallel_rounds_ = 0;
  size_t parallel_nodes_ = 0;
  size_t max_batch_ = 0;
};

}  // namespace kwsdbg

#endif  // KWSDBG_TRAVERSAL_PARALLEL_FRONTIER_H_
