// Instantiates the SQL query of a lattice node under a keyword binding —
// the runtime half of the node's uninstantiated template (paper Sec. 2.2-2.3).
#ifndef KWSDBG_KWS_QUERY_BUILDER_H_
#define KWSDBG_KWS_QUERY_BUILDER_H_

#include "common/status.h"
#include "kws/keyword_binding.h"
#include "lattice/lattice.h"
#include "sql/join_network.h"

namespace kwsdbg {

/// Builds the executable query for `tree`: one aliased instance per vertex
/// ("Person_1", "authored_0"), the join conditions from the instantiated
/// schema edges, and the bound keyword (if any) on each instance.
StatusOr<JoinNetworkQuery> BuildNodeQuery(const JoinTree& tree,
                                          const SchemaGraph& schema,
                                          const KeywordBinding& binding);

/// Convenience overload resolving the node by id.
StatusOr<JoinNetworkQuery> BuildNodeQuery(const Lattice& lattice, NodeId id,
                                          const KeywordBinding& binding);

/// Returns the query's vertex indices ordered most-selective-first: keyword
/// vertices ascending by the index's estimated matching-row count (a spill-safe
/// upper bound from the term profile — no posting lists are materialized),
/// then free vertices ascending by table cardinality. Out-of-core probing
/// wants this order so the cheapest candidate sets page in first; ties and
/// unknown tables keep their original relative order.
std::vector<uint16_t> SelectivityProbeOrder(const JoinNetworkQuery& query,
                                            const Database& db,
                                            const InvertedIndex& index);

}  // namespace kwsdbg

#endif  // KWSDBG_KWS_QUERY_BUILDER_H_
