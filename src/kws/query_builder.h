// Instantiates the SQL query of a lattice node under a keyword binding —
// the runtime half of the node's uninstantiated template (paper Sec. 2.2-2.3).
#ifndef KWSDBG_KWS_QUERY_BUILDER_H_
#define KWSDBG_KWS_QUERY_BUILDER_H_

#include "common/status.h"
#include "kws/keyword_binding.h"
#include "lattice/lattice.h"
#include "sql/join_network.h"

namespace kwsdbg {

/// Builds the executable query for `tree`: one aliased instance per vertex
/// ("Person_1", "authored_0"), the join conditions from the instantiated
/// schema edges, and the bound keyword (if any) on each instance.
StatusOr<JoinNetworkQuery> BuildNodeQuery(const JoinTree& tree,
                                          const SchemaGraph& schema,
                                          const KeywordBinding& binding);

/// Convenience overload resolving the node by id.
StatusOr<JoinNetworkQuery> BuildNodeQuery(const Lattice& lattice, NodeId id,
                                          const KeywordBinding& binding);

}  // namespace kwsdbg

#endif  // KWSDBG_KWS_QUERY_BUILDER_H_
