// Phases 1 and 2 over the offline lattice (paper Sec. 2.3-2.4): prune nodes
// containing unbound copies, classify total/partial, find Minimal-Total Nodes
// (MTNs = candidate networks), and retain only MTNs plus their descendants.
#ifndef KWSDBG_KWS_PRUNED_LATTICE_H_
#define KWSDBG_KWS_PRUNED_LATTICE_H_

#include <functional>
#include <unordered_map>
#include <vector>

#include "kws/keyword_binding.h"
#include "lattice/lattice.h"

namespace kwsdbg {

/// Optional user-defined constraint pushed into the Phase 3 search space
/// (the paper's Sec. 5 future-work suggestion). Returning false excludes a
/// sub-network from the retained set — it is neither evaluated nor eligible
/// as an MPAN. MTNs are always retained. Exclusion cuts reachability: a
/// sub-network is kept only if some chain of kept supertrees connects it to
/// an MTN, which gives constraints like "at least 3 tables" or "must involve
/// relation X" their natural semantics.
using NodeFilter = std::function<bool(const JoinTree&)>;

/// Ready-made filters.
namespace filters {

/// Keeps sub-networks of at least `min_level` relations.
NodeFilter MinLevel(size_t min_level);

/// Keeps sub-networks that include some copy of `relation`.
NodeFilter ContainsRelation(RelationId relation);

/// Keeps sub-networks bound to at least `min_keywords` keywords.
NodeFilter MinKeywords(size_t min_keywords, const KeywordBinding* binding);

/// Logical AND of two filters.
NodeFilter And(NodeFilter a, NodeFilter b);

}  // namespace filters

/// Timing and size counters for Phases 1-2 (feeds Fig. 10 and Sec. 3.3).
struct PruneStats {
  double prune_millis = 0;      ///< Phase 1: keyword-based pruning.
  double mtn_millis = 0;        ///< Phase 2: MTN finding + retention.
  size_t lattice_nodes = 0;     ///< Offline lattice size.
  size_t surviving_nodes = 0;   ///< After Phase 1.
  size_t num_mtns = 0;
  size_t retained_nodes = 0;    ///< MTNs + their descendants.
  size_t mtn_desc_total = 0;    ///< Sum over MTNs of |Desc(m)| (N in Fig 13).
  size_t mtn_desc_unique = 0;   ///< |Union of Desc(m)| (Nu in Fig 13).
};

/// The per-interpretation runtime view of the lattice.
class PrunedLattice {
 public:
  /// Runs Phase 1 + Phase 2 for one interpretation. A non-null `filter`
  /// restricts the Phase 3 search space (see NodeFilter above).
  static PrunedLattice Build(const Lattice& lattice,
                             const KeywordBinding& binding,
                             const NodeFilter& filter = nullptr);

  const Lattice& lattice() const { return *lattice_; }
  const KeywordBinding& binding() const { return binding_; }
  const PruneStats& stats() const { return stats_; }

  /// Phase 1 survivors (every copy in the node is bound or free).
  const std::vector<NodeId>& surviving() const { return surviving_; }

  /// Phase 2 MTNs — the candidate networks.
  const std::vector<NodeId>& mtns() const { return mtns_; }

  /// MTNs plus all their descendants, the Phase 3 search space.
  const std::vector<NodeId>& retained() const { return retained_; }

  bool IsRetained(NodeId id) const { return retained_mask_[id]; }
  bool IsSurviving(NodeId id) const { return surviving_mask_[id]; }
  bool IsMtn(NodeId id) const { return mtn_mask_[id]; }

  /// True iff the node's query covers every keyword (Sec. 2.4, Total node).
  bool IsTotal(NodeId id) const;

  /// Children / parents restricted to the retained set.
  std::vector<NodeId> RetainedChildren(NodeId id) const;
  std::vector<NodeId> RetainedParents(NodeId id) const;

  /// Proper descendants of `id` within the retained set (memoized).
  const std::vector<NodeId>& RetainedDescendants(NodeId id) const;

  /// Proper ancestors of `id` within the retained set (memoized).
  const std::vector<NodeId>& RetainedAncestors(NodeId id) const;

  /// Retained node ids at `level`.
  const std::vector<NodeId>& RetainedAtLevel(size_t level) const;

  /// Highest level with a retained node (0 when nothing is retained).
  size_t MaxRetainedLevel() const { return max_retained_level_; }

 private:
  const Lattice* lattice_ = nullptr;
  KeywordBinding binding_{std::vector<KeywordAssignment>{}};
  PruneStats stats_;
  std::vector<NodeId> surviving_;
  std::vector<NodeId> mtns_;
  std::vector<NodeId> retained_;
  std::vector<bool> surviving_mask_;
  std::vector<bool> mtn_mask_;
  std::vector<bool> retained_mask_;
  std::vector<std::vector<NodeId>> retained_by_level_;
  size_t max_retained_level_ = 0;
  mutable std::unordered_map<NodeId, std::vector<NodeId>> desc_cache_;
  mutable std::unordered_map<NodeId, std::vector<NodeId>> asc_cache_;
};

}  // namespace kwsdbg

#endif  // KWSDBG_KWS_PRUNED_LATTICE_H_
