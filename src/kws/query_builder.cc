#include "kws/query_builder.h"

#include <algorithm>
#include <limits>

namespace kwsdbg {

StatusOr<JoinNetworkQuery> BuildNodeQuery(const JoinTree& tree,
                                          const SchemaGraph& schema,
                                          const KeywordBinding& binding) {
  JoinNetworkQuery query;
  for (const RelationCopy& v : tree.vertices()) {
    const RelationInfo& rel = schema.relation(v.relation);
    QueryVertex qv;
    qv.table = rel.name;
    qv.alias = rel.name + "_" + std::to_string(v.copy);
    if (v.copy != 0) {
      const std::string* kw = binding.KeywordFor(v);
      if (kw == nullptr) {
        return Status::FailedPrecondition(
            "tree vertex " + qv.alias +
            " is an unbound keyword copy; was Phase 1 pruning skipped?");
      }
      qv.keyword = *kw;
    }
    query.vertices.push_back(std::move(qv));
  }
  for (const JoinTreeEdge& e : tree.edges()) {
    const JoinEdge& se = schema.edge(e.schema_edge);
    const RelationId ra = tree.vertex(e.a).relation;
    QueryJoin join;
    if (se.from == ra) {
      join = QueryJoin{e.a, se.from_column, e.b, se.to_column};
    } else {
      join = QueryJoin{e.a, se.to_column, e.b, se.from_column};
    }
    query.joins.push_back(std::move(join));
  }
  return query;
}

StatusOr<JoinNetworkQuery> BuildNodeQuery(const Lattice& lattice, NodeId id,
                                          const KeywordBinding& binding) {
  return BuildNodeQuery(lattice.node(id).tree, lattice.schema(), binding);
}

std::vector<uint16_t> SelectivityProbeOrder(const JoinNetworkQuery& query,
                                            const Database& db,
                                            const InvertedIndex& index) {
  struct Ranked {
    uint16_t vertex;
    bool keyword;  // keyword vertices sort before free ones
    size_t cost;   // estimated candidate rows, fewer first
  };
  std::vector<Ranked> ranked;
  ranked.reserve(query.vertices.size());
  for (size_t i = 0; i < query.vertices.size(); ++i) {
    const QueryVertex& v = query.vertices[i];
    Ranked r{static_cast<uint16_t>(i), !v.keyword.empty(), 0};
    if (r.keyword) {
      r.cost = index.EstimatedInfixRows(v.keyword, v.table);
    } else {
      const Table* t = db.FindTable(v.table);
      // Unknown tables (un-Validated queries) rank as unbounded scans.
      r.cost = t != nullptr ? t->num_rows()
                            : std::numeric_limits<size_t>::max();
    }
    ranked.push_back(r);
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const Ranked& a, const Ranked& b) {
                     if (a.keyword != b.keyword) return a.keyword;
                     return a.cost < b.cost;
                   });
  std::vector<uint16_t> order;
  order.reserve(ranked.size());
  for (const Ranked& r : ranked) order.push_back(r.vertex);
  return order;
}

}  // namespace kwsdbg
