#include "kws/query_builder.h"

namespace kwsdbg {

StatusOr<JoinNetworkQuery> BuildNodeQuery(const JoinTree& tree,
                                          const SchemaGraph& schema,
                                          const KeywordBinding& binding) {
  JoinNetworkQuery query;
  for (const RelationCopy& v : tree.vertices()) {
    const RelationInfo& rel = schema.relation(v.relation);
    QueryVertex qv;
    qv.table = rel.name;
    qv.alias = rel.name + "_" + std::to_string(v.copy);
    if (v.copy != 0) {
      const std::string* kw = binding.KeywordFor(v);
      if (kw == nullptr) {
        return Status::FailedPrecondition(
            "tree vertex " + qv.alias +
            " is an unbound keyword copy; was Phase 1 pruning skipped?");
      }
      qv.keyword = *kw;
    }
    query.vertices.push_back(std::move(qv));
  }
  for (const JoinTreeEdge& e : tree.edges()) {
    const JoinEdge& se = schema.edge(e.schema_edge);
    const RelationId ra = tree.vertex(e.a).relation;
    QueryJoin join;
    if (se.from == ra) {
      join = QueryJoin{e.a, se.from_column, e.b, se.to_column};
    } else {
      join = QueryJoin{e.a, se.to_column, e.b, se.from_column};
    }
    query.joins.push_back(std::move(join));
  }
  return query;
}

StatusOr<JoinNetworkQuery> BuildNodeQuery(const Lattice& lattice, NodeId id,
                                          const KeywordBinding& binding) {
  return BuildNodeQuery(lattice.node(id).tree, lattice.schema(), binding);
}

}  // namespace kwsdbg
