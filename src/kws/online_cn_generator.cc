#include "kws/online_cn_generator.h"

#include <unordered_map>
#include <unordered_set>

#include "common/timer.h"
#include "lattice/canonical_label.h"

namespace kwsdbg {

namespace {

/// True iff the tree covers every keyword of the binding.
bool IsTotal(const JoinTree& tree, const KeywordBinding& binding) {
  size_t covered = 0;
  for (size_t i = 0; i < binding.num_keywords(); ++i) {
    if (tree.ContainsVertex(binding.VertexFor(i))) ++covered;
  }
  return covered == binding.num_keywords() && binding.num_keywords() > 0;
}

bool AllLeavesBound(const JoinTree& tree) {
  for (size_t leaf : tree.LeafIndices()) {
    if (tree.vertex(leaf).copy == 0) return false;
  }
  return true;
}

/// Minimality: no maximal proper sub-network (leaf removal) is still total.
bool IsMinimalTotal(const JoinTree& tree, const KeywordBinding& binding) {
  if (!IsTotal(tree, binding)) return false;
  if (tree.num_vertices() == 1) return true;
  for (size_t leaf : tree.LeafIndices()) {
    if (IsTotal(tree.RemoveLeaf(leaf), binding)) return false;
  }
  return true;
}

}  // namespace

StatusOr<OnlineCnResult> GenerateCandidateNetworks(
    const SchemaGraph& schema, const KeywordBinding& binding,
    size_t max_joins) {
  if (binding.num_keywords() == 0) {
    return Status::InvalidArgument("binding has no keywords");
  }
  Timer timer;
  OnlineCnResult result;

  // Valid vertices at runtime: the free copy of every relation plus the
  // interpretation's bound copies.
  std::vector<RelationCopy> seeds;
  for (const RelationInfo& rel : schema.relations()) {
    seeds.push_back(RelationCopy{rel.id, 0});
  }
  for (const KeywordAssignment& a : binding.assignments()) {
    seeds.push_back(a.vertex);
  }
  auto vertex_valid = [&](RelationCopy v) {
    return v.copy == 0 || binding.IsBound(v);
  };

  std::unordered_set<std::string> seen;
  std::vector<JoinTree> frontier;
  std::vector<JoinTree> cns;
  for (const RelationCopy& seed : seeds) {
    JoinTree t = JoinTree::Single(seed);
    ++result.trees_generated;
    if (seen.insert(CanonicalLabel(t)).second) {
      ++result.trees_explored;
      if (IsMinimalTotal(t, binding) && AllLeavesBound(t)) {
        cns.push_back(t);
      }
      frontier.push_back(std::move(t));
    }
  }

  for (size_t level = 2; level <= max_joins + 1; ++level) {
    std::vector<JoinTree> next;
    for (const JoinTree& g : frontier) {
      for (size_t vi = 0; vi < g.num_vertices(); ++vi) {
        const RelationId r = g.vertex(vi).relation;
        for (EdgeId eid : schema.IncidentEdges(r)) {
          const JoinEdge& se = schema.edge(eid);
          // Same DISCOVER validity rule as the lattice generator: an FK
          // column joins at most one instance.
          if (r == se.from && g.VertexUsesEdge(vi, eid)) continue;
          const RelationId other = schema.OtherEndpoint(se, r);
          // Candidate copies of the other endpoint: free + its bound copies.
          std::vector<uint16_t> copies = {0};
          for (const KeywordAssignment& a : binding.assignments()) {
            if (a.vertex.relation == other) copies.push_back(a.vertex.copy);
          }
          for (uint16_t c : copies) {
            RelationCopy nv{other, c};
            if (!vertex_valid(nv) || g.ContainsVertex(nv)) continue;
            JoinTree extended = g.Extend(vi, nv, eid);
            ++result.trees_generated;
            if (!seen.insert(CanonicalLabel(extended)).second) continue;
            ++result.trees_explored;
            if (IsMinimalTotal(extended, binding) &&
                AllLeavesBound(extended)) {
              cns.push_back(extended);
            }
            next.push_back(std::move(extended));
          }
        }
      }
    }
    frontier = std::move(next);
  }
  result.candidate_networks = std::move(cns);
  result.gen_millis = timer.ElapsedMillis();
  return result;
}

}  // namespace kwsdbg
