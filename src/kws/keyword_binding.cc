#include "kws/keyword_binding.h"

#include <algorithm>

#include "common/logging.h"
#include "common/timer.h"
#include "text/tokenizer.h"

namespace kwsdbg {

KeywordBinding::KeywordBinding(std::vector<KeywordAssignment> assignments)
    : assignments_(std::move(assignments)) {
  for (size_t i = 0; i < assignments_.size(); ++i) {
    const RelationCopy& v = assignments_[i].vertex;
    KWSDBG_CHECK(v.copy >= 1) << "keyword bound to free copy";
    auto [it, inserted] =
        by_vertex_.emplace(std::make_pair(v.relation, v.copy), i);
    KWSDBG_CHECK(inserted) << "two keywords bound to one copy";
  }
  std::vector<std::string> parts;
  parts.reserve(assignments_.size());
  for (const KeywordAssignment& a : assignments_) {
    parts.push_back(std::to_string(a.vertex.relation) + ":" +
                    std::to_string(a.vertex.copy) + "=" + a.keyword);
  }
  std::sort(parts.begin(), parts.end());
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) signature_ += ';';
    signature_ += parts[i];
  }
}

bool KeywordBinding::IsBound(RelationCopy v) const {
  return by_vertex_.count(std::make_pair(v.relation, v.copy)) > 0;
}

const std::string* KeywordBinding::KeywordFor(RelationCopy v) const {
  auto it = by_vertex_.find(std::make_pair(v.relation, v.copy));
  if (it == by_vertex_.end()) return nullptr;
  return &assignments_[it->second].keyword;
}

std::string KeywordBinding::ToString(const SchemaGraph& schema) const {
  std::string out;
  for (size_t i = 0; i < assignments_.size(); ++i) {
    if (i > 0) out += ", ";
    out += assignments_[i].keyword + "->" +
           schema.relation(assignments_[i].vertex.relation).name + "[" +
           std::to_string(assignments_[i].vertex.copy) + "]";
  }
  return out;
}

KeywordBinder::KeywordBinder(const SchemaGraph* schema,
                             const InvertedIndex* index,
                             size_t num_keyword_copies,
                             size_t max_interpretations)
    : schema_(schema),
      index_(index),
      num_keyword_copies_(num_keyword_copies),
      max_interpretations_(max_interpretations) {}

BindingResult KeywordBinder::Bind(const std::string& keyword_query) const {
  Timer timer;
  BindingResult result;
  result.keywords = TokenizeUnique(keyword_query);

  // Candidate text relations per keyword (inverted index lookup).
  std::vector<std::vector<RelationId>> candidates(result.keywords.size());
  for (size_t i = 0; i < result.keywords.size(); ++i) {
    for (const std::string& table :
         index_->TablesContaining(result.keywords[i])) {
      auto rid = schema_->RelationIdByName(table);
      if (rid.ok() && schema_->relation(*rid).has_text) {
        candidates[i].push_back(*rid);
      }
    }
    if (candidates[i].empty()) {
      result.missing_keywords.push_back(result.keywords[i]);
    }
  }
  // "If a keyword does not occur anywhere in the database, the system
  // displays all such keyword(s) and does not investigate the query any
  // further" (Sec. 2.3).
  if (!result.missing_keywords.empty() || result.keywords.empty()) {
    result.bind_millis = timer.ElapsedMillis();
    return result;
  }

  // Cartesian product over keywords, assigning successive copies within each
  // relation.
  std::vector<size_t> choice(result.keywords.size(), 0);
  while (true) {
    // Materialize this interpretation.
    std::unordered_map<RelationId, uint16_t> next_copy;
    std::vector<KeywordAssignment> assignments;
    bool ok = true;
    for (size_t i = 0; i < result.keywords.size(); ++i) {
      RelationId rel = candidates[i][choice[i]];
      uint16_t copy = ++next_copy[rel];  // copies start at 1
      if (copy > num_keyword_copies_) {
        ok = false;  // more keywords on this relation than lattice copies
        break;
      }
      assignments.push_back(
          KeywordAssignment{result.keywords[i], RelationCopy{rel, copy}});
    }
    if (ok) {
      if (result.interpretations.size() < max_interpretations_) {
        result.interpretations.emplace_back(std::move(assignments));
      } else {
        ++result.interpretations_skipped;
      }
    } else {
      ++result.interpretations_skipped;
    }
    // Advance the odometer.
    size_t i = 0;
    for (; i < choice.size(); ++i) {
      if (++choice[i] < candidates[i].size()) break;
      choice[i] = 0;
    }
    if (i == choice.size()) break;
  }
  result.bind_millis = timer.ElapsedMillis();
  return result;
}

}  // namespace kwsdbg
