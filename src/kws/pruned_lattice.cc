#include "kws/pruned_lattice.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "common/timer.h"

namespace kwsdbg {

namespace filters {

NodeFilter MinLevel(size_t min_level) {
  return [min_level](const JoinTree& tree) {
    return tree.level() >= min_level;
  };
}

NodeFilter ContainsRelation(RelationId relation) {
  return [relation](const JoinTree& tree) {
    for (const RelationCopy& v : tree.vertices()) {
      if (v.relation == relation) return true;
    }
    return false;
  };
}

NodeFilter MinKeywords(size_t min_keywords, const KeywordBinding* binding) {
  return [min_keywords, binding](const JoinTree& tree) {
    size_t bound = 0;
    for (const RelationCopy& v : tree.vertices()) {
      if (v.copy != 0 && binding->KeywordFor(v) != nullptr) ++bound;
    }
    return bound >= min_keywords;
  };
}

NodeFilter And(NodeFilter a, NodeFilter b) {
  return [a = std::move(a), b = std::move(b)](const JoinTree& tree) {
    return a(tree) && b(tree);
  };
}

}  // namespace filters

PrunedLattice PrunedLattice::Build(const Lattice& lattice,
                                   const KeywordBinding& binding,
                                   const NodeFilter& filter) {
  PrunedLattice pl;
  pl.lattice_ = &lattice;
  pl.binding_ = binding;
  pl.stats_.lattice_nodes = lattice.num_nodes();

  // ---- Phase 1: keyword-based pruning. A node survives iff every vertex is
  // the free copy or a copy some keyword is bound to.
  Timer timer;
  pl.surviving_mask_.assign(lattice.num_nodes(), false);
  for (NodeId id = 0; id < lattice.num_nodes(); ++id) {
    const JoinTree& tree = lattice.node(id).tree;
    bool ok = true;
    for (const RelationCopy& v : tree.vertices()) {
      if (v.copy != 0 && !binding.IsBound(v)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      pl.surviving_mask_[id] = true;
      pl.surviving_.push_back(id);
    }
  }
  pl.stats_.surviving_nodes = pl.surviving_.size();
  pl.stats_.prune_millis = timer.ElapsedMillis();

  // ---- Phase 2: find MTNs, retain MTNs + descendants.
  timer.Reset();
  pl.mtn_mask_.assign(lattice.num_nodes(), false);
  for (NodeId id : pl.surviving_) {
    if (!pl.IsTotal(id)) continue;
    // Minimal-total: no child (maximal proper sub-network) is total.
    // Totality is monotone upward, so checking children suffices.
    bool minimal = true;
    for (NodeId c : lattice.node(id).children) {
      if (pl.surviving_mask_[c] && pl.IsTotal(c)) {
        minimal = false;
        break;
      }
    }
    if (minimal) {
      pl.mtn_mask_[id] = true;
      pl.mtns_.push_back(id);
    }
  }
  pl.stats_.num_mtns = pl.mtns_.size();

  // Retained = MTNs + descendants (all descendants of survivors survive).
  pl.retained_mask_.assign(lattice.num_nodes(), false);
  {
    std::vector<NodeId> stack;
    for (NodeId m : pl.mtns_) {
      if (!pl.retained_mask_[m]) {
        pl.retained_mask_[m] = true;
        stack.push_back(m);
      }
    }
    size_t desc_total = 0;
    while (!stack.empty()) {
      NodeId n = stack.back();
      stack.pop_back();
      for (NodeId c : lattice.node(n).children) {
        if (pl.retained_mask_[c]) continue;
        if (filter && !filter(lattice.node(c).tree)) continue;
        pl.retained_mask_[c] = true;
        stack.push_back(c);
      }
    }
    for (NodeId id = 0; id < lattice.num_nodes(); ++id) {
      if (pl.retained_mask_[id]) pl.retained_.push_back(id);
    }
    // Descendant overlap statistics (Fig. 13): N counts multiplicity.
    for (NodeId m : pl.mtns_) {
      desc_total += pl.RetainedDescendants(m).size();
    }
    pl.stats_.mtn_desc_total = desc_total;
    pl.stats_.mtn_desc_unique =
        pl.retained_.size() >= pl.mtns_.size()
            ? pl.retained_.size() - pl.mtns_.size()
            : 0;
  }
  pl.stats_.retained_nodes = pl.retained_.size();

  pl.retained_by_level_.resize(lattice.num_levels() + 1);
  for (NodeId id : pl.retained_) {
    const size_t level = lattice.node(id).level;
    pl.retained_by_level_[level].push_back(id);
    pl.max_retained_level_ = std::max(pl.max_retained_level_, level);
  }
  pl.stats_.mtn_millis = timer.ElapsedMillis();
  return pl;
}

bool PrunedLattice::IsTotal(NodeId id) const {
  const JoinTree& tree = lattice_->node(id).tree;
  const size_t k = binding_.num_keywords();
  size_t covered = 0;
  uint64_t mask = 0;
  for (const RelationCopy& v : tree.vertices()) {
    if (v.copy == 0) continue;
    const std::string* kw = binding_.KeywordFor(v);
    if (kw == nullptr) continue;
    for (size_t i = 0; i < k; ++i) {
      if (binding_.VertexFor(i) == v && !((mask >> i) & 1)) {
        mask |= (1ull << i);
        ++covered;
      }
    }
  }
  return covered == k && k > 0;
}

std::vector<NodeId> PrunedLattice::RetainedChildren(NodeId id) const {
  std::vector<NodeId> out;
  for (NodeId c : lattice_->node(id).children) {
    if (retained_mask_[c]) out.push_back(c);
  }
  return out;
}

std::vector<NodeId> PrunedLattice::RetainedParents(NodeId id) const {
  std::vector<NodeId> out;
  for (NodeId p : lattice_->node(id).parents) {
    if (retained_mask_[p]) out.push_back(p);
  }
  return out;
}

const std::vector<NodeId>& PrunedLattice::RetainedDescendants(
    NodeId id) const {
  auto it = desc_cache_.find(id);
  if (it != desc_cache_.end()) return it->second;
  std::vector<NodeId> out;
  std::unordered_set<NodeId> seen;
  std::vector<NodeId> stack;
  for (NodeId c : lattice_->node(id).children) {
    if (retained_mask_[c] && seen.insert(c).second) stack.push_back(c);
  }
  while (!stack.empty()) {
    NodeId n = stack.back();
    stack.pop_back();
    out.push_back(n);
    for (NodeId c : lattice_->node(n).children) {
      if (retained_mask_[c] && seen.insert(c).second) stack.push_back(c);
    }
  }
  return desc_cache_.emplace(id, std::move(out)).first->second;
}

const std::vector<NodeId>& PrunedLattice::RetainedAncestors(NodeId id) const {
  auto it = asc_cache_.find(id);
  if (it != asc_cache_.end()) return it->second;
  std::vector<NodeId> out;
  std::unordered_set<NodeId> seen;
  std::vector<NodeId> stack;
  for (NodeId p : lattice_->node(id).parents) {
    if (retained_mask_[p] && seen.insert(p).second) stack.push_back(p);
  }
  while (!stack.empty()) {
    NodeId n = stack.back();
    stack.pop_back();
    out.push_back(n);
    for (NodeId p : lattice_->node(n).parents) {
      if (retained_mask_[p] && seen.insert(p).second) stack.push_back(p);
    }
  }
  return asc_cache_.emplace(id, std::move(out)).first->second;
}

const std::vector<NodeId>& PrunedLattice::RetainedAtLevel(
    size_t level) const {
  static const std::vector<NodeId> kEmpty;
  if (level == 0 || level >= retained_by_level_.size()) return kEmpty;
  return retained_by_level_[level];
}

}  // namespace kwsdbg
