// Phase 1 front half (paper Sec. 2.3): map each query keyword to a relation
// via the inverted index and bind it to one of the relation's copies.
// A keyword occurring in several relations yields several *interpretations*,
// each handled separately, exactly as the paper prescribes.
#ifndef KWSDBG_KWS_KEYWORD_BINDING_H_
#define KWSDBG_KWS_KEYWORD_BINDING_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "graph/schema_graph.h"
#include "lattice/join_tree.h"
#include "text/inverted_index.h"

namespace kwsdbg {

/// One keyword bound to one relation copy.
struct KeywordAssignment {
  std::string keyword;
  RelationCopy vertex;  ///< vertex.copy >= 1.
};

/// A complete binding of every query keyword for one interpretation.
class KeywordBinding {
 public:
  explicit KeywordBinding(std::vector<KeywordAssignment> assignments);

  const std::vector<KeywordAssignment>& assignments() const {
    return assignments_;
  }
  size_t num_keywords() const { return assignments_.size(); }

  /// True iff some keyword is bound to exactly this relation copy.
  bool IsBound(RelationCopy v) const;

  /// The keyword bound to `v`, or nullptr (free copy / unbound copy).
  const std::string* KeywordFor(RelationCopy v) const;

  /// The vertex keyword `i` (by assignment order) is bound to.
  RelationCopy VertexFor(size_t i) const { return assignments_[i].vertex; }

  /// "widom->Person[1], trio->Topic[1]" for reports.
  std::string ToString(const SchemaGraph& schema) const;

  /// Canonical signature of this binding, independent of assignment order:
  /// "relation:copy=keyword" entries sorted and ';'-joined. Two bindings with
  /// equal signatures instantiate identical SQL for every lattice node, which
  /// makes the signature a sound verdict-cache key component.
  const std::string& Signature() const { return signature_; }

 private:
  std::vector<KeywordAssignment> assignments_;
  std::string signature_;
  std::unordered_map<std::pair<RelationId, uint16_t>, size_t, PairHash>
      by_vertex_;
};

/// Output of binding a keyword query.
struct BindingResult {
  std::vector<std::string> keywords;          ///< Tokenized, deduplicated.
  std::vector<std::string> missing_keywords;  ///< Not found anywhere: when
                                              ///< non-empty, "and" semantics
                                              ///< makes every CN empty, so no
                                              ///< interpretations are built.
  std::vector<KeywordBinding> interpretations;
  size_t interpretations_skipped = 0;  ///< Dropped by the cap or by running
                                       ///< out of copies for one relation.
  double bind_millis = 0;              ///< Index-lookup + enumeration time.
};

/// Enumerates interpretations: the cartesian product, over keywords, of the
/// text relations containing each keyword; keywords mapped to the same
/// relation receive successive copies R_1, R_2, ....
class KeywordBinder {
 public:
  /// `num_keyword_copies` must match the lattice's configuration so that
  /// bound copies actually exist as lattice vertices.
  KeywordBinder(const SchemaGraph* schema, const InvertedIndex* index,
                size_t num_keyword_copies, size_t max_interpretations = 256);

  BindingResult Bind(const std::string& keyword_query) const;

 private:
  const SchemaGraph* schema_;
  const InvertedIndex* index_;
  size_t num_keyword_copies_;
  size_t max_interpretations_;
};

}  // namespace kwsdbg

#endif  // KWSDBG_KWS_KEYWORD_BINDING_H_
