// Online candidate-network generation — the traditional KWS-S runtime path
// (DISCOVER-style breadth-first expansion from keyword tuple sets) that the
// paper's offline lattice deliberately bypasses (Sec. 2.2: the lattice
// "bypasses the costly candidate network generation phase, which is a part
// of traditional KWS-S systems"). Implemented both as the baseline for the
// corresponding ablation benchmark and as an independent oracle: its output
// must coincide exactly with the lattice pipeline's MTNs, which the test
// suite asserts.
#ifndef KWSDBG_KWS_ONLINE_CN_GENERATOR_H_
#define KWSDBG_KWS_ONLINE_CN_GENERATOR_H_

#include <vector>

#include "common/status.h"
#include "kws/keyword_binding.h"
#include "lattice/join_tree.h"

namespace kwsdbg {

/// Result of one online generation run.
struct OnlineCnResult {
  /// The candidate networks: join trees that are total (cover every
  /// keyword), minimal (no proper sub-network is total), and whose leaves
  /// are all bound to keywords.
  std::vector<JoinTree> candidate_networks;
  size_t trees_explored = 0;   ///< Distinct join trees materialized.
  size_t trees_generated = 0;  ///< Extension attempts incl. duplicates.
  double gen_millis = 0;
};

/// Enumerates all candidate networks with up to `max_joins` joins for one
/// keyword interpretation, entirely at runtime: breadth-first expansion over
/// the schema graph restricted to the free copies and the interpretation's
/// bound copies, deduplicated by canonical labeling.
StatusOr<OnlineCnResult> GenerateCandidateNetworks(
    const SchemaGraph& schema, const KeywordBinding& binding,
    size_t max_joins);

}  // namespace kwsdbg

#endif  // KWSDBG_KWS_ONLINE_CN_GENERATOR_H_
