#include "debugger/interactive_session.h"

#include <unordered_set>

namespace kwsdbg {

InteractiveSession::InteractiveSession(const PrunedLattice* pl,
                                       QueryEvaluator* evaluator,
                                       double alive_probability)
    : pl_(pl),
      evaluator_(evaluator),
      pa_(alive_probability),
      status_(pl->lattice().num_nodes()) {}

double InteractiveSession::Gain(NodeId id) const {
  // W(n) = #MTN search spaces the node belongs to; approximated here by
  // counting over unknown ancestors/descendants directly (sessions are
  // interactive — a few dozen suggestions — so the O(closure) recompute per
  // candidate is fine and keeps this independent of the batch SBH state).
  auto weight = [&](NodeId n) -> double {
    if (status_.IsKnown(n)) return 0.0;
    size_t w = pl_->IsMtn(n) ? 1 : 0;
    for (NodeId a : pl_->RetainedAncestors(n)) {
      if (pl_->IsMtn(a)) ++w;
    }
    return static_cast<double>(w);
  };
  double gain = weight(id);
  for (NodeId a : pl_->RetainedAncestors(id)) gain += (1.0 - pa_) * weight(a);
  for (NodeId d : pl_->RetainedDescendants(id)) gain += pa_ * weight(d);
  return gain;
}

ProbeSuggestion InteractiveSession::SuggestProbe() const {
  ProbeSuggestion best;
  best.expected_gain = -1;
  for (NodeId n : pl_->retained()) {
    if (status_.IsKnown(n)) continue;
    double gain = Gain(n);
    if (gain > best.expected_gain) {
      best.expected_gain = gain;
      best.node = n;
    }
  }
  if (best.node != kInvalidNode) {
    best.network =
        pl_->lattice().node(best.node).tree.ToString(pl_->lattice().schema());
  }
  return best;
}

void InteractiveSession::Propagate(NodeId id, bool alive) {
  if (alive) {
    status_.MarkAliveWithDescendants(id, *pl_);
  } else {
    status_.MarkDeadWithAncestors(id, *pl_);
  }
}

StatusOr<bool> InteractiveSession::Probe(NodeId id) {
  if (!pl_->IsRetained(id)) {
    return Status::InvalidArgument("node " + std::to_string(id) +
                                   " is not in this query's search space");
  }
  if (status_.IsKnown(id)) return status_.IsAlive(id);
  KWSDBG_ASSIGN_OR_RETURN(bool alive, evaluator_->IsAlive(id));
  Propagate(id, alive);
  return alive;
}

Status InteractiveSession::AssertAlive(NodeId id) {
  if (!pl_->IsRetained(id)) {
    return Status::InvalidArgument("node not in the search space");
  }
  if (status_.IsDead(id)) {
    return Status::FailedPrecondition(
        "node already classified dead; the assertion contradicts it");
  }
  Propagate(id, true);
  return Status::OK();
}

Status InteractiveSession::AssertDead(NodeId id) {
  if (!pl_->IsRetained(id)) {
    return Status::InvalidArgument("node not in the search space");
  }
  if (status_.IsAlive(id)) {
    return Status::FailedPrecondition(
        "node already classified alive; the assertion contradicts it");
  }
  Propagate(id, false);
  return Status::OK();
}

size_t InteractiveSession::UnknownCount() const {
  size_t n = 0;
  for (NodeId id : pl_->retained()) {
    if (!status_.IsKnown(id)) ++n;
  }
  return n;
}

bool InteractiveSession::MtnResolved(NodeId mtn) const {
  if (!status_.IsKnown(mtn)) return false;
  if (status_.IsAlive(mtn)) return true;  // an answer query; no MPANs needed
  for (NodeId d : pl_->RetainedDescendants(mtn)) {
    if (!status_.IsKnown(d)) return false;
  }
  return true;
}

std::vector<NodeId> InteractiveSession::KnownMpans(NodeId mtn) const {
  std::vector<NodeId> out;
  const std::vector<NodeId>& desc = pl_->RetainedDescendants(mtn);
  std::unordered_set<NodeId> in_sub(desc.begin(), desc.end());
  in_sub.insert(mtn);
  for (NodeId n : desc) {
    if (!status_.IsAlive(n)) continue;
    bool maximal = true;
    for (NodeId p : pl_->lattice().node(n).parents) {
      if (in_sub.count(p) && !status_.IsDead(p)) {
        maximal = false;  // an in-sub parent is alive or still unknown
        break;
      }
    }
    if (maximal) out.push_back(n);
  }
  return out;
}

std::vector<NodeId> InteractiveSession::KnownCulprits(NodeId mtn) const {
  std::vector<NodeId> out;
  std::vector<NodeId> sub = pl_->RetainedDescendants(mtn);
  sub.push_back(mtn);
  for (NodeId n : sub) {
    if (!status_.IsDead(n)) continue;
    bool minimal = true;
    for (NodeId c : pl_->RetainedChildren(n)) {
      if (!status_.IsAlive(c)) {
        minimal = false;
        break;
      }
    }
    if (minimal) out.push_back(n);
  }
  return out;
}

StatusOr<size_t> InteractiveSession::FinishAutomatically() {
  const size_t sql_before = evaluator_->sql_executed();
  while (true) {
    ProbeSuggestion next = SuggestProbe();
    if (next.node == kInvalidNode) break;
    KWSDBG_CHECK_OK_OR_RETURN(Probe(next.node));
  }
  return evaluator_->sql_executed() - sql_before;
}

}  // namespace kwsdbg
