// The debugger's output: O(K) = A(K) ∪ N(K) ∪ M(K) (paper Sec. 2.1) plus
// the phase statistics the evaluation section reports.
#ifndef KWSDBG_DEBUGGER_DEBUG_REPORT_H_
#define KWSDBG_DEBUGGER_DEBUG_REPORT_H_

#include <string>
#include <vector>

#include "kws/pruned_lattice.h"
#include "sql/executor.h"
#include "traversal/strategy.h"

namespace kwsdbg {

/// One query (a lattice node) rendered for humans: the join network and its
/// instantiated SQL.
struct NodeReport {
  NodeId node = kInvalidNode;
  size_t level = 0;
  std::string network;  ///< JoinTree::ToString rendering.
  std::string sql;      ///< Instantiated SELECT statement.
};

/// An answer query (alive MTN), optionally with sample result tuples.
struct AnswerReport {
  NodeReport query;
  ResultSet sample;  ///< Populated when DebuggerOptions::sample_rows > 0.
};

/// A non-answer query (dead MTN) with both sides of its frontier: the
/// maximal alive sub-queries (MPANs) and the minimal dead ones (culprits —
/// the smallest joins that already return nothing).
struct NonAnswerReport {
  NodeReport query;
  std::vector<NodeReport> mpans;
  std::vector<NodeReport> culprits;
};

/// Everything computed for one keyword interpretation.
struct InterpretationReport {
  std::string binding;  ///< e.g. "widom->Person[1], trio->Topic[1]".
  PruneStats prune_stats;
  TraversalStats traversal_stats;
  std::vector<AnswerReport> answers;
  std::vector<NonAnswerReport> non_answers;
  /// The deadline fired mid-traversal: only the MTNs classified so far are
  /// listed, and dead MTNs whose sub-lattice was not fully explored carry no
  /// MPANs/culprits (a partial frontier could misreport maximality).
  bool truncated = false;
};

/// The full debugger output for one keyword query.
struct DebugReport {
  std::string keyword_query;
  std::vector<std::string> keywords;
  std::vector<std::string> missing_keywords;
  double bind_millis = 0;
  /// End-to-end wall-clock for the Debug() call (bind + all traversals +
  /// sampling), as opposed to the per-interpretation traversal stats.
  double debug_millis = 0;
  /// Some interpretation hit the per-query deadline; everything present is
  /// still a ground-truth verdict, but the report is incomplete.
  bool truncated = false;
  size_t interpretations_skipped = 0;
  std::vector<InterpretationReport> interpretations;

  size_t TotalAnswers() const;
  size_t TotalNonAnswers() const;
  size_t TotalMpans() const;
  TraversalStats AggregateTraversalStats() const;

  /// Canonical one-line fingerprint of the classification: every
  /// interpretation's answers / non-answers / MPANs / culprits by network
  /// string, in sorted order. Two reports describe the same debugging
  /// outcome iff their signatures are byte-identical — the concurrency
  /// benches gate service-vs-serial parity on this.
  std::string ClassificationSignature() const;

  /// Multi-line human-readable rendering (what the examples print).
  std::string ToString(size_t max_items_per_section = 10) const;
};

}  // namespace kwsdbg

#endif  // KWSDBG_DEBUGGER_DEBUG_REPORT_H_
