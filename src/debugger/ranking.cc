#include "debugger/ranking.h"

#include <algorithm>

namespace kwsdbg {

double AnswerScore(const AnswerReport& answer) {
  return answer.query.level == 0
             ? 0.0
             : 1.0 / static_cast<double>(answer.query.level);
}

void RankAnswers(std::vector<AnswerReport>* answers) {
  std::stable_sort(answers->begin(), answers->end(),
                   [](const AnswerReport& a, const AnswerReport& b) {
                     if (a.query.level != b.query.level) {
                       return a.query.level < b.query.level;
                     }
                     return a.query.network < b.query.network;
                   });
}

}  // namespace kwsdbg
