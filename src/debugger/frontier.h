// Visual rendering of a dead MTN's answer/non-answer frontier. The outcome
// already carries both sides of the frontier: the MPANs (maximal alive
// sub-networks, what the paper reports) and the culprits (minimal dead
// sub-networks — the duals, in the spirit of Chapman & Jagadish's frontier
// picky manipulations the paper cites). Because aliveness is closed
// downward from MPANs and deadness upward from culprits, the full
// classification of the sub-lattice is reconstructible from those two sets
// alone, which is what the renderer does.
#ifndef KWSDBG_DEBUGGER_FRONTIER_H_
#define KWSDBG_DEBUGGER_FRONTIER_H_

#include <string>

#include "kws/pruned_lattice.h"
#include "traversal/strategy.h"

namespace kwsdbg {

/// Renders dead MTN `outcome.mtn`'s sub-lattice as GraphViz dot: alive
/// nodes green, dead nodes red, MPANs double-circled, culprits
/// double-octagons, sub-network edges pointing upward. Errors if the
/// outcome is alive (there is no frontier to draw).
StatusOr<std::string> FrontierToDot(const PrunedLattice& pl,
                                    const MtnOutcome& outcome);

}  // namespace kwsdbg

#endif  // KWSDBG_DEBUGGER_FRONTIER_H_
