#include "debugger/report_json.h"

#include <cstdio>
#include <sstream>

namespace kwsdbg {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

void AppendString(std::ostringstream* out, const std::string& s) {
  *out << '"' << JsonEscape(s) << '"';
}

void AppendStringArray(std::ostringstream* out,
                       const std::vector<std::string>& items) {
  *out << '[';
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) *out << ',';
    AppendString(out, items[i]);
  }
  *out << ']';
}

void AppendNodeReport(std::ostringstream* out, const NodeReport& node) {
  *out << "{\"network\":";
  AppendString(out, node.network);
  *out << ",\"sql\":";
  AppendString(out, node.sql);
  *out << ",\"level\":" << node.level << '}';
}

}  // namespace

std::string DebugReportToJson(const DebugReport& report) {
  std::ostringstream out;
  out << "{\"query\":";
  AppendString(&out, report.keyword_query);
  out << ",\"keywords\":";
  AppendStringArray(&out, report.keywords);
  out << ",\"missing_keywords\":";
  AppendStringArray(&out, report.missing_keywords);
  out << ",\"interpretations_skipped\":" << report.interpretations_skipped;
  out << ",\"truncated\":" << (report.truncated ? "true" : "false");
  out << ",\"bind_millis\":" << report.bind_millis;
  out << ",\"debug_millis\":" << report.debug_millis;
  out << ",\"interpretations\":[";
  for (size_t i = 0; i < report.interpretations.size(); ++i) {
    const InterpretationReport& interp = report.interpretations[i];
    if (i > 0) out << ',';
    out << "{\"binding\":";
    AppendString(&out, interp.binding);
    out << ",\"truncated\":" << (interp.truncated ? "true" : "false");
    out << ",\"stats\":{\"lattice_nodes\":" << interp.prune_stats.lattice_nodes
        << ",\"surviving_nodes\":" << interp.prune_stats.surviving_nodes
        << ",\"mtns\":" << interp.prune_stats.num_mtns
        << ",\"sql_queries\":" << interp.traversal_stats.sql_queries
        << ",\"sql_millis\":" << interp.traversal_stats.sql_millis
        << ",\"total_millis\":" << interp.traversal_stats.total_millis
        << ",\"cache_hits\":" << interp.traversal_stats.cache_hits
        << ",\"cache_misses\":" << interp.traversal_stats.cache_misses
        << ",\"cache_evictions\":" << interp.traversal_stats.cache_evictions
        << ",\"parallel_rounds\":" << interp.traversal_stats.parallel_rounds
        << ",\"parallel_nodes\":" << interp.traversal_stats.parallel_nodes
        << ",\"max_batch\":" << interp.traversal_stats.max_batch
        << ",\"posting_hits\":" << interp.traversal_stats.posting_hits
        << ",\"scan_fallbacks\":" << interp.traversal_stats.scan_fallbacks
        << ",\"semijoin_eliminations\":"
        << interp.traversal_stats.semijoin_eliminations
        << ",\"rows_probed\":" << interp.traversal_stats.rows_probed
        << ",\"rows_filtered\":" << interp.traversal_stats.rows_filtered
        << ",\"index_builds\":" << interp.traversal_stats.index_builds
        << ",\"flat_probes\":" << interp.traversal_stats.flat_probes
        << ",\"prefetch_batches\":"
        << interp.traversal_stats.prefetch_batches
        << ",\"index_build_millis\":"
        << interp.traversal_stats.index_build_millis
        << ",\"arena_bytes\":" << interp.traversal_stats.arena_bytes
        << ",\"index_fallbacks\":" << interp.traversal_stats.index_fallbacks
        << ",\"semijoin_fallbacks\":"
        << interp.traversal_stats.semijoin_fallbacks
        << ",\"page_hits\":" << interp.traversal_stats.page_hits
        << ",\"page_reads\":" << interp.traversal_stats.page_reads
        << ",\"page_evictions\":" << interp.traversal_stats.page_evictions
        << ",\"posting_reads\":" << interp.traversal_stats.posting_reads
        << ",\"planner_decisions\":"
        << interp.traversal_stats.planner_decisions
        << ",\"planner_explored\":" << interp.traversal_stats.planner_explored
        << ",\"pa_observations\":" << interp.traversal_stats.pa_observations
        << ",\"pa_sample_sql\":" << interp.traversal_stats.pa_sample_sql
        << ",\"planned_strategy\":";
    AppendString(&out, interp.traversal_stats.planned_strategy);
    out << ",\"pa_buckets\":[";
    for (size_t b = 0; b < interp.traversal_stats.pa_buckets.size(); ++b) {
      const PaBucketSnapshot& snap = interp.traversal_stats.pa_buckets[b];
      if (b > 0) out << ',';
      out << "{\"level\":" << snap.level
          << ",\"sel_bucket\":" << snap.sel_bucket
          << ",\"alive\":" << snap.alive << ",\"total\":" << snap.total
          << ",\"pa\":" << snap.pa << '}';
    }
    out << "]}";
    out << ",\"answers\":[";
    for (size_t a = 0; a < interp.answers.size(); ++a) {
      if (a > 0) out << ',';
      AppendNodeReport(&out, interp.answers[a].query);
    }
    out << "],\"non_answers\":[";
    for (size_t n = 0; n < interp.non_answers.size(); ++n) {
      const NonAnswerReport& na = interp.non_answers[n];
      if (n > 0) out << ',';
      out << "{\"network\":";
      AppendString(&out, na.query.network);
      out << ",\"sql\":";
      AppendString(&out, na.query.sql);
      out << ",\"level\":" << na.query.level;
      out << ",\"mpans\":[";
      for (size_t m = 0; m < na.mpans.size(); ++m) {
        if (m > 0) out << ',';
        AppendNodeReport(&out, na.mpans[m]);
      }
      out << "],\"culprits\":[";
      for (size_t m = 0; m < na.culprits.size(); ++m) {
        if (m > 0) out << ',';
        AppendNodeReport(&out, na.culprits[m]);
      }
      out << "]}";
    }
    out << "]}";
  }
  out << "]}";
  return out.str();
}

}  // namespace kwsdbg
