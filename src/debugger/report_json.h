// Machine-readable (JSON) rendering of DebugReport, so the debugger can sit
// behind a dashboard or CI check instead of a terminal.
#ifndef KWSDBG_DEBUGGER_REPORT_JSON_H_
#define KWSDBG_DEBUGGER_REPORT_JSON_H_

#include <string>

#include "debugger/debug_report.h"

namespace kwsdbg {

/// Serializes the report as a single JSON object:
/// {
///   "query": "...", "keywords": [...], "missing_keywords": [...],
///   "interpretations": [{
///     "binding": "...",
///     "stats": {"sql_queries": N, "sql_millis": X, ...},
///     "answers": [{"network": "...", "sql": "...", "level": N}],
///     "non_answers": [{"network": "...", "sql": "...", "level": N,
///                      "mpans": [{"network": "...", "sql": "..."}]}]
///   }]
/// }
/// Strings are escaped per RFC 8259; the output has no trailing newline.
std::string DebugReportToJson(const DebugReport& report);

/// Escapes one string for embedding in JSON (exposed for tests).
std::string JsonEscape(const std::string& s);

}  // namespace kwsdbg

#endif  // KWSDBG_DEBUGGER_REPORT_JSON_H_
