// Presentation-order ranking for answer queries, in the spirit of the
// DISCOVER/IR-style systems the paper discusses (Sec. 4): smaller candidate
// networks first (fewer joins = a tighter connection between the keywords),
// ties broken lexicographically for determinism. Debugging output itself is
// deliberately *not* ranked or truncated — the paper argues all non-answers
// must be reported — so ranking applies to answers only.
#ifndef KWSDBG_DEBUGGER_RANKING_H_
#define KWSDBG_DEBUGGER_RANKING_H_

#include <vector>

#include "debugger/debug_report.h"

namespace kwsdbg {

/// Sorts answers in place: ascending join count, then network text.
void RankAnswers(std::vector<AnswerReport>* answers);

/// Relevance score of one answer (higher = better): 1 / level, the standard
/// size-based CN score. Exposed for tests and custom rankers.
double AnswerScore(const AnswerReport& answer);

}  // namespace kwsdbg

#endif  // KWSDBG_DEBUGGER_RANKING_H_
