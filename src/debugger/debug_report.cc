#include "debugger/debug_report.h"

#include <algorithm>
#include <sstream>

namespace kwsdbg {

size_t DebugReport::TotalAnswers() const {
  size_t n = 0;
  for (const auto& interp : interpretations) n += interp.answers.size();
  return n;
}

size_t DebugReport::TotalNonAnswers() const {
  size_t n = 0;
  for (const auto& interp : interpretations) n += interp.non_answers.size();
  return n;
}

size_t DebugReport::TotalMpans() const {
  size_t n = 0;
  for (const auto& interp : interpretations) {
    for (const auto& na : interp.non_answers) n += na.mpans.size();
  }
  return n;
}

TraversalStats DebugReport::AggregateTraversalStats() const {
  TraversalStats stats;
  for (const auto& interp : interpretations) {
    stats.sql_queries += interp.traversal_stats.sql_queries;
    stats.sql_millis += interp.traversal_stats.sql_millis;
    stats.total_millis += interp.traversal_stats.total_millis;
    stats.cache_hits += interp.traversal_stats.cache_hits;
    stats.cache_misses += interp.traversal_stats.cache_misses;
    stats.cache_evictions += interp.traversal_stats.cache_evictions;
    stats.parallel_rounds += interp.traversal_stats.parallel_rounds;
    stats.parallel_nodes += interp.traversal_stats.parallel_nodes;
    stats.max_batch = std::max(stats.max_batch,
                               interp.traversal_stats.max_batch);
    stats.posting_hits += interp.traversal_stats.posting_hits;
    stats.scan_fallbacks += interp.traversal_stats.scan_fallbacks;
    stats.semijoin_eliminations +=
        interp.traversal_stats.semijoin_eliminations;
    stats.rows_probed += interp.traversal_stats.rows_probed;
    stats.rows_filtered += interp.traversal_stats.rows_filtered;
    stats.index_builds += interp.traversal_stats.index_builds;
    stats.flat_probes += interp.traversal_stats.flat_probes;
    stats.prefetch_batches += interp.traversal_stats.prefetch_batches;
    stats.index_build_millis += interp.traversal_stats.index_build_millis;
    stats.arena_bytes += interp.traversal_stats.arena_bytes;
    stats.index_fallbacks += interp.traversal_stats.index_fallbacks;
    stats.semijoin_fallbacks += interp.traversal_stats.semijoin_fallbacks;
    stats.page_hits += interp.traversal_stats.page_hits;
    stats.page_reads += interp.traversal_stats.page_reads;
    stats.page_evictions += interp.traversal_stats.page_evictions;
    stats.posting_reads += interp.traversal_stats.posting_reads;
    stats.planner_decisions += interp.traversal_stats.planner_decisions;
    stats.planner_explored += interp.traversal_stats.planner_explored;
    stats.pa_observations += interp.traversal_stats.pa_observations;
    stats.pa_sample_sql += interp.traversal_stats.pa_sample_sql;
    // Arm labels: one arm dominates a single-arm report; mixed picks are
    // summarized as "mixed". The model slice kept is the last (warmest) one.
    const std::string& arm = interp.traversal_stats.planned_strategy;
    if (!arm.empty()) {
      if (stats.planned_strategy.empty()) {
        stats.planned_strategy = arm;
      } else if (stats.planned_strategy != arm) {
        stats.planned_strategy = "mixed";
      }
    }
    if (!interp.traversal_stats.pa_buckets.empty()) {
      stats.pa_buckets = interp.traversal_stats.pa_buckets;
    }
  }
  return stats;
}

std::string DebugReport::ClassificationSignature() const {
  // Sorted within each section so the signature is insensitive to answer
  // ranking and to MPAN/culprit emission order, but still distinguishes
  // which interpretation a verdict belongs to.
  std::ostringstream out;
  for (const InterpretationReport& interp : interpretations) {
    out << "I{" << interp.binding << "}";
    std::vector<std::string> answers, non_answers;
    for (const AnswerReport& ans : interp.answers) {
      answers.push_back(ans.query.network);
    }
    for (const NonAnswerReport& na : interp.non_answers) {
      std::string entry = na.query.network;
      std::vector<std::string> subs;
      for (const NodeReport& mpan : na.mpans) subs.push_back("+" + mpan.network);
      for (const NodeReport& c : na.culprits) subs.push_back("-" + c.network);
      std::sort(subs.begin(), subs.end());
      for (const std::string& s : subs) entry += "|" + s;
      non_answers.push_back(std::move(entry));
    }
    std::sort(answers.begin(), answers.end());
    std::sort(non_answers.begin(), non_answers.end());
    out << "A[";
    for (const std::string& a : answers) out << a << ";";
    out << "]N[";
    for (const std::string& n : non_answers) out << n << ";";
    out << "]";
    if (interp.truncated) out << "T";
  }
  return out.str();
}

std::string DebugReport::ToString(size_t max_items_per_section) const {
  std::ostringstream out;
  out << "Keyword query: \"" << keyword_query << "\"\n";
  if (!missing_keywords.empty()) {
    out << "  Keywords not found anywhere in the database:";
    for (const auto& k : missing_keywords) out << " " << k;
    out << "\n  (\"and\" semantics: no candidate network can return results;"
           " exploration stopped)\n";
    return out.str();
  }
  out << "  Interpretations: " << interpretations.size();
  if (interpretations_skipped > 0) {
    out << " (+" << interpretations_skipped << " skipped)";
  }
  if (truncated) out << " [TRUNCATED: deadline exceeded]";
  out << ", answers: " << TotalAnswers()
      << ", non-answers: " << TotalNonAnswers()
      << ", MPANs: " << TotalMpans() << "\n";
  for (size_t i = 0; i < interpretations.size(); ++i) {
    const InterpretationReport& rep = interpretations[i];
    out << "\n== Interpretation " << (i + 1) << ": " << rep.binding;
    if (rep.truncated) out << " (truncated)";
    out << "\n";
    out << "   lattice " << rep.prune_stats.lattice_nodes << " -> "
        << rep.prune_stats.surviving_nodes << " nodes after Phase 1, "
        << rep.prune_stats.num_mtns << " MTN(s), "
        << rep.traversal_stats.sql_queries << " SQL queries";
    if (rep.traversal_stats.cache_hits + rep.traversal_stats.cache_misses >
        0) {
      out << " (verdict cache: " << rep.traversal_stats.cache_hits
          << " hit(s), " << rep.traversal_stats.cache_misses << " miss(es))";
    }
    out << "\n";
    const TraversalStats& ts = rep.traversal_stats;
    if (ts.posting_hits + ts.scan_fallbacks + ts.semijoin_eliminations +
            ts.rows_probed + ts.rows_filtered >
        0) {
      out << "   executor: " << ts.posting_hits << " posting-list match set(s), "
          << ts.scan_fallbacks << " scan fallback(s), "
          << ts.semijoin_eliminations << " semijoin elimination(s), "
          << ts.rows_probed << " row(s) probed, " << ts.rows_filtered
          << " filtered, " << ts.index_builds << " index build(s)\n";
      if (ts.flat_probes > 0) {
        out << "   probe engine: " << ts.flat_probes << " flat probe(s), "
            << ts.prefetch_batches << " prefetch batch(es), "
            << ts.arena_bytes << " arena byte(s)\n";
      }
      if (ts.page_hits + ts.page_reads + ts.posting_reads > 0) {
        out << "   storage: " << ts.page_reads << " page read(s), "
            << ts.page_hits << " page hit(s), " << ts.page_evictions
            << " eviction(s), " << ts.posting_reads
            << " posting-list read(s)\n";
      }
      if (ts.index_fallbacks + ts.semijoin_fallbacks > 0) {
        out << "   degraded: " << ts.index_fallbacks
            << " text-index fallback(s), " << ts.semijoin_fallbacks
            << " semijoin fallback(s)\n";
      }
    }
    size_t shown = 0;
    for (const AnswerReport& ans : rep.answers) {
      if (shown++ >= max_items_per_section) {
        out << "   ... (" << rep.answers.size() - max_items_per_section
            << " more answers)\n";
        break;
      }
      out << "  [ANSWER] " << ans.query.network << "\n";
      out << "           " << ans.query.sql << "\n";
      if (!ans.sample.rows.empty()) {
        out << "           e.g. " << ans.sample.rows.size()
            << " sample row(s)\n";
      }
    }
    shown = 0;
    for (const NonAnswerReport& na : rep.non_answers) {
      if (shown++ >= max_items_per_section) {
        out << "   ... (" << rep.non_answers.size() - max_items_per_section
            << " more non-answers)\n";
        break;
      }
      out << "  [NON-ANSWER] " << na.query.network << "\n";
      out << "               " << na.query.sql << "\n";
      for (const NodeReport& mpan : na.mpans) {
        out << "    maximal alive sub-query: " << mpan.network << "\n";
      }
      for (const NodeReport& culprit : na.culprits) {
        out << "    smallest failing sub-query (culprit): "
            << culprit.network << "\n";
      }
    }
  }
  return out.str();
}

}  // namespace kwsdbg
