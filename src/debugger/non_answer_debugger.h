// The end-to-end system of Fig. 3: offline lattice in, keyword query in,
// answers + non-answers + maximal alive sub-queries out.
#ifndef KWSDBG_DEBUGGER_NON_ANSWER_DEBUGGER_H_
#define KWSDBG_DEBUGGER_NON_ANSWER_DEBUGGER_H_

#include <memory>
#include <string>

#include "debugger/debug_report.h"
#include "graph/schema_graph.h"
#include "kws/keyword_binding.h"
#include "kws/pruned_lattice.h"
#include "lattice/lattice.h"
#include "sql/executor.h"
#include "text/inverted_index.h"
#include "traversal/strategy.h"
#include "traversal/verdict_cache.h"

namespace kwsdbg {

/// Debugger configuration.
struct DebuggerOptions {
  TraversalKind strategy = TraversalKind::kScoreBased;
  SbhOptions sbh;
  EvalOptions eval;
  /// Session verdict cache capacity (entries); 0 disables caching. The cache
  /// persists across Debug() calls, so repeated keyword queries skip the SQL
  /// for every recurring (sub-)network until the database epoch changes.
  size_t verdict_cache_capacity = VerdictCache::kDefaultCapacity;
  /// SQL-session knobs: posting-list candidate sourcing and semijoin
  /// pre-reduction (both on by default; benches flip them off to measure
  /// the executor-v1 probe path).
  ExecutorOptions executor;
  /// Batched parallel frontier evaluation (default: serial).
  ParallelOptions parallel;
  /// Sample result tuples fetched per answer query (0 = skip sampling;
  /// sampling issues extra SQL that is *not* counted in traversal stats).
  size_t sample_rows = 0;
  size_t max_interpretations = 256;
  /// Optional user constraint pushed into the Phase 3 search space
  /// (paper Sec. 5); see kws/pruned_lattice.h.
  NodeFilter node_filter;
  /// Sort each interpretation's answers smallest-join-network first
  /// (DISCOVER-style size ranking). Non-answers are never ranked or
  /// truncated — debugging needs all of them (paper Sec. 1).
  bool rank_answers = true;
};

/// Facade wiring Phases 1-3 together over a prebuilt lattice and index.
/// All referenced objects must outlive the debugger.
class NonAnswerDebugger {
 public:
  NonAnswerDebugger(const Database* db, const Lattice* lattice,
                    const InvertedIndex* index, DebuggerOptions options = {});

  /// Runs the full pipeline for `keyword_query`, one interpretation at a
  /// time, and assembles the report.
  StatusOr<DebugReport> Debug(const std::string& keyword_query);

  /// The SQL session used for aliveness checks (exposed so benches can reset
  /// or inspect caches between runs).
  Executor* executor() { return executor_.get(); }

  /// The session verdict cache, or nullptr when disabled. Exposed so benches
  /// and tests can inspect hit rates or Clear() between passes.
  VerdictCache* verdict_cache() { return verdict_cache_.get(); }

  const DebuggerOptions& options() const { return options_; }

 private:
  const Database* db_;
  const Lattice* lattice_;
  const InvertedIndex* index_;
  DebuggerOptions options_;
  std::unique_ptr<Executor> executor_;
  std::unique_ptr<VerdictCache> verdict_cache_;
  KeywordBinder binder_;
};

}  // namespace kwsdbg

#endif  // KWSDBG_DEBUGGER_NON_ANSWER_DEBUGGER_H_
