// The end-to-end system of Fig. 3: offline lattice in, keyword query in,
// answers + non-answers + maximal alive sub-queries out.
#ifndef KWSDBG_DEBUGGER_NON_ANSWER_DEBUGGER_H_
#define KWSDBG_DEBUGGER_NON_ANSWER_DEBUGGER_H_

#include <memory>
#include <string>

#include "common/cancellation.h"
#include "debugger/debug_report.h"
#include "graph/schema_graph.h"
#include "kws/keyword_binding.h"
#include "kws/pruned_lattice.h"
#include "lattice/lattice.h"
#include "sql/executor.h"
#include "text/inverted_index.h"
#include "traversal/strategy.h"
#include "traversal/strategy_planner.h"
#include "traversal/verdict_cache.h"

namespace kwsdbg {

/// Debugger configuration.
struct DebuggerOptions {
  TraversalKind strategy = TraversalKind::kScoreBased;
  SbhOptions sbh;
  EvalOptions eval;
  /// Session verdict cache capacity (entries); 0 disables caching. The cache
  /// persists across Debug() calls, so repeated keyword queries skip the SQL
  /// for every recurring (sub-)network until the database epoch changes.
  size_t verdict_cache_capacity = VerdictCache::kDefaultCapacity;
  /// Process-wide shared verdict tier. When set, the debugger consults this
  /// cache (thread-safe, shared with other sessions — the DebugService
  /// plugs every worker into one) instead of owning a session cache;
  /// `verdict_cache_capacity` is then ignored. Must outlive the debugger.
  VerdictCache* shared_verdict_cache = nullptr;
  /// Per-query wall-clock budget in milliseconds (0 = unbounded). When the
  /// budget fires mid-query, Debug() returns a partial report with
  /// `truncated` set — classified verdicts only, never fabricated ones.
  double deadline_millis = 0;
  /// SQL-session knobs: posting-list candidate sourcing and semijoin
  /// pre-reduction (both on by default; benches flip them off to measure
  /// the executor-v1 probe path).
  ExecutorOptions executor;
  /// Batched parallel frontier evaluation (default: serial).
  ParallelOptions parallel;
  /// Sample result tuples fetched per answer query (0 = skip sampling;
  /// sampling issues extra SQL that is *not* counted in traversal stats).
  size_t sample_rows = 0;
  size_t max_interpretations = 256;
  /// Optional user constraint pushed into the Phase 3 search space
  /// (paper Sec. 5); see kws/pruned_lattice.h.
  NodeFilter node_filter;
  /// Sort each interpretation's answers smallest-join-network first
  /// (DISCOVER-style size ranking). Non-answers are never ranked or
  /// truncated — debugging needs all of them (paper Sec. 1).
  bool rank_answers = true;
  /// Adaptive traversal (ROADMAP item 2): a StrategyPlanner picks the arm
  /// per interpretation from pre-traversal features and SBH reads bucketed
  /// p_a from an online-learned PaModel fed by this debugger's verdicts.
  /// `strategy` is ignored; `sbh`/`parallel` parameterize the planner's
  /// arms. With everything cold this degrades to SBH @ 0.5 — adaptivity
  /// only reorders evaluations, verdicts stay ground truth either way.
  bool adaptive = false;
  /// Shared adaptive tier (model + planner). When set, the debugger feeds
  /// and consults this state (thread-safe — the DebugService plugs every
  /// worker of a shard into one, like the shared verdict cache) instead of
  /// owning session state; `adaptive_options` is then ignored. Must outlive
  /// the debugger.
  AdaptiveState* shared_adaptive = nullptr;
  /// Knobs for the owned session state (exploration eps/seed, model prior).
  AdaptiveOptions adaptive_options;
};

/// Facade wiring Phases 1-3 together over a prebuilt lattice and index.
/// All referenced objects must outlive the debugger.
class NonAnswerDebugger {
 public:
  NonAnswerDebugger(const Database* db, const Lattice* lattice,
                    const InvertedIndex* index, DebuggerOptions options = {});

  /// Runs the full pipeline for `keyword_query`, one interpretation at a
  /// time, and assembles the report. With a deadline configured, a query
  /// that runs out of budget returns a partial report marked `truncated`
  /// (remaining interpretations are dropped, classified ones kept).
  StatusOr<DebugReport> Debug(const std::string& keyword_query);

  /// The SQL session used for aliveness checks (exposed so benches can reset
  /// or inspect caches between runs).
  Executor* executor() { return executor_.get(); }

  /// The verdict cache in effect — the shared tier if one was configured,
  /// else the owned session cache, or nullptr when disabled. Exposed so
  /// benches and tests can inspect hit rates or Clear() between passes.
  VerdictCache* verdict_cache() { return verdict_cache_; }

  /// Swaps the verdict tier consulted by subsequent Debug() calls. The
  /// sharded DebugService points a stealing worker at the stolen query's
  /// home-shard partition so verdicts stay resident where routing sends
  /// them; verdicts are ground truth, so which tier answers them never
  /// changes a classification. Pass nullptr to restore the owned session
  /// cache (if any). Must not be called while Debug() is running.
  void set_verdict_cache(VerdictCache* cache) {
    verdict_cache_ = cache != nullptr ? cache : owned_verdict_cache_.get();
  }

  /// The adaptive tier in effect — the shared state if one was configured,
  /// else the owned session state, or nullptr when adaptive mode is off.
  AdaptiveState* adaptive_state() { return adaptive_; }

  /// Swaps the adaptive tier consulted by subsequent Debug() calls — the
  /// stolen-query twin of set_verdict_cache: a stealing worker points at the
  /// home shard's model so observations land where routing sends the query.
  /// Pass nullptr to restore the owned state (if any). No-op when adaptive
  /// mode is off; must not be called while Debug() is running.
  void set_adaptive_state(AdaptiveState* state) {
    if (!options_.adaptive) return;
    adaptive_ = state != nullptr ? state : owned_adaptive_.get();
  }

  /// Overrides the per-query deadline for subsequent Debug() calls (the
  /// DebugService sets this per request).
  void set_deadline_millis(double millis) { options_.deadline_millis = millis; }

  /// Fires the current query's cancellation token (thread-safe): the next
  /// cooperative checkpoint unwinds and Debug() returns truncated.
  void RequestCancel() { cancel_.RequestCancel(); }

  const DebuggerOptions& options() const { return options_; }

 private:
  const Database* db_;
  const Lattice* lattice_;
  const InvertedIndex* index_;
  DebuggerOptions options_;
  /// Per-query token; owned here so its address can be wired into the
  /// executor and evaluator options at construction. Re-armed per Debug().
  CancellationToken cancel_;
  std::unique_ptr<Executor> executor_;
  std::unique_ptr<VerdictCache> owned_verdict_cache_;
  VerdictCache* verdict_cache_ = nullptr;  ///< Effective tier (shared/owned).
  std::unique_ptr<AdaptiveState> owned_adaptive_;
  AdaptiveState* adaptive_ = nullptr;  ///< Effective adaptive tier, or null.
  KeywordBinder binder_;
};

}  // namespace kwsdbg

#endif  // KWSDBG_DEBUGGER_NON_ANSWER_DEBUGGER_H_
