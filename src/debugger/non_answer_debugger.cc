#include "debugger/non_answer_debugger.h"

#include "common/timer.h"
#include "debugger/ranking.h"
#include "kws/pruned_lattice.h"
#include "kws/query_builder.h"
#include "traversal/evaluator.h"

namespace kwsdbg {

NonAnswerDebugger::NonAnswerDebugger(const Database* db,
                                     const Lattice* lattice,
                                     const InvertedIndex* index,
                                     DebuggerOptions options)
    : db_(db),
      lattice_(lattice),
      index_(index),
      options_(options),
      binder_(&lattice->schema(), index,
              lattice->config().EffectiveKeywordCopies(),
              options.max_interpretations) {
  // The debugger owns the cancellation token so deadlines work without any
  // caller plumbing; wire its address into the SQL session and evaluator.
  options_.executor.cancellation = &cancel_;
  options_.eval.cancellation = &cancel_;
  executor_ = std::make_unique<Executor>(db, options_.executor);
  // The same inverted index that drives Phase 1 binding also serves the
  // executor's keyword candidates (posting lists instead of LIKE scans).
  executor_->RegisterTextIndex(index);
  if (options_.shared_verdict_cache != nullptr) {
    verdict_cache_ = options_.shared_verdict_cache;
  } else if (options_.verdict_cache_capacity > 0) {
    owned_verdict_cache_ =
        std::make_unique<VerdictCache>(options_.verdict_cache_capacity);
    verdict_cache_ = owned_verdict_cache_.get();
  }
  if (options_.adaptive) {
    if (options_.shared_adaptive != nullptr) {
      adaptive_ = options_.shared_adaptive;
    } else {
      owned_adaptive_ =
          std::make_unique<AdaptiveState>(options_.adaptive_options);
      adaptive_ = owned_adaptive_.get();
    }
  }
}

namespace {

StatusOr<NodeReport> MakeNodeReport(const Lattice& lattice, NodeId id,
                                    const KeywordBinding& binding,
                                    const Database& db) {
  NodeReport report;
  report.node = id;
  report.level = lattice.node(id).level;
  report.network = lattice.node(id).tree.ToString(lattice.schema());
  KWSDBG_ASSIGN_OR_RETURN(JoinNetworkQuery query,
                          BuildNodeQuery(lattice, id, binding));
  KWSDBG_ASSIGN_OR_RETURN(report.sql, query.ToSql(db));
  return report;
}

}  // namespace

StatusOr<DebugReport> NonAnswerDebugger::Debug(
    const std::string& keyword_query) {
  Timer debug_timer;
  // Fresh budget per query. Arm() is safe here: no frontier workers hold
  // the token between Debug() calls.
  cancel_.Arm(options_.deadline_millis);

  DebugReport report;
  report.keyword_query = keyword_query;

  BindingResult binding_result = [&] {
    // Phase 1 reads posting lists (and the selectivity profile) but no table
    // rows: the index gate alone fences it against a concurrent index patch.
    IndexReadGuard guard(options_.eval.fences);
    return binder_.Bind(keyword_query);
  }();
  report.keywords = binding_result.keywords;
  report.missing_keywords = binding_result.missing_keywords;
  report.bind_millis = binding_result.bind_millis;
  report.interpretations_skipped = binding_result.interpretations_skipped;
  if (!report.missing_keywords.empty()) {
    report.debug_millis = debug_timer.ElapsedMillis();
    return report;
  }

  std::unique_ptr<TraversalStrategy> static_strategy;
  if (adaptive_ == nullptr) {
    static_strategy =
        MakeStrategy(options_.strategy, options_.sbh, options_.parallel);
  } else {
    // Live mutations bump the database/table epochs; fold them into one
    // data version so the model decays counts learned against old data.
    adaptive_->SyncDataVersion(DataVersionOf(*db_));
  }

  for (const KeywordBinding& binding : binding_result.interpretations) {
    InterpretationReport interp;
    interp.binding = binding.ToString(lattice_->schema());

    PrunedLattice pl =
        PrunedLattice::Build(*lattice_, binding, options_.node_filter);
    interp.prune_stats = pl.stats();

    // Adaptive mode: pick the arm for this interpretation from features
    // available before traversal starts, and wire the shared p_a model into
    // both SBH (reads) and the evaluator (observes fresh verdicts).
    TraversalStrategy* strategy = static_strategy.get();
    std::unique_ptr<TraversalStrategy> planned;
    PlannerFeatures features;
    PlannerDecision decision;
    EvalOptions eval_options = options_.eval;
    size_t pa_obs_before = 0;
    if (adaptive_ != nullptr) {
      features = ComputePlannerFeatures(pl, index_);
      decision = adaptive_->planner().Decide(features);
      planned = MakeArmStrategy(decision.arm, options_.sbh, options_.parallel,
                                &adaptive_->pa());
      strategy = planned.get();
      eval_options.pa_model = &adaptive_->pa();
      pa_obs_before = adaptive_->pa().observations();
    }
    auto stamp_adaptive = [&](TraversalStats* stats) {
      if (adaptive_ == nullptr) return;
      stats->planner_decisions = 1;
      stats->planner_explored = decision.explored ? 1 : 0;
      // Saturating delta: a concurrent decay (data-version change on a
      // shared model) can shrink the total mid-run.
      const size_t obs_now = adaptive_->pa().observations();
      stats->pa_observations = obs_now > pa_obs_before ? obs_now - pa_obs_before : 0;
      stats->planned_strategy = std::string(PlannerArmName(decision.arm));
      stats->pa_buckets = adaptive_->pa().SnapshotFor(features.sel_bucket);
    };

    QueryEvaluator evaluator(db_, executor_.get(), &pl, index_,
                             eval_options, verdict_cache_);
    StatusOr<TraversalResult> traversal_or = strategy->Run(pl, &evaluator);
    if (!traversal_or.ok() &&
        traversal_or.status().code() == StatusCode::kDeadlineExceeded) {
      // Belt over the strategies' own truncation handling: a deadline that
      // escapes as a status still degrades to an (empty) truncated
      // interpretation instead of failing the query.
      report.truncated = true;
      interp.truncated = true;
      stamp_adaptive(&interp.traversal_stats);
      report.interpretations.push_back(std::move(interp));
      break;
    }
    KWSDBG_ASSIGN_OR_RETURN(TraversalResult traversal,
                            std::move(traversal_or));
    // Feed the planner the measured cost of its pick. Truncated runs are
    // skipped — a deadline-clipped cost would look artificially cheap.
    if (adaptive_ != nullptr && !traversal.truncated) {
      adaptive_->planner().Observe(decision, traversal.stats.sql_queries,
                                   traversal.stats.total_millis);
    }
    interp.traversal_stats = traversal.stats;
    stamp_adaptive(&interp.traversal_stats);
    interp.truncated = traversal.truncated;
    if (traversal.truncated) report.truncated = true;

    for (const MtnOutcome& outcome : traversal.outcomes) {
      if (outcome.alive) {
        AnswerReport ans;
        KWSDBG_ASSIGN_OR_RETURN(
            ans.query, MakeNodeReport(*lattice_, outcome.mtn, binding, *db_));
        // Sampling issues fresh SQL; skip it once the budget fired (the
        // probe would immediately unwind with kDeadlineExceeded anyway).
        if (options_.sample_rows > 0 && !traversal.truncated) {
          KWSDBG_ASSIGN_OR_RETURN(
              JoinNetworkQuery query,
              BuildNodeQuery(*lattice_, outcome.mtn, binding));
          // Sampling materializes rows from arbitrary bound tables; fence
          // them all (coarse but rare — sample_rows defaults to 0).
          RelationReadGuard guard(options_.eval.fences,
                                  RelationReadGuard::kAllRelations);
          KWSDBG_ASSIGN_OR_RETURN(
              ans.sample, executor_->Execute(query, options_.sample_rows));
        }
        interp.answers.push_back(std::move(ans));
      } else {
        NonAnswerReport na;
        KWSDBG_ASSIGN_OR_RETURN(
            na.query, MakeNodeReport(*lattice_, outcome.mtn, binding, *db_));
        for (NodeId mpan : outcome.mpans) {
          KWSDBG_ASSIGN_OR_RETURN(
              NodeReport mr, MakeNodeReport(*lattice_, mpan, binding, *db_));
          na.mpans.push_back(std::move(mr));
        }
        for (NodeId culprit : outcome.culprits) {
          KWSDBG_ASSIGN_OR_RETURN(
              NodeReport cr,
              MakeNodeReport(*lattice_, culprit, binding, *db_));
          na.culprits.push_back(std::move(cr));
        }
        interp.non_answers.push_back(std::move(na));
      }
    }
    if (options_.rank_answers) RankAnswers(&interp.answers);
    report.interpretations.push_back(std::move(interp));
    // Once the budget fires, further interpretations would truncate to
    // nothing immediately — drop them instead of spinning.
    if (report.truncated) break;
  }
  report.debug_millis = debug_timer.ElapsedMillis();
  return report;
}

}  // namespace kwsdbg
