// Interactive non-answer debugging (the paper's Sec. 5 future-work
// direction): instead of classifying the whole search space in one batch, a
// developer probes one sub-query at a time, can inject outside knowledge
// ("I know this join is empty — we never imported that feed"), and watches
// the answer/non-answer frontier sharpen. The session keeps the same R1/R2
// inference as the batch strategies, so every probe or assertion classifies
// as much of the space as logic allows.
#ifndef KWSDBG_DEBUGGER_INTERACTIVE_SESSION_H_
#define KWSDBG_DEBUGGER_INTERACTIVE_SESSION_H_

#include <string>
#include <vector>

#include "kws/pruned_lattice.h"
#include "traversal/evaluator.h"
#include "traversal/node_status.h"

namespace kwsdbg {

/// A suggested next probe with its expected usefulness.
struct ProbeSuggestion {
  NodeId node = kInvalidNode;
  /// Expected number of additional classifications (the SBH gain
  /// W + (1-p_a)A + p_a D for the node; larger is better).
  double expected_gain = 0;
  std::string network;  ///< Human rendering of the node's join network.
};

/// One interpretation's interactive exploration. The PrunedLattice and
/// evaluator must outlive the session.
class InteractiveSession {
 public:
  InteractiveSession(const PrunedLattice* pl, QueryEvaluator* evaluator,
                     double alive_probability = 0.5);

  /// The most informative unclassified node under the SBH score (Eq. 1), or
  /// node == kInvalidNode when everything is classified.
  ProbeSuggestion SuggestProbe() const;

  /// Evaluates the node's SQL (unless already known) and propagates R1/R2.
  /// Returns its aliveness.
  StatusOr<bool> Probe(NodeId id);

  /// Injects outside knowledge without running SQL; propagates R1/R2.
  /// Errors if the node is already classified to the contrary.
  Status AssertAlive(NodeId id);
  Status AssertDead(NodeId id);

  /// Current classification of a node.
  NodeStatus StatusOf(NodeId id) const { return status_.Get(id); }

  /// Unclassified retained nodes remaining.
  size_t UnknownCount() const;

  /// True when the MTN's fate — and, if dead, its complete MPAN set — is
  /// fully determined by the current knowledge.
  bool MtnResolved(NodeId mtn) const;

  /// The MPANs already determinable: alive nodes in Desc(mtn) all of whose
  /// parents inside the MTN's sub-lattice are known dead. When
  /// MtnResolved(mtn) holds this is the complete MPAN set.
  std::vector<NodeId> KnownMpans(NodeId mtn) const;

  /// The culprits (minimal dead sub-networks) already determinable: dead
  /// nodes in Desc+(mtn) all of whose children are known alive. Complete
  /// once MtnResolved(mtn) holds.
  std::vector<NodeId> KnownCulprits(NodeId mtn) const;

  /// Finishes the remaining space automatically (SBH loop) and returns the
  /// number of SQL queries that took.
  StatusOr<size_t> FinishAutomatically();

  const PrunedLattice& pruned_lattice() const { return *pl_; }

 private:
  double Gain(NodeId id) const;
  void Propagate(NodeId id, bool alive);

  const PrunedLattice* pl_;
  QueryEvaluator* evaluator_;
  double pa_;
  NodeStatusMap status_;
};

}  // namespace kwsdbg

#endif  // KWSDBG_DEBUGGER_INTERACTIVE_SESSION_H_
