#include "debugger/frontier.h"

#include <algorithm>
#include <unordered_set>

namespace kwsdbg {

StatusOr<std::string> FrontierToDot(const PrunedLattice& pl,
                                    const MtnOutcome& outcome) {
  if (outcome.alive) {
    return Status::InvalidArgument(
        "the MTN is an answer query; there is no non-answer frontier");
  }
  const Lattice& lattice = pl.lattice();
  const NodeId m = outcome.mtn;
  std::vector<NodeId> sub = pl.RetainedDescendants(m);
  sub.push_back(m);
  std::unordered_set<NodeId> in_sub(sub.begin(), sub.end());

  // Reconstruct the classification: alive = descendants-of-MPANs (closed
  // downward by R1), dead = ancestors-of-culprits within the sub-lattice
  // (closed upward by R2). For a fully classified dead MTN these two sets
  // partition the sub-lattice.
  std::unordered_set<NodeId> alive, dead;
  for (NodeId n : outcome.mpans) {
    alive.insert(n);
    for (NodeId d : pl.RetainedDescendants(n)) alive.insert(d);
  }
  for (NodeId n : outcome.culprits) {
    dead.insert(n);
    for (NodeId a : pl.RetainedAncestors(n)) {
      if (in_sub.count(a)) dead.insert(a);
    }
  }

  std::unordered_set<NodeId> mpans(outcome.mpans.begin(),
                                   outcome.mpans.end());
  std::unordered_set<NodeId> culprits(outcome.culprits.begin(),
                                      outcome.culprits.end());

  std::string out = "digraph frontier {\n  rankdir=BT;\n";
  std::sort(sub.begin(), sub.end());
  for (NodeId n : sub) {
    std::string label = lattice.node(n).tree.ToString(lattice.schema());
    std::string escaped;
    for (char c : label) {
      if (c == '"') escaped += "\\\"";
      else escaped += c;
    }
    out += "  n" + std::to_string(n) + " [label=\"" + escaped + "\"";
    if (alive.count(n)) {
      out += ", color=green";
    } else if (dead.count(n)) {
      out += ", color=red";
    }
    if (mpans.count(n)) out += ", shape=doublecircle";
    if (culprits.count(n)) out += ", shape=doubleoctagon";
    if (n == m) out += ", penwidth=3";
    out += "];\n";
  }
  for (NodeId n : sub) {
    for (NodeId p : lattice.node(n).parents) {
      if (in_sub.count(p)) {
        out += "  n" + std::to_string(n) + " -> n" + std::to_string(p) +
               ";\n";
      }
    }
  }
  out += "}\n";
  return out;
}

}  // namespace kwsdbg
