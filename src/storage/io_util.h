// EINTR-safe fd helpers shared by the storage layer (DiskManager, WAL,
// checkpoint). Every call retries short transfers and EINTR, and surfaces
// real failures as typed statuses carrying errno text — the durability
// story is only as strong as the weakest unchecked write.
#ifndef KWSDBG_STORAGE_IO_UTIL_H_
#define KWSDBG_STORAGE_IO_UTIL_H_

#include <sys/types.h>

#include <cstddef>
#include <string>

#include "common/status.h"

namespace kwsdbg {

/// open(2) with an EINTR retry loop. `what` names the caller in errors.
StatusOr<int> OpenFd(const std::string& path, int flags, mode_t mode,
                     const char* what);

/// write(2) until all `len` bytes are accepted (short writes + EINTR).
Status WriteFull(int fd, const void* data, size_t len, const char* what);

/// pwrite(2) at `offset` until all `len` bytes are accepted.
Status WriteFullAt(int fd, const void* data, size_t len, off_t offset,
                   const char* what);

/// pread(2) at `offset` until `len` bytes or EOF; `*bytes_read` gets the
/// count actually read (< len only at EOF). The caller decides whether a
/// short read is an error or a zero-fill.
Status ReadFullAt(int fd, void* data, size_t len, off_t offset,
                  size_t* bytes_read, const char* what);

/// fdatasync(2) with EINTR retry.
Status SyncFd(int fd, const char* what);

/// fsyncs a directory so a create/rename inside it survives a crash.
Status SyncDir(const std::string& dir, const char* what);

/// close(2); reports real errors (EIO on deferred write-back) as statuses.
/// Sets *fd to -1 unconditionally — on Linux the descriptor is gone even
/// when close fails, so retrying would race other threads' fds.
Status CloseFd(int* fd, const char* what);

/// Directory part of `path` ("" -> ".").
std::string DirnameOf(const std::string& path);

/// Reads a whole regular file. kNotFound when it does not exist.
StatusOr<std::string> ReadFileToString(const std::string& path);

/// Crash-consistent file replace: writes `contents` to `path + ".tmp"`,
/// fsyncs, renames over `path`, and fsyncs the parent directory. After a
/// crash the path holds either the old bytes or the new bytes, never a mix.
Status AtomicWriteFile(const std::string& path, const std::string& contents);

}  // namespace kwsdbg

#endif  // KWSDBG_STORAGE_IO_UTIL_H_
