// Write-ahead log for the live-data write path.
//
// Format. A WAL file is a fixed header followed by length-prefixed frames:
//
//   header:  [u32 magic 'KWAL'][u32 version][u64 base_seq]
//   frame:   [u32 payload_len][u32 Checksum32(payload)][payload bytes]
//   payload: [u8 record kind][kind-specific body]
//
// Record seq numbers are implicit: the i-th frame (0-based) carries
// seq = base_seq + i + 1, so seq 0 means "nothing". A checkpoint records the
// last seq it covers; replay skips records at or below it, which makes the
// checkpoint-then-truncate window crash-safe (re-replaying a covered record
// is impossible, not merely idempotent).
//
// Torn tails vs data loss. A crash mid-append leaves a torn frame at the
// tail: a short header, a short payload, or a checksum mismatch. Replay
// treats an invalid frame as the end of the log *only if no valid frame
// exists after it* — trailing garbage is torn-tail tolerance (dropped and
// counted), while a bad frame followed by a good one means the middle of
// the log rotted and replay fails with kDataLoss rather than silently
// resurrecting a prefix.
//
// Durability. Three fsync policies: every-record (fsync per append),
// group-commit (records buffer in user space and are flushed + fsynced once
// a record-count or byte window fills), and off (flush without fsync).
// `durable_seq()` is the highest seq the last fsync covered — under
// group-commit/off an acknowledged-but-not-durable suffix may legitimately
// vanish in a crash, and callers gating on zero lost acknowledged writes
// must compare against durable_seq, not next_seq.
//
// Truncation and creation are crash-atomic: the replacement log (a bare
// header) is written to `<path>.tmp`, fsynced, renamed over the live log,
// and the directory fsynced — power loss at any instant leaves either the
// old complete log or the new one, never a zero-length or half-written
// file whose recreation would restart seqs below the checkpoint.
//
// Fault points: storage.wal.append, storage.wal.fsync, storage.wal.replay,
// storage.wal.truncate (hit at truncate entry and again before the rename
// swaps the replacement log in — also on the fresh-creation path).
#ifndef KWSDBG_STORAGE_WAL_H_
#define KWSDBG_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "storage/schema.h"

namespace kwsdbg {

/// One write. `row` names the payload for inserts; `row_id`/`column`/`value`
/// address updates; deletes need only `row_id`. Lives in the storage layer
/// so the WAL can log it without depending on the service layer; the
/// service-side LiveMutator consumes it unchanged.
struct Mutation {
  enum class Kind { kInsert, kDelete, kUpdate };
  Kind kind = Kind::kInsert;
  std::string table;
  Tuple row;          ///< kInsert: the new row (schema-checked).
  size_t row_id = 0;  ///< kDelete / kUpdate: target row id.
  size_t column = 0;  ///< kUpdate: target column.
  Value value;        ///< kUpdate: the new cell value (type-checked).

  static Mutation Insert(std::string table, Tuple row) {
    Mutation m;
    m.kind = Kind::kInsert;
    m.table = std::move(table);
    m.row = std::move(row);
    return m;
  }
  static Mutation Delete(std::string table, size_t row_id) {
    Mutation m;
    m.kind = Kind::kDelete;
    m.table = std::move(table);
    m.row_id = row_id;
    return m;
  }
  static Mutation Update(std::string table, size_t row_id, size_t column,
                         Value value) {
    Mutation m;
    m.kind = Kind::kUpdate;
    m.table = std::move(table);
    m.row_id = row_id;
    m.column = column;
    m.value = std::move(value);
    return m;
  }
};

/// When appended records reach the platter.
enum class FsyncPolicy {
  kEveryRecord,  ///< write + fsync per append; durable_seq == last seq.
  kGroupCommit,  ///< buffer; flush + fsync per window (records or bytes).
  kOff,          ///< flush per window, never fsync (OS decides).
};

/// Parses "every" | "group" | "off" (the KWSDBG_FSYNC_POLICY values).
StatusOr<FsyncPolicy> ParseFsyncPolicy(std::string_view s);
const char* FsyncPolicyToString(FsyncPolicy policy);

/// Frame payload ceiling. A single mutation payload is a row plus a table
/// name; anything beyond this is a corrupt length field on replay, so
/// appends reject it up front — an oversized frame would be written and
/// acknowledged only to read back invalid.
inline constexpr size_t kWalMaxPayload = 64u << 20;

/// Encodes one mutation into the frame payload AppendPayload writes.
/// Exposed so the write path can size-check (against kWalMaxPayload) and
/// encode once *before* mutating memory, instead of discovering an
/// unloggable mutation after the in-memory apply already happened.
std::string EncodeWalMutation(const Mutation& m);

struct WalOptions {
  FsyncPolicy fsync_policy = FsyncPolicy::kEveryRecord;
  uint64_t group_commit_records = 32;       ///< Window: records buffered.
  uint64_t group_commit_bytes = 64 * 1024;  ///< Window: bytes buffered.
};

/// Counters, exported through StorageStats -> ServiceStats -> JSON.
struct WalStats {
  uint64_t records_appended = 0;
  uint64_t bytes_appended = 0;  ///< Frame bytes (header + payload).
  uint64_t fsyncs = 0;
  uint64_t truncations = 0;  ///< Checkpoint-boundary log restarts.
};

/// One replayed record.
struct WalRecord {
  enum class Kind : uint8_t {
    kMutation = 1,  ///< A LiveMutator mutation.
    kCompact = 2,   ///< `table` was compacted at this point in the stream.
  };
  Kind kind = Kind::kMutation;
  uint64_t seq = 0;
  Mutation mutation;  ///< kMutation payload.
  std::string table;  ///< kCompact target.
};

struct WalReplayResult {
  bool exists = false;  ///< False when no WAL file was found.
  uint64_t base_seq = 0;
  std::vector<WalRecord> records;
  uint64_t torn_tail_bytes = 0;  ///< Trailing bytes dropped as a torn frame.
};

/// Reads and validates a WAL file. A missing file yields exists=false (a
/// fresh process has no log); a torn tail is tolerated and counted; an
/// invalid frame with a valid frame after it is kDataLoss.
StatusOr<WalReplayResult> ReadWal(const std::string& path);

/// Appender. Thread-safe; creates the file (atomically, via tmp + rename +
/// directory fsync) or adopts an existing one, chopping any torn tail so
/// new appends start on a frame boundary.
class WalWriter {
 public:
  /// `covered_seq` is the last seq the recovery checkpoint covers (0 when
  /// there is none). A fresh log starts at base_seq = covered_seq, so a
  /// recreated log can never hand out seqs a later recovery would skip as
  /// already covered. An existing log whose base exceeds covered_seq is
  /// kDataLoss (its covering checkpoint vanished); one that ends *at or
  /// below* covered_seq is wholly superseded by the snapshot and is
  /// restarted at the covered boundary.
  static StatusOr<std::unique_ptr<WalWriter>> Open(const std::string& path,
                                                   WalOptions options = {},
                                                   uint64_t covered_seq = 0);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one record; on OK, `*seq_out` (if given) is its seq. The
  /// record is durable only once durable_seq() >= that seq.
  Status AppendMutation(const Mutation& m, uint64_t* seq_out = nullptr);
  Status AppendCompact(const std::string& table, uint64_t* seq_out = nullptr);

  /// Appends a pre-encoded payload (from EncodeWalMutation). Rejects
  /// payloads over kWalMaxPayload with kInvalidArgument before buffering
  /// anything — such a frame would be dropped or flagged kDataLoss on
  /// replay, silently losing an acknowledged write.
  Status AppendPayload(const std::string& payload, uint64_t* seq_out = nullptr);

  /// Flushes the user-space buffer and fsyncs regardless of policy.
  Status Sync();

  /// Restarts the log after a checkpoint: a replacement file holding a bare
  /// header with base_seq = new_base_seq is written beside the log, fsynced,
  /// and renamed into place (crash-atomic — a power cut leaves either the
  /// old log or the new one). Seqs <= new_base_seq must be covered by the
  /// checkpoint.
  Status Truncate(uint64_t new_base_seq);

  uint64_t next_seq() const;     ///< Seq the next append will get.
  uint64_t durable_seq() const;  ///< Highest fsync-covered seq (0 = none).
  WalStats stats() const;
  const std::string& path() const { return path_; }

 private:
  WalWriter(std::string path, int fd, WalOptions options, uint64_t base_seq,
            uint64_t record_count, uint64_t file_end);

  /// Writes the buffer to the fd (pwrite at file_end_, so a retry after a
  /// partial write rewrites the same bytes at the same offset instead of
  /// appending a duplicate suffix); fsyncs when `sync` is set.
  Status FlushLocked(bool sync);

  const std::string path_;
  const WalOptions options_;
  mutable std::mutex mu_;
  int fd_ = -1;               // guarded by mu_
  uint64_t base_seq_ = 0;     // guarded by mu_
  uint64_t last_seq_ = 0;     // guarded by mu_ (seq of the last append)
  uint64_t durable_seq_ = 0;  // guarded by mu_
  uint64_t flushed_seq_ = 0;  // guarded by mu_ (last seq write()n to the fd)
  uint64_t file_end_ = 0;     // guarded by mu_ (bytes fully write()n)
  std::string buffer_;        // guarded by mu_ (frames not yet write()n)
  WalStats stats_;            // guarded by mu_
};

}  // namespace kwsdbg

#endif  // KWSDBG_STORAGE_WAL_H_
