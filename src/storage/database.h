// Database catalog: the set of named tables an engine instance serves.
#ifndef KWSDBG_STORAGE_DATABASE_H_
#define KWSDBG_STORAGE_DATABASE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/table.h"

namespace kwsdbg {

/// Options for ApplyMemoryBudget. Zeros mean "use the default / derive from
/// the budget"; the env knobs KWSDBG_PAGE_SIZE and KWSDBG_SPILL_DIR override
/// the corresponding fields when set.
struct SpillOptions {
  size_t page_size = 0;    ///< 0: KWSDBG_PAGE_SIZE or DiskManager default.
  size_t pool_frames = 0;  ///< 0: derived from the budget (min 16).
  std::string spill_dir;   ///< "": KWSDBG_SPILL_DIR or the system temp dir.
};

/// Snapshot of out-of-core activity, summed over the buffer pool and disk
/// manager. All zero for a fully resident database.
struct StorageStats {
  size_t page_hits = 0;
  size_t page_reads = 0;  ///< Pages read from disk (pool misses read extents).
  size_t page_evictions = 0;
  size_t page_write_backs = 0;
  size_t spilled_tables = 0;
  size_t spilled_bytes = 0;  ///< On-disk footprint of the spilled extents.
};

/// Owns tables and provides name lookup. Table names are case-sensitive.
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates an empty table with the given schema and returns it.
  /// Errors if a table with this name already exists.
  StatusOr<Table*> CreateTable(const std::string& name, Schema schema);

  /// Adds a fully built table. Errors on duplicate name.
  Status AddTable(std::unique_ptr<Table> table);

  /// Looks up a table; errors if absent.
  StatusOr<Table*> GetTable(const std::string& name) const;

  /// Looks up a table; nullptr if absent (hot-path variant).
  Table* FindTable(const std::string& name) const;

  bool HasTable(const std::string& name) const;

  /// Names of all tables in creation order.
  std::vector<std::string> TableNames() const;

  size_t num_tables() const { return order_.size(); }

  /// Total tuples across all tables (the paper reports 801,189 for DBLife).
  size_t TotalTuples() const;

  /// Estimated resident footprint of all tables (see Table::EstimateBytes).
  size_t EstimateBytes() const;

  /// Spills tables (largest first) to a private page file until the
  /// estimated resident footprint fits in roughly half of `budget_bytes`,
  /// reserving the other half for buffer-pool frames. Row contents are
  /// unchanged, so the epoch is NOT bumped. Idempotent in effect but may
  /// only be called once per database (spilled tables cannot re-spill).
  Status ApplyMemoryBudget(size_t budget_bytes, SpillOptions options = {});

  /// Reads KWSDBG_MEMORY_BUDGET (e.g. "64M", "1G", or plain bytes) and
  /// applies it; no-op when the variable is unset or empty.
  Status ApplyEnvMemoryBudget();

  /// True iff any table is serving reads through the buffer pool. The
  /// executor uses this to decide when `const Value&` references must be
  /// copied before further page fetches.
  bool AnySpilled() const { return spilled_count_ > 0; }

  /// Zero-initialized stats when nothing is spilled.
  StorageStats storage_stats() const;

  BufferPool* buffer_pool() { return pool_.get(); }
  DiskManager* disk() { return disk_.get(); }

  /// Monotonic data-version counter. Catalog changes bump it automatically;
  /// callers that mutate table contents in place (bulk loads, what-if edits
  /// via Table::SetValue/AppendRow) must call BumpEpoch() afterwards so
  /// epoch-keyed caches (e.g. the traversal verdict cache) stop serving
  /// verdicts computed against the old contents. For spilled tables the
  /// bump also drops clean buffer-pool frames after flushing dirty ones, so
  /// no layer can observe pre-write page images.
  uint64_t epoch() const { return epoch_; }
  void BumpEpoch();

  /// Recovery-only: restores the catalog epoch captured by a checkpoint.
  void RestoreEpoch(uint64_t epoch) { epoch_ = epoch; }

  /// Snapshots this database into `<dir>/CHECKPOINT` (crash-consistent;
  /// see storage/checkpoint.h). `covered_seq` is the highest WAL seq the
  /// snapshot includes; writers must be quiesced for the duration.
  Status Checkpoint(const std::string& dir, uint64_t covered_seq = 0) const;

  /// Rebuilds a database from `<dir>/CHECKPOINT` and sweeps spill page
  /// files orphaned in KWSDBG_SPILL_DIR (or the system temp dir) by dead
  /// prior incarnations. kNotFound when no checkpoint exists; the caller
  /// replays any WAL suffix on top (see service/debug_service.h).
  static StatusOr<std::unique_ptr<Database>> Recover(const std::string& dir);

 private:
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  std::vector<std::string> order_;
  uint64_t epoch_ = 0;

  // Out-of-core tier; null until ApplyMemoryBudget spills something.
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  size_t spilled_count_ = 0;
};

}  // namespace kwsdbg

#endif  // KWSDBG_STORAGE_DATABASE_H_
