// Database catalog: the set of named tables an engine instance serves.
#ifndef KWSDBG_STORAGE_DATABASE_H_
#define KWSDBG_STORAGE_DATABASE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace kwsdbg {

/// Owns tables and provides name lookup. Table names are case-sensitive.
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates an empty table with the given schema and returns it.
  /// Errors if a table with this name already exists.
  StatusOr<Table*> CreateTable(const std::string& name, Schema schema);

  /// Adds a fully built table. Errors on duplicate name.
  Status AddTable(std::unique_ptr<Table> table);

  /// Looks up a table; errors if absent.
  StatusOr<Table*> GetTable(const std::string& name) const;

  /// Looks up a table; nullptr if absent (hot-path variant).
  Table* FindTable(const std::string& name) const;

  bool HasTable(const std::string& name) const;

  /// Names of all tables in creation order.
  std::vector<std::string> TableNames() const;

  size_t num_tables() const { return order_.size(); }

  /// Total tuples across all tables (the paper reports 801,189 for DBLife).
  size_t TotalTuples() const;

  /// Monotonic data-version counter. Catalog changes bump it automatically;
  /// callers that mutate table contents in place (bulk loads, what-if edits
  /// via Table::SetValue/AppendRow) must call BumpEpoch() afterwards so
  /// epoch-keyed caches (e.g. the traversal verdict cache) stop serving
  /// verdicts computed against the old contents.
  uint64_t epoch() const { return epoch_; }
  void BumpEpoch() { ++epoch_; }

 private:
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  std::vector<std::string> order_;
  uint64_t epoch_ = 0;
};

}  // namespace kwsdbg

#endif  // KWSDBG_STORAGE_DATABASE_H_
