#include "storage/database.h"

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"
#include "common/string_util.h"

namespace kwsdbg {

StatusOr<Table*> Database::CreateTable(const std::string& name,
                                       Schema schema) {
  if (tables_.count(name)) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  auto table = std::make_unique<Table>(name, std::move(schema));
  Table* ptr = table.get();
  ptr->set_catalog_index(order_.size());
  tables_.emplace(name, std::move(table));
  order_.push_back(name);
  BumpEpoch();
  return ptr;
}

Status Database::AddTable(std::unique_ptr<Table> table) {
  const std::string& name = table->name();
  if (tables_.count(name)) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  table->set_catalog_index(order_.size());
  order_.push_back(name);
  tables_.emplace(name, std::move(table));
  BumpEpoch();
  return Status::OK();
}

StatusOr<Table*> Database::GetTable(const std::string& name) const {
  Table* t = FindTable(name);
  if (t == nullptr) return Status::NotFound("no table named '" + name + "'");
  return t;
}

Table* Database::FindTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

bool Database::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

std::vector<std::string> Database::TableNames() const { return order_; }

size_t Database::TotalTuples() const {
  size_t n = 0;
  for (const auto& name : order_) {
    Table* t = FindTable(name);
    KWSDBG_CHECK(t != nullptr) << "catalog order lists unknown table '"
                               << name << "'";
    n += t->num_rows();
  }
  return n;
}

size_t Database::EstimateBytes() const {
  size_t n = 0;
  for (const auto& [name, table] : tables_) n += table->EstimateBytes();
  return n;
}

Status Database::ApplyMemoryBudget(size_t budget_bytes, SpillOptions options) {
  if (budget_bytes == 0) {
    return Status::InvalidArgument("memory budget must be positive");
  }
  size_t page_size = options.page_size;
  if (page_size == 0) {
    if (const char* env = std::getenv("KWSDBG_PAGE_SIZE")) {
      page_size = ParseByteSize(env);
    }
    if (page_size == 0) page_size = DiskManager::kDefaultPageSize;
  }
  std::string spill_dir = options.spill_dir;
  if (spill_dir.empty()) {
    if (const char* env = std::getenv("KWSDBG_SPILL_DIR")) spill_dir = env;
  }

  // Largest tables first: each spill buys the most resident bytes back for
  // one table's worth of page-directory overhead.
  struct Candidate {
    Table* table;
    size_t bytes;
  };
  std::vector<Candidate> candidates;
  size_t resident = 0;
  for (const auto& name : order_) {
    Table* t = FindTable(name);
    KWSDBG_CHECK(t != nullptr) << "catalog order lists unknown table '"
                               << name << "'";
    size_t bytes = t->EstimateBytes();
    resident += bytes;
    if (!t->spilled()) candidates.push_back({t, bytes});
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.bytes > b.bytes;
                   });

  // Half the budget for resident tables, half for buffer-pool frames. A
  // decoded frame costs roughly its encoded extent (one page) plus tuple
  // headers, so frames are charged at 4 pages each — deliberately
  // conservative, and clamped to the pool's 16-frame floor either way.
  const size_t resident_target = budget_bytes / 2;
  std::vector<Table*> to_spill;
  for (const Candidate& c : candidates) {
    if (resident <= resident_target) break;
    to_spill.push_back(c.table);
    resident -= c.bytes;
  }
  if (to_spill.empty()) return Status::OK();

  if (disk_ == nullptr) {
    KWSDBG_ASSIGN_OR_RETURN(disk_,
                            DiskManager::CreateTemp(spill_dir, page_size));
    size_t frames = options.pool_frames;
    if (frames == 0) frames = (budget_bytes / 2) / (4 * page_size);
    pool_ = std::make_unique<BufferPool>(disk_.get(), frames);
  }
  for (Table* t : to_spill) {
    KWSDBG_RETURN_NOT_OK(t->Spill(pool_.get(), disk_.get()));
    ++spilled_count_;
  }
  // Contents are unchanged, so epoch-keyed caches stay valid: no BumpEpoch.
  return Status::OK();
}

Status Database::ApplyEnvMemoryBudget() {
  const char* env = std::getenv("KWSDBG_MEMORY_BUDGET");
  if (env == nullptr || *env == '\0') return Status::OK();
  size_t budget = ParseByteSize(env);
  if (budget == 0) {
    return Status::InvalidArgument(
        std::string("unparseable KWSDBG_MEMORY_BUDGET: '") + env + "'");
  }
  return ApplyMemoryBudget(budget);
}

StorageStats Database::storage_stats() const {
  StorageStats s;
  if (pool_ != nullptr) {
    const BufferPoolStats& ps = pool_->stats();
    s.page_hits = ps.page_hits;
    s.page_evictions = ps.page_evictions;
    s.page_write_backs = ps.write_backs;
  }
  if (disk_ != nullptr) s.page_reads = disk_->stats().page_reads;
  s.spilled_tables = spilled_count_;
  for (const auto& [name, table] : tables_) {
    if (table->spilled()) s.spilled_bytes += table->on_disk_bytes();
  }
  return s;
}

void Database::BumpEpoch() {
  ++epoch_;
  // Legacy full invalidation: a global bump means "anything may have
  // changed", so every table's data epoch moves too and per-relation caches
  // (flat indexes, executor session caches, verdict relation fingerprints)
  // all go cold. Targeted writes should use Table::BumpDataEpoch via
  // LiveMutator instead, which leaves unrelated tables' caches warm.
  for (const auto& [name, table] : tables_) table->BumpDataEpoch();
  if (pool_ != nullptr) {
    // A mutation happened (or the catalog changed): push dirty frames to
    // disk, then drop everything so post-bump reads decode fresh pages. The
    // flush must succeed — losing a dirty frame would silently revert a
    // write that callers already observed.
    Status st = pool_->FlushAll();
    KWSDBG_CHECK(st.ok()) << "flush on epoch bump failed: " << st.ToString();
    pool_->DropAll();
  }
}

}  // namespace kwsdbg
