#include "storage/database.h"

namespace kwsdbg {

StatusOr<Table*> Database::CreateTable(const std::string& name,
                                       Schema schema) {
  if (tables_.count(name)) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  auto table = std::make_unique<Table>(name, std::move(schema));
  Table* ptr = table.get();
  tables_.emplace(name, std::move(table));
  order_.push_back(name);
  BumpEpoch();
  return ptr;
}

Status Database::AddTable(std::unique_ptr<Table> table) {
  const std::string& name = table->name();
  if (tables_.count(name)) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  order_.push_back(name);
  tables_.emplace(name, std::move(table));
  BumpEpoch();
  return Status::OK();
}

StatusOr<Table*> Database::GetTable(const std::string& name) const {
  Table* t = FindTable(name);
  if (t == nullptr) return Status::NotFound("no table named '" + name + "'");
  return t;
}

Table* Database::FindTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

bool Database::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

std::vector<std::string> Database::TableNames() const { return order_; }

size_t Database::TotalTuples() const {
  size_t n = 0;
  for (const auto& name : order_) n += FindTable(name)->num_rows();
  return n;
}

}  // namespace kwsdbg
