// Table schemas: ordered, named, typed columns.
#ifndef KWSDBG_STORAGE_SCHEMA_H_
#define KWSDBG_STORAGE_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/value.h"

namespace kwsdbg {

/// A single column definition.
struct Column {
  std::string name;
  DataType type;

  bool operator==(const Column& other) const = default;
};

/// An ordered list of columns with O(1) name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the named column, or error if absent.
  StatusOr<size_t> ColumnIndex(const std::string& name) const;

  /// True iff a column with this name exists.
  bool HasColumn(const std::string& name) const;

  /// Indices of all kString columns — the attributes LIKE predicates and the
  /// inverted index apply to.
  std::vector<size_t> TextColumnIndices() const;

  /// "name:TYPE, name:TYPE, ..." for debugging.
  std::string ToString() const;

  bool operator==(const Schema& other) const {
    return columns_ == other.columns_;
  }

 private:
  std::vector<Column> columns_;
  std::unordered_map<std::string, size_t> index_;
};

/// A row: one Value per schema column.
using Tuple = std::vector<Value>;

}  // namespace kwsdbg

#endif  // KWSDBG_STORAGE_SCHEMA_H_
