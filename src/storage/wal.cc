#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/fault_injector.h"
#include "common/hash.h"
#include "storage/buffer_pool.h"
#include "storage/io_util.h"

namespace kwsdbg {

namespace {

constexpr uint32_t kWalMagic = 0x4C41574Bu;  // 'KWAL'
constexpr uint32_t kWalVersion = 1;
constexpr size_t kHeaderSize = 16;      // magic + version + base_seq
constexpr size_t kFrameHeaderSize = 8;  // payload_len + checksum

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}
void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Bounds-checked little cursor over a payload.
class Reader {
 public:
  Reader(const char* data, size_t size) : data_(data), size_(size) {}

  bool ReadU8(uint8_t* v) { return ReadRaw(v, 1); }
  bool ReadU32(uint32_t* v) { return ReadRaw(v, 4); }
  bool ReadU64(uint64_t* v) { return ReadRaw(v, 8); }
  bool ReadString(std::string* v) {
    uint32_t len;
    if (!ReadU32(&len) || size_ - pos_ < len) return false;
    v->assign(data_ + pos_, len);
    pos_ += len;
    return true;
  }
  const char* rest() const { return data_ + pos_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  bool ReadRaw(void* v, size_t n) {
    if (size_ - pos_ < n) return false;
    std::memcpy(v, data_ + pos_, n);
    pos_ += n;
    return true;
  }
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

std::string EncodeHeader(uint64_t base_seq) {
  std::string out;
  PutU32(&out, kWalMagic);
  PutU32(&out, kWalVersion);
  PutU64(&out, base_seq);
  return out;
}

std::string EncodeCompactPayload(const std::string& table) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(WalRecord::Kind::kCompact));
  PutString(&out, table);
  return out;
}

Status DecodePayload(const char* data, size_t size, WalRecord* out) {
  Reader r(data, size);
  uint8_t kind_byte;
  if (!r.ReadU8(&kind_byte)) {
    return Status::DataLoss("WAL payload too short for record kind");
  }
  if (kind_byte == static_cast<uint8_t>(WalRecord::Kind::kCompact)) {
    out->kind = WalRecord::Kind::kCompact;
    if (!r.ReadString(&out->table)) {
      return Status::DataLoss("WAL compact record truncated");
    }
    return Status::OK();
  }
  if (kind_byte != static_cast<uint8_t>(WalRecord::Kind::kMutation)) {
    return Status::DataLoss("unknown WAL record kind " +
                            std::to_string(kind_byte));
  }
  out->kind = WalRecord::Kind::kMutation;
  uint8_t mkind;
  Mutation& m = out->mutation;
  if (!r.ReadU8(&mkind) || !r.ReadString(&m.table)) {
    return Status::DataLoss("WAL mutation record truncated");
  }
  m.kind = static_cast<Mutation::Kind>(mkind);
  switch (m.kind) {
    case Mutation::Kind::kInsert: {
      std::string rows;
      if (!r.ReadString(&rows)) {
        return Status::DataLoss("WAL insert record truncated");
      }
      std::vector<Tuple> decoded;
      KWSDBG_RETURN_NOT_OK(DecodeRows(rows.data(), rows.size(), &decoded));
      if (decoded.size() != 1) {
        return Status::DataLoss("WAL insert record holds " +
                                std::to_string(decoded.size()) + " rows");
      }
      m.row = std::move(decoded[0]);
      break;
    }
    case Mutation::Kind::kDelete: {
      uint64_t row_id;
      if (!r.ReadU64(&row_id)) {
        return Status::DataLoss("WAL delete record truncated");
      }
      m.row_id = row_id;
      break;
    }
    case Mutation::Kind::kUpdate: {
      uint64_t row_id, column;
      std::string cell;
      if (!r.ReadU64(&row_id) || !r.ReadU64(&column) || !r.ReadString(&cell)) {
        return Status::DataLoss("WAL update record truncated");
      }
      std::vector<Tuple> decoded;
      KWSDBG_RETURN_NOT_OK(DecodeRows(cell.data(), cell.size(), &decoded));
      if (decoded.size() != 1 || decoded[0].size() != 1) {
        return Status::DataLoss("WAL update record cell malformed");
      }
      m.row_id = row_id;
      m.column = column;
      m.value = std::move(decoded[0][0]);
      break;
    }
    default:
      return Status::DataLoss("unknown WAL mutation kind " +
                              std::to_string(mkind));
  }
  return Status::OK();
}

/// Checks whether a well-formed frame (length in range, checksum matches)
/// starts anywhere in [from, size). Used to tell a torn tail (no valid
/// frame follows the bad bytes) from mid-log corruption (one does).
bool HasValidFrameAfter(const char* data, size_t size, size_t from) {
  for (size_t off = from; off + kFrameHeaderSize <= size; ++off) {
    uint32_t len, checksum;
    std::memcpy(&len, data + off, 4);
    std::memcpy(&checksum, data + off + 4, 4);
    if (len == 0 || len > kWalMaxPayload) continue;
    if (off + kFrameHeaderSize + len > size) continue;
    if (Checksum32(data + off + kFrameHeaderSize, len) == checksum) {
      return true;
    }
  }
  return false;
}

struct ScanResult {
  uint64_t base_seq = 0;
  std::vector<WalRecord> records;
  size_t valid_end = 0;          ///< Byte offset past the last valid frame.
  uint64_t torn_tail_bytes = 0;  ///< Bytes after valid_end (dropped).
};

Status ScanWal(const std::string& bytes, const std::string& path,
               ScanResult* out) {
  if (bytes.size() < kHeaderSize) {
    // A file this short can only be a crash during creation: drop it all.
    out->valid_end = 0;
    out->torn_tail_bytes = bytes.size();
    return Status::OK();
  }
  Reader header(bytes.data(), kHeaderSize);
  uint32_t magic, version;
  header.ReadU32(&magic);
  header.ReadU32(&version);
  header.ReadU64(&out->base_seq);
  if (magic != kWalMagic) {
    return Status::DataLoss("WAL " + path + " has bad magic");
  }
  if (version != kWalVersion) {
    return Status::DataLoss("WAL " + path + " has unsupported version " +
                            std::to_string(version));
  }
  size_t pos = kHeaderSize;
  uint64_t seq = out->base_seq;
  while (pos < bytes.size()) {
    KWSDBG_FAULT_POINT("storage.wal.replay");
    bool frame_ok = false;
    uint32_t len = 0;
    if (bytes.size() - pos >= kFrameHeaderSize) {
      uint32_t checksum;
      std::memcpy(&len, bytes.data() + pos, 4);
      std::memcpy(&checksum, bytes.data() + pos + 4, 4);
      if (len > 0 && len <= kWalMaxPayload &&
          bytes.size() - pos - kFrameHeaderSize >= len &&
          Checksum32(bytes.data() + pos + kFrameHeaderSize, len) ==
              checksum) {
        frame_ok = true;
      }
    }
    if (!frame_ok) {
      if (HasValidFrameAfter(bytes.data(), bytes.size(), pos + 1)) {
        return Status::DataLoss(
            "WAL " + path + " corrupt at offset " + std::to_string(pos) +
            " with valid frames after it");
      }
      out->torn_tail_bytes = bytes.size() - pos;
      break;
    }
    WalRecord record;
    const Status st =
        DecodePayload(bytes.data() + pos + kFrameHeaderSize, len, &record);
    if (!st.ok()) {
      // The checksum matched, so these bytes were written as-is: a decode
      // failure is real corruption (or a version skew), never a torn tail.
      return Status::DataLoss("WAL " + path + " frame at offset " +
                              std::to_string(pos) +
                              " undecodable: " + st.message());
    }
    record.seq = ++seq;
    out->records.push_back(std::move(record));
    pos += kFrameHeaderSize + len;
  }
  out->valid_end = pos < bytes.size() ? pos : bytes.size();
  return Status::OK();
}

/// Crash-atomically (re)creates the log at `path` as a bare header with the
/// given base_seq: the file is staged at `<path>.tmp`, fsynced, renamed
/// over `path`, and the directory fsynced. Power loss at any instant
/// leaves either whatever `path` held before or the complete new log —
/// never a zero-length or half-written file, and never a new header with
/// stale frames behind it. Returns an fd positioned on the new log.
StatusOr<int> CreateFreshWal(const std::string& path, uint64_t base_seq,
                             const char* what) {
  const std::string tmp = path + ".tmp";
  KWSDBG_ASSIGN_OR_RETURN(int fd,
                          OpenFd(tmp, O_RDWR | O_CREAT | O_TRUNC, 0644, what));
  const std::string header = EncodeHeader(base_seq);
  Status st = WriteFullAt(fd, header.data(), header.size(), 0, what);
  if (st.ok()) st = SyncFd(fd, what);
  if (st.ok() && FaultInjector::Enabled()) {
    // The staged log is durable but the live one untouched: the crash wall
    // kills here to prove either complete log recovers.
    st = FaultInjector::Global().Hit("storage.wal.truncate");
  }
  if (st.ok() && ::rename(tmp.c_str(), path.c_str()) != 0) {
    st = Status::Internal(std::string(what) + ": rename: " +
                          std::string(std::strerror(errno)));
  }
  if (st.ok()) st = SyncDir(DirnameOf(path), what);
  if (!st.ok()) {
    CloseFd(&fd, what);
    ::unlink(tmp.c_str());  // Best effort; a leftover stage is ignored.
    return st;
  }
  return fd;
}

}  // namespace

std::string EncodeWalMutation(const Mutation& m) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(WalRecord::Kind::kMutation));
  PutU8(&out, static_cast<uint8_t>(m.kind));
  PutString(&out, m.table);
  switch (m.kind) {
    case Mutation::Kind::kInsert: {
      std::string rows;
      EncodeRows({m.row}, &rows);
      PutString(&out, rows);
      break;
    }
    case Mutation::Kind::kDelete:
      PutU64(&out, m.row_id);
      break;
    case Mutation::Kind::kUpdate: {
      PutU64(&out, m.row_id);
      PutU64(&out, m.column);
      std::string cell;
      EncodeRows({Tuple{m.value}}, &cell);
      PutString(&out, cell);
      break;
    }
  }
  return out;
}

StatusOr<FsyncPolicy> ParseFsyncPolicy(std::string_view s) {
  if (s == "every" || s == "every-record" || s == "always") {
    return FsyncPolicy::kEveryRecord;
  }
  if (s == "group" || s == "group-commit") return FsyncPolicy::kGroupCommit;
  if (s == "off" || s == "none") return FsyncPolicy::kOff;
  return Status::InvalidArgument("unknown fsync policy '" + std::string(s) +
                                 "' (want: every | group | off)");
}

const char* FsyncPolicyToString(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kEveryRecord:
      return "every";
    case FsyncPolicy::kGroupCommit:
      return "group";
    case FsyncPolicy::kOff:
      return "off";
  }
  return "unknown";
}

StatusOr<WalReplayResult> ReadWal(const std::string& path) {
  auto bytes_or = ReadFileToString(path);
  if (!bytes_or.ok()) {
    if (bytes_or.status().code() == StatusCode::kNotFound) {
      return WalReplayResult{};
    }
    return bytes_or.status();
  }
  ScanResult scan;
  KWSDBG_RETURN_NOT_OK(ScanWal(*bytes_or, path, &scan));
  WalReplayResult out;
  out.exists = true;
  out.base_seq = scan.base_seq;
  out.records = std::move(scan.records);
  out.torn_tail_bytes = scan.torn_tail_bytes;
  return out;
}

WalWriter::WalWriter(std::string path, int fd, WalOptions options,
                     uint64_t base_seq, uint64_t record_count,
                     uint64_t file_end)
    : path_(std::move(path)),
      options_(options),
      fd_(fd),
      base_seq_(base_seq),
      last_seq_(base_seq + record_count),
      durable_seq_(base_seq + record_count),
      flushed_seq_(base_seq + record_count),
      file_end_(file_end) {}

StatusOr<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& path,
                                                     WalOptions options,
                                                     uint64_t covered_seq) {
  auto existing = ReadFileToString(path);
  uint64_t base_seq = covered_seq;
  uint64_t record_count = 0;
  size_t valid_end = kHeaderSize;
  bool fresh = true;
  if (existing.ok()) {
    ScanResult scan;
    KWSDBG_RETURN_NOT_OK(ScanWal(*existing, path, &scan));
    if (scan.valid_end == 0) {
      // Crash during creation left a stub with no usable header: recreate.
      fresh = true;
    } else if (scan.base_seq > covered_seq) {
      return Status::DataLoss(
          "WAL " + path + " starts at seq " + std::to_string(scan.base_seq) +
          " but the checkpoint covers only " + std::to_string(covered_seq) +
          "; the covering checkpoint is gone");
    } else if (scan.base_seq + scan.records.size() < covered_seq) {
      // Every surviving frame is at or below the covered seq: the log is
      // wholly superseded by the snapshot (an unfsynced suffix the
      // checkpoint made durable vanished in a crash before truncation).
      // Restart at the covered boundary — adopting the short log as-is
      // would hand out seqs the next recovery skips as already covered.
      fresh = true;
    } else {
      fresh = false;
      base_seq = scan.base_seq;
      record_count = scan.records.size();
      valid_end = scan.valid_end;
    }
  } else if (existing.status().code() != StatusCode::kNotFound) {
    return existing.status();
  }

  int fd = -1;
  if (fresh) {
    base_seq = covered_seq;
    record_count = 0;
    valid_end = kHeaderSize;
    KWSDBG_ASSIGN_OR_RETURN(
        fd, CreateFreshWal(path, covered_seq, "WalWriter::Open"));
  } else {
    KWSDBG_ASSIGN_OR_RETURN(fd, OpenFd(path, O_RDWR, 0644, "WalWriter::Open"));
    Status st = Status::OK();
    if (::ftruncate(fd, static_cast<off_t>(valid_end)) != 0) {
      // Chop any torn tail so new frames land on a frame boundary.
      st = Status::Internal("WalWriter::Open: ftruncate: " +
                            std::string(std::strerror(errno)));
    }
    if (st.ok()) st = SyncFd(fd, "WalWriter::Open");
    if (!st.ok()) {
      CloseFd(&fd, "WalWriter::Open");
      return st;
    }
  }
  return std::unique_ptr<WalWriter>(
      new WalWriter(path, fd, options, base_seq, record_count, valid_end));
}

WalWriter::~WalWriter() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    // Best-effort flush; a clean shutdown path calls Sync() explicitly.
    if (!buffer_.empty()) {
      WriteFullAt(fd_, buffer_.data(), buffer_.size(),
                  static_cast<off_t>(file_end_), "WalWriter::~WalWriter");
    }
    CloseFd(&fd_, "WalWriter::~WalWriter");
  }
}

Status WalWriter::AppendPayload(const std::string& payload,
                                uint64_t* seq_out) {
  KWSDBG_FAULT_POINT("storage.wal.append");
  if (payload.size() > kWalMaxPayload) {
    // Replay treats len > kWalMaxPayload as an invalid frame; writing one
    // would acknowledge a record that recovery drops or flags kDataLoss.
    return Status::InvalidArgument(
        "WAL payload of " + std::to_string(payload.size()) +
        " bytes exceeds the " + std::to_string(kWalMaxPayload) +
        "-byte frame limit");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) {
    return Status::FailedPrecondition("WAL writer is closed");
  }
  const uint32_t len = static_cast<uint32_t>(payload.size());
  const uint32_t checksum = Checksum32(payload.data(), payload.size());
  buffer_.append(reinterpret_cast<const char*>(&len), 4);
  buffer_.append(reinterpret_cast<const char*>(&checksum), 4);
  buffer_.append(payload);
  const uint64_t seq = ++last_seq_;
  stats_.records_appended++;
  stats_.bytes_appended += kFrameHeaderSize + payload.size();

  Status st = Status::OK();
  switch (options_.fsync_policy) {
    case FsyncPolicy::kEveryRecord:
      st = FlushLocked(/*sync=*/true);
      break;
    case FsyncPolicy::kGroupCommit:
      if (last_seq_ - flushed_seq_ >= options_.group_commit_records ||
          buffer_.size() >= options_.group_commit_bytes) {
        st = FlushLocked(/*sync=*/true);
      }
      break;
    case FsyncPolicy::kOff:
      // Bound the user-space buffer; the OS page cache takes it from here.
      if (buffer_.size() >= options_.group_commit_bytes) {
        st = FlushLocked(/*sync=*/false);
      }
      break;
  }
  KWSDBG_RETURN_NOT_OK(st);
  if (seq_out != nullptr) *seq_out = seq;
  return Status::OK();
}

Status WalWriter::FlushLocked(bool sync) {
  if (!buffer_.empty()) {
    // pwrite at the tracked end-of-log: if a previous flush failed after
    // some bytes reached the fd, the retry rewrites those same bytes at the
    // same offset instead of appending a duplicate (corrupt) suffix after
    // them. file_end_ only advances once the whole buffer is down.
    KWSDBG_RETURN_NOT_OK(WriteFullAt(fd_, buffer_.data(), buffer_.size(),
                                     static_cast<off_t>(file_end_),
                                     "WalWriter::Flush"));
    file_end_ += buffer_.size();
    buffer_.clear();
    flushed_seq_ = last_seq_;
  }
  if (sync) {
    KWSDBG_FAULT_POINT("storage.wal.fsync");
    KWSDBG_RETURN_NOT_OK(SyncFd(fd_, "WalWriter::Flush"));
    stats_.fsyncs++;
    durable_seq_ = flushed_seq_;
  }
  return Status::OK();
}

Status WalWriter::AppendMutation(const Mutation& m, uint64_t* seq_out) {
  return AppendPayload(EncodeWalMutation(m), seq_out);
}

Status WalWriter::AppendCompact(const std::string& table,
                                uint64_t* seq_out) {
  return AppendPayload(EncodeCompactPayload(table), seq_out);
}

Status WalWriter::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::FailedPrecondition("WAL writer is closed");
  return FlushLocked(/*sync=*/true);
}

Status WalWriter::Truncate(uint64_t new_base_seq) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::FailedPrecondition("WAL writer is closed");
  if (new_base_seq < base_seq_ || new_base_seq > last_seq_) {
    return Status::InvalidArgument(
        "WAL truncate to seq " + std::to_string(new_base_seq) +
        " outside [" + std::to_string(base_seq_) + ", " +
        std::to_string(last_seq_) + "]");
  }
  // Anything buffered is either covered by the checkpoint (<= new_base_seq)
  // or must survive the restart; only full coverage allows dropping it all.
  if (new_base_seq != last_seq_) {
    return Status::Unimplemented(
        "partial WAL truncation is not supported; checkpoint must cover "
        "the full log");
  }
  KWSDBG_FAULT_POINT("storage.wal.truncate");
  // Stage-and-rename, never truncate in place: an in-place rewrite crashed
  // mid-way can leave a zero-length file (whose recreation would restart
  // seqs below the checkpoint, making later acknowledged writes replay as
  // already-covered) or a fresh header over stale frames (double-apply).
  KWSDBG_ASSIGN_OR_RETURN(
      int new_fd, CreateFreshWal(path_, new_base_seq, "WalWriter::Truncate"));
  buffer_.clear();
  // The old fd now names an unlinked inode; its close status is moot.
  CloseFd(&fd_, "WalWriter::Truncate");
  fd_ = new_fd;
  file_end_ = kHeaderSize;
  base_seq_ = new_base_seq;
  last_seq_ = new_base_seq;
  flushed_seq_ = new_base_seq;
  durable_seq_ = new_base_seq;
  stats_.truncations++;
  return Status::OK();
}

uint64_t WalWriter::next_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_seq_ + 1;
}

uint64_t WalWriter::durable_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durable_seq_;
}

WalStats WalWriter::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace kwsdbg
