// Fixed-capacity buffer pool over a DiskManager page file.
//
// Frames cache *decoded* tuple vectors rather than raw page bytes so that the
// resident `Table` API (`at()` returning `const Value&`) keeps working when a
// table spills: a fetch returns a pointer to the decoded rows of one extent,
// and that pointer stays valid until the frame is evicted.
//
// Eviction is strict LRU over unpinned frames. This gives callers a simple
// reference-stability contract: a reference obtained from the most recent
// Fetch stays valid across at least `capacity() - 1` subsequent fetches of
// *other* extents (each fetch displaces at most one frame, and the newest
// frame is last in LRU order). The executor's probe loops touch at most two
// tables between taking a reference and using it, so the enforced minimum
// capacity of 16 frames keeps those references stable; the few call sites
// that interleave a reference with an unbounded index build copy the value
// instead (see Executor::RunJoin).
//
// Dirty frames are written back through the PageWriter that fetched them,
// which lets the owner re-encode rows and grow the extent if an updated
// string no longer fits (see Table::WriteBack).
#ifndef KWSDBG_STORAGE_BUFFER_POOL_H_
#define KWSDBG_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/disk_manager.h"
#include "storage/schema.h"

namespace kwsdbg {

/// Self-describing row codec used for spill pages. Each cell is a tag byte
/// (null / int64 / double / string) followed by its payload, so decoding
/// needs no schema. The encoded block starts with a uint32 row count and
/// per-row uint16 arities.
size_t EncodedRowsSize(const std::vector<Tuple>& rows);
size_t EncodedRowSize(const Tuple& row);
void EncodeRows(const std::vector<Tuple>& rows, std::string* out);
Status DecodeRows(const char* data, size_t size, std::vector<Tuple>* out);

/// Write-back sink for dirty frames; implemented by the page owner (Table).
class PageWriter {
 public:
  virtual ~PageWriter() = default;
  virtual Status WriteBack(uint64_t first_page,
                           const std::vector<Tuple>& rows) = 0;
};

struct BufferPoolStats {
  size_t page_hits = 0;        ///< Fetches served from a resident frame.
  size_t page_misses = 0;      ///< Fetches that had to read from disk.
  size_t page_evictions = 0;   ///< Frames displaced to make room.
  size_t write_backs = 0;      ///< Dirty frames flushed on eviction/flush.
};

class BufferPool {
 public:
  /// Callers relying on the reference-stability contract above need a floor;
  /// capacities below this are clamped up.
  static constexpr size_t kMinCapacity = 16;

  BufferPool(DiskManager* disk, size_t capacity);
  ~BufferPool();
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  size_t capacity() const { return capacity_; }
  size_t num_frames() const { return frames_.size(); }
  const BufferPoolStats& stats() const { return stats_; }

  /// Returns the decoded rows of the extent starting at `first_page`
  /// (`num_pages` long), reading and decoding it if not resident. The
  /// pointer is valid until the frame is evicted (see contract above).
  StatusOr<const std::vector<Tuple>*> Fetch(uint64_t first_page,
                                            uint32_t num_pages,
                                            PageWriter* writer);

  /// Like Fetch but marks the frame dirty; it will be written back through
  /// `writer` when evicted or flushed.
  StatusOr<std::vector<Tuple>*> FetchMutable(uint64_t first_page,
                                             uint32_t num_pages,
                                             PageWriter* writer);

  /// Pins / unpins a resident frame. Pinned frames are never evicted; a pin
  /// on a non-resident extent is a no-op. Pins nest.
  void Pin(uint64_t first_page);
  void Unpin(uint64_t first_page);

  /// Writes back all dirty frames (frames stay resident).
  Status FlushAll();

  /// Drops every frame without write-back. Used when the backing extents
  /// were rewritten by the owner, or on shutdown after FlushAll.
  void DropAll();

  /// Drops one frame if resident (without write-back).
  void Drop(uint64_t first_page);

 private:
  struct Frame {
    uint64_t first_page = 0;
    uint32_t num_pages = 0;
    bool dirty = false;
    int pins = 0;
    PageWriter* writer = nullptr;
    std::vector<Tuple> rows;
    std::list<uint64_t>::iterator lru_pos;
  };

  StatusOr<Frame*> FetchFrame(uint64_t first_page, uint32_t num_pages,
                              PageWriter* writer);
  Status EvictOne();

  DiskManager* disk_;
  size_t capacity_;
  std::unordered_map<uint64_t, std::unique_ptr<Frame>> frames_;
  std::list<uint64_t> lru_;  // front = least recently used
  std::string io_buf_;
  BufferPoolStats stats_;
};

}  // namespace kwsdbg

#endif  // KWSDBG_STORAGE_BUFFER_POOL_H_
