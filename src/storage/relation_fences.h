// Per-relation reader/writer fences for live mutations under load.
//
// The old contract was quiescence: mutate + BumpEpoch() only while no query
// is in flight. These fences replace it with per-relation blocking: a reader
// (one verdict evaluation, one binding pass, one sampling query) holds the
// fences of exactly the relations its CN binds in SHARED mode, and a writer
// (LiveMutator::Apply) holds the mutated relation's fence in EXCLUSIVE mode
// for the duration of one table + index patch. A write to `Person` therefore
// waits only for in-flight evaluations that touch `Person` — queries over
// disjoint relations proceed concurrently with the write.
//
// Two-level locking: relation fences guard table contents (rows, tombstone
// bits, flat/row indexes over one table); the single `index gate` guards the
// shared InvertedIndex + the buffer pool, whose structures interleave all
// relations (a term's posting vector spans tables, and a page eviction can
// touch any table's frames). Readers take their relation fences in ascending
// index order, then the gate shared; writers take one relation fence
// exclusive, then the gate exclusive only for the brief index-patch window.
// The global order (fences ascending, gate last) makes deadlock impossible.
#ifndef KWSDBG_STORAGE_RELATION_FENCES_H_
#define KWSDBG_STORAGE_RELATION_FENCES_H_

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "common/logging.h"

namespace kwsdbg {

class RelationFences {
 public:
  /// One fence per catalog slot. `num_tables` may be 0 (empty catalog).
  explicit RelationFences(size_t num_tables)
      : num_fences_(num_tables),
        fences_(num_tables == 0
                    ? nullptr
                    : std::make_unique<std::shared_mutex[]>(num_tables)) {}

  RelationFences(const RelationFences&) = delete;
  RelationFences& operator=(const RelationFences&) = delete;

  size_t num_fences() const { return num_fences_; }
  std::shared_mutex& fence(size_t i) {
    KWSDBG_CHECK(i < num_fences_) << "fence index " << i << " out of range";
    return fences_[i];
  }
  std::shared_mutex& index_gate() { return index_gate_; }

  /// Relation-mask bit for a catalog index. Catalogs wider than 63 tables
  /// share the catch-all bit 63 (conservative: such verdicts evict on any
  /// write to a high-index table, never go stale).
  static constexpr uint64_t BitFor(size_t catalog_index) {
    return uint64_t{1} << (catalog_index < 63 ? catalog_index : 63);
  }

 private:
  size_t num_fences_;
  std::unique_ptr<std::shared_mutex[]> fences_;
  std::shared_mutex index_gate_;
};

/// Shared hold over the relations in `rel_mask` plus the index gate, for the
/// scope of one evaluation. Bit 63 set means "some table with catalog index
/// >= 63": all high fences are taken, conservatively. A null `fences` makes
/// this a no-op (single-threaded callers pay nothing).
class RelationReadGuard {
 public:
  /// Mask that locks every fence — for whole-database reads (sampling).
  static constexpr uint64_t kAllRelations = ~uint64_t{0};

  RelationReadGuard(RelationFences* fences, uint64_t rel_mask)
      : fences_(fences) {
    if (fences_ == nullptr) return;
    const size_t n = fences_->num_fences();
    for (size_t i = 0; i < n && i < 63; ++i) {
      if (rel_mask & (uint64_t{1} << i)) {
        fences_->fence(i).lock_shared();
        held_.push_back(i);
      }
    }
    if (rel_mask & (uint64_t{1} << 63)) {
      for (size_t i = 63; i < n; ++i) {
        fences_->fence(i).lock_shared();
        held_.push_back(i);
      }
    }
    fences_->index_gate().lock_shared();
  }

  ~RelationReadGuard() {
    if (fences_ == nullptr) return;
    fences_->index_gate().unlock_shared();
    for (auto it = held_.rbegin(); it != held_.rend(); ++it) {
      fences_->fence(*it).unlock_shared();
    }
  }

  RelationReadGuard(const RelationReadGuard&) = delete;
  RelationReadGuard& operator=(const RelationReadGuard&) = delete;

 private:
  RelationFences* fences_;
  std::vector<size_t> held_;
};

/// Shared hold over the index gate alone — for readers that touch only the
/// shared InvertedIndex (Phase-1 keyword binding reads posting lists but no
/// table rows).
class IndexReadGuard {
 public:
  explicit IndexReadGuard(RelationFences* fences) : fences_(fences) {
    if (fences_ != nullptr) fences_->index_gate().lock_shared();
  }
  ~IndexReadGuard() {
    if (fences_ != nullptr) fences_->index_gate().unlock_shared();
  }
  IndexReadGuard(const IndexReadGuard&) = delete;
  IndexReadGuard& operator=(const IndexReadGuard&) = delete;

 private:
  RelationFences* fences_;
};

/// Exclusive hold for one mutation: the mutated relation's fence for the
/// whole scope, plus the index gate exclusively (taken in the same
/// fences-then-gate order readers use). The writer blocks only readers whose
/// mask includes this relation, and every reader's index reads happen-before
/// or happen-after the patch, never during.
class RelationWriteGuard {
 public:
  RelationWriteGuard(RelationFences* fences, size_t catalog_index)
      : fences_(fences) {
    if (fences_ == nullptr) return;
    catalog_index_ = catalog_index;
    fences_->fence(catalog_index_).lock();
    fences_->index_gate().lock();
  }

  ~RelationWriteGuard() {
    if (fences_ == nullptr) return;
    fences_->index_gate().unlock();
    fences_->fence(catalog_index_).unlock();
  }

  RelationWriteGuard(const RelationWriteGuard&) = delete;
  RelationWriteGuard& operator=(const RelationWriteGuard&) = delete;

 private:
  RelationFences* fences_;
  size_t catalog_index_ = 0;
};

}  // namespace kwsdbg

#endif  // KWSDBG_STORAGE_RELATION_FENCES_H_
