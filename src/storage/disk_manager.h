// Page-file disk manager for the out-of-core storage tier.
//
// A DiskManager owns one page file on disk: a flat sequence of fixed-size
// pages addressed by page id. Pages are handed out either singly (recycled
// through a free list) or as contiguous extents for payloads larger than one
// page. The file is a private spill file — it is created by this process and
// unlinked when the manager is destroyed; there is no cross-process format
// stability to maintain.
#ifndef KWSDBG_STORAGE_DISK_MANAGER_H_
#define KWSDBG_STORAGE_DISK_MANAGER_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace kwsdbg {

/// Cumulative I/O counters for one page file. `reads`/`writes` count pages,
/// not calls, so a 3-page extent read contributes 3.
struct DiskStats {
  size_t page_reads = 0;
  size_t page_writes = 0;
  size_t pages_allocated = 0;
  size_t pages_freed = 0;
};

class DiskManager {
 public:
  /// Default page size; override per-database with KWSDBG_PAGE_SIZE.
  static constexpr size_t kDefaultPageSize = 8192;
  /// Smallest page size we accept: the page header plus room for at least a
  /// handful of values. Guards against KWSDBG_PAGE_SIZE=1 footguns.
  static constexpr size_t kMinPageSize = 512;

  /// Creates (truncates) a page file at `path`. The file is removed again in
  /// the destructor.
  static StatusOr<std::unique_ptr<DiskManager>> Create(std::string path,
                                                       size_t page_size);

  /// Creates a page file with a unique name under `dir` (or the system temp
  /// directory when `dir` is empty).
  static StatusOr<std::unique_ptr<DiskManager>> CreateTemp(
      const std::string& dir, size_t page_size);

  ~DiskManager();
  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  size_t page_size() const { return page_size_; }
  const std::string& path() const { return path_; }
  uint64_t num_pages() const { return num_pages_; }
  const DiskStats& stats() const { return stats_; }

  /// Allocates `count` contiguous pages and returns the first page id.
  /// Single pages are recycled through the free list; larger extents are
  /// always appended at the end of the file (the free list holds single
  /// pages only, so contiguity is guaranteed).
  StatusOr<uint64_t> AllocatePages(size_t count);

  /// Returns pages [first, first + count) to the free list. The file is not
  /// shrunk; freed pages are reused by later single-page allocations.
  void FreePages(uint64_t first, size_t count);

  /// Reads `count` pages starting at `first` into `buf` (must hold
  /// count * page_size() bytes).
  Status ReadPages(uint64_t first, size_t count, char* buf);

  /// Writes `count` pages starting at `first` from `buf`.
  Status WritePages(uint64_t first, size_t count, const char* buf);

 private:
  DiskManager(std::string path, std::FILE* file, size_t page_size)
      : path_(std::move(path)), file_(file), page_size_(page_size) {}

  std::string path_;
  std::FILE* file_ = nullptr;
  size_t page_size_;
  uint64_t num_pages_ = 0;
  std::vector<uint64_t> free_pages_;
  DiskStats stats_;
};

}  // namespace kwsdbg

#endif  // KWSDBG_STORAGE_DISK_MANAGER_H_
