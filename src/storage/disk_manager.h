// Page-file disk manager for the out-of-core storage tier.
//
// A DiskManager owns one page file on disk: a flat sequence of fixed-size
// pages addressed by page id. Pages are handed out either singly (recycled
// through a free list) or as contiguous extents for payloads larger than one
// page. Two lifetimes exist:
//
//   * Create / CreateTemp — a private spill file, unlinked when the manager
//     is destroyed; no cross-process format to maintain.
//   * Open — a persistent page file (checkpoint/restore, durable spill):
//     the file survives the manager, page count is adopted from the file
//     size, and Sync() makes writes crash-durable.
//
// All I/O is fd-based with EINTR and short-transfer retries; fsync and
// close failures surface as typed statuses instead of vanishing (an EIO at
// close is the kernel reporting that an earlier buffered write was lost).
#ifndef KWSDBG_STORAGE_DISK_MANAGER_H_
#define KWSDBG_STORAGE_DISK_MANAGER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace kwsdbg {

/// Cumulative I/O counters for one page file. `reads`/`writes` count pages,
/// not calls, so a 3-page extent read contributes 3.
struct DiskStats {
  size_t page_reads = 0;
  size_t page_writes = 0;
  size_t pages_allocated = 0;
  size_t pages_freed = 0;
  size_t syncs = 0;
};

class DiskManager {
 public:
  /// Default page size; override per-database with KWSDBG_PAGE_SIZE.
  static constexpr size_t kDefaultPageSize = 8192;
  /// Smallest page size we accept: the page header plus room for at least a
  /// handful of values. Guards against KWSDBG_PAGE_SIZE=1 footguns.
  static constexpr size_t kMinPageSize = 512;

  /// Creates (truncates) a page file at `path`. The file is removed again in
  /// the destructor.
  static StatusOr<std::unique_ptr<DiskManager>> Create(std::string path,
                                                       size_t page_size);

  /// Creates a page file with a unique name under `dir` (or the system temp
  /// directory when `dir` is empty).
  static StatusOr<std::unique_ptr<DiskManager>> CreateTemp(
      const std::string& dir, size_t page_size);

  /// Persistent mode: opens (creating if absent) a page file that is NOT
  /// unlinked on destruction. The page count is adopted from the file size
  /// (rounded up, so a torn tail page stays addressable); the free list
  /// starts empty — freed pages from a prior incarnation are leaked, which
  /// is conservative but never corrupting.
  static StatusOr<std::unique_ptr<DiskManager>> Open(std::string path,
                                                     size_t page_size);

  ~DiskManager();
  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  size_t page_size() const { return page_size_; }
  const std::string& path() const { return path_; }
  uint64_t num_pages() const { return num_pages_; }
  bool persistent() const { return persistent_; }
  const DiskStats& stats() const { return stats_; }

  /// Allocates `count` contiguous pages and returns the first page id.
  /// Single pages are recycled through the free list; larger extents are
  /// always appended at the end of the file (the free list holds single
  /// pages only, so contiguity is guaranteed).
  StatusOr<uint64_t> AllocatePages(size_t count);

  /// Returns pages [first, first + count) to the free list. The file is not
  /// shrunk; freed pages are reused by later single-page allocations.
  void FreePages(uint64_t first, size_t count);

  /// Reads `count` pages starting at `first` into `buf` (must hold
  /// count * page_size() bytes). Pages allocated but never written read
  /// back as zeroes, matching what a sparse file would return.
  Status ReadPages(uint64_t first, size_t count, char* buf);

  /// Writes `count` pages starting at `first` from `buf`.
  Status WritePages(uint64_t first, size_t count, const char* buf);

  /// fdatasync: everything written so far survives a crash after this
  /// returns OK. Fault point: storage.disk.sync.
  Status Sync();

  /// Explicitly closes the file, surfacing deferred write-back errors that
  /// the destructor could only swallow. Further I/O fails typed.
  Status Close();

 private:
  DiskManager(std::string path, int fd, size_t page_size, bool persistent)
      : path_(std::move(path)),
        fd_(fd),
        page_size_(page_size),
        persistent_(persistent) {}

  std::string path_;
  int fd_ = -1;
  size_t page_size_;
  bool persistent_ = false;
  uint64_t num_pages_ = 0;
  std::vector<uint64_t> free_pages_;
  DiskStats stats_;
};

/// Crash-leak janitor: deletes `kwsdbg_spill_<pid>_*.pages` files in `dir`
/// whose owning process is gone (a crash never runs the unlinking
/// destructor). Files of live processes — including this one — are left
/// alone. Returns the number of files removed; an absent `dir` counts as
/// zero, not an error.
StatusOr<size_t> SweepStaleSpillFiles(const std::string& dir);

}  // namespace kwsdbg

#endif  // KWSDBG_STORAGE_DISK_MANAGER_H_
