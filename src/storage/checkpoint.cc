#include "storage/checkpoint.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string_view>

#include "common/fault_injector.h"
#include "common/hash.h"
#include "storage/io_util.h"

namespace kwsdbg {

namespace {

constexpr uint32_t kCheckpointMagic = 0x50484B43u;  // 'CKHP'
constexpr uint32_t kCheckpointVersion = 1;
constexpr size_t kFrameHeaderSize = 8;
// Rows are encoded in bounded chunks so neither writer nor reader holds a
// second full copy of a large table in one string.
constexpr size_t kRowsPerChunk = 4096;

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}
void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

class Reader {
 public:
  Reader(const char* data, size_t size) : data_(data), size_(size) {}

  bool ReadU8(uint8_t* v) { return ReadRaw(v, 1); }
  bool ReadU32(uint32_t* v) { return ReadRaw(v, 4); }
  bool ReadU64(uint64_t* v) { return ReadRaw(v, 8); }
  bool ReadString(std::string* v) {
    uint32_t len;
    if (!ReadU32(&len) || size_ - pos_ < len) return false;
    v->assign(data_ + pos_, len);
    pos_ += len;
    return true;
  }
  bool ReadBytes(const char** p, size_t n) {
    if (size_ - pos_ < n) return false;
    *p = data_ + pos_;
    pos_ += n;
    return true;
  }
  bool AtEnd() const { return pos_ == size_; }

 private:
  bool ReadRaw(void* v, size_t n) {
    if (size_ - pos_ < n) return false;
    std::memcpy(v, data_ + pos_, n);
    pos_ += n;
    return true;
  }
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

void AppendFrame(std::string* out, const std::string& payload) {
  const uint32_t len = static_cast<uint32_t>(payload.size());
  const uint32_t checksum = Checksum32(payload.data(), payload.size());
  out->append(reinterpret_cast<const char*>(&len), 4);
  out->append(reinterpret_cast<const char*>(&checksum), 4);
  out->append(payload);
}

/// Extracts the next checksummed frame; kDataLoss on any mismatch (a
/// renamed checkpoint has no legitimate torn state).
Status NextFrame(const std::string& bytes, size_t* pos,
                 std::string_view* payload) {
  if (bytes.size() - *pos < kFrameHeaderSize) {
    return Status::DataLoss("checkpoint truncated at offset " +
                            std::to_string(*pos));
  }
  uint32_t len, checksum;
  std::memcpy(&len, bytes.data() + *pos, 4);
  std::memcpy(&checksum, bytes.data() + *pos + 4, 4);
  if (bytes.size() - *pos - kFrameHeaderSize < len) {
    return Status::DataLoss("checkpoint section overruns the file");
  }
  const char* data = bytes.data() + *pos + kFrameHeaderSize;
  if (Checksum32(data, len) != checksum) {
    return Status::DataLoss("checkpoint section checksum mismatch at offset " +
                            std::to_string(*pos));
  }
  *payload = std::string_view(data, len);
  *pos += kFrameHeaderSize + len;
  return Status::OK();
}

std::string EncodeHeader(const Database& db, uint64_t covered_seq,
                         const CheckpointIndexInfo& index_info) {
  std::string out;
  PutU32(&out, kCheckpointMagic);
  PutU32(&out, kCheckpointVersion);
  PutU64(&out, covered_seq);
  PutU64(&out, db.epoch());
  PutU8(&out, index_info.present ? 1 : 0);
  PutU64(&out, index_info.num_terms);
  PutU64(&out, index_info.num_postings);
  PutU64(&out, index_info.dict_checksum);
  PutU32(&out, static_cast<uint32_t>(db.num_tables()));
  return out;
}

Status DecodeHeader(std::string_view payload, CheckpointInfo* info,
                    uint32_t* num_tables) {
  Reader r(payload.data(), payload.size());
  uint32_t magic, version;
  uint8_t index_present;
  if (!r.ReadU32(&magic) || !r.ReadU32(&version) ||
      !r.ReadU64(&info->covered_seq) || !r.ReadU64(&info->db_epoch) ||
      !r.ReadU8(&index_present) || !r.ReadU64(&info->index.num_terms) ||
      !r.ReadU64(&info->index.num_postings) ||
      !r.ReadU64(&info->index.dict_checksum) || !r.ReadU32(num_tables)) {
    return Status::DataLoss("checkpoint header too short");
  }
  if (magic != kCheckpointMagic) {
    return Status::DataLoss("checkpoint has bad magic");
  }
  if (version != kCheckpointVersion) {
    return Status::DataLoss("checkpoint has unsupported version " +
                            std::to_string(version));
  }
  info->index.present = index_present != 0;
  return Status::OK();
}

std::string EncodeTableSection(const Table& t) {
  std::string out;
  PutString(&out, t.name());
  PutU32(&out, static_cast<uint32_t>(t.schema().num_columns()));
  for (const Column& col : t.schema().columns()) {
    PutString(&out, col.name);
    PutU8(&out, static_cast<uint8_t>(col.type));
  }
  PutU64(&out, t.data_epoch());
  const size_t num_rows = t.num_rows();
  PutU64(&out, num_rows);
  PutU64(&out, t.num_deleted());
  // Tombstone bitmap, bit i = row i deleted. Deleted rows were blanked to
  // NULLs at delete time, so the row payload needs no special casing.
  std::string bitmap((num_rows + 7) / 8, '\0');
  for (size_t i = 0; i < num_rows; ++i) {
    if (t.deleted(i)) bitmap[i / 8] |= static_cast<char>(1u << (i % 8));
  }
  PutString(&out, bitmap);
  const uint32_t num_chunks =
      static_cast<uint32_t>((num_rows + kRowsPerChunk - 1) / kRowsPerChunk);
  PutU32(&out, num_chunks);
  for (size_t first = 0; first < num_rows; first += kRowsPerChunk) {
    const size_t n = std::min(kRowsPerChunk, num_rows - first);
    std::vector<Tuple> chunk;
    chunk.reserve(n);
    // row(i) works resident and spilled alike (spilled goes through the
    // buffer pool), so a spilled database checkpoints without unspilling.
    for (size_t i = 0; i < n; ++i) chunk.push_back(t.row(first + i));
    std::string encoded;
    EncodeRows(chunk, &encoded);
    PutString(&out, encoded);
  }
  return out;
}

struct DecodedTable {
  CheckpointTableInfo info;
  Schema schema;
  std::vector<bool> tombstones;
  std::vector<Tuple> rows;  ///< Empty when metadata_only.
};

Status DecodeTableSection(std::string_view payload, bool metadata_only,
                          DecodedTable* out) {
  Reader r(payload.data(), payload.size());
  uint32_t num_columns;
  if (!r.ReadString(&out->info.name) || !r.ReadU32(&num_columns)) {
    return Status::DataLoss("checkpoint table section truncated");
  }
  std::vector<Column> columns;
  columns.reserve(num_columns);
  for (uint32_t i = 0; i < num_columns; ++i) {
    Column col;
    uint8_t type;
    if (!r.ReadString(&col.name) || !r.ReadU8(&type)) {
      return Status::DataLoss("checkpoint schema truncated");
    }
    if (type > static_cast<uint8_t>(DataType::kString)) {
      return Status::DataLoss("checkpoint schema has unknown column type " +
                              std::to_string(type));
    }
    col.type = static_cast<DataType>(type);
    columns.push_back(std::move(col));
  }
  out->schema = Schema(std::move(columns));
  std::string bitmap;
  uint32_t num_chunks;
  if (!r.ReadU64(&out->info.data_epoch) || !r.ReadU64(&out->info.num_rows) ||
      !r.ReadU64(&out->info.num_deleted) || !r.ReadString(&bitmap) ||
      !r.ReadU32(&num_chunks)) {
    return Status::DataLoss("checkpoint table section truncated");
  }
  if (bitmap.size() != (out->info.num_rows + 7) / 8) {
    return Status::DataLoss("checkpoint tombstone bitmap sized " +
                            std::to_string(bitmap.size()) + " for " +
                            std::to_string(out->info.num_rows) + " rows");
  }
  if (metadata_only) return Status::OK();
  out->tombstones.assign(out->info.num_rows, false);
  for (size_t i = 0; i < out->info.num_rows; ++i) {
    if (bitmap[i / 8] & (1u << (i % 8))) out->tombstones[i] = true;
  }
  out->rows.reserve(out->info.num_rows);
  for (uint32_t c = 0; c < num_chunks; ++c) {
    std::string encoded;
    if (!r.ReadString(&encoded)) {
      return Status::DataLoss("checkpoint row chunk truncated");
    }
    std::vector<Tuple> chunk;
    KWSDBG_RETURN_NOT_OK(DecodeRows(encoded.data(), encoded.size(), &chunk));
    for (Tuple& row : chunk) out->rows.push_back(std::move(row));
  }
  if (out->rows.size() != out->info.num_rows) {
    return Status::DataLoss("checkpoint holds " +
                            std::to_string(out->rows.size()) + " rows, " +
                            "header promised " +
                            std::to_string(out->info.num_rows));
  }
  return Status::OK();
}

Status ReadCheckpointImpl(const std::string& dir, bool metadata_only,
                          CheckpointInfo* info,
                          std::vector<DecodedTable>* tables) {
  const std::string path = dir + "/" + kCheckpointFileName;
  auto bytes_or = ReadFileToString(path);
  if (!bytes_or.ok()) return bytes_or.status();
  const std::string& bytes = *bytes_or;
  size_t pos = 0;
  std::string_view payload;
  KWSDBG_RETURN_NOT_OK(NextFrame(bytes, &pos, &payload));
  uint32_t num_tables = 0;
  KWSDBG_RETURN_NOT_OK(DecodeHeader(payload, info, &num_tables));
  for (uint32_t i = 0; i < num_tables; ++i) {
    KWSDBG_RETURN_NOT_OK(NextFrame(bytes, &pos, &payload));
    DecodedTable table;
    KWSDBG_RETURN_NOT_OK(DecodeTableSection(payload, metadata_only, &table));
    info->tables.push_back(table.info);
    if (tables != nullptr) tables->push_back(std::move(table));
  }
  if (pos != bytes.size()) {
    return Status::DataLoss("checkpoint has " +
                            std::to_string(bytes.size() - pos) +
                            " trailing bytes");
  }
  return Status::OK();
}

}  // namespace

Status WriteCheckpoint(const Database& db, const std::string& dir,
                       uint64_t covered_seq,
                       const CheckpointIndexInfo& index_info) {
  KWSDBG_FAULT_POINT("storage.checkpoint.write");
  std::string contents;
  AppendFrame(&contents, EncodeHeader(db, covered_seq, index_info));
  for (const std::string& name : db.TableNames()) {
    KWSDBG_ASSIGN_OR_RETURN(Table * t, db.GetTable(name));
    AppendFrame(&contents, EncodeTableSection(*t));
  }
  return AtomicWriteFile(dir + "/" + kCheckpointFileName, contents);
}

StatusOr<CheckpointInfo> ReadCheckpointInfo(const std::string& dir) {
  CheckpointInfo info;
  KWSDBG_RETURN_NOT_OK(
      ReadCheckpointImpl(dir, /*metadata_only=*/true, &info, nullptr));
  return info;
}

StatusOr<std::unique_ptr<Database>> RestoreCheckpoint(
    const std::string& dir, CheckpointInfo* info_out) {
  CheckpointInfo info;
  std::vector<DecodedTable> tables;
  KWSDBG_RETURN_NOT_OK(
      ReadCheckpointImpl(dir, /*metadata_only=*/false, &info, &tables));
  auto db = std::make_unique<Database>();
  for (DecodedTable& decoded : tables) {
    KWSDBG_ASSIGN_OR_RETURN(
        Table * t, db->CreateTable(decoded.info.name, decoded.schema));
    for (size_t i = 0; i < decoded.rows.size(); ++i) {
      t->AppendRowUnchecked(std::move(decoded.rows[i]));
      if (decoded.tombstones[i]) {
        // Cells were blanked before the snapshot; this just sets the bit.
        KWSDBG_RETURN_NOT_OK(t->DeleteRow(i));
      }
    }
  }
  // Epochs are stamped only after the whole catalog exists: CreateTable's
  // catalog bump touches EVERY table's data epoch, so stamping inside the
  // loop above would let table N+1's creation clobber table N's epoch.
  for (const DecodedTable& decoded : tables) {
    db->FindTable(decoded.info.name)
        ->RestoreDataEpoch(decoded.info.data_epoch);
  }
  db->RestoreEpoch(info.db_epoch);
  if (info_out != nullptr) *info_out = std::move(info);
  return db;
}

Status Database::Checkpoint(const std::string& dir,
                            uint64_t covered_seq) const {
  return WriteCheckpoint(*this, dir, covered_seq);
}

StatusOr<std::unique_ptr<Database>> Database::Recover(
    const std::string& dir) {
  KWSDBG_ASSIGN_OR_RETURN(std::unique_ptr<Database> db,
                          RestoreCheckpoint(dir));
  // A crash never runs DiskManager's unlinking destructor, so spill page
  // files from the dead incarnation pile up in the spill dir. Sweep them
  // now that we know we are the successor. Best-effort: a sweep failure
  // must not fail an otherwise clean recovery.
  const char* spill_dir = std::getenv("KWSDBG_SPILL_DIR");
  std::error_code ec;
  const std::string sweep_dir =
      (spill_dir != nullptr && spill_dir[0] != '\0')
          ? std::string(spill_dir)
          : std::filesystem::temp_directory_path(ec).string();
  if (!ec) SweepStaleSpillFiles(sweep_dir);
  return db;
}

}  // namespace kwsdbg
