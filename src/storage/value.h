// Runtime-typed cell values for the in-memory relational engine.
#ifndef KWSDBG_STORAGE_VALUE_H_
#define KWSDBG_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace kwsdbg {

/// Column data types supported by the engine. The paper's workload only needs
/// integers (surrogate keys / foreign keys), doubles (e.g. prices), and text.
enum class DataType { kInt64, kDouble, kString };

/// Returns "INT" / "DOUBLE" / "TEXT".
const char* DataTypeToString(DataType t);

/// A nullable, runtime-typed value. Null is represented by monostate; typed
/// accessors have the type as a precondition (checked in debug builds).
class Value {
 public:
  /// Constructs NULL.
  Value() : v_(std::monostate{}) {}
  explicit Value(int64_t i) : v_(i) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(std::string s) : v_(std::move(s)) {}
  explicit Value(const char* s) : v_(std::string(s)) {}

  static Value Null() { return Value(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }

  int64_t AsInt() const { return std::get<int64_t>(v_); }
  double AsDouble() const { return std::get<double>(v_); }
  const std::string& AsString() const { return std::get<std::string>(v_); }

  /// SQL-style equality used by join predicates: NULL equals nothing
  /// (including NULL). Cross-type comparison between int and double compares
  /// numerically; other cross-type comparisons are false.
  bool SqlEquals(const Value& other) const;

  /// Exact structural equality (NULL == NULL here) — used by tests and
  /// container keys, not by query predicates.
  bool operator==(const Value& other) const { return v_ == other.v_; }

  /// Total order used by ORDER BY: NULL first, then numbers (int and double
  /// compared numerically), then strings. Returns <0, 0, >0.
  int Compare(const Value& other) const;

  /// Renders the value for display; NULL renders as "NULL".
  std::string ToString() const;

  /// A hash consistent with operator==.
  size_t Hash() const { return static_cast<size_t>(Hash64()); }

  /// Deterministic 64-bit hash consistent with operator== (structural:
  /// int64 5 and double 5.0 are distinct), computed directly over the raw
  /// cell bytes — a splitmix64 finalizer for inline numerics, FNV-1a over
  /// the character data for strings — with the variant alternative folded
  /// in as a type tag. No materialization, no std::hash indirection; this
  /// is the probe-engine key (sql/flat_row_index.h), so it is stable
  /// across runs and platforms.
  uint64_t Hash64() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> v_;
};

}  // namespace kwsdbg

#endif  // KWSDBG_STORAGE_VALUE_H_
