#include "storage/csv.h"

#include <charconv>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/fault_injector.h"
#include "common/string_util.h"

namespace kwsdbg {

namespace {

bool NeedsQuoting(const std::string& s) {
  return s.find_first_of(",\"\n\r") != std::string::npos || s.empty();
}

std::string QuoteField(const std::string& s) {
  if (!NeedsQuoting(s)) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

/// Truncates a line for inclusion in an error message (corrupt inputs can
/// be arbitrarily long; errors should not be).
std::string Excerpt(const std::string& line) {
  constexpr size_t kMax = 60;
  if (line.size() <= kMax) return line;
  return line.substr(0, kMax) + "...";
}

Status ParseErrorAt(size_t lineno, const std::string& what,
                    const std::string& line) {
  return Status::ParseError("CSV line " + std::to_string(lineno) + ": " +
                            what + " in: " + Excerpt(line));
}

/// Splits one CSV record (already read as a full line; embedded newlines in
/// quoted fields are not supported by this reader) into raw fields, tracking
/// which fields were quoted so "" (quoted empty) can be told apart from an
/// empty (NULL) field. Strict about structure: unterminated quotes, text
/// after a closing quote, quotes opening mid-field, and embedded NUL bytes
/// are all typed ParseErrors naming the offending line.
Status ParseCsvLine(const std::string& line, size_t lineno,
                    std::vector<std::string>* fields,
                    std::vector<bool>* quoted) {
  if (line.find('\0') != std::string::npos) {
    return ParseErrorAt(lineno, "embedded NUL byte", line);
  }
  fields->clear();
  quoted->clear();
  std::string cur;
  bool in_quotes = false;
  bool was_quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      if (was_quoted) {
        // `"a"b` — a closed quoted field followed by more content.
        return ParseErrorAt(lineno, "text after closing quote", line);
      }
      if (!cur.empty()) {
        // `ab"cd` — the writer always quotes fields containing quotes, so
        // a bare quote mid-field is corrupt input, not a literal.
        return ParseErrorAt(lineno, "quote opening mid-field", line);
      }
      in_quotes = true;
      was_quoted = true;
    } else if (c == ',') {
      fields->push_back(std::move(cur));
      quoted->push_back(was_quoted);
      cur.clear();
      was_quoted = false;
    } else {
      if (was_quoted) {
        return ParseErrorAt(lineno, "text after closing quote", line);
      }
      cur += c;
    }
  }
  if (in_quotes) return ParseErrorAt(lineno, "unterminated quote", line);
  fields->push_back(std::move(cur));
  quoted->push_back(was_quoted);
  return Status::OK();
}

/// Whole-field integer parse: rejects trailing garbage ("12abc") and
/// overflow, which std::stoll would silently truncate or accept.
StatusOr<int64_t> ParseInt64Field(const std::string& s) {
  int64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return Status::ParseError("bad INT '" + s + "'");
  }
  return v;
}

/// Whole-field double parse with the same strictness.
StatusOr<double> ParseDoubleField(const std::string& s) {
  if (s.empty()) return Status::ParseError("bad DOUBLE ''");
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) {
    return Status::ParseError("bad DOUBLE '" + s + "'");
  }
  return v;
}

StatusOr<DataType> ParseDataType(const std::string& s) {
  if (s == "INT") return DataType::kInt64;
  if (s == "DOUBLE") return DataType::kDouble;
  if (s == "TEXT") return DataType::kString;
  return Status::ParseError("unknown data type '" + s + "'");
}

}  // namespace

Status WriteTableCsv(const Table& table, std::ostream* out) {
  const Schema& schema = table.schema();
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    if (i > 0) *out << ",";
    *out << QuoteField(schema.column(i).name + ":" +
                       DataTypeToString(schema.column(i).type));
  }
  *out << "\n";
  // Row-by-row (not rows()): spilled tables only expose paged access.
  for (size_t r = 0; r < table.num_rows(); ++r) {
    const Tuple& row = table.row(r);
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) *out << ",";
      if (row[i].is_null()) continue;  // NULL: empty unquoted field
      if (row[i].is_string()) {
        // Quote even quiet strings so empty-string != NULL on read-back.
        const std::string& s = row[i].AsString();
        *out << (s.empty() ? "\"\"" : QuoteField(s));
      } else {
        *out << row[i].ToString();
      }
    }
    *out << "\n";
  }
  if (!*out) return Status::Internal("I/O error writing CSV");
  return Status::OK();
}

Status WriteTableCsvFile(const Table& table, const std::string& path) {
  std::ofstream f(path);
  if (!f) return Status::Internal("cannot open '" + path + "' for writing");
  return WriteTableCsv(table, &f);
}

StatusOr<Table> ReadTableCsv(const std::string& name, std::istream* in) {
  std::string line;
  size_t lineno = 1;
  if (!std::getline(*in, line)) {
    return Status::ParseError("empty CSV input");
  }
  if (!line.empty() && line.back() == '\r') line.pop_back();
  std::vector<std::string> fields;
  std::vector<bool> quoted;
  KWSDBG_RETURN_NOT_OK(ParseCsvLine(line, lineno, &fields, &quoted));

  std::vector<Column> columns;
  for (const std::string& f : fields) {
    size_t colon = f.rfind(':');
    if (colon == std::string::npos) {
      return Status::ParseError("header cell '" + f + "' lacks :TYPE suffix");
    }
    if (colon == 0) {
      return Status::ParseError("header cell '" + f + "' has no column name");
    }
    KWSDBG_ASSIGN_OR_RETURN(DataType t, ParseDataType(f.substr(colon + 1)));
    columns.push_back({f.substr(0, colon), t});
  }
  Table table(name, Schema(std::move(columns)));

  while (std::getline(*in, line)) {
    ++lineno;
    // Storage fault point: a CSV bulk load is the repro for "source went
    // away mid-load" — the injected status aborts the load typed, with
    // nothing half-appended past this row.
    KWSDBG_FAULT_POINT("storage.csv.load");
    if (!line.empty() && line.back() == '\r') line.pop_back();
    // An empty line is a record (a single NULL field) only for single-column
    // tables; otherwise it can only be a stray separator.
    if (line.empty() && table.schema().num_columns() != 1) continue;
    KWSDBG_RETURN_NOT_OK(ParseCsvLine(line, lineno, &fields, &quoted));
    if (fields.size() != table.schema().num_columns()) {
      return ParseErrorAt(lineno,
                          "row arity mismatch (want " +
                              std::to_string(table.schema().num_columns()) +
                              " fields, got " + std::to_string(fields.size()) +
                              ")",
                          line);
    }
    Tuple row;
    row.reserve(fields.size());
    for (size_t i = 0; i < fields.size(); ++i) {
      const DataType t = table.schema().column(i).type;
      if (fields[i].empty() && !quoted[i]) {
        row.emplace_back();  // NULL
      } else if (t == DataType::kInt64) {
        auto v = ParseInt64Field(fields[i]);
        if (!v.ok()) {
          return ParseErrorAt(lineno, v.status().message(), line);
        }
        row.emplace_back(Value(*v));
      } else if (t == DataType::kDouble) {
        auto v = ParseDoubleField(fields[i]);
        if (!v.ok()) {
          return ParseErrorAt(lineno, v.status().message(), line);
        }
        row.emplace_back(Value(*v));
      } else {
        row.emplace_back(Value(fields[i]));
      }
    }
    KWSDBG_RETURN_NOT_OK(table.AppendRow(std::move(row)));
  }
  return table;
}

StatusOr<Table> ReadTableCsvFile(const std::string& name,
                                 const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::NotFound("cannot open '" + path + "' for reading");
  return ReadTableCsv(name, &f);
}

}  // namespace kwsdbg
