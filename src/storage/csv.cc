#include "storage/csv.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace kwsdbg {

namespace {

bool NeedsQuoting(const std::string& s) {
  return s.find_first_of(",\"\n\r") != std::string::npos || s.empty();
}

std::string QuoteField(const std::string& s) {
  if (!NeedsQuoting(s)) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

/// Splits one CSV record (already read as a full line; embedded newlines in
/// quoted fields are not supported by this reader) into raw fields, tracking
/// which fields were quoted so "" (quoted empty) can be told apart from an
/// empty (NULL) field.
Status ParseCsvLine(const std::string& line, std::vector<std::string>* fields,
                    std::vector<bool>* quoted) {
  fields->clear();
  quoted->clear();
  std::string cur;
  bool in_quotes = false;
  bool was_quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"' && cur.empty() && !was_quoted) {
      in_quotes = true;
      was_quoted = true;
    } else if (c == ',') {
      fields->push_back(std::move(cur));
      quoted->push_back(was_quoted);
      cur.clear();
      was_quoted = false;
    } else {
      cur += c;
    }
  }
  if (in_quotes) return Status::ParseError("unterminated quote in: " + line);
  fields->push_back(std::move(cur));
  quoted->push_back(was_quoted);
  return Status::OK();
}

StatusOr<DataType> ParseDataType(const std::string& s) {
  if (s == "INT") return DataType::kInt64;
  if (s == "DOUBLE") return DataType::kDouble;
  if (s == "TEXT") return DataType::kString;
  return Status::ParseError("unknown data type '" + s + "'");
}

}  // namespace

Status WriteTableCsv(const Table& table, std::ostream* out) {
  const Schema& schema = table.schema();
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    if (i > 0) *out << ",";
    *out << QuoteField(schema.column(i).name + ":" +
                       DataTypeToString(schema.column(i).type));
  }
  *out << "\n";
  for (const Tuple& row : table.rows()) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) *out << ",";
      if (row[i].is_null()) continue;  // NULL: empty unquoted field
      if (row[i].is_string()) {
        // Quote even quiet strings so empty-string != NULL on read-back.
        const std::string& s = row[i].AsString();
        *out << (s.empty() ? "\"\"" : QuoteField(s));
      } else {
        *out << row[i].ToString();
      }
    }
    *out << "\n";
  }
  if (!*out) return Status::Internal("I/O error writing CSV");
  return Status::OK();
}

Status WriteTableCsvFile(const Table& table, const std::string& path) {
  std::ofstream f(path);
  if (!f) return Status::Internal("cannot open '" + path + "' for writing");
  return WriteTableCsv(table, &f);
}

StatusOr<Table> ReadTableCsv(const std::string& name, std::istream* in) {
  std::string line;
  if (!std::getline(*in, line)) {
    return Status::ParseError("empty CSV input");
  }
  if (!line.empty() && line.back() == '\r') line.pop_back();
  std::vector<std::string> fields;
  std::vector<bool> quoted;
  KWSDBG_RETURN_NOT_OK(ParseCsvLine(line, &fields, &quoted));

  std::vector<Column> columns;
  for (const std::string& f : fields) {
    size_t colon = f.rfind(':');
    if (colon == std::string::npos) {
      return Status::ParseError("header cell '" + f + "' lacks :TYPE suffix");
    }
    KWSDBG_ASSIGN_OR_RETURN(DataType t, ParseDataType(f.substr(colon + 1)));
    columns.push_back({f.substr(0, colon), t});
  }
  Table table(name, Schema(std::move(columns)));

  while (std::getline(*in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    // An empty line is a record (a single NULL field) only for single-column
    // tables; otherwise it can only be a stray separator.
    if (line.empty() && table.schema().num_columns() != 1) continue;
    KWSDBG_RETURN_NOT_OK(ParseCsvLine(line, &fields, &quoted));
    if (fields.size() != table.schema().num_columns()) {
      return Status::ParseError("row arity mismatch in: " + line);
    }
    Tuple row;
    row.reserve(fields.size());
    for (size_t i = 0; i < fields.size(); ++i) {
      const DataType t = table.schema().column(i).type;
      if (fields[i].empty() && !quoted[i]) {
        row.emplace_back();  // NULL
      } else if (t == DataType::kInt64) {
        try {
          row.emplace_back(Value(static_cast<int64_t>(std::stoll(fields[i]))));
        } catch (...) {
          return Status::ParseError("bad INT '" + fields[i] + "'");
        }
      } else if (t == DataType::kDouble) {
        try {
          row.emplace_back(Value(std::stod(fields[i])));
        } catch (...) {
          return Status::ParseError("bad DOUBLE '" + fields[i] + "'");
        }
      } else {
        row.emplace_back(Value(fields[i]));
      }
    }
    KWSDBG_RETURN_NOT_OK(table.AppendRow(std::move(row)));
  }
  return table;
}

StatusOr<Table> ReadTableCsvFile(const std::string& name,
                                 const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::NotFound("cannot open '" + path + "' for reading");
  return ReadTableCsv(name, &f);
}

}  // namespace kwsdbg
