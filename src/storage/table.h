// Row-store table, resident or spilled to the out-of-core tier.
#ifndef KWSDBG_STORAGE_TABLE_H_
#define KWSDBG_STORAGE_TABLE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/schema.h"

namespace kwsdbg {

/// One contiguous run of pages holding the encoded rows
/// [first_row, first_row + num_rows) of a spilled table.
struct PageExtent {
  uint64_t first_page = 0;
  uint32_t num_pages = 0;
  uint32_t first_row = 0;
  uint32_t num_rows = 0;
};

/// Row id returned by Compact() for rows that no longer exist.
inline constexpr uint32_t kDeletedRow = 0xFFFFFFFFu;

/// A named relation: a schema plus row-major tuple storage. Row ids are the
/// positions in insertion order and are stable until Compact().
///
/// Live mutations: AppendRow grows the table (resident tables append to
/// `rows_`; spilled tables append to a resident `tail_rows_` delta that
/// follows the on-disk extents in row-id space). DeleteRow tombstones a row
/// and blanks every cell to NULL, so scans and filters that skip NULLs stop
/// seeing it without shifting row ids; Compact() reclaims tombstoned rows
/// and returns the old->new row-id remap. Each content mutation must be
/// followed by BumpDataEpoch() (LiveMutator does this) so epoch-stamped
/// caches over this table rebuild or patch.
///
/// A table starts resident (all rows in `rows_`). `Spill()` moves the rows
/// into page extents on a DiskManager, after which `row()`/`at()` go through
/// a BufferPool and return references into the extent's resident frame —
/// valid under the pool's LRU reference-stability contract (see
/// buffer_pool.h). Spilled tables reject `rows()`; a failed page read aborts
/// via KWSDBG_CHECK because `at()` has no error channel.
class Table : public PageWriter {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  // Movable (builders return tables by value). The atomic epoch forces
  // these to be spelled out; moving a table concurrently with readers or a
  // mutator was never supported, so a plain load/store is correct.
  Table(Table&& other) noexcept
      : name_(std::move(other.name_)),
        schema_(std::move(other.schema_)),
        rows_(std::move(other.rows_)),
        deleted_(std::move(other.deleted_)),
        deleted_count_(other.deleted_count_),
        data_epoch_(other.data_epoch_.load(std::memory_order_relaxed)),
        catalog_index_(other.catalog_index_),
        spilled_(other.spilled_),
        pool_(other.pool_),
        disk_(other.disk_),
        spilled_rows_(other.spilled_rows_),
        on_disk_bytes_(other.on_disk_bytes_),
        extents_(std::move(other.extents_)),
        tail_rows_(std::move(other.tail_rows_)),
        page_to_extent_(std::move(other.page_to_extent_)) {}
  Table& operator=(Table&& other) noexcept {
    if (this == &other) return *this;
    name_ = std::move(other.name_);
    schema_ = std::move(other.schema_);
    rows_ = std::move(other.rows_);
    deleted_ = std::move(other.deleted_);
    deleted_count_ = other.deleted_count_;
    data_epoch_.store(other.data_epoch_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    catalog_index_ = other.catalog_index_;
    spilled_ = other.spilled_;
    pool_ = other.pool_;
    disk_ = other.disk_;
    spilled_rows_ = other.spilled_rows_;
    on_disk_bytes_ = other.on_disk_bytes_;
    extents_ = std::move(other.extents_);
    tail_rows_ = std::move(other.tail_rows_);
    page_to_extent_ = std::move(other.page_to_extent_);
    return *this;
  }

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_rows() const {
    return spilled_ ? spilled_rows_ + tail_rows_.size() : rows_.size();
  }

  /// Rows minus tombstones — the count aliveness shortcuts must use.
  size_t live_rows() const { return num_rows() - deleted_count_; }
  size_t num_deleted() const { return deleted_count_; }
  bool deleted(size_t row) const {
    return row < deleted_.size() && deleted_[row];
  }
  double deleted_fraction() const {
    const size_t n = num_rows();
    return n == 0 ? 0.0 : static_cast<double>(deleted_count_) / n;
  }

  /// Appends a row. Errors if arity or any value type mismatches the schema
  /// (NULL is allowed in any column). Works on spilled tables too: the row
  /// lands in the resident tail delta after the spilled extents.
  Status AppendRow(Tuple row);

  /// Appends without validation — for bulk loads from trusted generators.
  void AppendRowUnchecked(Tuple row) {
    if (spilled_) {
      tail_rows_.push_back(std::move(row));
    } else {
      rows_.push_back(std::move(row));
    }
  }

  /// Tombstones `row`: marks it deleted and blanks every cell to NULL, so
  /// NULL-skipping scans, filters, and index builds stop seeing it while row
  /// ids stay stable. Errors if out of range or already deleted. Callers
  /// maintaining indexes must read the row *before* deleting it.
  Status DeleteRow(size_t row);

  const Tuple& row(size_t i) const {
    if (!spilled_) return rows_[i];
    return SpilledRow(i);
  }

  /// Resident-only bulk accessor; spilled tables must be read row-by-row.
  const std::vector<Tuple>& rows() const {
    KWSDBG_CHECK(!spilled_) << "rows() on spilled table '" << name_ << "'";
    return rows_;
  }

  /// Value at (row, column); precondition: in range.
  const Value& at(size_t row, size_t col) const {
    if (!spilled_) return rows_[row][col];
    return SpilledRow(row)[col];
  }

  /// Convenience: value by column name. Errors if the column is absent.
  StatusOr<Value> ValueByName(size_t row, const std::string& col) const;

  /// Overwrites one cell (type-checked like AppendRow). Any indexes built
  /// over this table must be patched or rebuilt by the caller afterwards.
  /// Works in both modes; on a spilled table the dirty frame is written back
  /// on eviction. Errors on tombstoned rows.
  Status SetValue(size_t row, size_t col, Value value);

  /// Rewrites the table without its tombstoned rows, renumbering the
  /// survivors densely. Returns the old->new row-id remap (kDeletedRow for
  /// removed rows). Spilled tables are re-packed into fresh extents (the
  /// shared buffer pool is flushed and dropped first, so other tables'
  /// frames go cold but stay correct). Bumps the data epoch.
  StatusOr<std::vector<uint32_t>> Compact();

  /// Estimated in-memory footprint in bytes (for reporting and for sizing
  /// memory budgets). Counts container slack (`rows_` capacity, per-row
  /// capacity) and heap string payloads; inline (SSO) strings add nothing.
  size_t EstimateBytes() const;

  /// Moves all rows into page extents on `disk`, serving reads through
  /// `pool` from now on. No-op error if already spilled.
  Status Spill(BufferPool* pool, DiskManager* disk);

  bool spilled() const { return spilled_; }
  size_t on_disk_bytes() const { return on_disk_bytes_; }
  const std::vector<PageExtent>& extents() const { return extents_; }

  /// Monotonic per-table content version. LiveMutator bumps it after every
  /// mutation (and Compact() bumps it itself); Database::BumpEpoch() bumps
  /// every table's data epoch so legacy full invalidation still works.
  /// Epoch-stamped caches (flat/row indexes, executor session caches,
  /// verdict relation-set fingerprints) compare against this to invalidate
  /// only structures over the mutated table.
  uint64_t data_epoch() const {
    return data_epoch_.load(std::memory_order_acquire);
  }
  void BumpDataEpoch() { data_epoch_.fetch_add(1, std::memory_order_acq_rel); }

  /// Recovery-only: stamps the epoch captured by a checkpoint so verdicts
  /// and flat indexes keyed on (table, epoch) can never confuse pre- and
  /// post-recovery contents.
  void RestoreDataEpoch(uint64_t epoch) {
    data_epoch_.store(epoch, std::memory_order_release);
  }

  /// Position in the owning Database's creation order; assigned by
  /// Database::AddTable/CreateTable. Used as the relation bit in verdict
  /// relation masks. 0 for tables never added to a catalog.
  size_t catalog_index() const { return catalog_index_; }
  void set_catalog_index(size_t idx) { catalog_index_ = idx; }

  /// PageWriter: re-encodes a mutated extent. Rewrites in place when the
  /// rows still fit; otherwise allocates a fresh (larger) extent and frees
  /// the old pages.
  Status WriteBack(uint64_t first_page,
                   const std::vector<Tuple>& rows) override;

 private:
  const Tuple& SpilledRow(size_t i) const;
  const PageExtent& ExtentForRow(size_t row) const;
  /// Encodes `rows` into fresh page extents (consumes the tuples). Used by
  /// Spill() for the initial pack and by Compact() for the re-pack.
  Status PackRows(std::vector<Tuple>* rows);

  std::string name_;
  Schema schema_;
  std::vector<Tuple> rows_;

  // Tombstones: deleted_[row] is true for blanked rows awaiting compaction.
  // Sized lazily (empty until the first delete).
  std::vector<bool> deleted_;
  size_t deleted_count_ = 0;

  std::atomic<uint64_t> data_epoch_{0};
  size_t catalog_index_ = 0;

  // Spill state. `extents_` is sorted by first_row for binary search;
  // `page_to_extent_` maps an extent's first page back to its index for
  // write-back. `tail_rows_` holds rows appended after the spill; row id
  // spilled_rows_ + i maps to tail_rows_[i].
  bool spilled_ = false;
  BufferPool* pool_ = nullptr;
  DiskManager* disk_ = nullptr;
  size_t spilled_rows_ = 0;
  size_t on_disk_bytes_ = 0;
  std::vector<PageExtent> extents_;
  std::vector<Tuple> tail_rows_;
  std::unordered_map<uint64_t, size_t> page_to_extent_;
};

}  // namespace kwsdbg

#endif  // KWSDBG_STORAGE_TABLE_H_
