// Row-store table, resident or spilled to the out-of-core tier.
#ifndef KWSDBG_STORAGE_TABLE_H_
#define KWSDBG_STORAGE_TABLE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/schema.h"

namespace kwsdbg {

/// One contiguous run of pages holding the encoded rows
/// [first_row, first_row + num_rows) of a spilled table.
struct PageExtent {
  uint64_t first_page = 0;
  uint32_t num_pages = 0;
  uint32_t first_row = 0;
  uint32_t num_rows = 0;
};

/// A named relation: a schema plus row-major tuple storage. Rows are
/// append-only (the workloads here never update in place); row ids are the
/// positions in insertion order.
///
/// A table starts resident (all rows in `rows_`). `Spill()` moves the rows
/// into page extents on a DiskManager, after which `row()`/`at()` go through
/// a BufferPool and return references into the extent's resident frame —
/// valid under the pool's LRU reference-stability contract (see
/// buffer_pool.h). Spilled tables reject appends (live growth is a separate
/// roadmap item) and `rows()`; a failed page read aborts via KWSDBG_CHECK
/// because `at()` has no error channel.
class Table : public PageWriter {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return spilled_ ? spilled_rows_ : rows_.size(); }

  /// Appends a row. Errors if arity or any value type mismatches the schema
  /// (NULL is allowed in any column).
  Status AppendRow(Tuple row);

  /// Appends without validation — for bulk loads from trusted generators.
  void AppendRowUnchecked(Tuple row) {
    KWSDBG_CHECK(!spilled_) << "append to spilled table '" << name_ << "'";
    rows_.push_back(std::move(row));
  }

  const Tuple& row(size_t i) const {
    if (!spilled_) return rows_[i];
    return SpilledRow(i);
  }

  /// Resident-only bulk accessor; spilled tables must be read row-by-row.
  const std::vector<Tuple>& rows() const {
    KWSDBG_CHECK(!spilled_) << "rows() on spilled table '" << name_ << "'";
    return rows_;
  }

  /// Value at (row, column); precondition: in range.
  const Value& at(size_t row, size_t col) const {
    if (!spilled_) return rows_[row][col];
    return SpilledRow(row)[col];
  }

  /// Convenience: value by column name. Errors if the column is absent.
  StatusOr<Value> ValueByName(size_t row, const std::string& col) const;

  /// Overwrites one cell (type-checked like AppendRow). Any indexes built
  /// over this table must be rebuilt by the caller afterwards. Works in both
  /// modes; on a spilled table the dirty frame is written back on eviction.
  Status SetValue(size_t row, size_t col, Value value);

  /// Estimated in-memory footprint in bytes (for reporting and for sizing
  /// memory budgets). Counts container slack (`rows_` capacity, per-row
  /// capacity) and heap string payloads; inline (SSO) strings add nothing.
  size_t EstimateBytes() const;

  /// Moves all rows into page extents on `disk`, serving reads through
  /// `pool` from now on. No-op error if already spilled.
  Status Spill(BufferPool* pool, DiskManager* disk);

  bool spilled() const { return spilled_; }
  size_t on_disk_bytes() const { return on_disk_bytes_; }
  const std::vector<PageExtent>& extents() const { return extents_; }

  /// PageWriter: re-encodes a mutated extent. Rewrites in place when the
  /// rows still fit; otherwise allocates a fresh (larger) extent and frees
  /// the old pages.
  Status WriteBack(uint64_t first_page,
                   const std::vector<Tuple>& rows) override;

 private:
  const Tuple& SpilledRow(size_t i) const;
  const PageExtent& ExtentForRow(size_t row) const;

  std::string name_;
  Schema schema_;
  std::vector<Tuple> rows_;

  // Spill state. `extents_` is sorted by first_row for binary search;
  // `page_to_extent_` maps an extent's first page back to its index for
  // write-back.
  bool spilled_ = false;
  BufferPool* pool_ = nullptr;
  DiskManager* disk_ = nullptr;
  size_t spilled_rows_ = 0;
  size_t on_disk_bytes_ = 0;
  std::vector<PageExtent> extents_;
  std::unordered_map<uint64_t, size_t> page_to_extent_;
};

}  // namespace kwsdbg

#endif  // KWSDBG_STORAGE_TABLE_H_
