// In-memory row-store table.
#ifndef KWSDBG_STORAGE_TABLE_H_
#define KWSDBG_STORAGE_TABLE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/schema.h"

namespace kwsdbg {

/// A named relation: a schema plus row-major tuple storage. Rows are
/// append-only (the workloads here never update in place); row ids are the
/// positions in insertion order.
class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }

  /// Appends a row. Errors if arity or any value type mismatches the schema
  /// (NULL is allowed in any column).
  Status AppendRow(Tuple row);

  /// Appends without validation — for bulk loads from trusted generators.
  void AppendRowUnchecked(Tuple row) { rows_.push_back(std::move(row)); }

  const Tuple& row(size_t i) const { return rows_[i]; }
  const std::vector<Tuple>& rows() const { return rows_; }

  /// Value at (row, column); precondition: in range.
  const Value& at(size_t row, size_t col) const { return rows_[row][col]; }

  /// Convenience: value by column name. Errors if the column is absent.
  StatusOr<Value> ValueByName(size_t row, const std::string& col) const;

  /// Overwrites one cell (type-checked like AppendRow). Any indexes built
  /// over this table must be rebuilt by the caller afterwards.
  Status SetValue(size_t row, size_t col, Value value);

  /// Estimated in-memory footprint in bytes (for reporting).
  size_t EstimateBytes() const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<Tuple> rows_;
};

}  // namespace kwsdbg

#endif  // KWSDBG_STORAGE_TABLE_H_
