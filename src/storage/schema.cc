#include "storage/schema.h"

#include "common/logging.h"

namespace kwsdbg {

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    auto [it, inserted] = index_.emplace(columns_[i].name, i);
    KWSDBG_CHECK(inserted) << "duplicate column name: " << columns_[i].name;
  }
}

StatusOr<size_t> Schema::ColumnIndex(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("no column named '" + name + "'");
  }
  return it->second;
}

bool Schema::HasColumn(const std::string& name) const {
  return index_.count(name) > 0;
}

std::vector<size_t> Schema::TextColumnIndices() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].type == DataType::kString) out.push_back(i);
  }
  return out;
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ":";
    out += DataTypeToString(columns_[i].type);
  }
  return out;
}

}  // namespace kwsdbg
