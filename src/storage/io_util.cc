#include "storage/io_util.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace kwsdbg {

namespace {

std::string ErrnoMessage(const char* what, const std::string& detail) {
  std::string out = what;
  out += ": ";
  out += detail;
  out += ": ";
  out += std::strerror(errno);
  return out;
}

}  // namespace

StatusOr<int> OpenFd(const std::string& path, int flags, mode_t mode,
                     const char* what) {
  int fd;
  do {
    fd = ::open(path.c_str(), flags, mode);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound(ErrnoMessage(what, path));
    }
    return Status::Internal(ErrnoMessage(what, "open " + path));
  }
  return fd;
}

Status WriteFull(int fd, const void* data, size_t len, const char* what) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = ::write(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(ErrnoMessage(what, "write"));
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status WriteFullAt(int fd, const void* data, size_t len, off_t offset,
                   const char* what) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = ::pwrite(fd, p, len, offset);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(ErrnoMessage(what, "pwrite"));
    }
    p += n;
    len -= static_cast<size_t>(n);
    offset += n;
  }
  return Status::OK();
}

Status ReadFullAt(int fd, void* data, size_t len, off_t offset,
                  size_t* bytes_read, const char* what) {
  char* p = static_cast<char*>(data);
  size_t total = 0;
  while (total < len) {
    const ssize_t n = ::pread(fd, p + total, len - total, offset + total);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(ErrnoMessage(what, "pread"));
    }
    if (n == 0) break;  // EOF
    total += static_cast<size_t>(n);
  }
  *bytes_read = total;
  return Status::OK();
}

Status SyncFd(int fd, const char* what) {
  int rc;
  do {
    rc = ::fdatasync(fd);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return Status::Internal(ErrnoMessage(what, "fdatasync"));
  return Status::OK();
}

Status SyncDir(const std::string& dir, const char* what) {
  KWSDBG_ASSIGN_OR_RETURN(int fd,
                          OpenFd(dir, O_RDONLY | O_DIRECTORY, 0, what));
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc < 0 && errno == EINTR);
  const int saved_errno = errno;
  int dummy = fd;
  const Status close_st = CloseFd(&dummy, what);
  if (rc < 0) {
    errno = saved_errno;
    return Status::Internal(ErrnoMessage(what, "fsync dir " + dir));
  }
  return close_st;
}

Status CloseFd(int* fd, const char* what) {
  if (*fd < 0) return Status::OK();
  const int rc = ::close(*fd);
  *fd = -1;
  // POSIX leaves the fd state unspecified after EINTR; Linux always closes
  // it, so treat EINTR as success rather than double-closing.
  if (rc < 0 && errno != EINTR) {
    return Status::Internal(ErrnoMessage(what, "close"));
  }
  return Status::OK();
}

std::string DirnameOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  KWSDBG_ASSIGN_OR_RETURN(
      int fd, OpenFd(path, O_RDONLY, 0, "ReadFileToString"));
  std::string out;
  char buf[1 << 16];
  Status st = Status::OK();
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      st = Status::Internal(ErrnoMessage("ReadFileToString", "read " + path));
      break;
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  KWSDBG_RETURN_NOT_OK(CloseFd(&fd, "ReadFileToString"));
  if (!st.ok()) return st;
  return out;
}

Status AtomicWriteFile(const std::string& path, const std::string& contents) {
  const std::string tmp = path + ".tmp";
  KWSDBG_ASSIGN_OR_RETURN(
      int fd, OpenFd(tmp, O_WRONLY | O_CREAT | O_TRUNC, 0644,
                     "AtomicWriteFile"));
  Status st = WriteFull(fd, contents.data(), contents.size(),
                        "AtomicWriteFile");
  if (st.ok()) st = SyncFd(fd, "AtomicWriteFile");
  const Status close_st = CloseFd(&fd, "AtomicWriteFile");
  if (st.ok()) st = close_st;
  if (!st.ok()) {
    ::unlink(tmp.c_str());
    return st;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status rename_st =
        Status::Internal(ErrnoMessage("AtomicWriteFile", "rename " + tmp));
    ::unlink(tmp.c_str());
    return rename_st;
  }
  return SyncDir(DirnameOf(path), "AtomicWriteFile");
}

}  // namespace kwsdbg
