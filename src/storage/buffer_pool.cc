#include "storage/buffer_pool.h"

#include <cstring>

#include "common/logging.h"

namespace kwsdbg {

namespace {

constexpr uint8_t kTagNull = 0;
constexpr uint8_t kTagInt = 1;
constexpr uint8_t kTagDouble = 2;
constexpr uint8_t kTagString = 3;

void PutU16(std::string* out, uint16_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
bool GetPod(const char* data, size_t size, size_t* pos, T* out) {
  if (*pos + sizeof(T) > size) return false;
  std::memcpy(out, data + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

}  // namespace

size_t EncodedRowSize(const Tuple& row) {
  size_t bytes = sizeof(uint16_t);  // arity
  for (const Value& v : row) {
    bytes += 1;  // tag
    if (v.is_int() || v.is_double()) {
      bytes += 8;
    } else if (v.is_string()) {
      bytes += sizeof(uint32_t) + v.AsString().size();
    }
  }
  return bytes;
}

size_t EncodedRowsSize(const std::vector<Tuple>& rows) {
  size_t bytes = sizeof(uint32_t);  // row count
  for (const Tuple& r : rows) bytes += EncodedRowSize(r);
  return bytes;
}

void EncodeRows(const std::vector<Tuple>& rows, std::string* out) {
  PutU32(out, static_cast<uint32_t>(rows.size()));
  for (const Tuple& r : rows) {
    PutU16(out, static_cast<uint16_t>(r.size()));
    for (const Value& v : r) {
      if (v.is_null()) {
        out->push_back(static_cast<char>(kTagNull));
      } else if (v.is_int()) {
        out->push_back(static_cast<char>(kTagInt));
        PutU64(out, static_cast<uint64_t>(v.AsInt()));
      } else if (v.is_double()) {
        out->push_back(static_cast<char>(kTagDouble));
        double d = v.AsDouble();
        uint64_t bits;
        std::memcpy(&bits, &d, sizeof(bits));
        PutU64(out, bits);
      } else {
        const std::string& s = v.AsString();
        out->push_back(static_cast<char>(kTagString));
        PutU32(out, static_cast<uint32_t>(s.size()));
        out->append(s);
      }
    }
  }
}

Status DecodeRows(const char* data, size_t size, std::vector<Tuple>* out) {
  size_t pos = 0;
  uint32_t num_rows = 0;
  if (!GetPod(data, size, &pos, &num_rows)) {
    return Status::ParseError("spill page truncated: missing row count");
  }
  out->clear();
  out->reserve(num_rows);
  for (uint32_t i = 0; i < num_rows; ++i) {
    uint16_t arity = 0;
    if (!GetPod(data, size, &pos, &arity)) {
      return Status::ParseError("spill page truncated: missing arity");
    }
    Tuple row;
    row.reserve(arity);
    for (uint16_t c = 0; c < arity; ++c) {
      if (pos >= size) {
        return Status::ParseError("spill page truncated: missing tag");
      }
      uint8_t tag = static_cast<uint8_t>(data[pos++]);
      switch (tag) {
        case kTagNull:
          row.push_back(Value::Null());
          break;
        case kTagInt: {
          uint64_t bits = 0;
          if (!GetPod(data, size, &pos, &bits)) {
            return Status::ParseError("spill page truncated: int payload");
          }
          row.push_back(Value(static_cast<int64_t>(bits)));
          break;
        }
        case kTagDouble: {
          uint64_t bits = 0;
          if (!GetPod(data, size, &pos, &bits)) {
            return Status::ParseError("spill page truncated: double payload");
          }
          double d;
          std::memcpy(&d, &bits, sizeof(d));
          row.push_back(Value(d));
          break;
        }
        case kTagString: {
          uint32_t len = 0;
          if (!GetPod(data, size, &pos, &len)) {
            return Status::ParseError("spill page truncated: string length");
          }
          if (pos + len > size) {
            return Status::ParseError("spill page truncated: string payload");
          }
          row.push_back(Value(std::string(data + pos, len)));
          pos += len;
          break;
        }
        default:
          return Status::ParseError("spill page corrupt: unknown value tag " +
                                    std::to_string(tag));
      }
    }
    out->push_back(std::move(row));
  }
  return Status::OK();
}

BufferPool::BufferPool(DiskManager* disk, size_t capacity)
    : disk_(disk), capacity_(capacity < kMinCapacity ? kMinCapacity
                                                     : capacity) {}

BufferPool::~BufferPool() {
  // Dirty frames are intentionally not written back here: the pool dies with
  // its database, whose spill file is removed anyway.
}

StatusOr<BufferPool::Frame*> BufferPool::FetchFrame(uint64_t first_page,
                                                    uint32_t num_pages,
                                                    PageWriter* writer) {
  auto it = frames_.find(first_page);
  if (it != frames_.end()) {
    Frame* f = it->second.get();
    lru_.splice(lru_.end(), lru_, f->lru_pos);  // move to MRU position
    ++stats_.page_hits;
    return f;
  }
  ++stats_.page_misses;
  while (frames_.size() >= capacity_) {
    KWSDBG_RETURN_NOT_OK(EvictOne());
  }
  io_buf_.resize(static_cast<size_t>(num_pages) * disk_->page_size());
  KWSDBG_RETURN_NOT_OK(disk_->ReadPages(first_page, num_pages, io_buf_.data()));
  auto frame = std::make_unique<Frame>();
  frame->first_page = first_page;
  frame->num_pages = num_pages;
  frame->writer = writer;
  KWSDBG_RETURN_NOT_OK(
      DecodeRows(io_buf_.data(), io_buf_.size(), &frame->rows));
  Frame* f = frame.get();
  lru_.push_back(first_page);
  f->lru_pos = std::prev(lru_.end());
  frames_.emplace(first_page, std::move(frame));
  return f;
}

Status BufferPool::EvictOne() {
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    Frame* f = frames_.at(*it).get();
    if (f->pins > 0) continue;
    if (f->dirty) {
      KWSDBG_RETURN_NOT_OK(f->writer->WriteBack(f->first_page, f->rows));
      ++stats_.write_backs;
    }
    frames_.erase(f->first_page);
    lru_.erase(it);
    ++stats_.page_evictions;
    return Status::OK();
  }
  return Status::ResourceExhausted(
      "buffer pool exhausted: all " + std::to_string(capacity_) +
      " frames are pinned");
}

StatusOr<const std::vector<Tuple>*> BufferPool::Fetch(uint64_t first_page,
                                                      uint32_t num_pages,
                                                      PageWriter* writer) {
  KWSDBG_ASSIGN_OR_RETURN(Frame * f,
                          FetchFrame(first_page, num_pages, writer));
  return const_cast<const std::vector<Tuple>*>(&f->rows);
}

StatusOr<std::vector<Tuple>*> BufferPool::FetchMutable(uint64_t first_page,
                                                       uint32_t num_pages,
                                                       PageWriter* writer) {
  KWSDBG_ASSIGN_OR_RETURN(Frame * f,
                          FetchFrame(first_page, num_pages, writer));
  f->dirty = true;
  return &f->rows;
}

void BufferPool::Pin(uint64_t first_page) {
  auto it = frames_.find(first_page);
  if (it != frames_.end()) ++it->second->pins;
}

void BufferPool::Unpin(uint64_t first_page) {
  auto it = frames_.find(first_page);
  if (it != frames_.end() && it->second->pins > 0) --it->second->pins;
}

Status BufferPool::FlushAll() {
  for (auto& [page, frame] : frames_) {
    if (!frame->dirty) continue;
    KWSDBG_RETURN_NOT_OK(frame->writer->WriteBack(frame->first_page,
                                                  frame->rows));
    frame->dirty = false;
    ++stats_.write_backs;
  }
  return Status::OK();
}

void BufferPool::DropAll() {
  frames_.clear();
  lru_.clear();
}

void BufferPool::Drop(uint64_t first_page) {
  auto it = frames_.find(first_page);
  if (it == frames_.end()) return;
  lru_.erase(it->second->lru_pos);
  frames_.erase(it);
}

}  // namespace kwsdbg
