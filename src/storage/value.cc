#include "storage/value.h"

#include <functional>

#include "common/hash.h"

namespace kwsdbg {

const char* DataTypeToString(DataType t) {
  switch (t) {
    case DataType::kInt64:
      return "INT";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "TEXT";
  }
  return "?";
}

bool Value::SqlEquals(const Value& other) const {
  if (is_null() || other.is_null()) return false;
  if (is_int() && other.is_int()) return AsInt() == other.AsInt();
  if (is_double() && other.is_double()) return AsDouble() == other.AsDouble();
  if (is_int() && other.is_double()) {
    return static_cast<double>(AsInt()) == other.AsDouble();
  }
  if (is_double() && other.is_int()) {
    return AsDouble() == static_cast<double>(other.AsInt());
  }
  if (is_string() && other.is_string()) return AsString() == other.AsString();
  return false;
}

int Value::Compare(const Value& other) const {
  auto rank = [](const Value& v) {
    if (v.is_null()) return 0;
    if (v.is_int() || v.is_double()) return 1;
    return 2;
  };
  const int ra = rank(*this), rb = rank(other);
  if (ra != rb) return ra < rb ? -1 : 1;
  if (ra == 0) return 0;  // both NULL
  if (ra == 1) {
    const double a = is_int() ? static_cast<double>(AsInt()) : AsDouble();
    const double b =
        other.is_int() ? static_cast<double>(other.AsInt()) : other.AsDouble();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  return AsString().compare(other.AsString()) < 0
             ? -1
             : (AsString() == other.AsString() ? 0 : 1);
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int()) return std::to_string(AsInt());
  if (is_double()) {
    std::string s = std::to_string(AsDouble());
    // Trim trailing zeros but keep one decimal digit.
    size_t dot = s.find('.');
    if (dot != std::string::npos) {
      size_t last = s.find_last_not_of('0');
      if (last == dot) last = dot + 1;
      s.erase(last + 1);
    }
    return s;
  }
  return AsString();
}

size_t Value::Hash() const {
  size_t seed = v_.index();
  if (is_int()) {
    HashCombine(&seed, std::hash<int64_t>{}(AsInt()));
  } else if (is_double()) {
    HashCombine(&seed, std::hash<double>{}(AsDouble()));
  } else if (is_string()) {
    HashCombine(&seed, std::hash<std::string>{}(AsString()));
  }
  return seed;
}

}  // namespace kwsdbg
