#include "storage/value.h"

#include <functional>

#include "common/hash.h"

namespace kwsdbg {

const char* DataTypeToString(DataType t) {
  switch (t) {
    case DataType::kInt64:
      return "INT";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "TEXT";
  }
  return "?";
}

bool Value::SqlEquals(const Value& other) const {
  if (is_null() || other.is_null()) return false;
  if (is_int() && other.is_int()) return AsInt() == other.AsInt();
  if (is_double() && other.is_double()) return AsDouble() == other.AsDouble();
  if (is_int() && other.is_double()) {
    return static_cast<double>(AsInt()) == other.AsDouble();
  }
  if (is_double() && other.is_int()) {
    return AsDouble() == static_cast<double>(other.AsInt());
  }
  if (is_string() && other.is_string()) return AsString() == other.AsString();
  return false;
}

int Value::Compare(const Value& other) const {
  auto rank = [](const Value& v) {
    if (v.is_null()) return 0;
    if (v.is_int() || v.is_double()) return 1;
    return 2;
  };
  const int ra = rank(*this), rb = rank(other);
  if (ra != rb) return ra < rb ? -1 : 1;
  if (ra == 0) return 0;  // both NULL
  if (ra == 1) {
    const double a = is_int() ? static_cast<double>(AsInt()) : AsDouble();
    const double b =
        other.is_int() ? static_cast<double>(other.AsInt()) : other.AsDouble();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  return AsString().compare(other.AsString()) < 0
             ? -1
             : (AsString() == other.AsString() ? 0 : 1);
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int()) return std::to_string(AsInt());
  if (is_double()) {
    std::string s = std::to_string(AsDouble());
    // Trim trailing zeros but keep one decimal digit.
    size_t dot = s.find('.');
    if (dot != std::string::npos) {
      size_t last = s.find_last_not_of('0');
      if (last == dot) last = dot + 1;
      s.erase(last + 1);
    }
    return s;
  }
  return AsString();
}

namespace {

/// splitmix64 finalizer: full-avalanche mix of one 64-bit word.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// FNV-1a over raw bytes, then mixed — cheap, deterministic, and reads the
/// string storage directly.
inline uint64_t HashBytes(const char* data, size_t size, uint64_t seed) {
  uint64_t h = 0xCBF29CE484222325ull ^ seed;
  for (size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001B3ull;
  }
  return Mix64(h);
}

}  // namespace

uint64_t Value::Hash64() const {
  // The variant alternative index is the type tag, so values that are not
  // operator== equal (e.g. int64 5 vs double 5.0) hash independently.
  const uint64_t tag = static_cast<uint64_t>(v_.index()) << 56;
  if (is_int()) {
    return Mix64(tag ^ static_cast<uint64_t>(AsInt()));
  }
  if (is_double()) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(double));
    // -0.0 == 0.0 under operator==, so they must hash alike: canonicalize
    // the zero before taking the bit pattern.
    const double raw = AsDouble();
    const double d = raw == 0.0 ? 0.0 : raw;
    __builtin_memcpy(&bits, &d, sizeof(bits));
    return Mix64(tag ^ bits);
  }
  if (is_string()) {
    const std::string& s = AsString();
    return HashBytes(s.data(), s.size(), tag);
  }
  return Mix64(tag);  // NULL
}

}  // namespace kwsdbg
