// CSV import/export for tables, so generated datasets can be persisted and
// inspected with standard tools.
#ifndef KWSDBG_STORAGE_CSV_H_
#define KWSDBG_STORAGE_CSV_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "storage/table.h"

namespace kwsdbg {

/// Writes `table` as RFC-4180-style CSV with a header row of
/// "name:TYPE" cells. NULL cells are written as empty unquoted fields.
Status WriteTableCsv(const Table& table, std::ostream* out);

/// Convenience: write to a file path.
Status WriteTableCsvFile(const Table& table, const std::string& path);

/// Reads a table previously written by WriteTableCsv. The table name is
/// supplied by the caller (CSV has no name row).
StatusOr<Table> ReadTableCsv(const std::string& name, std::istream* in);

/// Convenience: read from a file path.
StatusOr<Table> ReadTableCsvFile(const std::string& name,
                                 const std::string& path);

}  // namespace kwsdbg

#endif  // KWSDBG_STORAGE_CSV_H_
