#include "storage/disk_manager.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "common/fault_injector.h"
#include "common/logging.h"

namespace kwsdbg {

StatusOr<std::unique_ptr<DiskManager>> DiskManager::Create(std::string path,
                                                           size_t page_size) {
  if (page_size < kMinPageSize) {
    return Status::InvalidArgument("page size " + std::to_string(page_size) +
                                   " below minimum " +
                                   std::to_string(kMinPageSize));
  }
  std::FILE* file = std::fopen(path.c_str(), "wb+");
  if (file == nullptr) {
    return Status::Internal("cannot create page file at " + path);
  }
  return std::unique_ptr<DiskManager>(
      new DiskManager(std::move(path), file, page_size));
}

StatusOr<std::unique_ptr<DiskManager>> DiskManager::CreateTemp(
    const std::string& dir, size_t page_size) {
  std::error_code ec;
  std::filesystem::path base =
      dir.empty() ? std::filesystem::temp_directory_path(ec)
                  : std::filesystem::path(dir);
  if (ec) base = ".";
  // Unique per process + per instance; two databases spilled by the same
  // process must not collide.
  static unsigned counter = 0;
  std::string name = "kwsdbg_spill_" + std::to_string(::getpid()) + "_" +
                     std::to_string(counter++) + ".pages";
  return Create((base / name).string(), page_size);
}

DiskManager::~DiskManager() {
  if (file_ != nullptr) std::fclose(file_);
  std::error_code ec;
  std::filesystem::remove(path_, ec);  // best effort: it is our temp file
}

StatusOr<uint64_t> DiskManager::AllocatePages(size_t count) {
  if (count == 0) return Status::InvalidArgument("allocating 0 pages");
  if (count == 1 && !free_pages_.empty()) {
    uint64_t page = free_pages_.back();
    free_pages_.pop_back();
    ++stats_.pages_allocated;
    return page;
  }
  uint64_t first = num_pages_;
  num_pages_ += count;
  stats_.pages_allocated += count;
  return first;
}

void DiskManager::FreePages(uint64_t first, size_t count) {
  for (size_t i = 0; i < count; ++i) free_pages_.push_back(first + i);
  stats_.pages_freed += count;
}

Status DiskManager::ReadPages(uint64_t first, size_t count, char* buf) {
  if (first + count > num_pages_) {
    return Status::OutOfRange("page read past end of file");
  }
  if (FaultPointFires("storage.disk.read")) {
    return Status::Unavailable("injected fault: storage.disk.read");
  }
  if (std::fseek(file_, static_cast<long>(first * page_size_), SEEK_SET) !=
      0) {
    return Status::Internal("seek failed in page file " + path_);
  }
  size_t want = count * page_size_;
  size_t got = std::fread(buf, 1, want, file_);
  if (got < want) {
    // Pages at the tail that were allocated but never written read back as
    // zeroes, matching what a sparse file would return.
    std::fill(buf + got, buf + want, '\0');
  }
  stats_.page_reads += count;
  return Status::OK();
}

Status DiskManager::WritePages(uint64_t first, size_t count,
                               const char* buf) {
  if (first + count > num_pages_) {
    return Status::OutOfRange("page write past end of file");
  }
  if (FaultPointFires("storage.disk.write")) {
    return Status::Unavailable("injected fault: storage.disk.write");
  }
  if (std::fseek(file_, static_cast<long>(first * page_size_), SEEK_SET) !=
      0) {
    return Status::Internal("seek failed in page file " + path_);
  }
  size_t want = count * page_size_;
  if (std::fwrite(buf, 1, want, file_) != want) {
    return Status::Internal("short write in page file " + path_);
  }
  stats_.page_writes += count;
  return Status::OK();
}

}  // namespace kwsdbg
