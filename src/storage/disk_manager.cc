#include "storage/disk_manager.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <filesystem>
#include <string_view>

#include "common/fault_injector.h"
#include "storage/io_util.h"

namespace kwsdbg {

namespace {

Status CheckPageSize(size_t page_size) {
  if (page_size < DiskManager::kMinPageSize) {
    return Status::InvalidArgument("page size " + std::to_string(page_size) +
                                   " below minimum " +
                                   std::to_string(DiskManager::kMinPageSize));
  }
  return Status::OK();
}

}  // namespace

StatusOr<std::unique_ptr<DiskManager>> DiskManager::Create(std::string path,
                                                           size_t page_size) {
  KWSDBG_RETURN_NOT_OK(CheckPageSize(page_size));
  KWSDBG_ASSIGN_OR_RETURN(
      int fd, OpenFd(path, O_RDWR | O_CREAT | O_TRUNC, 0644,
                     "DiskManager::Create"));
  return std::unique_ptr<DiskManager>(
      new DiskManager(std::move(path), fd, page_size, /*persistent=*/false));
}

StatusOr<std::unique_ptr<DiskManager>> DiskManager::CreateTemp(
    const std::string& dir, size_t page_size) {
  std::error_code ec;
  std::filesystem::path base =
      dir.empty() ? std::filesystem::temp_directory_path(ec)
                  : std::filesystem::path(dir);
  if (ec) base = ".";
  // Unique per process + per instance; two databases spilled by the same
  // process must not collide. The pid in the name is what lets a later
  // incarnation recognize (and sweep) files orphaned by a crash — see
  // SweepStaleSpillFiles.
  static std::atomic<unsigned> counter{0};
  std::string name = "kwsdbg_spill_" + std::to_string(::getpid()) + "_" +
                     std::to_string(counter.fetch_add(1)) + ".pages";
  return Create((base / name).string(), page_size);
}

StatusOr<std::unique_ptr<DiskManager>> DiskManager::Open(std::string path,
                                                         size_t page_size) {
  KWSDBG_RETURN_NOT_OK(CheckPageSize(page_size));
  KWSDBG_ASSIGN_OR_RETURN(
      int fd, OpenFd(path, O_RDWR | O_CREAT, 0644, "DiskManager::Open"));
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    int doomed = fd;
    CloseFd(&doomed, "DiskManager::Open");
    return Status::Internal("DiskManager::Open: fstat " + path + " failed");
  }
  auto manager = std::unique_ptr<DiskManager>(
      new DiskManager(std::move(path), fd, page_size, /*persistent=*/true));
  manager->num_pages_ =
      (static_cast<uint64_t>(st.st_size) + page_size - 1) / page_size;
  return manager;
}

DiskManager::~DiskManager() {
  CloseFd(&fd_, "DiskManager::~DiskManager");  // best effort in a dtor
  if (!persistent_) {
    std::error_code ec;
    std::filesystem::remove(path_, ec);  // best effort: it is our temp file
  }
}

StatusOr<uint64_t> DiskManager::AllocatePages(size_t count) {
  if (count == 0) return Status::InvalidArgument("allocating 0 pages");
  if (count == 1 && !free_pages_.empty()) {
    uint64_t page = free_pages_.back();
    free_pages_.pop_back();
    ++stats_.pages_allocated;
    return page;
  }
  uint64_t first = num_pages_;
  num_pages_ += count;
  stats_.pages_allocated += count;
  return first;
}

void DiskManager::FreePages(uint64_t first, size_t count) {
  for (size_t i = 0; i < count; ++i) free_pages_.push_back(first + i);
  stats_.pages_freed += count;
}

Status DiskManager::ReadPages(uint64_t first, size_t count, char* buf) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("page file " + path_ + " is closed");
  }
  if (first + count > num_pages_) {
    return Status::OutOfRange("page read past end of file");
  }
  if (FaultPointFires("storage.disk.read")) {
    return Status::Unavailable("injected fault: storage.disk.read");
  }
  const size_t want = count * page_size_;
  size_t got = 0;
  KWSDBG_RETURN_NOT_OK(ReadFullAt(fd_, buf, want,
                                  static_cast<off_t>(first * page_size_),
                                  &got, "DiskManager::ReadPages"));
  if (got < want) {
    // Pages at the tail that were allocated but never written read back as
    // zeroes, matching what a sparse file would return.
    std::fill(buf + got, buf + want, '\0');
  }
  stats_.page_reads += count;
  return Status::OK();
}

Status DiskManager::WritePages(uint64_t first, size_t count,
                               const char* buf) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("page file " + path_ + " is closed");
  }
  if (first + count > num_pages_) {
    return Status::OutOfRange("page write past end of file");
  }
  if (FaultPointFires("storage.disk.write")) {
    return Status::Unavailable("injected fault: storage.disk.write");
  }
  KWSDBG_RETURN_NOT_OK(WriteFullAt(fd_, buf, count * page_size_,
                                   static_cast<off_t>(first * page_size_),
                                   "DiskManager::WritePages"));
  stats_.page_writes += count;
  return Status::OK();
}

Status DiskManager::Sync() {
  if (fd_ < 0) {
    return Status::FailedPrecondition("page file " + path_ + " is closed");
  }
  if (FaultPointFires("storage.disk.sync")) {
    return Status::Unavailable("injected fault: storage.disk.sync");
  }
  KWSDBG_RETURN_NOT_OK(SyncFd(fd_, "DiskManager::Sync"));
  ++stats_.syncs;
  return Status::OK();
}

Status DiskManager::Close() {
  if (fd_ < 0) return Status::OK();
  return CloseFd(&fd_, "DiskManager::Close");
}

StatusOr<size_t> SweepStaleSpillFiles(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::directory_iterator it(dir.empty() ? "." : dir, ec);
  if (ec) return size_t{0};  // no directory -> nothing orphaned in it
  constexpr std::string_view kPrefix = "kwsdbg_spill_";
  constexpr std::string_view kSuffix = ".pages";
  const pid_t self = ::getpid();
  size_t removed = 0;
  for (const fs::directory_entry& entry : it) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() <= kPrefix.size() + kSuffix.size() ||
        name.compare(0, kPrefix.size(), kPrefix) != 0 ||
        name.compare(name.size() - kSuffix.size(), kSuffix.size(),
                     kSuffix) != 0) {
      continue;
    }
    const size_t pid_end = name.find('_', kPrefix.size());
    if (pid_end == std::string::npos) continue;
    pid_t pid = 0;
    try {
      pid = static_cast<pid_t>(
          std::stol(name.substr(kPrefix.size(), pid_end - kPrefix.size())));
    } catch (...) {
      continue;  // not one of ours
    }
    if (pid == self) continue;
    // Signal 0 probes existence without delivering anything. EPERM means
    // the pid is alive but owned by someone else — leave its file alone.
    if (::kill(pid, 0) == 0 || errno != ESRCH) continue;
    if (fs::remove(entry.path(), ec) && !ec) ++removed;
  }
  return removed;
}

}  // namespace kwsdbg
