// Crash-consistent database snapshots, the companion of the WAL: a
// checkpoint captures every table (schema, rows, tombstone bitmap,
// per-table data epoch), the catalog epoch, the highest WAL seq the
// snapshot covers, and a fingerprint of the text-index term directory.
//
// The snapshot is one file, `<dir>/CHECKPOINT`, written tmp + fsync +
// rename + directory-fsync: after any crash the path holds either the
// previous complete snapshot or the new complete snapshot, never a torn
// one. Inside, the file is a sequence of checksummed length-prefixed
// sections (same framing as the WAL); any checksum mismatch on restore is
// kDataLoss — unlike a WAL tail, a renamed checkpoint has no legitimate
// torn state.
//
// Protocol with the WAL (see docs/architecture.md):
//   1. quiesce writers, 2. WriteCheckpoint(covered_seq = last applied seq),
//   3. WalWriter::Truncate(covered_seq). A crash between 2 and 3 is safe:
//   replay skips records with seq <= covered_seq.
//
// The text index itself is rebuilt from the restored tables on recovery
// (deterministic), so only its directory fingerprint is stored — recovery
// validates the rebuilt index against it and fails kDataLoss on mismatch.
#ifndef KWSDBG_STORAGE_CHECKPOINT_H_
#define KWSDBG_STORAGE_CHECKPOINT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/database.h"

namespace kwsdbg {

inline constexpr char kCheckpointFileName[] = "CHECKPOINT";

/// Fingerprint of the InvertedIndex term directory at checkpoint time.
/// Stored as plain numbers so the storage layer needs no text-layer
/// dependency; the service computes it from the live index and validates
/// the rebuilt index against it on recovery.
struct CheckpointIndexInfo {
  bool present = false;
  uint64_t num_terms = 0;
  uint64_t num_postings = 0;
  uint64_t dict_checksum = 0;  ///< Checksum64 over the sorted dictionary.
};

struct CheckpointTableInfo {
  std::string name;
  uint64_t data_epoch = 0;
  uint64_t num_rows = 0;
  uint64_t num_deleted = 0;
};

struct CheckpointInfo {
  uint64_t covered_seq = 0;  ///< WAL records <= this are in the snapshot.
  uint64_t db_epoch = 0;
  CheckpointIndexInfo index;
  std::vector<CheckpointTableInfo> tables;
};

/// Serializes `db` to `<dir>/CHECKPOINT` (crash-consistent replace). The
/// caller must exclude writers for the duration — LiveMutator mutations
/// racing the row scan would tear the snapshot. Fault point:
/// storage.checkpoint.write.
Status WriteCheckpoint(const Database& db, const std::string& dir,
                       uint64_t covered_seq,
                       const CheckpointIndexInfo& index_info = {});

/// Reads snapshot metadata (header + per-table sections, skipping row
/// payloads). kNotFound when no checkpoint exists in `dir`.
StatusOr<CheckpointInfo> ReadCheckpointInfo(const std::string& dir);

/// Rebuilds a resident Database from `<dir>/CHECKPOINT`: tables in catalog
/// order with row ids, tombstones, per-table data epochs, and the catalog
/// epoch exactly as captured. kNotFound when absent; kDataLoss on any
/// checksum or structural mismatch. `info_out` (optional) receives the
/// snapshot metadata, including covered_seq for WAL replay.
StatusOr<std::unique_ptr<Database>> RestoreCheckpoint(
    const std::string& dir, CheckpointInfo* info_out = nullptr);

}  // namespace kwsdbg

#endif  // KWSDBG_STORAGE_CHECKPOINT_H_
