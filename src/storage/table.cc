#include "storage/table.h"

#include <algorithm>

namespace kwsdbg {

namespace {
bool TypeMatches(const Value& v, DataType t) {
  if (v.is_null()) return true;
  switch (t) {
    case DataType::kInt64:
      return v.is_int();
    case DataType::kDouble:
      return v.is_double() || v.is_int();
    case DataType::kString:
      return v.is_string();
  }
  return false;
}
}  // namespace

Status Table::AppendRow(Tuple row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(schema_.num_columns()) + " for table " + name_);
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (!TypeMatches(row[i], schema_.column(i).type)) {
      return Status::InvalidArgument(
          "type mismatch in column '" + schema_.column(i).name +
          "' of table " + name_ + ": got " + row[i].ToString());
    }
  }
  AppendRowUnchecked(std::move(row));
  return Status::OK();
}

Status Table::DeleteRow(size_t row) {
  if (row >= num_rows()) {
    return Status::OutOfRange("row " + std::to_string(row) +
                              " out of range for table " + name_);
  }
  if (deleted(row)) {
    return Status::FailedPrecondition("row " + std::to_string(row) +
                                      " of table " + name_ +
                                      " is already deleted");
  }
  const size_t cols = schema_.num_columns();
  if (!spilled_) {
    for (size_t c = 0; c < cols; ++c) rows_[row][c] = Value::Null();
  } else if (row >= spilled_rows_) {
    Tuple& t = tail_rows_[row - spilled_rows_];
    for (size_t c = 0; c < cols; ++c) t[c] = Value::Null();
  } else {
    const PageExtent& ext = ExtentForRow(row);
    KWSDBG_ASSIGN_OR_RETURN(
        std::vector<Tuple> * frame_rows,
        pool_->FetchMutable(ext.first_page, ext.num_pages, this));
    Tuple& t = (*frame_rows)[row - ext.first_row];
    for (size_t c = 0; c < cols; ++c) t[c] = Value::Null();
  }
  if (deleted_.size() < num_rows()) deleted_.resize(num_rows(), false);
  deleted_[row] = true;
  ++deleted_count_;
  return Status::OK();
}

StatusOr<Value> Table::ValueByName(size_t row, const std::string& col) const {
  KWSDBG_ASSIGN_OR_RETURN(size_t idx, schema_.ColumnIndex(col));
  if (row >= num_rows()) {
    return Status::OutOfRange("row " + std::to_string(row) +
                              " out of range for table " + name_);
  }
  return at(row, idx);
}

Status Table::SetValue(size_t row, size_t col, Value value) {
  if (row >= num_rows() || col >= schema_.num_columns()) {
    return Status::OutOfRange("cell (" + std::to_string(row) + ", " +
                              std::to_string(col) + ") out of range");
  }
  if (deleted(row)) {
    return Status::FailedPrecondition("update of deleted row " +
                                      std::to_string(row) + " in table " +
                                      name_);
  }
  if (!TypeMatches(value, schema_.column(col).type)) {
    return Status::InvalidArgument("type mismatch in column '" +
                                   schema_.column(col).name + "'");
  }
  if (!spilled_) {
    rows_[row][col] = std::move(value);
    return Status::OK();
  }
  if (row >= spilled_rows_) {
    tail_rows_[row - spilled_rows_][col] = std::move(value);
    return Status::OK();
  }
  const PageExtent& ext = ExtentForRow(row);
  KWSDBG_ASSIGN_OR_RETURN(
      std::vector<Tuple> * frame_rows,
      pool_->FetchMutable(ext.first_page, ext.num_pages, this));
  (*frame_rows)[row - ext.first_row][col] = std::move(value);
  return Status::OK();
}

StatusOr<std::vector<uint32_t>> Table::Compact() {
  const size_t n = num_rows();
  std::vector<uint32_t> remap(n, kDeletedRow);
  if (!spilled_) {
    size_t out = 0;
    for (size_t i = 0; i < n; ++i) {
      if (deleted(i)) continue;
      remap[i] = static_cast<uint32_t>(out);
      if (out != i) rows_[out] = std::move(rows_[i]);
      ++out;
    }
    rows_.resize(out);
  } else {
    // Deep-copy the survivors out of the frames (each row() fetch may evict
    // the previous frame, so every tuple is copied before the next fetch),
    // then flush dirty frames while their pages still exist, drop the whole
    // pool (other tables' frames go cold but re-read correctly), free every
    // extent, and re-pack.
    std::vector<Tuple> live;
    live.reserve(live_rows());
    size_t out = 0;
    for (size_t i = 0; i < n; ++i) {
      if (deleted(i)) continue;
      remap[i] = static_cast<uint32_t>(out++);
      live.push_back(row(i));
    }
    KWSDBG_RETURN_NOT_OK(pool_->FlushAll());
    pool_->DropAll();
    for (const PageExtent& e : extents_) {
      disk_->FreePages(e.first_page, e.num_pages);
    }
    extents_.clear();
    page_to_extent_.clear();
    on_disk_bytes_ = 0;
    tail_rows_.clear();
    tail_rows_.shrink_to_fit();
    spilled_rows_ = live.size();
    KWSDBG_RETURN_NOT_OK(PackRows(&live));
  }
  deleted_.clear();
  deleted_count_ = 0;
  BumpDataEpoch();
  return remap;
}

size_t Table::EstimateBytes() const {
  // Count what the allocator actually holds: the row vector's full capacity
  // (not just its size), each tuple's capacity in Values, and only *heap*
  // string payloads — strings short enough for the small-string optimization
  // live inside sizeof(Value) and must not be double-counted.
  static const size_t kSsoCapacity = std::string().capacity();
  size_t bytes = sizeof(Table) + rows_.capacity() * sizeof(Tuple) +
                 tail_rows_.capacity() * sizeof(Tuple);
  auto count_rows = [&](const std::vector<Tuple>& rows) {
    for (const auto& r : rows) {
      bytes += r.capacity() * sizeof(Value);
      for (const auto& v : r) {
        if (v.is_string() && v.AsString().capacity() > kSsoCapacity) {
          bytes += v.AsString().capacity() + 1;  // +1: the NUL terminator
        }
      }
    }
  };
  count_rows(rows_);
  count_rows(tail_rows_);
  if (spilled_) {
    bytes += extents_.capacity() * sizeof(PageExtent) +
             page_to_extent_.size() * (sizeof(uint64_t) + sizeof(size_t));
  }
  return bytes;
}

Status Table::PackRows(std::vector<Tuple>* rows) {
  const size_t page_size = disk_->page_size();
  std::string buf;
  std::vector<Tuple> chunk;
  size_t first_row = 0;
  size_t chunk_bytes = sizeof(uint32_t);  // row-count header

  auto flush_chunk = [&]() -> Status {
    if (chunk.empty()) return Status::OK();
    size_t num_pages = (chunk_bytes + page_size - 1) / page_size;
    KWSDBG_ASSIGN_OR_RETURN(uint64_t first_page,
                            disk_->AllocatePages(num_pages));
    buf.clear();
    EncodeRows(chunk, &buf);
    buf.resize(num_pages * page_size, '\0');
    KWSDBG_RETURN_NOT_OK(disk_->WritePages(first_page, num_pages, buf.data()));
    PageExtent ext;
    ext.first_page = first_page;
    ext.num_pages = static_cast<uint32_t>(num_pages);
    ext.first_row = static_cast<uint32_t>(first_row);
    ext.num_rows = static_cast<uint32_t>(chunk.size());
    page_to_extent_[first_page] = extents_.size();
    extents_.push_back(ext);
    on_disk_bytes_ += num_pages * page_size;
    first_row += chunk.size();
    chunk.clear();
    chunk_bytes = sizeof(uint32_t);
    return Status::OK();
  };

  for (Tuple& r : *rows) {
    size_t row_bytes = EncodedRowSize(r);
    if (!chunk.empty() && chunk_bytes + row_bytes > page_size) {
      KWSDBG_RETURN_NOT_OK(flush_chunk());
    }
    chunk_bytes += row_bytes;
    chunk.push_back(std::move(r));
  }
  return flush_chunk();
}

Status Table::Spill(BufferPool* pool, DiskManager* disk) {
  if (spilled_) {
    return Status::FailedPrecondition("table '" + name_ +
                                      "' is already spilled");
  }
  pool_ = pool;
  disk_ = disk;
  KWSDBG_RETURN_NOT_OK(PackRows(&rows_));
  spilled_rows_ = rows_.size();
  rows_.clear();
  rows_.shrink_to_fit();
  spilled_ = true;
  return Status::OK();
}

const PageExtent& Table::ExtentForRow(size_t row) const {
  // Binary search for the extent whose [first_row, first_row + num_rows)
  // covers `row`.
  auto it = std::upper_bound(
      extents_.begin(), extents_.end(), row,
      [](size_t r, const PageExtent& e) { return r < e.first_row; });
  KWSDBG_CHECK(it != extents_.begin())
      << "row " << row << " below first extent of table '" << name_ << "'";
  --it;
  KWSDBG_CHECK(row < static_cast<size_t>(it->first_row) + it->num_rows)
      << "row " << row << " past end of spilled table '" << name_ << "'";
  return *it;
}

const Tuple& Table::SpilledRow(size_t i) const {
  if (i >= spilled_rows_) return tail_rows_[i - spilled_rows_];
  const PageExtent& ext = ExtentForRow(i);
  auto rows_or = pool_->Fetch(ext.first_page, ext.num_pages,
                              const_cast<Table*>(this));
  // at()/row() have no error channel; a failed or corrupt page read is a
  // broken invariant of our own spill file, not a recoverable condition.
  KWSDBG_CHECK(rows_or.ok()) << "page read failed for table '" << name_
                             << "': " << rows_or.status().ToString();
  return (**rows_or)[i - ext.first_row];
}

Status Table::WriteBack(uint64_t first_page, const std::vector<Tuple>& rows) {
  auto it = page_to_extent_.find(first_page);
  KWSDBG_CHECK(it != page_to_extent_.end())
      << "write-back for unknown extent page " << first_page << " in table '"
      << name_ << "'";
  PageExtent& ext = extents_[it->second];
  const size_t page_size = disk_->page_size();
  std::string buf;
  EncodeRows(rows, &buf);
  size_t need_pages = (buf.size() + page_size - 1) / page_size;
  if (need_pages <= ext.num_pages) {
    buf.resize(ext.num_pages * page_size, '\0');
    return disk_->WritePages(ext.first_page, ext.num_pages, buf.data());
  }
  // The mutated rows no longer fit (e.g. a longer string): move the extent
  // to a fresh run of pages and recycle the old ones.
  KWSDBG_ASSIGN_OR_RETURN(uint64_t new_first,
                          disk_->AllocatePages(need_pages));
  buf.resize(need_pages * page_size, '\0');
  KWSDBG_RETURN_NOT_OK(disk_->WritePages(new_first, need_pages, buf.data()));
  disk_->FreePages(ext.first_page, ext.num_pages);
  size_t idx = it->second;
  page_to_extent_.erase(it);
  on_disk_bytes_ += (need_pages - ext.num_pages) * page_size;
  ext.first_page = new_first;
  ext.num_pages = static_cast<uint32_t>(need_pages);
  page_to_extent_[new_first] = idx;
  return Status::OK();
}

}  // namespace kwsdbg
