#include "storage/table.h"

namespace kwsdbg {

namespace {
bool TypeMatches(const Value& v, DataType t) {
  if (v.is_null()) return true;
  switch (t) {
    case DataType::kInt64:
      return v.is_int();
    case DataType::kDouble:
      return v.is_double() || v.is_int();
    case DataType::kString:
      return v.is_string();
  }
  return false;
}
}  // namespace

Status Table::AppendRow(Tuple row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(schema_.num_columns()) + " for table " + name_);
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (!TypeMatches(row[i], schema_.column(i).type)) {
      return Status::InvalidArgument(
          "type mismatch in column '" + schema_.column(i).name +
          "' of table " + name_ + ": got " + row[i].ToString());
    }
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

StatusOr<Value> Table::ValueByName(size_t row, const std::string& col) const {
  KWSDBG_ASSIGN_OR_RETURN(size_t idx, schema_.ColumnIndex(col));
  if (row >= rows_.size()) {
    return Status::OutOfRange("row " + std::to_string(row) +
                              " out of range for table " + name_);
  }
  return rows_[row][idx];
}

Status Table::SetValue(size_t row, size_t col, Value value) {
  if (row >= rows_.size() || col >= schema_.num_columns()) {
    return Status::OutOfRange("cell (" + std::to_string(row) + ", " +
                              std::to_string(col) + ") out of range");
  }
  if (!TypeMatches(value, schema_.column(col).type)) {
    return Status::InvalidArgument("type mismatch in column '" +
                                   schema_.column(col).name + "'");
  }
  rows_[row][col] = std::move(value);
  return Status::OK();
}

size_t Table::EstimateBytes() const {
  size_t bytes = 0;
  for (const auto& r : rows_) {
    bytes += sizeof(Tuple) + r.capacity() * sizeof(Value);
    for (const auto& v : r) {
      if (v.is_string()) bytes += v.AsString().capacity();
    }
  }
  return bytes;
}

}  // namespace kwsdbg
