// Thread-safe sharded LRU cache. The key space is partitioned over N shards
// by hash; each shard serializes access with its own mutex and maintains its
// own recency list, so concurrent readers/writers on different shards never
// contend. Within a shard, Get refreshes recency and Put evicts the least
// recently used entry once the shard is at capacity.
#ifndef KWSDBG_COMMON_LRU_CACHE_H_
#define KWSDBG_COMMON_LRU_CACHE_H_

#include <cstddef>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

namespace kwsdbg {

/// Maps a (possibly weak) key hash to a shard index in [0, num_shards).
/// Promotes to 64 bits, runs a full-avalanche finalizer (splitmix64), and
/// folds the high half into the low half before the modulus, so the choice
/// is well-defined and near-uniform on every platform. The previous
/// `(h >> 32) % n` read only the high half of a size_t — on 32-bit targets
/// that shift equals the operand width (undefined behavior, and in practice
/// every key collapses onto shard 0).
inline size_t ShardIndexForHash(uint64_t h, size_t num_shards) {
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBull;
  h ^= h >> 31;
  return static_cast<size_t>(((h >> 32) ^ h) % num_shards);
}

/// Counters aggregated across shards. Snapshot semantics: values are summed
/// under the shard locks, so a quiescent cache reports exact numbers.
struct LruCacheStats {
  size_t hits = 0;
  size_t misses = 0;    ///< Get calls that found nothing.
  size_t insertions = 0;
  size_t evictions = 0;
  size_t entries = 0;   ///< Current live entries across shards.
};

/// Sharded LRU map from Key to Value. Copies values in and out (intended for
/// small verdict-style payloads). `Hash` must be cheap and well-distributed;
/// the same hash picks the shard and buckets within the shard.
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedLruCache {
 public:
  /// `capacity` is the total entry budget, split evenly across shards (each
  /// shard holds at least one entry). `num_shards` is rounded up to 1.
  explicit ShardedLruCache(size_t capacity, size_t num_shards = 8)
      : shards_(std::max<size_t>(1, num_shards)) {
    const size_t n = shards_.size();
    const size_t per_shard = std::max<size_t>(1, (capacity + n - 1) / n);
    for (auto& shard : shards_) shard = std::make_unique<Shard>(per_shard);
  }

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  /// Looks up `key`, refreshing its recency. Returns nullopt on miss.
  std::optional<Value> Get(const Key& key) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      ++shard.stats.misses;
      return std::nullopt;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    ++shard.stats.hits;
    return it->second->second;
  }

  /// Inserts or overwrites `key`, making it most recently used. Evicts the
  /// shard's LRU entry when the shard is full.
  void Put(const Key& key, Value value) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->second = std::move(value);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    if (shard.lru.size() >= shard.capacity) {
      shard.index.erase(shard.lru.back().first);
      shard.lru.pop_back();
      ++shard.stats.evictions;
    }
    shard.lru.emplace_front(key, std::move(value));
    shard.index.emplace(key, shard.lru.begin());
    ++shard.stats.insertions;
  }

  /// Removes every entry for which `pred(key, value)` returns true, across
  /// all shards, and returns the number removed. Used for targeted (partial)
  /// invalidation — e.g. evicting only the verdicts whose relation set
  /// intersects a mutated table. Counted as evictions in stats().
  template <typename Pred>
  size_t EraseIf(Pred pred) {
    size_t erased = 0;
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      for (auto it = shard->lru.begin(); it != shard->lru.end();) {
        if (pred(it->first, it->second)) {
          shard->index.erase(it->first);
          it = shard->lru.erase(it);
          ++erased;
          ++shard->stats.evictions;
        } else {
          ++it;
        }
      }
    }
    return erased;
  }

  /// Drops every entry (stats other than `entries` are preserved).
  void Clear() {
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      shard->lru.clear();
      shard->index.clear();
    }
  }

  /// Sums per-shard counters.
  LruCacheStats stats() const {
    LruCacheStats total;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      total.hits += shard->stats.hits;
      total.misses += shard->stats.misses;
      total.insertions += shard->stats.insertions;
      total.evictions += shard->stats.evictions;
      total.entries += shard->lru.size();
    }
    return total;
  }

  size_t num_shards() const { return shards_.size(); }

  /// Per-shard live entry counts — an occupancy snapshot for tests (the
  /// shard-mixer regression gate) and for per-shard telemetry.
  std::vector<size_t> ShardSizes() const {
    std::vector<size_t> sizes;
    sizes.reserve(shards_.size());
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      sizes.push_back(shard->lru.size());
    }
    return sizes;
  }

 private:
  struct Shard {
    explicit Shard(size_t cap) : capacity(cap) {}
    const size_t capacity;
    mutable std::mutex mu;
    std::list<std::pair<Key, Value>> lru;  // front = most recently used
    std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator,
                       Hash>
        index;
    LruCacheStats stats;
  };

  Shard& ShardFor(const Key& key) {
    // Remix the hash before taking the modulus: shard choice must not reuse
    // the same low bits the shard-local unordered_map buckets on.
    return *shards_[ShardIndexForHash(static_cast<uint64_t>(Hash{}(key)),
                                      shards_.size())];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace kwsdbg

#endif  // KWSDBG_COMMON_LRU_CACHE_H_
