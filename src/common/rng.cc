#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace kwsdbg {

namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  KWSDBG_DCHECK(bound > 0);
  // Lemire's nearly-divisionless method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  KWSDBG_DCHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

ZipfSampler::ZipfSampler(size_t n, double theta) : n_(n), theta_(theta) {
  KWSDBG_CHECK(n > 0);
  KWSDBG_CHECK(theta >= 0.0);
  cdf_.resize(n);
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = sum;
  }
  for (size_t i = 0; i < n; ++i) cdf_[i] /= sum;
}

size_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  // Binary search for the first index with cdf_[i] >= u.
  size_t lo = 0, hi = n_ - 1;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] >= u) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace kwsdbg
