// Deterministic, seeded fault injection for chaos testing. Named fault
// points are compiled into the storage layer, the SQL executor, the verdict
// cache, and the CSV loader; a fault *schedule* arms a subset of them with a
// trigger (probability / every-Nth / once / bounded count), an error code to
// inject, and an optional latency spike. With no schedule installed the
// per-hit cost is one relaxed atomic load, so fault points are free to leave
// in production builds.
//
// Schedules come from code (`Configure`, `ScopedFaultInjection`) or from the
// environment, installed before main() runs:
//
//   KWSDBG_FAULTS="<point>=<code>[,key=value...][;<point>=<code>...]"
//
//   codes:  unavailable | resource-exhausted | deadline | internal |
//           invalid-argument | notfound | dataloss |
//           ok   (ok = latency-only fault) |
//           crash  (kill the process with _Exit — no atexit handlers, no
//                   flushes; simulates power loss for crash-recovery tests)
//   keys:   p=<0..1>      fire with this probability per eligible hit
//           every=<N>     only hits with ordinal % N == 0 are eligible
//           after=<N>     skip the first N hits entirely
//           times=<N>     stop firing after N fires (once == times=1)
//           latency=<ms>  sleep this long when the fault fires
//           seed=<u64>    seed for the probability draw (default 42)
//
//   example: KWSDBG_FAULTS="executor.join.probe=unavailable,every=11,times=3;
//             cache.verdict.lookup=unavailable,p=0.05,seed=7"
//
// Injected statuses always carry the fault-point name in the message, so an
// error surfacing at the service boundary names the layer that failed.
// Everything is deterministic given the schedule: triggers draw from a
// per-point seeded Rng and per-point hit counters (counters are global
// across threads, so cross-thread interleaving affects *which* worker sees
// a fire, never how many fire).
#ifndef KWSDBG_COMMON_FAULT_INJECTOR_H_
#define KWSDBG_COMMON_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace kwsdbg {

/// One armed fault: where, when, and what to inject.
struct FaultSpec {
  std::string point;                           ///< Fault-point name.
  StatusCode code = StatusCode::kUnavailable;  ///< kOk = latency-only.
  bool crash = false;  ///< Fire = std::_Exit(kCrashExitCode), not a Status.
  double probability = 1.0;  ///< Fire chance per eligible hit.
  uint64_t every = 0;        ///< Eligible when hit# % every == 0 (1-based);
                             ///< 0 = every hit eligible.
  uint64_t after = 0;        ///< First `after` hits are never eligible.
  uint64_t times = 0;        ///< Max fires; 0 = unlimited.
  double latency_millis = 0; ///< Injected sleep when the fault fires.
  uint64_t seed = 42;        ///< Probability-draw seed.
};

/// Per-point counters for assertions and bench output.
struct FaultPointStats {
  uint64_t hits = 0;   ///< Times the point was reached while armed.
  uint64_t fires = 0;  ///< Times it actually injected (error or latency).
};

/// Process-wide fault-point registry. Thread-safe: Hit() may be called from
/// any number of service workers; Configure/Clear are meant for the quiet
/// moments between batches (a concurrent Hit sees either schedule, never a
/// torn one — state is swapped under the same mutex Hit takes).
class FaultInjector {
 public:
  /// Exit code of a fired `crash` fault, so a forking harness can tell an
  /// injected kill from an unrelated child failure.
  static constexpr int kCrashExitCode = 86;

  /// The singleton every KWSDBG_FAULT_POINT macro consults. Its first access
  /// — forced at static-init time, since the Enabled() fast path never calls
  /// this — installs any schedule found in $KWSDBG_FAULTS (a malformed value
  /// is reported to stderr and ignored rather than aborting the host).
  static FaultInjector& Global();

  /// Fast-path gate: false whenever no schedule is installed anywhere.
  static bool Enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Parses and installs a schedule, replacing the previous one (empty
  /// string = clear). Counters reset. See the header comment for syntax.
  Status Configure(const std::string& schedule);

  /// Installs one parsed spec (keeps other points' specs).
  void Install(FaultSpec spec);

  /// Removes all armed faults and resets counters.
  void Clear();

  /// Parses a single "<point>=<code>[,k=v...]" spec.
  static StatusOr<FaultSpec> ParseSpec(const std::string& spec);

  /// The fault-point hook: returns OK unless an armed fault fires, in which
  /// case the injected Status names the point ("injected fault at <point>").
  /// A latency-only fault (code=kOk) sleeps and returns OK.
  Status Hit(std::string_view point);

  /// Counters for one point (zeros when unknown).
  FaultPointStats StatsFor(const std::string& point) const;

  /// Total fires across all points since the last Configure/Clear.
  uint64_t TotalFires() const;

  /// "point: hits=H fires=F" per armed point, for bench/CLI output.
  std::string Summary() const;

 private:
  FaultInjector() = default;

  struct PointState {
    FaultSpec spec;
    FaultPointStats stats;
    Rng rng{42};
  };

  static std::atomic<bool> enabled_;

  mutable std::mutex mu_;
  std::map<std::string, PointState, std::less<>> points_;  // guarded by mu_
};

/// Test helper: installs a schedule on the global injector for the scope's
/// lifetime, clearing it on exit (tests must not leak faults into each
/// other — gtest cases share the process).
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(const std::string& schedule);
  ~ScopedFaultInjection();

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
};

/// Fault-point macro for Status/StatusOr-returning functions: propagates an
/// injected error to the caller. One relaxed load when no schedule is armed.
#define KWSDBG_FAULT_POINT(point)                                   \
  do {                                                              \
    if (::kwsdbg::FaultInjector::Enabled()) {                       \
      ::kwsdbg::Status _kwsdbg_fault =                              \
          ::kwsdbg::FaultInjector::Global().Hit(point);             \
      if (!_kwsdbg_fault.ok()) return _kwsdbg_fault;                \
    }                                                               \
  } while (0)

/// Fault-point check for degrade-don't-fail sites (text index, semijoin):
/// true when an armed fault fires, letting the caller fall back to a slower
/// correct path instead of surfacing an error.
inline bool FaultPointFires(std::string_view point) {
  return FaultInjector::Enabled() &&
         !FaultInjector::Global().Hit(point).ok();
}

}  // namespace kwsdbg

#endif  // KWSDBG_COMMON_FAULT_INJECTOR_H_
