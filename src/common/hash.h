// Hash combinators for composite keys (pair/vector hashing for unordered
// containers).
#ifndef KWSDBG_COMMON_HASH_H_
#define KWSDBG_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace kwsdbg {

/// boost::hash_combine-style mixing.
inline void HashCombine(size_t* seed, size_t v) {
  *seed ^= v + 0x9E3779B97F4A7C15ull + (*seed << 6) + (*seed >> 2);
}

/// Hash for std::pair of hashable types.
struct PairHash {
  template <typename A, typename B>
  size_t operator()(const std::pair<A, B>& p) const {
    size_t seed = std::hash<A>{}(p.first);
    HashCombine(&seed, std::hash<B>{}(p.second));
    return seed;
  }
};

/// Hash for std::vector of hashable elements.
struct VectorHash {
  template <typename T>
  size_t operator()(const std::vector<T>& v) const {
    size_t seed = v.size();
    for (const auto& x : v) HashCombine(&seed, std::hash<T>{}(x));
    return seed;
  }
};

}  // namespace kwsdbg

#endif  // KWSDBG_COMMON_HASH_H_
