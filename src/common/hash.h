// Hash combinators for composite keys (pair/vector hashing for unordered
// containers) and a splitmix-based byte-stream checksum for on-disk frames.
#ifndef KWSDBG_COMMON_HASH_H_
#define KWSDBG_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <utility>
#include <vector>

namespace kwsdbg {

/// boost::hash_combine-style mixing.
inline void HashCombine(size_t* seed, size_t v) {
  *seed ^= v + 0x9E3779B97F4A7C15ull + (*seed << 6) + (*seed >> 2);
}

/// splitmix64 finalizer: full-avalanche 64-bit mix.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// 64-bit checksum over a byte stream: 8-byte chunks (plus a
/// length-tagged tail) folded through the splitmix64 finalizer. Built for
/// torn-write detection on WAL records and checkpoint sections, not for
/// adversarial inputs. The length is mixed in so a frame truncated at a
/// chunk boundary still fails verification.
inline uint64_t Checksum64(const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = SplitMix64(0x6b777364ull ^ len);  // "kwsd" | length
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p + i, 8);
    h = SplitMix64(h ^ chunk);
  }
  if (i < len) {
    uint64_t tail = 0;
    std::memcpy(&tail, p + i, len - i);
    h = SplitMix64(h ^ tail ^ (uint64_t{len - i} << 56));
  }
  return h;
}

/// 32-bit fold of Checksum64, sized for per-record WAL frame headers.
inline uint32_t Checksum32(const void* data, size_t len) {
  const uint64_t h = Checksum64(data, len);
  return static_cast<uint32_t>(h ^ (h >> 32));
}

/// Hash for std::pair of hashable types.
struct PairHash {
  template <typename A, typename B>
  size_t operator()(const std::pair<A, B>& p) const {
    size_t seed = std::hash<A>{}(p.first);
    HashCombine(&seed, std::hash<B>{}(p.second));
    return seed;
  }
};

/// Hash for std::vector of hashable elements.
struct VectorHash {
  template <typename T>
  size_t operator()(const std::vector<T>& v) const {
    size_t seed = v.size();
    for (const auto& x : v) HashCombine(&seed, std::hash<T>{}(x));
    return seed;
  }
};

}  // namespace kwsdbg

#endif  // KWSDBG_COMMON_HASH_H_
