// Cooperative cancellation for long-running debug pipelines. A
// CancellationToken is armed with a wall-clock budget (or cancelled
// explicitly); the executor, evaluator, and traversal strategies poll it at
// safe boundaries and unwind with StatusCode::kDeadlineExceeded. Polling is
// lock-free — one relaxed atomic load on the fast path — so tokens can be
// shared across the frontier worker pool without contention. A fired token
// never produces a verdict: callers that see the deadline status must treat
// the work as unfinished, not as "empty result".
#ifndef KWSDBG_COMMON_CANCELLATION_H_
#define KWSDBG_COMMON_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace kwsdbg {

/// Re-armable cancellation flag + optional deadline. Thread-safe: any
/// number of threads may poll Expired() while one controller thread arms or
/// cancels. Arm/Reset must not race with pollers mid-query (the service
/// arms between queries, when the worker owns the token exclusively).
class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Arms a deadline `budget_millis` from now; a budget <= 0 disarms the
  /// deadline (the token then only fires via RequestCancel).
  void Arm(double budget_millis) {
    cancelled_.store(false, std::memory_order_relaxed);
    if (budget_millis > 0) {
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double, std::milli>(budget_millis));
      deadline_ns_.store(deadline.time_since_epoch().count(),
                         std::memory_order_relaxed);
      armed_.store(true, std::memory_order_release);
    } else {
      armed_.store(false, std::memory_order_release);
    }
  }

  /// Fires the token immediately (explicit cancel, e.g. client went away).
  void RequestCancel() { cancelled_.store(true, std::memory_order_release); }

  /// Clears both the flag and any armed deadline.
  void Reset() {
    armed_.store(false, std::memory_order_relaxed);
    cancelled_.store(false, std::memory_order_release);
  }

  /// True once cancelled or past the armed deadline. Memoizes deadline
  /// expiry into the flag so subsequent polls skip the clock read.
  bool Expired() const {
    if (cancelled_.load(std::memory_order_acquire)) return true;
    if (!armed_.load(std::memory_order_acquire)) return false;
    const int64_t now =
        std::chrono::steady_clock::now().time_since_epoch().count();
    if (now < deadline_ns_.load(std::memory_order_relaxed)) return false;
    cancelled_.store(true, std::memory_order_release);
    return true;
  }

 private:
  /// Mutable: Expired() memoizes deadline expiry from const pollers.
  mutable std::atomic<bool> cancelled_{false};
  std::atomic<bool> armed_{false};
  std::atomic<int64_t> deadline_ns_{0};
};

}  // namespace kwsdbg

#endif  // KWSDBG_COMMON_CANCELLATION_H_
