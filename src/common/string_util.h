// String helpers shared across the library: case conversion, splitting,
// joining, and case-insensitive substring search (the semantics of SQL
// `LIKE '%kw%'` as the paper's queries use it).
#ifndef KWSDBG_COMMON_STRING_UTIL_H_
#define KWSDBG_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace kwsdbg {

/// ASCII lower-casing (the corpus is ASCII; locale-independent by design).
std::string ToLower(std::string_view s);

/// Splits on any character in `delims`, dropping empty pieces.
std::vector<std::string> Split(std::string_view s, std::string_view delims);

/// Joins pieces with `sep`.
std::string Join(const std::vector<std::string>& pieces, std::string_view sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// True iff `needle` occurs in `haystack`, ignoring ASCII case. This is the
/// evaluation semantics of `col LIKE '%needle%'` in the generated SQL.
bool ContainsCaseInsensitive(std::string_view haystack,
                             std::string_view needle);

/// True iff the two strings are equal ignoring ASCII case.
bool EqualsCaseInsensitive(std::string_view a, std::string_view b);

/// True iff `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Parses a byte-size string: a non-negative integer with an optional
/// K/M/G suffix (powers of 1024, case-insensitive, optional trailing "B").
/// "64M" -> 67108864, "8192" -> 8192. Returns 0 on empty/malformed input
/// (callers treat 0 as "unset").
size_t ParseByteSize(std::string_view s);

}  // namespace kwsdbg

#endif  // KWSDBG_COMMON_STRING_UTIL_H_
