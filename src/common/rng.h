// Deterministic random number generation: xoshiro256** plus distribution
// helpers (uniform, Zipf). All dataset generation and benchmark workloads use
// these so results are reproducible run-to-run.
#ifndef KWSDBG_COMMON_RNG_H_
#define KWSDBG_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace kwsdbg {

/// xoshiro256** by Blackman & Vigna — fast, high-quality, and seedable with a
/// single 64-bit value via SplitMix64 expansion.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection.
  /// Precondition: bound > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Fisher–Yates shuffles the given vector in place.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
};

/// Zipf-distributed sampler over {0, 1, ..., n-1} with exponent `theta`
/// (theta = 0 is uniform; larger is more skewed). Uses the classic
/// inverse-CDF-with-precomputed-harmonics approach; O(log n) per sample.
class ZipfSampler {
 public:
  /// Preconditions: n > 0, theta >= 0.
  ZipfSampler(size_t n, double theta);

  /// Draws a rank in [0, n); rank 0 is the most frequent.
  size_t Sample(Rng* rng) const;

  size_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  size_t n_;
  double theta_;
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i)
};

}  // namespace kwsdbg

#endif  // KWSDBG_COMMON_RNG_H_
