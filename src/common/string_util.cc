#include "common/string_util.h"

#include <algorithm>
#include <cctype>

namespace kwsdbg {

namespace {
inline char LowerChar(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}
}  // namespace

std::string ToLower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) out.push_back(LowerChar(c));
  return out;
}

std::vector<std::string> Split(std::string_view s, std::string_view delims) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || delims.find(s[i]) != std::string_view::npos) {
      if (i > start) out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool ContainsCaseInsensitive(std::string_view haystack,
                             std::string_view needle) {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  const char first = LowerChar(needle[0]);
  const size_t limit = haystack.size() - needle.size();
  for (size_t i = 0; i <= limit; ++i) {
    if (LowerChar(haystack[i]) != first) continue;
    size_t j = 1;
    while (j < needle.size() &&
           LowerChar(haystack[i + j]) == LowerChar(needle[j])) {
      ++j;
    }
    if (j == needle.size()) return true;
  }
  return false;
}

bool EqualsCaseInsensitive(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (LowerChar(a[i]) != LowerChar(b[i])) return false;
  }
  return true;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

size_t ParseByteSize(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return 0;
  size_t value = 0;
  size_t i = 0;
  bool any_digit = false;
  while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
    value = value * 10 + static_cast<size_t>(s[i] - '0');
    any_digit = true;
    ++i;
  }
  if (!any_digit) return 0;
  size_t mult = 1;
  if (i < s.size()) {
    switch (LowerChar(s[i])) {
      case 'k': mult = size_t{1} << 10; ++i; break;
      case 'm': mult = size_t{1} << 20; ++i; break;
      case 'g': mult = size_t{1} << 30; ++i; break;
      default: return 0;
    }
    if (i < s.size() && LowerChar(s[i]) == 'b') ++i;
  }
  if (i != s.size()) return 0;
  return value * mult;
}

}  // namespace kwsdbg
