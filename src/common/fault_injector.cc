#include "common/fault_injector.h"

#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "common/string_util.h"

namespace kwsdbg {

std::atomic<bool> FaultInjector::enabled_{false};

namespace {

StatusOr<StatusCode> ParseInjectedCode(std::string_view s) {
  if (s == "unavailable") return StatusCode::kUnavailable;
  if (s == "resource-exhausted" || s == "resource") {
    return StatusCode::kResourceExhausted;
  }
  if (s == "deadline") return StatusCode::kDeadlineExceeded;
  if (s == "internal") return StatusCode::kInternal;
  if (s == "invalid-argument" || s == "invalid") {
    return StatusCode::kInvalidArgument;
  }
  if (s == "notfound") return StatusCode::kNotFound;
  if (s == "dataloss") return StatusCode::kDataLoss;
  if (s == "ok" || s == "latency") return StatusCode::kOk;
  return Status::InvalidArgument("unknown fault code '" + std::string(s) +
                                 "'");
}

StatusOr<uint64_t> ParseU64(std::string_view s) {
  uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return Status::InvalidArgument("bad integer '" + std::string(s) + "'");
  }
  return v;
}

StatusOr<double> ParseF64(std::string_view s) {
  const std::string copy(s);
  char* end = nullptr;
  const double v = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size() || copy.empty()) {
    return Status::InvalidArgument("bad number '" + copy + "'");
  }
  return v;
}

}  // namespace

StatusOr<FaultSpec> FaultInjector::ParseSpec(const std::string& spec) {
  const size_t eq = spec.find('=');
  if (eq == std::string::npos || eq == 0) {
    return Status::InvalidArgument("fault spec '" + spec +
                                   "' lacks '<point>=<code>'");
  }
  FaultSpec out;
  out.point = std::string(Trim(spec.substr(0, eq)));
  const std::vector<std::string> parts = Split(spec.substr(eq + 1), ",");
  if (parts.empty()) {
    return Status::InvalidArgument("fault spec '" + spec + "' lacks a code");
  }
  if (Trim(parts[0]) == "crash") {
    out.crash = true;
  } else {
    KWSDBG_ASSIGN_OR_RETURN(out.code, ParseInjectedCode(Trim(parts[0])));
  }
  for (size_t i = 1; i < parts.size(); ++i) {
    const std::string_view part = Trim(parts[i]);
    if (part == "once") {
      out.times = 1;
      continue;
    }
    const size_t kv = part.find('=');
    if (kv == std::string_view::npos) {
      return Status::InvalidArgument("bad fault option '" +
                                     std::string(part) + "'");
    }
    const std::string_view key = part.substr(0, kv);
    const std::string_view value = part.substr(kv + 1);
    if (key == "p") {
      KWSDBG_ASSIGN_OR_RETURN(out.probability, ParseF64(value));
      if (out.probability < 0 || out.probability > 1) {
        return Status::InvalidArgument("fault probability out of [0,1]: " +
                                       std::string(value));
      }
    } else if (key == "every") {
      KWSDBG_ASSIGN_OR_RETURN(out.every, ParseU64(value));
    } else if (key == "after") {
      KWSDBG_ASSIGN_OR_RETURN(out.after, ParseU64(value));
    } else if (key == "times") {
      KWSDBG_ASSIGN_OR_RETURN(out.times, ParseU64(value));
    } else if (key == "latency") {
      KWSDBG_ASSIGN_OR_RETURN(out.latency_millis, ParseF64(value));
    } else if (key == "seed") {
      KWSDBG_ASSIGN_OR_RETURN(out.seed, ParseU64(value));
    } else {
      return Status::InvalidArgument("unknown fault option '" +
                                     std::string(key) + "'");
    }
  }
  return out;
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* instance = [] {
    auto* injector = new FaultInjector();
    if (const char* env = std::getenv("KWSDBG_FAULTS")) {
      const Status st = injector->Configure(env);
      if (!st.ok()) {
        std::fprintf(stderr, "KWSDBG_FAULTS ignored: %s\n",
                     st.ToString().c_str());
      }
    }
    return injector;
  }();
  return *instance;
}

namespace {
// The fast-path Enabled() check never touches Global(), so an env-only
// schedule would otherwise stay uninstalled forever; force the read before
// main() runs.
[[maybe_unused]] const bool kEnvScheduleLoaded =
    (FaultInjector::Global(), true);
}  // namespace

Status FaultInjector::Configure(const std::string& schedule) {
  // Parse everything before touching the live schedule, so a bad spec never
  // leaves a half-installed one.
  std::vector<FaultSpec> specs;
  for (const std::string& piece : Split(schedule, ";")) {
    if (Trim(piece).empty()) continue;
    KWSDBG_ASSIGN_OR_RETURN(FaultSpec spec,
                            ParseSpec(std::string(Trim(piece))));
    specs.push_back(std::move(spec));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    points_.clear();
    for (FaultSpec& spec : specs) {
      PointState state;
      state.rng = Rng(spec.seed);
      const std::string point = spec.point;
      state.spec = std::move(spec);
      points_[point] = std::move(state);
    }
    enabled_.store(!points_.empty(), std::memory_order_relaxed);
  }
  return Status::OK();
}

void FaultInjector::Install(FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  PointState state;
  state.rng = Rng(spec.seed);
  const std::string point = spec.point;
  state.spec = std::move(spec);
  points_[point] = std::move(state);
  enabled_.store(true, std::memory_order_relaxed);
}

void FaultInjector::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
  enabled_.store(false, std::memory_order_relaxed);
}

Status FaultInjector::Hit(std::string_view point) {
  StatusCode code;
  double latency_millis;
  uint64_t fire_ordinal;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = points_.find(point);
    if (it == points_.end()) return Status::OK();
    PointState& state = it->second;
    const FaultSpec& spec = state.spec;
    const uint64_t hit = ++state.stats.hits;
    if (hit <= spec.after) return Status::OK();
    if (spec.times != 0 && state.stats.fires >= spec.times) {
      return Status::OK();
    }
    if (spec.every > 1 && hit % spec.every != 0) return Status::OK();
    if (spec.probability < 1.0 && !state.rng.Bernoulli(spec.probability)) {
      return Status::OK();
    }
    fire_ordinal = ++state.stats.fires;
    if (spec.crash) {
      // Simulated power loss: no atexit handlers, no stream flushes, no
      // destructors — whatever reached the disk is what recovery sees.
      std::_Exit(kCrashExitCode);
    }
    code = spec.code;
    latency_millis = spec.latency_millis;
  }
  // Sleep outside the lock: a latency fault must not stall other points.
  if (latency_millis > 0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(latency_millis));
  }
  if (code == StatusCode::kOk) return Status::OK();
  return Status(code, "injected fault at " + std::string(point) + " (fire #" +
                          std::to_string(fire_ordinal) + ")");
}

FaultPointStats FaultInjector::StatsFor(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(point);
  return it == points_.end() ? FaultPointStats{} : it->second.stats;
}

uint64_t FaultInjector::TotalFires() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [_, state] : points_) total += state.stats.fires;
  return total;
}

std::string FaultInjector::Summary() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  bool first = true;
  for (const auto& [point, state] : points_) {
    if (!first) out << "; ";
    first = false;
    out << point << ": hits=" << state.stats.hits
        << " fires=" << state.stats.fires;
  }
  if (first) out << "(no faults armed)";
  return out.str();
}

ScopedFaultInjection::ScopedFaultInjection(const std::string& schedule) {
  const Status st = FaultInjector::Global().Configure(schedule);
  // A typo'd schedule in a test should fail loudly, not silently no-op.
  if (!st.ok()) {
    std::fprintf(stderr, "ScopedFaultInjection: %s\n", st.ToString().c_str());
    std::abort();
  }
}

ScopedFaultInjection::~ScopedFaultInjection() {
  FaultInjector::Global().Clear();
}

}  // namespace kwsdbg
