// Minimal logging and assertion macros. KWSDBG_CHECK aborts with a message on
// violated invariants (always on); KWSDBG_DCHECK compiles out in NDEBUG.
#ifndef KWSDBG_COMMON_LOGGING_H_
#define KWSDBG_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace kwsdbg {

enum class LogLevel { kDebug = 0, kInfo, kWarning, kError, kFatal };

namespace internal {

/// Stream-style log sink; emits on destruction. Fatal level aborts.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows streamed values when a log statement is compiled out.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

/// Sets the minimum level that is actually emitted (default: kWarning, so
/// library code is silent in tests and benches unless something is wrong).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

#define KWSDBG_LOG(level)                                              \
  ::kwsdbg::internal::LogMessage(::kwsdbg::LogLevel::k##level, __FILE__, \
                                 __LINE__)

// `while (!(cond))` never loops: the fatal LogMessage aborts in its
// destructor. The form permits streaming extra context after the macro.
#define KWSDBG_CHECK(cond)                                               \
  while (!(cond))                                                        \
  ::kwsdbg::internal::LogMessage(::kwsdbg::LogLevel::kFatal, __FILE__,   \
                                 __LINE__)                               \
      << "Check failed: " #cond " "

#define KWSDBG_CHECK_EQ(a, b) KWSDBG_CHECK((a) == (b))
#define KWSDBG_CHECK_NE(a, b) KWSDBG_CHECK((a) != (b))
#define KWSDBG_CHECK_LT(a, b) KWSDBG_CHECK((a) < (b))
#define KWSDBG_CHECK_LE(a, b) KWSDBG_CHECK((a) <= (b))
#define KWSDBG_CHECK_GT(a, b) KWSDBG_CHECK((a) > (b))
#define KWSDBG_CHECK_GE(a, b) KWSDBG_CHECK((a) >= (b))

#ifdef NDEBUG
#define KWSDBG_DCHECK(cond) \
  while (false) ::kwsdbg::internal::NullStream() << !(cond)
#else
#define KWSDBG_DCHECK(cond) KWSDBG_CHECK(cond)
#endif

}  // namespace kwsdbg

#endif  // KWSDBG_COMMON_LOGGING_H_
