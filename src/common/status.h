// Status and StatusOr: lightweight error propagation without exceptions,
// in the style of Arrow / RocksDB / absl.
#ifndef KWSDBG_COMMON_STATUS_H_
#define KWSDBG_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace kwsdbg {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kParseError,
  kDeadlineExceeded,
  kUnavailable,        ///< Transient dependency failure; safe to retry.
  kResourceExhausted,  ///< Over capacity (shed load, quota); safe to retry.
  kDataLoss,           ///< Unrecoverable corruption (checksum mismatch).
};

/// Returns a short human-readable name for a StatusCode ("InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// A success-or-error result. Cheap to copy in the success case (no
/// allocation); carries a message string on error.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk);
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// True for transient failures a caller may retry (with backoff) against
  /// unchanged inputs: the dependency was momentarily down (kUnavailable) or
  /// over capacity (kResourceExhausted). Deadline expiry is deliberately
  /// NOT retryable — the budget is already spent; retrying under the same
  /// deadline would fail again, and callers with a fresh budget make that
  /// decision explicitly.
  bool IsRetryable() const {
    return code_ == StatusCode::kUnavailable ||
           code_ == StatusCode::kResourceExhausted;
  }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error result, analogous to absl::StatusOr.
template <typename T>
class StatusOr {
 public:
  /// Implicit from error status; must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok());
  }
  /// Implicit from value.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Precondition: ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value, or `fallback` on error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status to the caller.
#define KWSDBG_RETURN_NOT_OK(expr)            \
  do {                                        \
    ::kwsdbg::Status _st = (expr);            \
    if (!_st.ok()) return _st;                \
  } while (0)

/// Assigns the value of a StatusOr expression or propagates its error.
#define KWSDBG_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value();

#define KWSDBG_ASSIGN_OR_RETURN(lhs, expr) \
  KWSDBG_ASSIGN_OR_RETURN_IMPL(            \
      KWSDBG_CONCAT_(_status_or_, __LINE__), lhs, expr)

#define KWSDBG_CONCAT_INNER_(a, b) a##b
#define KWSDBG_CONCAT_(a, b) KWSDBG_CONCAT_INNER_(a, b)

/// Evaluates a StatusOr expression, discarding the value; propagates errors.
#define KWSDBG_CHECK_OK_OR_RETURN(expr)                      \
  do {                                                       \
    auto KWSDBG_CONCAT_(_so_, __LINE__) = (expr);            \
    if (!KWSDBG_CONCAT_(_so_, __LINE__).ok()) {              \
      return KWSDBG_CONCAT_(_so_, __LINE__).status();        \
    }                                                        \
  } while (0)

}  // namespace kwsdbg

#endif  // KWSDBG_COMMON_STATUS_H_
