#include "lattice/join_tree.h"

#include <algorithm>

#include "common/logging.h"

namespace kwsdbg {

JoinTree JoinTree::Single(RelationCopy v) {
  JoinTree t;
  t.vertices_.push_back(v);
  return t;
}

int JoinTree::FindVertex(RelationCopy v) const {
  for (size_t i = 0; i < vertices_.size(); ++i) {
    if (vertices_[i] == v) return static_cast<int>(i);
  }
  return -1;
}

JoinTree JoinTree::Extend(size_t at, RelationCopy v, EdgeId via) const {
  KWSDBG_DCHECK(at < vertices_.size());
  KWSDBG_DCHECK(!ContainsVertex(v));
  JoinTree out = *this;
  uint16_t new_idx = static_cast<uint16_t>(out.vertices_.size());
  out.vertices_.push_back(v);
  out.edges_.push_back(
      JoinTreeEdge{static_cast<uint16_t>(at), new_idx, via});
  return out;
}

size_t JoinTree::Degree(size_t i) const {
  size_t d = 0;
  for (const auto& e : edges_) {
    if (e.a == i || e.b == i) ++d;
  }
  return d;
}

bool JoinTree::VertexUsesEdge(size_t i, EdgeId e) const {
  for (const auto& edge : edges_) {
    if (edge.schema_edge == e && (edge.a == i || edge.b == i)) return true;
  }
  return false;
}

std::vector<size_t> JoinTree::LeafIndices() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < vertices_.size(); ++i) {
    if (Degree(i) <= 1) out.push_back(i);
  }
  return out;
}

JoinTree JoinTree::RemoveLeaf(size_t leaf) const {
  KWSDBG_DCHECK(num_vertices() > 1);
  KWSDBG_DCHECK(Degree(leaf) == 1);
  JoinTree out;
  // Old index -> new index mapping (leaf removed, later vertices shift).
  std::vector<int> remap(vertices_.size(), -1);
  for (size_t i = 0; i < vertices_.size(); ++i) {
    if (i == leaf) continue;
    remap[i] = static_cast<int>(out.vertices_.size());
    out.vertices_.push_back(vertices_[i]);
  }
  for (const auto& e : edges_) {
    if (e.a == leaf || e.b == leaf) continue;
    out.edges_.push_back(JoinTreeEdge{static_cast<uint16_t>(remap[e.a]),
                                      static_cast<uint16_t>(remap[e.b]),
                                      e.schema_edge});
  }
  return out;
}

Status JoinTree::Validate(const SchemaGraph& schema) const {
  if (vertices_.empty()) return Status::InvalidArgument("empty tree");
  if (edges_.size() != vertices_.size() - 1) {
    return Status::InvalidArgument("not a tree: |E| != |V| - 1");
  }
  // Unique vertices.
  for (size_t i = 0; i < vertices_.size(); ++i) {
    for (size_t j = i + 1; j < vertices_.size(); ++j) {
      if (vertices_[i] == vertices_[j]) {
        return Status::InvalidArgument("duplicate vertex in tree");
      }
    }
  }
  // Edge endpoints valid and consistent with the schema edge.
  for (const auto& e : edges_) {
    if (e.a >= vertices_.size() || e.b >= vertices_.size() || e.a == e.b) {
      return Status::InvalidArgument("bad edge endpoints");
    }
    if (e.schema_edge >= schema.num_edges()) {
      return Status::InvalidArgument("bad schema edge id");
    }
    const JoinEdge& se = schema.edge(e.schema_edge);
    const RelationId ra = vertices_[e.a].relation;
    const RelationId rb = vertices_[e.b].relation;
    const bool matches = (se.from == ra && se.to == rb) ||
                         (se.from == rb && se.to == ra);
    if (!matches) {
      return Status::InvalidArgument(
          "tree edge relations do not match its schema edge");
    }
  }
  // DISCOVER validity: the foreign-key side of a schema edge joins at most
  // once per instance (a second use forces two instances to be equal — a
  // degenerate query whose results duplicate a smaller network's).
  for (size_t i = 0; i < vertices_.size(); ++i) {
    for (size_t a = 0; a < edges_.size(); ++a) {
      if (edges_[a].a != i && edges_[a].b != i) continue;
      const JoinEdge& sea = schema.edge(edges_[a].schema_edge);
      if (vertices_[i].relation != sea.from) continue;  // PK side is free
      for (size_t b = a + 1; b < edges_.size(); ++b) {
        if (edges_[b].a != i && edges_[b].b != i) continue;
        if (edges_[b].schema_edge == edges_[a].schema_edge) {
          return Status::InvalidArgument(
              "foreign-key column joined twice at one instance");
        }
      }
    }
  }

  // Connectivity via union-find.
  std::vector<size_t> parent(vertices_.size());
  for (size_t i = 0; i < parent.size(); ++i) parent[i] = i;
  auto find = [&](size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  for (const auto& e : edges_) {
    size_t ra = find(e.a), rb = find(e.b);
    if (ra == rb) return Status::InvalidArgument("cycle in tree");
    parent[ra] = rb;
  }
  for (size_t i = 1; i < vertices_.size(); ++i) {
    if (find(i) != find(0)) return Status::InvalidArgument("disconnected");
  }
  return Status::OK();
}

std::string JoinTree::ToString(const SchemaGraph& schema) const {
  auto vertex_str = [&](size_t i) {
    return schema.relation(vertices_[i].relation).name + "[" +
           std::to_string(vertices_[i].copy) + "]";
  };
  if (edges_.empty()) return vertex_str(0);
  std::string out;
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (i > 0) out += "; ";
    const JoinEdge& se = schema.edge(edges_[i].schema_edge);
    out += vertex_str(edges_[i].a) + " -(" +
           schema.relation(se.from).name + "." + se.from_column + "=" +
           schema.relation(se.to).name + "." + se.to_column + ")- " +
           vertex_str(edges_[i].b);
  }
  return out;
}

}  // namespace kwsdbg
