// JoinTree: a join network of relation *copies* — the label of one lattice
// node (paper Sec. 2.2). Vertices are (relation, copy) pairs, unique within a
// tree; edges carry the schema-graph join they instantiate. Copy 0 is the
// free copy R_0 (bound to the empty keyword); copies >= 1 are keyword
// copies R_1..R_c.
#ifndef KWSDBG_LATTICE_JOIN_TREE_H_
#define KWSDBG_LATTICE_JOIN_TREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/schema_graph.h"

namespace kwsdbg {

/// A relation copy: vertex label in a join tree.
struct RelationCopy {
  RelationId relation;
  uint16_t copy;

  bool operator==(const RelationCopy&) const = default;
  bool operator<(const RelationCopy& o) const {
    return relation != o.relation ? relation < o.relation : copy < o.copy;
  }
};

/// An edge between two vertices of a JoinTree (indices into vertices()).
struct JoinTreeEdge {
  uint16_t a;
  uint16_t b;
  EdgeId schema_edge;

  bool operator==(const JoinTreeEdge&) const = default;
};

/// An immutable-ish join network. Invariants (checked by Validate):
/// connected, acyclic (|E| = |V| - 1), vertices unique, every edge
/// instantiates a schema edge whose endpoint relations match.
class JoinTree {
 public:
  JoinTree() = default;

  /// Single-vertex tree.
  static JoinTree Single(RelationCopy v);

  size_t num_vertices() const { return vertices_.size(); }
  size_t num_edges() const { return edges_.size(); }
  /// Lattice level of this tree (= number of vertices; level 1 is a single
  /// table, level k has k-1 joins).
  size_t level() const { return vertices_.size(); }

  const std::vector<RelationCopy>& vertices() const { return vertices_; }
  const std::vector<JoinTreeEdge>& edges() const { return edges_; }
  const RelationCopy& vertex(size_t i) const { return vertices_[i]; }

  /// Index of vertex `v`, or -1 if absent.
  int FindVertex(RelationCopy v) const;

  bool ContainsVertex(RelationCopy v) const { return FindVertex(v) >= 0; }

  /// Returns a copy of this tree extended with a new vertex `v` joined to the
  /// existing vertex at `at` via schema edge `via`. Precondition: `v` absent.
  JoinTree Extend(size_t at, RelationCopy v, EdgeId via) const;

  /// Degree of vertex i.
  size_t Degree(size_t i) const;

  /// True iff vertex `i` already has an incident edge instantiating schema
  /// edge `e`. Used to enforce the DISCOVER rule that a foreign-key column
  /// joins at most one instance: a second use at the FK side would force
  /// two "different" instances to be the same tuple.
  bool VertexUsesEdge(size_t i, EdgeId e) const;

  /// Indices of vertices with degree <= 1 (single vertex counts as a leaf).
  std::vector<size_t> LeafIndices() const;

  /// Returns the subtree obtained by deleting leaf vertex `leaf`.
  /// Precondition: `leaf` is a leaf and num_vertices() > 1.
  JoinTree RemoveLeaf(size_t leaf) const;

  /// Checks the structural invariants against `schema`.
  Status Validate(const SchemaGraph& schema) const;

  /// Human-readable rendering, e.g. "Person[1] -(authored.pid=Person.id)-
  /// authored[0]".  Vertex form: Name[copy].
  std::string ToString(const SchemaGraph& schema) const;

  bool operator==(const JoinTree&) const = default;

 private:
  std::vector<RelationCopy> vertices_;
  std::vector<JoinTreeEdge> edges_;
};

}  // namespace kwsdbg

#endif  // KWSDBG_LATTICE_JOIN_TREE_H_
