#include "lattice/lattice_io.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "lattice/canonical_label.h"

namespace kwsdbg {

/// Private-member access shim (friend of Lattice).
class LatticeIoAccess {
 public:
  static Status Save(const Lattice& lattice, std::ostream* out);
  static StatusOr<std::unique_ptr<Lattice>> Load(const SchemaGraph& schema,
                                                 std::istream* in);
};

namespace {

constexpr const char* kMagic = "KWSDBGLAT 1";

StatusOr<int64_t> ParseInt(const std::string& s) {
  try {
    size_t pos = 0;
    int64_t v = std::stoll(s, &pos);
    if (pos != s.size()) return Status::ParseError("bad integer '" + s + "'");
    return v;
  } catch (...) {
    return Status::ParseError("bad integer '" + s + "'");
  }
}

}  // namespace

Status LatticeIoAccess::Save(const Lattice& lattice, std::ostream* out) {
  const LatticeConfig& config = lattice.config_;
  *out << kMagic << "\n";
  *out << "config " << config.max_joins << " "
       << (config.copy_policy == CopyPolicy::kAllRelations ? "all" : "text")
       << " " << config.num_keyword_copies << " " << config.max_nodes << "\n";
  *out << "schema " << lattice.schema_->num_relations() << " "
       << lattice.schema_->num_edges() << "\n";
  *out << "stats " << lattice.level_stats_.size();
  for (const LevelStats& ls : lattice.level_stats_) {
    *out << " " << ls.generated << " " << ls.duplicates << " " << ls.kept;
  }
  *out << "\n";
  *out << "nodes " << lattice.nodes_.size() << "\n";
  // Nodes are stored in id order, which is also level order within the
  // generation; ids are implicit (line order).
  for (const LatticeNode& node : lattice.nodes_) {
    *out << "n";
    for (const RelationCopy& v : node.tree.vertices()) {
      *out << " " << v.relation << ":" << v.copy;
    }
    *out << " |";
    for (const JoinTreeEdge& e : node.tree.edges()) {
      *out << " " << e.a << "," << e.b << "," << e.schema_edge;
    }
    *out << "\n";
  }
  if (!*out) return Status::Internal("I/O error writing lattice");
  return Status::OK();
}

StatusOr<std::unique_ptr<Lattice>> LatticeIoAccess::Load(
    const SchemaGraph& schema, std::istream* in) {
  std::string line;
  if (!std::getline(*in, line) || line != kMagic) {
    return Status::ParseError("missing lattice header");
  }
  auto lattice = std::make_unique<Lattice>();
  Lattice& lat = *lattice;
  lat.schema_ = &schema;

  // config
  if (!std::getline(*in, line)) return Status::ParseError("missing config");
  {
    std::vector<std::string> parts = Split(line, " ");
    if (parts.size() != 5 || parts[0] != "config") {
      return Status::ParseError("bad config line: " + line);
    }
    KWSDBG_ASSIGN_OR_RETURN(int64_t mj, ParseInt(parts[1]));
    lat.config_.max_joins = static_cast<size_t>(mj);
    if (parts[2] == "all") {
      lat.config_.copy_policy = CopyPolicy::kAllRelations;
    } else if (parts[2] == "text") {
      lat.config_.copy_policy = CopyPolicy::kTextRelationsOnly;
    } else {
      return Status::ParseError("bad copy policy '" + parts[2] + "'");
    }
    KWSDBG_ASSIGN_OR_RETURN(int64_t c, ParseInt(parts[3]));
    lat.config_.num_keyword_copies = static_cast<size_t>(c);
    KWSDBG_ASSIGN_OR_RETURN(int64_t mn, ParseInt(parts[4]));
    lat.config_.max_nodes = static_cast<size_t>(mn);
  }

  // schema fingerprint
  if (!std::getline(*in, line)) return Status::ParseError("missing schema");
  {
    std::vector<std::string> parts = Split(line, " ");
    if (parts.size() != 3 || parts[0] != "schema") {
      return Status::ParseError("bad schema line: " + line);
    }
    KWSDBG_ASSIGN_OR_RETURN(int64_t nrel, ParseInt(parts[1]));
    KWSDBG_ASSIGN_OR_RETURN(int64_t nedge, ParseInt(parts[2]));
    if (static_cast<size_t>(nrel) != schema.num_relations() ||
        static_cast<size_t>(nedge) != schema.num_edges()) {
      return Status::FailedPrecondition(
          "lattice was generated against a different schema graph (" +
          parts[1] + " relations / " + parts[2] + " edges vs " +
          std::to_string(schema.num_relations()) + " / " +
          std::to_string(schema.num_edges()) + ")");
    }
  }

  // stats
  if (!std::getline(*in, line)) return Status::ParseError("missing stats");
  {
    std::vector<std::string> parts = Split(line, " ");
    if (parts.size() < 2 || parts[0] != "stats") {
      return Status::ParseError("bad stats line: " + line);
    }
    KWSDBG_ASSIGN_OR_RETURN(int64_t levels, ParseInt(parts[1]));
    if (parts.size() != 2 + 3 * static_cast<size_t>(levels)) {
      return Status::ParseError("stats arity mismatch");
    }
    for (int64_t i = 0; i < levels; ++i) {
      LevelStats ls;
      KWSDBG_ASSIGN_OR_RETURN(int64_t g, ParseInt(parts[2 + 3 * i]));
      KWSDBG_ASSIGN_OR_RETURN(int64_t d, ParseInt(parts[3 + 3 * i]));
      KWSDBG_ASSIGN_OR_RETURN(int64_t k, ParseInt(parts[4 + 3 * i]));
      ls.generated = static_cast<size_t>(g);
      ls.duplicates = static_cast<size_t>(d);
      ls.kept = static_cast<size_t>(k);
      lat.level_stats_.push_back(ls);
    }
  }
  lat.levels_.resize(lat.config_.max_joins + 2);

  // nodes
  if (!std::getline(*in, line)) return Status::ParseError("missing nodes");
  std::vector<std::string> head = Split(line, " ");
  if (head.size() != 2 || head[0] != "nodes") {
    return Status::ParseError("bad nodes line: " + line);
  }
  KWSDBG_ASSIGN_OR_RETURN(int64_t num_nodes, ParseInt(head[1]));
  lat.nodes_.reserve(static_cast<size_t>(num_nodes));
  for (int64_t i = 0; i < num_nodes; ++i) {
    if (!std::getline(*in, line)) {
      return Status::ParseError("truncated node list at " +
                                std::to_string(i));
    }
    std::vector<std::string> parts = Split(line, " ");
    if (parts.empty() || parts[0] != "n") {
      return Status::ParseError("bad node line: " + line);
    }
    JoinTree tree;
    size_t p = 1;
    // Vertices until the "|" separator.
    std::vector<RelationCopy> vertices;
    for (; p < parts.size() && parts[p] != "|"; ++p) {
      std::vector<std::string> rc = Split(parts[p], ":");
      if (rc.size() != 2) {
        return Status::ParseError("bad vertex '" + parts[p] + "'");
      }
      KWSDBG_ASSIGN_OR_RETURN(int64_t rel, ParseInt(rc[0]));
      KWSDBG_ASSIGN_OR_RETURN(int64_t copy, ParseInt(rc[1]));
      if (static_cast<size_t>(rel) >= schema.num_relations()) {
        return Status::ParseError("vertex relation out of range: " + parts[p]);
      }
      vertices.push_back(RelationCopy{static_cast<RelationId>(rel),
                                      static_cast<uint16_t>(copy)});
    }
    if (p == parts.size()) {
      return Status::ParseError("node line missing '|': " + line);
    }
    if (vertices.empty()) {
      return Status::ParseError("node with no vertices: " + line);
    }
    // Rebuild via Single/Extend is awkward because edges reference indices;
    // reconstruct directly and validate.
    tree = JoinTree::Single(vertices[0]);
    // Collect edges first.
    struct RawEdge {
      uint16_t a, b;
      EdgeId e;
    };
    std::vector<RawEdge> edges;
    for (++p; p < parts.size(); ++p) {
      std::vector<std::string> abe = Split(parts[p], ",");
      if (abe.size() != 3) {
        return Status::ParseError("bad edge '" + parts[p] + "'");
      }
      KWSDBG_ASSIGN_OR_RETURN(int64_t a, ParseInt(abe[0]));
      KWSDBG_ASSIGN_OR_RETURN(int64_t b, ParseInt(abe[1]));
      KWSDBG_ASSIGN_OR_RETURN(int64_t e, ParseInt(abe[2]));
      edges.push_back(RawEdge{static_cast<uint16_t>(a),
                              static_cast<uint16_t>(b),
                              static_cast<EdgeId>(e)});
    }
    if (edges.size() + 1 != vertices.size()) {
      return Status::ParseError("node is not a tree: " + line);
    }
    // Re-grow the tree by repeatedly attaching edges whose one endpoint is
    // already present (order in the file is generation order, so edge k
    // attaches vertex k+1 — but do not rely on it; verify instead).
    std::vector<bool> vertex_in(vertices.size(), false);
    std::vector<int> remap(vertices.size(), -1);
    vertex_in[0] = true;
    remap[0] = 0;
    std::vector<bool> edge_used(edges.size(), false);
    for (size_t added = 0; added < edges.size(); ++added) {
      bool progress = false;
      for (size_t ei = 0; ei < edges.size(); ++ei) {
        if (edge_used[ei]) continue;
        const RawEdge& re = edges[ei];
        if (re.a >= vertices.size() || re.b >= vertices.size()) {
          return Status::ParseError("edge endpoint out of range: " + line);
        }
        uint16_t in_v, out_v;
        if (vertex_in[re.a] && !vertex_in[re.b]) {
          in_v = re.a;
          out_v = re.b;
        } else if (vertex_in[re.b] && !vertex_in[re.a]) {
          in_v = re.b;
          out_v = re.a;
        } else {
          continue;
        }
        tree = tree.Extend(static_cast<size_t>(remap[in_v]),
                           vertices[out_v], re.e);
        remap[out_v] = static_cast<int>(tree.num_vertices()) - 1;
        vertex_in[out_v] = true;
        edge_used[ei] = true;
        progress = true;
        break;
      }
      if (!progress) {
        return Status::ParseError("disconnected node: " + line);
      }
    }
    KWSDBG_RETURN_NOT_OK(tree.Validate(schema));
    const uint16_t level = static_cast<uint16_t>(tree.level());
    if (level >= lat.levels_.size()) {
      return Status::ParseError("node level exceeds config: " + line);
    }
    NodeId id = static_cast<NodeId>(lat.nodes_.size());
    std::string canonical = CanonicalLabel(tree);
    if (!lat.by_canonical_.emplace(canonical, id).second) {
      return Status::ParseError("duplicate node in file: " + line);
    }
    lat.nodes_.push_back(LatticeNode{id, std::move(tree), level, {}, {}});
    lat.levels_[level].push_back(id);
  }

  // Rebuild parent/child links: each node's children are its leaf-removals.
  for (NodeId id = 0; id < lat.nodes_.size(); ++id) {
    const JoinTree& tree = lat.nodes_[id].tree;
    if (tree.level() == 1) continue;
    for (size_t leaf : tree.LeafIndices()) {
      JoinTree sub = tree.RemoveLeaf(leaf);
      NodeId child = lat.FindByCanonical(CanonicalLabel(sub));
      if (child == kInvalidNode) {
        return Status::ParseError(
            "lattice not closed under sub-networks: missing child of node " +
            std::to_string(id));
      }
      lat.nodes_[id].children.push_back(child);
      lat.nodes_[child].parents.push_back(id);
    }
  }
  return lattice;
}

Status SaveLattice(const Lattice& lattice, std::ostream* out) {
  return LatticeIoAccess::Save(lattice, out);
}

Status SaveLatticeFile(const Lattice& lattice, const std::string& path) {
  std::ofstream f(path);
  if (!f) return Status::Internal("cannot open '" + path + "' for writing");
  return SaveLattice(lattice, &f);
}

StatusOr<std::unique_ptr<Lattice>> LoadLattice(const SchemaGraph& schema,
                                               std::istream* in) {
  return LatticeIoAccess::Load(schema, in);
}

StatusOr<std::unique_ptr<Lattice>> LoadLatticeFile(const SchemaGraph& schema,
                                                   const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::NotFound("cannot open '" + path + "' for reading");
  return LoadLattice(schema, &f);
}

}  // namespace kwsdbg
