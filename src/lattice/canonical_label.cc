#include "lattice/canonical_label.h"

#include <algorithm>

#include "common/logging.h"

namespace kwsdbg {

namespace {

// Upper bound on copies per relation used by the id packing. 2^16 matches
// the uint16_t copy field.
constexpr uint64_t kCopyBits = 16;

struct Adjacency {
  std::vector<std::vector<std::pair<size_t, EdgeId>>> neighbors;

  explicit Adjacency(const JoinTree& tree)
      : neighbors(tree.num_vertices()) {
    for (const auto& e : tree.edges()) {
      neighbors[e.a].emplace_back(e.b, e.schema_edge);
      neighbors[e.b].emplace_back(e.a, e.schema_edge);
    }
  }
};

// GetCode from Alg. 2: builds the label of the subtree rooted at `u`, with
// `parent` excluded from its children.
std::string GetCode(const JoinTree& tree, const Adjacency& adj, size_t u,
                    size_t parent) {
  std::string l = "[" + std::to_string(VertexLabelId(tree.vertex(u)));
  std::vector<std::string> child_labels;
  for (const auto& [v, eid] : adj.neighbors[u]) {
    if (v == parent) continue;
    child_labels.push_back(std::to_string(eid) +
                           GetCode(tree, adj, v, u));
  }
  if (!child_labels.empty()) {
    l += "|";
    std::sort(child_labels.begin(), child_labels.end());
    for (const auto& cl : child_labels) l += cl;
  }
  l += "]";
  return l;
}

}  // namespace

uint64_t VertexLabelId(RelationCopy v) {
  return (static_cast<uint64_t>(v.relation) << kCopyBits) |
         static_cast<uint64_t>(v.copy);
}

std::string CanonicalLabel(const JoinTree& tree) {
  KWSDBG_CHECK(tree.num_vertices() > 0);
  const Adjacency adj(tree);
  // R = vertices with the minimum label id (Alg. 2 line 16). Within a join
  // tree (relation, copy) pairs are unique, so there is exactly one, but we
  // keep the faithful min-over-roots form: it stays correct even if a caller
  // ever builds a tree with repeated labels.
  uint64_t min_id = VertexLabelId(tree.vertex(0));
  for (size_t i = 1; i < tree.num_vertices(); ++i) {
    min_id = std::min(min_id, VertexLabelId(tree.vertex(i)));
  }
  std::string best;
  for (size_t i = 0; i < tree.num_vertices(); ++i) {
    if (VertexLabelId(tree.vertex(i)) != min_id) continue;
    std::string code = GetCode(tree, adj, i, i);
    if (best.empty() || code < best) best = std::move(code);
  }
  return best;
}

}  // namespace kwsdbg
