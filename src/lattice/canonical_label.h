// Canonical labeling of join trees (paper Algorithm 2, an AHU-style scheme):
// two join trees are duplicates iff their canonical labelings are equal.
// Vertex labels are (relation, copy) pairs; edge labels are schema edge ids —
// both mapped to integers as the paper prescribes.
#ifndef KWSDBG_LATTICE_CANONICAL_LABEL_H_
#define KWSDBG_LATTICE_CANONICAL_LABEL_H_

#include <string>

#include "lattice/join_tree.h"

namespace kwsdbg {

/// Computes the canonical labeling of `tree` (paper Alg. 2): rooted at the
/// vertex(es) with minimum integer id, children ordered by their recursively
/// computed labels, rendered as "[id|e<id>[...]e<id>[...]]". The result is
/// equal for two trees iff they are the same labeled tree up to vertex /
/// edge enumeration order.
std::string CanonicalLabel(const JoinTree& tree);

/// The integer id assigned to a vertex label (relation, copy). Exposed for
/// tests; the encoding packs the copy into the low bits.
uint64_t VertexLabelId(RelationCopy v);

}  // namespace kwsdbg

#endif  // KWSDBG_LATTICE_CANONICAL_LABEL_H_
