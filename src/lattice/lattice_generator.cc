#include "lattice/lattice_generator.h"

#include "common/logging.h"
#include "common/timer.h"
#include "lattice/canonical_label.h"

namespace kwsdbg {

namespace {

/// Number of keyword copies for `rel` under `config`.
size_t KeywordCopies(const RelationInfo& rel, const LatticeConfig& config) {
  const size_t c = config.EffectiveKeywordCopies();
  switch (config.copy_policy) {
    case CopyPolicy::kAllRelations:
      return c;
    case CopyPolicy::kTextRelationsOnly:
      return rel.has_text ? c : 0;
  }
  return 0;
}

}  // namespace

StatusOr<std::unique_ptr<Lattice>> LatticeGenerator::Generate(
    const SchemaGraph& schema, const LatticeConfig& config) {
  if (schema.num_relations() == 0) {
    return Status::InvalidArgument("schema graph has no relations");
  }
  auto lattice = std::make_unique<Lattice>();
  Lattice& lat = *lattice;
  lat.schema_ = &schema;
  lat.config_ = config;
  const size_t max_level = config.max_joins + 1;
  lat.levels_.resize(max_level + 1);
  lat.level_stats_.resize(max_level);

  auto add_node = [&](JoinTree tree, std::string canonical) -> NodeId {
    NodeId id = static_cast<NodeId>(lat.nodes_.size());
    uint16_t level = static_cast<uint16_t>(tree.level());
    lat.nodes_.push_back(LatticeNode{id, std::move(tree), level, {}, {}});
    lat.levels_[level].push_back(id);
    lat.by_canonical_.emplace(std::move(canonical), id);
    return id;
  };

  // Base level L1: the free copy R_0 plus keyword copies R_1..R_c of every
  // relation (Alg. 1 lines 4-7; the R_0 copies are Sec. 2.2's extra copy).
  {
    Timer timer;
    LevelStats& stats = lat.level_stats_[0];
    for (const RelationInfo& rel : schema.relations()) {
      const size_t copies = KeywordCopies(rel, config);
      for (size_t c = 0; c <= copies; ++c) {
        JoinTree t = JoinTree::Single(
            RelationCopy{rel.id, static_cast<uint16_t>(c)});
        std::string canonical = CanonicalLabel(t);
        ++stats.generated;
        // Base trees are distinct by construction, but keep the uniform path.
        if (lat.by_canonical_.count(canonical)) {
          ++stats.duplicates;
          continue;
        }
        add_node(std::move(t), std::move(canonical));
      }
    }
    stats.kept = lat.levels_[1].size();
    stats.gen_millis = timer.ElapsedMillis();
  }

  // Higher levels L_k (Alg. 1 lines 9-18). Extending a level-(k-1) tree G at
  // vertex v along schema edge e to a fresh copy of the other endpoint either
  // creates a new node or rediscovers an existing one; in both cases the
  // child/parent link G -> G' is recorded (each (G, G') pair is produced by
  // exactly one (v, e, copy) extension, so links need no deduplication).
  for (size_t k = 2; k <= max_level; ++k) {
    Timer timer;
    LevelStats& stats = lat.level_stats_[k - 1];
    // Iterate over a copy of the id list: add_node appends to levels_.
    const std::vector<NodeId> prev_level = lat.levels_[k - 1];
    for (NodeId gid : prev_level) {
      // The tree is copied because nodes_ may reallocate during add_node.
      const JoinTree g = lat.nodes_[gid].tree;
      for (size_t vi = 0; vi < g.num_vertices(); ++vi) {
        const RelationId r = g.vertex(vi).relation;
        for (EdgeId eid : schema.IncidentEdges(r)) {
          const JoinEdge& se = schema.edge(eid);
          // DISCOVER validity rule: the FK side of a schema edge joins at
          // most one instance (see JoinTree::Validate). Skip extensions
          // that would use the edge a second time at an FK-side vertex.
          if (r == se.from && g.VertexUsesEdge(vi, eid)) continue;
          const RelationId other = schema.OtherEndpoint(se, r);
          const RelationInfo& other_info = schema.relation(other);
          const size_t copies = KeywordCopies(other_info, config);
          for (size_t c = 0; c <= copies; ++c) {
            RelationCopy nv{other, static_cast<uint16_t>(c)};
            if (g.ContainsVertex(nv)) continue;
            JoinTree extended = g.Extend(vi, nv, eid);
            std::string canonical = CanonicalLabel(extended);
            ++stats.generated;
            NodeId existing = lat.FindByCanonical(canonical);
            NodeId pid;
            if (existing != kInvalidNode) {
              ++stats.duplicates;  // Offline Pruning 1 (Alg. 1 line 17).
              pid = existing;
            } else {
              if (config.max_nodes != 0 &&
                  lat.nodes_.size() >= config.max_nodes) {
                return Status::OutOfRange(
                    "lattice exceeds max_nodes = " +
                    std::to_string(config.max_nodes) + " at level " +
                    std::to_string(k));
              }
              pid = add_node(std::move(extended), std::move(canonical));
            }
            lat.nodes_[gid].parents.push_back(pid);
            lat.nodes_[pid].children.push_back(gid);
          }
        }
      }
    }
    stats.kept = lat.levels_[k].size();
    stats.gen_millis = timer.ElapsedMillis();
  }
  return lattice;
}

}  // namespace kwsdbg
