// Offline lattice generation (paper Phase 0, Algorithm 1).
#ifndef KWSDBG_LATTICE_LATTICE_GENERATOR_H_
#define KWSDBG_LATTICE_LATTICE_GENERATOR_H_

#include <memory>

#include "common/status.h"
#include "lattice/lattice.h"

namespace kwsdbg {

/// Builds lattices from a schema graph. (CopyPolicy and LatticeConfig live
/// in lattice.h so the built Lattice can expose its configuration.)
class LatticeGenerator {
 public:
  /// Runs Algorithm 1: seeds level 1 with every relation copy, then extends
  /// level k-1 trees by one schema-graph edge at a time, deduplicating via
  /// canonical labeling and recording parent/child links.
  static StatusOr<std::unique_ptr<Lattice>> Generate(
      const SchemaGraph& schema, const LatticeConfig& config);
};

}  // namespace kwsdbg

#endif  // KWSDBG_LATTICE_LATTICE_GENERATOR_H_
