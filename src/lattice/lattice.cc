#include "lattice/lattice.h"

#include "common/logging.h"
#include "lattice/canonical_label.h"

namespace kwsdbg {

const std::vector<NodeId>& Lattice::NodesAtLevel(size_t level) const {
  static const std::vector<NodeId> kEmpty;
  if (level == 0 || level >= levels_.size()) return kEmpty;
  return levels_[level];
}

NodeId Lattice::FindByCanonical(const std::string& canonical) const {
  auto it = by_canonical_.find(canonical);
  return it == by_canonical_.end() ? kInvalidNode : it->second;
}

NodeId Lattice::FindTree(const JoinTree& tree) const {
  return FindByCanonical(CanonicalLabel(tree));
}

std::vector<NodeId> Lattice::Descendants(NodeId id) const {
  std::vector<NodeId> out;
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<NodeId> stack(nodes_[id].children.begin(),
                            nodes_[id].children.end());
  for (NodeId c : stack) seen[c] = true;
  while (!stack.empty()) {
    NodeId n = stack.back();
    stack.pop_back();
    out.push_back(n);
    for (NodeId c : nodes_[n].children) {
      if (!seen[c]) {
        seen[c] = true;
        stack.push_back(c);
      }
    }
  }
  return out;
}

std::vector<NodeId> Lattice::Ancestors(NodeId id) const {
  std::vector<NodeId> out;
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<NodeId> stack(nodes_[id].parents.begin(),
                            nodes_[id].parents.end());
  for (NodeId p : stack) seen[p] = true;
  while (!stack.empty()) {
    NodeId n = stack.back();
    stack.pop_back();
    out.push_back(n);
    for (NodeId p : nodes_[n].parents) {
      if (!seen[p]) {
        seen[p] = true;
        stack.push_back(p);
      }
    }
  }
  return out;
}

size_t Lattice::TotalDuplicates() const {
  size_t total = 0;
  for (const auto& ls : level_stats_) total += ls.duplicates;
  return total;
}

}  // namespace kwsdbg
