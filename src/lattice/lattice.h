// The sub-query lattice (paper Sec. 2.2): every deduplicated join network of
// relation copies up to a configured number of joins, organized by level with
// parent/child (supergraph-by-one-edge / subgraph-by-one-leaf) links.
#ifndef KWSDBG_LATTICE_LATTICE_H_
#define KWSDBG_LATTICE_LATTICE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "lattice/join_tree.h"

namespace kwsdbg {

/// Which relations receive keyword copies R_1..R_c in addition to the free
/// copy R_0.
enum class CopyPolicy {
  /// Literal Algorithm 1: every relation gets keyword copies. Exponential on
  /// real schemas; intended for small schemas and tests.
  kAllRelations,
  /// Keyword copies only for relations with text attributes — a copy of a
  /// text-free relation could never be bound to a keyword in Phase 1, so the
  /// pruned-away nodes are never generated in the first place. Default.
  kTextRelationsOnly,
};

/// Generation parameters.
struct LatticeConfig {
  /// Maximum number of joins m; the lattice has m+1 levels.
  size_t max_joins = 2;
  CopyPolicy copy_policy = CopyPolicy::kTextRelationsOnly;
  /// Number of keyword copies c per (eligible) relation; 0 means the paper
  /// default c = max_joins + 1. Setting c to the maximum number of query
  /// keywords (e.g. 3 for the paper's workload) is lossless for those
  /// queries and much cheaper.
  size_t num_keyword_copies = 0;
  /// Safety valve: abort generation with an error if the node count would
  /// exceed this (0 = unlimited).
  size_t max_nodes = 0;

  /// The c actually in effect.
  size_t EffectiveKeywordCopies() const {
    return num_keyword_copies == 0 ? max_joins + 1 : num_keyword_copies;
  }
};

/// Id of a node within a Lattice.
using NodeId = uint32_t;
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// One lattice node: a deduplicated join tree plus its hierarchy links.
struct LatticeNode {
  NodeId id;
  JoinTree tree;
  uint16_t level;                 ///< = tree.level() (#vertices).
  std::vector<NodeId> parents;    ///< Level+1 nodes extending this tree.
  std::vector<NodeId> children;   ///< Level-1 nodes (one leaf removed).
};

/// Per-level generation statistics (feeds Fig. 9).
struct LevelStats {
  size_t generated = 0;   ///< Extension attempts that produced a tree.
  size_t duplicates = 0;  ///< Of those, how many were canonical duplicates.
  size_t kept = 0;        ///< Distinct nodes retained at this level.
  double gen_millis = 0;  ///< Wall time spent generating this level.
};

/// Immutable-after-build lattice.
class Lattice {
 public:
  size_t num_nodes() const { return nodes_.size(); }
  size_t num_levels() const { return levels_.empty() ? 0 : levels_.size() - 1; }

  const LatticeNode& node(NodeId id) const { return nodes_[id]; }

  /// Node ids at `level` (1-based; level 1 = single tables).
  const std::vector<NodeId>& NodesAtLevel(size_t level) const;

  /// Looks up a node by the canonical labeling of its tree; kInvalidNode if
  /// absent.
  NodeId FindByCanonical(const std::string& canonical) const;

  /// Looks up the node holding exactly this tree; kInvalidNode if absent.
  NodeId FindTree(const JoinTree& tree) const;

  /// All proper descendants of `id` (transitive closure of children), i.e.
  /// every connected sub-network. Order is unspecified but deterministic.
  std::vector<NodeId> Descendants(NodeId id) const;

  /// All proper ancestors of `id` (transitive closure of parents).
  std::vector<NodeId> Ancestors(NodeId id) const;

  const std::vector<LevelStats>& level_stats() const { return level_stats_; }
  const SchemaGraph& schema() const { return *schema_; }
  const LatticeConfig& config() const { return config_; }

  /// Total duplicates removed across levels (Fig. 9(a)).
  size_t TotalDuplicates() const;

 private:
  friend class LatticeGenerator;
  friend class LatticeIoAccess;  // serialization (lattice_io.cc)

  std::vector<LatticeNode> nodes_;
  std::vector<std::vector<NodeId>> levels_;  // levels_[k] = ids at level k.
  std::unordered_map<std::string, NodeId> by_canonical_;
  std::vector<LevelStats> level_stats_;      // level_stats_[k-1] for level k.
  const SchemaGraph* schema_ = nullptr;
  LatticeConfig config_;
};

}  // namespace kwsdbg

#endif  // KWSDBG_LATTICE_LATTICE_H_
