// Persistence for the offline lattice (Phase 0 is a one-time cost the paper
// computes offline; a deployment saves the artifact and loads it at server
// start instead of regenerating).
//
// Format: a line-oriented text format ("KWSDBGLAT 1" header, the generation
// config, then one line per node: level, vertices as rel:copy pairs, edges
// as a,b,schema_edge triples). Parent/child links and the canonical-label
// map are rebuilt on load, and every tree is validated against the schema
// graph, so a corrupted or mismatched file fails loudly instead of
// producing a subtly wrong lattice.
#ifndef KWSDBG_LATTICE_LATTICE_IO_H_
#define KWSDBG_LATTICE_LATTICE_IO_H_

#include <iosfwd>
#include <memory>
#include <string>

#include "common/status.h"
#include "lattice/lattice.h"

namespace kwsdbg {

/// Serializes `lattice` to `out`.
Status SaveLattice(const Lattice& lattice, std::ostream* out);

/// Convenience: save to a file path.
Status SaveLatticeFile(const Lattice& lattice, const std::string& path);

/// Deserializes a lattice previously written by SaveLattice. `schema` must
/// be the same schema graph the lattice was generated from (relation and
/// edge ids are validated against it). Level generation timings are not
/// persisted (they describe the original generation run); node/duplicate
/// counts are.
StatusOr<std::unique_ptr<Lattice>> LoadLattice(const SchemaGraph& schema,
                                               std::istream* in);

/// Convenience: load from a file path.
StatusOr<std::unique_ptr<Lattice>> LoadLatticeFile(const SchemaGraph& schema,
                                                   const std::string& path);

}  // namespace kwsdbg

#endif  // KWSDBG_LATTICE_LATTICE_IO_H_
