// Runs the paper's Table 2 workload over the synthetic DBLife dataset and
// prints, per query, the answers / non-answers / MPAN counts and the work
// the chosen traversal strategy performed.
//
//   ./dblife_explorer [level] [strategy] ["extra keyword query"]
//
//   level     lattice level (default 5; the paper evaluates 3/5/7)
//   strategy  BU | BUWR | TD | TDWR | SBH (default SBH)
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "datasets/dblife.h"
#include "datasets/workload.h"
#include "debugger/non_answer_debugger.h"
#include "lattice/lattice_generator.h"

using namespace kwsdbg;

namespace {

StatusOr<TraversalKind> ParseStrategy(const char* name) {
  for (TraversalKind kind : AllTraversalKinds()) {
    if (TraversalKindName(kind) == name) return kind;
  }
  return Status::InvalidArgument(std::string("unknown strategy ") + name);
}

}  // namespace

int main(int argc, char** argv) {
  const size_t level = argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 5;
  const char* strategy_name = argc > 2 ? argv[2] : "SBH";
  auto strategy = ParseStrategy(strategy_name);
  if (!strategy.ok() || level < 2) {
    std::fprintf(stderr,
                 "usage: %s [level>=2] [BU|BUWR|TD|TDWR|SBH] [\"query\"]\n",
                 argv[0]);
    return 1;
  }

  auto dataset = GenerateDblife(DblifeConfig{});
  KWSDBG_CHECK(dataset.ok()) << dataset.status().ToString();
  std::printf("synthetic DBLife: %zu tables, %zu tuples\n",
              dataset->db->num_tables(), dataset->db->TotalTuples());

  LatticeConfig lattice_config;
  lattice_config.max_joins = level - 1;
  lattice_config.num_keyword_copies = 3;
  auto lattice = LatticeGenerator::Generate(dataset->schema, lattice_config);
  KWSDBG_CHECK(lattice.ok()) << lattice.status().ToString();
  std::printf("lattice: %zu nodes at level %zu (offline)\n\n",
              (*lattice)->num_nodes(), level);

  InvertedIndex index = InvertedIndex::Build(*dataset->db);
  DebuggerOptions options;
  options.strategy = *strategy;
  NonAnswerDebugger debugger(dataset->db.get(), lattice->get(), &index,
                             options);

  std::printf("%-4s %-32s %7s %8s %11s %6s %9s\n", "id", "query", "interp",
              "answers", "non-answers", "MPANs", "SQL");
  std::printf("%s\n", std::string(84, '-').c_str());
  for (const WorkloadQuery& q : PaperWorkload()) {
    auto report = debugger.Debug(q.text);
    KWSDBG_CHECK(report.ok()) << report.status().ToString();
    TraversalStats stats = report->AggregateTraversalStats();
    std::printf("%-4s %-32s %7zu %8zu %11zu %6zu %9zu\n", q.id.c_str(),
                q.text.c_str(), report->interpretations.size(),
                report->TotalAnswers(), report->TotalNonAnswers(),
                report->TotalMpans(), stats.sql_queries);
  }

  if (argc > 3) {
    std::printf("\n=== detailed report for \"%s\" (strategy %s) ===\n\n",
                argv[3], strategy_name);
    auto report = debugger.Debug(argv[3]);
    KWSDBG_CHECK(report.ok()) << report.status().ToString();
    std::printf("%s\n", report->ToString().c_str());
  }
  return 0;
}
