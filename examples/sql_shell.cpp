// Interactive shell over the in-memory engine — the substrate the KWS-S
// system runs on. Accepts the SQL subset the system generates (SELECT *
// over equi-joins and LIKE predicates) plus keyword queries.
//
//   ./sql_shell [toy|ecommerce|dblife]
//
// Commands:
//   SELECT ...            run a SQL query (the join-network subset, plus
//                         COUNT(*), ORDER BY, LIMIT)
//   explain SELECT ...    print the executor's plan for the query
//   kw: <keywords>        run the non-answer debugger on a keyword query
//   tables                list tables and row counts
//   sql: <keywords>       print the SQL of every candidate network
//   quit / EOF            exit
#include <cstdio>
#include <iostream>
#include <string>

#include "common/string_util.h"
#include "datasets/dblife.h"
#include "datasets/ecommerce.h"
#include "datasets/toy_product_db.h"
#include "debugger/non_answer_debugger.h"
#include "kws/query_builder.h"
#include "lattice/lattice_generator.h"
#include "sql/executor.h"
#include "sql/parser.h"
#include "sql/select_runner.h"

using namespace kwsdbg;

namespace {

struct Session {
  std::unique_ptr<Database> db;
  SchemaGraph schema;
  std::unique_ptr<Lattice> lattice;
  std::unique_ptr<InvertedIndex> index;
  std::unique_ptr<Executor> executor;
  std::unique_ptr<NonAnswerDebugger> debugger;
};

Status LoadDataset(const std::string& which, Session* s) {
  if (which == "toy") {
    KWSDBG_ASSIGN_OR_RETURN(ToyDataset ds, BuildToyProductDatabase());
    s->db = std::move(ds.db);
    s->schema = std::move(ds.schema);
  } else if (which == "ecommerce") {
    KWSDBG_ASSIGN_OR_RETURN(EcommerceDataset ds, GenerateEcommerce());
    s->db = std::move(ds.db);
    s->schema = std::move(ds.schema);
  } else if (which == "dblife") {
    KWSDBG_ASSIGN_OR_RETURN(DblifeDataset ds, GenerateDblife());
    s->db = std::move(ds.db);
    s->schema = std::move(ds.schema);
  } else {
    return Status::InvalidArgument("unknown dataset '" + which + "'");
  }
  LatticeConfig config;
  config.max_joins = which == "dblife" ? 4 : 2;
  config.num_keyword_copies = 3;
  KWSDBG_ASSIGN_OR_RETURN(s->lattice,
                          LatticeGenerator::Generate(s->schema, config));
  s->index = std::make_unique<InvertedIndex>(InvertedIndex::Build(*s->db));
  s->executor = std::make_unique<Executor>(s->db.get());
  DebuggerOptions options;
  options.sample_rows = 3;
  s->debugger = std::make_unique<NonAnswerDebugger>(
      s->db.get(), s->lattice.get(), s->index.get(), options);
  return Status::OK();
}

void RunSql(Session* s, const std::string& sql) {
  auto stmt = ParseSql(sql);
  if (!stmt.ok()) {
    std::printf("parse error: %s\n", stmt.status().ToString().c_str());
    return;
  }
  if (stmt->limit == 0 && !stmt->count_star) {
    stmt->limit = 100;  // keep interactive output bounded
  }
  auto rs = RunSelect(s->executor.get(), *stmt, *s->db);
  if (!rs.ok()) {
    std::printf("execution error: %s\n", rs.status().ToString().c_str());
    return;
  }
  std::printf("%s", rs->ToString().c_str());
}

void ExplainSql(Session* s, const std::string& sql) {
  auto stmt = ParseSql(sql);
  if (!stmt.ok()) {
    std::printf("parse error: %s\n", stmt.status().ToString().c_str());
    return;
  }
  auto query = FromSelectStatement(*stmt, *s->db);
  if (!query.ok()) {
    std::printf("unsupported query: %s\n",
                query.status().ToString().c_str());
    return;
  }
  auto plan = s->executor->Explain(*query);
  if (!plan.ok()) {
    std::printf("error: %s\n", plan.status().ToString().c_str());
    return;
  }
  std::printf("%s", plan->c_str());
}

void RunKeywords(Session* s, const std::string& keywords) {
  auto report = s->debugger->Debug(keywords);
  if (!report.ok()) {
    std::printf("error: %s\n", report.status().ToString().c_str());
    return;
  }
  std::printf("%s", report->ToString(5).c_str());
}

void ShowCandidateSql(Session* s, const std::string& keywords) {
  KeywordBinder binder(&s->schema, s->index.get(),
                       s->lattice->config().EffectiveKeywordCopies());
  BindingResult binding_result = binder.Bind(keywords);
  for (const KeywordBinding& binding : binding_result.interpretations) {
    PrunedLattice pl = PrunedLattice::Build(*s->lattice, binding);
    for (NodeId mtn : pl.mtns()) {
      auto query = BuildNodeQuery(*s->lattice, mtn, binding);
      if (!query.ok()) continue;
      auto sql = query->ToSql(*s->db);
      if (sql.ok()) std::printf("%s\n", sql->c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Session session;
  const std::string which = argc > 1 ? argv[1] : "toy";
  Status status = LoadDataset(which, &session);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\nusage: %s [toy|ecommerce|dblife]\n",
                 status.ToString().c_str(), argv[0]);
    return 1;
  }
  std::printf(
      "kwsdbg shell — dataset '%s' (%zu tables, %zu tuples). Type SQL, "
      "'kw: <query>', 'sql: <query>', 'tables', or 'quit'.\n",
      which.c_str(), session.db->num_tables(), session.db->TotalTuples());

  std::string line;
  while (true) {
    std::printf("kwsdbg> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::string trimmed(Trim(line));
    if (trimmed.empty()) continue;
    if (trimmed == "quit" || trimmed == "exit") break;
    if (trimmed == "tables") {
      for (const std::string& name : session.db->TableNames()) {
        const Table* t = session.db->FindTable(name);
        std::printf("  %-16s %8zu rows   (%s)\n", name.c_str(),
                    t->num_rows(), t->schema().ToString().c_str());
      }
    } else if (StartsWith(trimmed, "kw:")) {
      RunKeywords(&session, trimmed.substr(3));
    } else if (StartsWith(trimmed, "sql:")) {
      ShowCandidateSql(&session, trimmed.substr(4));
    } else if (StartsWith(trimmed, "explain ")) {
      ExplainSql(&session, trimmed.substr(8));
    } else {
      RunSql(&session, trimmed);
    }
  }
  std::printf("\n");
  return 0;
}
