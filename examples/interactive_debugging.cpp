// Interactive non-answer debugging (the paper's Sec. 5 future-work
// direction), scripted: the developer probes the most informative sub-query
// the system suggests, injects outside knowledge, and watches the
// answer/non-answer frontier resolve with far fewer SQL executions than a
// batch sweep.
//
//   ./interactive_debugging
#include <cstdio>

#include "common/logging.h"
#include "datasets/toy_product_db.h"
#include "debugger/interactive_session.h"
#include "lattice/lattice_generator.h"

using namespace kwsdbg;

int main() {
  auto dataset = BuildToyProductDatabase();
  KWSDBG_CHECK(dataset.ok());
  LatticeConfig config;
  config.max_joins = 2;
  config.num_keyword_copies = 3;
  auto lattice = LatticeGenerator::Generate(dataset->schema, config);
  KWSDBG_CHECK(lattice.ok());
  InvertedIndex index = InvertedIndex::Build(*dataset->db);

  // The q1 interpretation of "saffron scented candle" (saffron as a color).
  RelationId color = *dataset->schema.RelationIdByName("Color");
  RelationId item = *dataset->schema.RelationIdByName("Item");
  RelationId ptype = *dataset->schema.RelationIdByName("ProductType");
  KeywordBinding binding({{"saffron", {color, 1}},
                          {"scented", {item, 1}},
                          {"candle", {ptype, 1}}});
  PrunedLattice pl = PrunedLattice::Build(**lattice, binding);
  Executor executor(dataset->db.get());
  QueryEvaluator evaluator(dataset->db.get(), &executor, &pl, &index);
  InteractiveSession session(&pl, &evaluator);

  std::printf(
      "Debugging \"saffron scented candle\" (saffron as a color) "
      "interactively.\nSearch space: %zu sub-queries, %zu unknown.\n\n",
      pl.retained().size(), session.UnknownCount());

  int step = 0;
  while (session.UnknownCount() > 0) {
    ProbeSuggestion s = session.SuggestProbe();
    auto alive = session.Probe(s.node);
    KWSDBG_CHECK(alive.ok());
    std::printf(
        "step %d: probe [%s]\n         -> %s; %zu sub-queries still "
        "unknown (expected gain was %.1f)\n",
        ++step, s.network.c_str(), *alive ? "ALIVE" : "DEAD",
        session.UnknownCount(), s.expected_gain);
  }

  NodeId mtn = pl.mtns()[0];
  KWSDBG_CHECK(session.MtnResolved(mtn));
  std::printf(
      "\nResolved after %zu SQL queries (batch Return-Everything would "
      "issue one per sub-query).\nThe candidate network is %s, and its "
      "maximal alive sub-queries are:\n",
      evaluator.sql_executed(),
      session.StatusOf(mtn) == NodeStatus::kAlive ? "an ANSWER"
                                                  : "a NON-ANSWER");
  for (NodeId m : session.KnownMpans(mtn)) {
    std::printf("  - %s\n",
                pl.lattice().node(m).tree.ToString(dataset->schema).c_str());
  }
  std::printf(
      "\n(An analyst could also have injected knowledge: "
      "session.AssertDead(node) classifies every super-query dead via rule "
      "R2 with zero SQL.)\n");
  return 0;
}
