// The paper's motivating workflow (Sec. 1), on a 500-item catalog:
//
//   1. A shopper searches "saffron candle" — no results.
//   2. Instead of shipping the dreaded "No results found!" page, the
//      merchandising team runs the non-answer debugger. The maximal alive
//      sub-queries show the store *does* carry candles and *does* know a
//      saffron scent, but no color matches "saffron".
//   3. The team adds "saffron" as a synonym of yellow in the color
//      vocabulary (the fix the paper suggests for q1), reindexes, and
//      re-runs the query — it now returns the yellow candles.
//
//   ./ecommerce_debugging
#include <cstdio>

#include "common/logging.h"
#include "datasets/ecommerce.h"
#include "debugger/non_answer_debugger.h"
#include "lattice/lattice_generator.h"

using namespace kwsdbg;

namespace {

int Fail(const char* what, const Status& status) {
  std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
  return 1;
}

/// One debugging round; returns the number of answer queries found.
size_t DebugRound(NonAnswerDebugger* debugger, const std::string& query) {
  auto report = debugger->Debug(query);
  KWSDBG_CHECK(report.ok()) << report.status().ToString();
  std::printf("%s\n", report->ToString(/*max_items_per_section=*/4).c_str());
  return report->TotalAnswers();
}

}  // namespace

int main() {
  EcommerceConfig config;
  config.num_items = 500;
  auto dataset = GenerateEcommerce(config);
  if (!dataset.ok()) return Fail("dataset", dataset.status());
  std::printf("catalog: %zu tuples across %zu tables\n\n",
              dataset->db->TotalTuples(), dataset->db->num_tables());

  LatticeConfig lattice_config;
  lattice_config.max_joins = 2;
  lattice_config.num_keyword_copies = 2;
  auto lattice = LatticeGenerator::Generate(dataset->schema, lattice_config);
  if (!lattice.ok()) return Fail("lattice", lattice.status());

  const std::string query = "saffron candle";
  std::printf("=== Round 1: debugging the shopper query \"%s\" ===\n\n",
              query.c_str());
  size_t answers;
  {
    InvertedIndex index = InvertedIndex::Build(*dataset->db);
    DebuggerOptions options;
    options.sample_rows = 3;
    NonAnswerDebugger debugger(dataset->db.get(), lattice->get(), &index,
                               options);
    answers = DebugRound(&debugger, query);
    std::printf(
        "-> The candle x saffron-color join is dead while both sides are "
        "alive:\n   the color vocabulary simply has no \"saffron\". Applying "
        "the paper's fix...\n\n");
  }

  auto added = AddColorSynonym(dataset->db.get(), "yellow", "saffron");
  if (!added.ok()) return Fail("synonym", added.status());
  KWSDBG_CHECK(*added) << "color 'yellow' missing from catalog";
  std::printf(
      "=== Applied fix: Color[yellow].synonyms += \"saffron\"; reindexed "
      "===\n\n");

  std::printf("=== Round 2: the same query after the fix ===\n\n");
  {
    // Vocabulary edits invalidate the index; rebuild it (the lattice is
    // schema-only and needs no rebuild).
    InvertedIndex index = InvertedIndex::Build(*dataset->db);
    DebuggerOptions options;
    options.sample_rows = 3;
    NonAnswerDebugger debugger(dataset->db.get(), lattice->get(), &index,
                               options);
    size_t fixed_answers = DebugRound(&debugger, query);
    std::printf(
        "answers before fix: %zu, after fix: %zu — the non-answer is "
        "resolved without touching any item row.\n",
        answers, fixed_answers);
  }
  return 0;
}
