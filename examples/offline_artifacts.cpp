// The deployment workflow for Phase 0's offline artifacts: generate the
// dataset, export the tables as CSV, generate the lattice, persist it, then
// start a fresh "server" that loads everything back and serves a keyword
// query without regenerating anything.
//
//   ./offline_artifacts [directory]   (default: a temp-ish ./kwsdbg_artifacts)
#include <cstdio>
#include <filesystem>

#include "common/logging.h"
#include "common/timer.h"
#include "datasets/dblife.h"
#include "debugger/non_answer_debugger.h"
#include "lattice/lattice_generator.h"
#include "lattice/lattice_io.h"
#include "storage/csv.h"

using namespace kwsdbg;

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "kwsdbg_artifacts";
  std::filesystem::create_directories(dir);

  // ---- Offline: build and persist everything.
  {
    Timer timer;
    auto dataset = GenerateDblife(DblifeConfig{});
    KWSDBG_CHECK(dataset.ok());
    for (const std::string& name : dataset->db->TableNames()) {
      Status s = WriteTableCsvFile(*dataset->db->FindTable(name),
                                   dir + "/" + name + ".csv");
      KWSDBG_CHECK(s.ok()) << s.ToString();
    }
    LatticeConfig config;
    config.max_joins = 4;
    config.num_keyword_copies = 3;
    auto lattice = LatticeGenerator::Generate(dataset->schema, config);
    KWSDBG_CHECK(lattice.ok());
    Status s = SaveLatticeFile(**lattice, dir + "/lattice.kwsdbg");
    KWSDBG_CHECK(s.ok()) << s.ToString();
    std::printf(
        "offline: %zu tables (%zu tuples) as CSV + %zu-node lattice saved "
        "to %s/ in %.0f ms\n",
        dataset->db->num_tables(), dataset->db->TotalTuples(),
        (*lattice)->num_nodes(), dir.c_str(), timer.ElapsedMillis());
  }

  // ---- Online: a fresh process-like start from the artifacts alone.
  {
    Timer timer;
    // The schema graph is code/config in a real deployment; rebuild it from
    // the generator's definition (the data itself comes from the CSVs).
    auto schema_source = GenerateDblife(DblifeConfig{});
    KWSDBG_CHECK(schema_source.ok());
    Database db;
    for (const std::string& name : schema_source->db->TableNames()) {
      auto table = ReadTableCsvFile(name, dir + "/" + name + ".csv");
      KWSDBG_CHECK(table.ok()) << table.status().ToString();
      Status s = db.AddTable(std::make_unique<Table>(std::move(*table)));
      KWSDBG_CHECK(s.ok());
    }
    auto lattice =
        LoadLatticeFile(schema_source->schema, dir + "/lattice.kwsdbg");
    KWSDBG_CHECK(lattice.ok()) << lattice.status().ToString();
    InvertedIndex index = InvertedIndex::Build(db);
    std::printf(
        "online: loaded %zu tuples + %zu-node lattice + rebuilt index in "
        "%.0f ms\n\n",
        db.TotalTuples(), (*lattice)->num_nodes(), timer.ElapsedMillis());

    NonAnswerDebugger debugger(&db, lattice->get(), &index);
    auto report = debugger.Debug("widom trio");
    KWSDBG_CHECK(report.ok());
    std::printf("%s\n", report->ToString(3).c_str());
  }
  std::printf("artifacts left in %s/ for inspection.\n", dir.c_str());
  return 0;
}
