// Quickstart: the paper's Example 1 end to end.
//
// Builds the Fig. 2 toy product database, generates the sub-query lattice
// offline, and debugs the keyword query "saffron scented candle" — a
// non-answer whose frontier causes (maximal alive sub-queries) the system
// surfaces, exactly as Sec. 1-2 of the paper describe.
//
//   ./quickstart ["some keyword query"]
#include <cstdio>

#include "datasets/toy_product_db.h"
#include "debugger/non_answer_debugger.h"
#include "lattice/lattice_generator.h"

using namespace kwsdbg;

int main(int argc, char** argv) {
  const std::string query =
      argc > 1 ? argv[1] : "saffron scented candle";

  // 1. The structured data a user-facing search box actually sits on.
  auto dataset = BuildToyProductDatabase();
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 1;
  }

  // 2. Phase 0 (offline): the sub-query lattice over the schema graph.
  LatticeConfig lattice_config;
  lattice_config.max_joins = 2;        // the toy schema is a 2-hop star
  lattice_config.num_keyword_copies = 3;
  auto lattice = LatticeGenerator::Generate(dataset->schema, lattice_config);
  if (!lattice.ok()) {
    std::fprintf(stderr, "lattice: %s\n", lattice.status().ToString().c_str());
    return 1;
  }
  std::printf("offline lattice: %zu nodes across %zu levels\n\n",
              (*lattice)->num_nodes(), (*lattice)->num_levels());

  // 3. The inverted index that maps keywords to relations (Phase 1 input).
  InvertedIndex index = InvertedIndex::Build(*dataset->db);

  // 4. Debug the query: Phases 1-3 per keyword interpretation.
  DebuggerOptions options;
  options.sample_rows = 3;  // show a few tuples for answer queries
  NonAnswerDebugger debugger(dataset->db.get(), lattice->get(), &index,
                             options);
  auto report = debugger.Debug(query);
  if (!report.ok()) {
    std::fprintf(stderr, "debug: %s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", report->ToString().c_str());

  std::printf(
      "Reading the output: each [NON-ANSWER] is a candidate network that "
      "returned no tuples;\nits maximal alive sub-queries sit on the "
      "answer/non-answer frontier. For the paper's\nq1 (saffron as a color) "
      "they are \"scented candles\" and \"the color saffron\" — so\nadding "
      "saffron as a synonym of yellow would fix the non-answer.\n");
  return 0;
}
