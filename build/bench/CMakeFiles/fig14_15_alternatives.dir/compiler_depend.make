# Empty compiler generated dependencies file for fig14_15_alternatives.
# This may be replaced when dependencies are built.
