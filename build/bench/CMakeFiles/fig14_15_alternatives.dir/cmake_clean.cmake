file(REMOVE_RECURSE
  "CMakeFiles/fig14_15_alternatives.dir/fig14_15_alternatives.cc.o"
  "CMakeFiles/fig14_15_alternatives.dir/fig14_15_alternatives.cc.o.d"
  "fig14_15_alternatives"
  "fig14_15_alternatives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_15_alternatives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
