file(REMOVE_RECURSE
  "CMakeFiles/fig12_traversal_times.dir/fig12_traversal_times.cc.o"
  "CMakeFiles/fig12_traversal_times.dir/fig12_traversal_times.cc.o.d"
  "fig12_traversal_times"
  "fig12_traversal_times.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_traversal_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
