# Empty compiler generated dependencies file for fig12_traversal_times.
# This may be replaced when dependencies are built.
