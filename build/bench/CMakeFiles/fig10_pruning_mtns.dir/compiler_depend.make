# Empty compiler generated dependencies file for fig10_pruning_mtns.
# This may be replaced when dependencies are built.
