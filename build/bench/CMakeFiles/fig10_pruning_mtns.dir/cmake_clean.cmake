file(REMOVE_RECURSE
  "CMakeFiles/fig10_pruning_mtns.dir/fig10_pruning_mtns.cc.o"
  "CMakeFiles/fig10_pruning_mtns.dir/fig10_pruning_mtns.cc.o.d"
  "fig10_pruning_mtns"
  "fig10_pruning_mtns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_pruning_mtns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
