# Empty dependencies file for ablation_eval_shortcuts.
# This may be replaced when dependencies are built.
