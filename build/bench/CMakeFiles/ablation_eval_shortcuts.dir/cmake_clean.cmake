file(REMOVE_RECURSE
  "CMakeFiles/ablation_eval_shortcuts.dir/ablation_eval_shortcuts.cc.o"
  "CMakeFiles/ablation_eval_shortcuts.dir/ablation_eval_shortcuts.cc.o.d"
  "ablation_eval_shortcuts"
  "ablation_eval_shortcuts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_eval_shortcuts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
