# Empty dependencies file for table4_level_scaling.
# This may be replaced when dependencies are built.
