file(REMOVE_RECURSE
  "CMakeFiles/table4_level_scaling.dir/table4_level_scaling.cc.o"
  "CMakeFiles/table4_level_scaling.dir/table4_level_scaling.cc.o.d"
  "table4_level_scaling"
  "table4_level_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_level_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
