file(REMOVE_RECURSE
  "CMakeFiles/fig11_sql_query_counts.dir/fig11_sql_query_counts.cc.o"
  "CMakeFiles/fig11_sql_query_counts.dir/fig11_sql_query_counts.cc.o.d"
  "fig11_sql_query_counts"
  "fig11_sql_query_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_sql_query_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
