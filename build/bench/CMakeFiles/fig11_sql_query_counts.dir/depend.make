# Empty dependencies file for fig11_sql_query_counts.
# This may be replaced when dependencies are built.
