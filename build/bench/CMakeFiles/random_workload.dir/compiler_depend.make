# Empty compiler generated dependencies file for random_workload.
# This may be replaced when dependencies are built.
