file(REMOVE_RECURSE
  "CMakeFiles/random_workload.dir/random_workload.cc.o"
  "CMakeFiles/random_workload.dir/random_workload.cc.o.d"
  "random_workload"
  "random_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
