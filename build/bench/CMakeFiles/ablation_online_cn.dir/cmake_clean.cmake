file(REMOVE_RECURSE
  "CMakeFiles/ablation_online_cn.dir/ablation_online_cn.cc.o"
  "CMakeFiles/ablation_online_cn.dir/ablation_online_cn.cc.o.d"
  "ablation_online_cn"
  "ablation_online_cn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_online_cn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
