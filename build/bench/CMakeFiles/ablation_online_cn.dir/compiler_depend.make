# Empty compiler generated dependencies file for ablation_online_cn.
# This may be replaced when dependencies are built.
