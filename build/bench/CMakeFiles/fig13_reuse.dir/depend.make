# Empty dependencies file for fig13_reuse.
# This may be replaced when dependencies are built.
