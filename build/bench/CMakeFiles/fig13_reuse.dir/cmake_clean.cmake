file(REMOVE_RECURSE
  "CMakeFiles/fig13_reuse.dir/fig13_reuse.cc.o"
  "CMakeFiles/fig13_reuse.dir/fig13_reuse.cc.o.d"
  "fig13_reuse"
  "fig13_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
