# Empty dependencies file for ablation_pa_sensitivity.
# This may be replaced when dependencies are built.
