file(REMOVE_RECURSE
  "CMakeFiles/ablation_pa_sensitivity.dir/ablation_pa_sensitivity.cc.o"
  "CMakeFiles/ablation_pa_sensitivity.dir/ablation_pa_sensitivity.cc.o.d"
  "ablation_pa_sensitivity"
  "ablation_pa_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pa_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
