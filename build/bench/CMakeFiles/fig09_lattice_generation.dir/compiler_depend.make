# Empty compiler generated dependencies file for fig09_lattice_generation.
# This may be replaced when dependencies are built.
