
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig09_lattice_generation.cc" "bench/CMakeFiles/fig09_lattice_generation.dir/fig09_lattice_generation.cc.o" "gcc" "bench/CMakeFiles/fig09_lattice_generation.dir/fig09_lattice_generation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/kwsdbg_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/debugger/CMakeFiles/kwsdbg_debugger.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/kwsdbg_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/traversal/CMakeFiles/kwsdbg_traversal.dir/DependInfo.cmake"
  "/root/repo/build/src/kws/CMakeFiles/kwsdbg_kws.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/kwsdbg_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/lattice/CMakeFiles/kwsdbg_lattice.dir/DependInfo.cmake"
  "/root/repo/build/src/datasets/CMakeFiles/kwsdbg_datasets.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/kwsdbg_text.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/kwsdbg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/kwsdbg_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/kwsdbg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
