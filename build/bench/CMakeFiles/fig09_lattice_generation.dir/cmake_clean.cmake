file(REMOVE_RECURSE
  "CMakeFiles/fig09_lattice_generation.dir/fig09_lattice_generation.cc.o"
  "CMakeFiles/fig09_lattice_generation.dir/fig09_lattice_generation.cc.o.d"
  "fig09_lattice_generation"
  "fig09_lattice_generation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_lattice_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
