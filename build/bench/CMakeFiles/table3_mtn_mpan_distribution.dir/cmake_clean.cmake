file(REMOVE_RECURSE
  "CMakeFiles/table3_mtn_mpan_distribution.dir/table3_mtn_mpan_distribution.cc.o"
  "CMakeFiles/table3_mtn_mpan_distribution.dir/table3_mtn_mpan_distribution.cc.o.d"
  "table3_mtn_mpan_distribution"
  "table3_mtn_mpan_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_mtn_mpan_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
