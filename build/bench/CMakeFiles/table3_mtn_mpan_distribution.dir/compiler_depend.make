# Empty compiler generated dependencies file for table3_mtn_mpan_distribution.
# This may be replaced when dependencies are built.
