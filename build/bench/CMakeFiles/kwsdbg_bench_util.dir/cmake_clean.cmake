file(REMOVE_RECURSE
  "CMakeFiles/kwsdbg_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/kwsdbg_bench_util.dir/bench_util.cc.o.d"
  "libkwsdbg_bench_util.a"
  "libkwsdbg_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kwsdbg_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
