# Empty dependencies file for kwsdbg_bench_util.
# This may be replaced when dependencies are built.
