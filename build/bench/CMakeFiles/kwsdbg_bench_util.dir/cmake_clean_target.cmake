file(REMOVE_RECURSE
  "libkwsdbg_bench_util.a"
)
