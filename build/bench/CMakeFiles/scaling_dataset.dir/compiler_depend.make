# Empty compiler generated dependencies file for scaling_dataset.
# This may be replaced when dependencies are built.
