file(REMOVE_RECURSE
  "CMakeFiles/scaling_dataset.dir/scaling_dataset.cc.o"
  "CMakeFiles/scaling_dataset.dir/scaling_dataset.cc.o.d"
  "scaling_dataset"
  "scaling_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
