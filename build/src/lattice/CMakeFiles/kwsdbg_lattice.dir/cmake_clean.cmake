file(REMOVE_RECURSE
  "CMakeFiles/kwsdbg_lattice.dir/canonical_label.cc.o"
  "CMakeFiles/kwsdbg_lattice.dir/canonical_label.cc.o.d"
  "CMakeFiles/kwsdbg_lattice.dir/join_tree.cc.o"
  "CMakeFiles/kwsdbg_lattice.dir/join_tree.cc.o.d"
  "CMakeFiles/kwsdbg_lattice.dir/lattice.cc.o"
  "CMakeFiles/kwsdbg_lattice.dir/lattice.cc.o.d"
  "CMakeFiles/kwsdbg_lattice.dir/lattice_generator.cc.o"
  "CMakeFiles/kwsdbg_lattice.dir/lattice_generator.cc.o.d"
  "CMakeFiles/kwsdbg_lattice.dir/lattice_io.cc.o"
  "CMakeFiles/kwsdbg_lattice.dir/lattice_io.cc.o.d"
  "libkwsdbg_lattice.a"
  "libkwsdbg_lattice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kwsdbg_lattice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
