file(REMOVE_RECURSE
  "libkwsdbg_lattice.a"
)
