# Empty dependencies file for kwsdbg_lattice.
# This may be replaced when dependencies are built.
