
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lattice/canonical_label.cc" "src/lattice/CMakeFiles/kwsdbg_lattice.dir/canonical_label.cc.o" "gcc" "src/lattice/CMakeFiles/kwsdbg_lattice.dir/canonical_label.cc.o.d"
  "/root/repo/src/lattice/join_tree.cc" "src/lattice/CMakeFiles/kwsdbg_lattice.dir/join_tree.cc.o" "gcc" "src/lattice/CMakeFiles/kwsdbg_lattice.dir/join_tree.cc.o.d"
  "/root/repo/src/lattice/lattice.cc" "src/lattice/CMakeFiles/kwsdbg_lattice.dir/lattice.cc.o" "gcc" "src/lattice/CMakeFiles/kwsdbg_lattice.dir/lattice.cc.o.d"
  "/root/repo/src/lattice/lattice_generator.cc" "src/lattice/CMakeFiles/kwsdbg_lattice.dir/lattice_generator.cc.o" "gcc" "src/lattice/CMakeFiles/kwsdbg_lattice.dir/lattice_generator.cc.o.d"
  "/root/repo/src/lattice/lattice_io.cc" "src/lattice/CMakeFiles/kwsdbg_lattice.dir/lattice_io.cc.o" "gcc" "src/lattice/CMakeFiles/kwsdbg_lattice.dir/lattice_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kwsdbg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/kwsdbg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/kwsdbg_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
