file(REMOVE_RECURSE
  "CMakeFiles/kwsdbg_debugger.dir/debug_report.cc.o"
  "CMakeFiles/kwsdbg_debugger.dir/debug_report.cc.o.d"
  "CMakeFiles/kwsdbg_debugger.dir/frontier.cc.o"
  "CMakeFiles/kwsdbg_debugger.dir/frontier.cc.o.d"
  "CMakeFiles/kwsdbg_debugger.dir/interactive_session.cc.o"
  "CMakeFiles/kwsdbg_debugger.dir/interactive_session.cc.o.d"
  "CMakeFiles/kwsdbg_debugger.dir/non_answer_debugger.cc.o"
  "CMakeFiles/kwsdbg_debugger.dir/non_answer_debugger.cc.o.d"
  "CMakeFiles/kwsdbg_debugger.dir/ranking.cc.o"
  "CMakeFiles/kwsdbg_debugger.dir/ranking.cc.o.d"
  "CMakeFiles/kwsdbg_debugger.dir/report_json.cc.o"
  "CMakeFiles/kwsdbg_debugger.dir/report_json.cc.o.d"
  "libkwsdbg_debugger.a"
  "libkwsdbg_debugger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kwsdbg_debugger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
