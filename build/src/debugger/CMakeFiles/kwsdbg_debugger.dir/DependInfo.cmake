
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/debugger/debug_report.cc" "src/debugger/CMakeFiles/kwsdbg_debugger.dir/debug_report.cc.o" "gcc" "src/debugger/CMakeFiles/kwsdbg_debugger.dir/debug_report.cc.o.d"
  "/root/repo/src/debugger/frontier.cc" "src/debugger/CMakeFiles/kwsdbg_debugger.dir/frontier.cc.o" "gcc" "src/debugger/CMakeFiles/kwsdbg_debugger.dir/frontier.cc.o.d"
  "/root/repo/src/debugger/interactive_session.cc" "src/debugger/CMakeFiles/kwsdbg_debugger.dir/interactive_session.cc.o" "gcc" "src/debugger/CMakeFiles/kwsdbg_debugger.dir/interactive_session.cc.o.d"
  "/root/repo/src/debugger/non_answer_debugger.cc" "src/debugger/CMakeFiles/kwsdbg_debugger.dir/non_answer_debugger.cc.o" "gcc" "src/debugger/CMakeFiles/kwsdbg_debugger.dir/non_answer_debugger.cc.o.d"
  "/root/repo/src/debugger/ranking.cc" "src/debugger/CMakeFiles/kwsdbg_debugger.dir/ranking.cc.o" "gcc" "src/debugger/CMakeFiles/kwsdbg_debugger.dir/ranking.cc.o.d"
  "/root/repo/src/debugger/report_json.cc" "src/debugger/CMakeFiles/kwsdbg_debugger.dir/report_json.cc.o" "gcc" "src/debugger/CMakeFiles/kwsdbg_debugger.dir/report_json.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kwsdbg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/kws/CMakeFiles/kwsdbg_kws.dir/DependInfo.cmake"
  "/root/repo/build/src/traversal/CMakeFiles/kwsdbg_traversal.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/kwsdbg_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/kwsdbg_text.dir/DependInfo.cmake"
  "/root/repo/build/src/lattice/CMakeFiles/kwsdbg_lattice.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/kwsdbg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/kwsdbg_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
