file(REMOVE_RECURSE
  "libkwsdbg_debugger.a"
)
