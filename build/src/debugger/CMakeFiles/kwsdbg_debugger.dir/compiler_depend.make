# Empty compiler generated dependencies file for kwsdbg_debugger.
# This may be replaced when dependencies are built.
