file(REMOVE_RECURSE
  "libkwsdbg_graph.a"
)
