# Empty dependencies file for kwsdbg_graph.
# This may be replaced when dependencies are built.
