file(REMOVE_RECURSE
  "CMakeFiles/kwsdbg_graph.dir/schema_graph.cc.o"
  "CMakeFiles/kwsdbg_graph.dir/schema_graph.cc.o.d"
  "libkwsdbg_graph.a"
  "libkwsdbg_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kwsdbg_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
