# Empty compiler generated dependencies file for kwsdbg_text.
# This may be replaced when dependencies are built.
