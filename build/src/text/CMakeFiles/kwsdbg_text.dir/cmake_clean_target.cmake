file(REMOVE_RECURSE
  "libkwsdbg_text.a"
)
