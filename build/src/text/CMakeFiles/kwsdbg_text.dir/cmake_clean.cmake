file(REMOVE_RECURSE
  "CMakeFiles/kwsdbg_text.dir/inverted_index.cc.o"
  "CMakeFiles/kwsdbg_text.dir/inverted_index.cc.o.d"
  "CMakeFiles/kwsdbg_text.dir/tokenizer.cc.o"
  "CMakeFiles/kwsdbg_text.dir/tokenizer.cc.o.d"
  "libkwsdbg_text.a"
  "libkwsdbg_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kwsdbg_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
