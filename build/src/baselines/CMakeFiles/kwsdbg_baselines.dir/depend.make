# Empty dependencies file for kwsdbg_baselines.
# This may be replaced when dependencies are built.
