file(REMOVE_RECURSE
  "libkwsdbg_baselines.a"
)
