file(REMOVE_RECURSE
  "CMakeFiles/kwsdbg_baselines.dir/parallel_oracle.cc.o"
  "CMakeFiles/kwsdbg_baselines.dir/parallel_oracle.cc.o.d"
  "CMakeFiles/kwsdbg_baselines.dir/return_everything.cc.o"
  "CMakeFiles/kwsdbg_baselines.dir/return_everything.cc.o.d"
  "CMakeFiles/kwsdbg_baselines.dir/return_nothing.cc.o"
  "CMakeFiles/kwsdbg_baselines.dir/return_nothing.cc.o.d"
  "libkwsdbg_baselines.a"
  "libkwsdbg_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kwsdbg_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
