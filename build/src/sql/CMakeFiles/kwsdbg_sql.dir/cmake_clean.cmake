file(REMOVE_RECURSE
  "CMakeFiles/kwsdbg_sql.dir/ast.cc.o"
  "CMakeFiles/kwsdbg_sql.dir/ast.cc.o.d"
  "CMakeFiles/kwsdbg_sql.dir/executor.cc.o"
  "CMakeFiles/kwsdbg_sql.dir/executor.cc.o.d"
  "CMakeFiles/kwsdbg_sql.dir/join_network.cc.o"
  "CMakeFiles/kwsdbg_sql.dir/join_network.cc.o.d"
  "CMakeFiles/kwsdbg_sql.dir/lexer.cc.o"
  "CMakeFiles/kwsdbg_sql.dir/lexer.cc.o.d"
  "CMakeFiles/kwsdbg_sql.dir/like_matcher.cc.o"
  "CMakeFiles/kwsdbg_sql.dir/like_matcher.cc.o.d"
  "CMakeFiles/kwsdbg_sql.dir/parser.cc.o"
  "CMakeFiles/kwsdbg_sql.dir/parser.cc.o.d"
  "CMakeFiles/kwsdbg_sql.dir/row_index.cc.o"
  "CMakeFiles/kwsdbg_sql.dir/row_index.cc.o.d"
  "CMakeFiles/kwsdbg_sql.dir/select_runner.cc.o"
  "CMakeFiles/kwsdbg_sql.dir/select_runner.cc.o.d"
  "libkwsdbg_sql.a"
  "libkwsdbg_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kwsdbg_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
