# Empty dependencies file for kwsdbg_sql.
# This may be replaced when dependencies are built.
