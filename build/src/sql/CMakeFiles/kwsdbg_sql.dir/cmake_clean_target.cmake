file(REMOVE_RECURSE
  "libkwsdbg_sql.a"
)
