
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sql/ast.cc" "src/sql/CMakeFiles/kwsdbg_sql.dir/ast.cc.o" "gcc" "src/sql/CMakeFiles/kwsdbg_sql.dir/ast.cc.o.d"
  "/root/repo/src/sql/executor.cc" "src/sql/CMakeFiles/kwsdbg_sql.dir/executor.cc.o" "gcc" "src/sql/CMakeFiles/kwsdbg_sql.dir/executor.cc.o.d"
  "/root/repo/src/sql/join_network.cc" "src/sql/CMakeFiles/kwsdbg_sql.dir/join_network.cc.o" "gcc" "src/sql/CMakeFiles/kwsdbg_sql.dir/join_network.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/sql/CMakeFiles/kwsdbg_sql.dir/lexer.cc.o" "gcc" "src/sql/CMakeFiles/kwsdbg_sql.dir/lexer.cc.o.d"
  "/root/repo/src/sql/like_matcher.cc" "src/sql/CMakeFiles/kwsdbg_sql.dir/like_matcher.cc.o" "gcc" "src/sql/CMakeFiles/kwsdbg_sql.dir/like_matcher.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/sql/CMakeFiles/kwsdbg_sql.dir/parser.cc.o" "gcc" "src/sql/CMakeFiles/kwsdbg_sql.dir/parser.cc.o.d"
  "/root/repo/src/sql/row_index.cc" "src/sql/CMakeFiles/kwsdbg_sql.dir/row_index.cc.o" "gcc" "src/sql/CMakeFiles/kwsdbg_sql.dir/row_index.cc.o.d"
  "/root/repo/src/sql/select_runner.cc" "src/sql/CMakeFiles/kwsdbg_sql.dir/select_runner.cc.o" "gcc" "src/sql/CMakeFiles/kwsdbg_sql.dir/select_runner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kwsdbg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/kwsdbg_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
