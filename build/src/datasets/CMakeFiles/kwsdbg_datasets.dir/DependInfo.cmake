
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datasets/dblife.cc" "src/datasets/CMakeFiles/kwsdbg_datasets.dir/dblife.cc.o" "gcc" "src/datasets/CMakeFiles/kwsdbg_datasets.dir/dblife.cc.o.d"
  "/root/repo/src/datasets/ecommerce.cc" "src/datasets/CMakeFiles/kwsdbg_datasets.dir/ecommerce.cc.o" "gcc" "src/datasets/CMakeFiles/kwsdbg_datasets.dir/ecommerce.cc.o.d"
  "/root/repo/src/datasets/query_generator.cc" "src/datasets/CMakeFiles/kwsdbg_datasets.dir/query_generator.cc.o" "gcc" "src/datasets/CMakeFiles/kwsdbg_datasets.dir/query_generator.cc.o.d"
  "/root/repo/src/datasets/toy_product_db.cc" "src/datasets/CMakeFiles/kwsdbg_datasets.dir/toy_product_db.cc.o" "gcc" "src/datasets/CMakeFiles/kwsdbg_datasets.dir/toy_product_db.cc.o.d"
  "/root/repo/src/datasets/workload.cc" "src/datasets/CMakeFiles/kwsdbg_datasets.dir/workload.cc.o" "gcc" "src/datasets/CMakeFiles/kwsdbg_datasets.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kwsdbg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/kwsdbg_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/kwsdbg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/kwsdbg_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
