file(REMOVE_RECURSE
  "CMakeFiles/kwsdbg_datasets.dir/dblife.cc.o"
  "CMakeFiles/kwsdbg_datasets.dir/dblife.cc.o.d"
  "CMakeFiles/kwsdbg_datasets.dir/ecommerce.cc.o"
  "CMakeFiles/kwsdbg_datasets.dir/ecommerce.cc.o.d"
  "CMakeFiles/kwsdbg_datasets.dir/query_generator.cc.o"
  "CMakeFiles/kwsdbg_datasets.dir/query_generator.cc.o.d"
  "CMakeFiles/kwsdbg_datasets.dir/toy_product_db.cc.o"
  "CMakeFiles/kwsdbg_datasets.dir/toy_product_db.cc.o.d"
  "CMakeFiles/kwsdbg_datasets.dir/workload.cc.o"
  "CMakeFiles/kwsdbg_datasets.dir/workload.cc.o.d"
  "libkwsdbg_datasets.a"
  "libkwsdbg_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kwsdbg_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
