# Empty compiler generated dependencies file for kwsdbg_datasets.
# This may be replaced when dependencies are built.
