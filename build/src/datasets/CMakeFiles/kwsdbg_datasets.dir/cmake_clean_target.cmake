file(REMOVE_RECURSE
  "libkwsdbg_datasets.a"
)
