# Empty dependencies file for kwsdbg_traversal.
# This may be replaced when dependencies are built.
