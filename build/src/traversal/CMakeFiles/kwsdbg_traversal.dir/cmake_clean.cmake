file(REMOVE_RECURSE
  "CMakeFiles/kwsdbg_traversal.dir/bottom_up.cc.o"
  "CMakeFiles/kwsdbg_traversal.dir/bottom_up.cc.o.d"
  "CMakeFiles/kwsdbg_traversal.dir/bottom_up_reuse.cc.o"
  "CMakeFiles/kwsdbg_traversal.dir/bottom_up_reuse.cc.o.d"
  "CMakeFiles/kwsdbg_traversal.dir/evaluator.cc.o"
  "CMakeFiles/kwsdbg_traversal.dir/evaluator.cc.o.d"
  "CMakeFiles/kwsdbg_traversal.dir/node_status.cc.o"
  "CMakeFiles/kwsdbg_traversal.dir/node_status.cc.o.d"
  "CMakeFiles/kwsdbg_traversal.dir/pa_estimator.cc.o"
  "CMakeFiles/kwsdbg_traversal.dir/pa_estimator.cc.o.d"
  "CMakeFiles/kwsdbg_traversal.dir/score_based.cc.o"
  "CMakeFiles/kwsdbg_traversal.dir/score_based.cc.o.d"
  "CMakeFiles/kwsdbg_traversal.dir/strategy.cc.o"
  "CMakeFiles/kwsdbg_traversal.dir/strategy.cc.o.d"
  "CMakeFiles/kwsdbg_traversal.dir/top_down.cc.o"
  "CMakeFiles/kwsdbg_traversal.dir/top_down.cc.o.d"
  "CMakeFiles/kwsdbg_traversal.dir/top_down_reuse.cc.o"
  "CMakeFiles/kwsdbg_traversal.dir/top_down_reuse.cc.o.d"
  "libkwsdbg_traversal.a"
  "libkwsdbg_traversal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kwsdbg_traversal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
