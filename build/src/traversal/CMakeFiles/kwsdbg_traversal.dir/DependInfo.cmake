
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traversal/bottom_up.cc" "src/traversal/CMakeFiles/kwsdbg_traversal.dir/bottom_up.cc.o" "gcc" "src/traversal/CMakeFiles/kwsdbg_traversal.dir/bottom_up.cc.o.d"
  "/root/repo/src/traversal/bottom_up_reuse.cc" "src/traversal/CMakeFiles/kwsdbg_traversal.dir/bottom_up_reuse.cc.o" "gcc" "src/traversal/CMakeFiles/kwsdbg_traversal.dir/bottom_up_reuse.cc.o.d"
  "/root/repo/src/traversal/evaluator.cc" "src/traversal/CMakeFiles/kwsdbg_traversal.dir/evaluator.cc.o" "gcc" "src/traversal/CMakeFiles/kwsdbg_traversal.dir/evaluator.cc.o.d"
  "/root/repo/src/traversal/node_status.cc" "src/traversal/CMakeFiles/kwsdbg_traversal.dir/node_status.cc.o" "gcc" "src/traversal/CMakeFiles/kwsdbg_traversal.dir/node_status.cc.o.d"
  "/root/repo/src/traversal/pa_estimator.cc" "src/traversal/CMakeFiles/kwsdbg_traversal.dir/pa_estimator.cc.o" "gcc" "src/traversal/CMakeFiles/kwsdbg_traversal.dir/pa_estimator.cc.o.d"
  "/root/repo/src/traversal/score_based.cc" "src/traversal/CMakeFiles/kwsdbg_traversal.dir/score_based.cc.o" "gcc" "src/traversal/CMakeFiles/kwsdbg_traversal.dir/score_based.cc.o.d"
  "/root/repo/src/traversal/strategy.cc" "src/traversal/CMakeFiles/kwsdbg_traversal.dir/strategy.cc.o" "gcc" "src/traversal/CMakeFiles/kwsdbg_traversal.dir/strategy.cc.o.d"
  "/root/repo/src/traversal/top_down.cc" "src/traversal/CMakeFiles/kwsdbg_traversal.dir/top_down.cc.o" "gcc" "src/traversal/CMakeFiles/kwsdbg_traversal.dir/top_down.cc.o.d"
  "/root/repo/src/traversal/top_down_reuse.cc" "src/traversal/CMakeFiles/kwsdbg_traversal.dir/top_down_reuse.cc.o" "gcc" "src/traversal/CMakeFiles/kwsdbg_traversal.dir/top_down_reuse.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kwsdbg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/kws/CMakeFiles/kwsdbg_kws.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/kwsdbg_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/kwsdbg_text.dir/DependInfo.cmake"
  "/root/repo/build/src/lattice/CMakeFiles/kwsdbg_lattice.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/kwsdbg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/kwsdbg_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
