file(REMOVE_RECURSE
  "libkwsdbg_traversal.a"
)
