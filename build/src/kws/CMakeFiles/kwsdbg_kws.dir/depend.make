# Empty dependencies file for kwsdbg_kws.
# This may be replaced when dependencies are built.
