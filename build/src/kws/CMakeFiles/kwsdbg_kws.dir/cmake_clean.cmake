file(REMOVE_RECURSE
  "CMakeFiles/kwsdbg_kws.dir/keyword_binding.cc.o"
  "CMakeFiles/kwsdbg_kws.dir/keyword_binding.cc.o.d"
  "CMakeFiles/kwsdbg_kws.dir/online_cn_generator.cc.o"
  "CMakeFiles/kwsdbg_kws.dir/online_cn_generator.cc.o.d"
  "CMakeFiles/kwsdbg_kws.dir/pruned_lattice.cc.o"
  "CMakeFiles/kwsdbg_kws.dir/pruned_lattice.cc.o.d"
  "CMakeFiles/kwsdbg_kws.dir/query_builder.cc.o"
  "CMakeFiles/kwsdbg_kws.dir/query_builder.cc.o.d"
  "libkwsdbg_kws.a"
  "libkwsdbg_kws.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kwsdbg_kws.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
