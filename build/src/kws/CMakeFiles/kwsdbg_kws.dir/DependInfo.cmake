
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kws/keyword_binding.cc" "src/kws/CMakeFiles/kwsdbg_kws.dir/keyword_binding.cc.o" "gcc" "src/kws/CMakeFiles/kwsdbg_kws.dir/keyword_binding.cc.o.d"
  "/root/repo/src/kws/online_cn_generator.cc" "src/kws/CMakeFiles/kwsdbg_kws.dir/online_cn_generator.cc.o" "gcc" "src/kws/CMakeFiles/kwsdbg_kws.dir/online_cn_generator.cc.o.d"
  "/root/repo/src/kws/pruned_lattice.cc" "src/kws/CMakeFiles/kwsdbg_kws.dir/pruned_lattice.cc.o" "gcc" "src/kws/CMakeFiles/kwsdbg_kws.dir/pruned_lattice.cc.o.d"
  "/root/repo/src/kws/query_builder.cc" "src/kws/CMakeFiles/kwsdbg_kws.dir/query_builder.cc.o" "gcc" "src/kws/CMakeFiles/kwsdbg_kws.dir/query_builder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kwsdbg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/kwsdbg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/lattice/CMakeFiles/kwsdbg_lattice.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/kwsdbg_text.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/kwsdbg_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/kwsdbg_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
