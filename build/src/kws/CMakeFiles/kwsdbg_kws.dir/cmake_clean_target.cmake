file(REMOVE_RECURSE
  "libkwsdbg_kws.a"
)
