file(REMOVE_RECURSE
  "CMakeFiles/kwsdbg_common.dir/logging.cc.o"
  "CMakeFiles/kwsdbg_common.dir/logging.cc.o.d"
  "CMakeFiles/kwsdbg_common.dir/rng.cc.o"
  "CMakeFiles/kwsdbg_common.dir/rng.cc.o.d"
  "CMakeFiles/kwsdbg_common.dir/status.cc.o"
  "CMakeFiles/kwsdbg_common.dir/status.cc.o.d"
  "CMakeFiles/kwsdbg_common.dir/string_util.cc.o"
  "CMakeFiles/kwsdbg_common.dir/string_util.cc.o.d"
  "libkwsdbg_common.a"
  "libkwsdbg_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kwsdbg_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
