# Empty dependencies file for kwsdbg_common.
# This may be replaced when dependencies are built.
