file(REMOVE_RECURSE
  "libkwsdbg_common.a"
)
