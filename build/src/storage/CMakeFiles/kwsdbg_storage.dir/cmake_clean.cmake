file(REMOVE_RECURSE
  "CMakeFiles/kwsdbg_storage.dir/csv.cc.o"
  "CMakeFiles/kwsdbg_storage.dir/csv.cc.o.d"
  "CMakeFiles/kwsdbg_storage.dir/database.cc.o"
  "CMakeFiles/kwsdbg_storage.dir/database.cc.o.d"
  "CMakeFiles/kwsdbg_storage.dir/schema.cc.o"
  "CMakeFiles/kwsdbg_storage.dir/schema.cc.o.d"
  "CMakeFiles/kwsdbg_storage.dir/table.cc.o"
  "CMakeFiles/kwsdbg_storage.dir/table.cc.o.d"
  "CMakeFiles/kwsdbg_storage.dir/value.cc.o"
  "CMakeFiles/kwsdbg_storage.dir/value.cc.o.d"
  "libkwsdbg_storage.a"
  "libkwsdbg_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kwsdbg_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
