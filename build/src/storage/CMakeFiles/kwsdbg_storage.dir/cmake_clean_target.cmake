file(REMOVE_RECURSE
  "libkwsdbg_storage.a"
)
