# Empty dependencies file for kwsdbg_storage.
# This may be replaced when dependencies are built.
