file(REMOVE_RECURSE
  "CMakeFiles/parallel_oracle_test.dir/baselines/parallel_oracle_test.cc.o"
  "CMakeFiles/parallel_oracle_test.dir/baselines/parallel_oracle_test.cc.o.d"
  "parallel_oracle_test"
  "parallel_oracle_test.pdb"
  "parallel_oracle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
