# Empty compiler generated dependencies file for parallel_oracle_test.
# This may be replaced when dependencies are built.
