file(REMOVE_RECURSE
  "CMakeFiles/lattice_generator_test.dir/lattice/lattice_generator_test.cc.o"
  "CMakeFiles/lattice_generator_test.dir/lattice/lattice_generator_test.cc.o.d"
  "lattice_generator_test"
  "lattice_generator_test.pdb"
  "lattice_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lattice_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
