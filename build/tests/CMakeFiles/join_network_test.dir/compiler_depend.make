# Empty compiler generated dependencies file for join_network_test.
# This may be replaced when dependencies are built.
