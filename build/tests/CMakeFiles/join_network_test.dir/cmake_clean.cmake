file(REMOVE_RECURSE
  "CMakeFiles/join_network_test.dir/sql/join_network_test.cc.o"
  "CMakeFiles/join_network_test.dir/sql/join_network_test.cc.o.d"
  "join_network_test"
  "join_network_test.pdb"
  "join_network_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
