file(REMOVE_RECURSE
  "CMakeFiles/node_filter_test.dir/kws/node_filter_test.cc.o"
  "CMakeFiles/node_filter_test.dir/kws/node_filter_test.cc.o.d"
  "node_filter_test"
  "node_filter_test.pdb"
  "node_filter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
