# Empty dependencies file for node_filter_test.
# This may be replaced when dependencies are built.
