# Empty dependencies file for lattice_io_test.
# This may be replaced when dependencies are built.
