file(REMOVE_RECURSE
  "CMakeFiles/lattice_io_test.dir/lattice/lattice_io_test.cc.o"
  "CMakeFiles/lattice_io_test.dir/lattice/lattice_io_test.cc.o.d"
  "lattice_io_test"
  "lattice_io_test.pdb"
  "lattice_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lattice_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
