# Empty compiler generated dependencies file for ecommerce_test.
# This may be replaced when dependencies are built.
