file(REMOVE_RECURSE
  "CMakeFiles/ecommerce_test.dir/datasets/ecommerce_test.cc.o"
  "CMakeFiles/ecommerce_test.dir/datasets/ecommerce_test.cc.o.d"
  "ecommerce_test"
  "ecommerce_test.pdb"
  "ecommerce_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecommerce_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
