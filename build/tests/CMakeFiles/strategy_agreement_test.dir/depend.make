# Empty dependencies file for strategy_agreement_test.
# This may be replaced when dependencies are built.
