file(REMOVE_RECURSE
  "CMakeFiles/strategy_agreement_test.dir/traversal/strategy_agreement_test.cc.o"
  "CMakeFiles/strategy_agreement_test.dir/traversal/strategy_agreement_test.cc.o.d"
  "strategy_agreement_test"
  "strategy_agreement_test.pdb"
  "strategy_agreement_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strategy_agreement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
