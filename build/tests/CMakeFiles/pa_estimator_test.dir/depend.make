# Empty dependencies file for pa_estimator_test.
# This may be replaced when dependencies are built.
