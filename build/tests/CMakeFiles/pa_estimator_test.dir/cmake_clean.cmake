file(REMOVE_RECURSE
  "CMakeFiles/pa_estimator_test.dir/traversal/pa_estimator_test.cc.o"
  "CMakeFiles/pa_estimator_test.dir/traversal/pa_estimator_test.cc.o.d"
  "pa_estimator_test"
  "pa_estimator_test.pdb"
  "pa_estimator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pa_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
