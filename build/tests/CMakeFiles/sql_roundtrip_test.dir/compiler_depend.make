# Empty compiler generated dependencies file for sql_roundtrip_test.
# This may be replaced when dependencies are built.
