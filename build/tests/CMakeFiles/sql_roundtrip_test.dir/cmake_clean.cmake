file(REMOVE_RECURSE
  "CMakeFiles/sql_roundtrip_test.dir/sql/sql_roundtrip_test.cc.o"
  "CMakeFiles/sql_roundtrip_test.dir/sql/sql_roundtrip_test.cc.o.d"
  "sql_roundtrip_test"
  "sql_roundtrip_test.pdb"
  "sql_roundtrip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_roundtrip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
