# Empty dependencies file for like_matcher_test.
# This may be replaced when dependencies are built.
