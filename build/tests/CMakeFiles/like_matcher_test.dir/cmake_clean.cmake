file(REMOVE_RECURSE
  "CMakeFiles/like_matcher_test.dir/sql/like_matcher_test.cc.o"
  "CMakeFiles/like_matcher_test.dir/sql/like_matcher_test.cc.o.d"
  "like_matcher_test"
  "like_matcher_test.pdb"
  "like_matcher_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/like_matcher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
