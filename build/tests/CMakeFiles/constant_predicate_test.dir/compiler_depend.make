# Empty compiler generated dependencies file for constant_predicate_test.
# This may be replaced when dependencies are built.
