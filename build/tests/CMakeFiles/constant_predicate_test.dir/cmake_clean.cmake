file(REMOVE_RECURSE
  "CMakeFiles/constant_predicate_test.dir/sql/constant_predicate_test.cc.o"
  "CMakeFiles/constant_predicate_test.dir/sql/constant_predicate_test.cc.o.d"
  "constant_predicate_test"
  "constant_predicate_test.pdb"
  "constant_predicate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constant_predicate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
