file(REMOVE_RECURSE
  "CMakeFiles/select_runner_test.dir/sql/select_runner_test.cc.o"
  "CMakeFiles/select_runner_test.dir/sql/select_runner_test.cc.o.d"
  "select_runner_test"
  "select_runner_test.pdb"
  "select_runner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/select_runner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
