# Empty dependencies file for select_runner_test.
# This may be replaced when dependencies are built.
