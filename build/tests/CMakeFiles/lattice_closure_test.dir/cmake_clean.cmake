file(REMOVE_RECURSE
  "CMakeFiles/lattice_closure_test.dir/lattice/lattice_closure_test.cc.o"
  "CMakeFiles/lattice_closure_test.dir/lattice/lattice_closure_test.cc.o.d"
  "lattice_closure_test"
  "lattice_closure_test.pdb"
  "lattice_closure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lattice_closure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
