file(REMOVE_RECURSE
  "CMakeFiles/pruned_lattice_test.dir/kws/pruned_lattice_test.cc.o"
  "CMakeFiles/pruned_lattice_test.dir/kws/pruned_lattice_test.cc.o.d"
  "pruned_lattice_test"
  "pruned_lattice_test.pdb"
  "pruned_lattice_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pruned_lattice_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
