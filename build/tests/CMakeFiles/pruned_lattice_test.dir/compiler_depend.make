# Empty compiler generated dependencies file for pruned_lattice_test.
# This may be replaced when dependencies are built.
