# Empty compiler generated dependencies file for keyword_binding_test.
# This may be replaced when dependencies are built.
