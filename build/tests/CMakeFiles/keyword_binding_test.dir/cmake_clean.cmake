file(REMOVE_RECURSE
  "CMakeFiles/keyword_binding_test.dir/kws/keyword_binding_test.cc.o"
  "CMakeFiles/keyword_binding_test.dir/kws/keyword_binding_test.cc.o.d"
  "keyword_binding_test"
  "keyword_binding_test.pdb"
  "keyword_binding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keyword_binding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
