file(REMOVE_RECURSE
  "CMakeFiles/debug_report_test.dir/debugger/debug_report_test.cc.o"
  "CMakeFiles/debug_report_test.dir/debugger/debug_report_test.cc.o.d"
  "debug_report_test"
  "debug_report_test.pdb"
  "debug_report_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
