# Empty dependencies file for debug_report_test.
# This may be replaced when dependencies are built.
