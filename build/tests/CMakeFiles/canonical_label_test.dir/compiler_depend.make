# Empty compiler generated dependencies file for canonical_label_test.
# This may be replaced when dependencies are built.
