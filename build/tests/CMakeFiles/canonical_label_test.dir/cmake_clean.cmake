file(REMOVE_RECURSE
  "CMakeFiles/canonical_label_test.dir/lattice/canonical_label_test.cc.o"
  "CMakeFiles/canonical_label_test.dir/lattice/canonical_label_test.cc.o.d"
  "canonical_label_test"
  "canonical_label_test.pdb"
  "canonical_label_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canonical_label_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
