file(REMOVE_RECURSE
  "CMakeFiles/node_status_test.dir/traversal/node_status_test.cc.o"
  "CMakeFiles/node_status_test.dir/traversal/node_status_test.cc.o.d"
  "node_status_test"
  "node_status_test.pdb"
  "node_status_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_status_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
