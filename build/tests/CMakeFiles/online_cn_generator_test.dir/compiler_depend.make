# Empty compiler generated dependencies file for online_cn_generator_test.
# This may be replaced when dependencies are built.
