file(REMOVE_RECURSE
  "CMakeFiles/online_cn_generator_test.dir/kws/online_cn_generator_test.cc.o"
  "CMakeFiles/online_cn_generator_test.dir/kws/online_cn_generator_test.cc.o.d"
  "online_cn_generator_test"
  "online_cn_generator_test.pdb"
  "online_cn_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_cn_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
