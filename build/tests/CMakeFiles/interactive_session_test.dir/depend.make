# Empty dependencies file for interactive_session_test.
# This may be replaced when dependencies are built.
