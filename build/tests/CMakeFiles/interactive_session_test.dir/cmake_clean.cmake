file(REMOVE_RECURSE
  "CMakeFiles/interactive_session_test.dir/debugger/interactive_session_test.cc.o"
  "CMakeFiles/interactive_session_test.dir/debugger/interactive_session_test.cc.o.d"
  "interactive_session_test"
  "interactive_session_test.pdb"
  "interactive_session_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interactive_session_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
