# Empty compiler generated dependencies file for dblife_explorer.
# This may be replaced when dependencies are built.
