file(REMOVE_RECURSE
  "CMakeFiles/dblife_explorer.dir/dblife_explorer.cpp.o"
  "CMakeFiles/dblife_explorer.dir/dblife_explorer.cpp.o.d"
  "dblife_explorer"
  "dblife_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dblife_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
