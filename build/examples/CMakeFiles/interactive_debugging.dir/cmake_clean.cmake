file(REMOVE_RECURSE
  "CMakeFiles/interactive_debugging.dir/interactive_debugging.cpp.o"
  "CMakeFiles/interactive_debugging.dir/interactive_debugging.cpp.o.d"
  "interactive_debugging"
  "interactive_debugging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interactive_debugging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
