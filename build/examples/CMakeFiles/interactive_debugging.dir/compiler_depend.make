# Empty compiler generated dependencies file for interactive_debugging.
# This may be replaced when dependencies are built.
