file(REMOVE_RECURSE
  "CMakeFiles/offline_artifacts.dir/offline_artifacts.cpp.o"
  "CMakeFiles/offline_artifacts.dir/offline_artifacts.cpp.o.d"
  "offline_artifacts"
  "offline_artifacts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_artifacts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
