# Empty compiler generated dependencies file for offline_artifacts.
# This may be replaced when dependencies are built.
