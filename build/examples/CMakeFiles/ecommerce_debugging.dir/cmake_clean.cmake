file(REMOVE_RECURSE
  "CMakeFiles/ecommerce_debugging.dir/ecommerce_debugging.cpp.o"
  "CMakeFiles/ecommerce_debugging.dir/ecommerce_debugging.cpp.o.d"
  "ecommerce_debugging"
  "ecommerce_debugging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecommerce_debugging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
