# Empty dependencies file for ecommerce_debugging.
# This may be replaced when dependencies are built.
