#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

namespace kwsdbg {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(7);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) ++counts[rng.Uniform(10)];
  for (int c : counts) {
    EXPECT_GT(c, 800);   // each bucket ~1000 expected
    EXPECT_LT(c, 1200);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(3);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  Rng rng(13);
  ZipfSampler z(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[z.Sample(&rng)];
  for (int c : counts) {
    EXPECT_GT(c, 1600);
    EXPECT_LT(c, 2400);
  }
}

TEST(ZipfTest, SkewPrefersLowRanks) {
  Rng rng(13);
  ZipfSampler z(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[z.Sample(&rng)];
  EXPECT_GT(counts[0], counts[10] * 3);
  EXPECT_GT(counts[0], counts[50]);
}

TEST(ZipfTest, SamplesInRange) {
  Rng rng(21);
  ZipfSampler z(7, 1.2);
  for (int i = 0; i < 5000; ++i) EXPECT_LT(z.Sample(&rng), 7u);
}

TEST(ZipfTest, SingleElement) {
  Rng rng(1);
  ZipfSampler z(1, 2.0);
  EXPECT_EQ(z.Sample(&rng), 0u);
}

}  // namespace
}  // namespace kwsdbg
