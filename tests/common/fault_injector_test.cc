// Unit tests for the fault-injection framework: spec parsing, trigger
// semantics (probability / every-Nth / after / times), determinism across
// identical schedules, latency-only faults, and scoped install/clear.
#include "common/fault_injector.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/timer.h"

namespace kwsdbg {
namespace {

TEST(FaultInjectorParseTest, MinimalSpec) {
  auto spec = FaultInjector::ParseSpec("executor.join.probe=unavailable");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->point, "executor.join.probe");
  EXPECT_EQ(spec->code, StatusCode::kUnavailable);
  EXPECT_DOUBLE_EQ(spec->probability, 1.0);
  EXPECT_EQ(spec->every, 0u);
  EXPECT_EQ(spec->after, 0u);
  EXPECT_EQ(spec->times, 0u);
  EXPECT_DOUBLE_EQ(spec->latency_millis, 0.0);
}

TEST(FaultInjectorParseTest, AllKeys) {
  auto spec = FaultInjector::ParseSpec(
      "cache.verdict.lookup=resource-exhausted,p=0.25,every=3,after=10,"
      "times=2,latency=5,seed=99");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->point, "cache.verdict.lookup");
  EXPECT_EQ(spec->code, StatusCode::kResourceExhausted);
  EXPECT_DOUBLE_EQ(spec->probability, 0.25);
  EXPECT_EQ(spec->every, 3u);
  EXPECT_EQ(spec->after, 10u);
  EXPECT_EQ(spec->times, 2u);
  EXPECT_DOUBLE_EQ(spec->latency_millis, 5.0);
  EXPECT_EQ(spec->seed, 99u);
}

TEST(FaultInjectorParseTest, AllCodes) {
  const std::vector<std::pair<std::string, StatusCode>> cases = {
      {"unavailable", StatusCode::kUnavailable},
      {"resource-exhausted", StatusCode::kResourceExhausted},
      {"resource", StatusCode::kResourceExhausted},
      {"deadline", StatusCode::kDeadlineExceeded},
      {"internal", StatusCode::kInternal},
      {"invalid-argument", StatusCode::kInvalidArgument},
      {"invalid", StatusCode::kInvalidArgument},
      {"notfound", StatusCode::kNotFound},
      {"ok", StatusCode::kOk},
      {"latency", StatusCode::kOk},
  };
  for (const auto& [name, code] : cases) {
    auto spec = FaultInjector::ParseSpec("x=" + name);
    ASSERT_TRUE(spec.ok()) << name << ": " << spec.status().ToString();
    EXPECT_EQ(spec->code, code) << name;
  }
}

TEST(FaultInjectorParseTest, Malformed) {
  EXPECT_FALSE(FaultInjector::ParseSpec("").ok());
  EXPECT_FALSE(FaultInjector::ParseSpec("nocode").ok());
  EXPECT_FALSE(FaultInjector::ParseSpec("=unavailable").ok());
  EXPECT_FALSE(FaultInjector::ParseSpec("x=bogus-code").ok());
  EXPECT_FALSE(FaultInjector::ParseSpec("x=unavailable,p=notanumber").ok());
  EXPECT_FALSE(FaultInjector::ParseSpec("x=unavailable,p=1.5").ok());
  EXPECT_FALSE(FaultInjector::ParseSpec("x=unavailable,every=abc").ok());
  EXPECT_FALSE(FaultInjector::ParseSpec("x=unavailable,unknownkey=1").ok());
}

TEST(FaultInjectorTest, UnarmedPointNeverFires) {
  ScopedFaultInjection faults("other.point=unavailable");
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(FaultInjector::Global().Hit("this.point").ok());
  }
  EXPECT_EQ(FaultInjector::Global().StatsFor("this.point").fires, 0u);
}

TEST(FaultInjectorTest, AlwaysFiresByDefaultAndNamesThePoint) {
  ScopedFaultInjection faults("storage.table.read=unavailable");
  Status s = FaultInjector::Global().Hit("storage.table.read");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(s.IsRetryable());
  EXPECT_NE(s.message().find("storage.table.read"), std::string::npos)
      << "injected status must name the fault point: " << s.ToString();
}

TEST(FaultInjectorTest, EveryNth) {
  ScopedFaultInjection faults("p=internal,every=3");
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) {
    fired.push_back(!FaultInjector::Global().Hit("p").ok());
  }
  // Hits are 1-based: fires on hit 3, 6, 9.
  EXPECT_EQ(fired, std::vector<bool>({false, false, true, false, false, true,
                                      false, false, true}));
}

TEST(FaultInjectorTest, AfterSkipsEarlyHitsAndTimesBoundsFires) {
  ScopedFaultInjection faults("p=unavailable,after=2,times=3");
  size_t fires = 0;
  for (int i = 0; i < 10; ++i) {
    if (!FaultInjector::Global().Hit("p").ok()) ++fires;
  }
  EXPECT_EQ(fires, 3u);
  const FaultPointStats stats = FaultInjector::Global().StatsFor("p");
  EXPECT_EQ(stats.hits, 10u);
  EXPECT_EQ(stats.fires, 3u);
  // The first two hits were exempt, so fires are hits 3, 4, 5.
  EXPECT_EQ(FaultInjector::Global().TotalFires(), 3u);
}

TEST(FaultInjectorTest, ProbabilityIsDeterministicGivenSeed) {
  auto run = [] {
    ScopedFaultInjection faults("p=unavailable,p=0.5,seed=7");
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(!FaultInjector::Global().Hit("p").ok());
    }
    return fired;
  };
  const std::vector<bool> a = run();
  const std::vector<bool> b = run();
  EXPECT_EQ(a, b) << "same schedule + seed must replay the same fires";
  const size_t fires = static_cast<size_t>(
      std::count(a.begin(), a.end(), true));
  EXPECT_GT(fires, 16u);  // p=0.5 over 64 draws: loose two-sided bound.
  EXPECT_LT(fires, 48u);
}

TEST(FaultInjectorTest, LatencyOnlyFaultSleepsButReturnsOk) {
  ScopedFaultInjection faults("p=ok,latency=20,times=1");
  Timer timer;
  EXPECT_TRUE(FaultInjector::Global().Hit("p").ok());
  EXPECT_GE(timer.ElapsedMillis(), 15.0);
  EXPECT_EQ(FaultInjector::Global().StatsFor("p").fires, 1u);
  // Budget exhausted: no more sleeps.
  Timer second;
  EXPECT_TRUE(FaultInjector::Global().Hit("p").ok());
  EXPECT_LT(second.ElapsedMillis(), 15.0);
}

TEST(FaultInjectorTest, MultiPointScheduleAndSummary) {
  ScopedFaultInjection faults(
      "a=unavailable,times=1;b=internal,every=2,times=1");
  EXPECT_FALSE(FaultInjector::Global().Hit("a").ok());
  EXPECT_TRUE(FaultInjector::Global().Hit("b").ok());
  EXPECT_FALSE(FaultInjector::Global().Hit("b").ok());
  const std::string summary = FaultInjector::Global().Summary();
  EXPECT_NE(summary.find("a:"), std::string::npos) << summary;
  EXPECT_NE(summary.find("b:"), std::string::npos) << summary;
  EXPECT_EQ(FaultInjector::Global().TotalFires(), 2u);
}

TEST(FaultInjectorTest, ScopedInjectionClearsOnExit) {
  {
    ScopedFaultInjection faults("p=unavailable");
    EXPECT_TRUE(FaultInjector::Enabled());
    EXPECT_FALSE(FaultInjector::Global().Hit("p").ok());
  }
  EXPECT_FALSE(FaultInjector::Enabled());
  EXPECT_TRUE(FaultInjector::Global().Hit("p").ok());
}

TEST(FaultInjectorTest, ConfigureRejectsMalformedScheduleAtomically) {
  FaultInjector& fi = FaultInjector::Global();
  ASSERT_TRUE(fi.Configure("good=unavailable").ok());
  // Second spec is broken: the whole schedule must be rejected, keeping the
  // previous one armed.
  EXPECT_FALSE(fi.Configure("first=unavailable;second=bogus").ok());
  EXPECT_FALSE(fi.Hit("good").ok()) << "previous schedule must survive";
  EXPECT_TRUE(fi.Hit("first").ok());
  fi.Clear();
  EXPECT_FALSE(FaultInjector::Enabled());
}

}  // namespace
}  // namespace kwsdbg
