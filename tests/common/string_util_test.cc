#include "common/string_util.h"

#include <gtest/gtest.h>

namespace kwsdbg {
namespace {

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("Hello World 123"), "hello world 123");
  EXPECT_EQ(ToLower(""), "");
  EXPECT_EQ(ToLower("already lower"), "already lower");
}

TEST(StringUtilTest, SplitDropsEmptyPieces) {
  EXPECT_EQ(Split("a,b,,c", ","), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("  x  y ", " "), (std::vector<std::string>{"x", "y"}));
  EXPECT_TRUE(Split("", ",").empty());
  EXPECT_TRUE(Split(",,,", ",").empty());
}

TEST(StringUtilTest, SplitMultipleDelims) {
  EXPECT_EQ(Split("a,b;c", ",;"), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"only"}, ", "), "only");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("hi"), "hi");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("\t\nx\r "), "x");
}

TEST(StringUtilTest, ContainsCaseInsensitive) {
  EXPECT_TRUE(ContainsCaseInsensitive("Saffron Scented Candle", "scented"));
  EXPECT_TRUE(ContainsCaseInsensitive("SAFFRON", "saffron"));
  EXPECT_TRUE(ContainsCaseInsensitive("abc", ""));
  EXPECT_FALSE(ContainsCaseInsensitive("", "x"));
  EXPECT_FALSE(ContainsCaseInsensitive("candle", "candles"));
  // Substring semantics: "scent" occurs inside "scented".
  EXPECT_TRUE(ContainsCaseInsensitive("scented", "scent"));
}

TEST(StringUtilTest, EqualsCaseInsensitive) {
  EXPECT_TRUE(EqualsCaseInsensitive("VLDB", "vldb"));
  EXPECT_FALSE(EqualsCaseInsensitive("VLDB", "vld"));
  EXPECT_TRUE(EqualsCaseInsensitive("", ""));
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("SELECT *", "SELECT"));
  EXPECT_FALSE(StartsWith("SEL", "SELECT"));
  EXPECT_TRUE(StartsWith("anything", ""));
}

TEST(StringUtilTest, ParseByteSize) {
  EXPECT_EQ(ParseByteSize("0"), 0u);
  EXPECT_EQ(ParseByteSize("4096"), 4096u);
  EXPECT_EQ(ParseByteSize("2K"), 2048u);
  EXPECT_EQ(ParseByteSize("2k"), 2048u);
  EXPECT_EQ(ParseByteSize("64M"), 64u << 20);
  EXPECT_EQ(ParseByteSize("1G"), 1u << 30);
  EXPECT_EQ(ParseByteSize("64MB"), 64u << 20);  // optional trailing B
  // Malformed or empty parses to 0 ("unset"), never to garbage.
  EXPECT_EQ(ParseByteSize(""), 0u);
  EXPECT_EQ(ParseByteSize("lots"), 0u);
  EXPECT_EQ(ParseByteSize("12Q"), 0u);
  EXPECT_EQ(ParseByteSize("M12"), 0u);
}

}  // namespace
}  // namespace kwsdbg
