#include "common/logging.h"

#include <gtest/gtest.h>

namespace kwsdbg {
namespace {

TEST(LoggingTest, LogLevelRoundTrips) {
  LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(before);
}

TEST(LoggingTest, CheckPassesOnTrue) {
  KWSDBG_CHECK(1 + 1 == 2) << "never shown";
  SUCCEED();
}

TEST(LoggingDeathTest, CheckAbortsOnFalse) {
  EXPECT_DEATH({ KWSDBG_CHECK(false) << "expected failure"; },
               "Check failed");
}

TEST(LoggingDeathTest, CheckComparisonsAbort) {
  EXPECT_DEATH({ KWSDBG_CHECK_EQ(1, 2); }, "Check failed");
  EXPECT_DEATH({ KWSDBG_CHECK_LT(5, 2); }, "Check failed");
}

TEST(LoggingTest, CheckComparisonsPass) {
  KWSDBG_CHECK_EQ(2, 2);
  KWSDBG_CHECK_NE(1, 2);
  KWSDBG_CHECK_LT(1, 2);
  KWSDBG_CHECK_LE(2, 2);
  KWSDBG_CHECK_GT(3, 2);
  KWSDBG_CHECK_GE(3, 3);
  SUCCEED();
}

}  // namespace
}  // namespace kwsdbg
