#include "common/status.h"

#include <gtest/gtest.h>

namespace kwsdbg {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("no table 'foo'");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "no table 'foo'");
  EXPECT_EQ(s.ToString(), "NotFound: no table 'foo'");
}

TEST(StatusTest, FactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
}

TEST(StatusTest, RetryableTaxonomy) {
  // Transient dependency failures and shed load are worth retrying; all
  // other codes describe conditions a retry cannot fix. kDeadlineExceeded in
  // particular is NOT retryable — the budget is already spent.
  EXPECT_TRUE(Status::Unavailable("x").IsRetryable());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsRetryable());
  EXPECT_FALSE(Status::OK().IsRetryable());
  EXPECT_FALSE(Status::DeadlineExceeded("x").IsRetryable());
  EXPECT_FALSE(Status::InvalidArgument("x").IsRetryable());
  EXPECT_FALSE(Status::Internal("x").IsRetryable());
  EXPECT_FALSE(Status::NotFound("x").IsRetryable());
  EXPECT_FALSE(Status::ParseError("x").IsRetryable());
}

TEST(StatusTest, NewCodesRenderDistinctly) {
  EXPECT_EQ(Status::Unavailable("down").ToString(), "Unavailable: down");
  EXPECT_EQ(Status::ResourceExhausted("full").ToString(),
            "ResourceExhausted: full");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> so = 42;
  ASSERT_TRUE(so.ok());
  EXPECT_EQ(*so, 42);
  EXPECT_EQ(so.value(), 42);
  EXPECT_EQ(so.value_or(7), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> so = Status::Internal("boom");
  ASSERT_FALSE(so.ok());
  EXPECT_EQ(so.status().code(), StatusCode::kInternal);
  EXPECT_EQ(so.value_or(7), 7);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> so = std::string("hello");
  std::string v = std::move(so).value();
  EXPECT_EQ(v, "hello");
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Status UsesMacros(int x, int* out) {
  KWSDBG_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  KWSDBG_RETURN_NOT_OK(v > 100 ? Status::OutOfRange("too big") : Status::OK());
  *out = v;
  return Status::OK();
}

TEST(StatusMacrosTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UsesMacros(5, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_EQ(UsesMacros(-1, &out).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(UsesMacros(200, &out).code(), StatusCode::kOutOfRange);
}

TEST(StatusMacrosTest, CheckOkOrReturnDiscardsValue) {
  auto f = []() -> Status {
    KWSDBG_CHECK_OK_OR_RETURN(ParsePositive(3));
    KWSDBG_CHECK_OK_OR_RETURN(ParsePositive(-3));
    return Status::OK();
  };
  EXPECT_EQ(f().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace kwsdbg
