#include "common/lru_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace kwsdbg {
namespace {

TEST(ShardedLruCacheTest, GetMissThenHit) {
  ShardedLruCache<int, std::string> cache(/*capacity=*/4, /*num_shards=*/1);
  EXPECT_EQ(cache.Get(1), std::nullopt);
  cache.Put(1, "one");
  EXPECT_EQ(cache.Get(1), "one");
  LruCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ShardedLruCacheTest, EvictsLeastRecentlyUsed) {
  // Single shard so the whole capacity is one recency list.
  ShardedLruCache<int, int> cache(/*capacity=*/3, /*num_shards=*/1);
  cache.Put(1, 10);
  cache.Put(2, 20);
  cache.Put(3, 30);
  ASSERT_EQ(cache.Get(1), 10);  // refresh 1: LRU order is now 2, 3, 1
  cache.Put(4, 40);             // evicts 2
  EXPECT_EQ(cache.Get(2), std::nullopt);
  EXPECT_EQ(cache.Get(1), 10);
  EXPECT_EQ(cache.Get(3), 30);
  EXPECT_EQ(cache.Get(4), 40);
  LruCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 3u);
}

TEST(ShardedLruCacheTest, PutOverwritesAndRefreshes) {
  ShardedLruCache<int, int> cache(/*capacity=*/2, /*num_shards=*/1);
  cache.Put(1, 10);
  cache.Put(2, 20);
  cache.Put(1, 11);  // overwrite refreshes 1, so 2 is now the LRU entry
  cache.Put(3, 30);  // evicts 2
  EXPECT_EQ(cache.Get(1), 11);
  EXPECT_EQ(cache.Get(2), std::nullopt);
  EXPECT_EQ(cache.Get(3), 30);
  EXPECT_EQ(cache.stats().insertions, 3u);  // overwrite is not an insertion
}

TEST(ShardedLruCacheTest, ClearDropsEntriesKeepsCounters) {
  ShardedLruCache<int, int> cache(/*capacity=*/8, /*num_shards=*/2);
  cache.Put(1, 10);
  cache.Put(2, 20);
  ASSERT_EQ(cache.Get(1), 10);
  cache.Clear();
  EXPECT_EQ(cache.Get(1), std::nullopt);
  LruCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.insertions, 2u);
}

TEST(ShardedLruCacheTest, CapacitySplitsAcrossShards) {
  ShardedLruCache<int, int> cache(/*capacity=*/16, /*num_shards=*/4);
  EXPECT_EQ(cache.num_shards(), 4u);
  for (int i = 0; i < 64; ++i) cache.Put(i, i);
  // Each shard holds at most capacity/num_shards entries.
  EXPECT_LE(cache.stats().entries, 16u);
  EXPECT_GE(cache.stats().evictions, 64u - 16u);
}

TEST(ShardedLruCacheTest, ZeroShardsRoundsUpToOne) {
  ShardedLruCache<int, int> cache(/*capacity=*/2, /*num_shards=*/0);
  EXPECT_EQ(cache.num_shards(), 1u);
  cache.Put(1, 10);
  EXPECT_EQ(cache.Get(1), 10);
}

// Regression: ShardFor used to pick the shard as `(h >> 32) % num_shards`.
// Wherever size_t (and std::hash) is 32-bit, `h >> 32` is undefined behavior
// that in practice yields 0, collapsing every key onto shard 0 — one mutex,
// one recency list, no sharding at all. Even on 64-bit platforms, identity
// hashes (libstdc++ hashes integers to themselves) left the high word 0 with
// the same collapse. ShardIndexForHash mixes the full word and folds both
// halves, so either half of the hash alone still spreads keys.
TEST(ShardIndexForHashTest, SpreadsHashesWithEntropyInEitherHalf) {
  constexpr size_t kShards = 8;
  constexpr size_t kKeys = 4096;
  std::vector<size_t> low_only(kShards, 0);   // entropy only in bits 0..31
  std::vector<size_t> high_only(kShards, 0);  // entropy only in bits 32..63
  for (uint64_t i = 0; i < kKeys; ++i) {
    ++low_only[ShardIndexForHash(i, kShards)];
    ++high_only[ShardIndexForHash(i << 32, kShards)];
  }
  const size_t expected = kKeys / kShards;
  for (size_t s = 0; s < kShards; ++s) {
    // Near-uniform: every shard within 50% of the ideal share. The broken
    // formula put all 4096 low-entropy keys on shard 0.
    EXPECT_GT(low_only[s], expected / 2) << "shard " << s;
    EXPECT_LT(low_only[s], expected * 2) << "shard " << s;
    EXPECT_GT(high_only[s], expected / 2) << "shard " << s;
    EXPECT_LT(high_only[s], expected * 2) << "shard " << s;
  }
}

TEST(ShardIndexForHashTest, DeterministicAndInRange) {
  for (uint64_t h : {uint64_t{0}, uint64_t{1}, ~uint64_t{0},
                     uint64_t{0x9E3779B97F4A7C15ull}}) {
    for (size_t shards : {size_t{1}, size_t{3}, size_t{8}}) {
      const size_t a = ShardIndexForHash(h, shards);
      EXPECT_EQ(a, ShardIndexForHash(h, shards));
      EXPECT_LT(a, shards);
    }
  }
}

TEST(ShardedLruCacheTest, ShardOccupancyNearUniformForSequentialKeys) {
  // End-to-end distribution check: sequential int keys hash to themselves
  // under libstdc++, so this exercises exactly the identity-hash collapse.
  constexpr size_t kShards = 8;
  ShardedLruCache<int, int> cache(/*capacity=*/1 << 16, kShards);
  constexpr int kKeys = 4096;
  for (int i = 0; i < kKeys; ++i) cache.Put(i, i);
  const std::vector<size_t> sizes = cache.ShardSizes();
  ASSERT_EQ(sizes.size(), kShards);
  const size_t expected = kKeys / kShards;
  for (size_t s = 0; s < kShards; ++s) {
    EXPECT_GT(sizes[s], expected / 2) << "shard " << s << " starved";
    EXPECT_LT(sizes[s], expected * 2) << "shard " << s << " overloaded";
  }
}

TEST(ShardedLruCacheTest, ConcurrentMixedWorkloadStaysConsistent) {
  ShardedLruCache<int, int> cache(/*capacity=*/64, /*num_shards=*/8);
  constexpr int kThreads = 4;
  constexpr int kOps = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOps; ++i) {
        const int key = (t * 31 + i) % 128;
        if (i % 3 == 0) {
          cache.Put(key, key * 2);
        } else if (auto v = cache.Get(key)) {
          EXPECT_EQ(*v, key * 2);  // values are a pure function of the key
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  LruCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, stats.insertions - stats.evictions);
  EXPECT_LE(stats.entries, 64u);
}

}  // namespace
}  // namespace kwsdbg
