#include "graph/schema_graph.h"

#include <gtest/gtest.h>

#include "datasets/dblife.h"
#include "datasets/toy_product_db.h"

namespace kwsdbg {
namespace {

TEST(SchemaGraphTest, AddRelationAssignsSequentialIds) {
  SchemaGraph g;
  auto a = g.AddRelation("A", true);
  auto b = g.AddRelation("B", false);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, 0u);
  EXPECT_EQ(*b, 1u);
  EXPECT_EQ(g.relation(*b).name, "B");
  EXPECT_FALSE(g.relation(*b).has_text);
}

TEST(SchemaGraphTest, DuplicateRelationRejected) {
  SchemaGraph g;
  ASSERT_TRUE(g.AddRelation("A", true).ok());
  EXPECT_EQ(g.AddRelation("A", true).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(SchemaGraphTest, AddJoinAndAdjacency) {
  SchemaGraph g;
  ASSERT_TRUE(g.AddRelation("A", true).ok());
  ASSERT_TRUE(g.AddRelation("B", true).ok());
  auto e = g.AddJoin("A", "b_id", "B", "id");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.IncidentEdges(0).size(), 1u);
  EXPECT_EQ(g.IncidentEdges(1).size(), 1u);
  EXPECT_EQ(g.OtherEndpoint(g.edge(*e), 0), 1u);
  EXPECT_EQ(g.OtherEndpoint(g.edge(*e), 1), 0u);
}

TEST(SchemaGraphTest, JoinWithUnknownRelationFails) {
  SchemaGraph g;
  ASSERT_TRUE(g.AddRelation("A", true).ok());
  EXPECT_EQ(g.AddJoin("A", "x", "Missing", "id").status().code(),
            StatusCode::kNotFound);
}

TEST(SchemaGraphTest, RelationIdByName) {
  SchemaGraph g;
  ASSERT_TRUE(g.AddRelation("A", true).ok());
  EXPECT_TRUE(g.RelationIdByName("A").ok());
  EXPECT_FALSE(g.RelationIdByName("Z").ok());
}

TEST(SchemaGraphTest, ToyGraphValidates) {
  auto ds = BuildToyProductDatabase();
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->schema.num_relations(), 4u);
  EXPECT_EQ(ds->schema.num_edges(), 3u);
  EXPECT_TRUE(ds->schema.ValidateAgainst(*ds->db).ok());
}

TEST(SchemaGraphTest, ValidateCatchesWrongHasText) {
  auto ds = BuildToyProductDatabase();
  ASSERT_TRUE(ds.ok());
  SchemaGraph g;
  ASSERT_TRUE(g.AddRelation("Item", /*has_text=*/false).ok());
  EXPECT_EQ(g.ValidateAgainst(*ds->db).code(),
            StatusCode::kFailedPrecondition);
}

TEST(SchemaGraphTest, ValidateCatchesMissingColumn) {
  auto ds = BuildToyProductDatabase();
  ASSERT_TRUE(ds.ok());
  SchemaGraph g;
  ASSERT_TRUE(g.AddRelation("Item", true).ok());
  ASSERT_TRUE(g.AddRelation("Color", true).ok());
  ASSERT_TRUE(g.AddJoin("Item", "no_such_col", "Color", "id").ok());
  EXPECT_FALSE(g.ValidateAgainst(*ds->db).ok());
}

TEST(SchemaGraphTest, ValidateCatchesUnjoinableTypes) {
  auto ds = BuildToyProductDatabase();
  ASSERT_TRUE(ds.ok());
  SchemaGraph g;
  ASSERT_TRUE(g.AddRelation("Item", true).ok());
  ASSERT_TRUE(g.AddRelation("Color", true).ok());
  // Item.name (TEXT) vs Color.id (INT) cannot be equi-joined.
  ASSERT_TRUE(g.AddJoin("Item", "name", "Color", "id").ok());
  EXPECT_EQ(g.ValidateAgainst(*ds->db).code(),
            StatusCode::kFailedPrecondition);
}

TEST(SchemaGraphTest, DblifeGraphShape) {
  DblifeConfig config;
  config.num_persons = 50;
  config.num_publications = 80;
  config.num_conferences = 12;
  config.num_organizations = 20;
  config.num_topics = 15;
  auto ds = GenerateDblife(config);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_EQ(ds->schema.num_relations(), 14u);  // 5 entity + 9 relationship
  EXPECT_EQ(ds->schema.num_edges(), 18u);      // 2 per relationship table
  // Person is the star center: writes, serves_on, gave_talk,
  // affiliated_with, interested_in touch it once each; coauthor_of and
  // co_pc_member touch it twice each.
  auto person = ds->schema.RelationIdByName("Person");
  ASSERT_TRUE(person.ok());
  EXPECT_EQ(ds->schema.IncidentEdges(*person).size(), 9u);
}

TEST(SchemaGraphTest, ToDotMentionsEveryRelation) {
  auto ds = BuildToyProductDatabase();
  ASSERT_TRUE(ds.ok());
  std::string dot = ds->schema.ToDot();
  for (const char* name : {"Item", "Color", "Attribute", "ProductType"}) {
    EXPECT_NE(dot.find(name), std::string::npos) << name;
  }
}

}  // namespace
}  // namespace kwsdbg
