#!/usr/bin/env bash
# Sanitizer wall for the concurrency-sensitive surface: builds the asan,
# tsan, and ubsan presets (see CMakePresets.json) and runs the test subset
# that exercises threads, the shared verdict cache, cancellation, the
# service layer, and the durability/crash-recovery paths under each. The
# differential fuzzer runs with a raised iteration count; override with
# KWSDBG_FUZZ_ITERS / KWSDBG_FUZZ_SEED to reproduce a specific failure
# (each test prints its seeds). The standalone ubsan preset exists because
# asan's combined address+undefined mode can mask UB reports behind
# earlier address errors; it also halts on the first report so CI fails
# instead of scrolling warnings past.
#
#   tests/run_sanitizers.sh               # all three sanitizers
#   tests/run_sanitizers.sh tsan          # any subset of: asan tsan ubsan
#   KWSDBG_FUZZ_ITERS=500 tests/run_sanitizers.sh
set -euo pipefail
cd "$(dirname "$0")/.."

export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"

# gtest case names (not binaries): ctest -R matches the discovered tests.
# resilience_smoke is the fault-schedule replay gate (bench/resilience_workload)
# and probe_engine_smoke the v2-vs-v3 probe-engine parity gate
# (bench/probe_engine_workload); both only exist when benchmarks are built.
# FlatRowIndexTest covers the flat probe engine the batched join pipeline and
# the differential fuzzer lean on. The storage-tier set (BufferPoolTest,
# SpillTest, SpillEpochTest, PostingStoreTest, ExecutorSpillTest,
# storage_tier_smoke) runs here for asan's sake: the out-of-core tier hands
# out references into evictable frames, exactly the lifetime bugs asan sees.
# The live-write set (MutationTest, IncrementalIndexTest, LiveMutationTest —
# whose ConcurrentWritesWhileQuerying is the tsan target for the
# write-while-querying interleaving — plus mutation_smoke and the chaos
# mutation layer inside DifferentialFuzzTest) exercises in-place posting
# patches, arena compaction, and relation-fenced writes under both tools;
# KWSDBG_MUTATION_RATE scales writes per query in the chaos fuzzer.
# The durability set (WalTest, CheckpointTest, DurableServiceTest,
# RelationFencesTest — whose GuardsInterleaveWithLiveMutatorApply is a tsan
# target — and the crash wall: CrashRecoveryTest + durability_smoke, the
# `crash`-labeled forked power-cut cycles) runs the WAL framing, the
# checkpoint codec, and recovery replay under all three tools; ubsan in
# particular watches the byte-level frame encode/decode paths.
# The adaptive set (PaModelTest, StrategyPlannerTest, AdaptiveColdStartTest,
# AdaptiveParityTest, AdaptiveDriftTest, plus adaptive_smoke — the planner
# gate in bench/adaptive_workload) runs here for tsan's sake: the p_a model
# is a lock-free atomic-counter table shared across service workers, and its
# decay path (SyncDataVersion) CAS-races against concurrent observers.
CONCURRENCY_TESTS='DifferentialFuzzTest|SharedCacheEpochTest|DebugServiceTest|ShardedServiceTest|ShardedParityTest|WorkStealingTest|SubmitTest|HomeShardTest|ComputeServiceStatsTest|ServiceStatsIntegrationTest|ShardIndexForHashTest|ParallelAgreementTest|ParallelOracleTest|LruCacheTest|VerdictCacheTest|FailureInjectionTest|ChaosTest|ChaosFuzzTest|ChaosPropagationTest|FaultInjectorTest|FlatRowIndexTest|BufferPoolTest|PageCodecTest|DiskManagerTest|SpillTest|SpillEpochTest|PostingStoreTest|ExecutorSpillTest|MutationTest|IncrementalIndexTest|LiveMutationTest|WalTest|CheckpointTest|RelationFencesTest|DurableServiceTest|CrashRecoveryTest|resilience_smoke|probe_engine_smoke|service_scale_smoke|storage_tier_smoke|mutation_smoke|durability_smoke|PaModelTest|StrategyPlannerTest|AdaptiveColdStartTest|AdaptiveParityTest|AdaptiveDriftTest|adaptive_smoke'

: "${KWSDBG_FUZZ_ITERS:=200}"
export KWSDBG_FUZZ_ITERS

run_preset() {
  local preset="$1"
  echo "=== [$preset] configure + build ==="
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$(nproc)"
  echo "=== [$preset] ctest -R ($KWSDBG_FUZZ_ITERS fuzz iterations) ==="
  ctest --preset "$preset" -R "$CONCURRENCY_TESTS" --output-on-failure
}

presets=("${@:-asan}")
if [ "$#" -eq 0 ]; then presets=(asan tsan ubsan); fi
for preset in "${presets[@]}"; do
  case "$preset" in
    asan|tsan|ubsan) run_preset "$preset" ;;
    *) echo "unknown preset '$preset' (want: asan tsan ubsan)" >&2; exit 2 ;;
  esac
done
echo "=== sanitizer wall clean ==="
