#include "lattice/canonical_label.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datasets/dblife.h"

namespace kwsdbg {
namespace {

// A small schema with two relations and one join, as in the paper's Fig. 4.
class CanonicalLabelTest : public testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(schema_.AddRelation("R", true).ok());
    ASSERT_TRUE(schema_.AddRelation("S", true).ok());
    ASSERT_TRUE(schema_.AddRelation("T", true).ok());
    // Not validated against data here; ids suffice for labeling.
    ASSERT_TRUE(schema_.AddJoin("R", "b", "S", "c").ok());   // edge 0
    ASSERT_TRUE(schema_.AddJoin("S", "d", "T", "e").ok());   // edge 1
  }
  SchemaGraph schema_;
};

TEST_F(CanonicalLabelTest, SingleVertexLabel) {
  JoinTree t = JoinTree::Single({0, 1});
  std::string l = CanonicalLabel(t);
  EXPECT_EQ(l, "[" + std::to_string(VertexLabelId({0, 1})) + "]");
}

TEST_F(CanonicalLabelTest, ExtensionOrderIrrelevant) {
  // R1 -- S1 built from R1, and from S1: same labeled tree.
  JoinTree a = JoinTree::Single({0, 1}).Extend(0, {1, 1}, 0);
  JoinTree b = JoinTree::Single({1, 1}).Extend(0, {0, 1}, 0);
  EXPECT_EQ(CanonicalLabel(a), CanonicalLabel(b));
}

TEST_F(CanonicalLabelTest, DifferentCopiesDiffer) {
  // Fig. 4: R1-S1, R2-S1, R1-S2, R2-S2 are four distinct nodes.
  JoinTree r1s1 = JoinTree::Single({0, 1}).Extend(0, {1, 1}, 0);
  JoinTree r2s1 = JoinTree::Single({0, 2}).Extend(0, {1, 1}, 0);
  JoinTree r1s2 = JoinTree::Single({0, 1}).Extend(0, {1, 2}, 0);
  EXPECT_NE(CanonicalLabel(r1s1), CanonicalLabel(r2s1));
  EXPECT_NE(CanonicalLabel(r1s1), CanonicalLabel(r1s2));
  EXPECT_NE(CanonicalLabel(r2s1), CanonicalLabel(r1s2));
}

TEST_F(CanonicalLabelTest, ChildOrderIrrelevantInPath) {
  // Path R1 - S1 - T1 assembled in two different orders.
  JoinTree a =
      JoinTree::Single({0, 1}).Extend(0, {1, 1}, 0).Extend(1, {2, 1}, 1);
  JoinTree b =
      JoinTree::Single({2, 1}).Extend(0, {1, 1}, 1).Extend(1, {0, 1}, 0);
  EXPECT_EQ(CanonicalLabel(a), CanonicalLabel(b));
}

TEST_F(CanonicalLabelTest, EdgeLabelMatters) {
  SchemaGraph multi;
  ASSERT_TRUE(multi.AddRelation("P", true).ok());
  ASSERT_TRUE(multi.AddRelation("CoAuth", false).ok());
  ASSERT_TRUE(multi.AddJoin("CoAuth", "p1", "P", "id").ok());  // edge 0
  ASSERT_TRUE(multi.AddJoin("CoAuth", "p2", "P", "id").ok());  // edge 1
  JoinTree via_p1 = JoinTree::Single({0, 1}).Extend(0, {1, 0}, 0);
  JoinTree via_p2 = JoinTree::Single({0, 1}).Extend(0, {1, 0}, 1);
  EXPECT_NE(CanonicalLabel(via_p1), CanonicalLabel(via_p2));
}

TEST_F(CanonicalLabelTest, PaperExampleThreeChildStar) {
  // Fig. 5: a star v1-{v2,v3,v4} has the same canonical form no matter how
  // the children are attached. Use a schema with three distinct edges.
  SchemaGraph star;
  ASSERT_TRUE(star.AddRelation("Hub", true).ok());
  ASSERT_TRUE(star.AddRelation("A", true).ok());
  ASSERT_TRUE(star.AddRelation("B", true).ok());
  ASSERT_TRUE(star.AddRelation("C", true).ok());
  ASSERT_TRUE(star.AddJoin("Hub", "a", "A", "id").ok());
  ASSERT_TRUE(star.AddJoin("Hub", "b", "B", "id").ok());
  ASSERT_TRUE(star.AddJoin("Hub", "c", "C", "id").ok());
  JoinTree t1 = JoinTree::Single({0, 0})
                    .Extend(0, {1, 1}, 0)
                    .Extend(0, {2, 1}, 1)
                    .Extend(0, {3, 1}, 2);
  JoinTree t2 = JoinTree::Single({0, 0})
                    .Extend(0, {3, 1}, 2)
                    .Extend(0, {1, 1}, 0)
                    .Extend(0, {2, 1}, 1);
  JoinTree t3 = JoinTree::Single({3, 1})
                    .Extend(0, {0, 0}, 2)
                    .Extend(1, {2, 1}, 1)
                    .Extend(1, {1, 1}, 0);
  EXPECT_EQ(CanonicalLabel(t1), CanonicalLabel(t2));
  EXPECT_EQ(CanonicalLabel(t1), CanonicalLabel(t3));
}

TEST_F(CanonicalLabelTest, VertexLabelIdPacksRelationAndCopy) {
  EXPECT_NE(VertexLabelId({0, 1}), VertexLabelId({0, 2}));
  EXPECT_NE(VertexLabelId({0, 1}), VertexLabelId({1, 1}));
  EXPECT_LT(VertexLabelId({0, 1}), VertexLabelId({1, 0}));
}

// Property: random assembly orders of the same vertex/edge set agree.
class CanonicalLabelPropertyTest : public testing::TestWithParam<uint64_t> {};

TEST_P(CanonicalLabelPropertyTest, RandomPathAssemblyOrders) {
  // Build a fixed path P1 - writes0 - Pub1 - about0 - Topic1 over a DBLife
  // mini schema, assembling left-to-right vs right-to-left vs middle-out.
  DblifeConfig config;
  config.num_persons = 5;
  config.num_publications = 5;
  config.num_conferences = 3;
  config.num_organizations = 3;
  config.num_topics = 3;
  config.seed = GetParam();
  auto ds = GenerateDblife(config);
  ASSERT_TRUE(ds.ok());
  const SchemaGraph& g = ds->schema;
  RelationId person = *g.RelationIdByName("Person");
  RelationId writes = *g.RelationIdByName("writes");
  RelationId pub = *g.RelationIdByName("Publication");
  // Find the edge ids.
  EdgeId w_p = 0, w_pub = 0;
  for (const JoinEdge& e : g.edges()) {
    if (e.from == writes && e.to == person) w_p = e.id;
    if (e.from == writes && e.to == pub) w_pub = e.id;
  }
  JoinTree ltr = JoinTree::Single({person, 1})
                     .Extend(0, {writes, 0}, w_p)
                     .Extend(1, {pub, 1}, w_pub);
  JoinTree rtl = JoinTree::Single({pub, 1})
                     .Extend(0, {writes, 0}, w_pub)
                     .Extend(1, {person, 1}, w_p);
  JoinTree mid = JoinTree::Single({writes, 0})
                     .Extend(0, {pub, 1}, w_pub)
                     .Extend(0, {person, 1}, w_p);
  EXPECT_EQ(CanonicalLabel(ltr), CanonicalLabel(rtl));
  EXPECT_EQ(CanonicalLabel(ltr), CanonicalLabel(mid));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CanonicalLabelPropertyTest,
                         testing::Values(1, 7, 99));

}  // namespace
}  // namespace kwsdbg
