// Structural property tests on generated lattices: closure under
// sub-networks, link symmetry, and level consistency — the invariants the
// traversal correctness proofs rely on.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "datasets/dblife.h"
#include "datasets/toy_product_db.h"
#include "lattice/canonical_label.h"
#include "lattice/lattice_generator.h"

namespace kwsdbg {
namespace {

struct LatticeCase {
  std::string name;
  SchemaGraph schema;
  std::unique_ptr<Lattice> lattice;
};

class LatticeClosureTest : public testing::TestWithParam<int> {
 protected:
  LatticeCase MakeCase() {
    LatticeCase out;
    if (GetParam() == 0) {
      out.name = "toy";
      auto ds = BuildToyProductDatabase();
      EXPECT_TRUE(ds.ok());
      out.schema = std::move(ds->schema);
      LatticeConfig config;
      config.max_joins = 3;
      config.num_keyword_copies = 2;
      auto lattice = LatticeGenerator::Generate(out.schema, config);
      EXPECT_TRUE(lattice.ok());
      out.lattice = std::move(*lattice);
    } else {
      out.name = "dblife";
      DblifeConfig dconfig;
      dconfig.num_persons = 10;
      dconfig.num_publications = 10;
      dconfig.num_conferences = 4;
      dconfig.num_organizations = 4;
      dconfig.num_topics = 4;
      auto ds = GenerateDblife(dconfig);
      EXPECT_TRUE(ds.ok());
      out.schema = std::move(ds->schema);
      LatticeConfig config;
      config.max_joins = 3;
      config.num_keyword_copies = 2;
      auto lattice = LatticeGenerator::Generate(out.schema, config);
      EXPECT_TRUE(lattice.ok());
      out.lattice = std::move(*lattice);
    }
    return out;
  }
};

TEST_P(LatticeClosureTest, ClosedUnderLeafRemoval) {
  LatticeCase c = MakeCase();
  for (NodeId id = 0; id < c.lattice->num_nodes(); ++id) {
    const JoinTree& tree = c.lattice->node(id).tree;
    if (tree.level() == 1) continue;
    for (size_t leaf : tree.LeafIndices()) {
      JoinTree sub = tree.RemoveLeaf(leaf);
      EXPECT_NE(c.lattice->FindTree(sub), kInvalidNode)
          << c.name << ": missing sub-network of node " << id;
    }
  }
}

TEST_P(LatticeClosureTest, ChildLinksAreExactlyLeafRemovals) {
  LatticeCase c = MakeCase();
  for (NodeId id = 0; id < c.lattice->num_nodes(); ++id) {
    const LatticeNode& node = c.lattice->node(id);
    std::set<NodeId> expected;
    if (node.tree.level() > 1) {
      for (size_t leaf : node.tree.LeafIndices()) {
        expected.insert(c.lattice->FindTree(node.tree.RemoveLeaf(leaf)));
      }
    }
    std::set<NodeId> actual(node.children.begin(), node.children.end());
    EXPECT_EQ(actual, expected) << c.name << " node " << id;
  }
}

TEST_P(LatticeClosureTest, ParentChildSymmetry) {
  LatticeCase c = MakeCase();
  for (NodeId id = 0; id < c.lattice->num_nodes(); ++id) {
    for (NodeId child : c.lattice->node(id).children) {
      const auto& parents = c.lattice->node(child).parents;
      EXPECT_NE(std::find(parents.begin(), parents.end(), id), parents.end())
          << c.name;
      EXPECT_EQ(c.lattice->node(child).level + 1, c.lattice->node(id).level);
    }
  }
}

TEST_P(LatticeClosureTest, DescendantsAreExactlyConnectedSubtrees) {
  // For a sample of nodes: Descendants(id) must contain every tree
  // obtainable by repeated leaf removal, with no duplicates or strangers.
  LatticeCase c = MakeCase();
  Rng rng(7);
  const size_t checks = std::min<size_t>(c.lattice->num_nodes(), 40);
  for (size_t i = 0; i < checks; ++i) {
    NodeId id = static_cast<NodeId>(rng.Uniform(c.lattice->num_nodes()));
    std::set<NodeId> expected;
    std::vector<JoinTree> frontier = {c.lattice->node(id).tree};
    while (!frontier.empty()) {
      JoinTree t = std::move(frontier.back());
      frontier.pop_back();
      if (t.level() == 1 && c.lattice->node(id).tree.level() == 1) break;
      for (size_t leaf : t.LeafIndices()) {
        if (t.num_vertices() == 1) continue;
        JoinTree sub = t.RemoveLeaf(leaf);
        NodeId sid = c.lattice->FindTree(sub);
        ASSERT_NE(sid, kInvalidNode);
        if (expected.insert(sid).second) frontier.push_back(std::move(sub));
      }
    }
    std::vector<NodeId> desc = c.lattice->Descendants(id);
    std::set<NodeId> actual(desc.begin(), desc.end());
    EXPECT_EQ(actual.size(), desc.size()) << "duplicates in Descendants";
    EXPECT_EQ(actual, expected) << c.name << " node " << id;
  }
}

INSTANTIATE_TEST_SUITE_P(Schemas, LatticeClosureTest, testing::Values(0, 1));

}  // namespace
}  // namespace kwsdbg
