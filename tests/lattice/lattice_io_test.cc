#include "lattice/lattice_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "datasets/dblife.h"
#include "datasets/toy_product_db.h"
#include "lattice/canonical_label.h"
#include "lattice/lattice_generator.h"

namespace kwsdbg {
namespace {

std::unique_ptr<Lattice> MakeToyLattice(const SchemaGraph& schema,
                                        size_t max_joins = 2,
                                        size_t copies = 2) {
  LatticeConfig config;
  config.max_joins = max_joins;
  config.num_keyword_copies = copies;
  auto lattice = LatticeGenerator::Generate(schema, config);
  EXPECT_TRUE(lattice.ok());
  return std::move(*lattice);
}

void ExpectLatticesEquivalent(const Lattice& a, const Lattice& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_levels(), b.num_levels());
  for (NodeId id = 0; id < a.num_nodes(); ++id) {
    const std::string canonical = CanonicalLabel(a.node(id).tree);
    NodeId bid = b.FindByCanonical(canonical);
    ASSERT_NE(bid, kInvalidNode) << canonical;
    EXPECT_EQ(a.node(id).level, b.node(bid).level);
    EXPECT_EQ(a.node(id).children.size(), b.node(bid).children.size());
    EXPECT_EQ(a.node(id).parents.size(), b.node(bid).parents.size());
    // Children match up to canonical identity.
    std::set<std::string> ac, bc;
    for (NodeId c : a.node(id).children) {
      ac.insert(CanonicalLabel(a.node(c).tree));
    }
    for (NodeId c : b.node(bid).children) {
      bc.insert(CanonicalLabel(b.node(c).tree));
    }
    EXPECT_EQ(ac, bc);
  }
}

TEST(LatticeIoTest, RoundTripToySchema) {
  auto ds = BuildToyProductDatabase();
  ASSERT_TRUE(ds.ok());
  auto lattice = MakeToyLattice(ds->schema);
  std::ostringstream out;
  ASSERT_TRUE(SaveLattice(*lattice, &out).ok());
  std::istringstream in(out.str());
  auto loaded = LoadLattice(ds->schema, &in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectLatticesEquivalent(*lattice, **loaded);
  // Config survives.
  EXPECT_EQ((*loaded)->config().max_joins, 2u);
  EXPECT_EQ((*loaded)->config().num_keyword_copies, 2u);
  // Node/duplicate statistics survive (timings do not).
  ASSERT_EQ((*loaded)->level_stats().size(), lattice->level_stats().size());
  for (size_t i = 0; i < lattice->level_stats().size(); ++i) {
    EXPECT_EQ((*loaded)->level_stats()[i].kept,
              lattice->level_stats()[i].kept);
    EXPECT_EQ((*loaded)->level_stats()[i].duplicates,
              lattice->level_stats()[i].duplicates);
  }
}

TEST(LatticeIoTest, RoundTripDblifeSchema) {
  DblifeConfig config;
  config.num_persons = 20;
  config.num_publications = 30;
  config.num_conferences = 5;
  config.num_organizations = 6;
  config.num_topics = 5;
  auto ds = GenerateDblife(config);
  ASSERT_TRUE(ds.ok());
  LatticeConfig lconfig;
  lconfig.max_joins = 3;
  lconfig.num_keyword_copies = 2;
  auto lattice = LatticeGenerator::Generate(ds->schema, lconfig);
  ASSERT_TRUE(lattice.ok());
  std::ostringstream out;
  ASSERT_TRUE(SaveLattice(**lattice, &out).ok());
  std::istringstream in(out.str());
  auto loaded = LoadLattice(ds->schema, &in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectLatticesEquivalent(**lattice, **loaded);
}

TEST(LatticeIoTest, FileRoundTrip) {
  auto ds = BuildToyProductDatabase();
  ASSERT_TRUE(ds.ok());
  auto lattice = MakeToyLattice(ds->schema);
  const std::string path = testing::TempDir() + "/kwsdbg_lattice_test.lat";
  ASSERT_TRUE(SaveLatticeFile(*lattice, path).ok());
  auto loaded = LoadLatticeFile(ds->schema, path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->num_nodes(), lattice->num_nodes());
  EXPECT_FALSE(LoadLatticeFile(ds->schema, path + ".missing").ok());
}

TEST(LatticeIoTest, RejectsWrongSchema) {
  auto ds = BuildToyProductDatabase();
  ASSERT_TRUE(ds.ok());
  auto lattice = MakeToyLattice(ds->schema);
  std::ostringstream out;
  ASSERT_TRUE(SaveLattice(*lattice, &out).ok());
  SchemaGraph other;
  ASSERT_TRUE(other.AddRelation("X", true).ok());
  std::istringstream in(out.str());
  EXPECT_EQ(LoadLattice(other, &in).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(LatticeIoTest, RejectsGarbage) {
  auto ds = BuildToyProductDatabase();
  ASSERT_TRUE(ds.ok());
  {
    std::istringstream in("not a lattice");
    EXPECT_EQ(LoadLattice(ds->schema, &in).status().code(),
              StatusCode::kParseError);
  }
  {
    std::istringstream in("KWSDBGLAT 1\nconfig oops\n");
    EXPECT_FALSE(LoadLattice(ds->schema, &in).ok());
  }
}

TEST(LatticeIoTest, RejectsTruncatedNodeList) {
  auto ds = BuildToyProductDatabase();
  ASSERT_TRUE(ds.ok());
  auto lattice = MakeToyLattice(ds->schema);
  std::ostringstream out;
  ASSERT_TRUE(SaveLattice(*lattice, &out).ok());
  std::string text = out.str();
  // Cut the last 3 lines.
  for (int i = 0; i < 3; ++i) {
    text.erase(text.find_last_of('\n', text.size() - 2) + 1);
  }
  std::istringstream in(text);
  EXPECT_EQ(LoadLattice(ds->schema, &in).status().code(),
            StatusCode::kParseError);
}

TEST(LatticeIoTest, LoadedLatticeIsUsableEndToEnd) {
  auto ds = BuildToyProductDatabase();
  ASSERT_TRUE(ds.ok());
  auto lattice = MakeToyLattice(ds->schema, 2, 3);
  std::ostringstream out;
  ASSERT_TRUE(SaveLattice(*lattice, &out).ok());
  std::istringstream in(out.str());
  auto loaded = LoadLattice(ds->schema, &in);
  ASSERT_TRUE(loaded.ok());
  // Descendant queries on the loaded lattice behave like on the original.
  for (NodeId id : lattice->NodesAtLevel(3)) {
    NodeId lid = (*loaded)->FindByCanonical(CanonicalLabel(
        lattice->node(id).tree));
    ASSERT_NE(lid, kInvalidNode);
    EXPECT_EQ(lattice->Descendants(id).size(),
              (*loaded)->Descendants(lid).size());
  }
}

}  // namespace
}  // namespace kwsdbg
