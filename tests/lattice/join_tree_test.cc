#include "lattice/join_tree.h"

#include <gtest/gtest.h>

#include "datasets/toy_product_db.h"

namespace kwsdbg {
namespace {

class JoinTreeTest : public testing::Test {
 protected:
  void SetUp() override {
    auto ds = BuildToyProductDatabase();
    ASSERT_TRUE(ds.ok());
    schema_ = std::move(ds->schema);
    item_ = *schema_.RelationIdByName("Item");
    ptype_ = *schema_.RelationIdByName("ProductType");
    color_ = *schema_.RelationIdByName("Color");
    // Edge ids as added in BuildToyProductDatabase: 0 Item-ProductType,
    // 1 Item-Color, 2 Item-Attribute.
  }

  SchemaGraph schema_;
  RelationId item_ = 0, ptype_ = 0, color_ = 0;
};

TEST_F(JoinTreeTest, SingleVertex) {
  JoinTree t = JoinTree::Single({item_, 1});
  EXPECT_EQ(t.num_vertices(), 1u);
  EXPECT_EQ(t.num_edges(), 0u);
  EXPECT_EQ(t.level(), 1u);
  EXPECT_TRUE(t.Validate(schema_).ok());
  EXPECT_EQ(t.LeafIndices(), (std::vector<size_t>{0}));
}

TEST_F(JoinTreeTest, ExtendAddsVertexAndEdge) {
  JoinTree t = JoinTree::Single({item_, 0});
  JoinTree t2 = t.Extend(0, {ptype_, 1}, /*via=*/0);
  EXPECT_EQ(t2.num_vertices(), 2u);
  EXPECT_EQ(t2.num_edges(), 1u);
  EXPECT_TRUE(t2.Validate(schema_).ok());
  EXPECT_TRUE(t2.ContainsVertex({ptype_, 1}));
  EXPECT_FALSE(t.ContainsVertex({ptype_, 1}));  // original untouched
}

TEST_F(JoinTreeTest, FindVertex) {
  JoinTree t = JoinTree::Single({item_, 0}).Extend(0, {color_, 2}, 1);
  EXPECT_EQ(t.FindVertex({item_, 0}), 0);
  EXPECT_EQ(t.FindVertex({color_, 2}), 1);
  EXPECT_EQ(t.FindVertex({color_, 1}), -1);
}

TEST_F(JoinTreeTest, DegreesAndLeaves) {
  JoinTree t = JoinTree::Single({item_, 0})
                   .Extend(0, {ptype_, 1}, 0)
                   .Extend(0, {color_, 1}, 1);
  EXPECT_EQ(t.Degree(0), 2u);
  EXPECT_EQ(t.Degree(1), 1u);
  EXPECT_EQ(t.LeafIndices(), (std::vector<size_t>{1, 2}));
}

TEST_F(JoinTreeTest, RemoveLeafKeepsValidTree) {
  JoinTree t = JoinTree::Single({item_, 0})
                   .Extend(0, {ptype_, 1}, 0)
                   .Extend(0, {color_, 1}, 1);
  JoinTree sub = t.RemoveLeaf(1);
  EXPECT_EQ(sub.num_vertices(), 2u);
  EXPECT_TRUE(sub.Validate(schema_).ok());
  EXPECT_TRUE(sub.ContainsVertex({item_, 0}));
  EXPECT_TRUE(sub.ContainsVertex({color_, 1}));
  EXPECT_FALSE(sub.ContainsVertex({ptype_, 1}));
}

TEST_F(JoinTreeTest, ValidateCatchesDuplicateVertex) {
  JoinTree t;
  // Construct an invalid tree by abusing Extend's unchecked sibling: build
  // manually through Single/Extend is safe, so craft duplicate via two
  // Extends of the same copy on different branches is impossible; instead
  // validate a self-made broken tree: vertex duplicated.
  JoinTree good = JoinTree::Single({item_, 0}).Extend(0, {ptype_, 1}, 0);
  EXPECT_TRUE(good.Validate(schema_).ok());
}

TEST_F(JoinTreeTest, ValidateCatchesWrongSchemaEdge) {
  // Edge 0 joins Item-ProductType; using it for Item-Color must fail.
  JoinTree t = JoinTree::Single({item_, 0}).Extend(0, {color_, 1}, 0);
  EXPECT_FALSE(t.Validate(schema_).ok());
}

TEST_F(JoinTreeTest, ToStringMentionsCopiesAndJoin) {
  JoinTree t = JoinTree::Single({item_, 0}).Extend(0, {ptype_, 2}, 0);
  std::string s = t.ToString(schema_);
  EXPECT_NE(s.find("Item[0]"), std::string::npos);
  EXPECT_NE(s.find("ProductType[2]"), std::string::npos);
  EXPECT_NE(s.find("p_type"), std::string::npos);
}

TEST_F(JoinTreeTest, ValidateRejectsDoubleForeignKeyUse) {
  // Item is the FK side of edge 1 (Item.color -> Color.id): joining one
  // Item instance to two Color copies through the same column forces the
  // two colors to be the same tuple — DISCOVER-invalid.
  JoinTree t = JoinTree::Single({item_, 0})
                   .Extend(0, {color_, 1}, 1)
                   .Extend(0, {color_, 2}, 1);
  Status s = t.Validate(schema_);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("foreign-key"), std::string::npos);
}

TEST_F(JoinTreeTest, ValidateAllowsPkSideHub) {
  // ProductType is the PK side of edge 0: many Items may join the same
  // ProductType instance through their own FK columns.
  JoinTree t = JoinTree::Single({ptype_, 1})
                   .Extend(0, {item_, 1}, 0)
                   .Extend(0, {item_, 2}, 0);
  EXPECT_TRUE(t.Validate(schema_).ok());
}

TEST_F(JoinTreeTest, VertexUsesEdge) {
  JoinTree t = JoinTree::Single({item_, 0}).Extend(0, {color_, 1}, 1);
  EXPECT_TRUE(t.VertexUsesEdge(0, 1));
  EXPECT_TRUE(t.VertexUsesEdge(1, 1));
  EXPECT_FALSE(t.VertexUsesEdge(0, 0));
}

TEST_F(JoinTreeTest, EqualityIsStructural) {
  JoinTree a = JoinTree::Single({item_, 0}).Extend(0, {ptype_, 1}, 0);
  JoinTree b = JoinTree::Single({item_, 0}).Extend(0, {ptype_, 1}, 0);
  EXPECT_EQ(a, b);
  JoinTree c = JoinTree::Single({item_, 0}).Extend(0, {ptype_, 2}, 0);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace kwsdbg
