#include "lattice/lattice_generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "datasets/toy_product_db.h"
#include "lattice/canonical_label.h"

namespace kwsdbg {
namespace {

// The paper's Fig. 4 setting: R(a,b), S(c,d), one join R.b = S.c, m = 1.
SchemaGraph TwoRelationSchema() {
  SchemaGraph g;
  EXPECT_TRUE(g.AddRelation("R", true).ok());
  EXPECT_TRUE(g.AddRelation("S", true).ok());
  EXPECT_TRUE(g.AddJoin("R", "b", "S", "c").ok());
  return g;
}

TEST(LatticeGeneratorTest, Fig4NodeCounts) {
  SchemaGraph g = TwoRelationSchema();
  LatticeConfig config;
  config.max_joins = 1;
  config.copy_policy = CopyPolicy::kAllRelations;
  config.num_keyword_copies = 2;  // R1, R2 / S1, S2 as in Fig. 4
  auto lattice = LatticeGenerator::Generate(g, config);
  ASSERT_TRUE(lattice.ok()) << lattice.status().ToString();
  // Level 1: copies 0..2 of both relations.
  EXPECT_EQ((*lattice)->NodesAtLevel(1).size(), 6u);
  // Level 2: all (R_i, S_j) combinations, i,j in {0,1,2}.
  EXPECT_EQ((*lattice)->NodesAtLevel(2).size(), 9u);
  EXPECT_EQ((*lattice)->num_nodes(), 15u);
  // Each level-2 tree is generated twice (once from each endpoint).
  const LevelStats& l2 = (*lattice)->level_stats()[1];
  EXPECT_EQ(l2.generated, 18u);
  EXPECT_EQ(l2.duplicates, 9u);
  EXPECT_EQ(l2.kept, 9u);
}

TEST(LatticeGeneratorTest, Fig4ParentChildLinks) {
  SchemaGraph g = TwoRelationSchema();
  LatticeConfig config;
  config.max_joins = 1;
  config.copy_policy = CopyPolicy::kAllRelations;
  config.num_keyword_copies = 2;
  auto lattice = LatticeGenerator::Generate(g, config);
  ASSERT_TRUE(lattice.ok());
  // Find node R1 -- S2 and check its children are exactly {R1, S2}.
  JoinTree r1s2 = JoinTree::Single({0, 1}).Extend(0, {1, 2}, 0);
  NodeId id = (*lattice)->FindTree(r1s2);
  ASSERT_NE(id, kInvalidNode);
  const LatticeNode& node = (*lattice)->node(id);
  ASSERT_EQ(node.children.size(), 2u);
  std::vector<std::string> child_labels;
  for (NodeId c : node.children) {
    child_labels.push_back(
        (*lattice)->node(c).tree.ToString((*lattice)->schema()));
  }
  std::sort(child_labels.begin(), child_labels.end());
  EXPECT_EQ(child_labels, (std::vector<std::string>{"R[1]", "S[2]"}));
  // And those children list it as a parent.
  for (NodeId c : node.children) {
    const auto& parents = (*lattice)->node(c).parents;
    EXPECT_NE(std::find(parents.begin(), parents.end(), id), parents.end());
  }
}

TEST(LatticeGeneratorTest, DescendantsAndAncestors) {
  SchemaGraph g = TwoRelationSchema();
  LatticeConfig config;
  config.max_joins = 1;
  config.copy_policy = CopyPolicy::kAllRelations;
  config.num_keyword_copies = 1;
  auto lattice = LatticeGenerator::Generate(g, config);
  ASSERT_TRUE(lattice.ok());
  JoinTree r1s1 = JoinTree::Single({0, 1}).Extend(0, {1, 1}, 0);
  NodeId top = (*lattice)->FindTree(r1s1);
  ASSERT_NE(top, kInvalidNode);
  EXPECT_EQ((*lattice)->Descendants(top).size(), 2u);
  NodeId r1 = (*lattice)->FindTree(JoinTree::Single({0, 1}));
  ASSERT_NE(r1, kInvalidNode);
  // R1's ancestors: R1-S0, R1-S1 (copies 0..1 of S).
  EXPECT_EQ((*lattice)->Ancestors(r1).size(), 2u);
}

TEST(LatticeGeneratorTest, TextOnlyPolicySuppressesCopies) {
  SchemaGraph g;
  ASSERT_TRUE(g.AddRelation("Entity", true).ok());
  ASSERT_TRUE(g.AddRelation("Link", false).ok());  // no text
  ASSERT_TRUE(g.AddJoin("Link", "eid", "Entity", "id").ok());
  LatticeConfig config;
  config.max_joins = 1;
  config.copy_policy = CopyPolicy::kTextRelationsOnly;
  config.num_keyword_copies = 2;
  auto lattice = LatticeGenerator::Generate(g, config);
  ASSERT_TRUE(lattice.ok());
  // Level 1: Entity 0..2 (3) + Link 0 only (1).
  EXPECT_EQ((*lattice)->NodesAtLevel(1).size(), 4u);
  // Level 2: (Entity_i, Link_0) for i in 0..2.
  EXPECT_EQ((*lattice)->NodesAtLevel(2).size(), 3u);
}

TEST(LatticeGeneratorTest, SelfPairRelationViaTwoEdges) {
  // A coauthor-style relation joining the same entity twice produces
  // distinct trees per edge and paths of length 3.
  SchemaGraph g;
  ASSERT_TRUE(g.AddRelation("P", true).ok());
  ASSERT_TRUE(g.AddRelation("Co", false).ok());
  ASSERT_TRUE(g.AddJoin("Co", "p1", "P", "id").ok());
  ASSERT_TRUE(g.AddJoin("Co", "p2", "P", "id").ok());
  LatticeConfig config;
  config.max_joins = 2;
  config.copy_policy = CopyPolicy::kTextRelationsOnly;
  config.num_keyword_copies = 2;
  auto lattice = LatticeGenerator::Generate(g, config);
  ASSERT_TRUE(lattice.ok());
  // P1 - Co0 - P2 must exist: two people joined by coauthorship.
  RelationId p = *g.RelationIdByName("P");
  RelationId co = *g.RelationIdByName("Co");
  JoinTree path = JoinTree::Single({p, 1})
                      .Extend(0, {co, 0}, 0)
                      .Extend(1, {p, 2}, 1);
  EXPECT_NE((*lattice)->FindTree(path), kInvalidNode);
  // But P1 - Co0 - P1 (same copy twice) must not.
  for (NodeId id : (*lattice)->NodesAtLevel(3)) {
    const JoinTree& t = (*lattice)->node(id).tree;
    for (size_t i = 0; i < t.num_vertices(); ++i) {
      for (size_t j = i + 1; j < t.num_vertices(); ++j) {
        EXPECT_FALSE(t.vertex(i) == t.vertex(j));
      }
    }
  }
}

TEST(LatticeGeneratorTest, AllTreesValidateAndDeduplicate) {
  auto ds = BuildToyProductDatabase();
  ASSERT_TRUE(ds.ok());
  LatticeConfig config;
  config.max_joins = 3;
  config.num_keyword_copies = 3;
  auto lattice = LatticeGenerator::Generate(ds->schema, config);
  ASSERT_TRUE(lattice.ok());
  std::unordered_set<std::string> labels;
  for (NodeId id = 0; id < (*lattice)->num_nodes(); ++id) {
    const JoinTree& t = (*lattice)->node(id).tree;
    ASSERT_TRUE(t.Validate(ds->schema).ok()) << id;
    EXPECT_TRUE(labels.insert(CanonicalLabel(t)).second)
        << "duplicate node survived: " << t.ToString(ds->schema);
    EXPECT_EQ((*lattice)->node(id).level, t.level());
  }
}

TEST(LatticeGeneratorTest, ChildCountEqualsLeafCount) {
  auto ds = BuildToyProductDatabase();
  ASSERT_TRUE(ds.ok());
  LatticeConfig config;
  config.max_joins = 2;
  config.num_keyword_copies = 2;
  auto lattice = LatticeGenerator::Generate(ds->schema, config);
  ASSERT_TRUE(lattice.ok());
  for (NodeId id = 0; id < (*lattice)->num_nodes(); ++id) {
    const LatticeNode& n = (*lattice)->node(id);
    if (n.level == 1) {
      EXPECT_TRUE(n.children.empty());
      continue;
    }
    // Children = one leaf-removal each, all distinct.
    EXPECT_EQ(n.children.size(), n.tree.LeafIndices().size());
  }
}

TEST(LatticeGeneratorTest, DiscoverRuleExcludesDoubleFkTrees) {
  auto ds = BuildToyProductDatabase();
  ASSERT_TRUE(ds.ok());
  LatticeConfig config;
  config.max_joins = 2;
  config.num_keyword_copies = 2;
  auto lattice = LatticeGenerator::Generate(ds->schema, config);
  ASSERT_TRUE(lattice.ok());
  RelationId item = *ds->schema.RelationIdByName("Item");
  RelationId color = *ds->schema.RelationIdByName("Color");
  RelationId ptype = *ds->schema.RelationIdByName("ProductType");
  // Item joining two Color copies via its single color FK: not in lattice.
  JoinTree invalid = JoinTree::Single({item, 0})
                         .Extend(0, {color, 1}, 1)
                         .Extend(0, {color, 2}, 1);
  EXPECT_EQ((*lattice)->FindTree(invalid), kInvalidNode);
  // ProductType joining two Item copies (PK-side hub): in lattice.
  JoinTree valid = JoinTree::Single({ptype, 1})
                       .Extend(0, {item, 1}, 0)
                       .Extend(0, {item, 2}, 0);
  EXPECT_NE((*lattice)->FindTree(valid), kInvalidNode);
}

TEST(LatticeGeneratorTest, MaxNodesGuard) {
  auto ds = BuildToyProductDatabase();
  ASSERT_TRUE(ds.ok());
  LatticeConfig config;
  config.max_joins = 3;
  config.max_nodes = 10;
  auto lattice = LatticeGenerator::Generate(ds->schema, config);
  EXPECT_EQ(lattice.status().code(), StatusCode::kOutOfRange);
}

TEST(LatticeGeneratorTest, EmptySchemaRejected) {
  SchemaGraph g;
  LatticeConfig config;
  EXPECT_EQ(LatticeGenerator::Generate(g, config).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(LatticeGeneratorTest, LevelStatsTimingsRecorded) {
  auto ds = BuildToyProductDatabase();
  ASSERT_TRUE(ds.ok());
  LatticeConfig config;
  config.max_joins = 2;
  auto lattice = LatticeGenerator::Generate(ds->schema, config);
  ASSERT_TRUE(lattice.ok());
  ASSERT_EQ((*lattice)->level_stats().size(), 3u);
  size_t total_kept = 0;
  for (const LevelStats& ls : (*lattice)->level_stats()) {
    EXPECT_GE(ls.gen_millis, 0.0);
    EXPECT_EQ(ls.generated, ls.duplicates + ls.kept);
    total_kept += ls.kept;
  }
  EXPECT_EQ(total_kept, (*lattice)->num_nodes());
}

}  // namespace
}  // namespace kwsdbg
