#include "debugger/ranking.h"

#include <gtest/gtest.h>

#include "datasets/dblife.h"
#include "debugger/non_answer_debugger.h"
#include "lattice/lattice_generator.h"

namespace kwsdbg {
namespace {

AnswerReport MakeAnswer(size_t level, const char* network) {
  AnswerReport a;
  a.query.level = level;
  a.query.network = network;
  return a;
}

TEST(RankingTest, SortsByLevelThenName) {
  std::vector<AnswerReport> answers = {
      MakeAnswer(5, "e"), MakeAnswer(3, "b"), MakeAnswer(3, "a"),
      MakeAnswer(1, "z")};
  RankAnswers(&answers);
  ASSERT_EQ(answers.size(), 4u);
  EXPECT_EQ(answers[0].query.network, "z");
  EXPECT_EQ(answers[1].query.network, "a");
  EXPECT_EQ(answers[2].query.network, "b");
  EXPECT_EQ(answers[3].query.network, "e");
}

TEST(RankingTest, ScoreIsInverseLevel) {
  EXPECT_DOUBLE_EQ(AnswerScore(MakeAnswer(1, "x")), 1.0);
  EXPECT_DOUBLE_EQ(AnswerScore(MakeAnswer(4, "x")), 0.25);
  EXPECT_DOUBLE_EQ(AnswerScore(MakeAnswer(0, "x")), 0.0);
  EXPECT_GT(AnswerScore(MakeAnswer(2, "x")), AnswerScore(MakeAnswer(3, "x")));
}

TEST(RankingTest, StableForEqualKeys) {
  std::vector<AnswerReport> answers = {MakeAnswer(2, "same"),
                                       MakeAnswer(2, "same")};
  answers[0].sample.columns = {"first"};
  RankAnswers(&answers);
  EXPECT_EQ(answers[0].sample.columns,
            (std::vector<std::string>{"first"}));
}

TEST(RankingTest, DebuggerReportsAnswersSmallestFirst) {
  DblifeConfig config;
  config.num_persons = 80;
  config.num_publications = 120;
  config.num_conferences = 10;
  config.num_organizations = 15;
  config.num_topics = 12;
  auto ds = GenerateDblife(config);
  ASSERT_TRUE(ds.ok());
  LatticeConfig lconfig;
  lconfig.max_joins = 4;
  lconfig.num_keyword_copies = 2;
  auto lattice = LatticeGenerator::Generate(ds->schema, lconfig);
  ASSERT_TRUE(lattice.ok());
  InvertedIndex index = InvertedIndex::Build(*ds->db);
  NonAnswerDebugger debugger(ds->db.get(), lattice->get(), &index);
  auto report = debugger.Debug("probabilistic data");
  ASSERT_TRUE(report.ok());
  for (const auto& interp : report->interpretations) {
    for (size_t i = 1; i < interp.answers.size(); ++i) {
      EXPECT_LE(interp.answers[i - 1].query.level,
                interp.answers[i].query.level);
    }
  }
}

}  // namespace
}  // namespace kwsdbg
