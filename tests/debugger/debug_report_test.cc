#include "debugger/debug_report.h"

#include <gtest/gtest.h>

namespace kwsdbg {
namespace {

DebugReport MakeReport() {
  DebugReport report;
  report.keyword_query = "saffron scented candle";
  report.keywords = {"saffron", "scented", "candle"};
  InterpretationReport interp;
  interp.binding = "saffron->Color[1]";
  interp.traversal_stats.sql_queries = 3;
  interp.traversal_stats.sql_millis = 1.5;
  interp.traversal_stats.total_millis = 2.0;
  AnswerReport ans;
  ans.query.network = "A-net";
  ans.query.sql = "SELECT * FROM A";
  interp.answers.push_back(ans);
  NonAnswerReport na;
  na.query.network = "N-net";
  na.query.sql = "SELECT * FROM N";
  NodeReport mpan;
  mpan.network = "M-net";
  na.mpans.push_back(mpan);
  interp.non_answers.push_back(na);
  report.interpretations.push_back(interp);

  InterpretationReport interp2 = report.interpretations[0];
  interp2.traversal_stats.sql_queries = 7;
  report.interpretations.push_back(interp2);
  return report;
}

TEST(DebugReportTest, Totals) {
  DebugReport report = MakeReport();
  EXPECT_EQ(report.TotalAnswers(), 2u);
  EXPECT_EQ(report.TotalNonAnswers(), 2u);
  EXPECT_EQ(report.TotalMpans(), 2u);
}

TEST(DebugReportTest, AggregateStatsSum) {
  DebugReport report = MakeReport();
  TraversalStats stats = report.AggregateTraversalStats();
  EXPECT_EQ(stats.sql_queries, 10u);
  EXPECT_DOUBLE_EQ(stats.sql_millis, 3.0);
  EXPECT_DOUBLE_EQ(stats.total_millis, 4.0);
}

TEST(DebugReportTest, ToStringContainsSections) {
  DebugReport report = MakeReport();
  std::string text = report.ToString();
  EXPECT_NE(text.find("saffron scented candle"), std::string::npos);
  EXPECT_NE(text.find("[ANSWER] A-net"), std::string::npos);
  EXPECT_NE(text.find("[NON-ANSWER] N-net"), std::string::npos);
  EXPECT_NE(text.find("maximal alive sub-query: M-net"), std::string::npos);
  EXPECT_NE(text.find("Interpretation 2"), std::string::npos);
}

TEST(DebugReportTest, ToStringTruncatesLongSections) {
  DebugReport report = MakeReport();
  for (int i = 0; i < 20; ++i) {
    report.interpretations[0].answers.push_back(
        report.interpretations[0].answers[0]);
  }
  std::string text = report.ToString(/*max_items_per_section=*/3);
  EXPECT_NE(text.find("more answers"), std::string::npos);
}

TEST(DebugReportTest, MissingKeywordsShortForm) {
  DebugReport report;
  report.keyword_query = "foo zzz";
  report.missing_keywords = {"zzz"};
  std::string text = report.ToString();
  EXPECT_NE(text.find("zzz"), std::string::npos);
  EXPECT_NE(text.find("and"), std::string::npos);
  EXPECT_EQ(text.find("Interpretation"), std::string::npos);
}

TEST(DebugReportTest, SkippedInterpretationsMentioned) {
  DebugReport report = MakeReport();
  report.interpretations_skipped = 5;
  EXPECT_NE(report.ToString().find("+5 skipped"), std::string::npos);
}

}  // namespace
}  // namespace kwsdbg
