// End-to-end debugger tests, including the paper's Example 1 verbatim.
#include "debugger/non_answer_debugger.h"

#include <gtest/gtest.h>

#include "datasets/dblife.h"
#include "datasets/toy_product_db.h"
#include "lattice/lattice_generator.h"

namespace kwsdbg {
namespace {

class DebuggerTest : public testing::Test {
 protected:
  void SetUp() override {
    auto ds = BuildToyProductDatabase();
    ASSERT_TRUE(ds.ok());
    db_ = std::move(ds->db);
    schema_ = std::move(ds->schema);
    LatticeConfig config;
    config.max_joins = 2;
    config.num_keyword_copies = 3;
    auto lattice = LatticeGenerator::Generate(schema_, config);
    ASSERT_TRUE(lattice.ok());
    lattice_ = std::move(*lattice);
    index_ = std::make_unique<InvertedIndex>(InvertedIndex::Build(*db_));
  }

  std::unique_ptr<Database> db_;
  SchemaGraph schema_;
  std::unique_ptr<Lattice> lattice_;
  std::unique_ptr<InvertedIndex> index_;
};

TEST_F(DebuggerTest, Example1SaffronScentedCandle) {
  NonAnswerDebugger debugger(db_.get(), lattice_.get(), index_.get());
  auto report = debugger.Debug("saffron scented candle");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->missing_keywords.empty());
  // Interpretations: saffron in {Color, Attribute, Item}, scented in {Item},
  // candle in {ProductType, Item} -> 6 interpretations.
  EXPECT_EQ(report->interpretations.size(), 6u);

  // Find the q1 interpretation (saffron->Color, candle->ProductType) and
  // the q2 interpretation (saffron->Attribute, candle->ProductType).
  const InterpretationReport* q1 = nullptr;
  const InterpretationReport* q2 = nullptr;
  for (const auto& interp : report->interpretations) {
    if (interp.binding.find("saffron->Color[1]") != std::string::npos &&
        interp.binding.find("candle->ProductType[1]") != std::string::npos) {
      q1 = &interp;
    }
    if (interp.binding.find("saffron->Attribute[1]") != std::string::npos &&
        interp.binding.find("candle->ProductType[1]") != std::string::npos) {
      q2 = &interp;
    }
  }
  ASSERT_NE(q1, nullptr);
  ASSERT_NE(q2, nullptr);

  // q1: one MTN, dead, MPANs = { P_candle ⋈ I_scented, C_saffron }.
  ASSERT_EQ(q1->non_answers.size(), 1u);
  EXPECT_TRUE(q1->answers.empty());
  ASSERT_EQ(q1->non_answers[0].mpans.size(), 2u);
  bool q1_pi = false, q1_c = false;
  for (const NodeReport& mpan : q1->non_answers[0].mpans) {
    if (mpan.network == "Color[1]") q1_c = true;
    if (mpan.network.find("ProductType[1]") != std::string::npos &&
        mpan.network.find("Item[1]") != std::string::npos) {
      q1_pi = true;
    }
  }
  EXPECT_TRUE(q1_pi);
  EXPECT_TRUE(q1_c);

  // q2: one MTN, dead, MPANs = { P_candle ⋈ I_scented, I_scented ⋈ A_saffron }.
  ASSERT_EQ(q2->non_answers.size(), 1u);
  ASSERT_EQ(q2->non_answers[0].mpans.size(), 2u);
  bool q2_pi = false, q2_ia = false;
  for (const NodeReport& mpan : q2->non_answers[0].mpans) {
    if (mpan.network.find("ProductType[1]") != std::string::npos &&
        mpan.network.find("Item[1]") != std::string::npos) {
      q2_pi = true;
    }
    if (mpan.network.find("Attribute[1]") != std::string::npos &&
        mpan.network.find("Item[1]") != std::string::npos) {
      q2_ia = true;
    }
  }
  EXPECT_TRUE(q2_pi);
  EXPECT_TRUE(q2_ia);

  // The SQL of a non-answer mentions every keyword.
  const std::string& sql = q1->non_answers[0].query.sql;
  EXPECT_NE(sql.find("%saffron%"), std::string::npos);
  EXPECT_NE(sql.find("%scented%"), std::string::npos);
  EXPECT_NE(sql.find("%candle%"), std::string::npos);
}

TEST_F(DebuggerTest, MissingKeywordReported) {
  NonAnswerDebugger debugger(db_.get(), lattice_.get(), index_.get());
  auto report = debugger.Debug("saffron qqqqq");
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->missing_keywords, (std::vector<std::string>{"qqqqq"}));
  EXPECT_TRUE(report->interpretations.empty());
  EXPECT_NE(report->ToString().find("qqqqq"), std::string::npos);
}

TEST_F(DebuggerTest, AnswerQueryWithSamples) {
  DebuggerOptions options;
  options.sample_rows = 2;
  NonAnswerDebugger debugger(db_.get(), lattice_.get(), index_.get(),
                             options);
  auto report = debugger.Debug("red candle");
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->TotalAnswers(), 0u);
  bool some_samples = false;
  for (const auto& interp : report->interpretations) {
    for (const auto& ans : interp.answers) {
      if (!ans.sample.rows.empty()) some_samples = true;
    }
  }
  EXPECT_TRUE(some_samples);
}

TEST_F(DebuggerTest, EveryStrategyProducesSameReportCounts) {
  size_t expected_answers = 0, expected_non_answers = 0, expected_mpans = 0;
  bool first = true;
  for (TraversalKind kind : AllTraversalKinds()) {
    DebuggerOptions options;
    options.strategy = kind;
    NonAnswerDebugger debugger(db_.get(), lattice_.get(), index_.get(),
                               options);
    auto report = debugger.Debug("saffron scented candle");
    ASSERT_TRUE(report.ok());
    if (first) {
      expected_answers = report->TotalAnswers();
      expected_non_answers = report->TotalNonAnswers();
      expected_mpans = report->TotalMpans();
      first = false;
    } else {
      EXPECT_EQ(report->TotalAnswers(), expected_answers);
      EXPECT_EQ(report->TotalNonAnswers(), expected_non_answers);
      EXPECT_EQ(report->TotalMpans(), expected_mpans);
    }
  }
}

TEST_F(DebuggerTest, ReportToStringMentionsKeyParts) {
  NonAnswerDebugger debugger(db_.get(), lattice_.get(), index_.get());
  auto report = debugger.Debug("saffron scented candle");
  ASSERT_TRUE(report.ok());
  std::string text = report->ToString();
  EXPECT_NE(text.find("saffron scented candle"), std::string::npos);
  EXPECT_NE(text.find("NON-ANSWER"), std::string::npos);
  EXPECT_NE(text.find("maximal alive sub-query"), std::string::npos);
}

TEST_F(DebuggerTest, DblifeSmokeTest) {
  DblifeConfig config;
  config.num_persons = 80;
  config.num_publications = 150;
  config.num_conferences = 12;
  config.num_organizations = 20;
  config.num_topics = 15;
  auto ds = GenerateDblife(config);
  ASSERT_TRUE(ds.ok());
  LatticeConfig lconfig;
  lconfig.max_joins = 4;
  lconfig.num_keyword_copies = 2;
  auto lattice = LatticeGenerator::Generate(ds->schema, lconfig);
  ASSERT_TRUE(lattice.ok());
  InvertedIndex index = InvertedIndex::Build(*ds->db);
  NonAnswerDebugger debugger(ds->db.get(), lattice->get(), &index);
  auto report = debugger.Debug("widom trio");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->missing_keywords.empty());
  EXPECT_GT(report->interpretations.size(), 0u);
  // Aggregate stats populated.
  TraversalStats stats = report->AggregateTraversalStats();
  EXPECT_GE(stats.total_millis, 0.0);
}

}  // namespace
}  // namespace kwsdbg
