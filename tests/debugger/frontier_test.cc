// The dual frontier: culprits (minimal dead sub-queries) and the GraphViz
// rendering, asserted on the paper's Example 1.
#include "debugger/frontier.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "debugger/interactive_session.h"
#include "test_util.h"
#include "traversal/strategy.h"
#include "traversal/strategies.h"

namespace kwsdbg {
namespace {

using testutil::ToyFixture;

class FrontierTest : public testing::Test {
 protected:
  TraversalResult RunQ(const KeywordBinding& binding, PrunedLattice* out_pl) {
    *out_pl = PrunedLattice::Build(*fx_.lattice, binding);
    Executor executor(fx_.db.get());
    QueryEvaluator evaluator(fx_.db.get(), &executor, out_pl,
                             fx_.index.get());
    auto strategy = MakeStrategy(TraversalKind::kScoreBased);
    auto result = strategy->Run(*out_pl, &evaluator);
    KWSDBG_CHECK(result.ok());
    return std::move(*result);
  }

  KeywordBinding Q1Binding() {  // saffron as a color
    return KeywordBinding({{"saffron", {fx_.color, 1}},
                           {"scented", {fx_.item, 1}},
                           {"candle", {fx_.ptype, 1}}});
  }
  KeywordBinding Q2Binding() {  // saffron as a scent
    return KeywordBinding({{"saffron", {fx_.attr, 1}},
                           {"scented", {fx_.item, 1}},
                           {"candle", {fx_.ptype, 1}}});
  }

  ToyFixture fx_;
};

TEST_F(FrontierTest, Q1CulpritIsTheColorJoin) {
  // q1's results vanish exactly at I_scented ⋈ C_saffron: there are scented
  // items and a saffron color, but no scented item with that color.
  PrunedLattice pl{PrunedLattice::Build(
      *fx_.lattice, KeywordBinding({{"x", {fx_.color, 1}}}))};
  TraversalResult r = RunQ(Q1Binding(), &pl);
  ASSERT_EQ(r.outcomes.size(), 1u);
  ASSERT_FALSE(r.outcomes[0].alive);
  ASSERT_EQ(r.outcomes[0].culprits.size(), 1u);
  const std::string name = fx_.NodeName(r.outcomes[0].culprits[0]);
  EXPECT_NE(name.find("Item[1]"), std::string::npos);
  EXPECT_NE(name.find("Color[1]"), std::string::npos);
  EXPECT_EQ(name.find("ProductType"), std::string::npos);
}

TEST_F(FrontierTest, Q2CulpritIsTheFullCombination) {
  // q2: both two-way joins are alive; only the 3-way combination fails, so
  // the MTN itself is the unique culprit.
  PrunedLattice pl{PrunedLattice::Build(
      *fx_.lattice, KeywordBinding({{"x", {fx_.color, 1}}}))};
  TraversalResult r = RunQ(Q2Binding(), &pl);
  ASSERT_EQ(r.outcomes.size(), 1u);
  ASSERT_FALSE(r.outcomes[0].alive);
  ASSERT_EQ(r.outcomes[0].culprits.size(), 1u);
  EXPECT_EQ(r.outcomes[0].culprits[0], r.outcomes[0].mtn);
}

TEST_F(FrontierTest, CulpritChildrenAreAllAlive) {
  // Structural property of minimality, on both interpretations.
  for (const KeywordBinding& binding : {Q1Binding(), Q2Binding()}) {
    PrunedLattice pl{PrunedLattice::Build(
        *fx_.lattice, KeywordBinding({{"x", {fx_.color, 1}}}))};
    TraversalResult r = RunQ(binding, &pl);
    for (const MtnOutcome& outcome : r.outcomes) {
      for (NodeId culprit : outcome.culprits) {
        // Every proper sub-network of a culprit must appear under some MPAN
        // (alive region); in particular no culprit may be a descendant of
        // another culprit.
        for (NodeId other : outcome.culprits) {
          if (other == culprit) continue;
          const auto& desc = pl.RetainedDescendants(other);
          EXPECT_EQ(std::count(desc.begin(), desc.end(), culprit), 0);
        }
      }
    }
  }
}

TEST_F(FrontierTest, DotRenderingMarksBothFrontiers) {
  PrunedLattice pl{PrunedLattice::Build(
      *fx_.lattice, KeywordBinding({{"x", {fx_.color, 1}}}))};
  TraversalResult r = RunQ(Q1Binding(), &pl);
  auto dot = FrontierToDot(pl, r.outcomes[0]);
  ASSERT_TRUE(dot.ok()) << dot.status().ToString();
  EXPECT_NE(dot->find("digraph frontier"), std::string::npos);
  EXPECT_NE(dot->find("color=green"), std::string::npos);
  EXPECT_NE(dot->find("color=red"), std::string::npos);
  EXPECT_NE(dot->find("doublecircle"), std::string::npos);   // MPANs
  EXPECT_NE(dot->find("doubleoctagon"), std::string::npos);  // culprits
  EXPECT_NE(dot->find("penwidth=3"), std::string::npos);     // the MTN
  // Fully classified: every node line carries a color. (Node lines are
  // newline-terminated; "];" can legitimately occur inside a label.)
  size_t nodes = 0, colored = 0;
  for (size_t pos = dot->find("[label="); pos != std::string::npos;
       pos = dot->find("[label=", pos + 1)) {
    ++nodes;
    size_t end = dot->find('\n', pos);
    std::string line = dot->substr(pos, end - pos);
    if (line.find("color=") != std::string::npos) ++colored;
  }
  EXPECT_EQ(nodes, colored);
  EXPECT_EQ(nodes, pl.RetainedDescendants(r.outcomes[0].mtn).size() + 1);
}

TEST_F(FrontierTest, DotRejectsAliveMtn) {
  PrunedLattice pl{PrunedLattice::Build(
      *fx_.lattice, KeywordBinding({{"x", {fx_.color, 1}}}))};
  KeywordBinding binding(
      {{"red", {fx_.color, 1}}, {"candle", {fx_.ptype, 1}}});
  TraversalResult r = RunQ(binding, &pl);
  ASSERT_TRUE(r.outcomes[0].alive);
  EXPECT_EQ(FrontierToDot(pl, r.outcomes[0]).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(FrontierTest, InteractiveSessionReportsCulprits) {
  PrunedLattice pl = PrunedLattice::Build(*fx_.lattice, Q1Binding());
  Executor executor(fx_.db.get());
  QueryEvaluator evaluator(fx_.db.get(), &executor, &pl, fx_.index.get());
  InteractiveSession session(&pl, &evaluator);
  ASSERT_TRUE(session.FinishAutomatically().ok());
  NodeId mtn = pl.mtns()[0];
  std::vector<NodeId> culprits = session.KnownCulprits(mtn);
  ASSERT_EQ(culprits.size(), 1u);
  const std::string name = fx_.NodeName(culprits[0]);
  EXPECT_NE(name.find("Item[1]"), std::string::npos);
  EXPECT_NE(name.find("Color[1]"), std::string::npos);
}

}  // namespace
}  // namespace kwsdbg
