#include "debugger/interactive_session.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "datasets/dblife.h"
#include "lattice/lattice_generator.h"
#include "test_util.h"
#include "traversal/strategy.h"

namespace kwsdbg {
namespace {

using testutil::ToyFixture;

class InteractiveSessionTest : public testing::Test {
 protected:
  InteractiveSessionTest()
      : pl_(PrunedLattice::Build(
            *fx_.lattice,
            KeywordBinding({{"saffron", {fx_.color, 1}},
                            {"scented", {fx_.item, 1}},
                            {"candle", {fx_.ptype, 1}}}))),
        executor_(fx_.db.get()),
        evaluator_(fx_.db.get(), &executor_, &pl_, fx_.index.get()) {}

  NodeId Mtn() const { return pl_.mtns()[0]; }

  NodeId FindNode(const char* needle_a, const char* needle_b = nullptr,
                  size_t level = 0) const {
    for (NodeId id : pl_.retained()) {
      if (level != 0 && fx_.lattice->node(id).level != level) continue;
      const std::string name = fx_.NodeName(id);
      if (name.find(needle_a) == std::string::npos) continue;
      if (needle_b != nullptr && name.find(needle_b) == std::string::npos) {
        continue;
      }
      return id;
    }
    return kInvalidNode;
  }

  ToyFixture fx_;
  PrunedLattice pl_;
  Executor executor_;
  QueryEvaluator evaluator_;
};

TEST_F(InteractiveSessionTest, FreshSessionKnowsNothing) {
  InteractiveSession session(&pl_, &evaluator_);
  EXPECT_EQ(session.UnknownCount(), pl_.retained().size());
  EXPECT_FALSE(session.MtnResolved(Mtn()));
  EXPECT_TRUE(session.KnownMpans(Mtn()).empty());
}

TEST_F(InteractiveSessionTest, ProbePropagatesInference) {
  InteractiveSession session(&pl_, &evaluator_);
  // Probing the alive P1 ⋈ I1 classifies its descendants alive via R1.
  NodeId pi = FindNode("ProductType[1]", "Item[1]", 3 - 1);
  ASSERT_NE(pi, kInvalidNode);
  auto alive = session.Probe(pi);
  ASSERT_TRUE(alive.ok());
  EXPECT_TRUE(*alive);
  EXPECT_EQ(session.StatusOf(pi), NodeStatus::kAlive);
  // P1 and I1 (its children) were inferred without SQL.
  EXPECT_LT(session.UnknownCount(), pl_.retained().size() - 1);
}

TEST_F(InteractiveSessionTest, RepeatProbeIsFree) {
  InteractiveSession session(&pl_, &evaluator_);
  NodeId pi = FindNode("ProductType[1]", "Item[1]", 2);
  ASSERT_NE(pi, kInvalidNode);
  ASSERT_TRUE(session.Probe(pi).ok());
  const size_t sql = evaluator_.sql_executed();
  ASSERT_TRUE(session.Probe(pi).ok());
  EXPECT_EQ(evaluator_.sql_executed(), sql);
}

TEST_F(InteractiveSessionTest, ManualSessionReachesPaperResult) {
  InteractiveSession session(&pl_, &evaluator_);
  // Probe the MTN first: dead.
  auto mtn_alive = session.Probe(Mtn());
  ASSERT_TRUE(mtn_alive.ok());
  EXPECT_FALSE(*mtn_alive);
  // Finish automatically; the MPANs must match the paper's q1 pair.
  auto sql = session.FinishAutomatically();
  ASSERT_TRUE(sql.ok());
  EXPECT_TRUE(session.MtnResolved(Mtn()));
  std::vector<NodeId> mpans = session.KnownMpans(Mtn());
  ASSERT_EQ(mpans.size(), 2u);
}

TEST_F(InteractiveSessionTest, AssertionsInjectKnowledgeWithoutSql) {
  InteractiveSession session(&pl_, &evaluator_);
  NodeId ic = FindNode("Item[1]", "Color[1]", 2);
  ASSERT_NE(ic, kInvalidNode);
  // Developer knows no scented item has the saffron color.
  ASSERT_TRUE(session.AssertDead(ic).ok());
  EXPECT_EQ(session.StatusOf(ic), NodeStatus::kDead);
  // R2: the MTN above it is now known dead with zero SQL executed.
  EXPECT_EQ(session.StatusOf(Mtn()), NodeStatus::kDead);
  EXPECT_EQ(evaluator_.sql_executed(), 0u);
}

TEST_F(InteractiveSessionTest, ContradictoryAssertionRejected) {
  InteractiveSession session(&pl_, &evaluator_);
  NodeId pi = FindNode("ProductType[1]", "Item[1]", 2);
  ASSERT_TRUE(session.Probe(pi).ok());  // alive
  EXPECT_EQ(session.AssertDead(pi).code(), StatusCode::kFailedPrecondition);
  NodeId ic = FindNode("Item[1]", "Color[1]", 2);
  ASSERT_TRUE(session.Probe(ic).ok());  // dead
  EXPECT_EQ(session.AssertAlive(ic).code(), StatusCode::kFailedPrecondition);
}

TEST_F(InteractiveSessionTest, ProbeOutsideSearchSpaceRejected) {
  InteractiveSession session(&pl_, &evaluator_);
  // Find a lattice node that is not retained for this query.
  NodeId outside = kInvalidNode;
  for (NodeId id = 0; id < fx_.lattice->num_nodes(); ++id) {
    if (!pl_.IsRetained(id)) {
      outside = id;
      break;
    }
  }
  ASSERT_NE(outside, kInvalidNode);
  EXPECT_EQ(session.Probe(outside).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(session.AssertAlive(outside).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(InteractiveSessionTest, SuggestionsDriveSessionToCompletion) {
  InteractiveSession session(&pl_, &evaluator_);
  size_t steps = 0;
  while (true) {
    ProbeSuggestion s = session.SuggestProbe();
    if (s.node == kInvalidNode) break;
    EXPECT_GE(s.expected_gain, 0.0);
    EXPECT_FALSE(s.network.empty());
    ASSERT_TRUE(session.Probe(s.node).ok());
    ASSERT_LT(++steps, 100u) << "session failed to converge";
  }
  EXPECT_EQ(session.UnknownCount(), 0u);
  EXPECT_TRUE(session.MtnResolved(Mtn()));
  // The suggestion-driven session resolves everything with at most as many
  // SQL queries as retained nodes.
  EXPECT_LE(evaluator_.sql_executed(), pl_.retained().size());
}

TEST_F(InteractiveSessionTest, KnownMpansGrowMonotonically) {
  InteractiveSession session(&pl_, &evaluator_);
  ASSERT_TRUE(session.Probe(Mtn()).ok());  // dead
  size_t last = session.KnownMpans(Mtn()).size();
  while (session.UnknownCount() > 0) {
    ProbeSuggestion s = session.SuggestProbe();
    ASSERT_TRUE(session.Probe(s.node).ok());
    size_t now = session.KnownMpans(Mtn()).size();
    EXPECT_GE(now, last);
    last = now;
  }
  EXPECT_EQ(last, 2u);
}

TEST(InteractiveSessionDblifeTest, AgreesWithBatchSbhOnWorkload) {
  DblifeConfig config;
  config.num_persons = 60;
  config.num_publications = 100;
  config.num_conferences = 10;
  config.num_organizations = 12;
  config.num_topics = 10;
  auto ds = GenerateDblife(config);
  ASSERT_TRUE(ds.ok());
  LatticeConfig lconfig;
  lconfig.max_joins = 3;
  lconfig.num_keyword_copies = 2;
  auto lattice = LatticeGenerator::Generate(ds->schema, lconfig);
  ASSERT_TRUE(lattice.ok());
  InvertedIndex index = InvertedIndex::Build(*ds->db);
  KeywordBinder binder(&ds->schema, &index, 2, 3);
  auto sbh = MakeStrategy(TraversalKind::kScoreBased);
  for (const char* q : {"widom trio", "probabilistic data", "histograms"}) {
    for (const KeywordBinding& binding : binder.Bind(q).interpretations) {
      PrunedLattice pl = PrunedLattice::Build(**lattice, binding);
      if (pl.mtns().empty()) continue;
      // Batch result.
      Executor batch_exec(ds->db.get());
      QueryEvaluator batch_eval(ds->db.get(), &batch_exec, &pl, &index);
      auto batch = sbh->Run(pl, &batch_eval);
      ASSERT_TRUE(batch.ok());
      // Fully driven interactive session.
      Executor exec(ds->db.get());
      QueryEvaluator eval(ds->db.get(), &exec, &pl, &index);
      InteractiveSession session(&pl, &eval);
      auto sql = session.FinishAutomatically();
      ASSERT_TRUE(sql.ok());
      for (const MtnOutcome& outcome : batch->outcomes) {
        EXPECT_TRUE(session.MtnResolved(outcome.mtn));
        EXPECT_EQ(session.StatusOf(outcome.mtn) == NodeStatus::kAlive,
                  outcome.alive);
        if (!outcome.alive) {
          std::vector<NodeId> mpans = session.KnownMpans(outcome.mtn);
          std::sort(mpans.begin(), mpans.end());
          EXPECT_EQ(mpans, outcome.mpans) << q;
        }
      }
    }
  }
}

}  // namespace
}  // namespace kwsdbg
