#include "debugger/report_json.h"

#include <gtest/gtest.h>

#include "datasets/toy_product_db.h"
#include "debugger/non_answer_debugger.h"
#include "lattice/lattice_generator.h"

namespace kwsdbg {
namespace {

TEST(JsonEscapeTest, EscapesSpecials) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(JsonEscape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(JsonEscape("tab\there"), "tab\\there");
  EXPECT_EQ(JsonEscape(std::string("\x01")), "\\u0001");
}

TEST(ReportJsonTest, MinimalReport) {
  DebugReport report;
  report.keyword_query = "a \"quoted\" query";
  report.keywords = {"a", "quoted", "query"};
  std::string json = DebugReportToJson(report);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"query\":\"a \\\"quoted\\\" query\""),
            std::string::npos);
  EXPECT_NE(json.find("\"interpretations\":[]"), std::string::npos);
}

TEST(ReportJsonTest, EndToEndStructure) {
  auto ds = BuildToyProductDatabase();
  ASSERT_TRUE(ds.ok());
  LatticeConfig config;
  config.max_joins = 2;
  config.num_keyword_copies = 3;
  auto lattice = LatticeGenerator::Generate(ds->schema, config);
  ASSERT_TRUE(lattice.ok());
  InvertedIndex index = InvertedIndex::Build(*ds->db);
  NonAnswerDebugger debugger(ds->db.get(), lattice->get(), &index);
  auto report = debugger.Debug("saffron scented candle");
  ASSERT_TRUE(report.ok());
  std::string json = DebugReportToJson(*report);

  // Key structural markers for the paper's q1 interpretation.
  EXPECT_NE(json.find("\"binding\":\"saffron->Color[1]"), std::string::npos);
  EXPECT_NE(json.find("\"non_answers\":[{"), std::string::npos);
  EXPECT_NE(json.find("\"mpans\":[{"), std::string::npos);
  EXPECT_NE(json.find("\"sql_queries\":"), std::string::npos);
  // SQL strings with single quotes embed fine (no JSON escaping needed).
  EXPECT_NE(json.find("LIKE '%saffron%'"), std::string::npos);

  // Cheap well-formedness checks: balanced braces/brackets outside strings.
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    char ch = json[i];
    if (in_string) {
      if (ch == '\\') {
        ++i;
      } else if (ch == '"') {
        in_string = false;
      }
      continue;
    }
    if (ch == '"') in_string = true;
    if (ch == '{') ++braces;
    if (ch == '}') --braces;
    if (ch == '[') ++brackets;
    if (ch == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

TEST(ReportJsonTest, MissingKeywordReport) {
  DebugReport report;
  report.keyword_query = "x zzz";
  report.missing_keywords = {"zzz"};
  std::string json = DebugReportToJson(report);
  EXPECT_NE(json.find("\"missing_keywords\":[\"zzz\"]"), std::string::npos);
}

}  // namespace
}  // namespace kwsdbg
