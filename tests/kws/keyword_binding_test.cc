#include "kws/keyword_binding.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "datasets/toy_product_db.h"
#include "text/inverted_index.h"

namespace kwsdbg {
namespace {

class KeywordBindingTest : public testing::Test {
 protected:
  void SetUp() override {
    auto ds = BuildToyProductDatabase();
    ASSERT_TRUE(ds.ok());
    db_ = std::move(ds->db);
    schema_ = std::move(ds->schema);
    index_ = std::make_unique<InvertedIndex>(InvertedIndex::Build(*db_));
  }

  std::unique_ptr<Database> db_;
  SchemaGraph schema_;
  std::unique_ptr<InvertedIndex> index_;
};

TEST_F(KeywordBindingTest, BindingLookups) {
  RelationId color = *schema_.RelationIdByName("Color");
  RelationId ptype = *schema_.RelationIdByName("ProductType");
  KeywordBinding binding({{"red", {color, 1}}, {"candle", {ptype, 1}}});
  EXPECT_EQ(binding.num_keywords(), 2u);
  EXPECT_TRUE(binding.IsBound({color, 1}));
  EXPECT_FALSE(binding.IsBound({color, 2}));
  EXPECT_FALSE(binding.IsBound({color, 0}));
  ASSERT_NE(binding.KeywordFor({ptype, 1}), nullptr);
  EXPECT_EQ(*binding.KeywordFor({ptype, 1}), "candle");
  EXPECT_EQ(binding.KeywordFor({ptype, 2}), nullptr);
  EXPECT_EQ(binding.VertexFor(0), (RelationCopy{color, 1}));
  EXPECT_NE(binding.ToString(schema_).find("red->Color[1]"),
            std::string::npos);
}

TEST_F(KeywordBindingTest, BinderEnumeratesInterpretations) {
  KeywordBinder binder(&schema_, index_.get(), /*num_keyword_copies=*/3);
  // "red" occurs in Color and Item; "candle" in ProductType and Item.
  BindingResult result = binder.Bind("red candle");
  EXPECT_TRUE(result.missing_keywords.empty());
  EXPECT_EQ(result.keywords, (std::vector<std::string>{"red", "candle"}));
  EXPECT_EQ(result.interpretations.size(), 4u);
  EXPECT_EQ(result.interpretations_skipped, 0u);
}

TEST_F(KeywordBindingTest, SameRelationKeywordsGetSuccessiveCopies) {
  KeywordBinder binder(&schema_, index_.get(), 3);
  BindingResult result = binder.Bind("red candle");
  RelationId item = *schema_.RelationIdByName("Item");
  // Find the interpretation mapping both keywords to Item.
  bool found = false;
  for (const KeywordBinding& b : result.interpretations) {
    if (b.assignments()[0].vertex.relation == item &&
        b.assignments()[1].vertex.relation == item) {
      EXPECT_EQ(b.assignments()[0].vertex.copy, 1);
      EXPECT_EQ(b.assignments()[1].vertex.copy, 2);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(KeywordBindingTest, MissingKeywordShortCircuits) {
  KeywordBinder binder(&schema_, index_.get(), 3);
  BindingResult result = binder.Bind("red zzznothere");
  EXPECT_EQ(result.missing_keywords,
            (std::vector<std::string>{"zzznothere"}));
  EXPECT_TRUE(result.interpretations.empty());
}

TEST_F(KeywordBindingTest, EmptyQueryYieldsNothing) {
  KeywordBinder binder(&schema_, index_.get(), 3);
  BindingResult result = binder.Bind("  ,;  ");
  EXPECT_TRUE(result.keywords.empty());
  EXPECT_TRUE(result.interpretations.empty());
}

TEST_F(KeywordBindingTest, CopyOverflowSkipsInterpretation) {
  // With a single keyword copy, interpretations that put two keywords on the
  // same relation are dropped.
  KeywordBinder binder(&schema_, index_.get(), /*num_keyword_copies=*/1);
  BindingResult result = binder.Bind("red candle");
  EXPECT_EQ(result.interpretations.size(), 3u);  // 4 minus the Item+Item one
  EXPECT_EQ(result.interpretations_skipped, 1u);
}

TEST_F(KeywordBindingTest, InterpretationCapRespected) {
  KeywordBinder binder(&schema_, index_.get(), 3, /*max_interpretations=*/2);
  BindingResult result = binder.Bind("red candle");
  EXPECT_EQ(result.interpretations.size(), 2u);
  EXPECT_EQ(result.interpretations_skipped, 2u);
}

TEST_F(KeywordBindingTest, DuplicateKeywordsDeduplicated) {
  KeywordBinder binder(&schema_, index_.get(), 3);
  BindingResult result = binder.Bind("red RED red");
  EXPECT_EQ(result.keywords.size(), 1u);
}

TEST_F(KeywordBindingTest, BindTimeRecorded) {
  KeywordBinder binder(&schema_, index_.get(), 3);
  BindingResult result = binder.Bind("red candle");
  EXPECT_GE(result.bind_millis, 0.0);
}

}  // namespace
}  // namespace kwsdbg
